// A tour of every synchronization protocol in the library on one workload:
// BSP, ASP, SSP, DSSP, the K-variant family (Dutta et al.), the group-based
// Gaia-style hybrid, and Sync-Switch itself.
//
//   $ ./build/examples/protocol_tour
//
// This is the paper's Figure 1 design space at example scale: accuracy and
// (virtual) training time for each point, showing the trade-off frontier
// Sync-Switch escapes.
#include <iostream>

#include "core/profiler.h"
#include "core/session.h"
#include "data/synthetic.h"
#include "nn/zoo.h"
#include "ps/group_runtime.h"

using namespace ss;

namespace {

RunRequest base_request() {
  RunRequest req;
  req.workload.arch = ModelArch::kResNet32Lite;
  req.workload.data = SyntheticSpec::cifar10_like();
  req.workload.total_steps = 2048;
  req.workload.hyper.batch_size = 64;
  req.workload.hyper.learning_rate = 0.05;
  req.workload.hyper.momentum = 0.9;
  req.workload.eval_interval = 64;
  req.cluster.num_workers = 8;
  req.cluster.compute_per_batch = VTime::from_ms(120.0);
  req.cluster.reference_batch = 64;
  req.cluster.sync_base = VTime::from_ms(287.0);
  req.cluster.sync_quad = VTime::from_ms(6.4);
  req.actuator_time_scale = 0.015;
  req.seed = 1;
  return req;
}

void report(const std::string& name, double acc, double minutes, bool diverged,
            double staleness = -1.0) {
  std::cout << "  " << name << ": ";
  if (diverged) {
    std::cout << "DIVERGED\n";
    return;
  }
  std::cout << "accuracy " << acc << ", time " << minutes << " min";
  if (staleness >= 0.0) std::cout << ", staleness " << staleness;
  std::cout << "\n";
}

void run_session(const std::string& name, const SyncSwitchPolicy& policy) {
  RunRequest req = base_request();
  req.policy = policy;
  const RunResult r = TrainingSession(req).run();
  report(name, r.converged_accuracy, r.train_time_seconds / 60.0, r.diverged,
         r.mean_staleness);
}

/// The group-based protocol runs through its own runtime (it maintains one
/// parameter replica per group rather than a single PS).
void run_group_based() {
  const RunRequest req = base_request();
  const Workload& wl = req.workload;
  const DataSplit data = make_synthetic(wl.data);
  const Dataset eval_subset = data.test.head(2048);

  Rng root(req.seed * 0x9E3779B97f4A7C15ULL + 17);
  Rng init_rng = root.fork(1);
  Model grad_model = make_model(wl.arch, wl.data.feature_dim, wl.data.num_classes, init_rng);
  Model eval_model = grad_model.clone();

  const std::size_t n = req.cluster.num_workers;
  const auto shards = make_shards(data.train.size(), n);
  std::vector<MinibatchSampler> samplers;
  std::vector<Rng> worker_rngs;
  for (std::size_t w = 0; w < n; ++w) {
    samplers.emplace_back(shards[w], wl.hyper.batch_size, root.fork(100 + w));
    worker_rngs.push_back(root.fork(200 + w));
  }
  TrainingState state(ParameterServer(grad_model.get_params(), wl.hyper.momentum),
                      std::move(samplers), std::move(worker_rngs));

  Profiler profiler;
  GroupRuntime runtime(ClusterModel(req.cluster), grad_model, eval_model, data.train,
                       eval_subset, profiler);
  const PiecewiseDecay schedule =
      PiecewiseDecay::resnet_style(wl.hyper.learning_rate, wl.total_steps);

  GroupConfig cfg;
  cfg.num_groups = 2;
  cfg.significance_threshold = 0.01;
  cfg.step_budget = wl.total_steps;
  cfg.lr_schedule = &schedule;
  cfg.per_worker_batch = wl.hyper.batch_size;
  cfg.momentum = wl.hyper.momentum;
  cfg.eval_interval = wl.eval_interval;

  StragglerSchedule none;
  const GroupPhaseResult r = runtime.run(state, cfg, none);
  const auto conv = profiler.converged_accuracy();
  report("Group-based (G=2)  ", conv ? *conv : profiler.final_accuracy(),
         r.elapsed.seconds() / 60.0, r.end == PhaseEnd::kDiverged);
  std::cout << "    (significance filter passed "
            << 100.0 * r.mean_significant_fraction << "% of coordinates per broadcast, "
            << r.broadcasts << " broadcasts)\n";
}

SyncSwitchPolicy with_k(Protocol proto, int k) {
  SyncSwitchPolicy p = SyncSwitchPolicy::pure(proto);
  p.k_param = k;
  return p;
}

}  // namespace

int main() {
  std::cout << "Protocol tour: every synchronization scheme on one workload\n\n";
  run_session("BSP                ", SyncSwitchPolicy::pure(Protocol::kBsp));
  run_session("ASP                ", SyncSwitchPolicy::pure(Protocol::kAsp));
  run_session("SSP(3)             ", SyncSwitchPolicy::pure(Protocol::kSsp));
  run_session("DSSP(3,+8)         ", SyncSwitchPolicy::pure(Protocol::kDssp));
  run_session("K-sync (K=6)       ", with_k(Protocol::kKSync, 6));
  run_session("K-batch-sync (K=6) ", with_k(Protocol::kKBatchSync, 6));
  run_session("K-async (K=2)      ", with_k(Protocol::kKAsync, 2));
  run_session("K-batch-async (K=2)", with_k(Protocol::kKBatchAsync, 2));
  run_group_based();
  run_session("Sync-Switch 6.25%  ", SyncSwitchPolicy::bsp_to_asp(0.0625));

  std::cout << "\nThe static protocols trace the throughput/accuracy frontier of the\n"
               "paper's Figure 1; Sync-Switch reaches BSP-level accuracy at near-ASP\n"
               "time by switching protocols mid-training instead of compromising.\n";
  return 0;
}
