// Offline timing-policy derivation (paper Section IV-B1, Algorithm 1).
//
// Runs the binary search over switch timings against real training sessions
// and prints every candidate it explores plus the derived policy.  This is
// what Sync-Switch's cluster manager does for a new (non-recurring) job.
//
//   $ ./build/examples/policy_search
#include <iostream>

#include "core/binary_search.h"
#include "core/session.h"

using namespace ss;

namespace {

RunRequest request_for(double fraction, int repetition) {
  RunRequest req;
  req.workload.arch = ModelArch::kResNet32Lite;
  req.workload.data = SyntheticSpec::cifar10_like();
  req.workload.data.train_size = 16384;
  req.workload.data.test_size = 4096;
  req.workload.total_steps = 2048;
  req.workload.hyper.batch_size = 64;
  req.workload.hyper.learning_rate = 0.05;
  req.workload.eval_interval = 64;
  req.cluster.num_workers = 8;
  req.cluster.compute_per_batch = VTime::from_ms(120.0);
  req.cluster.sync_base = VTime::from_ms(287.0);
  req.cluster.sync_quad = VTime::from_ms(6.4);
  req.actuator_time_scale = 0.02;
  req.policy = fraction >= 1.0 ? SyncSwitchPolicy::pure(Protocol::kBsp)
                               : SyncSwitchPolicy::bsp_to_asp(fraction);
  req.seed = static_cast<std::uint64_t>(repetition) + 1;
  return req;
}

}  // namespace

int main() {
  std::cout << "Deriving a timing policy with Algorithm 1 (binary search)\n";
  std::cout << "Each trial is a full (scaled-down) training session.\n\n";

  BinarySearchConfig cfg;
  cfg.beta = 0.01;       // accuracy margin around the BSP target
  cfg.max_settings = 3;  // M: candidate timings to explore
  cfg.runs_per_setting = 2;  // R: repetitions per candidate (5 in the paper)

  const auto result = binary_search_timing(
      [](double fraction, int repetition) {
        const RunResult r = TrainingSession(request_for(fraction, repetition)).run();
        TrialOutcome out;
        out.converged_accuracy = r.diverged ? 0.0 : r.converged_accuracy;
        out.train_time_seconds = r.train_time_seconds;
        out.diverged = r.diverged;
        std::cout << "  trial: switch at " << fraction * 100 << "%, rep " << repetition
                  << " -> acc " << out.converged_accuracy << (r.diverged ? " (diverged)" : "")
                  << "\n";
        return out;
      },
      cfg);

  std::cout << "\nBSP target accuracy A = " << result.target_accuracy << "\n";
  for (const auto& c : result.explored)
    std::cout << "  candidate " << c.fraction * 100 << "%: mean acc " << c.mean_accuracy
              << (c.in_band ? "  [in band]" : "  [out of band]") << "\n";
  std::cout << "\nDerived timing policy: switch from BSP to ASP at "
            << result.switch_fraction * 100 << "% of the workload\n";
  std::cout << "Search cost: " << result.search_cost_seconds / 60.0 << " virtual minutes over "
            << result.sessions_run << " sessions\n";
  return 0;
}
