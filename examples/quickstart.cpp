// Quickstart: train one job three ways — pure BSP, pure ASP, and the
// Sync-Switch hybrid — and compare accuracy and (virtual) training time.
//
//   $ ./build/examples/quickstart
//
// This is the paper's headline result in miniature: the hybrid keeps BSP's
// converged accuracy at a fraction of its training time.
#include <iostream>

#include "core/session.h"

using namespace ss;

namespace {

RunRequest base_request() {
  RunRequest req;

  // --- Workload: what to train.  A CIFAR-10-like synthetic task and the
  // ResNet32 stand-in from the model zoo.
  req.workload.arch = ModelArch::kResNet32Lite;
  req.workload.data = SyntheticSpec::cifar10_like();
  req.workload.data.train_size = 16384;
  req.workload.data.test_size = 4096;
  req.workload.total_steps = 2048;      // minibatch-step budget
  req.workload.hyper.batch_size = 64;   // B
  req.workload.hyper.learning_rate = 0.05;  // eta (BSP phase uses n*eta)
  req.workload.hyper.momentum = 0.9;
  req.workload.eval_interval = 64;

  // --- Cluster: 8 simulated single-GPU nodes with collocated PS shards.
  req.cluster.num_workers = 8;
  req.cluster.compute_per_batch = VTime::from_ms(120.0);
  req.cluster.reference_batch = 64;
  req.cluster.sync_base = VTime::from_ms(287.0);
  req.cluster.sync_quad = VTime::from_ms(6.4);
  req.actuator_time_scale = 0.02;  // scaled-down workload -> scaled overheads
  req.seed = 1;
  return req;
}

void report(const std::string& name, const RunResult& r) {
  std::cout << "  " << name << ": ";
  if (r.diverged) {
    std::cout << "DIVERGED after " << r.steps_completed << " steps\n";
    return;
  }
  std::cout << "accuracy " << r.converged_accuracy << ", time " << r.train_time_seconds / 60.0
            << " min, throughput " << static_cast<int>(r.throughput_images_per_sec)
            << " img/s, staleness " << r.mean_staleness << ", switches " << r.num_switches
            << "\n";
}

}  // namespace

int main() {
  std::cout << "Sync-Switch quickstart: one workload, three synchronization policies\n\n";

  RunRequest bsp = base_request();
  bsp.policy = SyncSwitchPolicy::pure(Protocol::kBsp);

  RunRequest asp = base_request();
  asp.policy = SyncSwitchPolicy::pure(Protocol::kAsp);

  // The hybrid: BSP for the first 6.25% of the workload, then switch to ASP.
  // The configuration policy adjusts batch/LR/momentum at the switch
  // automatically; the switch itself is checkpoint -> restart.
  RunRequest hybrid = base_request();
  hybrid.policy = SyncSwitchPolicy::bsp_to_asp(0.0625);

  const RunResult rb = TrainingSession(bsp).run();
  const RunResult ra = TrainingSession(asp).run();
  const RunResult rh = TrainingSession(hybrid).run();

  report("BSP        ", rb);
  report("ASP        ", ra);
  report("Sync-Switch", rh);

  if (!rh.diverged && !rb.diverged) {
    std::cout << "\nSync-Switch used " << 100.0 * rh.train_time_seconds / rb.train_time_seconds
              << "% of BSP's training time at " << rh.converged_accuracy - rb.converged_accuracy
              << " accuracy difference.\n";
  }
  return 0;
}
