// Elastic training on real threads: the cluster changes under the run.
//
// An ASP run on 4 worker threads survives a scripted failure story:
//
//   * 30% in, worker 1 CRASHES.  The AsyncSnapshotter has been taking
//     copy-on-read snapshots of the sharded PS in the background, so the
//     RecoveryCoordinator rolls parameters + optimizer velocity back to the
//     last snapshot (losing at most one snapshot interval of updates),
//     retires the dead thread, and re-derives hyper-parameters for n = 3.
//   * 60% in, a replacement JOINS: a fresh worker slot (own data shard, own
//     RNG streams) is spawned, pulls the current parameters, and the
//     cluster is back to 4.
//
// The run finishes its full per-worker step budget and lands within
// tolerance of the uninterrupted baseline — the elastic machinery costs a
// bounded window of updates, not convergence.
//
//   $ ./build/example_elastic_training
#include <cmath>
#include <cstdio>
#include <iostream>

#include "data/synthetic.h"
#include "nn/zoo.h"
#include "ps/threaded_runtime.h"

using namespace ss;

namespace {

void print_membership_table(const ThreadedTrainResult& result) {
  std::printf("  %-7s %-7s %8s %9s %9s %13s %11s\n", "event", "worker", "at step",
              "n after", "lr after", "updates lost", "recovery s");
  for (const ThreadedMembershipStats& m : result.membership)
    std::printf("  %-7s %-7d %8lld %9zu %9.4f %13lld %11.6f\n",
                membership_event_name(m.kind).c_str(), m.worker,
                static_cast<long long>(m.at_step), m.workers_after, m.lr_after,
                static_cast<long long>(m.updates_lost), m.recovery_wall_seconds);
}

}  // namespace

int main() {
  std::cout << "Elastic threaded training: crash at 30%, rejoin at 60%\n\n";

  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_size = 4096;
  spec.test_size = 1024;
  const DataSplit data = make_synthetic(spec);

  Rng rng(21);
  Model model = make_model(ModelArch::kResNet32Lite, spec.feature_dim, spec.num_classes, rng);
  std::cout << "initial test accuracy: " << model.evaluate_accuracy(data.test) << "\n\n";

  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kAsp;
  cfg.num_workers = 4;
  cfg.batch_size = 64;
  cfg.steps_per_worker = 150;
  cfg.lr = 0.05;
  cfg.momentum = 0.9;
  cfg.seed = 42;
  cfg.num_ps_shards = 8;

  // Uninterrupted baseline.
  const ThreadedTrainResult clean = threaded_train(model, data.train, cfg);
  Model clean_model = model.clone();
  clean_model.set_params(clean.final_params);
  const double clean_acc = clean_model.evaluate_accuracy(data.test);
  std::cout << "baseline ASP (no failures): " << clean.total_updates
            << " PS updates, test accuracy " << clean_acc << "\n\n";

  // The same run, except the cluster misbehaves: crash at step 45 (30% of
  // 150), a replacement joins at step 90 (60%).  Snapshots every 100 PS
  // updates bound what the crash can destroy.
  cfg.elastic.plan = MembershipPlan({{MembershipEventKind::kCrash, 1, 45},
                                     {MembershipEventKind::kJoin, -1, 90}});
  cfg.elastic.snapshot_interval = 100;
  cfg.elastic.recovery = RecoveryMode::kRestoreSnapshot;

  const ThreadedTrainResult elastic = threaded_train(model, data.train, cfg);
  Model elastic_model = model.clone();
  elastic_model.set_params(elastic.final_params);
  const double elastic_acc = elastic_model.evaluate_accuracy(data.test);

  std::cout << "elastic ASP (crash + rejoin): " << elastic.total_updates
            << " PS updates, " << elastic.snapshots_taken << " snapshots, test accuracy "
            << elastic_acc << "\n\n";
  print_membership_table(elastic);

  std::cout << "\naccuracy delta vs uninterrupted run: " << elastic_acc - clean_acc
            << (std::abs(elastic_acc - clean_acc) < 0.1 ? "  (within tolerance)" : "")
            << "\n";
  std::cout << "\nNote: the crash rolls the sharded PS back to the last asynchronous\n"
               "snapshot (taken copy-on-read, one shard lock at a time, while workers\n"
               "keep pushing), so at most one snapshot interval of updates is lost.\n"
               "The join spawns a fresh worker thread mid-run: barriers are re-sized,\n"
               "the detector re-scoped, and the learning rate re-derived for the new n.\n";
  return 0;
}
