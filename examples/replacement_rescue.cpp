// Permanent-straggler rescue via node replacement, with trace export.
//
//   $ ./build/examples/replacement_rescue [trace.json]
//
// One worker of an 8-node cluster is permanently slow (e.g. a degraded VM).
// The paper's transient-straggler policies cannot fix this — it prescribes
// requesting a replacement node (Section IV-B2).  This example runs that
// policy: the detector flags the slow worker, Sync-Switch evicts it,
// provisions a fresh VM in the background (~100 s, scaled), and the healthy
// replacement rejoins.  Pass a path to also dump a Chrome trace of the run
// (the eviction and rejoin are visible on the worker timelines).
#include <iostream>

#include "common/log.h"
#include "core/session.h"
#include "ps/trace.h"

using namespace ss;

namespace {

RunRequest base_request() {
  RunRequest req;
  req.workload.arch = ModelArch::kResNet32Lite;
  req.workload.data = SyntheticSpec::cifar10_like();
  req.workload.total_steps = 2048;
  req.workload.hyper.batch_size = 64;
  req.workload.hyper.learning_rate = 0.05;
  req.workload.hyper.momentum = 0.9;
  req.workload.eval_interval = 64;
  req.cluster.num_workers = 8;
  req.cluster.compute_per_batch = VTime::from_ms(120.0);
  req.cluster.reference_batch = 64;
  req.cluster.sync_base = VTime::from_ms(287.0);
  req.cluster.sync_quad = VTime::from_ms(6.4);
  req.policy = SyncSwitchPolicy::bsp_to_asp(0.25);
  req.actuator_time_scale = 2048.0 / 65536.0;
  req.seed = 1;
  // One permanent straggler: a single episode far longer than the run.
  req.stragglers.num_stragglers = 1;
  req.stragglers.occurrences = 1;
  req.stragglers.extra_latency_ms = 30.0;
  req.stragglers.max_duration = VTime::from_minutes(600.0);
  req.stragglers.horizon = VTime::from_seconds(1.0);
  return req;
}

void report(const std::string& name, const RunResult& r) {
  std::cout << "  " << name << ": accuracy " << r.converged_accuracy << ", time "
            << r.train_time_seconds / 60.0 << " min\n";
}

}  // namespace

int main(int argc, char** argv) {
  set_log_level(LogLevel::kInfo);  // show eviction / rejoin decisions
  std::cout << "Replacement rescue: 8 workers, worker permanently slowed ~3.4x\n\n";

  RunRequest baseline = base_request();
  const RunResult rb = TrainingSession(baseline).run();

  RunRequest replace = base_request();
  replace.policy.online = OnlinePolicy::kReplace;
  TraceRecorder trace;
  if (argc > 1) replace.observer = &trace;
  const RunResult rr = TrainingSession(replace).run();

  std::cout << "\n";
  report("Baseline (drags the straggler)", rb);
  report("Replace  (fresh VM takes over)", rr);
  std::cout << "\nReplacement recovered "
            << 100.0 * (rb.train_time_seconds - rr.train_time_seconds) / rb.train_time_seconds
            << "% of the straggler's time tax.\n";

  if (argc > 1) {
    trace.save_chrome_trace(argv[1]);
    std::cout << "trace: " << trace.total_recorded() << " events -> " << argv[1]
              << " (open in chrome://tracing; the evicted slot's lane goes quiet,\n"
                 "then resumes at full speed when the replacement joins)\n";
  }
  return 0;
}
