// Real multi-threaded parameter-server training (no simulation).
//
// Runs the same BSP and ASP protocol logic with OS threads against a
// mutex-protected parameter server, demonstrating that the PS semantics in
// this library are genuinely concurrent — gradient staleness under ASP is
// measured, not simulated, here.
//
// The headline demo is the paper's thesis on actual threads: a transient
// straggler is injected mid-BSP-phase (wall-clock slowdown on one worker),
// the shared throughput detector flags it, and the runtime live-switches
// BSP -> ASP at the policy-chosen step — no checkpoint, no restart — then
// reports per-phase throughput.
//
//   $ ./build/example_threaded_training
#include <cstdio>
#include <iostream>

#include "data/synthetic.h"
#include "nn/zoo.h"
#include "ps/threaded_runtime.h"

using namespace ss;

namespace {

void print_phase_table(const ThreadedTrainResult& result) {
  std::printf("  %-5s %-9s %7s %8s %10s %10s %8s %9s\n", "phase", "protocol", "steps",
              "updates", "staleness", "upd/s", "wall s", "wire MB");
  for (std::size_t i = 0; i < result.phases.size(); ++i) {
    const ThreadedPhaseStats& s = result.phases[i];
    std::printf("  %-5zu %-9s %7lld %8lld %10.2f %10.1f %8.3f %9.2f%s\n", i,
                protocol_name(s.protocol).c_str(), static_cast<long long>(s.steps),
                static_cast<long long>(s.updates), s.mean_staleness, s.updates_per_sec,
                s.wall_seconds,
                static_cast<double>(s.push_bytes) / (1024.0 * 1024.0),
                s.ended_by_trigger ? "   <- trigger" : "");
  }
}

}  // namespace

int main() {
  std::cout << "Threaded PS training: 4 worker threads, one shared parameter server\n\n";

  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_size = 4096;
  spec.test_size = 1024;
  const DataSplit data = make_synthetic(spec);

  Rng rng(21);
  Model model = make_model(ModelArch::kResNet32Lite, spec.feature_dim, spec.num_classes, rng);
  const double initial_acc = model.evaluate_accuracy(data.test);
  std::cout << "initial test accuracy: " << initial_acc << "\n\n";

  for (Protocol protocol : {Protocol::kBsp, Protocol::kAsp}) {
    ThreadedTrainConfig cfg;
    cfg.protocol = protocol;
    cfg.num_workers = 4;
    cfg.batch_size = 64;
    cfg.steps_per_worker = 150;
    cfg.lr = protocol == Protocol::kBsp ? 0.2 : 0.05;  // linear scaling rule
    cfg.momentum = 0.9;
    cfg.seed = 42;

    const ThreadedTrainResult result = threaded_train(model, data.train, cfg);
    Model trained = model.clone();
    trained.set_params(result.final_params);
    std::cout << protocol_name(protocol) << ": " << result.total_updates << " PS updates, "
              << "mean staleness " << result.mean_staleness << ", test accuracy "
              << trained.evaluate_accuracy(data.test) << "\n";
  }

  // Compressed ASP on an 8-shard server: each worker thread encodes its push
  // through its CompressorBank slot; sparse top-k pushes lock only the
  // shards holding kept coordinates.
  {
    ThreadedTrainConfig cfg;
    cfg.protocol = Protocol::kAsp;
    cfg.num_workers = 4;
    cfg.batch_size = 64;
    cfg.steps_per_worker = 150;
    cfg.lr = 0.05;
    cfg.momentum = 0.9;
    cfg.seed = 42;
    cfg.num_ps_shards = 8;
    cfg.compression = CompressionSpec::topk(0.05);

    const ThreadedTrainResult result = threaded_train(model, data.train, cfg);
    Model trained = model.clone();
    trained.set_params(result.final_params);
    const auto dense_bytes = static_cast<double>(result.total_updates) *
                             static_cast<double>(model.num_params() * sizeof(float));
    std::cout << "ASP + " << cfg.compression.label() << " (8 shards): "
              << result.total_updates << " PS updates, mean staleness "
              << result.mean_staleness << ", test accuracy "
              << trained.evaluate_accuracy(data.test) << ", wire "
              << 100.0 * static_cast<double>(result.push_bytes) / dense_bytes
              << "% of fp32\n";
  }

  // ----------------------------------------------------------------------
  // Live switching under a transient straggler (paper Section VI-B3, on
  // real threads).  Worker 2 is slowed 15x starting 10 ms into the run —
  // mid-BSP-phase — by the wall-clock injection hook.  The BSP phase runs
  // under a kStragglerDetected trigger: once the shared detector sees
  // worker 2's throughput collapse (two consecutive detection windows, so
  // ordinary scheduler jitter does not fire it), every worker quiesces at
  // the drain barrier and the run continues under ASP, where the straggler
  // delays only its own pushes instead of the whole barrier round.
  // ----------------------------------------------------------------------
  {
    std::cout << "\nLive BSP -> ASP switch with a transient straggler (worker 2, 15x):\n";
    ThreadedTrainConfig cfg;
    cfg.schedule = SwitchSchedule::reactive(Protocol::kBsp, Protocol::kAsp);
    cfg.num_workers = 4;
    cfg.batch_size = 64;
    cfg.steps_per_worker = 150;
    cfg.lr = 0.05;  // base eta: the config policy scales the BSP phase to 4x
    cfg.momentum = 0.9;
    cfg.seed = 42;
    cfg.num_ps_shards = 8;
    cfg.stragglers = StragglerSchedule::transient(/*worker=*/2,
                                                  VTime::from_ms(10.0),
                                                  VTime::from_seconds(30.0),
                                                  /*slow_factor=*/15.0);
    cfg.detector.window_size = 3;
    cfg.detector.consecutive_required = 2;
    cfg.detector.min_relative_gap = 0.3;

    const ThreadedTrainResult result = threaded_train(model, data.train, cfg);
    Model trained = model.clone();
    trained.set_params(result.final_params);
    if (result.phases.size() > 1 && result.phases[0].ended_by_trigger)
      std::cout << "  detector fired: switched to ASP at local step "
                << result.phases[0].steps << " (policy-chosen)\n";
    else
      std::cout << "  detector did not fire within the budget (no switch)\n";
    print_phase_table(result);
    std::cout << "  final test accuracy " << trained.evaluate_accuracy(data.test) << "\n";
  }

  std::cout << "\nNote: ASP applies every worker push individually (staleness > 0); BSP\n"
               "aggregates per barrier round (staleness = 0 by construction).  Compressed\n"
               "pushes travel as CompressedPush objects; sparse ones apply per shard.\n"
               "Phase transitions happen live at a drain barrier: in-flight pushes are\n"
               "applied, SSP waiters released, and versions re-snapshotted — no restart.\n";
  return 0;
}
