// Real multi-threaded parameter-server training (no simulation).
//
// Runs the same BSP and ASP protocol logic with OS threads against a
// mutex-protected parameter server, demonstrating that the PS semantics in
// this library are genuinely concurrent — gradient staleness under ASP is
// measured, not simulated, here.
//
//   $ ./build/examples/threaded_training
#include <iostream>

#include "data/synthetic.h"
#include "nn/zoo.h"
#include "ps/threaded_runtime.h"

using namespace ss;

int main() {
  std::cout << "Threaded PS training: 4 worker threads, one shared parameter server\n\n";

  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_size = 4096;
  spec.test_size = 1024;
  const DataSplit data = make_synthetic(spec);

  Rng rng(21);
  Model model = make_model(ModelArch::kResNet32Lite, spec.feature_dim, spec.num_classes, rng);
  const double initial_acc = model.evaluate_accuracy(data.test);
  std::cout << "initial test accuracy: " << initial_acc << "\n\n";

  for (Protocol protocol : {Protocol::kBsp, Protocol::kAsp}) {
    ThreadedTrainConfig cfg;
    cfg.protocol = protocol;
    cfg.num_workers = 4;
    cfg.batch_size = 64;
    cfg.steps_per_worker = 150;
    cfg.lr = protocol == Protocol::kBsp ? 0.2 : 0.05;  // linear scaling rule
    cfg.momentum = 0.9;
    cfg.seed = 42;

    const ThreadedTrainResult result = threaded_train(model, data.train, cfg);
    Model trained = model.clone();
    trained.set_params(result.final_params);
    std::cout << protocol_name(protocol) << ": " << result.total_updates << " PS updates, "
              << "mean staleness " << result.mean_staleness << ", test accuracy "
              << trained.evaluate_accuracy(data.test) << "\n";
  }

  // Compressed ASP on an 8-shard server: each worker thread encodes its push
  // through its CompressorBank slot; sparse top-k pushes lock only the
  // shards holding kept coordinates.
  {
    ThreadedTrainConfig cfg;
    cfg.protocol = Protocol::kAsp;
    cfg.num_workers = 4;
    cfg.batch_size = 64;
    cfg.steps_per_worker = 150;
    cfg.lr = 0.05;
    cfg.momentum = 0.9;
    cfg.seed = 42;
    cfg.num_ps_shards = 8;
    cfg.compression = CompressionSpec::topk(0.05);

    const ThreadedTrainResult result = threaded_train(model, data.train, cfg);
    Model trained = model.clone();
    trained.set_params(result.final_params);
    const auto dense_bytes = static_cast<double>(result.total_updates) *
                             static_cast<double>(model.num_params() * sizeof(float));
    std::cout << "ASP + " << cfg.compression.label() << " (8 shards): "
              << result.total_updates << " PS updates, mean staleness "
              << result.mean_staleness << ", test accuracy "
              << trained.evaluate_accuracy(data.test) << ", wire "
              << 100.0 * static_cast<double>(result.push_bytes) / dense_bytes
              << "% of fp32\n";
  }

  std::cout << "\nNote: ASP applies every worker push individually (staleness > 0); BSP\n"
               "aggregates per barrier round (staleness = 0 by construction).  Compressed\n"
               "pushes travel as CompressedPush objects; sparse ones apply per shard.\n";
  return 0;
}
