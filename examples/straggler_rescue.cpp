// Online straggler policies in action (paper Section IV-B2 / VI-B3).
//
// Injects transient stragglers into the BSP phase of a Sync-Switch job and
// compares the straggler-agnostic baseline against the greedy and elastic
// online policies.
//
//   $ ./build/examples/straggler_rescue
#include <iostream>

#include "core/session.h"

using namespace ss;

namespace {

RunRequest base_request() {
  RunRequest req;
  req.workload.arch = ModelArch::kResNet32Lite;
  req.workload.data = SyntheticSpec::cifar10_like();
  req.workload.data.train_size = 16384;
  req.workload.data.test_size = 4096;
  req.workload.total_steps = 2048;
  req.workload.hyper.batch_size = 64;
  req.workload.hyper.learning_rate = 0.05;
  req.workload.eval_interval = 64;
  req.cluster.num_workers = 8;
  req.cluster.compute_per_batch = VTime::from_ms(120.0);
  req.cluster.sync_base = VTime::from_ms(287.0);
  req.cluster.sync_quad = VTime::from_ms(6.4);
  req.actuator_time_scale = 0.02;
  req.seed = 1;

  // Use a generous BSP fraction so stragglers have a window to strike.
  req.policy = SyncSwitchPolicy::bsp_to_asp(0.25);
  req.policy.detector.window_size = 6;
  req.policy.detector.consecutive_required = 3;

  // Two transient stragglers, moderate slowness (paper scenario 2 style).
  req.stragglers.num_stragglers = 2;
  req.stragglers.occurrences = 2;
  req.stragglers.extra_latency_ms = 30.0;
  req.stragglers.max_duration = VTime::from_seconds(100.0);
  req.stragglers.horizon = VTime::from_minutes(2.0);
  return req;
}

}  // namespace

int main() {
  std::cout << "Transient stragglers: baseline vs greedy vs elastic policies\n\n";

  double baseline_time = 0.0;
  for (OnlinePolicy online :
       {OnlinePolicy::kNone, OnlinePolicy::kGreedy, OnlinePolicy::kElastic}) {
    RunRequest req = base_request();
    req.policy.online = online;
    const RunResult r = TrainingSession(req).run();
    if (online == OnlinePolicy::kNone) baseline_time = r.train_time_seconds;
    std::cout << "  " << online_policy_name(online) << ": accuracy " << r.converged_accuracy
              << ", time " << r.train_time_seconds / 60.0 << " min ("
              << 100.0 * r.train_time_seconds / baseline_time << "% of baseline), switches "
              << r.num_switches << "\n";
  }

  std::cout << "\nThe elastic policy evicts detected stragglers for the rest of the BSP\n"
               "phase and restores the full cluster for ASP, avoiding both barrier\n"
               "stalls and repeated protocol switches.\n";
  return 0;
}
