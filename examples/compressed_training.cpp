// Gradient compression + Sync-Switch: the combination the paper's related
// work suggests ("these efforts are orthogonal to our work but might be
// combined with Sync-Switch to achieve further training speedup", §VII).
//
//   $ ./build/examples/compressed_training
//
// Trains one communication-bound job four ways: uncompressed BSP, BSP with
// QSGD 8-bit pushes, Sync-Switch, and Sync-Switch + QSGD.  The cluster
// models a real-sized ResNet32 payload (~1.8 MB of fp32 gradients) on a
// contended 25 MB/s link, where the push leg rivals the compute leg.
#include <iostream>

#include "compress/spec.h"
#include "core/session.h"

using namespace ss;

namespace {

RunRequest base_request() {
  RunRequest req;
  req.workload.arch = ModelArch::kResNet32Lite;
  req.workload.data = SyntheticSpec::cifar10_like();
  req.workload.total_steps = 2048;
  req.workload.hyper.batch_size = 64;
  req.workload.hyper.learning_rate = 0.05;
  req.workload.hyper.momentum = 0.9;
  req.workload.eval_interval = 64;

  req.cluster.num_workers = 8;
  req.cluster.compute_per_batch = VTime::from_ms(120.0);
  req.cluster.reference_batch = 64;
  req.cluster.sync_base = VTime::from_ms(287.0);
  req.cluster.sync_quad = VTime::from_ms(6.4);
  // Communication-bound: a real 460k-param ResNet32's gradients on a
  // congested link.
  req.cluster.payload_bytes = 1.8e6;
  req.cluster.bandwidth_bps = 25.0 * 1024 * 1024;
  req.actuator_time_scale = 0.02;
  req.seed = 1;
  return req;
}

void report(const std::string& name, const RunResult& r) {
  std::cout << "  " << name << ": ";
  if (r.diverged) {
    std::cout << "DIVERGED after " << r.steps_completed << " steps\n";
    return;
  }
  std::cout << "accuracy " << r.converged_accuracy << ", time " << r.train_time_seconds / 60.0
            << " min, throughput " << static_cast<int>(r.throughput_images_per_sec)
            << " img/s\n";
}

}  // namespace

int main() {
  std::cout << "Compression x Sync-Switch on a communication-bound cluster\n\n";

  RunRequest bsp = base_request();
  bsp.policy = SyncSwitchPolicy::pure(Protocol::kBsp);

  RunRequest bsp_q = bsp;
  bsp_q.compression = CompressionSpec::qsgd(255);  // 8-bit QSGD pushes

  RunRequest hybrid = base_request();
  hybrid.policy = SyncSwitchPolicy::bsp_to_asp(0.0625);

  RunRequest hybrid_q = hybrid;
  hybrid_q.compression = CompressionSpec::qsgd(255);

  const RunResult r1 = TrainingSession(bsp).run();
  const RunResult r2 = TrainingSession(bsp_q).run();
  const RunResult r3 = TrainingSession(hybrid).run();
  const RunResult r4 = TrainingSession(hybrid_q).run();

  report("BSP, fp32              ", r1);
  report("BSP, QSGD 8-bit        ", r2);
  report("Sync-Switch, fp32      ", r3);
  report("Sync-Switch, QSGD 8-bit", r4);

  if (!r1.diverged && !r4.diverged) {
    std::cout << "\nThe combination trains in "
              << 100.0 * r4.train_time_seconds / r1.train_time_seconds
              << "% of uncompressed BSP's time (accuracy difference "
              << r4.converged_accuracy - r1.converged_accuracy << ").\n";
  }
  return 0;
}
