// Online policy controller: the simulator in the loop as a digital twin.
//
// The paper's Sync-Switch policies pick their switch point offline (timing
// policy) or react to a detector threshold.  The controller closes the loop
// a third way: while the threaded runtime trains on real OS threads, every
// decision barrier snapshots what the last interval actually cost (healthy
// step time, wire bytes, straggler factor), prices a candidate grid on the
// simulator, and enacts the winner live — no checkpoint, no restart.
//
// The demo injects a wall-clock straggler on one worker and races four
// runs on the same data, model, and straggler:
//
//   fixed BSP     — every round gated on the slow worker,
//   fixed ASP     — the best fixed *protocol* under a straggler,
//   controller    — starts at BSP, *discovers* the straggler from its own
//                   measurements and enacts the paper's BSP -> ASP move on
//                   its own (protocol moves only),
//   controller+e  — the same controller also allowed the membership move:
//                   it evicts the straggler's slot, and the remaining
//                   healthy workers leave every fixed protocol behind.
//
// The protocol-only controller demonstrates the discovery but trails fixed
// ASP on the clock: it pays for the straggled BSP interval it starts on and
// for its own decisions, and every later drain barrier is still gated on
// the slow worker's step quota whatever the protocol runs between barriers.
// The eviction-enabled controller is the one that beats the best fixed
// choice on wall-clock-to-accuracy — without anyone telling either
// controller a straggler exists.
//
//   $ ./build/example_online_controller
#include <chrono>
#include <cstdio>
#include <optional>
#include <utility>
#include <vector>

#include "data/synthetic.h"
#include "nn/zoo.h"
#include "ps/threaded_runtime.h"

using namespace ss;

namespace {

constexpr double kTargetAccuracy = 0.80;
constexpr std::int64_t kStepsPerWorker = 96;
constexpr std::int64_t kInterval = 8;  // decision / eval barrier spacing
constexpr int kStragglerSlot = 2;
constexpr double kStragglerFactor = 30.0;

struct EvalPoint {
  std::int64_t step = 0;
  double wall_seconds = 0.0;
  double accuracy = 0.0;
};

struct RaceResult {
  ThreadedTrainResult train;
  std::vector<EvalPoint> curve;
  double wall_seconds = 0.0;
  double final_accuracy = 0.0;
  std::optional<double> time_to_target;
};

ThreadedTrainConfig base_config() {
  ThreadedTrainConfig cfg;
  cfg.num_workers = 4;
  cfg.batch_size = 32;
  cfg.steps_per_worker = kStepsPerWorker;
  cfg.lr = 0.01;
  cfg.momentum = 0.9;
  cfg.seed = 7;
  // The same wall-clock straggler in every run: worker 2 sleeps
  // (factor - 1) x its measured step time, every step, from t = 0.
  cfg.stragglers = StragglerSchedule::transient(
      kStragglerSlot, VTime::from_seconds(0.0), VTime::from_seconds(1e9), kStragglerFactor);
  return cfg;
}

/// A fixed-protocol run expressed as a repeated-phase schedule, so the
/// drain barrier (and with it the eval hook) fires every kInterval steps —
/// the same cadence the controller run decides at.
SwitchSchedule fixed_schedule(Protocol proto) {
  std::vector<SwitchPhase> phases;
  for (std::int64_t s = kInterval; s < kStepsPerWorker; s += kInterval)
    phases.push_back({proto, SwitchTrigger::kStepCount, kInterval, -1});
  phases.push_back({proto, SwitchTrigger::kStepCount, 0, -1});
  return SwitchSchedule(std::move(phases));
}

RaceResult race(const Model& proto, const DataSplit& data, ThreadedTrainConfig cfg) {
  RaceResult out;
  Model eval_model = proto.clone();
  cfg.eval_hook = [&](std::int64_t step, double wall, std::span<const float> params) {
    eval_model.set_params(std::vector<float>(params.begin(), params.end()));
    out.curve.push_back({step, wall, eval_model.evaluate_accuracy(data.test)});
  };
  const auto t0 = std::chrono::steady_clock::now();
  out.train = threaded_train(proto, data.train, cfg);
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  for (const EvalPoint& p : out.curve) {
    if (p.accuracy >= kTargetAccuracy) {
      out.time_to_target = p.wall_seconds;
      break;
    }
  }
  Model final_model = proto.clone();
  final_model.set_params(out.train.final_params);
  out.final_accuracy = final_model.evaluate_accuracy(data.test);
  return out;
}

void print_race(const char* name, const RaceResult& r) {
  std::printf("  %-11s wall %6.3f s, final acc %.3f, acc>=%.2f after %s\n", name,
              r.wall_seconds, r.final_accuracy, kTargetAccuracy,
              r.time_to_target ? (std::to_string(*r.time_to_target).substr(0, 5) + " s").c_str()
                               : "never");
}

}  // namespace

int main() {
  std::printf("Online controller demo: 4 worker threads, x%.0f straggler on worker %d\n\n",
              kStragglerFactor, kStragglerSlot);

  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_size = 2048;
  spec.test_size = 512;
  spec.num_classes = 10;
  spec.feature_dim = 64;
  spec.class_separation = 0.8;
  const DataSplit data = make_synthetic(spec);

  Rng rng(11);
  const Model proto = make_model(ModelArch::kLinear, spec.feature_dim, spec.num_classes, rng);

  // --- fixed BSP: every round waits for the straggler --------------------
  ThreadedTrainConfig bsp_cfg = base_config();
  bsp_cfg.schedule = fixed_schedule(Protocol::kBsp);
  const RaceResult bsp = race(proto, data, bsp_cfg);

  // --- fixed ASP: the right answer, if you already knew ------------------
  ThreadedTrainConfig asp_cfg = base_config();
  asp_cfg.schedule = fixed_schedule(Protocol::kAsp);
  const RaceResult asp = race(proto, data, asp_cfg);

  // --- controller: starts at BSP, must discover the straggler ------------
  ThreadedTrainConfig ctrl_cfg = base_config();
  ctrl_cfg.protocol = Protocol::kBsp;
  ctrl_cfg.controller.enabled = true;
  ctrl_cfg.controller.decision_interval = kInterval;
  ctrl_cfg.controller.min_steps_between_moves = kInterval;
  ctrl_cfg.controller.min_predicted_gain = 0.10;
  // Short twin horizon: decisions at this interval only need the coarse
  // ranking, and a cold decision's simulation cost is charged to the run's
  // wall clock — keep it cheap.
  ctrl_cfg.controller.twin_horizon_steps = 96;
  const RaceResult ctrl = race(proto, data, ctrl_cfg);

  // --- controller + eviction: the membership move joins the grid ---------
  ThreadedTrainConfig evict_cfg = ctrl_cfg;
  evict_cfg.controller.consider_eviction = true;
  evict_cfg.controller.min_workers = 2;
  const RaceResult ctrl_evict = race(proto, data, evict_cfg);

  std::printf("wall-clock race to %.2f test accuracy (identical straggler in all runs):\n",
              kTargetAccuracy);
  print_race("fixed BSP", bsp);
  print_race("fixed ASP", asp);
  print_race("controller", ctrl);
  print_race("ctrl+evict", ctrl_evict);

  for (const auto& [name, r] : {std::pair<const char*, const RaceResult&>{"controller", ctrl},
                                {"ctrl+evict", ctrl_evict}}) {
    std::printf("\n%s decisions (measure -> twin -> score -> enact):\n", name);
    std::printf("  %-6s %-6s %-14s %-15s %6s %6s %7s %5s\n", "step", "from", "chosen",
                "reason", "pred%", "real%", "factor", "hits");
    for (const ControllerDecision& d : r.train.decisions) {
      std::printf("  %-6lld %-6s %-14s %-15s %6.1f %6.1f %7.1f %5zu\n",
                  static_cast<long long>(d.at_step), protocol_name(d.protocol_before).c_str(),
                  d.chosen.label().c_str(), d.reason.c_str(), d.predicted_gain * 100.0,
                  d.realized_gain * 100.0, d.measured.straggler_factor, d.cache_hits);
    }
    std::printf("%s phases:\n", name);
    std::printf("  %-9s %6s %8s %8s %10s\n", "protocol", "steps", "updates", "wall s",
                "upd/s");
    for (const ThreadedPhaseStats& s : r.train.phases)
      std::printf("  %-9s %6lld %8lld %8.3f %10.1f\n", protocol_name(s.protocol).c_str(),
                  static_cast<long long>(s.steps), static_cast<long long>(s.updates),
                  s.wall_seconds, s.updates_per_sec);
  }

  const bool switched = !ctrl.train.decisions.empty() && ctrl.train.phases.size() >= 2 &&
                        ctrl.train.phases.back().protocol != Protocol::kBsp;
  const bool evicted = !ctrl_evict.train.membership.empty();
  std::printf("\n%s\n", switched
                            ? "controller discovered the straggler and switched away from BSP"
                            : "controller held BSP (straggler not worth a move this run)");
  if (evicted)
    std::printf("eviction controller retired the straggler's slot (%zu workers remain)\n",
                ctrl_evict.train.membership.back().workers_after);
  return 0;
}
