// Ablation: the K-variant protocol family (Dutta et al. [11]) vs Sync-Switch.
//
// The paper cites Dutta et al.'s K-sync / K-async SGD variants as the
// closest protocol-design alternative: "the synchronization degree is
// controlled by a new hyper-parameter" (Section VII).  Sync-Switch's pitch
// is that it needs no such hyper-parameter tuning.  This bench sweeps K for
// all four variants on experiment setup 1 and places Sync-Switch next to
// them: the K protocols trace a throughput/accuracy trade-off curve (the
// Fig 1 design space), while Sync-Switch sits at the top-right corner —
// BSP-level accuracy at near-ASP time — without a K to tune.
#include <iostream>
#include <vector>

#include "common/table.h"
#include "setups.h"

using namespace ss;

namespace {

SyncSwitchPolicy k_policy(Protocol proto, int k) {
  SyncSwitchPolicy p = SyncSwitchPolicy::pure(proto);
  p.k_param = k;
  return p;
}

}  // namespace

int main() {
  const auto s = setups::setup1();
  const auto n = static_cast<int>(s.cluster.num_workers);
  std::cout << "Ablation: K-sync family (Dutta et al.) vs Sync-Switch (" << s.workload_name
            << ")\n";

  struct Row {
    std::string label;
    SyncSwitchPolicy policy;
  };
  std::vector<Row> rows = {
      {"BSP (= K-sync, K=n)", SyncSwitchPolicy::pure(Protocol::kBsp)},
  };
  for (const int k : {n / 4, n / 2, 3 * n / 4}) {
    rows.push_back({"K-sync       K=" + std::to_string(k), k_policy(Protocol::kKSync, k)});
    rows.push_back({"K-batch-sync K=" + std::to_string(k), k_policy(Protocol::kKBatchSync, k)});
  }
  for (const int k : {2, n / 2}) {
    rows.push_back({"K-async      K=" + std::to_string(k), k_policy(Protocol::kKAsync, k)});
    rows.push_back(
        {"K-batch-async K=" + std::to_string(k), k_policy(Protocol::kKBatchAsync, k)});
  }
  rows.push_back({"ASP", SyncSwitchPolicy::pure(Protocol::kAsp)});
  rows.push_back({"Sync-Switch (no K to tune)", SyncSwitchPolicy::bsp_to_asp(s.policy_fraction)});

  const auto bsp = setups::run_reps(s, rows[0].policy);
  const double threshold = bsp.mean_accuracy;
  std::vector<double> bsp_ttas;
  for (const auto& r : bsp.runs)
    if (auto t = r.time_to_accuracy(threshold)) bsp_ttas.push_back(*t);

  Table t({"protocol", "converged acc", "std", "time (min)", "vs BSP", "TTA speedup",
           "staleness"});
  for (const auto& row : rows) {
    const auto stats = setups::run_reps(s, row.policy);
    std::vector<double> ttas;
    double staleness = 0.0;
    for (const auto& r : stats.runs) {
      if (r.diverged) continue;
      staleness += r.mean_staleness;
      if (auto tta = r.time_to_accuracy(threshold)) ttas.push_back(*tta);
    }
    staleness /= std::max<std::size_t>(1, stats.runs.size());
    const double tta_speedup =
        (!ttas.empty() && !bsp_ttas.empty()) ? mean_of(bsp_ttas) / mean_of(ttas) : 0.0;

    const bool failed = setups::all_failed(stats, s.workload.data.num_classes);
    t.add_row({row.label, failed ? "Fail" : Table::num(stats.mean_accuracy, 4),
               failed ? "-" : Table::num(stats.std_accuracy, 4),
               Table::num(stats.mean_time_s / 60.0, 2),
               Table::ratio(bsp.mean_time_s / stats.mean_time_s),
               tta_speedup > 0.0 ? Table::ratio(tta_speedup) : "N/A",
               Table::num(staleness, 2)});
  }
  t.print("K-variant protocols vs Sync-Switch (setup 1)");

  std::cout << "\nExpected shape: the async variants trade accuracy for speed along the\n"
               "Fig 1 frontier (staleness grows as K shrinks); the sync variants keep\n"
               "zero staleness but pay more rounds per workload, so without stragglers\n"
               "K < n is *slower* than BSP.  Sync-Switch reaches BSP-level accuracy at\n"
               "a time no static K matches, with no extra hyper-parameter.\n";

  // --- Under transient stragglers, dropping the slowest workers is exactly
  // what K-sync buys (Dutta et al.'s motivation): re-run the interesting
  // subset under the paper's moderate scenario (2 stragglers x 4 episodes,
  // 30 ms injected latency).
  const StragglerScenario scenario = StragglerScenario::moderate();
  const std::vector<Row> srows = {
      {"BSP", SyncSwitchPolicy::pure(Protocol::kBsp)},
      {"K-sync       K=6", k_policy(Protocol::kKSync, 6)},
      {"K-batch-sync K=6", k_policy(Protocol::kKBatchSync, 6)},
      {"ASP", SyncSwitchPolicy::pure(Protocol::kAsp)},
      {"Sync-Switch (elastic)",
       [&] {
         SyncSwitchPolicy p = SyncSwitchPolicy::bsp_to_asp(s.policy_fraction);
         p.online = OnlinePolicy::kElastic;
         return p;
       }()},
  };
  const auto sbsp = setups::run_reps_straggler(s, srows[0].policy, scenario);
  Table st({"protocol", "converged acc", "std", "time (min)", "vs BSP"});
  for (const auto& row : srows) {
    const auto stats = setups::run_reps_straggler(s, row.policy, scenario);
    const bool failed = setups::all_failed(stats, s.workload.data.num_classes);
    st.add_row({row.label, failed ? "Fail" : Table::num(stats.mean_accuracy, 4),
                failed ? "-" : Table::num(stats.std_accuracy, 4),
                Table::num(stats.mean_time_s / 60.0, 2),
                Table::ratio(sbsp.mean_time_s / stats.mean_time_s)});
  }
  st.print("same protocols under moderate transient stragglers");

  std::cout << "\nExpected shape: stragglers hurt BSP most (the barrier waits for them);\n"
               "K-sync K=6 sheds the two slowed workers each round and recovers part of\n"
               "the loss; Sync-Switch's elastic policy keeps both accuracy and speed.\n";
  return 0;
}
