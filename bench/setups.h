// The three experiment setups of the paper's Table I, scaled to this repo's
// simulated substrate, shared by every bench binary and the examples.
//
//   Setup 1: "ResNet32 / CIFAR-10"  -> resnet32_lite / synthetic-10,  n = 8
//   Setup 2: "ResNet50 / CIFAR-100" -> resnet50_lite / synthetic-100, n = 8
//   Setup 3: "ResNet32 / CIFAR-10"  -> resnet32_lite / synthetic-10,  n = 16
//
// Cluster cost constants are calibrated so the BSP:ASP per-workload time
// ratios match the paper's observed ranges (see EXPERIMENTS.md for the
// calibration table).  The paper's 64K-step budget is scaled down ~16x-32x;
// the LR schedule keeps its shape (x0.1 at 50%, x0.01 at 75%).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/run_cache.h"
#include "core/session.h"

namespace ss::setups {

/// Repetitions per configuration, as in the paper ("each experiment setup
/// repeated five times").
inline constexpr int kReps = 5;

/// Monte-Carlo trials for the search-cost analysis (paper uses 1000).
inline constexpr int kSearchTrials = 1000;

struct ExperimentSetup {
  int id = 1;
  std::string workload_name;   ///< e.g. "resnet32_lite / synthetic-10"
  Workload workload;
  ClusterSpec cluster;
  double policy_fraction = 0.0625;       ///< switch timing used as this setup's policy
                                         ///< (derived on THIS substrate; see EXPERIMENTS.md)
  double paper_fraction = 0.0625;        ///< the paper's published P_i timing
  std::vector<double> sweep_fractions;   ///< switch timings swept in Fig 11/12/13
  int search_max_settings = 5;           ///< binary-search depth M used in VI-C1
};

ExperimentSetup setup1();
ExperimentSetup setup2();
ExperimentSetup setup3();
ExperimentSetup setup_by_id(int id);

/// Build a clean-run request for a setup with the given policy + seed.
RunRequest make_request(const ExperimentSetup& s, const SyncSwitchPolicy& policy,
                        std::uint64_t seed);

/// Same, with straggler injection.
RunRequest make_straggler_request(const ExperimentSetup& s, const SyncSwitchPolicy& policy,
                                  const StragglerScenario& scenario, std::uint64_t seed);

/// Shared on-disk cache (./.ss_runcache relative to the working directory).
const RunCache& cache();

/// Mean over repetitions helper used across benches.
struct RepStats {
  double mean_accuracy = 0.0;
  double std_accuracy = 0.0;
  double mean_time_s = 0.0;
  double mean_throughput = 0.0;
  int diverged_count = 0;
  std::vector<RunResult> runs;
  /// Run with the highest converged accuracy (paper reports "best runs").
  [[nodiscard]] const RunResult& best() const;
};

/// Run (or load from cache) `kReps` repetitions of a policy on a setup.
RepStats run_reps(const ExperimentSetup& s, const SyncSwitchPolicy& policy);

/// Straggler variant.
RepStats run_reps_straggler(const ExperimentSetup& s, const SyncSwitchPolicy& policy,
                            const StragglerScenario& scenario);

/// Generic variant: `mutate` edits each RunRequest before it is executed
/// (compression specs, cluster overrides, straggler scenarios...).  The
/// mutated request is cached under its own key like every other run.
RepStats run_reps_with(const ExperimentSetup& s, const SyncSwitchPolicy& policy,
                       const std::function<void(RunRequest&)>& mutate);

/// A run "failed" (the paper's divergence error) if the loss diverged or the
/// model collapsed to a degenerate predictor (accuracy indistinguishable
/// from at most 2x chance level).
bool run_failed(const RunResult& r, int num_classes);

/// True when every repetition failed (the paper's "Fail" table entries).
bool all_failed(const RepStats& stats, int num_classes);

}  // namespace ss::setups
