// Figure 1: the synchronization design space.
//
// The paper's Figure 1 sketches converged accuracy vs training throughput:
// BSP sits high-accuracy/low-throughput, ASP the opposite, and the
// semi-synchronous family (SSP, DSSP, group-based) trades between them along
// a frontier — while Sync-Switch claims the top-right corner (both at once).
// This bench *measures* that sketch on experiment setup 1: every protocol
// the paper names is trained for real on the same workload and placed on
// the plane.
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/profiler.h"
#include "data/synthetic.h"
#include "nn/zoo.h"
#include "ps/group_runtime.h"
#include "setups.h"

using namespace ss;

namespace {

struct Point {
  std::string label;
  double accuracy = 0.0;
  double throughput = 0.0;  // images/s
  bool failed = false;
};

/// Run the group-based (Gaia-style) protocol, which lives outside
/// TrainingSession, with the same workload/cluster/repetitions contract as
/// setups::run_reps.
Point run_group_based(const setups::ExperimentSetup& s, std::size_t num_groups) {
  std::vector<double> accs, thrs;
  int diverged = 0;
  for (int rep = 0; rep < setups::kReps; ++rep) {
    const Workload& wl = s.workload;
    const auto seed = static_cast<std::uint64_t>(rep) + 1;
    const DataSplit data = make_synthetic(wl.data);
    const Dataset eval_subset = data.test.head(std::min<std::size_t>(data.test.size(), 2048));

    Rng root(seed * 0x9E3779B97f4A7C15ULL + 17);
    Rng init_rng = root.fork(1);
    Model grad_model = make_model(wl.arch, wl.data.feature_dim, wl.data.num_classes, init_rng);
    Model eval_model = grad_model.clone();

    const std::size_t n = s.cluster.num_workers;
    const auto shards = make_shards(data.train.size(), n);
    std::vector<MinibatchSampler> samplers;
    std::vector<Rng> worker_rngs;
    for (std::size_t w = 0; w < n; ++w) {
      samplers.emplace_back(shards[w], wl.hyper.batch_size, root.fork(100 + w));
      worker_rngs.push_back(root.fork(200 + w));
    }
    TrainingState state(ParameterServer(grad_model.get_params(), wl.hyper.momentum),
                        std::move(samplers), std::move(worker_rngs));

    Profiler profiler;
    GroupRuntime runtime(ClusterModel(s.cluster), grad_model, eval_model, data.train,
                         eval_subset, profiler);
    const PiecewiseDecay schedule =
        PiecewiseDecay::resnet_style(wl.hyper.learning_rate, wl.total_steps);

    GroupConfig cfg;
    cfg.num_groups = num_groups;
    cfg.significance_threshold = 0.01;  // Gaia's initial threshold
    cfg.step_budget = wl.total_steps;
    cfg.lr_schedule = &schedule;
    cfg.lr_multiplier = 1.0;
    cfg.per_worker_batch = wl.hyper.batch_size;
    cfg.momentum = wl.hyper.momentum;
    cfg.eval_interval = wl.eval_interval;
    cfg.divergence_loss_threshold = wl.divergence_loss_threshold;

    StragglerSchedule none;
    const GroupPhaseResult r = runtime.run(state, cfg, none);
    if (r.end == PhaseEnd::kDiverged) {
      ++diverged;
      continue;
    }
    const auto conv = profiler.converged_accuracy();
    accs.push_back(conv ? *conv : profiler.final_accuracy());
    if (r.elapsed.seconds() > 0.0)
      thrs.push_back(static_cast<double>(profiler.total_images()) / r.elapsed.seconds());
  }
  Point pt;
  pt.label = "Group-based (Gaia, G=" + std::to_string(num_groups) + ")";
  pt.failed = accs.empty();
  pt.accuracy = mean_of(accs);
  pt.throughput = mean_of(thrs);
  return pt;
}

Point run_policy(const setups::ExperimentSetup& s, const std::string& label,
                 const SyncSwitchPolicy& policy) {
  const auto stats = setups::run_reps(s, policy);
  Point pt;
  pt.label = label;
  pt.failed = setups::all_failed(stats, s.workload.data.num_classes);
  pt.accuracy = stats.mean_accuracy;
  pt.throughput = stats.mean_throughput;
  return pt;
}

SyncSwitchPolicy k_policy(Protocol proto, int k) {
  SyncSwitchPolicy p = SyncSwitchPolicy::pure(proto);
  p.k_param = k;
  return p;
}

}  // namespace

int main() {
  const auto s = setups::setup1();
  std::cout << "Figure 1: the synchronization design space, measured (" << s.workload_name
            << ")\n";

  std::vector<Point> points;
  points.push_back(run_policy(s, "BSP", SyncSwitchPolicy::pure(Protocol::kBsp)));
  points.push_back(run_policy(s, "SSP(3)", SyncSwitchPolicy::pure(Protocol::kSsp)));
  points.push_back(run_policy(s, "DSSP(3,+8)", SyncSwitchPolicy::pure(Protocol::kDssp)));
  points.push_back(run_policy(s, "K-sync (K=6)", k_policy(Protocol::kKSync, 6)));
  points.push_back(run_policy(s, "K-async (K=2)", k_policy(Protocol::kKAsync, 2)));
  points.push_back(run_group_based(s, 2));
  points.push_back(run_policy(s, "ASP", SyncSwitchPolicy::pure(Protocol::kAsp)));
  points.push_back(
      run_policy(s, "Sync-Switch", SyncSwitchPolicy::bsp_to_asp(s.policy_fraction)));

  Table t({"protocol", "converged acc", "throughput (img/s)"});
  for (const auto& pt : points) {
    t.add_row({pt.label, pt.failed ? "Fail" : Table::num(pt.accuracy, 4),
               pt.failed ? "-" : Table::num(pt.throughput, 0)});
  }
  t.print("design space: accuracy vs throughput");

  // ASCII scatter, accuracy (y) vs throughput (x): the paper's Figure 1.
  const double max_thr =
      std::max_element(points.begin(), points.end(), [](const Point& a, const Point& b) {
        return a.throughput < b.throughput;
      })->throughput;
  double min_acc = 1.0;
  double max_acc = 0.0;
  for (const auto& pt : points) {
    if (pt.failed) continue;
    min_acc = std::min(min_acc, pt.accuracy);
    max_acc = std::max(max_acc, pt.accuracy);
  }
  const int width = 68;
  const int height = 16;
  std::vector<std::string> canvas(height, std::string(width, ' '));
  char marker = 'A';
  std::cout << "\n  accuracy\n";
  std::vector<std::string> legend;
  for (const auto& pt : points) {
    const char m = marker++;
    if (pt.failed) {
      legend.push_back(std::string(1, m) + " = " + pt.label + " (failed)");
      continue;
    }
    const int x = std::clamp(
        static_cast<int>(pt.throughput / max_thr * (width - 1)), 0, width - 1);
    const int y = std::clamp(
        static_cast<int>((max_acc - pt.accuracy) / std::max(1e-9, max_acc - min_acc) *
                         (height - 1)),
        0, height - 1);
    // Points may land on the same cell (protocols with near-identical
    // performance); nudge right until a free cell is found.
    int xx = x;
    while (xx < width - 1 && canvas[static_cast<std::size_t>(y)][static_cast<std::size_t>(xx)] != ' ')
      ++xx;
    canvas[static_cast<std::size_t>(y)][static_cast<std::size_t>(xx)] = m;
    legend.push_back(std::string(1, m) + " = " + pt.label);
  }
  for (const auto& row : canvas) std::cout << "  |" << row << "\n";
  std::cout << "  +" << std::string(width, '-') << "> throughput\n\n";
  for (const auto& l : legend) std::cout << "  " << l << "\n";

  std::cout << "\nExpected shape: BSP top-left, ASP bottom-right, SSP/DSSP/K-variants/\n"
               "group-based along the frontier between them, Sync-Switch top-right\n"
               "(the paper's Figure 1 claim).\n";
  return 0;
}
