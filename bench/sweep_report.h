// Shared report generator for Figures 11/12/13: per-setup switch-timing
// sweeps with training-loss/test-accuracy curves for the best runs and
// converged-accuracy / training-time tables across timings.
#pragma once

#include <iostream>
#include <string>

#include "common/table.h"
#include "setups.h"

namespace ss::setups {

inline SyncSwitchPolicy policy_for_fraction(double f) {
  if (f >= 1.0) return SyncSwitchPolicy::pure(Protocol::kBsp);
  if (f <= 0.0) return SyncSwitchPolicy::pure(Protocol::kAsp);
  return SyncSwitchPolicy::bsp_to_asp(f);
}

inline std::string fraction_label(double f) {
  if (f >= 1.0) return "100% (BSP)";
  if (f <= 0.0) return "0% (ASP)";
  return Table::pct(f, 3);
}

/// Print the four panels of a per-setup figure (loss curves, accuracy
/// curves, converged accuracy vs timing, training time vs timing).
inline void sweep_report(const ExperimentSetup& s, const std::string& figure_name) {
  std::cout << figure_name << ": performance of " << s.workload_name << "\n";
  const int classes = s.workload.data.num_classes;

  // Panels (c)+(d): converged accuracy and training time vs switch timing.
  Table acc_table({"switch timing", "converged acc", "std", "failed runs"});
  Table time_table({"switch timing", "training time (min)", "vs BSP"});
  double bsp_time = 0.0;
  std::vector<RepStats> sweep;
  for (double f : s.sweep_fractions) {
    const auto stats = run_reps(s, policy_for_fraction(f));
    if (f >= 1.0) bsp_time = stats.mean_time_s;
    sweep.push_back(stats);
  }
  for (std::size_t i = 0; i < s.sweep_fractions.size(); ++i) {
    const double f = s.sweep_fractions[i];
    const auto& stats = sweep[i];
    int failed = 0;
    for (const auto& r : stats.runs)
      if (run_failed(r, classes)) ++failed;
    const bool all_fail = all_failed(stats, classes);
    acc_table.add_row({fraction_label(f),
                       all_fail ? "Fail" : Table::num(stats.mean_accuracy, 4),
                       all_fail ? "-" : Table::num(stats.std_accuracy, 4),
                       std::to_string(failed) + "/" + std::to_string(kReps)});
    time_table.add_row(
        {fraction_label(f), Table::num(stats.mean_time_s / 60.0, 1),
         bsp_time > 0 ? Table::pct(stats.mean_time_s / bsp_time, 1) : "-"});
  }

  // Panels (a)+(b): loss/accuracy curves of the best runs for ASP, BSP, and
  // the setup's Sync-Switch policy.
  const auto& bsp = sweep.back();  // fractions are sorted ascending, 1.0 last
  const auto& asp = sweep.front();
  const auto ss_stats = run_reps(s, policy_for_fraction(s.policy_fraction));

  Table curves({"steps", "BSP loss", "ASP loss", "SS loss", "BSP acc", "ASP acc", "SS acc"});
  const std::int64_t stride = s.workload.total_steps / 8;
  auto loss_at = [](const RunResult& r, std::int64_t step) {
    double v = 0.0;
    for (const auto& p : r.loss_curve)
      if (p.step <= step) v = p.loss;
    return v;
  };
  auto acc_at = [](const RunResult& r, std::int64_t step) {
    double v = 0.0;
    for (const auto& p : r.accuracy_curve)
      if (p.step <= step) v = p.accuracy;
    return v;
  };
  const bool asp_ok = !all_failed(asp, classes);
  for (std::int64_t step = stride; step <= s.workload.total_steps; step += stride) {
    curves.add_row({std::to_string(step), Table::num(loss_at(bsp.best(), step), 3),
                    asp_ok ? Table::num(loss_at(asp.best(), step), 3) : "Fail",
                    Table::num(loss_at(ss_stats.best(), step), 3),
                    Table::num(acc_at(bsp.best(), step), 3),
                    asp_ok ? Table::num(acc_at(asp.best(), step), 3) : "Fail",
                    Table::num(acc_at(ss_stats.best(), step), 3)});
  }

  curves.print("(a)+(b): training loss and test accuracy vs steps (best runs; SS = policy " +
               fraction_label(s.policy_fraction) + ")");
  acc_table.print("(c): converged accuracy vs switch timing");
  time_table.print("(d): total training time vs switch timing");
}

}  // namespace ss::setups
