// Figure 15: Sync-Switch's straggler-aware online policies (setup 1).
//
// Two transient-straggler scenarios (paper Section VI-B3):
//   scenario 1 (mild):     1 straggler, 1 occurrence, 10ms emulated latency
//   scenario 2 (moderate): 2 stragglers, 4 occurrences, 30ms
//
// Policies: Baseline (straggler-agnostic offline policy), Greedy (switch to
// ASP while straggled, back afterwards), Elastic (evict stragglers during
// the BSP phase, restore for ASP).  Expected shape: elastic preserves
// accuracy and speeds up moderate scenarios ~1.1x; greedy can lose accuracy
// from its extra switches.
#include <iostream>

#include "common/table.h"
#include "setups.h"

using namespace ss;

int main() {
  const auto s = setups::setup1();
  std::cout << "Figure 15: straggler-aware policy comparison (" << s.workload_name << ")\n";

  // The paper's scenarios assume ~35-minute training runs; our scaled-down
  // workload finishes in under a minute, so episode starts/durations are
  // scaled to land inside the BSP phase while keeping the paper's straggler
  // counts, occurrence counts and emulated latencies.
  auto scaled = [](int stragglers, int occurrences, double latency_ms) {
    StragglerScenario sc;
    sc.num_stragglers = stragglers;
    sc.occurrences = occurrences;
    sc.extra_latency_ms = latency_ms;
    sc.max_duration = VTime::from_seconds(30.0);
    sc.horizon = VTime::from_seconds(45.0);
    return sc;
  };
  const std::vector<std::pair<std::string, StragglerScenario>> scenarios = {
      {"scenario 1 (mild: 1 straggler x1, 10ms)", scaled(1, 1, 10.0)},
      {"scenario 2 (moderate: 2 stragglers x4, 30ms)", scaled(2, 4, 30.0)},
  };
  const std::vector<std::pair<std::string, OnlinePolicy>> policies = {
      {"Baseline", OnlinePolicy::kNone},
      {"Greedy", OnlinePolicy::kGreedy},
      {"Elastic", OnlinePolicy::kElastic},
  };

  for (const auto& [sc_name, scenario] : scenarios) {
    Table t({"policy", "converged acc", "std", "time (min)", "normalized time", "switches"});
    double baseline_time = 0.0;
    for (const auto& [p_name, online] : policies) {
      // A 25% switch timing gives the online policies a BSP phase long
      // enough to act within (the paper's P1 phase lasts tens of minutes;
      // ours lasts seconds).  Detector windows are shortened to match.
      SyncSwitchPolicy policy = SyncSwitchPolicy::bsp_to_asp(0.25);
      policy.detector.window_size = 3;
      policy.detector.consecutive_required = 2;
      policy.online = online;
      const auto stats = setups::run_reps_straggler(s, policy, scenario);
      if (online == OnlinePolicy::kNone) baseline_time = stats.mean_time_s;
      double switches = 0.0;
      for (const auto& r : stats.runs) switches += r.num_switches;
      switches /= static_cast<double>(stats.runs.size());
      t.add_row({p_name, Table::num(stats.mean_accuracy, 4), Table::num(stats.std_accuracy, 4),
                 Table::num(stats.mean_time_s / 60.0, 2),
                 Table::pct(stats.mean_time_s / baseline_time, 1),
                 Table::num(switches, 1)});
    }
    t.print("Fig 15: " + sc_name);
  }

  std::cout << "\nExpected shape: the elastic policy matches the baseline's accuracy and\n"
               "runs faster under the moderate scenario; the greedy policy's extra\n"
               "switches can cost accuracy.\n";
  return 0;
}
