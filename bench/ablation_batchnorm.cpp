// Ablation: does a BatchNorm + residual substrate change the Sync-Switch
// story?
//
// EXPERIMENTS.md records one deviation from the paper on the plain MLP
// substrate: switching to ASP right at a learning-rate decay boundary can
// dip test accuracy before recovery (the paper's ResNets, with BN and skip
// connections, do not show this).  This bench trains the BN/residual zoo
// variants ("resnet32_bn_lite") under the same policies as the plain ones
// and compares (a) converged accuracy, (b) the worst post-switch accuracy
// drawdown — measuring how much of the deviation the smoother landscape
// removes.
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "setups.h"

using namespace ss;

namespace {

/// Largest drop from a running accuracy peak over the post-switch portion of
/// the best run's accuracy curve.
double post_switch_drawdown(const RunResult& r, double switch_fraction,
                            std::int64_t total_steps) {
  const auto switch_step = static_cast<std::int64_t>(switch_fraction *
                                                     static_cast<double>(total_steps));
  double peak = 0.0;
  double worst = 0.0;
  for (const auto& pt : r.accuracy_curve) {
    if (pt.step < switch_step) continue;
    peak = std::max(peak, pt.accuracy);
    worst = std::max(worst, peak - pt.accuracy);
  }
  return worst;
}

}  // namespace

int main() {
  auto s = setups::setup1();
  std::cout << "Ablation: plain MLP substrate vs BatchNorm+residual substrate ("
            << "setup 1 policies)\n";

  struct ArchRow {
    std::string label;
    ModelArch arch;
  };
  const std::vector<ArchRow> archs = {
      {"resnet32_lite (plain)", ModelArch::kResNet32Lite},
      {"resnet32_bn_lite (BN+skip)", ModelArch::kResNet32BnLite},
  };
  struct PolicyRow {
    std::string label;
    SyncSwitchPolicy policy;
    double fraction;
  };
  const std::vector<PolicyRow> policies = {
      {"BSP", SyncSwitchPolicy::pure(Protocol::kBsp), 1.0},
      {"ASP", SyncSwitchPolicy::pure(Protocol::kAsp), 0.0},
      {"Sync-Switch 6.25%", SyncSwitchPolicy::bsp_to_asp(0.0625), 0.0625},
      {"Sync-Switch 50% (LR-decay boundary)", SyncSwitchPolicy::bsp_to_asp(0.5), 0.5},
  };

  Table t({"substrate", "policy", "converged acc", "std", "post-switch dip", "time (min)"});
  for (const auto& arch : archs) {
    setups::ExperimentSetup variant = s;
    variant.workload.arch = arch.arch;
    for (const auto& pol : policies) {
      const auto stats = setups::run_reps(variant, pol.policy);
      const bool failed = setups::all_failed(stats, s.workload.data.num_classes);
      double dip = 0.0;
      if (!failed)
        dip = post_switch_drawdown(stats.best(), pol.fraction, variant.workload.total_steps);
      t.add_row({arch.label, pol.label, failed ? "Fail" : Table::num(stats.mean_accuracy, 4),
                 failed ? "-" : Table::num(stats.std_accuracy, 4),
                 failed ? "-" : Table::num(dip, 4),
                 Table::num(stats.mean_time_s / 60.0, 2)});
    }
  }
  t.print("substrate ablation (setup 1)");

  std::cout << "\nExpected shape: at the 50% (LR-decay) switch the BN+skip substrate\n"
               "shows a smaller post-switch dip and matches BSP accuracy, closing part\n"
               "of the documented deviation.  The BN substrate is also *more* sensitive\n"
               "to staleness (batch statistics computed on stale parameters): static\n"
               "ASP degrades harder and the accuracy knee moves to a later switch\n"
               "point — consistent with the paper's observation that workloads differ\n"
               "in their best switch timing, which is exactly what the offline binary\n"
               "search is for.\n";
  return 0;
}
