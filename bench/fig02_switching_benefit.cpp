// Figure 2: benefits of synchronization switching.
//
// Trains ResNet32-class / synthetic-10 on the 8-worker cluster with ASP,
// BSP->ASP at 25% and 50%, and BSP, and reports (a) the test-accuracy curves
// and (b) the total training time.  Expected shape: switching reaches BSP's
// converged accuracy while cutting total training time by >60% (the paper
// reports up to 63.5%).
#include <iostream>

#include "common/table.h"
#include "setups.h"

using namespace ss;

int main() {
  const auto s = setups::setup1();
  std::cout << "Figure 2: benefits of synchronization switching (" << s.workload_name << ")\n";

  struct Row {
    std::string label;
    SyncSwitchPolicy policy;
  };
  const std::vector<Row> rows = {
      {"ASP", SyncSwitchPolicy::pure(Protocol::kAsp)},
      {"Switching 25%", SyncSwitchPolicy::bsp_to_asp(0.25)},
      {"Switching 50%", SyncSwitchPolicy::bsp_to_asp(0.50)},
      {"BSP", SyncSwitchPolicy::pure(Protocol::kBsp)},
  };

  Table fig2b({"policy", "converged acc (mean+/-std)", "training time (min)", "time vs BSP"});
  double bsp_time = 0.0;
  std::vector<setups::RepStats> all;
  for (const auto& row : rows) {
    const auto stats = setups::run_reps(s, row.policy);
    if (row.label == "BSP") bsp_time = stats.mean_time_s;
    all.push_back(stats);
  }
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& stats = all[i];
    fig2b.add_row({rows[i].label,
                   Table::num(stats.mean_accuracy, 4) + " +/- " +
                       Table::num(stats.std_accuracy, 4),
                   Table::num(stats.mean_time_s / 60.0, 1),
                   Table::pct(stats.mean_time_s / bsp_time, 1)});
  }
  fig2b.print("Fig 2(b): total training time (and converged accuracy)");

  // Fig 2(a): accuracy-vs-steps curves of the best runs, sampled.
  Table fig2a({"steps", "ASP", "Switching 25%", "Switching 50%", "BSP"});
  const std::int64_t stride = s.workload.total_steps / 8;
  for (std::int64_t step = stride; step <= s.workload.total_steps; step += stride) {
    std::vector<std::string> cells = {std::to_string(step)};
    for (const auto& stats : all) {
      const auto& curve = stats.best().accuracy_curve;
      double acc = 0.0;
      for (const auto& p : curve)
        if (p.step <= step) acc = p.accuracy;
      cells.push_back(Table::num(acc, 3));
    }
    fig2a.add_row(std::move(cells));
  }
  fig2a.print("Fig 2(a): test accuracy vs steps (best runs)");

  const double saving = 1.0 - all[2].mean_time_s / bsp_time;
  std::cout << "\nSwitching at 50% cuts training time by " << Table::pct(saving, 1)
            << " vs BSP at matching accuracy (paper: up to 63.5%).\n";
  return 0;
}
