// Ablation: gradient compression combined with Sync-Switch.
//
// The paper's related-work section (Section VII) lists gradient
// sparsification (Aji & Heafield: "a speed gain of 22%"), TernGrad and QSGD
// as orthogonal network optimizations that "might be combined with
// Sync-Switch to achieve further training speedup".  This bench performs the
// combination on a *communication-bound* variant of experiment setup 1: the
// payload models a real (un-scaled) ResNet32's ~1.8 MB of fp32 gradients on
// a congested 25 MB/s cloud link, so the push leg is comparable to the
// compute leg and codecs have room to help.
//
// Expected shape: every codec cuts BSP's per-step time (the barrier waits on
// the slowest push) at little accuracy cost; combining a codec with
// Sync-Switch compounds with the protocol speedup; extreme sparsification
// (top-0.1%) starts to cost accuracy.
#include <iostream>
#include <vector>

#include "common/table.h"
#include "compress/spec.h"
#include "setups.h"

using namespace ss;

namespace {

/// Communication-bound variant of the setup-1 cluster: payload stands in for
/// a real 460k-parameter ResNet32 (fp32) and bandwidth for a contended link.
void comm_bound(RunRequest& req) {
  req.cluster.payload_bytes = 1.8e6;
  req.cluster.bandwidth_bps = 25.0 * 1024 * 1024;
}

struct CodecRow {
  std::string label;
  CompressionSpec spec;
};

}  // namespace

int main() {
  const auto s = setups::setup1();
  std::cout << "Ablation: gradient compression x synchronization protocol\n"
            << "(" << s.workload_name << ", comm-bound variant: 1.8 MB payload, 25 MB/s)\n";

  const std::vector<CodecRow> codecs = {
      {"fp32 (no compression)", CompressionSpec::none()},
      {"QSGD 8-bit", CompressionSpec::qsgd(255)},
      {"QSGD 4-bit", CompressionSpec::qsgd(15)},
      {"TernGrad", CompressionSpec::terngrad()},
      {"top-k 1%", CompressionSpec::topk(0.01)},
      {"top-k 0.1%", CompressionSpec::topk(0.001)},
  };

  const SyncSwitchPolicy bsp = SyncSwitchPolicy::pure(Protocol::kBsp);
  const SyncSwitchPolicy hybrid = SyncSwitchPolicy::bsp_to_asp(s.policy_fraction);

  // Baseline for speedups: uncompressed static BSP.
  const auto base = setups::run_reps_with(s, bsp, comm_bound);

  Table t({"codec", "protocol", "converged acc", "std", "time (min)", "speedup vs fp32+BSP"});
  for (const auto& row : codecs) {
    for (const bool use_hybrid : {false, true}) {
      const auto stats = setups::run_reps_with(
          s, use_hybrid ? hybrid : bsp, [&](RunRequest& req) {
            comm_bound(req);
            req.compression = row.spec;
          });
      const bool failed = setups::all_failed(stats, s.workload.data.num_classes);
      t.add_row({row.label, use_hybrid ? "Sync-Switch" : "BSP",
                 failed ? "Fail" : Table::num(stats.mean_accuracy, 4),
                 failed ? "-" : Table::num(stats.std_accuracy, 4),
                 Table::num(stats.mean_time_s / 60.0, 2),
                 Table::ratio(base.mean_time_s / stats.mean_time_s)});
    }
  }
  t.print("compression x protocol (comm-bound setup 1)");

  std::cout << "\nExpected shape: codecs speed up BSP (the barrier waits on the push);\n"
               "compression composes with Sync-Switch's protocol speedup; aggressive\n"
               "sparsification trades accuracy for diminishing time returns.\n";
  return 0;
}
