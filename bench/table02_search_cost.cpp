// Table II (+ appendix Tables IV/V/VI) and Figure 16: binary-search cost
// analysis.
//
// Exactly the paper's methodology (Section VI-C1): build run logs from the
// timing sweeps (5 repetitions per timing), then Monte-Carlo each search
// setting 1000 times with accuracy threshold beta = 0.01, reporting search
// cost (in BSP-training multiples), amortization (job recurrences), effective
// training, and success probability.
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "core/search_cost.h"
#include "setups.h"
#include "sweep_report.h"

using namespace ss;

namespace {

/// Assemble RunLogs for a setup: every fraction the binary search can visit
/// (dyadic midpoints down to depth M) plus the endpoints.
RunLogs build_logs(const setups::ExperimentSetup& s) {
  RunLogs logs;
  std::vector<double> fractions = {0.0, 1.0};
  double upper = 1.0, lower = 0.0;
  // The search path is data-dependent; log the full dyadic tree instead.
  std::vector<double> frontier = {0.5};
  for (int depth = 0; depth < s.search_max_settings; ++depth) {
    std::vector<double> next;
    for (double f : frontier) {
      fractions.push_back(f);
      const double width = 0.5 / static_cast<double>(1 << depth);
      next.push_back(f - width / 2.0);
      next.push_back(f + width / 2.0);
    }
    frontier = std::move(next);
  }
  (void)upper;
  (void)lower;

  const int classes = s.workload.data.num_classes;
  for (double f : fractions) {
    const auto stats = setups::run_reps(s, setups::policy_for_fraction(f));
    TimingLog log;
    for (const auto& r : stats.runs) {
      const bool failed = setups::run_failed(r, classes);
      log.accuracies.push_back(failed ? 0.0 : r.converged_accuracy);
      log.times_seconds.push_back(r.train_time_seconds);
      log.diverged.push_back(failed);
    }
    logs[f] = std::move(log);
  }
  return logs;
}

}  // namespace

int main() {
  std::cout << "Table II / IV / V / VI + Figure 16: binary-search cost analysis\n"
            << "(1000-trial Monte-Carlo over the run logs, beta = 0.01)\n";

  for (int id = 1; id <= 3; ++id) {
    const auto s = setups::setup_by_id(id);
    const RunLogs logs = build_logs(s);
    const SearchCostAnalyzer analyzer(logs, 0.01, s.search_max_settings);
    std::cout << "\n--- setup " << id << " (" << s.workload_name
              << "), ground-truth switch timing: "
              << Table::pct(analyzer.ground_truth(), 3) << " ---\n";

    Table t({"setting (recurring, BSP runs, cand. runs)", "cost vs BSP", "amortized (#recur)",
             "effective training", "success prob"});
    const std::vector<SearchSetting> settings = {
        {false, 5, 5}, {false, 4, 4}, {false, 3, 3}, {false, 2, 2}, {false, 1, 1},
        {false, 1, 5}, {false, 1, 4}, {false, 1, 3}, {false, 1, 2},
        {true, 0, 5},  {true, 0, 4},  {true, 0, 3},  {true, 0, 2},  {true, 0, 1},
    };
    Rng rng(42 + static_cast<std::uint64_t>(id));
    for (const auto& setting : settings) {
      const auto report = analyzer.analyze(setting, setups::kSearchTrials, rng);
      t.add_row({std::string("(") + (setting.recurring ? "Yes" : "No") + ", " +
                     std::to_string(setting.bsp_runs) + ", " +
                     std::to_string(setting.candidate_runs) + ")",
                 Table::ratio(report.cost_vs_bsp), Table::num(report.amortized_recurrences, 2),
                 Table::ratio(report.effective_training),
                 Table::pct(report.success_probability, 1)});
    }
    t.print("search cost vs performance (Table " + std::string(id == 1   ? "IV"
                                                               : id == 2 ? "V"
                                                                         : "VI") +
            ")");

    // Figure 16: normalized cost vs attempts-per-setting for the three modes.
    Table fig16({"attempts per setting", "new job (bn=n)", "new job (bn=1)", "recurring"});
    for (int r = 1; r <= 5; ++r) {
      auto run = [&](bool recurring, int bsp_runs) {
        const auto rep = analyzer.analyze({recurring, bsp_runs, r}, setups::kSearchTrials, rng);
        std::string cell = Table::ratio(rep.cost_vs_bsp);
        if (rep.success_probability >= 0.99) cell += " *";
        return cell;
      };
      fig16.add_row({std::to_string(r), run(false, r), run(false, 1), run(true, 0)});
    }
    fig16.print("Fig 16 (setup " + std::to_string(id) +
                "): normalized search cost (* = >=99% success)");
  }

  std::cout << "\nExpected shape: recurring jobs cut search cost several-fold; too few\n"
               "runs per setting lowers the probability of finding the ground-truth\n"
               "timing; search cost amortizes within tens of job recurrences.\n";
  return 0;
}
