#include "setups.h"

#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace ss::setups {

namespace {

ClusterSpec resnet32_cluster(std::size_t n) {
  ClusterSpec c;
  c.num_workers = n;
  c.compute_per_batch = VTime::from_ms(120.0);
  c.reference_batch = 64;
  c.compute_jitter_sigma = 0.12;
  c.net_latency = VTime::from_ms(2.0);
  c.payload_bytes = 4.0 * 13000;  // resnet32_lite parameter bytes
  c.bandwidth_bps = 100.0 * 1024 * 1024;
  c.sync_base = VTime::from_ms(287.0);
  c.sync_quad = VTime::from_ms(6.4);
  c.async_apply = VTime::from_ms(1.0);
  return c;
}

ClusterSpec resnet50_cluster(std::size_t n) {
  ClusterSpec c = resnet32_cluster(n);
  // The ResNet50-class workload is compute-dominated: a much longer per-batch
  // GPU time against the same network, which is what compresses the BSP:ASP
  // gap to ~1.8x in the paper's setup 2.
  c.compute_per_batch = VTime::from_ms(840.0);
  c.payload_bytes = 4.0 * 28000;  // resnet50_lite parameter bytes
  return c;
}

}  // namespace

ExperimentSetup setup1() {
  ExperimentSetup s;
  s.id = 1;
  s.workload_name = "resnet32_lite / synthetic-10 (n=8)";
  s.workload.arch = ModelArch::kResNet32Lite;
  s.workload.data = SyntheticSpec::cifar10_like();
  s.workload.total_steps = 2048;
  s.workload.hyper.batch_size = 64;
  s.workload.hyper.learning_rate = 0.05;
  s.workload.hyper.momentum = 0.9;
  s.workload.eval_interval = 64;
  s.cluster = resnet32_cluster(8);
  s.policy_fraction = 0.0625;
  s.paper_fraction = 0.0625;
  s.sweep_fractions = {0.0, 0.03125, 0.0625, 0.125, 0.25, 0.5, 1.0};
  s.search_max_settings = 5;
  return s;
}

ExperimentSetup setup2() {
  ExperimentSetup s;
  s.id = 2;
  s.workload_name = "resnet50_lite / synthetic-100 (n=8)";
  s.workload.arch = ModelArch::kResNet50Lite;
  s.workload.data = SyntheticSpec::cifar100_like();
  s.workload.total_steps = 2048;
  s.workload.hyper.batch_size = 64;
  s.workload.hyper.learning_rate = 0.04;
  s.workload.hyper.momentum = 0.9;
  s.workload.eval_interval = 64;
  s.cluster = resnet50_cluster(8);
  // The paper's knee for this workload is 12.5%; on our substrate the ASP
  // phase at full learning rate ejects the model from the BSP-found optimum,
  // moving the knee to the first LR-decay boundary (50%).  We use our own
  // derived timing as the policy and record the deviation in EXPERIMENTS.md.
  s.policy_fraction = 0.5;
  s.paper_fraction = 0.125;
  s.sweep_fractions = {0.0, 0.0625, 0.125, 0.25, 0.5, 1.0};
  s.search_max_settings = 4;
  return s;
}

ExperimentSetup setup3() {
  ExperimentSetup s = setup1();
  s.id = 3;
  s.workload_name = "resnet32_lite / synthetic-10 (n=16)";
  s.cluster = resnet32_cluster(16);
  s.policy_fraction = 0.5;
  s.paper_fraction = 0.5;
  s.sweep_fractions = {0.0, 0.25, 0.5, 1.0};
  s.search_max_settings = 1;
  return s;
}

ExperimentSetup setup_by_id(int id) {
  switch (id) {
    case 1:
      return setup1();
    case 2:
      return setup2();
    case 3:
      return setup3();
    default:
      throw ConfigError("setup_by_id: unknown setup " + std::to_string(id));
  }
}

RunRequest make_request(const ExperimentSetup& s, const SyncSwitchPolicy& policy,
                        std::uint64_t seed) {
  RunRequest req;
  req.workload = s.workload;
  req.cluster = s.cluster;
  req.actuator = ActuatorExec::kParallel;
  req.policy = policy;
  req.seed = seed;
  // The step budget is ~30x the paper's 64K scaled down; scale the absolute
  // actuator overheads identically so overhead:training ratios are faithful.
  req.actuator_time_scale = static_cast<double>(s.workload.total_steps) / 65536.0;
  return req;
}

RunRequest make_straggler_request(const ExperimentSetup& s, const SyncSwitchPolicy& policy,
                                  const StragglerScenario& scenario, std::uint64_t seed) {
  RunRequest req = make_request(s, policy, seed);
  req.stragglers = scenario;
  return req;
}

const RunCache& cache() {
  static const RunCache instance(".ss_runcache");
  return instance;
}

const RunResult& RepStats::best() const {
  if (runs.empty()) throw ConfigError("RepStats::best on empty runs");
  const RunResult* best = &runs.front();
  for (const auto& r : runs)
    if (!r.diverged && r.converged_accuracy > best->converged_accuracy) best = &r;
  return *best;
}

namespace {
RepStats collect(std::vector<RunResult> runs) {
  RepStats stats;
  std::vector<double> accs, times, thrs;
  for (auto& r : runs) {
    if (r.diverged) {
      ++stats.diverged_count;
    } else {
      accs.push_back(r.converged_accuracy);
      times.push_back(r.train_time_seconds);
      thrs.push_back(r.throughput_images_per_sec);
    }
  }
  stats.mean_accuracy = mean_of(accs);
  stats.std_accuracy = stddev_of(accs);
  stats.mean_time_s = mean_of(times);
  stats.mean_throughput = mean_of(thrs);
  stats.runs = std::move(runs);
  return stats;
}
}  // namespace

RepStats run_reps(const ExperimentSetup& s, const SyncSwitchPolicy& policy) {
  std::vector<RunResult> runs;
  runs.reserve(kReps);
  for (int rep = 0; rep < kReps; ++rep)
    runs.push_back(cache().run_cached(
        make_request(s, policy, static_cast<std::uint64_t>(rep) + 1)));
  return collect(std::move(runs));
}

RepStats run_reps_with(const ExperimentSetup& s, const SyncSwitchPolicy& policy,
                       const std::function<void(RunRequest&)>& mutate) {
  std::vector<RunResult> runs;
  runs.reserve(kReps);
  for (int rep = 0; rep < kReps; ++rep) {
    RunRequest req = make_request(s, policy, static_cast<std::uint64_t>(rep) + 1);
    if (mutate) mutate(req);
    runs.push_back(cache().run_cached(req));
  }
  return collect(std::move(runs));
}

RepStats run_reps_straggler(const ExperimentSetup& s, const SyncSwitchPolicy& policy,
                            const StragglerScenario& scenario) {
  std::vector<RunResult> runs;
  runs.reserve(kReps);
  for (int rep = 0; rep < kReps; ++rep)
    runs.push_back(cache().run_cached(
        make_straggler_request(s, policy, scenario, static_cast<std::uint64_t>(rep) + 1)));
  return collect(std::move(runs));
}

bool run_failed(const RunResult& r, int num_classes) {
  return r.diverged || r.converged_accuracy < 2.0 / static_cast<double>(num_classes);
}

bool all_failed(const RepStats& stats, int num_classes) {
  if (stats.runs.empty()) return false;
  for (const auto& r : stats.runs)
    if (!run_failed(r, num_classes)) return false;
  return true;
}

}  // namespace ss::setups
