// Figure 8: configuration-policy comparison (experiment setup 1).
//
// (a) BSP throughput at different global batch sizes (the policy sets the
//     BSP batch to n*B; using the un-scaled B costs up to ~2x throughput in
//     the paper, more on our sync-dominated simulated cluster).
// (b) Converged accuracy of the momentum handling variants after switching
//     to ASP: Baseline (keep mu) vs Zero / FixedScaled(1/n) / NonlinearRamp
//     (2^i/n) / LinearRamp (i/n).  Baseline should win (paper: up to ~5%
//     spread).
#include <iostream>

#include "common/table.h"
#include "setups.h"

using namespace ss;

int main() {
  auto s = setups::setup1();
  std::cout << "Figure 8: hyper-parameter configuration policies (" << s.workload_name << ")\n";

  // (a) Batch-size scaling: BSP throughput with global batch n*B vs B.
  Table a({"BSP global batch", "per-worker batch", "throughput (img/s)"});
  const std::size_t n = s.cluster.num_workers;
  for (std::size_t per_worker : {std::size_t{128}, std::size_t{64}, std::size_t{16}}) {
    auto variant = s;
    variant.workload.hyper.batch_size = per_worker;
    // Keep the LR-per-example constant when changing batch size.
    variant.workload.hyper.learning_rate =
        s.workload.hyper.learning_rate * static_cast<double>(per_worker) / 64.0;
    const auto stats = setups::run_reps(variant, SyncSwitchPolicy::pure(Protocol::kBsp));
    a.add_row({std::to_string(per_worker * n), std::to_string(per_worker),
               Table::num(stats.mean_throughput, 0)});
  }
  a.print("Fig 8(a): BSP batch-size scaling");

  // (b) Momentum scaling policies applied to the ASP phase of P1.
  Table b({"momentum policy", "converged acc", "std", "vs baseline"});
  double baseline_acc = 0.0;
  for (MomentumPolicy mp :
       {MomentumPolicy::kBaseline, MomentumPolicy::kZero, MomentumPolicy::kFixedScaled,
        MomentumPolicy::kNonlinearRamp, MomentumPolicy::kLinearRamp}) {
    SyncSwitchPolicy policy = SyncSwitchPolicy::bsp_to_asp(s.policy_fraction);
    policy.momentum_policy = mp;
    const auto stats = setups::run_reps(s, policy);
    if (mp == MomentumPolicy::kBaseline) baseline_acc = stats.mean_accuracy;
    b.add_row({momentum_policy_name(mp), Table::num(stats.mean_accuracy, 4),
               Table::num(stats.std_accuracy, 4),
               Table::num(stats.mean_accuracy - baseline_acc, 4)});
  }
  b.print("Fig 8(b): momentum scaling after the switch");

  std::cout << "\nExpected shape: larger global batch -> higher BSP throughput; the\n"
               "Baseline momentum policy (keep mu) matches or beats the scaled/ramped "
               "variants.\n";
  return 0;
}
