// Microbenchmarks of the substrate primitives (google-benchmark).
//
// Not a paper artifact; quantifies the building blocks so users can estimate
// simulation cost: gradient computation, PS apply, pull (snapshot copy),
// event-queue ops, checkpoint round-trip.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <thread>

#include "common/rng.h"
#include "compress/qsgd.h"
#include "core/sweep.h"
#include "compress/terngrad.h"
#include "compress/topk.h"
#include "nn/batchnorm.h"
#include "data/synthetic.h"
#include "nn/zoo.h"
#include "obs/obs.h"
#include "ps/param_server.h"
#include "ps/threaded_runtime.h"
#include "sim/event_queue.h"
#include "tensor/ops.h"

using namespace ss;

namespace {

SyntheticSpec small_spec() {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_size = 2048;
  spec.test_size = 256;
  return spec;
}

void BM_MatMul(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a({m, m}), b({m, m}), c({m, m});
  for (std::size_t i = 0; i < a.numel(); ++i) a[i] = static_cast<float>(rng.gaussian());
  for (std::size_t i = 0; i < b.numel(); ++i) b[i] = static_cast<float>(rng.gaussian());
  for (auto _ : state) {
    ops::matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(m * m * m));
}
BENCHMARK(BM_MatMul)->Arg(64)->Arg(128);

void BM_GradientStep(benchmark::State& state) {
  const auto split = make_synthetic(small_spec());
  Rng rng(2);
  Model model = make_model(ModelArch::kResNet32Lite, 64, 10, rng);
  const std::size_t b = 64;
  Tensor x({b, 64});
  std::vector<int> y;
  std::vector<std::uint32_t> idx(b);
  for (std::size_t i = 0; i < b; ++i) idx[i] = static_cast<std::uint32_t>(i);
  split.train.gather(idx, x, y);
  std::vector<float> params = model.get_params();
  std::vector<float> grad(params.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.gradient_at(params, x, y, grad));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(b));
}
BENCHMARK(BM_GradientStep);

void BM_PsApply(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  std::vector<float> init(p);
  std::vector<float> grad(p);
  for (auto& v : init) v = static_cast<float>(rng.gaussian());
  for (auto& v : grad) v = static_cast<float>(rng.gaussian(0.0, 0.01));
  ParameterServer ps(init, 0.9);
  for (auto _ : state) ps.apply(grad, 0.05);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p));
}
BENCHMARK(BM_PsApply)->Arg(13000)->Arg(28000);

// The single-lock baseline the sharded parallel path is measured against:
// one mutex-guarded full-vector push on a 10M+-parameter model.
void BM_PsPushSingleLock(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  SharedParameterServer ps(std::vector<float>(p, 0.5f), 0.9, /*num_shards=*/1);
  std::vector<float> grad(p, 0.001f);
  const std::vector<std::int64_t> pulled(1, 0);
  for (auto _ : state) benchmark::DoNotOptimize(ps.push(grad, 0.05, pulled));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p));
}
BENCHMARK(BM_PsPushSingleLock)->Arg(10'000'000);

// Sharded apply, serial: quantifies the pure partitioning overhead
// (per-shard loop + version bumps) against BM_PsApply.
void BM_PsApplySharded(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  ShardedParameterServer ps(std::vector<float>(p, 0.5f), 0.9, shards);
  std::vector<float> grad(p, 0.001f);
  for (auto _ : state) ps.apply(grad, 0.05);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p));
}
BENCHMARK(BM_PsApplySharded)->Args({10'000'000, 8});

// Sharded apply fanned across the worker pool.  On a multi-core host this
// is the >= 2x win over BM_PsPushSingleLock for 10M+ parameters (the op is
// memory-bandwidth-bound: 2 loads + 2 stores per element); on a single-core
// container it degrades gracefully to roughly the serial number.
void BM_PsApplyParallel(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t extra = std::min<std::size_t>(shards, hw) - 1;
  ShardedParameterServer ps(std::vector<float>(p, 0.5f), 0.9, shards);
  ps.set_parallel_apply(extra);
  std::vector<float> grad(p, 0.001f);
  for (auto _ : state) ps.apply(grad, 0.05);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p));
  state.counters["threads"] = static_cast<double>(extra + 1);
}
BENCHMARK(BM_PsApplyParallel)->Args({10'000'000, 8})->Args({10'000'000, 16});

// The sparse fast path: a top-k(1%) CompressedPush against the sharded
// shared PS.  Only shards owning kept coordinates are locked and written —
// compare items/s against BM_PsPushSingleLock's full 10M-element sweep (the
// sparse push touches ~100k coordinates for the same logical gradient).
void BM_PsApplySparseTopK(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  SharedParameterServer ps(std::vector<float>(p, 0.5f), 0.9, shards);
  TopKCodec codec(0.01);
  Rng rng(5);
  std::vector<float> grad(p);
  for (std::size_t i = 0; i < p; ++i) grad[i] = static_cast<float>(rng.gaussian());
  const CompressedPush push = codec.encode(grad, rng);
  const std::vector<std::int64_t> pulled(shards, 0);
  for (auto _ : state) benchmark::DoNotOptimize(ps.push_compressed(push, 0.05, pulled));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(push.nnz()));
  state.counters["nnz"] = static_cast<double>(push.nnz());
}
BENCHMARK(BM_PsApplySparseTopK)->Args({10'000'000, 1})->Args({10'000'000, 8});

void BM_PsPull(benchmark::State& state) {
  const std::size_t p = 13000;
  ParameterServer ps(std::vector<float>(p, 0.5f), 0.9);
  std::vector<float> out(p);
  for (auto _ : state) {
    ps.pull(out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_PsPull);

// Parallel pull of a large model (the worker-side snapshot copy).
void BM_PsPullParallel(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  ShardedParameterServer ps(std::vector<float>(p, 0.5f), 0.9, shards);
  ps.set_parallel_apply(std::min<std::size_t>(shards, hw) - 1);
  std::vector<float> out(p);
  for (auto _ : state) {
    ps.pull(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p));
}
BENCHMARK(BM_PsPullParallel)->Args({10'000'000, 8});

// End-to-end live protocol switch on real threads: a tiny BSP -> ASP
// schedule, including thread spawn, the per-round barriers, and the drain-
// barrier transition.  Tracks the fixed cost of the switch machinery so a
// regression in the drain path (e.g. an accidental serialization) shows up
// in the BENCH_threaded.json trajectory.
void BM_ThreadedProtocolSwitch(benchmark::State& state) {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_size = 256;
  spec.test_size = 64;
  spec.num_classes = 4;
  spec.feature_dim = 16;
  const DataSplit split = make_synthetic(spec);
  Rng rng(7);
  const Model proto = make_model(ModelArch::kLinear, 16, 4, rng);
  ThreadedTrainConfig cfg;
  cfg.schedule = SwitchSchedule::bsp_to_asp(8);
  cfg.num_workers = 2;
  cfg.batch_size = 8;
  cfg.steps_per_worker = 24;
  cfg.num_ps_shards = 4;
  for (auto _ : state) {
    const ThreadedTrainResult r = threaded_train(proto, split.train, cfg);
    benchmark::DoNotOptimize(r.total_updates);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 24 * 2);
}
BENCHMARK(BM_ThreadedProtocolSwitch)->Unit(benchmark::kMillisecond);

// End-to-end elastic crash recovery on real threads: an ASP run whose
// worker 1 crashes halfway, with background snapshots every 8 updates.
// Covers the whole membership path — AsyncSnapshotter cadence captures,
// the drain-barrier quiesce, snapshot restore under the shard locks,
// thread retire + respawn — so a regression in the recovery machinery
// (e.g. a snapshot walk that starts blocking pushes) shows up in the
// BENCH_threaded.json trajectory next to the protocol-switch cost.
void BM_ThreadedCrashRecovery(benchmark::State& state) {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_size = 256;
  spec.test_size = 64;
  spec.num_classes = 4;
  spec.feature_dim = 16;
  const DataSplit split = make_synthetic(spec);
  Rng rng(7);
  const Model proto = make_model(ModelArch::kLinear, 16, 4, rng);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kAsp;
  cfg.num_workers = 2;
  cfg.batch_size = 8;
  cfg.steps_per_worker = 24;
  cfg.num_ps_shards = 4;
  cfg.elastic.plan = MembershipPlan::crash(1, 12);
  cfg.elastic.snapshot_interval = 8;
  for (auto _ : state) {
    const ThreadedTrainResult r = threaded_train(proto, split.train, cfg);
    benchmark::DoNotOptimize(r.total_updates);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * (24 + 12));
}
BENCHMARK(BM_ThreadedCrashRecovery)->Unit(benchmark::kMillisecond);

// Observability cost on the threaded runtime: the same tiny BSP -> ASP
// switch run as BM_ThreadedProtocolSwitch, with obs off (/0, the default
// every other benchmark runs under) vs metrics + tracing armed (/1).  The
// /0:/1 ratio is the overhead claim in docs/ARCHITECTURE.md; /0 regressing
// against BM_ThreadedProtocolSwitch would mean the disabled-path guard
// itself got expensive.
void BM_ThreadedObsOverhead(benchmark::State& state) {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_size = 256;
  spec.test_size = 64;
  spec.num_classes = 4;
  spec.feature_dim = 16;
  const DataSplit split = make_synthetic(spec);
  Rng rng(7);
  const Model proto = make_model(ModelArch::kLinear, 16, 4, rng);
  ThreadedTrainConfig cfg;
  cfg.schedule = SwitchSchedule::bsp_to_asp(8);
  cfg.num_workers = 2;
  cfg.batch_size = 8;
  cfg.steps_per_worker = 24;
  cfg.num_ps_shards = 4;
  const bool obs_on = state.range(0) != 0;
  for (auto _ : state) {
    if (obs_on) {
      state.PauseTiming();
      obs::enable_tracing();  // fresh buffer every iteration: no cap drops
      obs::enable_metrics();
      state.ResumeTiming();
    }
    const ThreadedTrainResult r = threaded_train(proto, split.train, cfg);
    benchmark::DoNotOptimize(r.total_updates);
  }
  obs::disable_all();
  obs::tracer().clear();
  obs::metrics().reset();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 24 * 2);
}
BENCHMARK(BM_ThreadedObsOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < 1024; ++i)
      q.schedule(VTime::from_us(1000 - (i % 97)),
                 (i % 2) ? SimEventKind::kPushArrive : SimEventKind::kPullDone, i % 16);
    while (!q.empty()) benchmark::DoNotOptimize(q.pop());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_EventQueue);

// A 32-entry grid of tiny full simulations (4 protocols x 8 seeds), the
// SweepRunner's unit of work.  Serial vs. parallel pins the sweep executor's
// scaling in BENCH_sim.json: on an N-core host the parallel variant should
// approach N x the serial items/s (each sim is independent and allocation-
// heavy, so it falls short of linear); on a 1-core box the two match.
std::vector<RunRequest> sweep_bench_grid() {
  std::vector<RunRequest> grid;
  const Protocol protocols[] = {Protocol::kBsp, Protocol::kAsp, Protocol::kSsp,
                                Protocol::kKAsync};
  for (int i = 0; i < 32; ++i) {
    RunRequest req;
    req.workload.arch = ModelArch::kLinear;
    req.workload.data = SyntheticSpec::cifar10_like();
    req.workload.data.num_classes = 3;
    req.workload.data.feature_dim = 16;
    req.workload.data.train_size = 1024;
    req.workload.data.test_size = 512;
    req.workload.total_steps = 48;
    req.workload.hyper.batch_size = 16;
    req.workload.eval_interval = 32;
    req.cluster.num_workers = 4;
    req.cluster.compute_per_batch = VTime::from_ms(20.0);
    req.cluster.reference_batch = 16;
    req.policy = SyncSwitchPolicy::pure(protocols[i % 4]);
    req.seed = 1 + static_cast<std::uint64_t>(i / 4);
    grid.push_back(std::move(req));
  }
  return grid;
}

void BM_SimSweepSerial(benchmark::State& state) {
  const std::vector<RunRequest> grid = sweep_bench_grid();
  const SweepRunner runner({.jobs = 1});
  for (auto _ : state) {
    const auto outcomes = runner.run(grid);
    benchmark::DoNotOptimize(outcomes.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size()));
}
BENCHMARK(BM_SimSweepSerial)->Unit(benchmark::kMillisecond);

void BM_SimSweepParallel(benchmark::State& state) {
  const std::vector<RunRequest> grid = sweep_bench_grid();
  const SweepRunner runner({.jobs = 0});  // all hardware cores
  for (auto _ : state) {
    const auto outcomes = runner.run(grid);
    benchmark::DoNotOptimize(outcomes.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.size()));
  state.counters["threads"] =
      static_cast<double>(runner.effective_jobs(grid.size()));
}
BENCHMARK(BM_SimSweepParallel)->Unit(benchmark::kMillisecond);

void BM_CodecTopK(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  TopKCodec codec(0.01);
  Rng rng(5);
  std::vector<float> grad(p);
  for (std::size_t i = 0; i < p; ++i) grad[i] = static_cast<float>(rng.gaussian());
  std::vector<float> scratch(p);
  for (auto _ : state) {
    scratch = grad;
    benchmark::DoNotOptimize(codec.transform(scratch, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p));
}
BENCHMARK(BM_CodecTopK)->Arg(13000)->Arg(130000);

void BM_CodecTernGrad(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  TernGradCodec codec;
  Rng rng(5);
  std::vector<float> grad(p);
  for (std::size_t i = 0; i < p; ++i) grad[i] = static_cast<float>(rng.gaussian());
  std::vector<float> scratch(p);
  for (auto _ : state) {
    scratch = grad;
    benchmark::DoNotOptimize(codec.transform(scratch, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p));
}
BENCHMARK(BM_CodecTernGrad)->Arg(13000);

void BM_CodecQsgd(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  QsgdCodec codec(15);
  Rng rng(5);
  std::vector<float> grad(p);
  for (std::size_t i = 0; i < p; ++i) grad[i] = static_cast<float>(rng.gaussian());
  std::vector<float> scratch(p);
  for (auto _ : state) {
    scratch = grad;
    benchmark::DoNotOptimize(codec.transform(scratch, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(p));
}
BENCHMARK(BM_CodecQsgd)->Arg(13000);

void BM_BatchNormForwardBackward(benchmark::State& state) {
  BatchNorm bn(96);
  Rng rng(5);
  Tensor x({64, 96});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.gaussian());
  Tensor dy({64, 96}, 0.01f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bn.forward(x));
    benchmark::DoNotOptimize(bn.backward(dy));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * 96);
}
BENCHMARK(BM_BatchNormForwardBackward);

void BM_CheckpointRoundTrip(benchmark::State& state) {
  Checkpoint ckpt;
  ckpt.global_step = 1234;
  ckpt.params.assign(13000, 0.25f);
  ckpt.velocity.assign(13000, -0.5f);
  for (auto _ : state) {
    const auto bytes = ckpt.serialize();
    benchmark::DoNotOptimize(Checkpoint::deserialize(bytes));
  }
}
BENCHMARK(BM_CheckpointRoundTrip);

}  // namespace

BENCHMARK_MAIN();
