// Figure 5: impact of synchronicity (order and percentage).
//
// (a) Converged accuracy for BSP, BSP->ASP (50%), ASP->BSP (50%), ASP.
//     Expected: BSP ~ BSP->ASP > ASP->BSP ~ ASP (switching from BSP to ASP
//     keeps accuracy; the reverse order does not).
// (b) Converged accuracy vs the percentage of BSP training: rises with BSP%
//     until a knee, then stays on par with full BSP.
#include <iostream>

#include "common/table.h"
#include "setups.h"

using namespace ss;

int main() {
  const auto s = setups::setup1();
  std::cout << "Figure 5: impact of synchronicity (" << s.workload_name << ")\n";

  struct Row {
    std::string label;
    SyncSwitchPolicy policy;
  };
  const std::vector<Row> order_rows = {
      {"BSP", SyncSwitchPolicy::pure(Protocol::kBsp)},
      {"BSP->ASP", SyncSwitchPolicy::bsp_to_asp(0.5)},
      {"ASP->BSP", SyncSwitchPolicy::asp_to_bsp(0.5)},
      {"ASP", SyncSwitchPolicy::pure(Protocol::kAsp)},
  };
  Table a({"order", "converged acc", "std", "min", "max"});
  for (const auto& row : order_rows) {
    const auto stats = setups::run_reps(s, row.policy);
    double lo = 1.0, hi = 0.0;
    for (const auto& r : stats.runs) {
      if (r.diverged) continue;
      lo = std::min(lo, r.converged_accuracy);
      hi = std::max(hi, r.converged_accuracy);
    }
    a.add_row({row.label, Table::num(stats.mean_accuracy, 4), Table::num(stats.std_accuracy, 4),
               Table::num(lo, 4), Table::num(hi, 4)});
  }
  a.print("Fig 5(a): order of synchronicity (50% each phase)");

  Table b({"BSP proportion", "converged acc", "std"});
  for (double f : {0.0, 0.125, 0.25, 0.5, 0.75, 1.0}) {
    const SyncSwitchPolicy p = f >= 1.0 ? SyncSwitchPolicy::pure(Protocol::kBsp)
                               : f <= 0.0 ? SyncSwitchPolicy::pure(Protocol::kAsp)
                                          : SyncSwitchPolicy::bsp_to_asp(f);
    const auto stats = setups::run_reps(s, p);
    b.add_row({Table::pct(f, 1), Table::num(stats.mean_accuracy, 4),
               Table::num(stats.std_accuracy, 4)});
  }
  b.print("Fig 5(b): percentage of synchronicity");

  std::cout << "\nExpected shape: (a) BSP->ASP matches BSP; ASP->BSP tracks ASP or worse.\n"
               "(b) accuracy rises with BSP%% and plateaus past the knee.\n";
  return 0;
}
