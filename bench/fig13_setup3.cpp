// Figure 13: experiment setup 3 (ResNet32-class / synthetic-10, 16 workers).
//
// Expected shape: ASP and early switchings (< 50%, i.e. before the first LR
// decay) fail from stale-gradient instability; switching at 50% completes
// training at BSP-level accuracy with ~45% time saving.  This is the paper's
// "Sync-Switch works where ASP cannot" result.
#include "sweep_report.h"

int main() {
  ss::setups::sweep_report(ss::setups::setup3(), "Figure 13");
  return 0;
}
