// Table I + Figure 10: end-to-end comparison of Sync-Switch vs pure BSP and
// pure ASP on all three experiment setups.
//
// Reports normalized training time (Fig 10a), converged accuracy (Fig 10b),
// and the Table I speedup columns: throughput speedup vs ASP / vs BSP and
// time-to-accuracy (TTA) speedup vs BSP.  TTA threshold per setup = mean BSP
// converged accuracy (the paper's definition).
#include <iostream>
#include <optional>

#include "common/stats.h"
#include "common/table.h"
#include "setups.h"

using namespace ss;

namespace {

std::optional<double> mean_tta(const setups::RepStats& stats, double threshold) {
  std::vector<double> ttas;
  for (const auto& r : stats.runs) {
    if (r.diverged) continue;
    if (auto t = r.time_to_accuracy(threshold)) ttas.push_back(*t);
  }
  if (ttas.empty()) return std::nullopt;
  return mean_of(ttas);
}

}  // namespace

int main() {
  std::cout << "Table I / Figure 10: end-to-end performance of Sync-Switch\n";

  Table t1({"setup", "policy (timing)", "thr. vs ASP", "thr. vs BSP", "TTA vs ASP",
            "TTA vs BSP"});
  Table f10a({"setup", "BSP time", "ASP time", "Sync-Switch time"});
  Table f10b({"setup", "BSP acc", "ASP acc", "Sync-Switch acc"});

  for (int id = 1; id <= 3; ++id) {
    const auto s = setups::setup_by_id(id);
    const int classes = s.workload.data.num_classes;

    const auto bsp = setups::run_reps(s, SyncSwitchPolicy::pure(Protocol::kBsp));
    const auto asp = setups::run_reps(s, SyncSwitchPolicy::pure(Protocol::kAsp));
    const auto ss = setups::run_reps(s, SyncSwitchPolicy::bsp_to_asp(s.policy_fraction));
    const bool asp_failed = setups::all_failed(asp, classes);

    // TTA threshold: the mean BSP converged accuracy for this setup.
    const double threshold = bsp.mean_accuracy;
    const auto tta_bsp = mean_tta(bsp, threshold);
    const auto tta_asp = asp_failed ? std::nullopt : mean_tta(asp, threshold);
    const auto tta_ss = mean_tta(ss, threshold);

    auto ratio_or = [](std::optional<double> num, std::optional<double> den,
                       const std::string& fallback) {
      if (!num || !den || *den <= 0.0) return fallback;
      return Table::ratio(*num / *den);
    };

    t1.add_row({std::to_string(id),
                "([BSP,ASP], " + Table::pct(s.policy_fraction, 2) + ")",
                asp_failed ? "failed"
                           : Table::ratio(asp.mean_time_s / ss.mean_time_s),
                Table::ratio(bsp.mean_time_s / ss.mean_time_s),
                asp_failed ? "N/A" : ratio_or(tta_asp, tta_ss, "N/A"),
                ratio_or(tta_bsp, tta_ss, "N/A")});

    f10a.add_row({std::to_string(id), "100.0%",
                  asp_failed ? "Fail" : Table::pct(asp.mean_time_s / bsp.mean_time_s, 1),
                  Table::pct(ss.mean_time_s / bsp.mean_time_s, 1)});
    f10b.add_row({std::to_string(id),
                  Table::num(bsp.mean_accuracy, 3) + " +/- " + Table::num(bsp.std_accuracy, 3),
                  asp_failed
                      ? "Fail"
                      : Table::num(asp.mean_accuracy, 3) + " +/- " +
                            Table::num(asp.std_accuracy, 3),
                  Table::num(ss.mean_accuracy, 3) + " +/- " + Table::num(ss.std_accuracy, 3)});
  }

  t1.print("Table I: policies and speedups");
  f10a.print("Fig 10(a): total training time, normalized to BSP");
  f10b.print("Fig 10(b): converged accuracy");

  std::cout << "\nExpected shape: Sync-Switch matches BSP accuracy at a fraction of its time\n"
               "(paper: 1.66X-5.13X throughput speedup, up to 3.99X TTA speedup); ASP is\n"
               "fastest but loses accuracy, and fails outright in setup 3.\n";
  return 0;
}
