// Ablation: Sync-Switch vs the semi-synchronous protocols (SSP / DSSP).
//
// The paper positions Sync-Switch against SSP and DSSP (Section I reports
// prior TTA speedups of 1.1X-2X for those protocols vs the ~4X of
// Sync-Switch) and notes that Sync-Switch is agnostic to the underlying
// protocols — e.g. one can switch from SSP to ASP instead of from BSP
// (Section VI preamble).  This bench measures, on experiment setup 1:
//
//   * static BSP / SSP(3) / DSSP(3, +8) / ASP;
//   * the default BSP->ASP Sync-Switch policy;
//   * the SSP->ASP hybrid the paper suggests.
#include <iostream>
#include <optional>

#include "common/stats.h"
#include "common/table.h"
#include "setups.h"

using namespace ss;

int main() {
  const auto s = setups::setup1();
  std::cout << "Ablation: static protocols vs hybrid switching (" << s.workload_name << ")\n";

  struct Row {
    std::string label;
    SyncSwitchPolicy policy;
  };
  SyncSwitchPolicy ssp_to_asp;
  ssp_to_asp.first = Protocol::kSsp;
  ssp_to_asp.second = Protocol::kAsp;
  ssp_to_asp.switch_fraction = s.policy_fraction;
  ssp_to_asp.ssp_staleness_bound = 3;

  const std::vector<Row> rows = {
      {"BSP (static)", SyncSwitchPolicy::pure(Protocol::kBsp)},
      {"SSP(3) (static)", SyncSwitchPolicy::pure(Protocol::kSsp)},
      {"DSSP(3,+8) (static)", SyncSwitchPolicy::pure(Protocol::kDssp)},
      {"ASP (static)", SyncSwitchPolicy::pure(Protocol::kAsp)},
      {"Sync-Switch BSP->ASP", SyncSwitchPolicy::bsp_to_asp(s.policy_fraction)},
      {"Sync-Switch SSP->ASP", ssp_to_asp},
  };

  // TTA threshold: BSP's converged accuracy (the paper's definition).
  const auto bsp = setups::run_reps(s, rows[0].policy);
  const double threshold = bsp.mean_accuracy;

  Table t({"configuration", "converged acc", "std", "time (min)", "vs BSP", "TTA speedup",
           "staleness"});
  for (const auto& row : rows) {
    const auto stats = setups::run_reps(s, row.policy);
    std::vector<double> ttas;
    double staleness = 0.0;
    for (const auto& r : stats.runs) {
      if (r.diverged) continue;
      staleness += r.mean_staleness;
      if (auto tta = r.time_to_accuracy(threshold)) ttas.push_back(*tta);
    }
    staleness /= std::max<std::size_t>(1, stats.runs.size());

    std::vector<double> bsp_ttas;
    for (const auto& r : bsp.runs)
      if (auto tta = r.time_to_accuracy(threshold)) bsp_ttas.push_back(*tta);
    const double tta_speedup =
        (!ttas.empty() && !bsp_ttas.empty()) ? mean_of(bsp_ttas) / mean_of(ttas) : 0.0;

    const bool failed = setups::all_failed(stats, s.workload.data.num_classes);
    t.add_row({row.label, failed ? "Fail" : Table::num(stats.mean_accuracy, 4),
               failed ? "-" : Table::num(stats.std_accuracy, 4),
               Table::num(stats.mean_time_s / 60.0, 2),
               Table::ratio(bsp.mean_time_s / stats.mean_time_s),
               tta_speedup > 0.0 ? Table::ratio(tta_speedup) : "N/A",
               Table::num(staleness, 2)});
  }
  t.print("static protocols vs hybrid switching (setup 1)");

  std::cout << "\nExpected shape: SSP/DSSP sit between BSP and ASP in both time and\n"
               "staleness (the paper's premise); hybrid switching beats every static\n"
               "protocol on time-to-accuracy at BSP-level converged accuracy.\n";
  return 0;
}
