// Table III: Sync-Switch runtime overhead.
//
// (1) The actuator cost model (calibrated to the paper's measurements):
//     cluster initialization and protocol-switch time for sequential vs
//     parallel actuation at n = 8 and 16.
// (2) Measured switch overhead inside an actual Sync-Switch run, as a
//     fraction of total training time (the paper reports as low as ~1.7%).
#include <iostream>

#include "common/table.h"
#include "setups.h"

using namespace ss;

int main() {
  std::cout << "Table III: Sync-Switch overhead\n";

  Table t({"cluster", "actuator exec.", "init (s)", "switching (s)", "total (s)"});
  for (std::size_t n : {std::size_t{8}, std::size_t{16}}) {
    for (ActuatorExec exec : {ActuatorExec::kSequential, ActuatorExec::kParallel}) {
      const auto model = ActuatorModel::paper_calibrated(exec);
      const double init = model.init_time(n).seconds();
      const double sw = model.switch_time(n).seconds();
      t.add_row({std::to_string(n) + " K80-class", actuator_exec_name(exec),
                 Table::num(init, 0), Table::num(sw, 0), Table::num(init + sw, 0)});
    }
  }
  t.print("actuator cost model (calibrated to the paper's Table III)");

  // Measured inside a real run (scaled workload -> scaled overhead).
  const auto s = setups::setup1();
  const auto stats = setups::run_reps(s, SyncSwitchPolicy::bsp_to_asp(s.policy_fraction));
  double overhead = 0.0, total = 0.0;
  for (const auto& r : stats.runs) {
    overhead += r.switch_overhead_seconds;
    total += r.train_time_seconds;
  }
  Table m({"metric", "value"});
  m.add_row({"switch overhead per run (s)",
             Table::num(overhead / static_cast<double>(stats.runs.size()), 1)});
  m.add_row({"fraction of total training time", Table::pct(overhead / total, 2)});
  m.print("measured switching overhead inside Sync-Switch runs (setup 1)");

  std::cout << "\nExpected shape: parallel actuation cuts init ~2x and switching ~3x;\n"
               "switch overhead is a low single-digit percentage of training time.\n";
  return 0;
}
