// Figure 11: experiment setup 1 (ResNet32-class / synthetic-10, 8 workers).
//
// Expected shape: switching at the knee (~6.25%) matches BSP's converged
// accuracy with ~80% training-time saving; timings between the knee and 50%
// have minimal accuracy impact but cost proportionally more time.
#include "sweep_report.h"

int main() {
  ss::setups::sweep_report(ss::setups::setup1(), "Figure 11");
  return 0;
}
