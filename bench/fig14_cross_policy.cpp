// Figure 14: cross-examination of Sync-Switch policies across setups.
//
// Applies each setup's timing policy P1/P2/P3 to every experiment setup.
// Expected shape: the setup's own policy is (near-)optimal; policies with
// more BSP cost extra time at the same accuracy; policies with too little
// BSP fail on setup 3.
#include <iostream>

#include "common/table.h"
#include "setups.h"

using namespace ss;

int main() {
  std::cout << "Figure 14: cross-examination of timing policies (paper P_i timings)\n";

  const std::vector<setups::ExperimentSetup> all = {setups::setup1(), setups::setup2(),
                                                    setups::setup3()};
  Table time_t({"exp. setup", "Policy 1", "Policy 2", "Policy 3"});
  Table acc_t({"exp. setup", "Policy 1", "Policy 2", "Policy 3"});

  for (const auto& target : all) {
    std::vector<std::string> time_row = {std::to_string(target.id)};
    std::vector<std::string> acc_row = {std::to_string(target.id)};
    for (const auto& source : all) {
      const auto stats = setups::run_reps(
          target, SyncSwitchPolicy::bsp_to_asp(source.paper_fraction));
      if (setups::all_failed(stats, target.workload.data.num_classes)) {
        time_row.push_back("Fail");
        acc_row.push_back("Fail");
      } else {
        time_row.push_back(Table::num(stats.mean_time_s / 60.0, 1) + " min");
        acc_row.push_back(Table::num(stats.mean_accuracy, 4));
      }
    }
    time_t.add_row(std::move(time_row));
    acc_t.add_row(std::move(acc_row));
  }

  time_t.print("Fig 14(a): total training time (policy i = setup i's switch timing)");
  acc_t.print("Fig 14(b): converged test accuracy");

  std::cout << "\nExpected shape: off-diagonal policies with more BSP (e.g. P3 on setup 1)\n"
               "waste time at equal accuracy; policies with too little BSP fail on setup 3.\n";
  return 0;
}
