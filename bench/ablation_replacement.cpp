// Ablation: online policies against a PERMANENT straggler.
//
// The paper's online policies (greedy, elastic) target *transient*
// stragglers and explicitly delegate permanent ones to node replacement
// ("permanent stragglers are best dealt with by requesting replacement",
// Section IV-B2, citing Optimus and resource-elasticity work).  This bench
// implements that delegated piece and measures all four online policies on
// experiment setup 1 with one worker slowed 30 ms-style for the entire run:
//
//   * Baseline drags the straggler through the whole BSP phase;
//   * Greedy flips to ASP early (giving up the remaining BSP quota's
//     accuracy protection);
//   * Elastic evicts the straggler for the BSP phase but restores the
//     still-slow node for ASP;
//   * Replace evicts it and brings up a fresh healthy VM (~100 s), keeping
//     the full cluster for the rest of the run.
#include <iostream>
#include <vector>

#include "common/table.h"
#include "setups.h"

using namespace ss;

int main() {
  const auto s = setups::setup1();
  std::cout << "Ablation: online policies vs a permanent straggler (" << s.workload_name
            << ")\n";

  // One permanent straggler: a single episode longer than any run.
  StragglerScenario permanent;
  permanent.num_stragglers = 1;
  permanent.occurrences = 1;
  permanent.extra_latency_ms = 30.0;
  permanent.max_duration = VTime::from_minutes(600.0);
  permanent.horizon = VTime::from_seconds(1.0);

  struct Row {
    std::string label;
    OnlinePolicy online;
  };
  const std::vector<Row> rows = {
      {"Baseline (straggler-agnostic)", OnlinePolicy::kNone},
      {"Greedy", OnlinePolicy::kGreedy},
      {"Elastic", OnlinePolicy::kElastic},
      {"Replace (this repo's extension)", OnlinePolicy::kReplace},
  };

  // A 25% switch timing (instead of P1's 6.25%) gives the BSP phase enough
  // rounds for throughput-window detection to warm up — with a permanent
  // straggler from t=0, a 6.25% BSP phase is over before any sliding-window
  // detector can legitimately fire.  Fig 11(c) shows 25% sits on the same
  // accuracy plateau, so the comparison stays policy-faithful.
  const double fraction = 0.25;
  setups::RepStats baseline;
  Table t({"online policy", "converged acc", "std", "time (min)", "vs baseline"});
  for (const auto& row : rows) {
    SyncSwitchPolicy policy = SyncSwitchPolicy::bsp_to_asp(fraction);
    policy.online = row.online;
    const auto stats = setups::run_reps_straggler(s, policy, permanent);
    if (row.online == OnlinePolicy::kNone) baseline = stats;
    const bool failed = setups::all_failed(stats, s.workload.data.num_classes);
    t.add_row({row.label, failed ? "Fail" : Table::num(stats.mean_accuracy, 4),
               failed ? "-" : Table::num(stats.std_accuracy, 4),
               Table::num(stats.mean_time_s / 60.0, 2),
               Table::ratio(baseline.mean_time_s / stats.mean_time_s)});
  }
  t.print("online policies, one permanent straggler (setup 1)");

  std::cout << "\nExpected shape: the baseline pays the full straggler tax in time;\n"
               "elastic recovers part of it (the BSP phase runs clean, but the ASP\n"
               "phase gets the still-slow node back); replace recovers the most and\n"
               "restores clean-cluster behavior end to end — its accuracy matches the\n"
               "*clean* Sync-Switch distribution, not the straggler baseline's.  Note\n"
               "a curiosity the simulation reproduces faithfully: a slow ASP worker\n"
               "slightly *raises* converged accuracy (it lowers effective async\n"
               "parallelism, hence staleness noise), so the baseline/elastic rows can\n"
               "show a small accuracy edge bought with a large time tax.\n";
  return 0;
}
