// Figure 4: training throughput, BSP vs ASP.
//
// (a) Without stragglers, all three experiment setups: ASP throughput is a
//     multiple of BSP's (the paper observes up to 6.59x); ASP fails (training
//     divergence) in setup 3.
// (b) Setup 1 with injected stragglers (count + emulated latency): BSP
//     degrades with straggler severity, ASP barely changes.
#include <iostream>

#include "common/table.h"
#include "setups.h"

using namespace ss;

namespace {

/// A straggler that covers the whole (short, simulated) run so the measured
/// average throughput reflects the straggled regime, like the paper's
/// dedicated throughput measurement windows.
StragglerScenario persistent(int count, double latency_ms) {
  StragglerScenario sc;
  sc.num_stragglers = count;
  sc.occurrences = 1;
  sc.extra_latency_ms = latency_ms;
  sc.max_duration = VTime::from_minutes(60.0);
  sc.horizon = VTime::from_seconds(1.0);  // starts immediately
  return sc;
}

}  // namespace

int main() {
  std::cout << "Figure 4: training throughput comparison, BSP vs ASP\n";

  Table a({"exp. setup", "BSP (img/s)", "ASP (img/s)", "ASP/BSP"});
  for (int id = 1; id <= 3; ++id) {
    const auto s = setups::setup_by_id(id);
    const auto bsp = setups::run_reps(s, SyncSwitchPolicy::pure(Protocol::kBsp));
    const auto asp = setups::run_reps(s, SyncSwitchPolicy::pure(Protocol::kAsp));
    const bool asp_failed = setups::all_failed(asp, s.workload.data.num_classes);
    a.add_row({std::to_string(id), Table::num(bsp.mean_throughput, 0),
               asp_failed ? "Fail" : Table::num(asp.mean_throughput, 0),
               asp_failed ? "-" : Table::ratio(asp.mean_throughput / bsp.mean_throughput)});
  }
  a.print("Fig 4(a): without stragglers");

  const auto s1 = setups::setup1();
  Table b({"stragglers", "BSP (img/s)", "ASP (img/s)", "BSP drop", "ASP drop"});
  double bsp0 = 0.0, asp0 = 0.0;
  struct Case {
    std::string label;
    int count;
    double latency;
  };
  const std::vector<Case> cases = {{"0 + 0ms", 0, 0.0},   {"1 + 10ms", 1, 10.0},
                                   {"2 + 10ms", 2, 10.0}, {"1 + 30ms", 1, 30.0},
                                   {"2 + 30ms", 2, 30.0}};
  for (const auto& c : cases) {
    setups::RepStats bsp, asp;
    if (c.count == 0) {
      bsp = setups::run_reps(s1, SyncSwitchPolicy::pure(Protocol::kBsp));
      asp = setups::run_reps(s1, SyncSwitchPolicy::pure(Protocol::kAsp));
      bsp0 = bsp.mean_throughput;
      asp0 = asp.mean_throughput;
    } else {
      const auto sc = persistent(c.count, c.latency);
      bsp = setups::run_reps_straggler(s1, SyncSwitchPolicy::pure(Protocol::kBsp), sc);
      asp = setups::run_reps_straggler(s1, SyncSwitchPolicy::pure(Protocol::kAsp), sc);
    }
    b.add_row({c.label, Table::num(bsp.mean_throughput, 0), Table::num(asp.mean_throughput, 0),
               Table::pct(1.0 - bsp.mean_throughput / bsp0, 1),
               Table::pct(1.0 - asp.mean_throughput / asp0, 1)});
  }
  b.print("Fig 4(b): setup 1 with stragglers (count + emulated latency)");

  std::cout << "\nExpected shape: ASP >> BSP throughput everywhere; ASP 'Fail' in setup 3;\n"
               "BSP throughput drops substantially with straggler severity, ASP only "
               "mildly.\n";
  return 0;
}
