// Figure 12: experiment setup 2 (ResNet50-class / synthetic-100, 8 workers).
//
// Expected shape: a later knee than setup 1 (the paper found 12.5%; on this
// substrate the knee lands at 50% — see EXPERIMENTS.md for the deviation
// note), with ~25-40% training-time saving at the knee.
#include "sweep_report.h"

int main() {
  ss::setups::sweep_report(ss::setups::setup2(), "Figure 12");
  return 0;
}
