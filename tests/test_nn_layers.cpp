#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/pool.h"
#include "tensor/ops.h"

namespace ss {
namespace {

/// Numeric gradient check of a layer through a softmax-CE head: perturbs
/// every parameter and input and compares with the analytic backward.
void check_layer_gradients(Layer& layer, Tensor x, const std::vector<int>& labels,
                           double tol = 5e-3) {
  SoftmaxCrossEntropy head;
  auto loss_of = [&](const Tensor& input) {
    const Tensor& out = layer.forward(input);
    return head.forward(out, labels);
  };

  // Analytic gradients.
  loss_of(x);
  const Tensor& dx = layer.backward(head.backward());
  std::vector<Tensor> param_grads;
  for (Tensor* g : layer.grads()) param_grads.push_back(*g);
  const Tensor dx_copy = dx;

  const double eps = 1e-3;
  // Parameters.
  auto params = layer.params();
  for (std::size_t t = 0; t < params.size(); ++t) {
    Tensor& p = *params[t];
    for (std::size_t i = 0; i < std::min<std::size_t>(p.numel(), 24); ++i) {
      const float orig = p[i];
      p[i] = orig + static_cast<float>(eps);
      const double lp = loss_of(x);
      p[i] = orig - static_cast<float>(eps);
      const double lm = loss_of(x);
      p[i] = orig;
      EXPECT_NEAR(param_grads[t][i], (lp - lm) / (2 * eps), tol)
          << "param tensor " << t << " index " << i;
    }
  }
  // Inputs.
  for (std::size_t i = 0; i < std::min<std::size_t>(x.numel(), 24); ++i) {
    const float orig = x[i];
    x[i] = orig + static_cast<float>(eps);
    const double lp = loss_of(x);
    x[i] = orig - static_cast<float>(eps);
    const double lm = loss_of(x);
    x[i] = orig;
    EXPECT_NEAR(dx_copy[i], (lp - lm) / (2 * eps), tol) << "input index " << i;
  }
}

Tensor random_input(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.gaussian());
  return t;
}

TEST(Dense, NumericGradientCheck) {
  Rng rng(21);
  Dense layer(6, 4, rng);
  check_layer_gradients(layer, random_input({3, 6}, 22), {0, 2, 3});
}

TEST(Dense, ForwardShapeAndBias) {
  Rng rng(23);
  Dense layer(2, 3, rng);
  // Set known weights: y = x W + b.
  auto params = layer.params();
  params[0]->fill(1.0f);  // W all ones
  params[1]->fill(0.5f);  // b
  Tensor x({1, 2}, std::vector<float>{2.0f, 3.0f});
  const Tensor& y = layer.forward(x);
  ASSERT_EQ(y.dim(1), 3u);
  EXPECT_NEAR(y[0], 5.5f, 1e-6);
}

TEST(Dense, CloneIsDeepCopy) {
  Rng rng(24);
  Dense layer(3, 2, rng);
  auto copy = layer.clone();
  layer.params()[0]->fill(0.0f);
  // The clone's weights are untouched.
  bool any_nonzero = false;
  for (Tensor* p : copy->params())
    for (std::size_t i = 0; i < p->numel(); ++i)
      if ((*p)[i] != 0.0f) any_nonzero = true;
  EXPECT_TRUE(any_nonzero);
}

TEST(ReLU, NumericGradientCheck) {
  ReLU layer;
  check_layer_gradients(layer, random_input({4, 5}, 25), {0, 1, 2, 4});
}

TEST(Tanh, NumericGradientCheck) {
  Tanh layer;
  check_layer_gradients(layer, random_input({4, 5}, 26), {0, 1, 2, 4});
}

TEST(Conv2D, NumericGradientCheck) {
  Rng rng(27);
  // 1x4x4 input, 2 output channels, 3x3 kernel, pad 1 -> out 2x4x4 = 32.
  Conv2D layer(1, 4, 4, 2, 3, 3, 1, rng);
  check_layer_gradients(layer, random_input({2, 16}, 28), {5, 17}, 1e-2);
}

TEST(Conv2D, OutputGeometry) {
  Rng rng(29);
  Conv2D layer(3, 8, 8, 4, 3, 3, 1, rng);
  EXPECT_EQ(layer.out_height(), 8u);
  EXPECT_EQ(layer.out_width(), 8u);
  EXPECT_EQ(layer.out_features(), 4u * 8u * 8u);
  const Tensor& y = layer.forward(random_input({2, 3 * 8 * 8}, 30));
  EXPECT_EQ(y.dim(1), layer.out_features());
}

TEST(MaxPool, ForwardPicksMaxAndBackwardRoutes) {
  MaxPool2x2 pool(1, 2, 2);
  Tensor x({1, 4}, std::vector<float>{1.0f, 5.0f, 2.0f, 3.0f});
  const Tensor& y = pool.forward(x);
  ASSERT_EQ(y.numel(), 1u);
  EXPECT_EQ(y[0], 5.0f);
  Tensor dy({1, 1}, std::vector<float>{2.0f});
  const Tensor& dx = pool.backward(dy);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[1], 2.0f);  // gradient routed to the argmax position
}

TEST(Loss, Top1Accuracy) {
  Tensor logits({2, 3}, std::vector<float>{0.1f, 0.9f, 0.0f, 5.0f, 1.0f, 2.0f});
  EXPECT_DOUBLE_EQ(top1_accuracy(logits, std::vector<int>{1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(top1_accuracy(logits, std::vector<int>{0, 0}), 0.5);
}

TEST(Loss, UniformLogitsGiveLogC) {
  Tensor logits({4, 10}, 0.0f);
  SoftmaxCrossEntropy head;
  const double loss = head.forward(logits, std::vector<int>{0, 1, 2, 3});
  EXPECT_NEAR(loss, std::log(10.0), 1e-5);
}

}  // namespace
}  // namespace ss
