// Scenario engine: seeded-random scenarios fuzzed against the conformance
// invariants (src/scenario/).
//
//  * a fixed seed corpus runs through check_scenario() on the simulator with
//    determinism + cache-codec round-trip checks on, and a bounded subset
//    additionally cross-checks exact update/wire accounting on the threaded
//    runtime;
//  * the generator only emits valid scenarios (schedule/plan construction
//    and feasibility over a wide seed range);
//  * generation is a pure function of the seed, and distinct seeds have
//    distinct cache keys (the seed is part of the key), so a failing fuzz
//    seed is a permanent, replayable regression case;
//  * a cache hit replays a scenario's RunResult bit for bit through the
//    on-disk run cache (the max_digits10 text codec).
//
// A failing seed reproduces outside the suite as:
//   sync_switch_cli scenario replay --seed=N [--threaded]
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "core/run_cache.h"
#include "scenario/generator.h"
#include "scenario/invariants.h"
#include "scenario/scenario.h"

namespace ss {
namespace {

std::string replay_hint(std::uint64_t seed, bool threaded) {
  return "reproduce: sync_switch_cli scenario replay --seed=" + std::to_string(seed) +
         (threaded ? " --threaded" : "");
}

// ---------------------------------------------------------------------------
// The CI corpus: simulator invariants (determinism + codec round-trip
// included) on every seed, threaded cross-check on a bounded subset.
// ---------------------------------------------------------------------------

TEST(ScenarioFuzz, SimCorpusUpholdsAllInvariants) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    const Scenario s = generate_scenario(seed);
    const ScenarioReport rep = check_scenario(s);
    EXPECT_TRUE(rep.passed()) << rep.summary() << "\n" << replay_hint(seed, false);
  }
}

TEST(ScenarioFuzz, ThreadedSubsetUpholdsExactAccounting) {
  CheckOptions opts;
  opts.check_determinism = false;  // covered by the sim corpus above
  opts.check_cache_roundtrip = false;
  opts.run_threaded = true;
  int threaded_runs = 0;
  for (std::uint64_t seed = 1; seed <= 40 && threaded_runs < 4; ++seed) {
    const Scenario s = generate_scenario(seed);
    if (!s.threaded_compatible()) continue;
    ++threaded_runs;
    const ScenarioReport rep = check_scenario(s, opts);
    EXPECT_TRUE(rep.threaded_ran);
    EXPECT_TRUE(rep.passed()) << rep.summary() << "\n" << replay_hint(seed, true);
  }
  // The generator draws mostly threaded-supported protocols, so a window of
  // 40 seeds always contains cross-checkable scenarios.
  EXPECT_EQ(threaded_runs, 4);
}

// ---------------------------------------------------------------------------
// Generator validity: every seed constructs, deterministically, within the
// configured bounds.  Construct-only, so a wide range stays cheap.
// ---------------------------------------------------------------------------

TEST(ScenarioGenerator, WideSeedRangeConstructsValidScenarios) {
  const ScenarioGenConfig cfg;
  const auto q = static_cast<std::int64_t>(cfg.num_workers);
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Scenario s = generate_scenario(seed);  // schedule/plan ctors validate
    EXPECT_EQ(s.seed, seed);
    EXPECT_EQ(s.num_workers, cfg.num_workers);
    EXPECT_EQ(s.total_steps % q, 0) << "seed " << seed;

    // Step quantities are threaded-aligned multiples of the cluster size.
    for (const SwitchPhase& p : s.schedule.phases())
      EXPECT_EQ(p.steps % q, 0) << "seed " << seed;
    std::size_t alive = cfg.num_workers;
    std::int64_t prev_at = 0;
    for (const MembershipEvent& e : s.elastic.plan.events()) {
      EXPECT_EQ(e.at_step % q, 0) << "seed " << seed;
      EXPECT_GT(e.at_step, prev_at) << "seed " << seed;  // strictly increasing
      EXPECT_LT(e.at_step, s.total_steps) << "seed " << seed;
      prev_at = e.at_step;
      if (e.kind == MembershipEventKind::kJoin) {
        ++alive;
      } else {
        --alive;
        EXPECT_GE(alive, cfg.min_workers) << "seed " << seed;  // floor respected
      }
    }
    EXPECT_LE(s.elastic.plan.join_count(), cfg.max_joins);
    for (const StragglerEvent& e : s.stragglers.events()) {
      EXPECT_GE(e.worker, 0);
      EXPECT_LT(static_cast<std::size_t>(e.worker), cfg.num_workers);
      EXPECT_GT(e.slow_factor, 1.0) << "seed " << seed;
    }

    // Pure function of the seed: regenerating gives the identical scenario.
    EXPECT_EQ(generate_scenario(seed).label(), s.label()) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Cache-key injectivity: distinct seeds -> distinct scenarios -> distinct
// cache keys (the seed feeds RunRequest::seed, which is part of the key, and
// the schedule/straggler/membership labels key the rest).
// ---------------------------------------------------------------------------

TEST(ScenarioFuzz, CacheKeysAreInjectiveInTheSeed) {
  std::set<std::string> labels, keys;
  constexpr std::uint64_t kSeeds = 200;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const Scenario s = generate_scenario(seed);
    labels.insert(s.label());
    keys.insert(s.to_run_request().cache_key());
  }
  EXPECT_EQ(labels.size(), kSeeds);
  EXPECT_EQ(keys.size(), kSeeds);
}

TEST(ScenarioFuzz, CacheKeySeparatesNameAndSeedAndShape) {
  Scenario a = generate_scenario(3);
  Scenario b = a;
  b.seed += 1;
  EXPECT_NE(a.to_run_request().cache_key(), b.to_run_request().cache_key());

  Scenario c = a;
  c.total_steps += 4;
  EXPECT_NE(a.to_run_request().cache_key(), c.to_run_request().cache_key());

  // The name is presentation only — it must NOT shift the cache key (two
  // identically-shaped scenarios share cached results).
  Scenario d = a;
  d.name = "renamed";
  EXPECT_EQ(a.to_run_request().cache_key(), d.to_run_request().cache_key());
  EXPECT_NE(a.label(), d.label());  // but the human label does differ
}

// ---------------------------------------------------------------------------
// Warm cache hits replay the RunResult bit for bit through the on-disk text
// codec (max_digits10 serialization).
// ---------------------------------------------------------------------------

TEST(ScenarioFuzz, RunCacheHitIsBitIdenticalToColdRun) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "ss_scenario_cache_test").string();
  std::filesystem::remove_all(dir);
  const RunCache cache(dir);

  const Scenario s = generate_scenario(5);
  const RunRequest req = s.to_run_request();
  const RunResult cold = cache.run_cached(req);   // miss: runs + stores
  const RunResult warm = cache.run_cached(req);   // hit: parses the stored text

  const std::vector<std::string> diff = diff_run_results(cold, warm);
  std::string joined;
  for (const std::string& f : diff) joined += f + " ";
  EXPECT_TRUE(diff.empty()) << "cache hit differs in: " << joined;

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ss
