#include "common/stats.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ss {
namespace {

TEST(RunningStat, MatchesNaiveComputation) {
  RunningStat rs;
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), 5u);
  EXPECT_DOUBLE_EQ(rs.mean(), 6.2);
  EXPECT_NEAR(rs.variance(), 29.76, 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 16.0);
}

TEST(RunningStat, EmptyAndSingle) {
  RunningStat rs;
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  rs.add(3.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

TEST(RunningStat, Reset) {
  RunningStat rs;
  rs.add(1.0);
  rs.add(2.0);
  rs.reset();
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
}

TEST(VectorStats, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(stddev_of({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(stddev_of({2.0, 4.0}), 1.0);  // population stddev
}

TEST(Percentile, InterpolatesLinearly) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile_of(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile_of(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile_of({}, 50.0), 0.0);
}

TEST(SlidingWindow, RejectsZeroCapacity) {
  EXPECT_THROW(SlidingWindow(0), std::invalid_argument);
}

TEST(SlidingWindow, MeanOverWindowOnly) {
  SlidingWindow w(3);
  EXPECT_FALSE(w.full());
  w.add(1.0);
  w.add(2.0);
  EXPECT_DOUBLE_EQ(w.mean(), 1.5);
  w.add(3.0);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.add(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_EQ(w.size(), 3u);
}

TEST(SlidingWindow, Clear) {
  SlidingWindow w(2);
  w.add(5.0);
  w.clear();
  EXPECT_EQ(w.size(), 0u);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
}

class PercentileSweep : public ::testing::TestWithParam<double> {};

TEST_P(PercentileSweep, WithinDataRange) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0, 50.0};
  const double p = percentile_of(xs, GetParam());
  EXPECT_GE(p, 10.0);
  EXPECT_LE(p, 50.0);
}

INSTANTIATE_TEST_SUITE_P(Ps, PercentileSweep, ::testing::Values(0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0));

}  // namespace
}  // namespace ss
