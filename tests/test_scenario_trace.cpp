// Scenario engine: trace parsing (src/scenario/trace_replay.h).
//
//  * well-formed CSV and JSON traces parse into equivalent scenarios (the
//    two frontends reduce to the same semantic pass);
//  * write_trace_csv / write_trace_json round-trip a generated scenario to
//    an identical cache key (labels and seed survive the text form);
//  * table-driven error paths: malformed traces — out-of-order steps,
//    unknown worker ids, events past the budget, bad numbers, unknown
//    keys/events — throw ConfigError carrying the "<file>:<line>: <field>:"
//    prefix, and never crash.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.h"
#include "scenario/generator.h"
#include "scenario/trace_replay.h"

namespace ss {
namespace {

constexpr const char* kHeader = "event,at,worker,value,duration";

std::string csv_preamble() {
  return std::string("name,t\nworkers,4\nsteps,256\nseed,9\n") + kHeader + "\n";
}

// ---------------------------------------------------------------------------
// Happy paths.
// ---------------------------------------------------------------------------

TEST(TraceParse, CsvSpotPreemptionScenario) {
  const std::string text =
      "# spot preemption: lose worker 1, get a replacement later\n"
      "name,spot\n"
      "workers,4\n"
      "steps,256\n"
      "seed,7\n"
      "min_workers,2\n"
      "snapshot_interval,32\n"
      "recovery,restore\n" +
      std::string(kHeader) +
      "\n"
      "switch,0,,bsp,\n"
      "switch,64,,ssp,2\n"
      "crash,96,1,,\n"
      "join,160,,,\n"
      "slow,1000000,0,2.5,500000\n";
  const Scenario s = parse_trace_csv(text, "spot.csv");
  EXPECT_EQ(s.name, "spot");
  EXPECT_EQ(s.num_workers, 4u);
  EXPECT_EQ(s.total_steps, 256);
  EXPECT_EQ(s.seed, 7u);
  ASSERT_EQ(s.schedule.size(), 2u);
  EXPECT_EQ(s.schedule.phase(0).protocol, Protocol::kBsp);
  EXPECT_EQ(s.schedule.phase(0).steps, 64);
  EXPECT_EQ(s.schedule.phase(1).protocol, Protocol::kSsp);
  EXPECT_EQ(s.schedule.phase(1).steps, 0);  // final phase runs out the budget
  EXPECT_EQ(s.schedule.phase(1).ssp_staleness_bound, 2);
  ASSERT_EQ(s.elastic.plan.size(), 2u);
  EXPECT_EQ(s.elastic.plan.events()[0].kind, MembershipEventKind::kCrash);
  EXPECT_EQ(s.elastic.plan.events()[0].worker, 1);
  EXPECT_EQ(s.elastic.plan.events()[1].kind, MembershipEventKind::kJoin);
  EXPECT_EQ(s.elastic.snapshot_interval, 32);
  EXPECT_EQ(s.elastic.min_workers, 2u);
  ASSERT_EQ(s.stragglers.events().size(), 1u);
  EXPECT_EQ(s.stragglers.events()[0].start.us(), 1000000);
  EXPECT_EQ(s.stragglers.events()[0].duration.us(), 500000);
  EXPECT_DOUBLE_EQ(s.stragglers.events()[0].slow_factor, 2.5);
}

TEST(TraceParse, JsonParsesTheSameScenarioAsCsv) {
  const std::string csv = csv_preamble() +
                          "switch,0,,asp,\n"
                          "leave,128,3,,\n"
                          "slow,0,2,1.5,250000\n";
  const std::string json =
      "{\"name\": \"t\", \"workers\": 4, \"steps\": 256, \"seed\": 9,\n"
      " \"events\": [\n"
      "   {\"event\": \"switch\", \"at\": 0, \"value\": \"asp\"},\n"
      "   {\"event\": \"leave\", \"at\": 128, \"worker\": 3},\n"
      "   {\"event\": \"slow\", \"at\": 0, \"worker\": 2, \"value\": 1.5, "
      "\"duration\": 250000}\n"
      " ]}\n";
  const Scenario a = parse_trace_csv(csv);
  const Scenario b = parse_trace_json(json);
  EXPECT_EQ(a.to_run_request().cache_key(), b.to_run_request().cache_key());
}

TEST(TraceParse, AutoDetectsJsonByLeadingBrace) {
  const Scenario s = parse_trace("  \n{\"workers\": 2, \"steps\": 64}");
  EXPECT_EQ(s.num_workers, 2u);
  EXPECT_EQ(s.total_steps, 64);
  EXPECT_THROW(parse_trace("   \n  "), ConfigError);  // empty trace
}

TEST(TraceParse, GeneratedScenariosRoundTripThroughBothFormats) {
  for (std::uint64_t seed : {1ULL, 7ULL, 13ULL, 42ULL, 99ULL}) {
    const Scenario s = generate_scenario(seed);
    const std::string key = s.to_run_request().cache_key();
    const Scenario via_csv = parse_trace_csv(write_trace_csv(s));
    EXPECT_EQ(via_csv.to_run_request().cache_key(), key) << "seed " << seed;
    EXPECT_EQ(via_csv.label(), s.label()) << "seed " << seed;
    const Scenario via_json = parse_trace_json(write_trace_json(s));
    EXPECT_EQ(via_json.to_run_request().cache_key(), key) << "seed " << seed;
    EXPECT_EQ(via_json.label(), s.label()) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Error paths: one table for CSV bodies, one for JSON documents.  Every case
// must throw ConfigError whose message carries the expected file:line/field
// fragments — and none may crash.
// ---------------------------------------------------------------------------

struct BadTrace {
  const char* label;     // test-failure tag
  std::string text;      // full trace text
  const char* expect[2]; // fragments the ConfigError message must contain
};

void expect_config_error(const BadTrace& bad, const std::string& filename) {
  try {
    (void)parse_trace(bad.text, filename);
    FAIL() << bad.label << ": parsed without error";
  } catch (const ConfigError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(filename + ":"), std::string::npos)
        << bad.label << ": message lacks the file:line prefix: " << msg;
    for (const char* frag : bad.expect) {
      if (frag == nullptr) continue;
      EXPECT_NE(msg.find(frag), std::string::npos)
          << bad.label << ": message lacks '" << frag << "': " << msg;
    }
  }
}

TEST(TraceParseErrors, MalformedCsvTable) {
  const std::vector<BadTrace> table = {
      {"missing event header", "workers,4\nsteps,64\n", {"header", nullptr}},
      {"unknown preamble key",
       "workres,4\n" + std::string(kHeader) + "\n", {"unknown trace key", "workres"}},
      {"duplicate preamble key",
       "steps,64\nsteps,64\n" + std::string(kHeader) + "\n", {"duplicate", "steps"}},
      {"garbage preamble row",
       "workers,4,extra\n" + std::string(kHeader) + "\n", {"preamble", nullptr}},
      {"non-integer steps",
       "steps,many\n" + std::string(kHeader) + "\n", {"steps", "integer"}},
      {"zero workers", "workers,0\n" + std::string(kHeader) + "\n", {"workers", ">= 1"}},
      {"bad recovery mode",
       "recovery,maybe\n" + std::string(kHeader) + "\n", {"recovery", "restore"}},
      {"unknown event", csv_preamble() + "explode,8,0,,\n", {"unknown event", "explode"}},
      {"first switch not at zero",
       csv_preamble() + "switch,8,,bsp,\n", {"first switch", "step 0"}},
      {"out-of-order switch steps",
       csv_preamble() + "switch,0,,bsp,\nswitch,64,,asp,\nswitch,32,,ssp,\n",
       {"out-of-order switch", nullptr}},
      {"switch past the budget",
       csv_preamble() + "switch,0,,bsp,\nswitch,300,,asp,\n", {"past the", "budget"}},
      {"unknown switch protocol",
       csv_preamble() + "switch,0,,tcp,\n", {"unknown protocol", "tcp"}},
      {"membership at step zero", csv_preamble() + "crash,0,1,,\n", {"at > 0", nullptr}},
      {"membership past the budget",
       csv_preamble() + "leave,256,1,,\n", {"past the", "budget"}},
      {"out-of-order membership steps",
       csv_preamble() + "leave,128,1,,\ncrash,64,2,,\n", {"out-of-order membership", nullptr}},
      {"unknown worker id", csv_preamble() + "crash,64,9,,\n", {"unknown worker id 9", nullptr}},
      {"double crash of one worker",
       csv_preamble() + "crash,64,1,,\ncrash,128,1,,\n", {"unknown worker id 1", nullptr}},
      {"crash without a worker", csv_preamble() + "crash,64,,,\n", {"crash", "worker"}},
      {"join naming a worker",
       csv_preamble() + "join,64,2,,\n", {"join", "blank"}},
      {"shrinking below min_workers",
       "workers,2\nmin_workers,2\n" + std::string(kHeader) + "\nleave,8,0,,\n",
       {"below min_workers", nullptr}},
      {"slow factor below one", csv_preamble() + "slow,0,1,0.5,1000\n", {"factor", ">= 1"}},
      {"slow unknown worker", csv_preamble() + "slow,0,7,2.0,1000\n", {"unknown worker id 7", nullptr}},
      {"slow without duration", csv_preamble() + "slow,0,1,2.0,\n", {"duration", nullptr}},
      {"slow negative start", csv_preamble() + "slow,-5,1,2.0,1000\n", {">= 0", nullptr}},
      {"too many cells", csv_preamble() + "slow,0,1,2.0,1000,extra\n", {"5 cells", nullptr}},
  };
  for (const BadTrace& bad : table) expect_config_error(bad, "bad.csv");
}

TEST(TraceParseErrors, MalformedJsonTable) {
  const std::vector<BadTrace> table = {
      {"not an object", "[1, 2]", {"expected '{'", nullptr}},
      {"unterminated object", "{\"workers\": 4", {"expected", nullptr}},
      {"unknown trace key", "{\"wrokers\": 4}", {"unknown trace key", "wrokers"}},
      {"nested object value", "{\"workers\": {\"n\": 4}}", {"string or number", nullptr}},
      {"event missing its kind", "{\"events\": [{\"at\": 4}]}", {"missing the 'event'", nullptr}},
      {"unknown event field",
       "{\"events\": [{\"event\": \"slow\", \"when\": 4}]}", {"unknown event field", "when"}},
      {"unknown event kind",
       "{\"events\": [{\"event\": \"warp\", \"at\": 4}]}", {"unknown event", "warp"}},
      {"switch past budget",
       "{\"steps\": 64, \"events\": [{\"event\": \"switch\", \"at\": 0, \"value\": \"bsp\"},"
       " {\"event\": \"switch\", \"at\": 64, \"value\": \"asp\"}]}",
       {"past the", "budget"}},
      {"unknown worker id",
       "{\"workers\": 2, \"events\": [{\"event\": \"crash\", \"at\": 8, \"worker\": 5}]}",
       {"unknown worker id 5", nullptr}},
      {"trailing garbage", "{\"workers\": 4} tail", {"trailing content", nullptr}},
  };
  for (const BadTrace& bad : table) expect_config_error(bad, "bad.json");
}

TEST(TraceParseErrors, ErrorMessagesCarryTheLineNumber) {
  // The crash row sits on line 6 of this trace; the message must say so.
  const std::string text = csv_preamble() + "crash,64,9,,\n";
  try {
    (void)parse_trace_csv(text, "t.csv");
    FAIL() << "parsed without error";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("t.csv:6: worker:"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace ss
