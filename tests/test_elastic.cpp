// Elastic membership & fault tolerance (src/elastic/) on both runtimes:
//
//  * MembershipPlan validation and the RecoveryCoordinator's dry-run
//    feasibility checks;
//  * the AsyncSnapshotter's copy-on-read cadence snapshots;
//  * threaded runtime: a crash mid-run recovers from the last snapshot and
//    still converges; join/leave resize the cluster, re-derive the learning
//    rate, and keep the BSP/SSP quota accounting exact; reactive eviction
//    removes an injected straggler;
//  * simulator: an elastic run with a fixed MembershipPlan is bit-for-bit
//    reproducible, keyed into the run cache, and prices its recoveries;
//  * checkpoint v2 round-trips under an *active* CompressorBank — restoring
//    the per-worker error-feedback residuals alongside the PS state resumes
//    training bit-identically.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/error.h"
#include "compress/bank.h"
#include "compress/topk.h"
#include "core/run_cache.h"
#include "core/session.h"
#include "data/synthetic.h"
#include "elastic/async_snapshotter.h"
#include "elastic/membership_plan.h"
#include "elastic/recovery_coordinator.h"
#include "nn/zoo.h"
#include "ps/threaded_runtime.h"

namespace ss {
namespace {

// ---------------------------------------------------------------------------
// MembershipPlan + RecoveryCoordinator.
// ---------------------------------------------------------------------------

TEST(MembershipPlan, ValidatesEvents) {
  EXPECT_THROW(MembershipPlan({{MembershipEventKind::kCrash, 0, 0}}), ConfigError);
  EXPECT_THROW(MembershipPlan({{MembershipEventKind::kLeave, -1, 10}}), ConfigError);
  EXPECT_THROW(MembershipPlan({{MembershipEventKind::kJoin, 2, 10}}), ConfigError);
  const MembershipPlan ok({{MembershipEventKind::kJoin, -1, 20},
                           {MembershipEventKind::kCrash, 1, 10}});
  ASSERT_EQ(ok.size(), 2u);
  EXPECT_EQ(ok.events()[0].at_step, 10);  // kept sorted by step
  EXPECT_EQ(ok.join_count(), 1u);
  EXPECT_FALSE(ok.reactive());
  EXPECT_TRUE(MembershipPlan().empty());
  EXPECT_FALSE(MembershipPlan::reactive_evict().empty());
}

TEST(MembershipPlan, LabelIsCanonical) {
  EXPECT_EQ(MembershipPlan().label(), "-");
  EXPECT_EQ(MembershipPlan::crash(0, 64).label(), "crash0@64");
  const MembershipPlan plan({{MembershipEventKind::kJoin, -1, 128},
                             {MembershipEventKind::kLeave, 2, 200}});
  EXPECT_EQ(plan.label(), "join@128+leave2@200");
  ElasticConfig cfg;
  EXPECT_EQ(cfg.label(), "-");
  cfg.plan = MembershipPlan::crash(1, 32);
  cfg.snapshot_interval = 16;
  cfg.min_workers = 2;
  EXPECT_EQ(cfg.label(), "crash1@32|si=16|rm=restore|min=2");
}

TEST(RecoveryCoordinator, DryRunRejectsInfeasiblePlans) {
  ElasticConfig cfg;
  // Crash of a worker slot that does not exist.
  cfg.plan = MembershipPlan::crash(7, 10);
  EXPECT_THROW(RecoveryCoordinator(cfg, 4), ConfigError);
  // Crashing the same worker twice.
  cfg.plan = MembershipPlan({{MembershipEventKind::kCrash, 0, 10},
                             {MembershipEventKind::kCrash, 0, 20}});
  EXPECT_THROW(RecoveryCoordinator(cfg, 4), ConfigError);
  // Shrinking below the floor.
  cfg.plan = MembershipPlan::leave(0, 10);
  cfg.min_workers = 2;
  EXPECT_THROW(RecoveryCoordinator(cfg, 2), ConfigError);
  // A join first makes the same leave legal.
  cfg.plan = MembershipPlan({{MembershipEventKind::kJoin, -1, 5},
                             {MembershipEventKind::kLeave, 0, 10}});
  EXPECT_NO_THROW(RecoveryCoordinator(cfg, 2));
}

TEST(RecoveryCoordinator, AppliesEventsAndAssignsJoinSlots) {
  ElasticConfig cfg;
  cfg.plan = MembershipPlan({{MembershipEventKind::kJoin, -1, 10},
                             {MembershipEventKind::kCrash, 1, 20}});
  RecoveryCoordinator coord(cfg, 2);
  EXPECT_EQ(coord.max_slots(), 3u);
  EXPECT_EQ(coord.next_event_step(0), 10);
  EXPECT_FALSE(coord.events_due(9));
  ASSERT_TRUE(coord.events_due(10));

  const auto joined = coord.advance_to(10);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0].event.worker, 2);  // next free slot id
  EXPECT_EQ(joined[0].workers_after, 3u);
  EXPECT_TRUE(coord.is_alive(2));
  EXPECT_EQ(coord.next_event_step(10), 20);

  const auto crashed = coord.advance_to(20);
  ASSERT_EQ(crashed.size(), 1u);
  EXPECT_EQ(crashed[0].event.kind, MembershipEventKind::kCrash);
  EXPECT_FALSE(coord.is_alive(1));
  EXPECT_EQ(coord.alive_count(), 2u);
  EXPECT_EQ(coord.next_event_step(20), -1);
}

TEST(RecoveryCoordinator, EvictionRespectsTheFloor) {
  ElasticConfig cfg;
  cfg.plan = MembershipPlan::reactive_evict();
  cfg.min_workers = 2;
  RecoveryCoordinator coord(cfg, 3);
  const auto evicted = coord.evict({0, 1, 2}, 42);
  ASSERT_EQ(evicted.size(), 1u);  // floor of 2 keeps the rest
  EXPECT_EQ(evicted[0].event.kind, MembershipEventKind::kLeave);
  EXPECT_EQ(evicted[0].event.at_step, 42);
  EXPECT_EQ(coord.alive_count(), 2u);
  // Dead slots are ignored silently.
  EXPECT_TRUE(coord.evict({0}, 43).empty());
}

// ---------------------------------------------------------------------------
// SnapshotStore + AsyncSnapshotter.
// ---------------------------------------------------------------------------

TEST(AsyncSnapshotter, StoreKeepsTheLatestSnapshot) {
  SnapshotStore store;
  EXPECT_EQ(store.count(), 0);
  EXPECT_EQ(store.latest_step(), -1);
  Checkpoint a;
  a.global_step = 3;
  a.params = {1.0f};
  store.put(a);
  Checkpoint b;
  b.global_step = 9;
  b.params = {2.0f};
  store.put(b);
  EXPECT_EQ(store.count(), 2);
  EXPECT_EQ(store.latest_step(), 9);
  ASSERT_TRUE(store.latest().has_value());
  EXPECT_EQ(store.latest()->params[0], 2.0f);
}

TEST(AsyncSnapshotter, CapturesOnTheProgressCadence) {
  SnapshotStore store;
  std::atomic<std::int64_t> progress{0};
  AsyncSnapshotter snap([&] {
    Checkpoint c;
    c.global_step = progress.load();
    c.params = {0.0f};
    return c;
  },
                        [&] { return progress.load(); }, /*interval=*/10, store);
  EXPECT_EQ(store.count(), 0);  // nothing due yet
  progress.store(25);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (store.count() == 0 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  snap.stop();
  ASSERT_GE(store.count(), 1);
  EXPECT_GE(store.latest_step(), 10);
}

// ---------------------------------------------------------------------------
// Threaded runtime: crash / join / leave on real threads.
// ---------------------------------------------------------------------------

DataSplit easy_data() {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_size = 512;
  spec.test_size = 256;
  spec.num_classes = 4;
  spec.feature_dim = 16;
  spec.class_separation = 1.5;
  return make_synthetic(spec);
}

Model proto_model(const DataSplit& split) {
  Rng rng(11);
  return make_model(ModelArch::kLinear, split.train.feature_dim(), 4, rng);
}

TEST(ThreadedElastic, CrashRecoversFromTheLastSnapshotAndConverges) {
  const DataSplit split = easy_data();
  Model proto = proto_model(split);
  const double before = proto.evaluate_accuracy(split.test);

  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kAsp;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 60;
  cfg.lr = 0.1;
  cfg.num_ps_shards = 4;
  const auto clean = threaded_train(proto, split.train, cfg);

  cfg.elastic.plan = MembershipPlan::crash(1, 30);
  cfg.elastic.snapshot_interval = 20;  // PS updates between async snapshots
  cfg.elastic.recovery = RecoveryMode::kRestoreSnapshot;
  const auto crashed = threaded_train(proto, split.train, cfg);

  // Update accounting: every alive worker completes its 60 local steps; the
  // crashed worker stops at 30.  (Lost updates were applied, then rolled
  // back — the counter is monotone, like PS versions.)
  EXPECT_EQ(crashed.total_updates, 60 * 3 + 30);
  ASSERT_EQ(crashed.membership.size(), 1u);
  const ThreadedMembershipStats& ev = crashed.membership[0];
  EXPECT_EQ(ev.kind, MembershipEventKind::kCrash);
  EXPECT_EQ(ev.worker, 1);
  EXPECT_EQ(ev.at_step, 30);
  EXPECT_EQ(ev.workers_after, 3u);
  EXPECT_GE(ev.updates_lost, 0);
  EXPECT_GE(crashed.snapshots_taken, 1);  // run-start floor at minimum

  // Recovery from the snapshot loses at most one interval of updates, so
  // the run must still converge to (near) the uninterrupted accuracy.
  Model crashed_model = proto.clone();
  crashed_model.set_params(crashed.final_params);
  Model clean_model = proto.clone();
  clean_model.set_params(clean.final_params);
  const double crashed_acc = crashed_model.evaluate_accuracy(split.test);
  const double clean_acc = clean_model.evaluate_accuracy(split.test);
  EXPECT_GT(crashed_acc, before + 0.2);
  EXPECT_NEAR(crashed_acc, clean_acc, 0.2);
  for (float v : crashed.final_params) EXPECT_TRUE(std::isfinite(v));
}

TEST(ThreadedElastic, JoinAndLeaveAdjustClusterSizeLrAndBspQuotas) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kBsp;
  cfg.num_workers = 2;
  cfg.steps_per_worker = 30;
  cfg.lr = 0.05;
  cfg.elastic.plan = MembershipPlan({{MembershipEventKind::kJoin, -1, 10},
                                     {MembershipEventKind::kLeave, 0, 20}});
  const auto result = threaded_train(proto, split.train, cfg);

  // BSP applies exactly one aggregated update per round, whatever the
  // cluster size: the quota stays one round per local step.
  EXPECT_EQ(result.total_updates, 30);
  ASSERT_EQ(result.phases.size(), 1u);
  EXPECT_EQ(result.phases[0].steps, 30);
  // Wire accounting proves who participated: 10 rounds x 2 workers, then
  // 10 x 3 (slot 2 joined), then 10 x 2 (slot 0 left).
  const auto dense = static_cast<std::int64_t>(proto.num_params() * sizeof(float));
  EXPECT_EQ(result.push_bytes, (10 * 2 + 10 * 3 + 10 * 2) * dense);

  ASSERT_EQ(result.membership.size(), 2u);
  const auto& join = result.membership[0];
  const auto& leave = result.membership[1];
  EXPECT_EQ(join.kind, MembershipEventKind::kJoin);
  EXPECT_EQ(join.worker, 2);  // the next free slot
  EXPECT_EQ(join.workers_after, 3u);
  // Fixed-protocol elastic runs rescale lr by the configuration policy's
  // ratio: BSP at 3 workers = base lr x 3/2.
  EXPECT_DOUBLE_EQ(join.lr_after, 0.05 * (3.0 / 2.0));
  EXPECT_EQ(leave.kind, MembershipEventKind::kLeave);
  EXPECT_EQ(leave.worker, 0);
  EXPECT_EQ(leave.workers_after, 2u);
  EXPECT_DOUBLE_EQ(leave.lr_after, 0.05);
  EXPECT_EQ(leave.updates_lost, 0);  // graceful: nothing rolled back
  for (float v : result.final_params) EXPECT_TRUE(std::isfinite(v));
}

TEST(ThreadedElastic, SspBoundHoldsAcrossAMembershipChange) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kSsp;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 40;
  cfg.ssp_staleness_bound = 2;
  cfg.elastic.plan = MembershipPlan::leave(0, 15);
  cfg.pre_step_hook = [](std::size_t worker, std::int64_t) {
    if (worker == 1) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  const auto result = threaded_train(proto, split.train, cfg);
  // SSP quota: every alive worker reaches the common per-worker step count
  // in each segment — 15 steps x 4 workers, then 25 x 3.
  EXPECT_EQ(result.total_updates, 15 * 4 + 25 * 3);
  EXPECT_LE(result.max_clock_gap, 2);
  ASSERT_EQ(result.membership.size(), 1u);
  EXPECT_EQ(result.membership[0].workers_after, 3u);
}

TEST(ThreadedElastic, ScheduledSwitchAndMembershipCompose) {
  // A protocol switch (BSP -> ASP at step 12) and a membership change
  // (join at step 6, mid-BSP; crash at step 20, mid-ASP) in one run.
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.schedule = SwitchSchedule::bsp_to_asp(12);
  cfg.num_workers = 2;
  cfg.steps_per_worker = 30;
  cfg.elastic.plan = MembershipPlan({{MembershipEventKind::kJoin, -1, 6},
                                     {MembershipEventKind::kCrash, 0, 20}});
  cfg.elastic.snapshot_interval = 10;
  const auto result = threaded_train(proto, split.train, cfg);

  ASSERT_EQ(result.phases.size(), 2u);
  EXPECT_EQ(result.phases[0].protocol, Protocol::kBsp);
  EXPECT_EQ(result.phases[0].steps, 12);
  EXPECT_EQ(result.phases[0].updates, 12);  // one aggregate per round, any n
  EXPECT_EQ(result.phases[1].protocol, Protocol::kAsp);
  EXPECT_EQ(result.phases[1].steps, 18);
  // ASP updates: 3 workers for steps 12..20, then 2 workers to step 30.
  EXPECT_EQ(result.phases[1].updates, 8 * 3 + 10 * 2);
  ASSERT_EQ(result.membership.size(), 2u);
  EXPECT_EQ(result.membership[0].kind, MembershipEventKind::kJoin);
  EXPECT_EQ(result.membership[1].kind, MembershipEventKind::kCrash);
  for (float v : result.final_params) EXPECT_TRUE(std::isfinite(v));
}

TEST(ThreadedElastic, ReactiveEvictionRemovesAnInjectedStraggler) {
  // BSP is where a straggler hurts (every round waits for it) and where the
  // reactive eviction is round-synchronous: the leader evaluates the
  // detector once per round, so the whole cluster leaves the phase at the
  // same round and the flagged worker is retired at the drain barrier.
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kBsp;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 80;
  cfg.elastic.plan = MembershipPlan::reactive_evict();
  cfg.elastic.min_workers = 2;
  cfg.stragglers = StragglerSchedule::permanent(0, 20.0);
  cfg.detector.window_size = 3;
  cfg.detector.consecutive_required = 1;
  const auto result = threaded_train(proto, split.train, cfg);

  // The 20x straggler's throughput collapse is certain to be flagged once
  // the windows warm up; it must then leave at the next drain barrier.
  ASSERT_GE(result.membership.size(), 1u);
  EXPECT_EQ(result.membership[0].kind, MembershipEventKind::kLeave);
  EXPECT_EQ(result.membership[0].worker, 0);
  EXPECT_LE(result.membership[0].workers_after, 3u);
  EXPECT_EQ(result.total_updates, 80);  // one aggregate per round throughout
  for (float v : result.final_params) EXPECT_TRUE(std::isfinite(v));
}

TEST(ThreadedElastic, AspReactiveEvictionIsBestEffortWhenFastWorkersFinishFirst) {
  // The documented ASP edge (docs/EXPERIMENTS.md): under ASP nothing makes
  // the healthy workers wait, so they can burn through the whole step budget
  // before the latched eviction's drain step — which the 20x straggler must
  // also reach — ever resolves.  Eviction is best-effort by design.  This
  // regression test pins the deterministic facts of that race, whichever way
  // it goes: the run terminates (no drain-barrier deadlock against an
  // unreachable quota), every worker still completes its full step budget
  // unless evicted (so the update count stays within the 3-alive/4-alive
  // envelope), at most the one flagged worker leaves, and the parameters
  // stay finite.
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kAsp;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 40;
  cfg.elastic.plan = MembershipPlan::reactive_evict();
  cfg.elastic.min_workers = 2;
  cfg.stragglers = StragglerSchedule::permanent(0, 20.0);
  cfg.detector.window_size = 3;
  cfg.detector.consecutive_required = 1;
  const auto result = threaded_train(proto, split.train, cfg);

  // Evicted-or-not, the straggler contributes at least the steps it took to
  // reach the eviction drain and the healthy three contribute all 40 each.
  EXPECT_GE(result.total_updates, 3 * cfg.steps_per_worker);
  EXPECT_LE(result.total_updates, 4 * cfg.steps_per_worker);
  ASSERT_LE(result.membership.size(), 1u);
  if (!result.membership.empty()) {
    EXPECT_EQ(result.membership[0].kind, MembershipEventKind::kLeave);
    EXPECT_EQ(result.membership[0].worker, 0);
    EXPECT_EQ(result.membership[0].updates_lost, 0);  // eviction never rolls back
  }
  for (float v : result.final_params) EXPECT_TRUE(std::isfinite(v));
}

TEST(ThreadedElastic, RejectsReactiveMembershipPlusReactiveSchedule) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.schedule = SwitchSchedule::reactive(Protocol::kBsp, Protocol::kAsp);
  cfg.elastic.plan = MembershipPlan::reactive_evict();
  cfg.num_workers = 2;
  cfg.steps_per_worker = 8;
  EXPECT_THROW(threaded_train(proto, split.train, cfg), ConfigError);
}

// ---------------------------------------------------------------------------
// Simulator: determinism, cache keying, pricing.
// ---------------------------------------------------------------------------

RunRequest elastic_request() {
  RunRequest req;
  req.workload.arch = ModelArch::kLinear;
  req.workload.data = SyntheticSpec::cifar10_like();
  req.workload.data.num_classes = 3;
  req.workload.data.feature_dim = 16;
  req.workload.data.train_size = 1024;
  req.workload.data.test_size = 512;
  req.workload.data.class_separation = 1.2;
  req.workload.total_steps = 256;
  req.workload.hyper.batch_size = 16;
  req.workload.hyper.learning_rate = 0.05;
  req.workload.eval_interval = 32;
  req.cluster.num_workers = 4;
  req.cluster.compute_per_batch = VTime::from_ms(20.0);
  req.cluster.reference_batch = 16;
  req.cluster.payload_bytes = 1000.0;
  req.policy = SyncSwitchPolicy::bsp_to_asp(0.25);
  req.actuator_time_scale = 0.01;
  req.elastic.plan = MembershipPlan({{MembershipEventKind::kCrash, 1, 96},
                                     {MembershipEventKind::kJoin, -1, 160},
                                     {MembershipEventKind::kLeave, 2, 208}});
  req.elastic.snapshot_interval = 64;
  req.seed = 7;
  return req;
}

void expect_bitwise_equal(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.steps_completed, b.steps_completed);
  EXPECT_EQ(a.train_time_seconds, b.train_time_seconds);
  EXPECT_EQ(a.recovery_overhead_seconds, b.recovery_overhead_seconds);
  EXPECT_EQ(a.num_membership_events, b.num_membership_events);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.final_train_loss, b.final_train_loss);
  EXPECT_EQ(a.mean_staleness, b.mean_staleness);
  ASSERT_EQ(a.loss_curve.size(), b.loss_curve.size());
  for (std::size_t i = 0; i < a.loss_curve.size(); ++i) {
    ASSERT_EQ(a.loss_curve[i].step, b.loss_curve[i].step) << "point " << i;
    ASSERT_EQ(a.loss_curve[i].loss, b.loss_curve[i].loss) << "point " << i;
  }
  ASSERT_EQ(a.accuracy_curve.size(), b.accuracy_curve.size());
  for (std::size_t i = 0; i < a.accuracy_curve.size(); ++i)
    ASSERT_EQ(a.accuracy_curve[i].accuracy, b.accuracy_curve[i].accuracy) << "point " << i;
}

TEST(SimElastic, FixedPlanIsBitForBitReproducible) {
  const RunResult a = TrainingSession(elastic_request()).run();
  const RunResult b = TrainingSession(elastic_request()).run();
  expect_bitwise_equal(a, b);
  EXPECT_EQ(a.steps_completed, 256);
  EXPECT_EQ(a.num_membership_events, 3);
  EXPECT_GT(a.recovery_overhead_seconds, 0.0);
  EXPECT_FALSE(a.diverged);
}

TEST(SimElastic, PlanIsKeyedIntoTheRunCache) {
  const RunRequest elastic = elastic_request();
  RunRequest plain = elastic;
  plain.elastic = ElasticConfig{};
  RunRequest other = elastic;
  other.elastic.snapshot_interval = 32;
  EXPECT_NE(elastic.cache_key(), plain.cache_key());
  EXPECT_NE(elastic.cache_key(), other.cache_key());
  EXPECT_NE(elastic.cache_key().find("elastic=crash1@96+join@160+leave2@208"),
            std::string::npos);
  EXPECT_NE(plain.cache_key().find("elastic=-"), std::string::npos);
  // The schema-version tag leads the key, so stale entries self-invalidate
  // whenever it is bumped.
  EXPECT_EQ(plain.cache_key().rfind("sv=", 0), 0u);
  EXPECT_NE(RunCache::hash_key(elastic), RunCache::hash_key(plain));
  // And the new result fields survive the run-cache round trip.
  const RunResult run = TrainingSession(elastic).run();
  const auto parsed = parse_run_result(serialize_run_result(run));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->num_membership_events, run.num_membership_events);
  // Text serialization uses max_digits10, so doubles round-trip exactly.
  EXPECT_EQ(parsed->recovery_overhead_seconds, run.recovery_overhead_seconds);
  EXPECT_EQ(parsed->updates_lost, run.updates_lost);
}

TEST(SimElastic, MembershipChangesPriceVirtualTime) {
  RunRequest plain = elastic_request();
  plain.elastic = ElasticConfig{};
  const RunResult without = TrainingSession(plain).run();
  const RunResult with = TrainingSession(elastic_request()).run();
  EXPECT_EQ(with.steps_completed, without.steps_completed);
  // Crash recovery + join hand-off + leave resize all cost virtual time on
  // top of the (different-cluster-size) training itself.
  EXPECT_GT(with.recovery_overhead_seconds, 0.0);
  EXPECT_NE(with.train_time_seconds, without.train_time_seconds);
}

TEST(SimElastic, CompressedRunSurvivesAJoin) {
  // Regression: the session's CompressorBank used to be sized for the
  // initial cluster only, so the joined slot's first encode threw.
  RunRequest req = elastic_request();
  req.compression = CompressionSpec::topk(0.25);
  const RunResult r = TrainingSession(req).run();
  EXPECT_FALSE(r.diverged);
  EXPECT_EQ(r.steps_completed, 256);
  EXPECT_EQ(r.num_membership_events, 3);
}

TEST(SimElastic, RejectsCombinationWithOnlinePolicies) {
  RunRequest req = elastic_request();
  req.policy.online = OnlinePolicy::kGreedy;
  EXPECT_THROW(TrainingSession{req}, ConfigError);
  req.policy.online = OnlinePolicy::kNone;
  req.policy.schedule = SwitchSchedule::reactive(Protocol::kBsp, Protocol::kAsp);
  req.elastic.plan = MembershipPlan::reactive_evict();
  EXPECT_THROW(TrainingSession{req}, ConfigError);
}

// ---------------------------------------------------------------------------
// Checkpoint v2 round-trip under an active CompressorBank: restoring the
// per-worker error-feedback residuals alongside the PS state must resume
// training bit-identically.
// ---------------------------------------------------------------------------

TEST(ElasticCheckpoint, RoundTripRestoresErrorFeedbackResidualsPerWorkerSlot) {
  const std::size_t p = 64;
  const std::size_t workers = 3;
  auto codec = std::make_shared<TopKCodec>(0.25);
  CompressorBank bank(codec, workers, /*error_feedback=*/true);
  ParameterServer ps(std::vector<float>(p, 0.5f), 0.9, /*num_shards=*/4);

  Rng data_rng(77);
  std::vector<Rng> worker_rngs;
  for (std::size_t w = 0; w < workers; ++w) worker_rngs.push_back(data_rng.fork(10 + w));

  auto step_all = [&](ParameterServer& server, CompressorBank& b, std::vector<Rng>& rngs,
                      int round) {
    for (std::size_t w = 0; w < workers; ++w) {
      std::vector<float> grad(p);
      // Deterministic per-(worker, round) gradient, independent of any
      // shared RNG state, so both halves of the comparison see equal input.
      for (std::size_t i = 0; i < p; ++i)
        grad[i] = 0.01f * static_cast<float>((i + w + 1) % 7) +
                  0.001f * static_cast<float>(round);
      const CompressedPush push = b.encode(static_cast<int>(w), grad, rngs[w]);
      if (push.sparse())
        server.apply_sparse(push.indices, push.values, 0.05);
      else
        server.apply(push.values, 0.05);
    }
  };

  // Warm up: residuals become non-trivial.
  for (int round = 0; round < 4; ++round) step_all(ps, bank, worker_rngs, round);
  for (std::size_t w = 0; w < workers; ++w)
    EXPECT_GT(bank.residual_l1(static_cast<int>(w)), 0.0);

  // Checkpoint the PS through the serialized v2 wire form, and save every
  // worker slot's residual alongside it.
  const Checkpoint ckpt = ps.make_checkpoint(4);
  const Checkpoint restored_ckpt = Checkpoint::deserialize(ckpt.serialize());
  EXPECT_EQ(restored_ckpt, ckpt);
  EXPECT_EQ(restored_ckpt.num_shards, 4u);
  std::vector<std::vector<float>> saved_residuals;
  std::vector<Rng> saved_rngs = worker_rngs;  // value type: snapshot the streams
  for (std::size_t w = 0; w < workers; ++w) {
    const auto r = bank.residual(static_cast<int>(w));
    saved_residuals.emplace_back(r.begin(), r.end());
  }

  // Continue the original for two more rounds...
  for (int round = 4; round < 6; ++round) step_all(ps, bank, worker_rngs, round);

  // ...and a restored replica (fresh PS + fresh bank + restored residuals)
  // for the same two rounds: every parameter and every residual must match
  // bit for bit.
  ParameterServer ps2(std::vector<float>(p, 0.0f), 0.9, /*num_shards=*/4);
  ps2.restore(restored_ckpt);
  CompressorBank bank2(codec, workers, /*error_feedback=*/true);
  for (std::size_t w = 0; w < workers; ++w)
    bank2.restore_residual(static_cast<int>(w), saved_residuals[w]);
  for (int round = 4; round < 6; ++round) step_all(ps2, bank2, saved_rngs, round);

  const std::span<const float> a = ps.params();
  const std::span<const float> b = ps2.params();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << "param " << i;
  for (std::size_t w = 0; w < workers; ++w) {
    const auto ra = bank.residual(static_cast<int>(w));
    const auto rb = bank2.residual(static_cast<int>(w));
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i)
      ASSERT_EQ(ra[i], rb[i]) << "worker " << w << " residual " << i;
  }

  // Without the residuals the continuation diverges — the restore is what
  // makes the transport state part of the checkpointable whole.
  ParameterServer ps3(std::vector<float>(p, 0.0f), 0.9, /*num_shards=*/4);
  ps3.restore(restored_ckpt);
  CompressorBank bank3(codec, workers, /*error_feedback=*/true);
  std::vector<Rng> rngs3 = saved_rngs;
  for (int round = 4; round < 6; ++round) step_all(ps3, bank3, rngs3, round);
  bool any_diff = false;
  const std::span<const float> c = ps3.params();
  for (std::size_t i = 0; i < a.size(); ++i) any_diff |= a[i] != c[i];
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace ss
