#include "sim/cluster.h"

#include <gtest/gtest.h>

namespace ss {
namespace {

ClusterSpec spec() {
  ClusterSpec c;
  c.num_workers = 8;
  c.compute_per_batch = VTime::from_ms(100.0);
  c.reference_batch = 64;
  c.compute_jitter_sigma = 0.0;  // deterministic for formula checks
  c.net_latency = VTime::from_ms(2.0);
  c.payload_bytes = 1024.0 * 1024.0;
  c.bandwidth_bps = 1024.0 * 1024.0;  // 1 MiB/s -> 1 s wire time
  c.sync_base = VTime::from_ms(50.0);
  c.sync_quad = VTime::from_ms(1.0);
  return c;
}

TEST(ClusterModel, TransferTimeIsLatencyPlusWire) {
  const ClusterModel m(spec());
  EXPECT_NEAR(m.transfer_time(1.0).seconds(), 1.002, 1e-6);
  EXPECT_NEAR(m.transfer_time(2.0).seconds(), 2.004, 1e-6);
}

TEST(ClusterModel, ComputeScalesWithBatchAndSlowdown) {
  const ClusterModel m(spec());
  Rng rng(1);
  EXPECT_NEAR(m.compute_time(rng, 1.0, 64).ms(), 100.0, 1e-6);
  EXPECT_NEAR(m.compute_time(rng, 1.0, 128).ms(), 200.0, 1e-6);
  EXPECT_NEAR(m.compute_time(rng, 3.0, 64).ms(), 300.0, 1e-6);
}

TEST(ClusterModel, JitterHasMeanOne) {
  auto s = spec();
  s.compute_jitter_sigma = 0.3;
  const ClusterModel m(s);
  Rng rng(2);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += m.compute_time(rng, 1.0, 64).ms();
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(ClusterModel, TaskIsPullComputePush) {
  const ClusterModel m(spec());
  Rng rng(3);
  const double task = m.task_time(rng, 1.0, 64).seconds();
  EXPECT_NEAR(task, 1.002 + 0.1 + 1.002, 1e-6);
}

TEST(ClusterModel, SyncOverheadGrowsSuperlinearly) {
  const ClusterModel m(spec());
  const double s8 = m.sync_overhead(8).ms();
  const double s16 = m.sync_overhead(16).ms();
  EXPECT_NEAR(s8, 50.0 + 64.0, 1e-6);
  EXPECT_NEAR(s16, 50.0 + 256.0, 1e-6);
  EXPECT_GT(s16 / s8, 16.0 / 8.0);  // superlinear in n
}

TEST(ClusterModel, MeanCycleIsJitterFreeTask) {
  const ClusterModel m(spec());
  EXPECT_NEAR(m.mean_cycle(64).seconds(), 2.104, 1e-6);
  EXPECT_NEAR(m.mean_cycle(128).seconds(), 2.204, 1e-6);
}

}  // namespace
}  // namespace ss
