#include "ps/param_server.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"

namespace ss {
namespace {

TEST(ParameterServer, PullCopiesParams) {
  ParameterServer ps({1.0f, 2.0f, 3.0f}, 0.9);
  std::vector<float> out(3);
  ps.pull(out);
  EXPECT_EQ(out, (std::vector<float>{1.0f, 2.0f, 3.0f}));
  std::vector<float> wrong(2);
  EXPECT_THROW(ps.pull(wrong), ConfigError);
}

TEST(ParameterServer, ApplyAdvancesVersion) {
  ParameterServer ps({0.0f}, 0.0);
  EXPECT_EQ(ps.version(), 0);
  ps.apply(std::vector<float>{1.0f}, 0.1);
  EXPECT_EQ(ps.version(), 1);
  EXPECT_NEAR(ps.params()[0], -0.1f, 1e-6);
}

TEST(ParameterServer, CheckpointRestoreRoundTrip) {
  ParameterServer ps({1.0f, 2.0f}, 0.9);
  ps.apply(std::vector<float>{0.5f, -0.5f}, 0.1);
  const Checkpoint ckpt = ps.make_checkpoint(42);
  EXPECT_EQ(ckpt.global_step, 42);

  // Mutate further, then restore.
  ps.apply(std::vector<float>{1.0f, 1.0f}, 0.1);
  ps.restore(ckpt);
  EXPECT_EQ(std::vector<float>(ps.params().begin(), ps.params().end()), ckpt.params);
  EXPECT_EQ(std::vector<float>(ps.optimizer().velocity().begin(),
                               ps.optimizer().velocity().end()),
            ckpt.velocity);
}

TEST(ParameterServer, RestoreSizeMismatchThrows) {
  ParameterServer ps({1.0f, 2.0f}, 0.9);
  Checkpoint bad;
  bad.params = {1.0f};
  bad.velocity = {0.0f};
  EXPECT_THROW(ps.restore(bad), CheckpointError);
}

TEST(ParameterServer, ApplySizeMismatchThrows) {
  // apply() must reject a mismatched gradient itself rather than relying on
  // a lower layer: the sharded implementation slices the gradient with
  // subspan() before the optimizer's own size check could fire, so without
  // this up-front validation a short span would fault mid-slicing.
  ParameterServer ps({1.0f, 2.0f, 3.0f}, 0.9);
  EXPECT_THROW(ps.apply(std::vector<float>(2, 0.1f), 0.1), ConfigError);
  EXPECT_THROW(ps.apply(std::vector<float>(4, 0.1f), 0.1), ConfigError);
  EXPECT_EQ(ps.version(), 0) << "rejected applies must not advance the version";
  EXPECT_EQ(ps.params()[0], 1.0f) << "rejected applies must not touch parameters";
}

TEST(ParameterServer, HealthyDetectsNonFinite) {
  ParameterServer ps({1.0f}, 0.0);
  EXPECT_TRUE(ps.healthy());
  ps.apply(std::vector<float>{std::numeric_limits<float>::infinity()}, 1.0);
  EXPECT_FALSE(ps.healthy());
}

TEST(ParameterServer, EmptyParamsRejected) {
  EXPECT_THROW(ParameterServer({}, 0.9), ConfigError);
}

}  // namespace
}  // namespace ss
