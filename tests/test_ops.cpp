#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace ss {
namespace {

Tensor random_tensor(Shape shape, Rng& rng, double scale = 1.0) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.gaussian(0.0, scale));
  return t;
}

/// Naive reference matmul.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += a.at2(i, kk) * b.at2(kk, j);
      c.at2(i, j) = acc;
    }
  return c;
}

TEST(Ops, MatmulMatchesNaive) {
  Rng rng(1);
  const Tensor a = random_tensor({5, 7}, rng);
  const Tensor b = random_tensor({7, 3}, rng);
  Tensor c({5, 3});
  ops::matmul(a, b, c);
  const Tensor ref = naive_matmul(a, b);
  for (std::size_t i = 0; i < c.numel(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4);
}

TEST(Ops, MatmulTnIsTransposedA) {
  Rng rng(2);
  const Tensor at = random_tensor({7, 5}, rng);  // A^T stored (k, m)
  const Tensor b = random_tensor({7, 3}, rng);
  Tensor c({5, 3});
  ops::matmul_tn(at, b, c);
  // Build A = at^T and compare with naive.
  Tensor a({5, 7});
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 7; ++j) a.at2(i, j) = at.at2(j, i);
  const Tensor ref = naive_matmul(a, b);
  for (std::size_t i = 0; i < c.numel(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4);
}

TEST(Ops, MatmulNtIsTransposedB) {
  Rng rng(3);
  const Tensor a = random_tensor({5, 7}, rng);
  const Tensor bt = random_tensor({3, 7}, rng);  // B^T stored (n, k)
  Tensor c({5, 3});
  ops::matmul_nt(a, bt, c);
  Tensor b({7, 3});
  for (std::size_t i = 0; i < 7; ++i)
    for (std::size_t j = 0; j < 3; ++j) b.at2(i, j) = bt.at2(j, i);
  const Tensor ref = naive_matmul(a, b);
  for (std::size_t i = 0; i < c.numel(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-4);
}

TEST(Ops, MatmulShapeMismatchThrows) {
  Tensor a({2, 3}), b({4, 2}), c({2, 2});
  EXPECT_THROW(ops::matmul(a, b, c), ShapeError);
}

TEST(Ops, ElementwiseHelpers) {
  std::vector<float> y = {1, 2, 3};
  const std::vector<float> x = {10, 20, 30};
  ops::add_inplace(y, x);
  EXPECT_EQ(y[2], 33.0f);
  ops::axpy(0.5f, x, y);
  EXPECT_EQ(y[0], 16.0f);
  ops::scale_inplace(y, 2.0f);
  EXPECT_EQ(y[0], 32.0f);
}

TEST(Ops, BiasAndSumRows) {
  Tensor x({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor bias({3}, std::vector<float>{10, 20, 30});
  ops::add_bias_rows(x, bias);
  EXPECT_EQ(x.at2(1, 2), 36.0f);
  Tensor grad_b({3});
  ops::sum_rows(x, grad_b);
  EXPECT_EQ(grad_b[0], 25.0f);  // 11 + 14
  EXPECT_EQ(grad_b[2], 69.0f);  // 33 + 36
}

TEST(Ops, ReluForwardBackward) {
  Tensor x({1, 4}, std::vector<float>{-1, 0, 2, -3});
  Tensor y({1, 4});
  ops::relu_forward(x, y);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  Tensor dy({1, 4}, std::vector<float>{1, 1, 1, 1});
  Tensor dx({1, 4});
  ops::relu_backward(x, dy, dx);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[2], 1.0f);
}

TEST(Ops, SoftmaxRowsSumToOneAndStable) {
  Tensor logits({2, 3}, std::vector<float>{1000.0f, 1000.0f, 1000.0f, 1.0f, 2.0f, 3.0f});
  Tensor probs({2, 3});
  ops::softmax_rows(logits, probs);
  for (std::size_t r = 0; r < 2; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) sum += probs.at2(r, c);
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
  EXPECT_NEAR(probs.at2(0, 0), 1.0f / 3.0f, 1e-5);
  EXPECT_GT(probs.at2(1, 2), probs.at2(1, 0));
}

TEST(Ops, CrossEntropyGradientMatchesNumeric) {
  // Numeric check of d(mean CE o softmax)/d logits.
  Rng rng(4);
  Tensor logits = random_tensor({3, 4}, rng);
  const std::vector<int> labels = {1, 3, 0};
  Tensor probs(logits.shape());
  ops::softmax_rows(logits, probs);
  Tensor grad(logits.shape());
  ops::softmax_xent_backward(probs, labels, grad);

  const double eps = 1e-3;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += static_cast<float>(eps);
    lm[i] -= static_cast<float>(eps);
    Tensor pp(logits.shape()), pm(logits.shape());
    ops::softmax_rows(lp, pp);
    ops::softmax_rows(lm, pm);
    const double num =
        (ops::cross_entropy_mean(pp, labels) - ops::cross_entropy_mean(pm, labels)) / (2 * eps);
    EXPECT_NEAR(grad[i], num, 5e-3);
  }
}

TEST(Ops, ArgmaxRows) {
  Tensor logits({2, 3}, std::vector<float>{1, 5, 2, 9, 0, 3});
  std::vector<int> out(2);
  ops::argmax_rows(logits, out);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 0);
}

TEST(Ops, DotAndNorm) {
  const std::vector<float> a = {3, 4};
  EXPECT_DOUBLE_EQ(ops::dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(ops::l2_norm(a), 5.0);
}

TEST(Ops, Im2ColCol2ImAdjoint) {
  // <im2col(x), y> == <x, col2im(y)> — the two ops must be exact adjoints
  // for conv backward to be correct.
  Rng rng(5);
  const std::size_t c = 2, h = 5, w = 4, kh = 3, kw = 3, pad = 1;
  const std::size_t oh = h + 2 * pad - kh + 1, ow = w + 2 * pad - kw + 1;
  std::vector<float> x(c * h * w);
  for (auto& v : x) v = static_cast<float>(rng.gaussian());
  Tensor cols({c * kh * kw, oh * ow});
  ops::im2col(x, c, h, w, kh, kw, pad, cols);

  Tensor y({c * kh * kw, oh * ow});
  for (std::size_t i = 0; i < y.numel(); ++i) y[i] = static_cast<float>(rng.gaussian());
  std::vector<float> xt(c * h * w);
  ops::col2im(y, c, h, w, kh, kw, pad, xt);

  const double lhs = ops::dot(cols.span(), y.span());
  const double rhs = ops::dot(std::span<const float>(x), std::span<const float>(xt));
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

}  // namespace
}  // namespace ss
