#include "common/vtime.h"

#include <gtest/gtest.h>

namespace ss {
namespace {

TEST(VTime, Conversions) {
  const VTime t = VTime::from_seconds(1.5);
  EXPECT_EQ(t.us(), 1500000);
  EXPECT_DOUBLE_EQ(t.ms(), 1500.0);
  EXPECT_DOUBLE_EQ(t.seconds(), 1.5);
  EXPECT_DOUBLE_EQ(VTime::from_minutes(2.0).seconds(), 120.0);
  EXPECT_EQ(VTime::from_ms(2.5).us(), 2500);
}

TEST(VTime, Arithmetic) {
  const VTime a = VTime::from_ms(100.0);
  const VTime b = VTime::from_ms(50.0);
  EXPECT_EQ((a + b).us(), 150000);
  EXPECT_EQ((a - b).us(), 50000);
  VTime c = a;
  c += b;
  EXPECT_EQ(c.us(), 150000);
}

TEST(VTime, Ordering) {
  EXPECT_LT(VTime::from_ms(1.0), VTime::from_ms(2.0));
  EXPECT_EQ(VTime::zero(), VTime::from_seconds(0.0));
  EXPECT_GT(VTime::from_seconds(1.0), VTime::from_ms(999.0));
}

TEST(VTime, Scaled) {
  EXPECT_EQ(VTime::from_ms(100.0).scaled(2.5).us(), 250000);
  EXPECT_EQ(VTime::from_ms(100.0).scaled(0.0).us(), 0);
}

}  // namespace
}  // namespace ss
