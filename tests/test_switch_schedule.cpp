// SwitchSchedule: construction, validation, labels (cache-key material), and
// the factory helpers both runtimes consume.
#include "ps/switch_schedule.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ss {
namespace {

TEST(SwitchSchedule, EmptyScheduleMeansNoSwitching) {
  const SwitchSchedule s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.has_reactive_trigger());
  EXPECT_EQ(s.label(), "-");
}

TEST(SwitchSchedule, StepSwitchedBuildsOrderedPhases) {
  const SwitchSchedule s = SwitchSchedule::step_switched(
      {{Protocol::kBsp, 120}, {Protocol::kSsp, 60}, {Protocol::kAsp, 0}});
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.phase(0).protocol, Protocol::kBsp);
  EXPECT_EQ(s.phase(0).steps, 120);
  EXPECT_EQ(s.phase(1).protocol, Protocol::kSsp);
  EXPECT_EQ(s.phase(2).protocol, Protocol::kAsp);
  EXPECT_EQ(s.phase(2).steps, 0);
  EXPECT_FALSE(s.has_reactive_trigger());
  EXPECT_EQ(s.label(), "BSP:120+SSP:60+ASP:0");
}

TEST(SwitchSchedule, BspToAspHelperMatchesThePaperDefault) {
  const SwitchSchedule s = SwitchSchedule::bsp_to_asp(16);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.phase(0).protocol, Protocol::kBsp);
  EXPECT_EQ(s.phase(0).steps, 16);
  EXPECT_EQ(s.phase(1).protocol, Protocol::kAsp);
}

TEST(SwitchSchedule, ReactiveHelpersCarryDetectorTriggers) {
  const SwitchSchedule r = SwitchSchedule::reactive(Protocol::kBsp, Protocol::kAsp);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.phase(0).trigger, SwitchTrigger::kStragglerDetected);
  EXPECT_EQ(r.phase(1).trigger, SwitchTrigger::kStepCount);
  EXPECT_TRUE(r.has_reactive_trigger());
  EXPECT_EQ(r.label(), "BSP:det+ASP:0");

  const SwitchSchedule rt = SwitchSchedule::reactive_round_trip(Protocol::kBsp, Protocol::kAsp);
  ASSERT_EQ(rt.size(), 3u);
  EXPECT_EQ(rt.phase(1).trigger, SwitchTrigger::kStragglerCleared);
  EXPECT_EQ(rt.phase(2).protocol, Protocol::kBsp);
  EXPECT_EQ(rt.label(), "BSP:det+ASP:clr+BSP:0");
}

TEST(SwitchSchedule, LabelIncludesBoundOverrides) {
  SwitchPhase ssp{Protocol::kSsp, SwitchTrigger::kStepCount, 40, 2};
  SwitchPhase tail{Protocol::kAsp, SwitchTrigger::kStepCount, 0, -1};
  const SwitchSchedule s({ssp, tail});
  EXPECT_EQ(s.label(), "SSP:40b2+ASP:0");
}

TEST(SwitchSchedule, RejectsZeroStepNonLastPhases) {
  EXPECT_THROW(SwitchSchedule::step_switched({{Protocol::kBsp, 0}, {Protocol::kAsp, 0}}),
               ConfigError);
}

TEST(SwitchSchedule, RejectsNegativeSteps) {
  EXPECT_THROW(SwitchSchedule::step_switched({{Protocol::kBsp, -5}, {Protocol::kAsp, 0}}),
               ConfigError);
}

TEST(SwitchSchedule, RejectsStepQuotaOnLastPhase) {
  // The last phase always runs out the remaining budget; a silent quota
  // would be misleading, so it is rejected outright.
  EXPECT_THROW(SwitchSchedule::step_switched({{Protocol::kBsp, 10}, {Protocol::kAsp, 10}}),
               ConfigError);
}

TEST(SwitchSchedule, RejectsReactiveLastPhase) {
  EXPECT_THROW(SwitchSchedule({SwitchPhase{Protocol::kBsp, SwitchTrigger::kStepCount, 10, -1},
                               SwitchPhase{Protocol::kAsp, SwitchTrigger::kStragglerDetected,
                                           0, -1}}),
               ConfigError);
}

TEST(SwitchSchedule, RejectsStepsOnReactivePhases) {
  EXPECT_THROW(SwitchSchedule({SwitchPhase{Protocol::kBsp, SwitchTrigger::kStragglerDetected,
                                           10, -1},
                               SwitchPhase{Protocol::kAsp, SwitchTrigger::kStepCount, 0, -1}}),
               ConfigError);
}

TEST(SwitchSchedule, TriggerNamesAreStable) {
  EXPECT_EQ(switch_trigger_name(SwitchTrigger::kStepCount), "steps");
  EXPECT_EQ(switch_trigger_name(SwitchTrigger::kStragglerDetected), "straggler-detected");
  EXPECT_EQ(switch_trigger_name(SwitchTrigger::kStragglerCleared), "straggler-cleared");
}

}  // namespace
}  // namespace ss
