#include "ps/sharded_param_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/error.h"
#include "common/rng.h"

namespace ss {
namespace {

std::vector<float> random_vec(std::size_t n, std::uint64_t seed, double scale = 1.0) {
  Rng rng(seed);
  std::vector<float> out(n);
  for (auto& v : out) v = static_cast<float>(rng.gaussian(0.0, scale));
  return out;
}

TEST(ShardedParameterServer, ShardLayoutPartitionsTheVector) {
  ShardedParameterServer ps(std::vector<float>(10, 0.0f), 0.9, 4);
  ASSERT_EQ(ps.num_shards(), 4u);
  // 10 over 4 shards: the first two shards get the extra elements.
  std::size_t covered = 0;
  std::size_t expected_begin = 0;
  const std::size_t expected_sizes[] = {3, 3, 2, 2};
  for (std::size_t s = 0; s < 4; ++s) {
    const auto r = ps.shard_range(s);
    EXPECT_EQ(r.begin, expected_begin) << "shard " << s;
    EXPECT_EQ(r.size(), expected_sizes[s]) << "shard " << s;
    expected_begin = r.end;
    covered += r.size();
  }
  EXPECT_EQ(covered, ps.num_params());
  EXPECT_THROW((void)ps.shard_range(4), ConfigError);
}

TEST(ShardedParameterServer, ShardCountIsClampedToParams) {
  ShardedParameterServer ps(std::vector<float>(3, 0.0f), 0.9, 16);
  EXPECT_EQ(ps.num_shards(), 3u);
  ShardedParameterServer ps0(std::vector<float>(3, 0.0f), 0.9, 0);
  EXPECT_EQ(ps0.num_shards(), 1u);
}

TEST(ShardedParameterServer, PerShardVersionsAdvance) {
  ShardedParameterServer ps(std::vector<float>(8, 0.0f), 0.0, 4);
  EXPECT_EQ(ps.version(), 0);
  ps.apply(std::vector<float>(8, 1.0f), 0.1);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(ps.shard_version(s), 1);
  EXPECT_EQ(ps.version(), 1);

  // A lone shard update advances that shard only; the logical version is the
  // count of *complete* updates, i.e. the minimum.
  ps.apply_shard(2, std::vector<float>(8, 1.0f), 0.1);
  EXPECT_EQ(ps.shard_version(2), 2);
  EXPECT_EQ(ps.version(), 1);

  std::vector<std::int64_t> versions;
  ps.shard_versions(versions);
  EXPECT_EQ(versions, (std::vector<std::int64_t>{1, 1, 2, 1}));
}

TEST(ShardedParameterServer, ShardedApplyMatchesSingleShardBitwise) {
  const std::size_t p = 1003;  // not divisible by the shard count
  const auto init = random_vec(p, 7);
  ShardedParameterServer flat(init, 0.9, 1);
  ShardedParameterServer sharded(init, 0.9, 8);
  for (int step = 0; step < 5; ++step) {
    const auto grad = random_vec(p, 100 + static_cast<std::uint64_t>(step), 0.01);
    flat.apply(grad, 0.05);
    sharded.apply(grad, 0.05);
  }
  ASSERT_EQ(flat.params().size(), sharded.params().size());
  for (std::size_t i = 0; i < p; ++i)
    ASSERT_EQ(flat.params()[i], sharded.params()[i]) << "param " << i;
  for (std::size_t i = 0; i < p; ++i)
    ASSERT_EQ(flat.optimizer().velocity()[i], sharded.optimizer().velocity()[i])
        << "velocity " << i;
}

TEST(ShardedParameterServer, ParallelApplyIsBitIdenticalToSerial) {
  const std::size_t p = 40000;
  const auto init = random_vec(p, 9);
  ShardedParameterServer serial(init, 0.9, 8);
  ShardedParameterServer parallel(init, 0.9, 8);
  parallel.set_parallel_apply(3);
  EXPECT_TRUE(parallel.parallel_apply_enabled());
  for (int step = 0; step < 4; ++step) {
    const auto grad = random_vec(p, 200 + static_cast<std::uint64_t>(step), 0.01);
    serial.apply(grad, 0.05);
    parallel.apply(grad, 0.05);
  }
  for (std::size_t i = 0; i < p; ++i)
    ASSERT_EQ(serial.params()[i], parallel.params()[i]) << "param " << i;
  for (std::size_t i = 0; i < p; ++i)
    ASSERT_EQ(serial.optimizer().velocity()[i], parallel.optimizer().velocity()[i])
        << "velocity " << i;

  // The parallel pull must read back exactly what a serial pull sees.
  std::vector<float> serial_out(p), parallel_out(p);
  serial.pull(serial_out);
  parallel.pull(parallel_out);
  EXPECT_EQ(serial_out, parallel_out);

  // Versions advanced once per full apply on every shard.
  for (std::size_t s = 0; s < parallel.num_shards(); ++s)
    EXPECT_EQ(parallel.shard_version(s), 4);
}

TEST(ShardApplyPool, TaskExceptionPropagatesToCallerAndPoolSurvives) {
  ShardApplyPool pool(2);
  std::atomic<int> executed{0};
  EXPECT_THROW(pool.run(8,
                        [&](std::size_t t) {
                          executed.fetch_add(1);
                          if (t == 3) throw ConfigError("boom");
                        }),
               ConfigError);
  // Independent tasks still ran; the pool is reusable afterwards.
  EXPECT_EQ(executed.load(), 8);
  std::atomic<int> second{0};
  pool.run(4, [&](std::size_t) { second.fetch_add(1); });
  EXPECT_EQ(second.load(), 4);
}

TEST(ShardedParameterServer, PullShardOnlyTouchesItsRange) {
  ShardedParameterServer ps(random_vec(10, 3), 0.9, 4);
  std::vector<float> out(10, -1000.0f);
  ps.pull_shard(1, out);
  const auto r = ps.shard_range(1);
  for (std::size_t i = 0; i < 10; ++i) {
    if (i >= r.begin && i < r.end)
      EXPECT_EQ(out[i], ps.params()[i]) << "index " << i;
    else
      EXPECT_EQ(out[i], -1000.0f) << "index " << i;
  }
}

TEST(ShardedParameterServer, StalenessSinceIsMaxOverShards) {
  ShardedParameterServer ps(std::vector<float>(8, 0.0f), 0.0, 4);
  std::vector<std::int64_t> pulled;
  ps.shard_versions(pulled);
  ps.apply(std::vector<float>(8, 1.0f), 0.1);
  ps.apply(std::vector<float>(8, 1.0f), 0.1);
  EXPECT_EQ(ps.staleness_since(pulled), 2);
  ps.apply_shard(3, std::vector<float>(8, 1.0f), 0.1);
  EXPECT_EQ(ps.staleness_since(pulled), 3);

  const std::vector<std::int64_t> wrong_size(2, 0);
  EXPECT_THROW((void)ps.staleness_since(wrong_size), ConfigError);
}

TEST(ShardedParameterServer, CheckpointRoundTripsShardLayout) {
  ShardedParameterServer ps(random_vec(20, 5), 0.9, 4);
  ps.apply(random_vec(20, 6, 0.01), 0.05);
  ps.apply(random_vec(20, 7, 0.01), 0.05);

  const Checkpoint ckpt = ps.make_checkpoint(99);
  EXPECT_EQ(ckpt.num_shards, 4u);
  EXPECT_EQ(ckpt.shard_versions, (std::vector<std::int64_t>{2, 2, 2, 2}));

  // Serialization preserves the layout fields.
  const Checkpoint back = Checkpoint::deserialize(ckpt.serialize());
  EXPECT_EQ(back, ckpt);

  // Same-layout restore round-trips the parameters and velocity.
  ShardedParameterServer same(std::vector<float>(20, 0.0f), 0.9, 4);
  same.restore(back);
  EXPECT_EQ(std::vector<float>(same.params().begin(), same.params().end()), ckpt.params);
  EXPECT_EQ(std::vector<float>(same.optimizer().velocity().begin(),
                               same.optimizer().velocity().end()),
            ckpt.velocity);

  // A different multi-shard layout is refused; a flat checkpoint is accepted
  // by any layout.
  ShardedParameterServer other(std::vector<float>(20, 0.0f), 0.9, 5);
  EXPECT_THROW(other.restore(back), CheckpointError);
  Checkpoint flat = back;
  flat.num_shards = 1;
  flat.shard_versions.clear();
  other.restore(flat);
  EXPECT_EQ(std::vector<float>(other.params().begin(), other.params().end()), ckpt.params);
}

TEST(ShardedParameterServer, RestoreRejectsInconsistentShardVersionCount) {
  // A checkpoint that declares N shards but carries a different number of
  // shard versions is internally inconsistent (e.g. a corrupt or hand-edited
  // blob): restore must refuse it up front even when the declared layout
  // matches the server's, rather than restoring params and then indexing a
  // short version vector.
  ShardedParameterServer ps(random_vec(20, 5), 0.9, 4);
  Checkpoint ckpt = ps.make_checkpoint(0);
  ASSERT_EQ(ckpt.num_shards, 4u);
  ckpt.shard_versions.pop_back();
  EXPECT_THROW(ps.restore(ckpt), CheckpointError);
  ckpt.shard_versions.assign(6, 0);
  EXPECT_THROW(ps.restore(ckpt), CheckpointError);
}

TEST(ShardedParameterServer, LegacyV1CheckpointDeserializes) {
  // Hand-build a v1 blob (no shard fields) and check it reads back as flat.
  Checkpoint c;
  c.global_step = 7;
  c.params = {1.0f, 2.0f};
  c.velocity = {0.5f, -0.5f};
  auto bytes = c.serialize();
  // Rewrite the version word to 1 and drop the trailing shard section
  // (num_shards u64 + count u64 + 0 entries = 16 bytes... plus entries).
  const std::size_t shard_tail =
      sizeof(std::uint64_t) * 2 + c.shard_versions.size() * sizeof(std::int64_t);
  bytes.resize(bytes.size() - shard_tail);
  const std::uint32_t v1 = 1;
  std::memcpy(bytes.data() + sizeof(std::uint32_t), &v1, sizeof(v1));

  const Checkpoint back = Checkpoint::deserialize(bytes);
  EXPECT_EQ(back.global_step, 7);
  EXPECT_EQ(back.params, c.params);
  EXPECT_EQ(back.velocity, c.velocity);
  EXPECT_EQ(back.num_shards, 1u);
  EXPECT_TRUE(back.shard_versions.empty());
}

}  // namespace
}  // namespace ss
