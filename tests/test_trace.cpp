// Trace recorder, fanout sink, JSON escaping, and Chrome trace export.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "core/session.h"
#include "ps/trace.h"

namespace ss {
namespace {

TaskObservation task(int worker, double start_s, double dur_s) {
  TaskObservation t;
  t.worker = worker;
  t.task_duration = VTime::from_seconds(dur_s);
  t.completed_at = VTime::from_seconds(start_s + dur_s);
  t.images = 64;
  return t;
}

// ------------------------------------------------------------- json_escape

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world_42"), "hello world_42");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\r"), "a\\nb\\tc\\r");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

// -------------------------------------------------------------- FanoutSink

class CountingSink final : public MetricsSink {
 public:
  void on_task(const TaskObservation&) override { ++tasks; }
  void on_update(const UpdateObservation&) override { ++updates; }
  void on_eval(std::int64_t, VTime, double) override { ++evals; }
  int tasks = 0;
  int updates = 0;
  int evals = 0;
};

TEST(FanoutSink, ForwardsToEverySink) {
  CountingSink a, b;
  FanoutSink fan({&a, &b});
  fan.on_task(task(0, 0.0, 1.0));
  fan.on_update(UpdateObservation{});
  fan.on_update(UpdateObservation{});
  fan.on_eval(1, VTime::zero(), 0.5);
  for (const CountingSink* s : {&a, &b}) {
    EXPECT_EQ(s->tasks, 1);
    EXPECT_EQ(s->updates, 2);
    EXPECT_EQ(s->evals, 1);
  }
}

TEST(FanoutSink, RejectsNullSinks) {
  CountingSink a;
  EXPECT_THROW(FanoutSink({&a, nullptr}), ConfigError);
}

// ----------------------------------------------------------- TraceRecorder

TEST(TraceRecorder, RecordsAllEventKinds) {
  TraceRecorder rec;
  rec.on_task(task(0, 0.0, 0.5));
  rec.on_task(task(1, 0.1, 0.4));
  UpdateObservation u;
  u.global_step = 8;
  u.protocol = Protocol::kAsp;
  rec.on_update(u);
  rec.on_eval(8, VTime::from_seconds(1.0), 0.75);
  EXPECT_EQ(rec.tasks().size(), 2u);
  EXPECT_EQ(rec.updates().size(), 1u);
  EXPECT_EQ(rec.evals().size(), 1u);
  EXPECT_EQ(rec.total_recorded(), 4u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorder, BoundsMemoryAndCountsDrops) {
  TraceRecorder rec(3);
  for (int i = 0; i < 10; ++i) rec.on_task(task(i, 0.0, 0.1));
  EXPECT_EQ(rec.total_recorded(), 3u);
  EXPECT_EQ(rec.dropped(), 7u);
}

TEST(TraceRecorder, RejectsZeroCapacity) { EXPECT_THROW(TraceRecorder(0), ConfigError); }

TEST(TraceRecorder, ClearResets) {
  TraceRecorder rec(2);
  rec.on_task(task(0, 0.0, 0.1));
  rec.on_task(task(0, 0.1, 0.1));
  rec.on_task(task(0, 0.2, 0.1));  // dropped
  rec.clear();
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorder, ChromeTraceIsWellFormed) {
  TraceRecorder rec;
  rec.on_task(task(2, 1.0, 0.5));
  UpdateObservation u;
  u.global_step = 16;
  u.time = VTime::from_seconds(1.5);
  u.train_loss = 0.25;
  u.staleness = 3;
  u.protocol = Protocol::kSsp;
  rec.on_update(u);
  rec.on_eval(16, VTime::from_seconds(2.0), 0.875);

  std::ostringstream os;
  rec.write_chrome_trace(os);
  const std::string json = os.str();

  // Array framing.
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("]\n"), std::string::npos);
  // One duration event on worker 2's row (tid 3), starting at t=1s.
  EXPECT_NE(json.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(json.find(R"("tid":3,"ts":1000000,"dur":500000)"), std::string::npos);
  // Instant PS update labeled with the protocol.
  EXPECT_NE(json.find(R"("name":"SSP update")"), std::string::npos);
  EXPECT_NE(json.find(R"("staleness":3)"), std::string::npos);
  // Accuracy counter track.
  EXPECT_NE(json.find(R"("ph":"C")"), std::string::npos);
  EXPECT_NE(json.find(R"("accuracy":0.875)"), std::string::npos);
  // Thread-name metadata for PS and workers 0..2.
  EXPECT_NE(json.find(R"("name":"parameter server")"), std::string::npos);
  EXPECT_NE(json.find(R"(worker 2)"), std::string::npos);
  // Balanced braces (cheap structural sanity in lieu of a JSON parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TraceRecorder, SaveRejectsUnwritablePath) {
  TraceRecorder rec;
  EXPECT_THROW(rec.save_chrome_trace("/nonexistent_dir_xyz/trace.json"), IoError);
}

// ----------------------------------------------------- session integration

TEST(TraceRecorder, ObservesAFullTrainingSession) {
  RunRequest req;
  req.workload.arch = ModelArch::kLinear;
  req.workload.data = SyntheticSpec::cifar10_like();
  req.workload.data.train_size = 512;
  req.workload.data.test_size = 256;
  req.workload.data.num_classes = 4;
  req.workload.data.feature_dim = 16;
  req.workload.total_steps = 128;
  req.workload.hyper.batch_size = 16;
  req.workload.eval_interval = 32;
  req.cluster.num_workers = 4;
  req.policy = SyncSwitchPolicy::bsp_to_asp(0.25);
  req.actuator_time_scale = 0.01;

  TraceRecorder rec;
  req.observer = &rec;
  const RunResult r = TrainingSession(req).run();
  ASSERT_FALSE(r.diverged);

  // Every minibatch step produced a task observation (BSP phase emits one
  // per worker per round; ASP one per update).
  EXPECT_GE(rec.tasks().size(), 128u);
  EXPECT_GT(rec.updates().size(), 0u);
  EXPECT_GT(rec.evals().size(), 0u);
  // Both protocols appear in the update stream (the run switched).
  bool saw_bsp = false;
  bool saw_asp = false;
  for (const auto& u : rec.updates()) {
    saw_bsp |= u.protocol == Protocol::kBsp;
    saw_asp |= u.protocol == Protocol::kAsp;
  }
  EXPECT_TRUE(saw_bsp);
  EXPECT_TRUE(saw_asp);
}

}  // namespace
}  // namespace ss
