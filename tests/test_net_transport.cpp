#include "net/socket_transport.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "data/synthetic.h"
#include "net/ps_server.h"
#include "net/socket.h"
#include "net/worker_process.h"
#include "nn/zoo.h"
#include "ps/threaded_runtime.h"

namespace ss {
namespace {

// The multi-process deployment, in-process: run_ps_server on one thread and
// run_worker_process / raw SocketTransport clients on others, talking over
// real sockets.  (The ctest `multiprocess` label covers genuine process
// death with SIGKILL; these tests cover the protocol and recovery logic
// where gtest can assert on both ends' results.)

SyntheticSpec tiny_spec() {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_size = 512;
  spec.test_size = 256;
  spec.num_classes = 4;
  spec.feature_dim = 16;
  spec.class_separation = 1.5;
  return spec;
}

std::string unique_unix_endpoint(int n) {
  return "unix:/tmp/ss_net_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(n) + ".sock";
}

/// run_ps_server on its own thread; endpoint() blocks until it listens (so
/// tcp port 0 is resolved), join() returns the result or rethrows.
class ServerHandle {
 public:
  explicit ServerHandle(PsServerConfig cfg) {
    auto listening = std::make_shared<std::promise<std::string>>();
    endpoint_ = listening->get_future();
    cfg.on_listening = [listening](const std::string& ep) { listening->set_value(ep); };
    thread_ = std::thread([this, cfg] {
      try {
        result_ = run_ps_server(cfg);
      } catch (...) {
        error_ = std::current_exception();
      }
    });
  }

  [[nodiscard]] std::string endpoint() { return endpoint_.get(); }

  PsServerResult join() {
    thread_.join();
    if (error_) std::rethrow_exception(error_);
    return result_;
  }

 private:
  std::thread thread_;
  std::future<std::string> endpoint_;
  PsServerResult result_;
  std::exception_ptr error_;
};

std::future<WorkerProcessResult> launch_worker(const std::string& endpoint,
                                               std::int64_t crash_after = -1) {
  return std::async(std::launch::async, [endpoint, crash_after] {
    WorkerProcessConfig cfg;
    cfg.endpoint = endpoint;
    cfg.crash_after_steps = crash_after;
    return run_worker_process(cfg);
  });
}

TEST(NetTransport, UnixEndToEndMatchesInProcessAccuracy) {
  PsServerConfig cfg;
  cfg.listen = unique_unix_endpoint(1);
  cfg.num_workers = 2;
  cfg.steps_per_worker = 60;
  cfg.batch_size = 32;
  cfg.lr = 0.1;
  cfg.seed = 99;
  cfg.data = tiny_spec();
  ServerHandle server(cfg);
  const std::string ep = server.endpoint();
  auto w0 = launch_worker(ep);
  auto w1 = launch_worker(ep);
  const WorkerProcessResult r0 = w0.get();
  const WorkerProcessResult r1 = w1.get();
  const PsServerResult res = server.join();

  EXPECT_EQ(res.workers_joined, 2u);
  EXPECT_EQ(res.workers_evicted, 0u);
  EXPECT_EQ(res.total_updates, 120);  // ASP: every push is an update
  EXPECT_NE(r0.worker, r1.worker);
  EXPECT_EQ(r0.steps, 60);
  EXPECT_EQ(r1.steps, 60);
  EXPECT_TRUE(r0.drained);
  EXPECT_TRUE(r1.drained);

  // Same run in-process (same seed, data, model init — the worker processes
  // mirror the threaded runtime's RNG streams): the socket deployment must
  // land in the same accuracy band.
  const DataSplit split = make_synthetic(cfg.data);
  Rng model_rng(cfg.seed);
  Model proto = make_model(cfg.arch, split.train.feature_dim(),
                           cfg.data.num_classes, model_rng);
  const double before = proto.evaluate_accuracy(split.test);
  ThreadedTrainConfig tcfg;
  tcfg.protocol = Protocol::kAsp;
  tcfg.num_workers = 2;
  tcfg.steps_per_worker = 60;
  tcfg.batch_size = 32;
  tcfg.lr = 0.1;
  tcfg.seed = 99;
  const auto inproc = threaded_train(proto, split.train, tcfg);
  Model trained = proto.clone();
  trained.set_params(inproc.final_params);
  const double inproc_acc = trained.evaluate_accuracy(split.test);

  EXPECT_GT(res.final_accuracy, before + 0.2);
  EXPECT_NEAR(res.final_accuracy, inproc_acc, 0.2);
}

TEST(NetTransport, TcpPortZeroResolvesAndServes) {
  PsServerConfig cfg;
  cfg.listen = "tcp:127.0.0.1:0";
  cfg.num_workers = 1;
  cfg.steps_per_worker = 15;
  cfg.data = tiny_spec();
  ServerHandle server(cfg);
  const std::string ep = server.endpoint();
  EXPECT_EQ(ep.rfind("tcp:127.0.0.1:", 0), 0u) << ep;
  EXPECT_NE(ep, "tcp:127.0.0.1:0");  // the kernel-assigned port is resolved
  const WorkerProcessResult r = launch_worker(ep).get();
  const PsServerResult res = server.join();
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(res.total_updates, 15);
}

TEST(NetTransport, CrashedWorkerIsEvictedAndSnapshotRestored) {
  PsServerConfig cfg;
  cfg.listen = unique_unix_endpoint(2);
  cfg.num_workers = 2;
  cfg.steps_per_worker = 40;
  cfg.snapshot_interval = 8;
  cfg.data = tiny_spec();
  ServerHandle server(cfg);
  const std::string ep = server.endpoint();
  auto survivor = launch_worker(ep);
  auto crasher = launch_worker(ep, /*crash_after=*/5);
  const WorkerProcessResult rc = crasher.get();
  const WorkerProcessResult rs = survivor.get();
  const PsServerResult res = server.join();

  EXPECT_EQ(rc.steps, 5);
  EXPECT_FALSE(rc.drained);  // abrupt close: no drain, no Bye
  EXPECT_EQ(rs.steps, 40);
  EXPECT_TRUE(rs.drained);   // the drain completes over the survivors
  EXPECT_EQ(res.workers_joined, 2u);
  EXPECT_EQ(res.workers_evicted, 1u);
  EXPECT_GE(res.snapshots_restored, 1);
  EXPECT_GE(res.updates_lost, 0);
  // Rolled-back updates are still counted as applied; the survivor's quota
  // is a floor on the total.
  EXPECT_GE(res.total_updates, 40);
}

TEST(NetTransport, TransportRpcsRoundTripAgainstLiveServer) {
  PsServerConfig cfg;
  cfg.listen = unique_unix_endpoint(3);
  cfg.num_workers = 1;
  cfg.steps_per_worker = 10;
  cfg.seed = 42;
  cfg.data = tiny_spec();
  ServerHandle server(cfg);

  AssignmentMsg a;
  SocketTransport tx(server.endpoint(), a);
  EXPECT_EQ(a.worker, 0u);
  EXPECT_EQ(a.num_workers, 1u);
  EXPECT_EQ(a.steps_per_worker, 10);
  ASSERT_EQ(tx.num_params(), a.num_params);
  ASSERT_GT(tx.num_params(), 0u);

  // Initial pull matches the model the server built from the shared seed.
  const DataSplit split = make_synthetic(cfg.data);
  Rng model_rng(cfg.seed);
  const Model reference = make_model(a.arch, split.train.feature_dim(),
                                     cfg.data.num_classes, model_rng);
  std::vector<float> params(tx.num_params());
  std::vector<std::int64_t> versions;
  tx.pull_with_versions(params, versions);
  EXPECT_EQ(params, reference.get_params());
  ASSERT_EQ(versions.size(), tx.num_shards());
  for (std::int64_t v : versions) EXPECT_EQ(v, 0);

  // Dense push -> version advances; staleness against a fresh pull is 0.
  const std::vector<float> grad(tx.num_params(), 0.25f);
  EXPECT_EQ(tx.push(grad, 0.05, versions), 0);
  EXPECT_EQ(tx.version(), 1);
  EXPECT_EQ(tx.push_scalar(grad, 0.05, 1), 0);
  EXPECT_EQ(tx.version(), 2);

  // Checkpoint round trip over the wire: snapshot, mutate, restore, verify.
  const Checkpoint ckpt = tx.snapshot_checkpoint(77);
  EXPECT_EQ(ckpt.global_step, 77);
  std::vector<float> at_snapshot(tx.num_params());
  tx.pull(at_snapshot);
  EXPECT_EQ(ckpt.params, at_snapshot);
  EXPECT_EQ(tx.push(grad, 0.05, std::vector<std::int64_t>(tx.num_shards(), 2)), 0);
  tx.restore_checkpoint(ckpt);
  std::vector<float> restored(tx.num_params());
  tx.pull(restored);
  EXPECT_EQ(restored, at_snapshot);

  EXPECT_TRUE(tx.drain_arrive(10));
  tx.bye();
  const PsServerResult res = server.join();
  EXPECT_EQ(res.workers_joined, 1u);
  EXPECT_EQ(res.workers_evicted, 0u);
  EXPECT_EQ(res.final_params, restored);
}

TEST(NetTransport, ServerRejectsProtocolVersionMismatch) {
  PsServerConfig cfg;
  cfg.listen = unique_unix_endpoint(4);
  cfg.num_workers = 1;
  cfg.steps_per_worker = 5;
  cfg.data = tiny_spec();
  ServerHandle server(cfg);
  const std::string ep = server.endpoint();

  {
    // A client from "the future" must be turned away before it can touch the
    // run — and must not consume the worker slot.
    Socket sock = connect_endpoint(ep);
    HelloMsg hello;
    hello.protocol_version = 99;
    send_frame(sock, hello.encode());
    Frame reply;
    ASSERT_TRUE(recv_frame(sock, reply));
    ASSERT_EQ(reply.type, MsgType::kError);
    EXPECT_EQ(ErrorMsg::decode(reply.payload).message, "protocol version mismatch");
  }

  const WorkerProcessResult r = launch_worker(ep).get();
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(server.join().workers_joined, 1u);
}

TEST(NetTransport, ConnectToDeadEndpointThrowsNetError) {
  AssignmentMsg a;
  EXPECT_THROW(SocketTransport("unix:/tmp/ss_net_test_no_such.sock", a), NetError);
  EXPECT_THROW(SocketTransport("tcp:127.0.0.1:1", a), NetError);
  EXPECT_THROW((void)connect_endpoint("bogus-endpoint-syntax://"), NetError);
}

}  // namespace
}  // namespace ss
