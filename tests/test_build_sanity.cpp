// Build-sanity smoke test: proves the public headers of every src/
// subsystem are self-contained (include-what-you-use smoke test).
//
// The heavy lifting happens at compile time, not here: CMake generates one
// translation unit per subsystem (build/include_check/check_<subsystem>.cpp),
// each of which does nothing but #include every header of that subsystem.
// Those TUs are compiled into this test binary, so a header that forgets one
// of its own includes fails the build of test_build_sanity rather than
// silently riding on the include order of some unrelated .cpp.
//
// The runtime checks below are deliberately tiny: they pull one
// representative type from each subsystem through the linker so a header
// whose out-of-line definitions went missing also fails here.
#include <gtest/gtest.h>

#include <type_traits>

#include "common/vtime.h"
#include "compress/codec.h"
#include "core/profiler.h"
#include "data/synthetic.h"
#include "nn/model.h"
#include "ps/protocol.h"
#include "sim/event_queue.h"
#include "tensor/tensor.h"

namespace ss {
namespace {

TEST(BuildSanity, SubsystemTypesAreUsable) {
  // common
  static_assert(std::is_default_constructible_v<VTime>);
  // tensor
  Tensor t({2, 2});
  EXPECT_EQ(t.numel(), 4u);
  // ps
  static_assert(std::is_enum_v<Protocol>);
  // sim
  EventQueue q;
  EXPECT_TRUE(q.empty());
  // data
  EXPECT_GT(SyntheticSpec::cifar10_like().num_classes, 0);
}

}  // namespace
}  // namespace ss
