#include "nn/lr_schedule.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ss {
namespace {

TEST(ConstantLr, AlwaysSame) {
  ConstantLr lr(0.1);
  EXPECT_DOUBLE_EQ(lr.at(0), 0.1);
  EXPECT_DOUBLE_EQ(lr.at(1000000), 0.1);
}

TEST(PiecewiseDecay, AppliesFactorsAtBoundaries) {
  PiecewiseDecay lr(1.0, {{10, 0.1}, {20, 0.01}});
  EXPECT_DOUBLE_EQ(lr.at(0), 1.0);
  EXPECT_DOUBLE_EQ(lr.at(9), 1.0);
  EXPECT_DOUBLE_EQ(lr.at(10), 0.1);
  EXPECT_DOUBLE_EQ(lr.at(19), 0.1);
  EXPECT_DOUBLE_EQ(lr.at(20), 0.01);
  EXPECT_DOUBLE_EQ(lr.at(1000), 0.01);
}

TEST(PiecewiseDecay, ResnetStyleMatchesPaperSchedule) {
  // x0.1 at 50% of the budget, x0.01 at 75% (paper Section VI-A).
  const auto lr = PiecewiseDecay::resnet_style(0.1, 64000);
  EXPECT_DOUBLE_EQ(lr.at(31999), 0.1);
  EXPECT_DOUBLE_EQ(lr.at(32000), 0.01);
  EXPECT_DOUBLE_EQ(lr.at(47999), 0.01);
  EXPECT_DOUBLE_EQ(lr.at(48000), 0.001);
}

TEST(PiecewiseDecay, RejectsUnsortedBoundaries) {
  EXPECT_THROW(PiecewiseDecay(1.0, {{20, 0.1}, {10, 0.01}}), ConfigError);
  EXPECT_THROW(PiecewiseDecay(1.0, {{10, 0.1}, {10, 0.01}}), ConfigError);
}

TEST(PiecewiseDecay, CloneBehavesIdentically) {
  PiecewiseDecay lr(0.5, {{100, 0.1}});
  const auto copy = lr.clone();
  for (std::int64_t s : {0, 50, 100, 200})
    EXPECT_DOUBLE_EQ(copy->at(s), lr.at(s));
}

class ScheduleMonotoneSweep : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ScheduleMonotoneSweep, NonIncreasingOverTime) {
  const auto lr = PiecewiseDecay::resnet_style(0.1, GetParam());
  double prev = 1e9;
  for (std::int64_t s = 0; s < GetParam(); s += std::max<std::int64_t>(1, GetParam() / 64)) {
    EXPECT_LE(lr.at(s), prev + 1e-12);
    prev = lr.at(s);
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, ScheduleMonotoneSweep,
                         ::testing::Values(64, 1000, 2048, 64000));

}  // namespace
}  // namespace ss
