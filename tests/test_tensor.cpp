#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace ss {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 3u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructorAndFill) {
  Tensor t({4}, 2.5f);
  EXPECT_EQ(t[3], 2.5f);
  t.fill(-1.0f);
  EXPECT_EQ(t[0], -1.0f);
}

TEST(Tensor, DataConstructorValidatesSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}), ShapeError);
}

TEST(Tensor, At2RowMajor) {
  Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at2(0, 0), 1.0f);
  EXPECT_EQ(t.at2(0, 2), 3.0f);
  EXPECT_EQ(t.at2(1, 0), 4.0f);
}

TEST(Tensor, ReshapePreservesDataAndChecksNumel) {
  Tensor t({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.dim(0), 3u);
  EXPECT_EQ(r[5], 6.0f);
  EXPECT_THROW(t.reshaped({4, 2}), ShapeError);
}

TEST(Tensor, AllFiniteDetectsNanAndInf) {
  Tensor t({2}, std::vector<float>{1.0f, 2.0f});
  EXPECT_TRUE(t.all_finite());
  t[1] = std::nanf("");
  EXPECT_FALSE(t.all_finite());
  t[1] = INFINITY;
  EXPECT_FALSE(t.all_finite());
}

TEST(Tensor, DimOutOfRangeThrows) {
  Tensor t({2, 2});
  EXPECT_THROW((void)t.dim(2), ShapeError);
}

TEST(ShapeUtils, NumelAndString) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(shape_numel({}), 0u);
  EXPECT_EQ(shape_str({2, 3}), "[2, 3]");
}

}  // namespace
}  // namespace ss
