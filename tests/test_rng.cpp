#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace ss {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng parent(7);
  Rng child = parent.fork(3);
  // Forked stream must be deterministic given (seed, fork order, stream id).
  Rng parent2(7);
  Rng child2 = parent2.fork(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
}

TEST(Rng, ForkStreamsDiffer) {
  Rng parent(7);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  for (auto v : seen) EXPECT_LT(v, 7u);
}

TEST(Rng, GaussianMomentsApproximatelyStandard) {
  Rng rng(14);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, LognormalWithMeanOneParameterization) {
  Rng rng(15);
  const double sigma = 0.2;
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(-0.5 * sigma * sigma, sigma);
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(16);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(17);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(18);
  std::vector<std::uint32_t> v(100);
  for (std::uint32_t i = 0; i < 100; ++i) v[i] = i;
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_FALSE(std::is_sorted(v.begin(), v.end()));  // astronomically unlikely
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanNearHalf) {
  Rng rng(GetParam());
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1ull, 2ull, 99ull, 12345ull, 0xDEADBEEFull));

}  // namespace
}  // namespace ss
