#include "sim/actuator.h"

#include <gtest/gtest.h>

namespace ss {
namespace {

TEST(Actuator, MatchesPaperTableIII) {
  const auto seq = ActuatorModel::paper_calibrated(ActuatorExec::kSequential);
  const auto par = ActuatorModel::paper_calibrated(ActuatorExec::kParallel);
  // Paper Table III, ResNet32 training clusters.
  EXPECT_NEAR(seq.init_time(8).seconds(), 157.0, 1.0);
  EXPECT_NEAR(seq.switch_time(8).seconds(), 90.0, 1.0);
  EXPECT_NEAR(par.init_time(8).seconds(), 90.0, 1.0);
  EXPECT_NEAR(par.switch_time(8).seconds(), 36.0, 1.0);
  EXPECT_NEAR(seq.init_time(16).seconds(), 268.0, 1.0);
  EXPECT_NEAR(seq.switch_time(16).seconds(), 165.0, 1.0);
  EXPECT_NEAR(par.init_time(16).seconds(), 128.0, 1.0);
  EXPECT_NEAR(par.switch_time(16).seconds(), 53.0, 1.0);
}

class ActuatorSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ActuatorSizeSweep, ParallelBeatsSequential) {
  const std::size_t n = GetParam();
  const auto seq = ActuatorModel::paper_calibrated(ActuatorExec::kSequential);
  const auto par = ActuatorModel::paper_calibrated(ActuatorExec::kParallel);
  EXPECT_LT(par.init_time(n), seq.init_time(n));
  EXPECT_LT(par.switch_time(n), seq.switch_time(n));
  EXPECT_LT(par.resize_time(), par.switch_time(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ActuatorSizeSweep, ::testing::Values(4u, 8u, 16u, 32u, 64u));

TEST(Actuator, CostsGrowWithClusterSize) {
  const auto par = ActuatorModel::paper_calibrated(ActuatorExec::kParallel);
  EXPECT_LT(par.init_time(8), par.init_time(16));
  EXPECT_LT(par.switch_time(8), par.switch_time(16));
}

TEST(Actuator, ExecName) {
  EXPECT_EQ(actuator_exec_name(ActuatorExec::kSequential), "Sequential");
  EXPECT_EQ(actuator_exec_name(ActuatorExec::kParallel), "Parallel");
}

}  // namespace
}  // namespace ss
