#include "ps/sim_runtime.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "data/synthetic.h"
#include "nn/zoo.h"
#include "tensor/ops.h"

namespace ss {
namespace {

struct Fixture {
  Fixture(std::size_t workers, std::uint64_t seed = 5, std::size_t batch = 8)
      : spec(make_spec()),
        split(make_synthetic(spec)),
        eval_set(split.test.head(128)),
        root(seed),
        model([&] {
          Rng init = root.fork(1);
          return make_model(ModelArch::kLinear, spec.feature_dim, spec.num_classes, init);
        }()),
        eval_model(model.clone()),
        state(make_state(workers, batch)),
        schedule(0.05) {}

  static SyntheticSpec make_spec() {
    SyntheticSpec s = SyntheticSpec::cifar10_like();
    s.train_size = 512;
    s.test_size = 256;
    s.num_classes = 4;
    s.feature_dim = 16;
    s.class_separation = 1.2;
    return s;
  }

  TrainingState make_state(std::size_t workers, std::size_t batch) {
    const auto shards = make_shards(split.train.size(), workers);
    std::vector<MinibatchSampler> samplers;
    std::vector<Rng> rngs;
    for (std::size_t w = 0; w < workers; ++w) {
      samplers.emplace_back(shards[w], batch, root.fork(100 + w));
      rngs.push_back(root.fork(200 + w));
    }
    return TrainingState(ParameterServer(model.get_params(), 0.9), std::move(samplers),
                         std::move(rngs));
  }

  static ClusterSpec cluster_spec(std::size_t workers) {
    ClusterSpec c;
    c.num_workers = workers;
    c.compute_per_batch = VTime::from_ms(10.0);
    c.reference_batch = 8;
    c.compute_jitter_sigma = 0.1;
    c.net_latency = VTime::from_ms(1.0);
    c.payload_bytes = 1000.0;
    c.bandwidth_bps = 1e8;
    c.sync_base = VTime::from_ms(5.0);
    c.sync_quad = VTime::from_ms(0.1);
    c.async_apply = VTime::from_ms(0.1);
    return c;
  }

  PhaseConfig phase(Protocol proto, std::int64_t budget) const {
    PhaseConfig cfg;
    cfg.protocol = proto;
    cfg.step_budget = budget;
    cfg.lr_schedule = &schedule;
    cfg.lr_multiplier = 1.0;
    cfg.per_worker_batch = 8;
    cfg.momentum = 0.9;
    cfg.eval_interval = 0;  // no evals unless a test wants them
    return cfg;
  }

  std::vector<int> workers(std::size_t n) const {
    std::vector<int> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<int>(i);
    return out;
  }

  SyntheticSpec spec;
  DataSplit split;
  Dataset eval_set;
  Rng root;
  Model model;
  Model eval_model;
  TrainingState state;
  ConstantLr schedule;
  StragglerSchedule no_stragglers;
  NullMetricsSink null_sink;
};

TEST(SimRuntimeBsp, EquivalentToManualAggregatedSgd) {
  // The paper's claim (Section II-B): BSP is equivalent to true minibatch
  // SGD on the aggregated batch.  Replay the runtime's exact batches through
  // a hand-written reference optimizer and compare parameters bitwise.
  const std::size_t n = 4;
  Fixture fx(n);
  Fixture ref(n);  // identical seeds -> identical samplers and init

  SimRuntime runtime(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model,
                     fx.split.train, fx.eval_set, fx.null_sink);
  const PhaseConfig cfg = fx.phase(Protocol::kBsp, 5 * static_cast<std::int64_t>(n));
  runtime.run_phase(fx.state, cfg, fx.workers(n), fx.no_stragglers, nullptr);

  // Reference: manual large-batch SGD with the same per-worker batches.
  std::vector<float> params = ref.model.get_params();
  SgdMomentum opt(params.size(), 0.9);
  Tensor bx({8, ref.spec.feature_dim});
  std::vector<int> by;
  std::vector<std::uint32_t> idx;
  std::vector<float> grad(params.size());
  std::vector<float> acc(params.size());
  for (int step = 0; step < 5; ++step) {
    std::fill(acc.begin(), acc.end(), 0.0f);
    for (std::size_t w = 0; w < n; ++w) {
      ref.state.samplers[w].next_batch(idx);
      ref.split.train.gather(idx, bx, by);
      ref.model.gradient_at(params, bx, by, grad);
      ops::add_inplace(std::span<float>(acc), std::span<const float>(grad));
    }
    ops::scale_inplace(std::span<float>(acc), 1.0f / static_cast<float>(n));
    opt.apply(params, acc, 0.05);
  }

  const auto runtime_params = fx.state.ps.params();
  ASSERT_EQ(runtime_params.size(), params.size());
  for (std::size_t i = 0; i < params.size(); ++i)
    EXPECT_FLOAT_EQ(runtime_params[i], params[i]) << "param " << i;
}

TEST(SimRuntimeBsp, AdvancesClockAndSteps) {
  const std::size_t n = 4;
  Fixture fx(n);
  SimRuntime runtime(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model,
                     fx.split.train, fx.eval_set, fx.null_sink);
  const PhaseConfig cfg = fx.phase(Protocol::kBsp, 12);
  const auto result = runtime.run_phase(fx.state, cfg, fx.workers(n), fx.no_stragglers, nullptr);
  EXPECT_EQ(result.end, PhaseEnd::kBudgetExhausted);
  EXPECT_EQ(result.steps_done, 12);  // 3 aggregated updates x 4 workers
  EXPECT_EQ(fx.state.global_step, 12);
  EXPECT_GT(fx.state.clock, VTime::zero());
  EXPECT_EQ(result.mean_staleness, 0.0);
}

TEST(SimRuntimeAsp, StalenessIsAboutWorkerCountMinusOne) {
  const std::size_t n = 8;
  Fixture fx(n);
  SimRuntime runtime(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model,
                     fx.split.train, fx.eval_set, fx.null_sink);
  const PhaseConfig cfg = fx.phase(Protocol::kAsp, 400);
  const auto result = runtime.run_phase(fx.state, cfg, fx.workers(n), fx.no_stragglers, nullptr);
  EXPECT_EQ(result.steps_done, 400);
  EXPECT_GT(result.mean_staleness, 0.5 * (n - 1));
  EXPECT_LT(result.mean_staleness, 1.5 * (n - 1));
}

TEST(SimRuntimeAsp, FasterThanBspPerStep) {
  const std::size_t n = 4;
  Fixture bsp_fx(n), asp_fx(n);
  SimRuntime bsp_rt(ClusterModel(Fixture::cluster_spec(n)), bsp_fx.model, bsp_fx.eval_model,
                    bsp_fx.split.train, bsp_fx.eval_set, bsp_fx.null_sink);
  SimRuntime asp_rt(ClusterModel(Fixture::cluster_spec(n)), asp_fx.model, asp_fx.eval_model,
                    asp_fx.split.train, asp_fx.eval_set, asp_fx.null_sink);
  const auto b = bsp_rt.run_phase(bsp_fx.state, bsp_fx.phase(Protocol::kBsp, 64),
                                  bsp_fx.workers(n), bsp_fx.no_stragglers, nullptr);
  const auto a = asp_rt.run_phase(asp_fx.state, asp_fx.phase(Protocol::kAsp, 64),
                                  asp_fx.workers(n), asp_fx.no_stragglers, nullptr);
  EXPECT_LT(a.elapsed, b.elapsed) << "same minibatch-step budget must be faster under ASP";
}

TEST(SimRuntimeSsp, RespectsStalenessBound) {
  const std::size_t n = 4;
  Fixture fx(n);
  // Make one worker 5x slower so the bound must engage.
  StragglerSchedule slow({{0, VTime::zero(), VTime::from_minutes(60.0), 5.0}});
  SimRuntime runtime(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model,
                     fx.split.train, fx.eval_set, fx.null_sink);
  PhaseConfig cfg = fx.phase(Protocol::kSsp, 200);
  cfg.ssp_staleness_bound = 2;
  const auto result = runtime.run_phase(fx.state, cfg, fx.workers(n), slow, nullptr);
  EXPECT_EQ(result.steps_done, 200);
  // With the bound, fast workers cannot run arbitrarily ahead, so mean
  // staleness stays below the ASP free-running level.
  EXPECT_LT(result.mean_staleness, static_cast<double>(n));
}

TEST(SimRuntime, DivergenceIsDetected) {
  const std::size_t n = 2;
  Fixture fx(n);
  ConstantLr huge(1e5);
  SimRuntime runtime(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model,
                     fx.split.train, fx.eval_set, fx.null_sink);
  PhaseConfig cfg = fx.phase(Protocol::kBsp, 100);
  cfg.lr_schedule = &huge;
  // Softmax CE saturates around -log(1e-12) ~ 27.6, so use a threshold the
  // exploded-but-saturated loss will cross.
  cfg.divergence_loss_threshold = 5.0;
  const auto result = runtime.run_phase(fx.state, cfg, fx.workers(n), fx.no_stragglers, nullptr);
  EXPECT_EQ(result.end, PhaseEnd::kDiverged);
  EXPECT_LT(result.steps_done, 100);
}

TEST(SimRuntime, StopPredicateInterruptsPhase) {
  const std::size_t n = 2;
  Fixture fx(n);
  SimRuntime runtime(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model,
                     fx.split.train, fx.eval_set, fx.null_sink);
  const PhaseConfig cfg = fx.phase(Protocol::kAsp, 1000);
  const auto result = runtime.run_phase(
      fx.state, cfg, fx.workers(n), fx.no_stragglers,
      [](VTime, std::int64_t step) { return step >= 10; });
  EXPECT_EQ(result.end, PhaseEnd::kStopRequested);
  EXPECT_GE(fx.state.global_step, 10);
  EXPECT_LT(fx.state.global_step, 20);
}

TEST(SimRuntime, EvalsArriveAtIntervals) {
  const std::size_t n = 2;
  Fixture fx(n);
  struct CountingSink final : MetricsSink {
    int evals = 0, tasks = 0, updates = 0;
    void on_task(const TaskObservation&) override { ++tasks; }
    void on_update(const UpdateObservation&) override { ++updates; }
    void on_eval(std::int64_t, VTime, double acc) override {
      ++evals;
      EXPECT_GE(acc, 0.0);
      EXPECT_LE(acc, 1.0);
    }
  } sink;
  SimRuntime runtime(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model,
                     fx.split.train, fx.eval_set, sink);
  PhaseConfig cfg = fx.phase(Protocol::kAsp, 64);
  cfg.eval_interval = 16;
  runtime.run_phase(fx.state, cfg, fx.workers(n), fx.no_stragglers, nullptr);
  EXPECT_EQ(sink.updates, 64);
  EXPECT_EQ(sink.tasks, 64);
  EXPECT_NEAR(sink.evals, 4, 1);
}

TEST(SimRuntime, RequiresScheduleAndWorkers) {
  const std::size_t n = 2;
  Fixture fx(n);
  SimRuntime runtime(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model,
                     fx.split.train, fx.eval_set, fx.null_sink);
  PhaseConfig cfg = fx.phase(Protocol::kBsp, 10);
  cfg.lr_schedule = nullptr;
  EXPECT_THROW(
      runtime.run_phase(fx.state, cfg, fx.workers(n), fx.no_stragglers, nullptr),
      ConfigError);
  const PhaseConfig ok = fx.phase(Protocol::kBsp, 10);
  EXPECT_THROW(runtime.run_phase(fx.state, ok, {}, fx.no_stragglers, nullptr), ConfigError);
}

TEST(SimRuntime, ActiveSubsetOnlyUsesThoseWorkers) {
  const std::size_t n = 4;
  Fixture fx(n);
  struct WorkerSink final : MetricsSink {
    std::set<int> seen;
    void on_task(const TaskObservation& o) override { seen.insert(o.worker); }
    void on_update(const UpdateObservation&) override {}
    void on_eval(std::int64_t, VTime, double) override {}
  } sink;
  SimRuntime runtime(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model,
                     fx.split.train, fx.eval_set, sink);
  runtime.run_phase(fx.state, fx.phase(Protocol::kBsp, 9), {0, 2, 3}, fx.no_stragglers,
                    nullptr);
  EXPECT_EQ(sink.seen, (std::set<int>{0, 2, 3}));
}


TEST(SimRuntimeDssp, BoundFloatsBetweenSspAndAsp) {
  // With one slow worker, DSSP lends staleness credit instead of blocking:
  // it should be faster than SSP with the same base bound but still bounded
  // (staleness below ASP's free-running level + the credit).
  const std::size_t n = 4;
  StragglerSchedule slow({{0, VTime::zero(), VTime::from_minutes(60.0), 5.0}});

  auto run = [&](Protocol proto) {
    Fixture fx(n);
    SimRuntime rt(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model,
                  fx.split.train, fx.eval_set, fx.null_sink);
    PhaseConfig cfg = fx.phase(proto, 200);
    cfg.ssp_staleness_bound = 2;
    cfg.dssp_staleness_upper = 6;
    return rt.run_phase(fx.state, cfg, fx.workers(n), slow, nullptr);
  };

  const auto ssp = run(Protocol::kSsp);
  const auto dssp = run(Protocol::kDssp);
  const auto asp = run(Protocol::kAsp);
  EXPECT_LE(dssp.elapsed, ssp.elapsed) << "DSSP must not be slower than SSP";
  EXPECT_GE(dssp.elapsed, asp.elapsed) << "DSSP cannot beat free-running ASP";
  EXPECT_EQ(dssp.steps_done, 200);
}

TEST(SimRuntimeAsp, SingleWorkerEqualsSerialSgd) {
  // With one worker there is no interleaving: ASP must be exactly serial
  // minibatch SGD (staleness identically zero), bit-for-bit.
  Fixture fx(1);
  Fixture ref(1);
  SimRuntime rt(ClusterModel(Fixture::cluster_spec(1)), fx.model, fx.eval_model,
                fx.split.train, fx.eval_set, fx.null_sink);
  const PhaseConfig cfg = fx.phase(Protocol::kAsp, 10);
  const auto result = rt.run_phase(fx.state, cfg, {0}, fx.no_stragglers, nullptr);
  EXPECT_EQ(result.mean_staleness, 0.0);

  std::vector<float> params = ref.model.get_params();
  SgdMomentum opt(params.size(), 0.9);
  Tensor bx({8, ref.spec.feature_dim});
  std::vector<int> by;
  std::vector<std::uint32_t> idx;
  std::vector<float> grad(params.size());
  for (int step = 0; step < 10; ++step) {
    ref.state.samplers[0].next_batch(idx);
    ref.split.train.gather(idx, bx, by);
    ref.model.gradient_at(params, bx, by, grad);
    opt.apply(params, grad, 0.05);
  }
  const auto rt_params = fx.state.ps.params();
  for (std::size_t i = 0; i < params.size(); ++i)
    EXPECT_FLOAT_EQ(rt_params[i], params[i]) << "param " << i;
}

}  // namespace
}  // namespace ss
