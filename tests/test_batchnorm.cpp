// BatchNorm and ResidualBlock: shapes, statistics, gradient checks, and
// behavior inside models.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "nn/batchnorm.h"
#include "nn/loss.h"
#include "nn/residual.h"

namespace ss {
namespace {

/// Numeric gradient check through a softmax-CE head (mirrors the helper in
/// test_nn_layers.cpp).
void check_layer_gradients(Layer& layer, Tensor x, const std::vector<int>& labels,
                           double tol = 5e-3) {
  SoftmaxCrossEntropy head;
  auto loss_of = [&](const Tensor& input) {
    const Tensor& out = layer.forward(input);
    return head.forward(out, labels);
  };

  loss_of(x);
  const Tensor& dx = layer.backward(head.backward());
  std::vector<Tensor> param_grads;
  for (Tensor* g : layer.grads()) param_grads.push_back(*g);
  const Tensor dx_copy = dx;

  const double eps = 1e-3;
  auto params = layer.params();
  for (std::size_t t = 0; t < params.size(); ++t) {
    Tensor& p = *params[t];
    for (std::size_t i = 0; i < std::min<std::size_t>(p.numel(), 24); ++i) {
      const float orig = p[i];
      p[i] = orig + static_cast<float>(eps);
      const double lp = loss_of(x);
      p[i] = orig - static_cast<float>(eps);
      const double lm = loss_of(x);
      p[i] = orig;
      EXPECT_NEAR(param_grads[t][i], (lp - lm) / (2 * eps), tol)
          << "param tensor " << t << " index " << i;
    }
  }
  for (std::size_t i = 0; i < std::min<std::size_t>(x.numel(), 24); ++i) {
    const float orig = x[i];
    x[i] = orig + static_cast<float>(eps);
    const double lp = loss_of(x);
    x[i] = orig - static_cast<float>(eps);
    const double lm = loss_of(x);
    x[i] = orig;
    EXPECT_NEAR(dx_copy[i], (lp - lm) / (2 * eps), tol) << "input index " << i;
  }
}

Tensor random_input(Shape shape, std::uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i)
    t[i] = scale * static_cast<float>(rng.gaussian());
  return t;
}

TEST(BatchNorm, ValidatesConstruction) {
  EXPECT_THROW(BatchNorm(0), ConfigError);
  EXPECT_THROW(BatchNorm(4, 0.0), ConfigError);
  EXPECT_THROW(BatchNorm(4, -1.0), ConfigError);
}

TEST(BatchNorm, RejectsWrongShapes) {
  BatchNorm bn(4);
  Tensor wrong({3, 5});
  EXPECT_THROW(bn.forward(wrong), ShapeError);
  Tensor one_row({1, 4});
  EXPECT_THROW(bn.forward(one_row), ShapeError);  // batch stats need N >= 2
}

TEST(BatchNorm, NormalizesToZeroMeanUnitVariance) {
  BatchNorm bn(3);
  // Shifted/scaled input: output columns must be ~N(0,1) under gamma=1, beta=0.
  Tensor x = random_input({64, 3}, 7);
  // Scales well above sqrt(eps) so the eps regularizer stays negligible.
  for (std::size_t i = 0; i < 64; ++i) {
    x.at2(i, 0) = x.at2(i, 0) * 5.0f + 100.0f;
    x.at2(i, 1) = x.at2(i, 1) * 0.5f - 3.0f;
  }
  const Tensor& y = bn.forward(x);
  for (std::size_t j = 0; j < 3; ++j) {
    double mean = 0.0;
    double var = 0.0;
    for (std::size_t i = 0; i < 64; ++i) mean += y.at2(i, j);
    mean /= 64.0;
    for (std::size_t i = 0; i < 64; ++i) {
      const double c = y.at2(i, j) - mean;
      var += c * c;
    }
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-4) << "feature " << j;
    EXPECT_NEAR(var, 1.0, 1e-2) << "feature " << j;
  }
}

TEST(BatchNorm, GammaBetaScaleAndShift) {
  BatchNorm bn(2);
  auto params = bn.params();
  (*params[0])[0] = 3.0f;   // gamma feature 0
  (*params[1])[0] = -1.0f;  // beta feature 0
  Tensor x = random_input({32, 2}, 9);
  const Tensor& y = bn.forward(x);
  double mean = 0.0;
  double var = 0.0;
  for (std::size_t i = 0; i < 32; ++i) mean += y.at2(i, 0);
  mean /= 32.0;
  for (std::size_t i = 0; i < 32; ++i) {
    const double c = y.at2(i, 0) - mean;
    var += c * c;
  }
  var /= 32.0;
  EXPECT_NEAR(mean, -1.0, 1e-5);
  EXPECT_NEAR(std::sqrt(var), 3.0, 1e-2);
}

TEST(BatchNorm, InvariantToInputShiftAndScale) {
  BatchNorm a(3);
  BatchNorm b(3);
  Tensor x = random_input({16, 3}, 11);
  Tensor x2 = x;
  for (std::size_t i = 0; i < x2.numel(); ++i) x2[i] = x2[i] * 7.0f + 2.5f;
  const Tensor& ya = a.forward(x);
  const Tensor& yb = b.forward(x2);
  for (std::size_t i = 0; i < ya.numel(); ++i) EXPECT_NEAR(ya[i], yb[i], 2e-4) << i;
}

TEST(BatchNorm, NumericGradientCheck) {
  BatchNorm bn(4);
  // Make gamma/beta non-trivial so their gradients are exercised.
  auto params = bn.params();
  for (std::size_t j = 0; j < 4; ++j) {
    (*params[0])[j] = 0.5f + 0.25f * static_cast<float>(j);
    (*params[1])[j] = -0.2f + 0.1f * static_cast<float>(j);
  }
  check_layer_gradients(bn, random_input({6, 4}, 13), {0, 1, 2, 3, 0, 1});
}

TEST(BatchNorm, BackwardRejectsMismatchedShape) {
  BatchNorm bn(3);
  Tensor x = random_input({8, 3}, 15);
  bn.forward(x);
  Tensor bad({4, 3});
  EXPECT_THROW(bn.backward(bad), ShapeError);
}

TEST(BatchNorm, CloneCopiesLearnedScale) {
  BatchNorm bn(2);
  (*bn.params()[0])[0] = 2.5f;
  (*bn.params()[1])[1] = -0.75f;
  auto copy = bn.clone();
  EXPECT_EQ((*copy->params()[0])[0], 2.5f);
  EXPECT_EQ((*copy->params()[1])[1], -0.75f);
  EXPECT_EQ(copy->describe(), bn.describe());
}

TEST(ResidualBlock, PreservesShape) {
  Rng rng(17);
  ResidualBlock block(8, rng);
  Tensor x = random_input({4, 8}, 18);
  const Tensor& y = block.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(ResidualBlock, NumericGradientCheck) {
  Rng rng(19);
  ResidualBlock block(5, rng);
  check_layer_gradients(block, random_input({6, 5}, 20), {0, 1, 2, 3, 4, 0}, 8e-3);
}

TEST(ResidualBlock, SkipPathPassesSignalWhenBranchIsZeroed) {
  Rng rng(21);
  ResidualBlock block(4, rng);
  // Zero the second Dense + BN gamma so the branch contributes nothing.
  auto params = block.params();
  // params order: fc1(W,b), bn1(gamma,beta), fc2(W,b), bn2(gamma,beta)
  ASSERT_EQ(params.size(), 8u);
  params[6]->fill(0.0f);  // bn2 gamma = 0 kills the branch
  params[7]->fill(0.0f);  // bn2 beta = 0
  Tensor x = random_input({4, 4}, 22);
  const Tensor& y = block.forward(x);
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const float expect = x[i] > 0.0f ? x[i] : 0.0f;  // ReLU(x + 0)
    EXPECT_NEAR(y[i], expect, 1e-6) << i;
  }
}

TEST(ResidualBlock, ExposesAllParameterTensors) {
  Rng rng(23);
  ResidualBlock block(4, rng);
  EXPECT_EQ(block.params().size(), 8u);
  EXPECT_EQ(block.grads().size(), 8u);
  // Params and grads are parallel in shape.
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(block.params()[i]->shape(), block.grads()[i]->shape()) << i;
}

TEST(ResidualBlock, CloneIsDeepAndIndependent) {
  Rng rng(25);
  ResidualBlock block(4, rng);
  auto copy = block.clone();
  (*block.params()[0])[0] += 1.0f;
  EXPECT_NE((*block.params()[0])[0], (*copy->params()[0])[0]);
}

}  // namespace
}  // namespace ss
