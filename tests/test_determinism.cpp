// Bit-for-bit reproducibility of the simulator: two identical RunRequests
// must produce identical RunResult curves.  This guards the event queue's
// deterministic tie-breaking (same-time events fire in worker-id order,
// then schedule order), the forked-RNG stream discipline, and — since the
// PS became sharded — the guarantee that neither the shard layout's
// per-shard accounting nor the parallel apply pool perturbs a single float
// of the trajectory.  The PinnedCorpus test at the bottom additionally pins
// the DES core's results against fingerprints recorded from the serial
// (pre-DES-core) engine across all 8 protocols, shard counts, compression,
// and a scenario-fuzz batch.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/session.h"
#include "determinism_corpus.h"

namespace ss {
namespace {

RunRequest tiny_request() {
  RunRequest req;
  req.workload.arch = ModelArch::kLinear;
  req.workload.data = SyntheticSpec::cifar10_like();
  req.workload.data.num_classes = 3;
  req.workload.data.feature_dim = 16;
  req.workload.data.train_size = 1024;
  req.workload.data.test_size = 512;
  req.workload.data.class_separation = 1.2;
  req.workload.total_steps = 256;
  req.workload.hyper.batch_size = 16;
  req.workload.hyper.learning_rate = 0.05;
  req.workload.hyper.momentum = 0.9;
  req.workload.eval_interval = 32;

  req.cluster.num_workers = 4;
  req.cluster.compute_per_batch = VTime::from_ms(20.0);
  req.cluster.reference_batch = 16;
  req.cluster.compute_jitter_sigma = 0.1;
  req.cluster.net_latency = VTime::from_ms(1.0);
  req.cluster.payload_bytes = 1000.0;
  req.cluster.bandwidth_bps = 1e8;
  req.cluster.sync_base = VTime::from_ms(20.0);
  req.cluster.sync_quad = VTime::from_ms(0.5);
  req.policy = SyncSwitchPolicy::bsp_to_asp(0.25);
  req.actuator_time_scale = 0.01;
  req.seed = 1;
  return req;
}

/// Every float of both curves, and every scalar the evaluation reads, must
/// match exactly — EXPECT_DOUBLE_EQ (ULP-tolerant) is deliberately not used.
void expect_bitwise_equal(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.diverged, b.diverged);
  EXPECT_EQ(a.steps_completed, b.steps_completed);
  EXPECT_EQ(a.num_switches, b.num_switches);
  EXPECT_EQ(a.train_time_seconds, b.train_time_seconds);
  EXPECT_EQ(a.switch_overhead_seconds, b.switch_overhead_seconds);
  EXPECT_EQ(a.mean_staleness, b.mean_staleness);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.best_accuracy, b.best_accuracy);
  EXPECT_EQ(a.converged_accuracy, b.converged_accuracy);
  EXPECT_EQ(a.final_train_loss, b.final_train_loss);
  EXPECT_EQ(a.throughput_images_per_sec, b.throughput_images_per_sec);

  ASSERT_EQ(a.loss_curve.size(), b.loss_curve.size());
  for (std::size_t i = 0; i < a.loss_curve.size(); ++i) {
    ASSERT_EQ(a.loss_curve[i].step, b.loss_curve[i].step) << "point " << i;
    ASSERT_EQ(a.loss_curve[i].seconds, b.loss_curve[i].seconds) << "point " << i;
    ASSERT_EQ(a.loss_curve[i].loss, b.loss_curve[i].loss) << "point " << i;
  }
  ASSERT_EQ(a.accuracy_curve.size(), b.accuracy_curve.size());
  for (std::size_t i = 0; i < a.accuracy_curve.size(); ++i) {
    ASSERT_EQ(a.accuracy_curve[i].step, b.accuracy_curve[i].step)
        << "point " << i;
    ASSERT_EQ(a.accuracy_curve[i].seconds, b.accuracy_curve[i].seconds) << "point " << i;
    ASSERT_EQ(a.accuracy_curve[i].accuracy, b.accuracy_curve[i].accuracy) << "point " << i;
  }
}

TEST(Determinism, IdenticalRunsProduceIdenticalCurves) {
  const RunResult a = TrainingSession(tiny_request()).run();
  const RunResult b = TrainingSession(tiny_request()).run();
  expect_bitwise_equal(a, b);
}

TEST(Determinism, HoldsForEveryProtocolPair) {
  for (Protocol proto : {Protocol::kAsp, Protocol::kSsp, Protocol::kKSync,
                         Protocol::kKAsync}) {
    RunRequest req = tiny_request();
    req.policy = SyncSwitchPolicy::pure(proto);
    req.workload.total_steps = 128;
    const RunResult a = TrainingSession(req).run();
    const RunResult b = TrainingSession(req).run();
    expect_bitwise_equal(a, b);
  }
}

TEST(Determinism, HoldsWithShardedPs) {
  RunRequest req = tiny_request();
  req.cluster.num_ps_shards = 8;
  const RunResult a = TrainingSession(req).run();
  const RunResult b = TrainingSession(req).run();
  expect_bitwise_equal(a, b);
}

TEST(Determinism, HoldsWithParallelApplyAndMatchesSerial) {
  RunRequest serial = tiny_request();
  serial.cluster.num_ps_shards = 8;
  RunRequest parallel = serial;
  parallel.cluster.ps_apply_threads = 3;

  const RunResult s1 = TrainingSession(serial).run();
  const RunResult p1 = TrainingSession(parallel).run();
  const RunResult p2 = TrainingSession(parallel).run();

  // Parallel apply is repeatable with itself...
  expect_bitwise_equal(p1, p2);
  // ...and bit-identical to the serial path: the thread pool only changes
  // who writes each disjoint shard, never the arithmetic.  This is also why
  // ps_apply_threads stays out of the run-cache key.
  expect_bitwise_equal(s1, p1);
  EXPECT_EQ(serial.cache_key(), parallel.cache_key());
}

TEST(Determinism, CompressedRunsAreReproducible) {
  // The compressed push pipeline (per-worker CompressorBank -> CompressedPush
  // -> dense or per-shard sparse apply) must not perturb reproducibility:
  // identical requests with compression produce bit-identical curves.
  const CompressionSpec specs[] = {CompressionSpec::topk(0.05), CompressionSpec::qsgd(15),
                                   CompressionSpec::terngrad()};
  for (const auto& spec : specs) {
    RunRequest req = tiny_request();
    req.workload.total_steps = 128;
    req.compression = spec;
    const RunResult a = TrainingSession(req).run();
    const RunResult b = TrainingSession(req).run();
    expect_bitwise_equal(a, b);
  }
}

TEST(Determinism, CompressedRunsAreReproducibleOnShardedPs) {
  // Top-k on a sharded PS exercises the sparse apply path: only the shards
  // owning kept coordinates advance, which must be just as deterministic as
  // the full-vector sweep.
  RunRequest req = tiny_request();
  req.workload.total_steps = 128;
  req.cluster.num_ps_shards = 8;
  req.compression = CompressionSpec::topk(0.05);
  const RunResult a = TrainingSession(req).run();
  const RunResult b = TrainingSession(req).run();
  expect_bitwise_equal(a, b);
}

TEST(Determinism, CompressionIsPartOfTheCacheKey) {
  RunRequest plain = tiny_request();
  RunRequest compressed = tiny_request();
  compressed.compression = CompressionSpec::topk(0.05);
  EXPECT_NE(plain.cache_key(), compressed.cache_key());
}

TEST(Determinism, ScheduledRunIsReproducibleAndMatchesTheLegacyTwoPhasePlan) {
  // A step-triggered SwitchSchedule of {BSP 64, ASP rest} is semantically
  // identical to the legacy bsp_to_asp(0.25) plan on a 256-step workload:
  // same budgets, same derived hyper-parameters, same switch cost.  The
  // trajectories must agree bit for bit — only the cache key differs,
  // because the schedule is an explicit request field.
  RunRequest legacy = tiny_request();
  RunRequest sched = tiny_request();
  sched.policy.schedule = SwitchSchedule::step_switched({{Protocol::kBsp, 64},
                                                         {Protocol::kAsp, 0}});
  const RunResult a = TrainingSession(sched).run();
  const RunResult b = TrainingSession(sched).run();
  expect_bitwise_equal(a, b);
  const RunResult l = TrainingSession(legacy).run();
  expect_bitwise_equal(l, a);
  EXPECT_NE(legacy.cache_key(), sched.cache_key());
}

TEST(Determinism, ThreePhaseScheduleIsReproducible) {
  RunRequest req = tiny_request();
  req.policy.schedule = SwitchSchedule::step_switched(
      {{Protocol::kBsp, 64}, {Protocol::kSsp, 64}, {Protocol::kAsp, 0}});
  req.cluster.num_ps_shards = 8;
  const RunResult a = TrainingSession(req).run();
  const RunResult b = TrainingSession(req).run();
  expect_bitwise_equal(a, b);
  EXPECT_EQ(a.num_switches, 2);
}

TEST(Determinism, ScheduleModeIgnoresTheVestigialTwoPhaseFields) {
  // With a schedule set, the legacy first/second/switch_fraction fields are
  // documented as ignored — so mutating them must not change a single bit
  // of the trajectory (regression: the per-phase momentum policy used to be
  // derived from `first`/`switch_fraction` even in schedule mode).
  RunRequest a = tiny_request();
  a.policy.schedule = SwitchSchedule::step_switched({{Protocol::kBsp, 64},
                                                     {Protocol::kAsp, 0}});
  a.policy.momentum_policy = MomentumPolicy::kZero;
  RunRequest b = a;
  b.policy.first = Protocol::kAsp;  // vestigial: would previously have
  b.policy.second = Protocol::kSsp; // forced the ASP phase to kBaseline
  b.policy.switch_fraction = 0.9;
  const RunResult ra = TrainingSession(a).run();
  const RunResult rb = TrainingSession(b).run();
  expect_bitwise_equal(ra, rb);
}

TEST(Determinism, SwitchScheduleIsPartOfTheCacheKey) {
  RunRequest plain = tiny_request();
  RunRequest sched = tiny_request();
  sched.policy.schedule = SwitchSchedule::bsp_to_asp(64);
  RunRequest sched2 = tiny_request();
  sched2.policy.schedule = SwitchSchedule::bsp_to_asp(32);
  RunRequest reactive = tiny_request();
  reactive.policy.schedule = SwitchSchedule::reactive(Protocol::kBsp, Protocol::kAsp);

  // Every distinct schedule is a distinct cache entry, and the canonical
  // label is embedded verbatim so keys stay auditable.
  EXPECT_NE(plain.cache_key(), sched.cache_key());
  EXPECT_NE(sched.cache_key(), sched2.cache_key());
  EXPECT_NE(sched.cache_key(), reactive.cache_key());
  EXPECT_NE(sched.cache_key().find("sched=BSP:64+ASP:0"), std::string::npos);
  EXPECT_NE(plain.cache_key().find("sched=-"), std::string::npos);
}

TEST(Determinism, ShardCountChangesTimingButIsKeyedSeparately) {
  RunRequest flat = tiny_request();
  RunRequest sharded = tiny_request();
  sharded.cluster.num_ps_shards = 8;
  // Different pricing → different cache entries.
  EXPECT_NE(flat.cache_key(), sharded.cache_key());
  // The sharded transfer model (parallel striped legs + per-request issue
  // cost) must price a pull differently from the flat one on this payload.
  const ClusterModel a(flat.cluster), b(sharded.cluster);
  EXPECT_NE(a.transfer_time(1.0), b.transfer_time(1.0));
}

// The full corpus (8 protocols x {1,8} shards x {none, topk} compression +
// 6 fuzz scenarios), pinned bit-for-bit against the serial engine that
// predates the DES core.  The hashes cover the complete max_digits10 result
// serialization — every scalar and every curve point.
//
// Recorded on the pre-refactor engine, with one deliberate exception: the
// six ASP/SSP/DSSP s8 entries moved when the event queue's tie-break became
// (time, worker, seq) — under the sharded transfer model two pushes can land
// on the same virtual microsecond, and those now apply in worker order
// instead of schedule order.  Everything else is byte-identical to the
// serial engine.  If a change moves any of these values *deliberately*, run
// `tools/record_determinism_corpus` and paste its output here, and say why
// in CHANGES.md; an unexplained mismatch is a regression.
TEST(Determinism, PinnedCorpusMatchesPreRefactorEngine) {
#if !defined(__x86_64__)
  GTEST_SKIP() << "fingerprints are pinned for x86-64 (FP contraction differs elsewhere)";
#endif
  const std::map<std::string, std::string> kExpectedFingerprints = {
      {"BSP/s1/none", "95cfa2356646a2a7"},
      {"BSP/s1/topk", "d51eb6217c5dbd4c"},
      {"BSP/s8/none", "b2bd9fa52730002f"},
      {"BSP/s8/topk", "e4b73637ec913635"},
      {"ASP/s1/none", "bac5726152e799a1"},
      {"ASP/s1/topk", "65dd0daf25c043b9"},
      {"ASP/s8/none", "f56f739ba9516e12"},
      {"ASP/s8/topk", "34496bcda4042892"},
      {"SSP/s1/none", "bac5726152e799a1"},
      {"SSP/s1/topk", "65dd0daf25c043b9"},
      {"SSP/s8/none", "f56f739ba9516e12"},
      {"SSP/s8/topk", "34496bcda4042892"},
      {"DSSP/s1/none", "bac5726152e799a1"},
      {"DSSP/s1/topk", "65dd0daf25c043b9"},
      {"DSSP/s8/none", "f56f739ba9516e12"},
      {"DSSP/s8/topk", "34496bcda4042892"},
      {"K-sync/s1/none", "b59417f112473a28"},
      {"K-sync/s1/topk", "679d978c4e0dcd20"},
      {"K-sync/s8/none", "251d7091bdd6490e"},
      {"K-sync/s8/topk", "7d8ee54486cd6c20"},
      {"K-batch-sync/s1/none", "ec66891359be4165"},
      {"K-batch-sync/s1/topk", "af0f7ef27c4ec330"},
      {"K-batch-sync/s8/none", "78310b2db53970f6"},
      {"K-batch-sync/s8/topk", "09fe580805d80cc5"},
      {"K-async/s1/none", "b33a27b2d5cff3b7"},
      {"K-async/s1/topk", "6ac390ad8a1541c5"},
      {"K-async/s8/none", "4f2d8da79f134c4f"},
      {"K-async/s8/topk", "4863b74824d888b5"},
      {"K-batch-async/s1/none", "b33a27b2d5cff3b7"},
      {"K-batch-async/s1/topk", "6ac390ad8a1541c5"},
      {"K-batch-async/s8/none", "edc73a9774ca3a8e"},
      {"K-batch-async/s8/topk", "484999d19a58b7de"},
      {"scenario/seed1", "8d21442a7f91dd62"},
      {"scenario/seed2", "d05e7ea794ac53ee"},
      {"scenario/seed3", "c137eb5f02289fde"},
      {"scenario/seed4", "1e992067b0b201e7"},
      {"scenario/seed5", "0e5d7cf848d718ea"},
      {"scenario/seed6", "838f0dc25f6cfee0"},
  };
  const std::vector<CorpusCase> corpus = determinism_corpus();
  ASSERT_EQ(corpus.size(), kExpectedFingerprints.size());
  for (const CorpusCase& c : corpus) {
    const auto it = kExpectedFingerprints.find(c.name);
    ASSERT_NE(it, kExpectedFingerprints.end()) << "unpinned corpus case " << c.name;
    const RunResult r = TrainingSession(c.request).run();
    EXPECT_EQ(result_fingerprint(r), it->second)
        << c.name << ": trajectory moved. If deliberate, re-record with "
        << "tools/record_determinism_corpus and explain in CHANGES.md.";
  }
}

}  // namespace
}  // namespace ss
