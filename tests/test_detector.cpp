#include "core/straggler_detector.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ss {
namespace {

/// Feed one full detection window of tasks for every worker; `slow` worker
/// takes `slow_factor` times longer per task.
void feed_round(StragglerDetector& d, std::size_t workers, std::size_t window, int slow,
                double slow_factor) {
  for (std::size_t rep = 0; rep < window; ++rep) {
    for (std::size_t w = 0; w < workers; ++w) {
      const double secs = (static_cast<int>(w) == slow) ? 0.1 * slow_factor : 0.1;
      d.observe(static_cast<int>(w), 64, VTime::from_seconds(secs));
    }
  }
}

TEST(Detector, FlagsAfterConsecutiveWindows) {
  DetectorConfig cfg;
  cfg.window_size = 4;
  cfg.consecutive_required = 3;
  StragglerDetector d(8, cfg);

  feed_round(d, 8, 4, 3, 3.0);
  EXPECT_TRUE(d.warmed_up());
  EXPECT_FALSE(d.any_straggler()) << "one bad window must not flag yet";
  feed_round(d, 8, 4, 3, 3.0);
  EXPECT_FALSE(d.any_straggler());
  feed_round(d, 8, 4, 3, 3.0);
  EXPECT_TRUE(d.any_straggler());
  EXPECT_EQ(d.stragglers(), std::vector<int>{3});
}

TEST(Detector, RecoveryClearsFlag) {
  DetectorConfig cfg;
  cfg.window_size = 4;
  cfg.consecutive_required = 2;
  StragglerDetector d(4, cfg);
  feed_round(d, 4, 4, 1, 4.0);
  feed_round(d, 4, 4, 1, 4.0);
  EXPECT_TRUE(d.any_straggler());
  // Straggler returns to normal speed; after a full healthy window the
  // flag must clear.
  feed_round(d, 4, 4, -1, 1.0);
  EXPECT_FALSE(d.any_straggler());
}

TEST(Detector, HealthyClusterNeverFlags) {
  DetectorConfig cfg;
  cfg.window_size = 4;
  cfg.consecutive_required = 2;
  StragglerDetector d(8, cfg);
  for (int i = 0; i < 10; ++i) feed_round(d, 8, 4, -1, 1.0);
  EXPECT_FALSE(d.any_straggler());
}

TEST(Detector, ResetForgetsHistory) {
  DetectorConfig cfg;
  cfg.window_size = 2;
  cfg.consecutive_required = 1;
  StragglerDetector d(4, cfg);
  feed_round(d, 4, 2, 0, 5.0);
  EXPECT_TRUE(d.any_straggler());
  d.reset();
  EXPECT_FALSE(d.any_straggler());
  EXPECT_FALSE(d.warmed_up());
}

TEST(Detector, NotWarmedUpUntilAllWindowsFull) {
  DetectorConfig cfg;
  cfg.window_size = 3;
  cfg.consecutive_required = 1;
  StragglerDetector d(2, cfg);
  d.observe(0, 64, VTime::from_seconds(0.1));
  EXPECT_FALSE(d.warmed_up());
}

TEST(Detector, RejectsBadConfigAndInput) {
  EXPECT_THROW(StragglerDetector(0, DetectorConfig{}), ConfigError);
  DetectorConfig bad;
  bad.window_size = 0;
  EXPECT_THROW(StragglerDetector(4, bad), ConfigError);
  StragglerDetector d(2, DetectorConfig{});
  EXPECT_THROW(d.observe(5, 64, VTime::from_seconds(0.1)), ConfigError);
}

class ConsecutiveSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConsecutiveSweep, FlagRequiresExactlyConfiguredWindows) {
  const int required = GetParam();
  DetectorConfig cfg;
  cfg.window_size = 4;
  cfg.consecutive_required = required;
  StragglerDetector d(4, cfg);
  for (int round = 1; round <= required; ++round) {
    feed_round(d, 4, 4, 2, 3.0);
    if (round < required) {
      EXPECT_FALSE(d.any_straggler()) << "flagged after only " << round << " windows";
    }
  }
  EXPECT_TRUE(d.any_straggler());
}

INSTANTIATE_TEST_SUITE_P(Requirements, ConsecutiveSweep, ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace ss
