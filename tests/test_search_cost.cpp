#include "core/search_cost.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ss {
namespace {

/// Logs with a knee at 0.125: accuracy 0.92 at/above, lower below, times
/// linear in the BSP fraction.  `noise` spreads repetitions symmetrically.
RunLogs make_logs(double noise, int reps = 5) {
  RunLogs logs;
  // Full dyadic grid at the search resolution (multiples of 1/32) so any
  // search path has a log to sample from.
  std::vector<double> fractions;
  for (int k = 0; k <= 32; ++k) fractions.push_back(k / 32.0);
  for (double f : fractions) {
    TimingLog log;
    const double base_acc = f >= 0.125 ? 0.92 : 0.92 - 1.5 * (0.125 - f);
    for (int r = 0; r < reps; ++r) {
      const double delta = reps > 1 ? noise * (2.0 * r / (reps - 1) - 1.0) : 0.0;
      log.accuracies.push_back(base_acc + delta);
      log.times_seconds.push_back(100.0 * (0.15 + 0.85 * f));
      log.diverged.push_back(false);
    }
    logs[f] = std::move(log);
  }
  return logs;
}

TEST(SearchCost, GroundTruthFindsKnee) {
  const SearchCostAnalyzer analyzer(make_logs(0.0), 0.01, 5);
  EXPECT_DOUBLE_EQ(analyzer.ground_truth(), 0.125);
}

TEST(SearchCost, NoiselessLogsAlwaysSucceed) {
  const SearchCostAnalyzer analyzer(make_logs(0.0), 0.01, 5);
  Rng rng(1);
  const auto report = analyzer.analyze({false, 5, 5}, 200, rng);
  EXPECT_DOUBLE_EQ(report.success_probability, 1.0);
  EXPECT_GT(report.cost_vs_bsp, 1.0);
}

TEST(SearchCost, RecurringIsCheaperThanNewJob) {
  const SearchCostAnalyzer analyzer(make_logs(0.005), 0.01, 5);
  Rng rng(2);
  const auto fresh = analyzer.analyze({false, 5, 5}, 300, rng);
  const auto recurring = analyzer.analyze({true, 0, 5}, 300, rng);
  EXPECT_LT(recurring.cost_vs_bsp, fresh.cost_vs_bsp);
  // Saving equals exactly the skipped BSP baseline runs.
  EXPECT_NEAR(fresh.cost_vs_bsp - recurring.cost_vs_bsp, 5.0, 0.2);
}

TEST(SearchCost, FewerRunsLowerSuccessUnderNoise) {
  // Noise comparable to beta: single-run searches should misjudge candidates
  // near the band edge more often than 5-run searches.
  const SearchCostAnalyzer analyzer(make_logs(0.012), 0.01, 5);
  Rng rng(3);
  const auto many = analyzer.analyze({true, 0, 5}, 500, rng);
  const auto one = analyzer.analyze({true, 0, 1}, 500, rng);
  EXPECT_LE(one.success_probability, many.success_probability);
  EXPECT_LT(one.cost_vs_bsp, many.cost_vs_bsp);
}

TEST(SearchCost, AmortizationMatchesSavingsFormula) {
  const SearchCostAnalyzer analyzer(make_logs(0.0), 0.01, 5);
  Rng rng(4);
  const auto report = analyzer.analyze({true, 0, 5}, 100, rng);
  // amortized = cost / (1 - T(s*)/T_BSP); s* = 0.125 -> T ratio 0.25625.
  const double saving = 1.0 - (0.15 + 0.85 * 0.125) / 1.0;
  EXPECT_NEAR(report.amortized_recurrences, report.cost_vs_bsp / saving, 1e-9);
}

TEST(SearchCost, EffectiveTrainingCountsBspQualityModels) {
  const SearchCostAnalyzer analyzer(make_logs(0.0), 0.01, 5);
  Rng rng(5);
  const auto report = analyzer.analyze({true, 0, 1}, 50, rng);
  // Candidates visited: 0.5, 0.25, 0.125 in-band (3 valid models); 0.0625,
  // 0.09375 below band.  Effective = 3 / cost.
  EXPECT_NEAR(report.effective_training * report.cost_vs_bsp, 3.0, 1e-6);
}

TEST(SearchCost, DivergentTimingsRejected) {
  RunLogs logs = make_logs(0.0);
  // Make everything below 0.5 diverge: ground truth must become 0.5.
  for (auto& [f, log] : logs) {
    if (f < 0.5) {
      for (std::size_t i = 0; i < log.diverged.size(); ++i) {
        log.diverged[i] = true;
        log.accuracies[i] = 0.0;
        log.times_seconds[i] = 20.0;
      }
    }
  }
  const SearchCostAnalyzer analyzer(logs, 0.01, 5);
  EXPECT_DOUBLE_EQ(analyzer.ground_truth(), 0.5);
}

TEST(SearchCost, ValidatesInput) {
  RunLogs empty;
  EXPECT_THROW(SearchCostAnalyzer(empty, 0.01, 5), ConfigError);
  const SearchCostAnalyzer analyzer(make_logs(0.0), 0.01, 5);
  Rng rng(6);
  EXPECT_THROW((void)analyzer.analyze({false, 0, 5}, 10, rng), ConfigError);
  EXPECT_THROW((void)analyzer.analyze({false, 5, 0}, 10, rng), ConfigError);
  EXPECT_THROW((void)analyzer.analyze({false, 5, 5}, 0, rng), ConfigError);
}

}  // namespace
}  // namespace ss
