// Semantics of the K-variant protocol family (Dutta et al., paper reference
// [11]): K-sync, K-batch-sync, K-async, K-batch-async.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "common/error.h"
#include "data/synthetic.h"
#include "nn/zoo.h"
#include "ps/sim_runtime.h"

namespace ss {
namespace {

struct Fixture {
  explicit Fixture(std::size_t workers, std::uint64_t seed = 5, std::size_t batch = 8)
      : spec(make_spec()),
        split(make_synthetic(spec)),
        eval_set(split.test.head(128)),
        root(seed),
        model([&] {
          Rng init = root.fork(1);
          return make_model(ModelArch::kLinear, spec.feature_dim, spec.num_classes, init);
        }()),
        eval_model(model.clone()),
        state(make_state(workers, batch)),
        schedule(0.05) {}

  static SyntheticSpec make_spec() {
    SyntheticSpec s = SyntheticSpec::cifar10_like();
    s.train_size = 512;
    s.test_size = 256;
    s.num_classes = 4;
    s.feature_dim = 16;
    s.class_separation = 1.2;
    return s;
  }

  TrainingState make_state(std::size_t workers, std::size_t batch) {
    const auto shards = make_shards(split.train.size(), workers);
    std::vector<MinibatchSampler> samplers;
    std::vector<Rng> rngs;
    for (std::size_t w = 0; w < workers; ++w) {
      samplers.emplace_back(shards[w], batch, root.fork(100 + w));
      rngs.push_back(root.fork(200 + w));
    }
    return TrainingState(ParameterServer(model.get_params(), 0.9), std::move(samplers),
                         std::move(rngs));
  }

  static ClusterSpec cluster_spec(std::size_t workers) {
    ClusterSpec c;
    c.num_workers = workers;
    c.compute_per_batch = VTime::from_ms(10.0);
    c.reference_batch = 8;
    c.compute_jitter_sigma = 0.1;
    c.net_latency = VTime::from_ms(1.0);
    c.payload_bytes = 1000.0;
    c.bandwidth_bps = 1e8;
    c.sync_base = VTime::from_ms(5.0);
    c.sync_quad = VTime::from_ms(0.1);
    c.async_apply = VTime::from_ms(0.1);
    return c;
  }

  PhaseConfig phase(Protocol proto, std::int64_t budget, int k = 0) const {
    PhaseConfig cfg;
    cfg.protocol = proto;
    cfg.k_param = k;
    cfg.step_budget = budget;
    cfg.lr_schedule = &schedule;
    cfg.lr_multiplier = 1.0;
    cfg.per_worker_batch = 8;
    cfg.momentum = 0.9;
    cfg.eval_interval = 0;
    return cfg;
  }

  std::vector<int> workers(std::size_t n) const {
    std::vector<int> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<int>(i);
    return out;
  }

  SyntheticSpec spec;
  DataSplit split;
  Dataset eval_set;
  Rng root;
  Model model;
  Model eval_model;
  TrainingState state;
  ConstantLr schedule;
  StragglerSchedule no_stragglers;
  NullMetricsSink null_sink;
};

/// Records every PS update (protocol, staleness, step counts).
class UpdateRecorder final : public MetricsSink {
 public:
  void on_task(const TaskObservation& obs) override { tasks.push_back(obs); }
  void on_update(const UpdateObservation& obs) override { updates.push_back(obs); }
  void on_eval(std::int64_t, VTime, double) override {}
  std::vector<TaskObservation> tasks;
  std::vector<UpdateObservation> updates;
};

TEST(KSync, KEqualToClusterSizeIsBitwiseBsp) {
  const std::size_t n = 4;
  Fixture a(n);
  Fixture b(n);
  SimRuntime rt_a(ClusterModel(Fixture::cluster_spec(n)), a.model, a.eval_model, a.split.train,
                  a.eval_set, a.null_sink);
  SimRuntime rt_b(ClusterModel(Fixture::cluster_spec(n)), b.model, b.eval_model, b.split.train,
                  b.eval_set, b.null_sink);

  const auto budget = static_cast<std::int64_t>(6 * n);
  const PhaseResult ra = rt_a.run_phase(a.state, a.phase(Protocol::kBsp, budget), a.workers(n),
                                        a.no_stragglers, nullptr);
  const PhaseResult rb =
      rt_b.run_phase(b.state, b.phase(Protocol::kKSync, budget, static_cast<int>(n)),
                     b.workers(n), b.no_stragglers, nullptr);

  ASSERT_EQ(ra.steps_done, rb.steps_done);
  EXPECT_EQ(ra.elapsed, rb.elapsed);
  const auto pa = a.state.ps.params();
  const auto pb = b.state.ps.params();
  for (std::size_t i = 0; i < pa.size(); ++i) ASSERT_EQ(pa[i], pb[i]) << "param " << i;
}

TEST(KSync, RoundTimeIsKthFastestNotSlowest) {
  // With one permanent 10x straggler, K-sync with K = n-1 should never wait
  // for it: the elapsed time must be far below BSP's on the same cluster.
  const std::size_t n = 4;
  StragglerScenario scenario;
  auto schedule = StragglerSchedule::permanent(/*worker=*/0, /*slow_factor=*/10.0);

  Fixture bsp(n);
  SimRuntime rt_bsp(ClusterModel(Fixture::cluster_spec(n)), bsp.model, bsp.eval_model,
                    bsp.split.train, bsp.eval_set, bsp.null_sink);
  const PhaseResult rb = rt_bsp.run_phase(bsp.state, bsp.phase(Protocol::kBsp, 6 * 4),
                                          bsp.workers(n), schedule, nullptr);

  Fixture ks(n);
  SimRuntime rt_ks(ClusterModel(Fixture::cluster_spec(n)), ks.model, ks.eval_model,
                   ks.split.train, ks.eval_set, ks.null_sink);
  const PhaseResult rk = rt_ks.run_phase(ks.state, ks.phase(Protocol::kKSync, 6 * 3, 3),
                                         ks.workers(n), schedule, nullptr);

  // Same number of rounds (6); each BSP round pays the 10x task.
  EXPECT_LT(rk.elapsed.seconds(), 0.5 * rb.elapsed.seconds());
}

TEST(KSync, CountsCancelledTasks) {
  const std::size_t n = 5;
  Fixture fx(n);
  SimRuntime rt(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model, fx.split.train,
                fx.eval_set, fx.null_sink);
  const PhaseResult r = rt.run_phase(fx.state, fx.phase(Protocol::kKSync, 4 * 3, 3),
                                     fx.workers(n), fx.no_stragglers, nullptr);
  // 4 rounds of 3 steps each; each round cancels n - k = 2 workers.
  EXPECT_EQ(r.steps_done, 12);
  EXPECT_EQ(r.cancelled_tasks, 4 * 2);
}

TEST(KSync, UpdatesHaveZeroStaleness) {
  const std::size_t n = 4;
  Fixture fx(n);
  UpdateRecorder rec;
  SimRuntime rt(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model, fx.split.train,
                fx.eval_set, rec);
  rt.run_phase(fx.state, fx.phase(Protocol::kKSync, 9, 3), fx.workers(n), fx.no_stragglers,
               nullptr);
  ASSERT_FALSE(rec.updates.empty());
  for (const auto& u : rec.updates) {
    EXPECT_EQ(u.staleness, 0);
    EXPECT_EQ(u.protocol, Protocol::kKSync);
  }
}

TEST(KBatchSync, FastWorkersContributeMultipleBatches) {
  // Worker 0 is 10x slower permanently; with K = n batches per round the
  // fast workers should fill the quota and the straggler should contribute
  // to (almost) no rounds.
  const std::size_t n = 3;
  auto schedule = StragglerSchedule::permanent(0, 10.0);
  Fixture fx(n);
  UpdateRecorder rec;
  SimRuntime rt(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model, fx.split.train,
                fx.eval_set, rec);
  rt.run_phase(fx.state, fx.phase(Protocol::kKBatchSync, 5 * 3, 3), fx.workers(n), schedule,
               nullptr);

  std::map<int, int> contributions;
  for (const auto& t : rec.tasks) contributions[t.worker]++;
  // Fast workers (1, 2) must dominate; the straggler is at most a rare contributor.
  EXPECT_GT(contributions[1] + contributions[2], 4 * contributions[0]);
  EXPECT_EQ(rec.tasks.size(), 15u);  // K contributions per round, 5 rounds
}

TEST(KBatchSync, KEqualToClusterSizeStillSynchronous) {
  const std::size_t n = 4;
  Fixture fx(n);
  UpdateRecorder rec;
  SimRuntime rt(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model, fx.split.train,
                fx.eval_set, rec);
  const PhaseResult r = rt.run_phase(fx.state, fx.phase(Protocol::kKBatchSync, 12, 4),
                                     fx.workers(n), fx.no_stragglers, nullptr);
  EXPECT_EQ(r.steps_done, 12);
  EXPECT_EQ(r.mean_staleness, 0.0);
  for (const auto& u : rec.updates) EXPECT_EQ(u.protocol, Protocol::kKBatchSync);
}

TEST(KAsync, AppliesOneUpdatePerKContributions) {
  const std::size_t n = 4;
  Fixture fx(n);
  UpdateRecorder rec;
  SimRuntime rt(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model, fx.split.train,
                fx.eval_set, rec);
  const PhaseResult r = rt.run_phase(fx.state, fx.phase(Protocol::kKAsync, 24, 2), fx.workers(n),
                                     fx.no_stragglers, nullptr);
  EXPECT_EQ(r.steps_done, 24);
  // Every update consumed >= K contributions, so there are at most steps/K.
  EXPECT_LE(static_cast<std::int64_t>(rec.updates.size()), 12);
  EXPECT_GT(rec.updates.size(), 0u);
  // PS version advanced once per aggregated update, not per contribution.
  EXPECT_EQ(fx.state.ps.version(), static_cast<std::int64_t>(rec.updates.size()));
}

TEST(KAsync, StalenessIsLowerThanAsp) {
  // Aggregating K gradients per version means fewer versions race past an
  // in-flight worker: mean staleness (in versions) must be below ASP's.
  const std::size_t n = 6;
  Fixture asp(n);
  SimRuntime rt_asp(ClusterModel(Fixture::cluster_spec(n)), asp.model, asp.eval_model,
                    asp.split.train, asp.eval_set, asp.null_sink);
  const PhaseResult ra = rt_asp.run_phase(asp.state, asp.phase(Protocol::kAsp, 120),
                                          asp.workers(n), asp.no_stragglers, nullptr);

  Fixture ka(n);
  SimRuntime rt_ka(ClusterModel(Fixture::cluster_spec(n)), ka.model, ka.eval_model,
                   ka.split.train, ka.eval_set, ka.null_sink);
  const PhaseResult rk = rt_ka.run_phase(ka.state, ka.phase(Protocol::kKAsync, 120, 3),
                                         ka.workers(n), ka.no_stragglers, nullptr);

  EXPECT_GT(ra.mean_staleness, 0.0);
  EXPECT_LT(rk.mean_staleness, ra.mean_staleness);
}

TEST(KBatchAsync, TriggersOnAnyKGradients) {
  const std::size_t n = 4;
  Fixture fx(n);
  UpdateRecorder rec;
  SimRuntime rt(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model, fx.split.train,
                fx.eval_set, rec);
  const PhaseResult r = rt.run_phase(fx.state, fx.phase(Protocol::kKBatchAsync, 24, 3),
                                     fx.workers(n), fx.no_stragglers, nullptr);
  EXPECT_EQ(r.steps_done, 24);
  // Buffer triggers at exactly 3 in batch mode: 24 / 3 = 8 updates.
  EXPECT_EQ(rec.updates.size(), 8u);
  for (const auto& u : rec.updates) EXPECT_EQ(u.protocol, Protocol::kKBatchAsync);
}

TEST(KAsync, RespectsStopPredicate) {
  const std::size_t n = 4;
  Fixture fx(n);
  SimRuntime rt(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model, fx.split.train,
                fx.eval_set, fx.null_sink);
  const PhaseResult r =
      rt.run_phase(fx.state, fx.phase(Protocol::kKAsync, 1000, 2), fx.workers(n),
                   fx.no_stragglers, [](VTime, std::int64_t step) { return step >= 10; });
  EXPECT_EQ(r.end, PhaseEnd::kStopRequested);
  EXPECT_GE(fx.state.global_step, 10);
  EXPECT_LT(fx.state.global_step, 1000);
}

TEST(KProtocols, DefaultKIsClusterSize) {
  // k_param = 0: K-sync behaves like BSP (all workers per round).
  const std::size_t n = 3;
  Fixture fx(n);
  SimRuntime rt(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model, fx.split.train,
                fx.eval_set, fx.null_sink);
  const PhaseResult r = rt.run_phase(fx.state, fx.phase(Protocol::kKSync, 9, 0), fx.workers(n),
                                     fx.no_stragglers, nullptr);
  EXPECT_EQ(r.steps_done, 9);
  EXPECT_EQ(r.cancelled_tasks, 0);  // K = n: nobody cancelled
}

TEST(KProtocols, OversizedKClampsToClusterSize) {
  const std::size_t n = 3;
  Fixture fx(n);
  SimRuntime rt(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model, fx.split.train,
                fx.eval_set, fx.null_sink);
  const PhaseResult r = rt.run_phase(fx.state, fx.phase(Protocol::kKSync, 9, 64), fx.workers(n),
                                     fx.no_stragglers, nullptr);
  EXPECT_EQ(r.steps_done, 9);
  EXPECT_EQ(r.cancelled_tasks, 0);
}

class KSweep : public ::testing::TestWithParam<int> {};

TEST_P(KSweep, KAsyncConvergesForAllK) {
  const std::size_t n = 4;
  const int k = GetParam();
  Fixture fx(n);
  SimRuntime rt(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model, fx.split.train,
                fx.eval_set, fx.null_sink);
  PhaseConfig cfg = fx.phase(Protocol::kKAsync, 240, k);
  cfg.lr_multiplier = static_cast<double>(k);  // linear scaling with K
  const PhaseResult r = rt.run_phase(fx.state, cfg, fx.workers(n), fx.no_stragglers, nullptr);
  ASSERT_EQ(r.end, PhaseEnd::kBudgetExhausted);
  fx.eval_model.set_params(fx.state.ps.params());
  EXPECT_GT(fx.eval_model.evaluate_accuracy(fx.eval_set), 0.6) << "K=" << k;
}

TEST_P(KSweep, KSyncConvergesForAllK) {
  const std::size_t n = 4;
  const int k = GetParam();
  Fixture fx(n);
  SimRuntime rt(ClusterModel(Fixture::cluster_spec(n)), fx.model, fx.eval_model, fx.split.train,
                fx.eval_set, fx.null_sink);
  PhaseConfig cfg = fx.phase(Protocol::kKSync, 240, k);
  cfg.lr_multiplier = static_cast<double>(k);
  const PhaseResult r = rt.run_phase(fx.state, cfg, fx.workers(n), fx.no_stragglers, nullptr);
  ASSERT_EQ(r.end, PhaseEnd::kBudgetExhausted);
  fx.eval_model.set_params(fx.state.ps.params());
  EXPECT_GT(fx.eval_model.evaluate_accuracy(fx.eval_set), 0.6) << "K=" << k;
}

INSTANTIATE_TEST_SUITE_P(K, KSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace ss
