#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ss {
namespace {

TEST(SgdMomentum, MatchesHandComputedTrajectory) {
  // TF MomentumOptimizer: accum = mu*accum + g; p -= lr*accum.
  SgdMomentum opt(1, 0.9);
  std::vector<float> p = {1.0f};
  const std::vector<float> g = {0.5f};
  opt.apply(p, g, 0.1);
  // accum = 0.5, p = 1 - 0.05 = 0.95
  EXPECT_NEAR(p[0], 0.95f, 1e-6);
  opt.apply(p, g, 0.1);
  // accum = 0.9*0.5 + 0.5 = 0.95, p = 0.95 - 0.095 = 0.855
  EXPECT_NEAR(p[0], 0.855f, 1e-6);
}

TEST(SgdMomentum, ZeroMomentumIsPlainSgd) {
  SgdMomentum opt(2, 0.0);
  std::vector<float> p = {1.0f, -1.0f};
  const std::vector<float> g = {1.0f, 2.0f};
  opt.apply(p, g, 0.5);
  EXPECT_NEAR(p[0], 0.5f, 1e-6);
  EXPECT_NEAR(p[1], -2.0f, 1e-6);
}

TEST(SgdMomentum, VelocityResetAndSetMomentum) {
  SgdMomentum opt(1, 0.9);
  std::vector<float> p = {0.0f};
  opt.apply(p, std::vector<float>{1.0f}, 0.1);
  EXPECT_NE(opt.velocity()[0], 0.0f);
  opt.reset_velocity();
  EXPECT_EQ(opt.velocity()[0], 0.0f);
  opt.set_momentum(0.5);
  EXPECT_DOUBLE_EQ(opt.momentum(), 0.5);
}

TEST(SgdMomentum, RejectsBadArguments) {
  EXPECT_THROW(SgdMomentum(1, 1.0), ConfigError);
  EXPECT_THROW(SgdMomentum(1, -0.1), ConfigError);
  SgdMomentum opt(2, 0.9);
  std::vector<float> p = {0.0f};
  EXPECT_THROW(opt.apply(p, std::vector<float>{1.0f, 2.0f}, 0.1), ConfigError);
}

}  // namespace
}  // namespace ss
