// CompressionSpec: the declarative codec configuration carried by RunRequest.
#include <gtest/gtest.h>

#include "common/error.h"
#include "compress/spec.h"
#include "core/session.h"

namespace ss {
namespace {

TEST(CompressionSpec, NoneIsDisabled) {
  const CompressionSpec s = CompressionSpec::none();
  EXPECT_FALSE(s.enabled());
  EXPECT_EQ(s.label(), "none");
  EXPECT_FALSE(s.make_bank(4).has_value());
}

TEST(CompressionSpec, FactoriesSetKindAndLabel) {
  EXPECT_EQ(CompressionSpec::topk(0.01).label(), "topk(1%)");
  EXPECT_EQ(CompressionSpec::topk(0.001).label(), "topk(0.1%)");
  EXPECT_EQ(CompressionSpec::qsgd(15).label(), "qsgd(s=15)");
  EXPECT_EQ(CompressionSpec::terngrad().label(), "terngrad");
  EXPECT_TRUE(CompressionSpec::topk(0.01).enabled());
}

TEST(CompressionSpec, MakeBankPicksFeedbackByBias) {
  const auto topk = CompressionSpec::topk(0.1).make_bank(4);
  ASSERT_TRUE(topk.has_value());
  EXPECT_TRUE(topk->error_feedback());  // biased codec
  EXPECT_EQ(topk->num_workers(), 4u);

  const auto qsgd = CompressionSpec::qsgd(15).make_bank(4);
  ASSERT_TRUE(qsgd.has_value());
  EXPECT_FALSE(qsgd->error_feedback());  // unbiased codec
}

TEST(CompressionSpec, InvalidParamsSurfaceAtBankCreation) {
  EXPECT_THROW(CompressionSpec::topk(0.0).make_bank(2), ConfigError);
  EXPECT_THROW(CompressionSpec::qsgd(0).make_bank(2), ConfigError);
}

TEST(CompressionSpec, CacheKeyCoversTheCodec) {
  RunRequest a;
  RunRequest b = a;
  b.compression = CompressionSpec::qsgd(15);
  RunRequest c = a;
  c.compression = CompressionSpec::qsgd(255);
  EXPECT_NE(a.cache_key(), b.cache_key());
  EXPECT_NE(b.cache_key(), c.cache_key());
  EXPECT_NE(b.cache_key().find("qsgd(s=15)"), std::string::npos);
}

TEST(CompressionSpec, SessionRunsWithEveryCodecKind) {
  for (const CompressionSpec& spec :
       {CompressionSpec::none(), CompressionSpec::topk(0.1), CompressionSpec::terngrad(),
        CompressionSpec::qsgd(15)}) {
    RunRequest req;
    req.workload.arch = ModelArch::kLinear;
    req.workload.data = SyntheticSpec::cifar10_like();
    req.workload.data.train_size = 512;
    req.workload.data.test_size = 256;
    req.workload.data.num_classes = 4;
    req.workload.data.feature_dim = 16;
    req.workload.total_steps = 128;
    req.workload.hyper.batch_size = 16;
    req.workload.eval_interval = 64;
    req.cluster.num_workers = 4;
    req.policy = SyncSwitchPolicy::bsp_to_asp(0.25);
    req.compression = spec;
    req.actuator_time_scale = 0.01;
    const RunResult r = TrainingSession(req).run();
    EXPECT_FALSE(r.diverged) << spec.label();
    EXPECT_EQ(r.steps_completed, 128) << spec.label();
  }
}

}  // namespace
}  // namespace ss
