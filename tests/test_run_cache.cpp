#include "core/run_cache.h"

#include <gtest/gtest.h>

#include <filesystem>

namespace ss {
namespace {

RunResult sample_result() {
  RunResult r;
  r.diverged = false;
  r.converged = true;
  r.converged_accuracy = 0.921;
  r.final_accuracy = 0.919;
  r.best_accuracy = 0.925;
  r.train_time_seconds = 123.5;
  r.init_time_seconds = 9.0;
  r.switch_overhead_seconds = 0.7;
  r.num_switches = 1;
  r.mean_staleness = 6.8;
  r.throughput_images_per_sec = 4096.0;
  r.final_train_loss = 0.43;
  r.steps_completed = 2048;
  r.loss_curve = {{16, 1.5, 2.1}, {32, 3.0, 1.4}};
  r.accuracy_curve = {{64, 6.0, 0.55}, {128, 12.0, 0.73}};
  return r;
}

RunRequest small_request(std::uint64_t seed) {
  RunRequest req;
  req.workload.arch = ModelArch::kLinear;
  req.workload.data.num_classes = 3;
  req.workload.data.feature_dim = 8;
  req.workload.data.train_size = 256;
  req.workload.data.test_size = 128;
  req.workload.total_steps = 64;
  req.workload.hyper.batch_size = 16;
  req.workload.eval_interval = 16;
  req.cluster.num_workers = 2;
  req.seed = seed;
  return req;
}

TEST(RunResultSerialization, RoundTripPreservesEverything) {
  const RunResult r = sample_result();
  const auto parsed = parse_run_result(serialize_run_result(r));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->converged_accuracy, r.converged_accuracy);
  EXPECT_EQ(parsed->num_switches, r.num_switches);
  EXPECT_EQ(parsed->steps_completed, r.steps_completed);
  ASSERT_EQ(parsed->loss_curve.size(), 2u);
  EXPECT_EQ(parsed->loss_curve[1].loss, 1.4);
  ASSERT_EQ(parsed->accuracy_curve.size(), 2u);
  EXPECT_EQ(parsed->accuracy_curve[0].accuracy, 0.55);
}

TEST(RunResultSerialization, RejectsGarbage) {
  EXPECT_FALSE(parse_run_result("not a run result").has_value());
  EXPECT_FALSE(parse_run_result("").has_value());
  // Truncated payload.
  const std::string good = serialize_run_result(sample_result());
  EXPECT_FALSE(parse_run_result(good.substr(0, good.size() / 2)).has_value());
}

TEST(RunCache, StoreThenLoad) {
  const std::string dir = ::testing::TempDir() + "/ss_cache_a";
  std::filesystem::remove_all(dir);
  const RunCache cache(dir);
  const RunRequest req = small_request(1);
  EXPECT_FALSE(cache.load(req).has_value());
  cache.store(req, sample_result());
  const auto loaded = cache.load(req);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->converged_accuracy, 0.921);
}

TEST(RunCache, DifferentRequestsDifferentSlots) {
  const std::string dir = ::testing::TempDir() + "/ss_cache_b";
  std::filesystem::remove_all(dir);
  const RunCache cache(dir);
  cache.store(small_request(1), sample_result());
  EXPECT_FALSE(cache.load(small_request(2)).has_value());
  EXPECT_NE(RunCache::hash_key(small_request(1)), RunCache::hash_key(small_request(2)));
}

TEST(RunCache, RunCachedExecutesOnceThenReuses) {
  const std::string dir = ::testing::TempDir() + "/ss_cache_c";
  std::filesystem::remove_all(dir);
  const RunCache cache(dir);
  const RunRequest req = small_request(3);
  const RunResult first = cache.run_cached(req);
  const RunResult second = cache.run_cached(req);
  EXPECT_DOUBLE_EQ(first.converged_accuracy, second.converged_accuracy);
  EXPECT_DOUBLE_EQ(first.train_time_seconds, second.train_time_seconds);
  EXPECT_TRUE(cache.load(req).has_value());
}

}  // namespace
}  // namespace ss
