#include "sim/straggler.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"

namespace ss {
namespace {

TEST(StragglerSchedule, SlowFactorRespectsWindows) {
  StragglerSchedule sched({{2, VTime::from_seconds(10.0), VTime::from_seconds(5.0), 3.0}});
  EXPECT_DOUBLE_EQ(sched.slow_factor(2, VTime::from_seconds(9.9)), 1.0);
  EXPECT_DOUBLE_EQ(sched.slow_factor(2, VTime::from_seconds(10.0)), 3.0);
  EXPECT_DOUBLE_EQ(sched.slow_factor(2, VTime::from_seconds(14.9)), 3.0);
  EXPECT_DOUBLE_EQ(sched.slow_factor(2, VTime::from_seconds(15.0)), 1.0);
  EXPECT_DOUBLE_EQ(sched.slow_factor(1, VTime::from_seconds(12.0)), 1.0);
}

TEST(StragglerSchedule, OverlappingEpisodesTakeMaxFactor) {
  StragglerSchedule sched({
      {0, VTime::from_seconds(0.0), VTime::from_seconds(10.0), 2.0},
      {0, VTime::from_seconds(5.0), VTime::from_seconds(10.0), 4.0},
  });
  EXPECT_DOUBLE_EQ(sched.slow_factor(0, VTime::from_seconds(6.0)), 4.0);
  EXPECT_DOUBLE_EQ(sched.slow_factor(0, VTime::from_seconds(12.0)), 4.0);
  EXPECT_DOUBLE_EQ(sched.slow_factor(0, VTime::from_seconds(2.0)), 2.0);
}

TEST(StragglerSchedule, AnyActiveAndNextClear) {
  StragglerSchedule sched({{1, VTime::from_seconds(10.0), VTime::from_seconds(20.0), 2.0}});
  EXPECT_FALSE(sched.any_active(VTime::from_seconds(5.0)));
  EXPECT_TRUE(sched.any_active(VTime::from_seconds(15.0)));
  EXPECT_EQ(sched.next_clear_time(VTime::from_seconds(15.0)), VTime::from_seconds(30.0));
  EXPECT_LT(sched.next_clear_time(VTime::from_seconds(50.0)).seconds(), 0.0);
}

TEST(StragglerSchedule, RejectsSpeedupFactors) {
  EXPECT_THROW(
      StragglerSchedule({{0, VTime::zero(), VTime::from_seconds(1.0), 0.5}}),
      ConfigError);
}

TEST(StragglerScenario, PresetsMatchPaper) {
  const auto mild = StragglerScenario::mild();
  EXPECT_EQ(mild.num_stragglers, 1);
  EXPECT_EQ(mild.occurrences, 1);
  EXPECT_DOUBLE_EQ(mild.extra_latency_ms, 10.0);
  const auto mod = StragglerScenario::moderate();
  EXPECT_EQ(mod.num_stragglers, 2);
  EXPECT_EQ(mod.occurrences, 4);
  EXPECT_DOUBLE_EQ(mod.extra_latency_ms, 30.0);
}

TEST(StragglerScenario, LatencyToSlowFactorIsMonotone) {
  const double f0 = StragglerSchedule::latency_to_slow_factor(0.0);
  const double f10 = StragglerSchedule::latency_to_slow_factor(10.0);
  const double f30 = StragglerSchedule::latency_to_slow_factor(30.0);
  EXPECT_DOUBLE_EQ(f0, 1.0);
  EXPECT_GT(f10, f0);
  EXPECT_GT(f30, f10);
}

TEST(StragglerSchedule, GenerateProducesValidEvents) {
  Rng rng(7);
  const auto scenario = StragglerScenario::moderate();
  const auto sched = StragglerSchedule::generate(scenario, 8, rng);
  EXPECT_EQ(sched.events().size(), 8u);  // 2 stragglers x 4 occurrences
  std::set<int> workers;
  for (const auto& e : sched.events()) {
    workers.insert(e.worker);
    EXPECT_GE(e.worker, 0);
    EXPECT_LT(e.worker, 8);
    EXPECT_GE(e.start.seconds(), 0.0);
    EXPECT_LE(e.start, scenario.horizon);
    EXPECT_LE(e.duration, scenario.max_duration);
    EXPECT_GE(e.duration, scenario.max_duration.scaled(0.6));
    EXPECT_GT(e.slow_factor, 1.0);
  }
  EXPECT_EQ(workers.size(), 2u);  // distinct straggler nodes
}

TEST(StragglerSchedule, GenerateRejectsTooManyStragglers) {
  Rng rng(8);
  StragglerScenario sc;
  sc.num_stragglers = 8;  // must be < cluster size
  sc.occurrences = 1;
  EXPECT_THROW(StragglerSchedule::generate(sc, 8, rng), ConfigError);
}

}  // namespace
}  // namespace ss
