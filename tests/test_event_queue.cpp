#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ss {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.schedule(VTime::from_ms(30.0), SimEventKind::kPushArrive, 0);
  q.schedule(VTime::from_ms(10.0), SimEventKind::kPullDone, 1);
  q.schedule(VTime::from_ms(20.0), SimEventKind::kRoundDone, 2);
  EXPECT_EQ(q.pop().kind, SimEventKind::kPullDone);
  EXPECT_EQ(q.pop().kind, SimEventKind::kRoundDone);
  EXPECT_EQ(q.pop().kind, SimEventKind::kPushArrive);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByWorkerId) {
  // Same-time events fire in worker order regardless of schedule order.
  EventQueue q;
  const VTime t = VTime::from_ms(5.0);
  for (int i = 9; i >= 0; --i) q.schedule(t, SimEventKind::kPullDone, i);
  for (int i = 0; i < 10; ++i) {
    const SimEvent ev = q.pop();
    EXPECT_EQ(ev.worker, i) << "same-time events must fire in worker order";
  }
}

TEST(EventQueue, TiesBreakBySequenceWithinWorker) {
  // Same time, same worker: schedule order decides.
  EventQueue q;
  const VTime t = VTime::from_ms(5.0);
  const std::uint64_t first = q.schedule(t, SimEventKind::kPushArrive, 3);
  const std::uint64_t second = q.schedule(t, SimEventKind::kPullDone, 3);
  EXPECT_LT(first, second);
  EXPECT_EQ(q.pop().seq, first);
  EXPECT_EQ(q.pop().seq, second);
}

TEST(EventQueue, WorkerOrderBeatsScheduleOrder) {
  // The full tie-break is (time, worker, seq): a later-scheduled event for a
  // lower worker id overtakes an earlier-scheduled one at the same time.
  EventQueue q;
  const VTime t = VTime::from_ms(2.0);
  q.schedule(t, SimEventKind::kPushArrive, 5);
  q.schedule(t, SimEventKind::kPushArrive, 1);
  EXPECT_EQ(q.pop().worker, 1);
  EXPECT_EQ(q.pop().worker, 5);
}

TEST(EventQueue, PeekDoesNotPop) {
  EventQueue q;
  q.schedule(VTime::from_ms(7.0), SimEventKind::kPullDone, 0);
  EXPECT_EQ(q.peek_time(), VTime::from_ms(7.0));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, EmptyAccessThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW((void)q.peek_time(), std::logic_error);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(VTime::from_ms(i), SimEventKind::kPullDone, i);
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CarriesWorkerPayload) {
  EventQueue q;
  q.schedule(VTime::from_ms(1.0), SimEventKind::kBroadcastArrive, 7);
  const SimEvent ev = q.pop();
  EXPECT_EQ(ev.kind, SimEventKind::kBroadcastArrive);
  EXPECT_EQ(ev.worker, 7);
}

}  // namespace
}  // namespace ss
