#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ss {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.schedule(VTime::from_ms(30.0), 1, 0);
  q.schedule(VTime::from_ms(10.0), 2, 1);
  q.schedule(VTime::from_ms(20.0), 3, 2);
  EXPECT_EQ(q.pop().kind, 2);
  EXPECT_EQ(q.pop().kind, 3);
  EXPECT_EQ(q.pop().kind, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakBySequence) {
  EventQueue q;
  const VTime t = VTime::from_ms(5.0);
  for (int i = 0; i < 10; ++i) q.schedule(t, i, i);
  for (int i = 0; i < 10; ++i) {
    const SimEvent ev = q.pop();
    EXPECT_EQ(ev.kind, i) << "same-time events must fire in schedule order";
  }
}

TEST(EventQueue, PeekDoesNotPop) {
  EventQueue q;
  q.schedule(VTime::from_ms(7.0), 0, 0);
  EXPECT_EQ(q.peek_time(), VTime::from_ms(7.0));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, EmptyAccessThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), std::logic_error);
  EXPECT_THROW((void)q.peek_time(), std::logic_error);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule(VTime::from_ms(i), i, i);
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CarriesWorkerPayload) {
  EventQueue q;
  q.schedule(VTime::from_ms(1.0), 42, 7);
  const SimEvent ev = q.pop();
  EXPECT_EQ(ev.kind, 42);
  EXPECT_EQ(ev.worker, 7);
}

}  // namespace
}  // namespace ss
