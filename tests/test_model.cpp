#include "nn/model.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "data/batcher.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/zoo.h"

namespace ss {
namespace {

Model small_model(std::uint64_t seed) {
  Rng rng(seed);
  Model m;
  m.add(std::make_unique<Dense>(8, 6, rng))
      .add(std::make_unique<ReLU>())
      .add(std::make_unique<Dense>(6, 3, rng));
  return m;
}

TEST(Model, ParamRoundTrip) {
  Model m = small_model(31);
  const std::vector<float> params = m.get_params();
  EXPECT_EQ(params.size(), m.num_params());
  EXPECT_EQ(params.size(), 8u * 6 + 6 + 6 * 3 + 3);
  std::vector<float> shifted = params;
  for (auto& v : shifted) v += 1.0f;
  m.set_params(shifted);
  EXPECT_EQ(m.get_params(), shifted);
}

TEST(Model, SetParamsSizeMismatchThrows) {
  Model m = small_model(32);
  std::vector<float> wrong(m.num_params() + 1);
  EXPECT_THROW(m.set_params(wrong), ShapeError);
}

TEST(Model, GradientAtIsDeterministic) {
  Model m = small_model(33);
  const std::vector<float> params = m.get_params();
  Rng rng(34);
  Tensor x({4, 8});
  for (std::size_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.gaussian());
  const std::vector<int> y = {0, 1, 2, 0};
  std::vector<float> g1(params.size()), g2(params.size());
  const double l1 = m.gradient_at(params, x, y, g1);
  const double l2 = m.gradient_at(params, x, y, g2);
  EXPECT_DOUBLE_EQ(l1, l2);
  EXPECT_EQ(g1, g2);
}

TEST(Model, CloneSharesNothing) {
  Model m = small_model(35);
  Model copy = m.clone();
  EXPECT_EQ(copy.num_params(), m.num_params());
  const auto before = copy.get_params();
  std::vector<float> zeros(m.num_params(), 0.0f);
  m.set_params(zeros);
  EXPECT_EQ(copy.get_params(), before);
}

TEST(Model, EmptyModelForwardThrows) {
  Model m;
  Tensor x({1, 4});
  EXPECT_THROW(m.forward(x), ConfigError);
}

TEST(Model, EvaluateAccuracyOnCraftedProblem) {
  // Identity-like linear model on one-hot inputs must classify perfectly.
  Rng rng(36);
  Model m;
  m.add(std::make_unique<Dense>(3, 3, rng));
  std::vector<float> params(m.num_params(), 0.0f);
  // W = I (3x3 row-major), b = 0.
  params[0] = params[4] = params[8] = 1.0f;
  m.set_params(params);

  Tensor features({3, 3}, std::vector<float>{1, 0, 0, 0, 1, 0, 0, 0, 1});
  Dataset data(std::move(features), {0, 1, 2}, 3);
  EXPECT_DOUBLE_EQ(m.evaluate_accuracy(data), 1.0);
  EXPECT_LT(m.evaluate_loss(data), std::log(3.0));
}

TEST(Model, SummaryMentionsLayers) {
  Model m = small_model(37);
  const std::string s = m.summary();
  EXPECT_NE(s.find("Dense(8 -> 6)"), std::string::npos);
  EXPECT_NE(s.find("ReLU"), std::string::npos);
  EXPECT_NE(s.find("parameters"), std::string::npos);
}

TEST(Zoo, ArchitecturesBuildAndTrainable) {
  Rng rng(38);
  for (ModelArch arch : {ModelArch::kResNet32Lite, ModelArch::kResNet50Lite, ModelArch::kLinear}) {
    Model m = make_model(arch, 64, 10, rng);
    EXPECT_GT(m.num_params(), 0u) << arch_name(arch);
    EXPECT_GT(model_flops_proxy(arch, 64, 10), 0u);
  }
  // The 50-class stand-in must be heavier than the 32-class one.
  EXPECT_GT(model_flops_proxy(ModelArch::kResNet50Lite, 96, 100),
            model_flops_proxy(ModelArch::kResNet32Lite, 64, 10));
}

TEST(Zoo, ConvNetRequiresImageShapedInput) {
  Rng rng(39);
  EXPECT_THROW(make_model(ModelArch::kConvNetTiny, 64, 10, rng), ConfigError);
  Model m = make_model(ModelArch::kConvNetTiny, 3 * 16 * 16, 10, rng);
  Tensor x({2, 3 * 16 * 16}, 0.1f);
  const Tensor& y = m.forward(x);
  EXPECT_EQ(y.dim(1), 10u);
}

TEST(Model, LearnsEasySyntheticTask) {
  // A few hundred SGD steps on an easy task should beat chance soundly —
  // the whole substrate (data -> model -> loss -> grads) working together.
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_size = 1024;
  spec.test_size = 512;
  spec.num_classes = 4;
  spec.class_separation = 1.5;
  const DataSplit split = make_synthetic(spec);

  Rng rng(40);
  Model m = make_model(ModelArch::kResNet32Lite, spec.feature_dim, 4, rng);
  std::vector<float> params = m.get_params();
  std::vector<float> grad(params.size());
  Tensor batch({32, spec.feature_dim});
  std::vector<int> labels;
  std::vector<std::uint32_t> idx;
  MinibatchSampler sampler(ShardSpec{0, 1024}, 32, Rng(41));
  for (int step = 0; step < 300; ++step) {
    sampler.next_batch(idx);
    split.train.gather(idx, batch, labels);
    m.gradient_at(params, batch, labels, grad);
    for (std::size_t i = 0; i < params.size(); ++i) params[i] -= 0.1f * grad[i];
  }
  m.set_params(params);
  EXPECT_GT(m.evaluate_accuracy(split.test), 0.85);
}

}  // namespace
}  // namespace ss
