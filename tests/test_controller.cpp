#include "control/controller.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <vector>

#include "common/error.h"
#include "data/synthetic.h"
#include "nn/zoo.h"
#include "ps/threaded_runtime.h"
#include "sim/calibration.h"

namespace ss {
namespace {

// ---------------------------------------------------------------------------
// Calibration seam (sim/calibration.h)
// ---------------------------------------------------------------------------

MeasuredPhaseCosts stats_with(double factor, int worker) {
  MeasuredPhaseCosts m;
  m.num_workers = 4;
  m.batch_size = 16;
  m.step_seconds = 0.004;
  m.push_bytes = 1000.0;
  m.straggler_factor = factor;
  m.straggler_worker = worker;
  return m;
}

TEST(Calibration, QuantizeBucketsTimesAndBytes) {
  MeasuredPhaseCosts m = stats_with(1.0, -1);
  m.step_seconds = 0.0041237;
  m.push_bytes = 1037.9;
  const MeasuredPhaseCosts q = quantize(m);
  EXPECT_DOUBLE_EQ(q.step_seconds, 0.0041);  // 2 significant digits
  EXPECT_DOUBLE_EQ(q.push_bytes, 1000.0);
  // Two nearby measurements collapse onto the same bucket: that identity is
  // what makes twin cache keys repeat across decision epochs.
  m.step_seconds = 0.0040951;
  m.push_bytes = 1020.2;
  const MeasuredPhaseCosts q2 = quantize(m);
  EXPECT_DOUBLE_EQ(q2.step_seconds, q.step_seconds);
  EXPECT_DOUBLE_EQ(q2.push_bytes, q.push_bytes);
}

TEST(Calibration, QuantizeStragglerFactorBuckets) {
  // Below the noise floor: uniform cluster, worker index dropped.
  MeasuredPhaseCosts q = quantize(stats_with(1.2, 2));
  EXPECT_DOUBLE_EQ(q.straggler_factor, 1.0);
  EXPECT_EQ(q.straggler_worker, -1);
  // 0.5 buckets below 4x.
  EXPECT_DOUBLE_EQ(quantize(stats_with(2.3, 2)).straggler_factor, 2.5);
  EXPECT_EQ(quantize(stats_with(2.3, 2)).straggler_worker, 2);
  // Coarser 2.0 buckets above 4x: slow stragglers measure noisily but the
  // right decision stops depending on the exact factor.
  EXPECT_DOUBLE_EQ(quantize(stats_with(7.3, 1)).straggler_factor, 8.0);
  // Capped: a x24 and a x53 measurement land in the same bucket.
  EXPECT_DOUBLE_EQ(quantize(stats_with(24.0, 1)).straggler_factor, kStragglerFactorCap);
  EXPECT_DOUBLE_EQ(quantize(stats_with(53.0, 1)).straggler_factor, kStragglerFactorCap);
}

TEST(Calibration, CalibrateOverwritesCostsPreservingBaseRatios) {
  ClusterSpec base = ControllerConfig::default_twin_base_cluster();
  const double base_ratio = base.sync_base.seconds() / base.compute_per_batch.seconds();
  const MeasuredPhaseCosts q = quantize(stats_with(1.0, -1));
  const ClusterSpec spec = calibrate_cluster_spec(base, q);
  EXPECT_EQ(spec.num_workers, q.num_workers);
  EXPECT_EQ(spec.reference_batch, q.batch_size);
  EXPECT_DOUBLE_EQ(spec.compute_per_batch.seconds(), q.step_seconds);
  EXPECT_DOUBLE_EQ(spec.payload_bytes, q.push_bytes);
  EXPECT_NEAR(spec.sync_base.seconds() / spec.compute_per_batch.seconds(), base_ratio, 1e-9);
}

// ---------------------------------------------------------------------------
// Decision engine (control/controller.h), no threads involved
// ---------------------------------------------------------------------------

ControllerConfig engine_config() {
  ControllerConfig cfg;
  cfg.enabled = true;
  cfg.decision_interval = 32;
  cfg.min_steps_between_moves = 64;
  cfg.min_predicted_gain = 0.10;
  return cfg;
}

TEST(Controller, DecisionIsDeterministicAcrossInstances) {
  const MeasuredPhaseCosts m = stats_with(8.0, 2);
  OnlineController a(engine_config(), CompressionSpec{});
  OnlineController b(engine_config(), CompressionSpec{});
  const ControllerDecision da = a.decide(32, Protocol::kBsp, 3, false, m, 1000, 1000);
  const ControllerDecision db = b.decide(32, Protocol::kBsp, 3, false, m, 1000, 1000);
  EXPECT_EQ(da.chosen.label(), db.chosen.label());
  EXPECT_EQ(da.enacted, db.enacted);
  EXPECT_EQ(da.reason, db.reason);
  EXPECT_DOUBLE_EQ(da.predicted_gain, db.predicted_gain);
  ASSERT_EQ(da.candidates.size(), db.candidates.size());
  for (std::size_t i = 0; i < da.candidates.size(); ++i)
    EXPECT_DOUBLE_EQ(da.candidates[i].predicted_seconds, db.candidates[i].predicted_seconds)
        << da.candidates[i].candidate.label();
}

TEST(Controller, SwitchesAwayFromBspUnderStraggler) {
  OnlineController ctrl(engine_config(), CompressionSpec{});
  const ControllerDecision d =
      ctrl.decide(32, Protocol::kBsp, 3, false, stats_with(8.0, 2), 1000, 1000);
  EXPECT_TRUE(d.enacted) << d.reason;
  EXPECT_NE(d.chosen.protocol, Protocol::kBsp);
  EXPECT_GE(d.predicted_gain, 0.10);
}

TEST(Controller, HoldsOnHealthyCluster) {
  OnlineController ctrl(engine_config(), CompressionSpec{});
  const ControllerDecision d =
      ctrl.decide(32, Protocol::kBsp, 3, false, stats_with(1.0, -1), 1000, 1000);
  EXPECT_FALSE(d.enacted) << d.reason;
  EXPECT_GE(d.candidates.size(), 3u);  // BSP, ASP, SSP at least
}

TEST(Controller, TwinQueriesHitWarmCacheOnSecondEpoch) {
  OnlineController ctrl(engine_config(), CompressionSpec{});
  const MeasuredPhaseCosts m = stats_with(1.0, -1);
  const ControllerDecision first = ctrl.decide(32, Protocol::kBsp, 3, false, m, 1000, 1000);
  EXPECT_EQ(first.cache_hits, 0u);
  // Second epoch, same quantized stats: every twin query repeats and is
  // served from warm state — and the decision itself is unchanged.
  const ControllerDecision second = ctrl.decide(64, Protocol::kBsp, 3, false, m, 1000, 1000);
  EXPECT_EQ(second.cache_hits, second.candidates.size());
  EXPECT_GT(second.cache_hits, 0u);
  EXPECT_EQ(second.chosen.label(), first.chosen.label());
  EXPECT_DOUBLE_EQ(second.predicted_gain, first.predicted_gain);
}

TEST(Controller, DiskCacheWarmsAFreshController) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ss_controller_twin_cache_test";
  std::filesystem::remove_all(dir);
  ControllerConfig cfg = engine_config();
  cfg.cache_dir = dir.string();
  const MeasuredPhaseCosts m = stats_with(8.0, 2);

  OnlineController first(cfg, CompressionSpec{});
  const ControllerDecision cold = first.decide(32, Protocol::kBsp, 3, false, m, 1000, 1000);
  EXPECT_EQ(cold.cache_hits, 0u);

  // A brand-new controller (fresh memo) replays the same epoch entirely from
  // the on-disk twin cache.
  OnlineController second(cfg, CompressionSpec{});
  const ControllerDecision warm = second.decide(32, Protocol::kBsp, 3, false, m, 1000, 1000);
  EXPECT_EQ(warm.cache_hits, warm.candidates.size());
  EXPECT_EQ(warm.chosen.label(), cold.chosen.label());
  EXPECT_EQ(warm.reason, cold.reason);
  std::filesystem::remove_all(dir);
}

TEST(Controller, HysteresisBlocksImmediateMoveBack) {
  OnlineController ctrl(engine_config(), CompressionSpec{});
  // A straggler appears: the controller moves off BSP.
  const ControllerDecision move =
      ctrl.decide(64, Protocol::kBsp, 3, false, stats_with(8.0, 2), 1000, 1000);
  ASSERT_TRUE(move.enacted) << move.reason;
  const Protocol now_on = move.chosen.protocol;
  // Next interval the straggler is gone; the twin prefers BSP again, but the
  // move is inside the hysteresis window — hold, don't thrash.
  const ControllerDecision back =
      ctrl.decide(96, now_on, 3, false, stats_with(1.0, -1), /*steps_since_move=*/32, 1000);
  EXPECT_FALSE(back.enacted);
  EXPECT_EQ(back.reason, "hold:hysteresis");
}

TEST(Controller, OscillatingStragglerCannotThrash) {
  ControllerConfig cfg = engine_config();
  cfg.min_steps_between_moves = 100;
  OnlineController ctrl(cfg, CompressionSpec{});
  // A straggler that flips on and off every 10-step interval: whatever the
  // twin wants, at most one move fits in each 100-step hysteresis window.
  Protocol proto = Protocol::kBsp;
  std::int64_t last_move = 0;
  int moves = 0;
  for (int i = 1; i <= 10; ++i) {
    const std::int64_t at = 100 + 10 * i;
    const MeasuredPhaseCosts m = i % 2 == 1 ? stats_with(8.0, 2) : stats_with(1.0, -1);
    const ControllerDecision d = ctrl.decide(at, proto, 3, false, m, at - last_move, 1000);
    if (d.enacted) {
      ++moves;
      last_move = at;
      proto = d.chosen.protocol;
    }
  }
  EXPECT_LE(moves, 1);
}

TEST(Controller, ShortTailDeclinesMoves) {
  OnlineController ctrl(engine_config(), CompressionSpec{});
  const ControllerDecision d = ctrl.decide(960, Protocol::kBsp, 3, false, stats_with(8.0, 2),
                                           1000, /*remaining_steps=*/16);
  EXPECT_FALSE(d.enacted);
  EXPECT_EQ(d.reason, "hold:tail");
}

TEST(Controller, EvictionCandidateGatedByConfigAndFloor) {
  ControllerConfig cfg = engine_config();
  cfg.consider_eviction = true;
  cfg.min_workers = 2;
  OnlineController ctrl(cfg, CompressionSpec{});
  const ControllerDecision with_straggler =
      ctrl.decide(32, Protocol::kBsp, 3, false, stats_with(8.0, 2), 1000, 1000);
  bool offered = false;
  for (const CandidateOutcome& c : with_straggler.candidates)
    offered |= c.candidate.evict_straggler;
  EXPECT_TRUE(offered);
  // Healthy cluster: no straggler slot, nothing to evict.
  const ControllerDecision healthy =
      ctrl.decide(64, Protocol::kBsp, 3, false, stats_with(1.0, -1), 1000, 1000);
  for (const CandidateOutcome& c : healthy.candidates)
    EXPECT_FALSE(c.candidate.evict_straggler);
  // At the floor: a 2-worker cluster cannot shrink.
  MeasuredPhaseCosts tiny = stats_with(8.0, 1);
  tiny.num_workers = 2;
  const ControllerDecision floor =
      ctrl.decide(96, Protocol::kBsp, 3, false, tiny, 1000, 1000);
  for (const CandidateOutcome& c : floor.candidates)
    EXPECT_FALSE(c.candidate.evict_straggler);
}

// ---------------------------------------------------------------------------
// Threaded-runtime integration
// ---------------------------------------------------------------------------

DataSplit easy_data() {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_size = 512;
  spec.test_size = 256;
  spec.num_classes = 4;
  spec.feature_dim = 16;
  spec.class_separation = 1.5;
  return make_synthetic(spec);
}

Model proto_model(const DataSplit& split) {
  Rng rng(11);
  return make_model(ModelArch::kLinear, split.train.feature_dim(), 4, rng);
}

TEST(ThreadedController, OffByDefaultRecordsNothingAndStaysDeterministic) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kBsp;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 20;
  const auto a = threaded_train(proto, split.train, cfg);
  const auto b = threaded_train(proto, split.train, cfg);
  EXPECT_TRUE(a.decisions.empty());
  EXPECT_TRUE(b.decisions.empty());
  // BSP aggregation is slot-ordered, so a controller-off run-pair must be
  // bit-identical — the controller field existing cannot perturb the math.
  ASSERT_EQ(a.final_params.size(), b.final_params.size());
  for (std::size_t i = 0; i < a.final_params.size(); ++i)
    ASSERT_EQ(a.final_params[i], b.final_params[i]) << "param " << i;
}

TEST(ThreadedController, RejectsComposingWithScheduleOrElastic) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.num_workers = 2;
  cfg.steps_per_worker = 10;
  cfg.controller.enabled = true;

  ThreadedTrainConfig with_schedule = cfg;
  with_schedule.schedule = SwitchSchedule({{Protocol::kBsp, SwitchTrigger::kStepCount, 5, -1},
                                           {Protocol::kAsp, SwitchTrigger::kStepCount, 0, -1}});
  EXPECT_THROW(threaded_train(proto, split.train, with_schedule), ConfigError);

  ThreadedTrainConfig with_elastic = cfg;
  with_elastic.elastic.plan = MembershipPlan::leave(/*worker=*/1, /*at_step=*/5);
  EXPECT_THROW(threaded_train(proto, split.train, with_elastic), ConfigError);

  ThreadedTrainConfig bad_interval = cfg;
  bad_interval.controller.decision_interval = 0;
  EXPECT_THROW(threaded_train(proto, split.train, bad_interval), ConfigError);
}

ThreadedTrainConfig controller_run_config() {
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kBsp;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 72;
  cfg.batch_size = 16;
  cfg.controller.enabled = true;
  cfg.controller.decision_interval = 12;
  cfg.controller.min_steps_between_moves = 12;
  cfg.controller.min_predicted_gain = 0.05;
  return cfg;
}

TEST(ThreadedController, DiscoversInjectedStragglerAndSwitchesOffBsp) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg = controller_run_config();
  // Permanent x12 wall-clock straggler on worker 2 from the first step.
  cfg.stragglers = StragglerSchedule::transient(2, VTime::from_seconds(0.0),
                                                VTime::from_seconds(1e9), 12.0);
  const auto result = threaded_train(proto, split.train, cfg);

  ASSERT_FALSE(result.decisions.empty());
  ASSERT_GE(result.phases.size(), 2u);
  bool moved_off_bsp = false;
  for (const ControllerDecision& d : result.decisions) {
    ASSERT_FALSE(d.candidates.empty()) << d.reason;
    if (d.enacted && d.chosen.protocol != Protocol::kBsp) moved_off_bsp = true;
  }
  EXPECT_TRUE(moved_off_bsp);
  EXPECT_NE(result.phases.back().protocol, Protocol::kBsp);
  // The measured straggler survives quantization as a real straggler.
  EXPECT_GE(result.decisions.front().measured.straggler_factor, kStragglerNoiseFloor);
  std::int64_t steps = 0;
  for (const ThreadedPhaseStats& s : result.phases) steps += s.steps;
  EXPECT_EQ(steps, cfg.steps_per_worker);  // the full budget still trains
  for (float p : result.final_params) ASSERT_TRUE(std::isfinite(p));
}

TEST(ThreadedController, EvictionMoveRetiresTheStragglerSlot) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg = controller_run_config();
  // Only BSP in the grid: eviction is the controller's one way out.
  cfg.controller.protocols = {Protocol::kBsp};
  cfg.controller.consider_eviction = true;
  cfg.controller.min_workers = 2;
  cfg.stragglers = StragglerSchedule::transient(1, VTime::from_seconds(0.0),
                                                VTime::from_seconds(1e9), 12.0);
  const auto result = threaded_train(proto, split.train, cfg);

  ASSERT_EQ(result.membership.size(), 1u);
  EXPECT_EQ(result.membership.front().worker, 1);
  EXPECT_EQ(result.membership.front().workers_after, 3u);
  bool evicted = false;
  for (const ControllerDecision& d : result.decisions)
    evicted |= d.enacted && d.chosen.evict_straggler;
  EXPECT_TRUE(evicted);
  for (float p : result.final_params) ASSERT_TRUE(std::isfinite(p));
}

}  // namespace
}  // namespace ss
