#include "core/binary_search.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ss {
namespace {

/// Stub training landscape: accuracy 0.92 at or above the knee, sliding
/// down below it; time proportional to 0.15 + 0.85 * fraction.
TrialFn landscape(double knee, int* calls = nullptr) {
  return [knee, calls](double fraction, int) {
    if (calls) ++*calls;
    TrialOutcome out;
    out.converged_accuracy = fraction >= knee ? 0.92 : 0.92 - 2.0 * (knee - fraction);
    out.train_time_seconds = 100.0 * (0.15 + 0.85 * fraction);
    return out;
  };
}

TEST(BinarySearch, FindsKneeOnMonotoneLandscape) {
  BinarySearchConfig cfg;
  cfg.beta = 0.01;
  cfg.max_settings = 5;
  cfg.runs_per_setting = 1;
  const auto result = binary_search_timing(landscape(0.0625), cfg);
  EXPECT_DOUBLE_EQ(result.switch_fraction, 0.0625);
  EXPECT_NEAR(result.target_accuracy, 0.92, 1e-9);
}

TEST(BinarySearch, DeeperKneeNeedsMoreBsp) {
  BinarySearchConfig cfg;
  cfg.max_settings = 5;
  cfg.runs_per_setting = 1;
  const auto result = binary_search_timing(landscape(0.4), cfg);
  // The search keeps the smallest in-band dyadic fraction >= knee.
  EXPECT_DOUBLE_EQ(result.switch_fraction, 0.40625);
}

TEST(BinarySearch, CountsSessionsAndCost) {
  BinarySearchConfig cfg;
  cfg.max_settings = 3;
  cfg.runs_per_setting = 2;
  int calls = 0;
  const auto result = binary_search_timing(landscape(0.25, &calls), cfg);
  // 2 BSP baseline runs + 3 settings x 2 runs.
  EXPECT_EQ(result.sessions_run, 8);
  EXPECT_EQ(calls, 8);
  EXPECT_GT(result.search_cost_seconds, 0.0);
  EXPECT_EQ(result.explored.size(), 3u);
}

TEST(BinarySearch, ProvidedTargetSkipsBspRuns) {
  BinarySearchConfig cfg;
  cfg.max_settings = 2;
  cfg.runs_per_setting = 1;
  cfg.target_accuracy = 0.92;
  int calls = 0;
  binary_search_timing(landscape(0.25, &calls), cfg);
  EXPECT_EQ(calls, 2);  // no baseline runs
}

TEST(BinarySearch, DivergedTrialsAreOutOfBand) {
  BinarySearchConfig cfg;
  cfg.max_settings = 3;
  cfg.runs_per_setting = 1;
  cfg.target_accuracy = 0.9;
  // Everything below 50% diverges; 50%+ is fine.
  const auto result = binary_search_timing(
      [](double fraction, int) {
        TrialOutcome out;
        out.diverged = fraction < 0.5;
        out.converged_accuracy = out.diverged ? 0.0 : 0.9;
        out.train_time_seconds = 10.0;
        return out;
      },
      cfg);
  EXPECT_DOUBLE_EQ(result.switch_fraction, 0.5);
  for (const auto& c : result.explored) {
    if (c.fraction < 0.5) {
      EXPECT_FALSE(c.in_band);
    }
  }
}

TEST(BinarySearch, RejectsBadConfig) {
  BinarySearchConfig cfg;
  cfg.max_settings = 0;
  EXPECT_THROW(binary_search_timing(landscape(0.1), cfg), ConfigError);
  EXPECT_THROW(binary_search_timing(nullptr, BinarySearchConfig{}), ConfigError);
}

class KneeSweep : public ::testing::TestWithParam<double> {};

TEST_P(KneeSweep, ResultIsInBandAndMinimal) {
  const double knee = GetParam();
  BinarySearchConfig cfg;
  cfg.max_settings = 6;
  cfg.runs_per_setting = 1;
  const auto result = binary_search_timing(landscape(knee), cfg);
  // Found fraction achieves the accuracy band (beta = 0.01 allows the
  // landscape to sit up to 0.005 below the knee)...
  EXPECT_GE(result.switch_fraction, knee - 0.005 - 1e-12);
  // ...and is within one search-resolution above the knee.
  EXPECT_LE(result.switch_fraction - knee, 1.0 / (1 << 6) + 0.005 + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Knees, KneeSweep,
                         ::testing::Values(0.03125, 0.0625, 0.125, 0.3, 0.5, 0.77));

}  // namespace
}  // namespace ss
