// Group-based hybrid synchronization (Gaia-style) semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "data/synthetic.h"
#include "nn/zoo.h"
#include "ps/group_runtime.h"

namespace ss {
namespace {

struct Fixture {
  explicit Fixture(std::size_t workers, std::uint64_t seed = 5, std::size_t batch = 8)
      : spec(make_spec()),
        split(make_synthetic(spec)),
        eval_set(split.test.head(128)),
        root(seed),
        model([&] {
          Rng init = root.fork(1);
          return make_model(ModelArch::kLinear, spec.feature_dim, spec.num_classes, init);
        }()),
        eval_model(model.clone()),
        state(make_state(workers, batch)),
        schedule(0.05) {}

  static SyntheticSpec make_spec() {
    SyntheticSpec s = SyntheticSpec::cifar10_like();
    s.train_size = 512;
    s.test_size = 256;
    s.num_classes = 4;
    s.feature_dim = 16;
    s.class_separation = 1.2;
    return s;
  }

  TrainingState make_state(std::size_t workers, std::size_t batch) {
    const auto shards = make_shards(split.train.size(), workers);
    std::vector<MinibatchSampler> samplers;
    std::vector<Rng> rngs;
    for (std::size_t w = 0; w < workers; ++w) {
      samplers.emplace_back(shards[w], batch, root.fork(100 + w));
      rngs.push_back(root.fork(200 + w));
    }
    return TrainingState(ParameterServer(model.get_params(), 0.9), std::move(samplers),
                         std::move(rngs));
  }

  static ClusterSpec cluster_spec(std::size_t workers) {
    ClusterSpec c;
    c.num_workers = workers;
    c.compute_per_batch = VTime::from_ms(10.0);
    c.reference_batch = 8;
    c.compute_jitter_sigma = 0.1;
    c.net_latency = VTime::from_ms(1.0);
    c.payload_bytes = 1000.0;
    c.bandwidth_bps = 1e8;
    c.sync_base = VTime::from_ms(5.0);
    c.sync_quad = VTime::from_ms(0.1);
    c.async_apply = VTime::from_ms(0.1);
    return c;
  }

  GroupConfig config(std::size_t groups, std::int64_t budget,
                     double threshold = 0.01) const {
    GroupConfig cfg;
    cfg.num_groups = groups;
    cfg.significance_threshold = threshold;
    cfg.step_budget = budget;
    cfg.lr_schedule = &schedule;
    cfg.lr_multiplier = 1.0;
    cfg.per_worker_batch = 8;
    cfg.momentum = 0.9;
    cfg.eval_interval = 0;
    return cfg;
  }

  GroupRuntime runtime() {
    return GroupRuntime(ClusterModel(cluster_spec(state.samplers.size())), model, eval_model,
                        split.train, eval_set, null_sink);
  }

  SyntheticSpec spec;
  DataSplit split;
  Dataset eval_set;
  Rng root;
  Model model;
  Model eval_model;
  TrainingState state;
  ConstantLr schedule;
  StragglerSchedule no_stragglers;
  NullMetricsSink null_sink;
};

TEST(GroupRuntime, ValidatesConfig) {
  Fixture fx(4);
  auto rt = fx.runtime();
  GroupConfig cfg = fx.config(2, 16);
  cfg.lr_schedule = nullptr;
  EXPECT_THROW(rt.run(fx.state, cfg, fx.no_stragglers), ConfigError);

  cfg = fx.config(0, 16);
  EXPECT_THROW(rt.run(fx.state, cfg, fx.no_stragglers), ConfigError);

  cfg = fx.config(8, 16);  // more groups than the 4 workers
  EXPECT_THROW(rt.run(fx.state, cfg, fx.no_stragglers), ConfigError);

  cfg = fx.config(2, 16, -0.5);
  EXPECT_THROW(rt.run(fx.state, cfg, fx.no_stragglers), ConfigError);
}

TEST(GroupRuntime, SingleGroupHasNoBroadcastsOrDrift) {
  Fixture fx(4);
  auto rt = fx.runtime();
  const GroupPhaseResult r = rt.run(fx.state, fx.config(1, 16), fx.no_stragglers);
  EXPECT_EQ(r.end, PhaseEnd::kBudgetExhausted);
  EXPECT_EQ(r.steps_done, 16);
  EXPECT_EQ(r.broadcasts, 0);
  EXPECT_EQ(r.mean_replica_divergence, 0.0);
}

TEST(GroupRuntime, CompletesBudgetAcrossGroups) {
  Fixture fx(6);
  auto rt = fx.runtime();
  const GroupPhaseResult r = rt.run(fx.state, fx.config(2, 60), fx.no_stragglers);
  EXPECT_EQ(r.end, PhaseEnd::kBudgetExhausted);
  EXPECT_GE(r.steps_done, 60);
  EXPECT_GT(r.broadcasts, 0);
}

TEST(GroupRuntime, ZeroThresholdBroadcastsEverything) {
  Fixture fx(4);
  auto rt = fx.runtime();
  const GroupPhaseResult r = rt.run(fx.state, fx.config(2, 40, 0.0), fx.no_stragglers);
  // Every coordinate moves every round (dense gradients + momentum), so the
  // significance filter passes (almost) everything.
  EXPECT_GT(r.mean_significant_fraction, 0.95);
}

TEST(GroupRuntime, HugeThresholdSuppressesBroadcastsAndCausesDrift) {
  Fixture low(4);
  auto rt_low = low.runtime();
  const GroupPhaseResult rl = rt_low.run(low.state, low.config(2, 40, 0.001), low.no_stragglers);

  Fixture high(4);
  auto rt_high = high.runtime();
  const GroupPhaseResult rh =
      rt_high.run(high.state, high.config(2, 40, 1e9), high.no_stragglers);

  EXPECT_EQ(rh.broadcasts, 0);
  EXPECT_GT(rl.broadcasts, 0);
  // Without broadcasts the replicas only share their initialization: drift
  // must exceed the coupled configuration's.
  EXPECT_GT(rh.mean_replica_divergence, rl.mean_replica_divergence);
}

TEST(GroupRuntime, LearnsTheTask) {
  Fixture fx(4);
  auto rt = fx.runtime();
  const GroupPhaseResult r = rt.run(fx.state, fx.config(2, 480), fx.no_stragglers);
  ASSERT_EQ(r.end, PhaseEnd::kBudgetExhausted);
  fx.eval_model.set_params(fx.state.ps.params());
  EXPECT_GT(fx.eval_model.evaluate_accuracy(fx.eval_set), 0.6);
}

TEST(GroupRuntime, FoldsAverageBackIntoParameterServer) {
  Fixture fx(4);
  auto rt = fx.runtime();
  const std::vector<float> before(fx.state.ps.params().begin(), fx.state.ps.params().end());
  const std::int64_t version_before = fx.state.ps.version();
  rt.run(fx.state, fx.config(2, 16), fx.no_stragglers);
  const auto after = fx.state.ps.params();
  EXPECT_GT(fx.state.ps.version(), version_before);
  // Training moved the parameters.
  double diff = 0.0;
  for (std::size_t i = 0; i < after.size(); ++i)
    diff += std::fabs(static_cast<double>(after[i]) - before[i]);
  EXPECT_GT(diff, 0.0);
}

TEST(GroupRuntime, StragglerInOneGroupDoesNotBlockTheOther) {
  // Worker 0 is permanently 10x slower.  With 2 groups (round-robin: worker
  // 0 in group 0), group 1 should complete many more rounds than group 0 —
  // i.e. total time is far below what a global barrier would cost.
  const std::size_t n = 4;
  auto schedule = StragglerSchedule::permanent(0, 10.0);

  Fixture grouped(n);
  auto rt_g = grouped.runtime();
  const GroupPhaseResult rg = rt_g.run(grouped.state, grouped.config(2, 80), schedule);

  Fixture global(n);
  auto rt_b = global.runtime();
  const GroupPhaseResult rb = rt_b.run(global.state, global.config(1, 80), schedule);

  EXPECT_LT(rg.elapsed.seconds(), 0.7 * rb.elapsed.seconds());
}

TEST(GroupRuntime, DivergenceIsDetected) {
  Fixture fx(4);
  ConstantLr explosive(1e5);
  auto rt = fx.runtime();
  GroupConfig cfg = fx.config(2, 400);
  cfg.lr_schedule = &explosive;
  // Softmax CE saturates around -log(1e-12) ~ 27.6; use a threshold the
  // exploded-but-saturated loss will cross.
  cfg.divergence_loss_threshold = 5.0;
  const GroupPhaseResult r = rt.run(fx.state, cfg, fx.no_stragglers);
  EXPECT_EQ(r.end, PhaseEnd::kDiverged);
  EXPECT_LT(r.steps_done, 400);
}

class GroupCount : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GroupCount, AllGroupCountsConverge) {
  const std::size_t groups = GetParam();
  Fixture fx(8);
  auto rt = fx.runtime();
  const GroupPhaseResult r = rt.run(fx.state, fx.config(groups, 480), fx.no_stragglers);
  ASSERT_EQ(r.end, PhaseEnd::kBudgetExhausted) << groups << " groups";
  fx.eval_model.set_params(fx.state.ps.params());
  EXPECT_GT(fx.eval_model.evaluate_accuracy(fx.eval_set), 0.6) << groups << " groups";
}

INSTANTIATE_TEST_SUITE_P(Groups, GroupCount, ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
}  // namespace ss
