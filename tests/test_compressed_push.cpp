// Regression suite for the compressed-push pipeline:
//
//  * the three codec bugfixes — top-k pricing capped at the dense payload,
//    QSGD levels clamped into [0, s] under adversarial fp rounding, TernGrad
//    magnitude clipping (not mean-centered clipping);
//  * encode/decode fidelity — for every codec, decoding the CompressedPush
//    reproduces the in-place transform bit for bit, with and without error
//    feedback;
//  * sparse apply — ShardedParameterServer::apply_sparse touches only the
//    shards owning kept coordinates and is bit-identical to the equivalent
//    dense apply, on 1 and 8 shards, and the threaded SharedParameterServer
//    fast path versions only those shards.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "compress/bank.h"
#include "compress/codec.h"
#include "compress/compressed_push.h"
#include "compress/qsgd.h"
#include "compress/terngrad.h"
#include "compress/topk.h"
#include "ps/sharded_param_server.h"
#include "ps/threaded_runtime.h"

namespace ss {
namespace {

std::vector<float> ramp(std::size_t n, float scale = 1.0f) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = scale * static_cast<float>(i + 1) * ((i % 2 == 0) ? 1.0f : -1.0f);
  return v;
}

// ------------------------------------------------- Bugfix 1: top-k pricing

TEST(TopKPricing, NeverExceedsTheDensePayloadPlusHeader) {
  const std::size_t n = 1000;
  for (const double f : {0.001, 0.01, 0.1, 0.5, 0.9, 1.0}) {
    const TopKCodec codec(f);
    EXPECT_LE(codec.wire_bytes(n), n * sizeof(float) + TopKCodec::kHeaderBytes)
        << "fraction " << f;
  }
  // The regression: topk(100%) used to price 8 bytes per coordinate — twice
  // the dense fp32 payload it falls back to.
  EXPECT_EQ(TopKCodec(1.0).wire_bytes(n), n * sizeof(float) + TopKCodec::kHeaderBytes);
  EXPECT_LT(TopKCodec(1.0).wire_bytes(n), 2 * n * sizeof(float));
}

TEST(TopKPricing, MonotoneInKeepFraction) {
  const std::size_t n = 1000;
  std::size_t prev = 0;
  for (const double f : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    const std::size_t bytes = TopKCodec(f).wire_bytes(n);
    EXPECT_GE(bytes, prev) << "fraction " << f;
    prev = bytes;
  }
}

TEST(TopKPricing, EmptyGradientPricesLikeTheOtherCodecs) {
  TopKCodec codec(0.1);
  EXPECT_EQ(codec.kept(0), 0u);
  Rng rng(1);
  std::vector<float> empty;
  // transform on an empty gradient must report wire_bytes(0), as QSGD and
  // TernGrad do (it used to return a bare 0, skipping the header).
  EXPECT_EQ(codec.transform(empty, rng), codec.wire_bytes(0));
}

// --------------------------------------------- Bugfix 2: QSGD level range

TEST(QsgdLevels, NeverExceedSOnAdversarialInputs) {
  // |g| / ||g|| == 1 exactly (single nonzero coordinate) lands on r == s;
  // with fp rounding in the norm the unclamped ratio can nudge past s and
  // emit level s + 1, overflowing the priced 0..s range.  The clamp must
  // keep every reconstructed magnitude at or below the norm.
  for (const int s : {1, 2, 15, 255}) {
    const QsgdCodec codec(s);
    Rng data_rng(7);
    for (int rep = 0; rep < 200; ++rep) {
      // One dominant coordinate across a wide exponent range + tiny tail.
      const auto mag = static_cast<float>(
          std::pow(10.0, data_rng.uniform(-30.0, 30.0)));
      std::vector<float> g = {mag, mag * 1e-20f, -mag * 1e-25f, mag * 1e-30f};
      double sq = 0.0;
      for (const float v : g) sq += static_cast<double>(v) * v;
      const double norm = std::sqrt(sq);
      Rng rng(static_cast<std::uint64_t>(rep) + 1);
      codec.transform(g, rng);
      for (const float v : g) {
        const double level = std::fabs(v) / norm * s;
        EXPECT_LE(std::llround(level), s) << "s=" << s << " rep=" << rep;
        EXPECT_LE(std::fabs(v), norm * (1.0 + 1e-9)) << "s=" << s << " rep=" << rep;
      }
    }
  }
}

TEST(QsgdLevels, ExactTopLevelIsRepresentable) {
  // A coordinate sitting exactly on |g| == ||g|| quantizes to level s (the
  // top of the grid), not past it.
  QsgdCodec codec(15);
  Rng rng(3);
  std::vector<float> g = {-2.5f, 0.0f, 0.0f};
  codec.transform(g, rng);
  EXPECT_FLOAT_EQ(std::fabs(g[0]), 2.5f);
  EXPECT_EQ(g[1], 0.0f);
  EXPECT_EQ(g[2], 0.0f);
}

// ------------------------------------------ Bugfix 3: TernGrad clipping

TEST(TernGradClip, ClipsMagnitudesNotTheMeanBand) {
  // All-positive gradient with mean ~5 and tiny spread: magnitude clipping
  // bounds the ternary scale by c * sigma; the old mean +/- c*sigma clamp
  // left the scale near the mean (~50x larger).
  const double c = 2.5;
  TernGradCodec codec(c);
  std::vector<float> g(256);
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = 5.0f + 0.01f * static_cast<float>(i % 16) * ((i % 2 == 0) ? 1.0f : -1.0f);
  double sum = 0.0, sq = 0.0;
  for (const float v : g) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double n = static_cast<double>(g.size());
  const double sigma = std::sqrt(std::max(0.0, sq / n - (sum / n) * (sum / n)));

  Rng rng(11);
  codec.transform(g, rng);
  float scale = 0.0f;
  for (const float v : g) scale = std::max(scale, std::fabs(v));
  EXPECT_LE(scale, c * sigma * (1.0 + 1e-6))
      << "ternary scale escaped the magnitude clip bound";
  EXPECT_GT(scale, 0.0f);
}

TEST(TernGradClip, IsSignSymmetric) {
  // Magnitude clipping is an odd function, so quantizing -g with the same
  // RNG stream must yield exactly the negated output of quantizing g.  The
  // mean-centered clamp broke this for nonzero-mean gradients.
  TernGradCodec codec(2.0);
  std::vector<float> g(128);
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = 3.0f + 0.5f * static_cast<float>(i % 7);  // strongly nonzero mean
  std::vector<float> neg(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) neg[i] = -g[i];

  Rng r1(42), r2(42);
  codec.transform(g, r1);
  codec.transform(neg, r2);
  for (std::size_t i = 0; i < g.size(); ++i)
    EXPECT_EQ(g[i], -neg[i]) << "coordinate " << i;
}

// ------------------------------------------------ Encode/decode fidelity

struct CodecCase {
  std::string label;
  std::shared_ptr<GradientCodec> codec;
};

class PushCodec : public ::testing::TestWithParam<CodecCase> {};

TEST_P(PushCodec, DecodeReproducesTransformBitForBit) {
  const auto& codec = *GetParam().codec;
  for (const std::size_t n : {1u, 7u, 64u, 1001u}) {
    std::vector<float> via_transform = ramp(n, 0.01f);
    const std::vector<float> original = via_transform;
    Rng r1(17), r2(17);
    const std::size_t bytes = codec.transform(via_transform, r1);
    const CompressedPush push = codec.encode(original, r2);
    EXPECT_EQ(push.wire_size, bytes) << "n=" << n;
    EXPECT_EQ(push.num_params, n) << "n=" << n;
    EXPECT_NO_THROW(push.validate(n));
    std::vector<float> decoded(n);
    push.decode_into(decoded);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(decoded[i], via_transform[i]) << GetParam().label << " n=" << n << " i=" << i;
  }
}

TEST_P(PushCodec, AddIntoAccumulatesTheDecodedGradient) {
  const auto& codec = *GetParam().codec;
  const std::size_t n = 65;
  std::vector<float> g = ramp(n, 0.1f);
  Rng rng(5);
  const CompressedPush push = codec.encode(g, rng);
  std::vector<float> acc(n, 1.0f);
  push.add_into(acc);
  std::vector<float> decoded(n);
  push.decode_into(decoded);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(acc[i], 1.0f + decoded[i]) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, PushCodec,
    ::testing::Values(CodecCase{"fp32", std::make_shared<IdentityCodec>()},
                      CodecCase{"topk10", std::make_shared<TopKCodec>(0.1)},
                      CodecCase{"topk75", std::make_shared<TopKCodec>(0.75)},
                      CodecCase{"terngrad", std::make_shared<TernGradCodec>()},
                      CodecCase{"qsgd4bit", std::make_shared<QsgdCodec>(15)}),
    [](const ::testing::TestParamInfo<CodecCase>& info) { return info.param.label; });

TEST(SparseEncode, TopKEmitsAscendingUniqueIndicesWithExactValues) {
  TopKCodec codec(0.1);
  Rng rng(9);
  const std::vector<float> g = ramp(200, 0.3f);
  const CompressedPush push = codec.encode(g, rng);
  ASSERT_TRUE(push.sparse());
  EXPECT_EQ(push.nnz(), codec.kept(g.size()));
  EXPECT_EQ(push.wire_size, codec.wire_bytes(g.size()));
  for (std::size_t i = 0; i < push.indices.size(); ++i) {
    if (i > 0) {
      ASSERT_LT(push.indices[i - 1], push.indices[i]);
    }
    // Top-k transmits kept values verbatim — no quantization.
    ASSERT_EQ(push.values[i], g[push.indices[i]]) << "i=" << i;
  }
}

TEST(SparseEncode, TopKFallsBackToDenseAboveHalfKeepFraction) {
  // At keep fractions >= 50% the (index, value) stream costs at least the
  // dense payload, so the encoder ships dense and prices accordingly.
  TopKCodec codec(0.75);
  Rng rng(9);
  const std::vector<float> g = ramp(64, 0.5f);
  const CompressedPush push = codec.encode(g, rng);
  EXPECT_FALSE(push.sparse());
  EXPECT_EQ(push.wire_size, 64u * sizeof(float) + TopKCodec::kHeaderBytes);
}

TEST(Bank, EncodeMatchesTransformIncludingErrorFeedback) {
  // Two banks fed the same gradient stream — one through the in-place
  // transform, one through encode/decode — must produce identical pushes
  // and identical residual trajectories.
  auto codec = std::make_shared<TopKCodec>(0.2);
  CompressorBank a(codec, 1, /*error_feedback=*/true);
  CompressorBank b(codec, 1, /*error_feedback=*/true);
  const std::size_t n = 40;
  Rng r1(3), r2(3);
  for (int round = 0; round < 10; ++round) {
    std::vector<float> ga = ramp(n, 0.1f * static_cast<float>(round + 1));
    const std::vector<float> gb = ga;
    a.transform(0, ga, r1);
    const CompressedPush push = b.encode(0, gb, r2);
    std::vector<float> decoded(n);
    push.decode_into(decoded);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(decoded[i], ga[i]) << "round " << round;
    ASSERT_DOUBLE_EQ(a.residual_l1(0), b.residual_l1(0)) << "round " << round;
  }
}

TEST(Push, ValidateRejectsMalformedPushes) {
  CompressedPush push;
  push.format = CompressedPush::Format::kSparse;
  push.num_params = 10;
  push.indices = {3, 3};
  push.values = {1.0f, 2.0f};
  EXPECT_THROW(push.validate(10), ConfigError);  // duplicate index
  push.indices = {5, 3};
  EXPECT_THROW(push.validate(10), ConfigError);  // descending
  push.indices = {3, 10};
  EXPECT_THROW(push.validate(10), ConfigError);  // out of range
  push.indices = {3, 9};
  EXPECT_NO_THROW(push.validate(10));
  EXPECT_THROW(push.validate(11), ConfigError);  // wrong length
}

// ---------------------------------------------------- Sparse apply (PS)

std::vector<float> init_params(std::size_t p) {
  std::vector<float> v(p);
  for (std::size_t i = 0; i < p; ++i) v[i] = 0.1f * static_cast<float>(i) - 1.0f;
  return v;
}

TEST(ApplySparse, BitIdenticalToDenseApplyOnOneAndEightShards) {
  const std::size_t p = 37;
  const std::vector<std::uint32_t> indices = {0, 6, 17, 35, 36};
  const std::vector<float> values = {0.5f, -1.25f, 2.0f, -0.125f, 3.5f};
  for (const std::size_t shards : {1u, 8u}) {
    ShardedParameterServer dense(init_params(p), 0.9, shards);
    ShardedParameterServer sparse(init_params(p), 0.9, shards);

    std::vector<float> scattered(p, 0.0f);
    for (std::size_t i = 0; i < indices.size(); ++i) scattered[indices[i]] = values[i];
    dense.apply(scattered, 0.05);
    sparse.apply_sparse(indices, values, 0.05);

    // From zero velocity, one sparse push is bit-identical to the dense
    // apply of the scattered vector: params AND velocity.
    for (std::size_t i = 0; i < p; ++i)
      ASSERT_EQ(dense.params()[i], sparse.params()[i]) << shards << " shards, param " << i;
    const auto dv = dense.optimizer().velocity();
    const auto sv = sparse.optimizer().velocity();
    for (std::size_t i = 0; i < p; ++i)
      ASSERT_EQ(dv[i], sv[i]) << shards << " shards, velocity " << i;
  }
}

TEST(ApplySparse, SequenceMatchesDenseWithoutMomentum) {
  // With momentum 0 the sparse/dense parameter trajectories agree over any
  // push sequence (with momentum, velocity decay on untransmitted
  // coordinates is deliberately skipped — sparse momentum semantics).
  const std::size_t p = 29;
  for (const std::size_t shards : {1u, 8u}) {
    ShardedParameterServer dense(init_params(p), 0.0, shards);
    ShardedParameterServer sparse(init_params(p), 0.0, shards);
    Rng rng(13);
    for (int round = 0; round < 8; ++round) {
      std::vector<std::uint32_t> indices;
      std::vector<float> values;
      for (std::uint32_t i = 0; i < p; ++i) {
        if (rng.bernoulli(0.3)) {
          indices.push_back(i);
          values.push_back(static_cast<float>(rng.gaussian()));
        }
      }
      std::vector<float> scattered(p, 0.0f);
      for (std::size_t i = 0; i < indices.size(); ++i) scattered[indices[i]] = values[i];
      dense.apply(scattered, 0.1);
      sparse.apply_sparse(indices, values, 0.1);
    }
    for (std::size_t i = 0; i < p; ++i)
      ASSERT_EQ(dense.params()[i], sparse.params()[i]) << shards << " shards, param " << i;
  }
}

TEST(ApplySparse, AdvancesOnlyTheTouchedShardVersions) {
  const std::size_t p = 64;  // 8 shards x 8 params
  ShardedParameterServer ps(init_params(p), 0.9, 8);
  // Indices in shards 1 (8..15) and 6 (48..55) only.
  const std::vector<std::uint32_t> indices = {9, 14, 50};
  const std::vector<float> values = {1.0f, 2.0f, 3.0f};
  ps.apply_sparse(indices, values, 0.05);
  for (std::size_t s = 0; s < 8; ++s)
    EXPECT_EQ(ps.shard_version(s), (s == 1 || s == 6) ? 1 : 0) << "shard " << s;

  // Sparse staleness is measured over the touched shards only.
  const std::vector<std::int64_t> pulled(8, 0);
  EXPECT_EQ(ps.staleness_since(pulled, indices), 1);
  const std::vector<std::uint32_t> elsewhere = {0, 60};
  EXPECT_EQ(ps.staleness_since(pulled, elsewhere), 0);
}

TEST(ApplySparse, RejectsMalformedIndexLists) {
  ShardedParameterServer ps(init_params(16), 0.9, 4);
  const std::vector<float> two = {1.0f, 2.0f};
  EXPECT_THROW(ps.apply_sparse(std::vector<std::uint32_t>{3, 3}, two, 0.1), ConfigError);
  EXPECT_THROW(ps.apply_sparse(std::vector<std::uint32_t>{5, 3}, two, 0.1), ConfigError);
  EXPECT_THROW(ps.apply_sparse(std::vector<std::uint32_t>{3, 16}, two, 0.1), ConfigError);
  EXPECT_THROW(ps.apply_sparse(std::vector<std::uint32_t>{3}, two, 0.1), ConfigError);
  EXPECT_NO_THROW(ps.apply_sparse(std::vector<std::uint32_t>{3, 15}, two, 0.1));
}

TEST(ShardOf, IsTheInverseOfShardRange) {
  for (const std::size_t shards : {1u, 3u, 8u}) {
    ShardedParameterServer ps(init_params(37), 0.9, shards);
    for (std::size_t s = 0; s < ps.num_shards(); ++s) {
      const auto r = ps.shard_range(s);
      for (std::size_t i = r.begin; i < r.end; ++i)
        ASSERT_EQ(ps.shard_of(i), s) << "param " << i;
    }
    EXPECT_THROW(static_cast<void>(ps.shard_of(37)), ConfigError);
  }
}

// ------------------------------------- Threaded shared-PS sparse fast path

TEST(SharedPushCompressed, SparsePushVersionsOnlyTheTouchedShards) {
  const std::size_t p = 64;
  SharedParameterServer ps(init_params(p), 0.9, 8);
  std::vector<float> snap(p);
  std::vector<std::int64_t> pulled;
  ps.pull_with_versions(snap, pulled);

  CompressedPush push;
  push.format = CompressedPush::Format::kSparse;
  push.num_params = p;
  push.indices = {9, 14, 50};
  push.values = {1.0f, 2.0f, 3.0f};
  push.wire_size = push.indices.size() * 8;
  EXPECT_EQ(ps.push_compressed(push, 0.05, pulled), 0);

  std::vector<std::int64_t> after;
  ps.pull_with_versions(snap, after);
  for (std::size_t s = 0; s < 8; ++s)
    EXPECT_EQ(after[s], (s == 1 || s == 6) ? 1 : 0) << "shard " << s;

  // A second identical push against the stale pull observes the first one
  // (staleness measured on the shards it touches).
  EXPECT_EQ(ps.push_compressed(push, 0.05, pulled), 1);
}

TEST(SharedPushCompressed, DensePushMatchesPlainPush) {
  const std::size_t p = 37;
  SharedParameterServer a(init_params(p), 0.9, 8);
  SharedParameterServer b(init_params(p), 0.9, 8);
  const std::vector<float> grad = ramp(p, 0.01f);
  const std::vector<std::int64_t> pulled(8, 0);

  CompressedPush push;
  push.format = CompressedPush::Format::kDense;
  push.num_params = p;
  push.values = grad;
  push.wire_size = p * sizeof(float);

  EXPECT_EQ(a.push(grad, 0.05, pulled), b.push_compressed(push, 0.05, pulled));
  const auto pa = a.snapshot();
  const auto pb = b.snapshot();
  for (std::size_t i = 0; i < p; ++i) ASSERT_EQ(pa[i], pb[i]) << "param " << i;
}

TEST(SharedPushCompressed, RejectsMalformedPushes) {
  SharedParameterServer ps(init_params(16), 0.9, 4);
  const std::vector<std::int64_t> pulled(4, 0);
  CompressedPush push;
  push.format = CompressedPush::Format::kSparse;
  push.num_params = 16;
  push.indices = {5, 3};  // descending
  push.values = {1.0f, 2.0f};
  EXPECT_THROW(ps.push_compressed(push, 0.05, pulled), ConfigError);
}

}  // namespace
}  // namespace ss
