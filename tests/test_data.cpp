#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "data/batcher.h"
#include "data/synthetic.h"

namespace ss {
namespace {

SyntheticSpec tiny_spec() {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_size = 512;
  spec.test_size = 128;
  return spec;
}

TEST(Synthetic, SizesAndLabelRanges) {
  const DataSplit split = make_synthetic(tiny_spec());
  EXPECT_EQ(split.train.size(), 512u);
  EXPECT_EQ(split.test.size(), 128u);
  EXPECT_EQ(split.train.feature_dim(), 64u);
  EXPECT_EQ(split.train.num_classes(), 10);
  for (int y : split.train.labels()) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 10);
  }
}

TEST(Synthetic, DeterministicForSameSeed) {
  const DataSplit a = make_synthetic(tiny_spec());
  const DataSplit b = make_synthetic(tiny_spec());
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::size_t i = 0; i < a.train.features().numel(); ++i)
    EXPECT_EQ(a.train.features()[i], b.train.features()[i]);
}

TEST(Synthetic, DifferentSeedsProduceDifferentData) {
  auto spec_b = tiny_spec();
  spec_b.seed = 999;
  const DataSplit a = make_synthetic(tiny_spec());
  const DataSplit b = make_synthetic(spec_b);
  int same = 0;
  for (std::size_t i = 0; i < 100; ++i)
    if (a.train.features()[i] == b.train.features()[i]) ++same;
  EXPECT_LT(same, 5);
}

TEST(Synthetic, FeaturesApproximatelyStandardized) {
  const DataSplit split = make_synthetic(tiny_spec());
  double sq = 0.0;
  const auto& f = split.train.features();
  for (std::size_t i = 0; i < f.numel(); ++i) sq += static_cast<double>(f[i]) * f[i];
  const double var = sq / static_cast<double>(f.numel());
  EXPECT_GT(var, 0.5);
  EXPECT_LT(var, 2.0);
}

TEST(Synthetic, RejectsInvalidSpecs) {
  auto bad = tiny_spec();
  bad.num_classes = 1;
  EXPECT_THROW(make_synthetic(bad), ConfigError);
  bad = tiny_spec();
  bad.label_noise = 1.5;
  EXPECT_THROW(make_synthetic(bad), ConfigError);
}

TEST(Dataset, GatherCopiesRowsAndLabels) {
  const DataSplit split = make_synthetic(tiny_spec());
  const std::vector<std::uint32_t> idx = {3, 7, 1};
  Tensor batch({3, 64});
  std::vector<int> labels;
  split.train.gather(idx, batch, labels);
  EXPECT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], split.train.labels()[3]);
  EXPECT_EQ(batch.at2(1, 0), split.train.features().at2(7, 0));
}

TEST(Dataset, HeadTakesPrefix) {
  const DataSplit split = make_synthetic(tiny_spec());
  const Dataset head = split.test.head(10);
  EXPECT_EQ(head.size(), 10u);
  EXPECT_EQ(head.labels()[4], split.test.labels()[4]);
}

class ShardSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardSweep, PartitionIsExactAndBalanced) {
  const std::size_t workers = GetParam();
  const std::size_t total = 1000;
  const auto shards = make_shards(total, workers);
  ASSERT_EQ(shards.size(), workers);
  std::size_t covered = 0;
  std::uint32_t cursor = 0;
  for (const auto& s : shards) {
    EXPECT_EQ(s.begin, cursor);  // contiguous, no gaps
    EXPECT_GE(s.size(), total / workers);
    EXPECT_LE(s.size(), total / workers + 1);
    covered += s.size();
    cursor = s.end;
  }
  EXPECT_EQ(covered, total);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ShardSweep,
                         ::testing::Values(1u, 2u, 3u, 7u, 8u, 16u, 33u));

TEST(Shards, RejectsInvalidArguments) {
  EXPECT_THROW(make_shards(10, 0), ConfigError);
  EXPECT_THROW(make_shards(3, 5), ConfigError);
}

TEST(MinibatchSampler, CoversShardExactlyOncePerEpoch) {
  const ShardSpec shard{100, 200};
  MinibatchSampler sampler(shard, 25, Rng(7));
  std::multiset<std::uint32_t> seen;
  std::vector<std::uint32_t> batch;
  for (int i = 0; i < 4; ++i) {  // one full epoch: 4 batches of 25
    sampler.next_batch(batch);
    ASSERT_EQ(batch.size(), 25u);
    seen.insert(batch.begin(), batch.end());
  }
  EXPECT_EQ(seen.size(), 100u);
  for (std::uint32_t i = 100; i < 200; ++i) EXPECT_EQ(seen.count(i), 1u);
  EXPECT_EQ(sampler.epochs_completed(), 0u);
  sampler.next_batch(batch);  // starts the second epoch
  EXPECT_EQ(sampler.epochs_completed(), 1u);
}

TEST(MinibatchSampler, BatchResizeMidStream) {
  MinibatchSampler sampler(ShardSpec{0, 64}, 8, Rng(8));
  std::vector<std::uint32_t> batch;
  sampler.next_batch(batch);
  EXPECT_EQ(batch.size(), 8u);
  sampler.set_batch_size(16);
  sampler.next_batch(batch);
  EXPECT_EQ(batch.size(), 16u);
  EXPECT_THROW(sampler.set_batch_size(0), ConfigError);
}

TEST(MinibatchSampler, DeterministicGivenRngStream) {
  MinibatchSampler a(ShardSpec{0, 50}, 10, Rng(9));
  MinibatchSampler b(ShardSpec{0, 50}, 10, Rng(9));
  std::vector<std::uint32_t> ba, bb;
  for (int i = 0; i < 10; ++i) {
    a.next_batch(ba);
    b.next_batch(bb);
    EXPECT_EQ(ba, bb);
  }
}

}  // namespace
}  // namespace ss
