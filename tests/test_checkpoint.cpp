#include "nn/checkpoint.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/error.h"

namespace ss {
namespace {

Checkpoint sample() {
  Checkpoint c;
  c.global_step = 12345;
  c.params = {1.0f, -2.5f, 3.25f};
  c.velocity = {0.1f, 0.2f, -0.3f};
  return c;
}

TEST(Checkpoint, SerializeRoundTrip) {
  const Checkpoint c = sample();
  const auto bytes = c.serialize();
  const Checkpoint back = Checkpoint::deserialize(bytes);
  EXPECT_EQ(back, c);
}

TEST(Checkpoint, EmptyVectorsRoundTrip) {
  Checkpoint c;
  c.global_step = 0;
  EXPECT_EQ(Checkpoint::deserialize(c.serialize()), c);
}

TEST(Checkpoint, TruncatedDataThrows) {
  auto bytes = sample().serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(Checkpoint::deserialize(bytes), CheckpointError);
}

TEST(Checkpoint, BadMagicThrows) {
  auto bytes = sample().serialize();
  bytes[0] ^= 0xFF;
  EXPECT_THROW(Checkpoint::deserialize(bytes), CheckpointError);
}

TEST(Checkpoint, TrailingBytesThrow) {
  auto bytes = sample().serialize();
  bytes.push_back(0);
  EXPECT_THROW(Checkpoint::deserialize(bytes), CheckpointError);
}

TEST(Checkpoint, CorruptCountReportsCheckpointError) {
  // A bit-flipped length field must surface as CheckpointError, not as a
  // std::length_error/bad_alloc escaping from vector::resize.
  auto bytes = sample().serialize();
  const std::uint64_t huge = std::uint64_t{1} << 60;
  // params-count field sits right after magic + version + global_step.
  std::memcpy(bytes.data() + 4 + 4 + 8, &huge, sizeof(huge));
  EXPECT_THROW(Checkpoint::deserialize(bytes), CheckpointError);
}

TEST(Checkpoint, FileRoundTrip) {
  const Checkpoint c = sample();
  const std::string path = ::testing::TempDir() + "/ss_ckpt.bin";
  c.save(path);
  EXPECT_EQ(Checkpoint::load(path), c);
}

TEST(Checkpoint, LoadMissingFileThrows) {
  EXPECT_THROW(Checkpoint::load("/nonexistent/dir/x.bin"), CheckpointError);
}

}  // namespace
}  // namespace ss
