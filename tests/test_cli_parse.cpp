#include "common/parse.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/error.h"

namespace ss {
namespace {

// The CLI used to feed flag values straight into std::stoull/stoi, so a typo
// like `--steps 10x` aborted the process via an uncaught std::invalid_argument.
// These helpers must instead reject anything that is not a complete, in-range
// literal, with a message naming the flag — the table below pins both the
// accept and the reject sides.

TEST(CliParse, AcceptsValidIntegers) {
  EXPECT_EQ(parse_u64("--steps", "0"), 0u);
  EXPECT_EQ(parse_u64("--steps", "8192"), 8192u);
  EXPECT_EQ(parse_u64("--seed", "18446744073709551615"), UINT64_MAX);
  EXPECT_EQ(parse_i64("--crash-after", "-1"), -1);
  EXPECT_EQ(parse_i64("--crash-after", "9223372036854775807"), INT64_MAX);
  EXPECT_EQ(parse_int("--workers", "4"), 4);
  EXPECT_EQ(parse_int("--workers", "-2147483648"), INT32_MIN);
  EXPECT_EQ(parse_int("--workers", "2147483647"), INT32_MAX);
}

TEST(CliParse, AcceptsValidDoubles) {
  EXPECT_DOUBLE_EQ(parse_double("--lr", "0.05"), 0.05);
  EXPECT_DOUBLE_EQ(parse_double("--lr", "1e-3"), 1e-3);
  EXPECT_DOUBLE_EQ(parse_double("--momentum", "-0.5"), -0.5);
}

struct RejectCase {
  const char* flag;
  const char* value;
};

TEST(CliParse, RejectsMalformedU64) {
  const RejectCase cases[] = {
      {"--steps", ""},        // empty
      {"--steps", "8x"},      // trailing junk
      {"--steps", " 8"},      // leading whitespace
      {"--steps", "8 "},      // trailing whitespace
      {"--steps", "-1"},      // negative into unsigned
      {"--steps", "1e3"},     // float syntax
      {"--steps", "0x10"},    // hex not accepted
      {"--seed", "18446744073709551616"},  // UINT64_MAX + 1
      {"--steps", "ten"},
  };
  for (const RejectCase& c : cases) {
    try {
      (void)parse_u64(c.flag, c.value);
      FAIL() << c.flag << "=" << c.value << " parsed without error";
    } catch (const ConfigError& e) {
      EXPECT_EQ(std::string(e.what()),
                std::string(c.flag) + ": expected integer, got '" + c.value + "'")
          << "for value '" << c.value << "'";
    }
  }
}

TEST(CliParse, RejectsMalformedI64) {
  const RejectCase cases[] = {
      {"--crash-after", ""},
      {"--crash-after", "5.0"},
      {"--crash-after", "--3"},
      {"--crash-after", "9223372036854775808"},  // INT64_MAX + 1
  };
  for (const RejectCase& c : cases) {
    EXPECT_THROW((void)parse_i64(c.flag, c.value), ConfigError)
        << c.flag << "=" << c.value;
  }
}

TEST(CliParse, RejectsOutOfIntRange) {
  // Fits in i64 but not int: parse_int must reject rather than truncate.
  EXPECT_THROW((void)parse_int("--workers", "2147483648"), ConfigError);
  EXPECT_THROW((void)parse_int("--workers", "-2147483649"), ConfigError);
  try {
    (void)parse_int("--workers", "4294967296");
    FAIL() << "out-of-int value parsed without error";
  } catch (const ConfigError& e) {
    EXPECT_STREQ(e.what(), "--workers: expected integer, got '4294967296'");
  }
}

TEST(CliParse, RejectsMalformedDoubles) {
  const RejectCase cases[] = {
      {"--lr", ""},
      {"--lr", "0.05x"},
      {"--lr", "fast"},
      {"--lr", " 0.1"},
  };
  for (const RejectCase& c : cases) {
    try {
      (void)parse_double(c.flag, c.value);
      FAIL() << c.flag << "=" << c.value << " parsed without error";
    } catch (const ConfigError& e) {
      EXPECT_EQ(std::string(e.what()),
                std::string(c.flag) + ": expected number, got '" + c.value + "'");
    }
  }
}

}  // namespace
}  // namespace ss
