// Cross-runtime protocol conformance: the same workload run through the
// event-driven simulator and the real-thread runtime must satisfy the same
// semantic invariants for every protocol, independent of how many shards the
// parameter server is split into:
//
//  * BSP and the K-sync family report zero gradient staleness (every
//    aggregated update is computed against the freshest parameters).
//  * SSP's local-clock gap never exceeds the staleness bound; DSSP's never
//    exceeds bound + credit.
//  * K-sync cancels exactly n - K completed tasks per round.
//  * Synchronous math is independent of the shard layout bit for bit.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compress/spec.h"
#include "compress/topk.h"
#include "core/session.h"
#include "data/synthetic.h"
#include "nn/zoo.h"
#include "ps/sim_runtime.h"
#include "ps/threaded_runtime.h"

namespace ss {
namespace {

constexpr std::size_t kWorkers = 4;
constexpr std::size_t kBatch = 8;
constexpr int kSspBound = 2;
constexpr int kDsspUpper = 4;

/// Captures every update observation so per-update invariants can be checked.
struct RecordingSink final : MetricsSink {
  std::vector<UpdateObservation> updates;
  void on_task(const TaskObservation&) override {}
  void on_update(const UpdateObservation& obs) override { updates.push_back(obs); }
  void on_eval(std::int64_t, VTime, double) override {}
};

struct Fixture {
  explicit Fixture(std::size_t num_shards_in, std::uint64_t seed = 5)
      : num_shards(num_shards_in),
        split(make_synthetic(make_spec())),
        eval_set(split.test.head(128)),
        root(seed),
        model([&] {
          Rng init = root.fork(1);
          return make_model(ModelArch::kLinear, 16, 4, init);
        }()),
        eval_model(model.clone()),
        state(make_state(num_shards)),
        schedule(0.05) {}

  static SyntheticSpec make_spec() {
    SyntheticSpec s = SyntheticSpec::cifar10_like();
    s.train_size = 512;
    s.test_size = 256;
    s.num_classes = 4;
    s.feature_dim = 16;
    s.class_separation = 1.2;
    return s;
  }

  TrainingState make_state(std::size_t num_shards) {
    const auto data_shards = make_shards(split.train.size(), kWorkers);
    std::vector<MinibatchSampler> samplers;
    std::vector<Rng> rngs;
    for (std::size_t w = 0; w < kWorkers; ++w) {
      samplers.emplace_back(data_shards[w], kBatch, root.fork(100 + w));
      rngs.push_back(root.fork(200 + w));
    }
    return TrainingState(ParameterServer(model.get_params(), 0.9, num_shards),
                         std::move(samplers), std::move(rngs));
  }

  static ClusterSpec cluster_spec(std::size_t num_shards) {
    ClusterSpec c;
    c.num_workers = kWorkers;
    c.num_ps_shards = num_shards;
    c.compute_per_batch = VTime::from_ms(10.0);
    c.reference_batch = kBatch;
    c.compute_jitter_sigma = 0.1;
    c.net_latency = VTime::from_ms(1.0);
    c.payload_bytes = 1000.0;
    c.bandwidth_bps = 1e8;
    c.sync_base = VTime::from_ms(5.0);
    c.sync_quad = VTime::from_ms(0.1);
    c.async_apply = VTime::from_ms(0.1);
    return c;
  }

  PhaseConfig phase(Protocol proto, std::int64_t budget) const {
    PhaseConfig cfg;
    cfg.protocol = proto;
    cfg.ssp_staleness_bound = kSspBound;
    cfg.dssp_staleness_upper = kDsspUpper;
    cfg.k_param = 2;
    cfg.step_budget = budget;
    cfg.lr_schedule = &schedule;
    cfg.lr_multiplier = 1.0;
    cfg.per_worker_batch = kBatch;
    cfg.momentum = 0.9;
    cfg.eval_interval = 0;
    return cfg;
  }

  /// Runs a phase with the PS shard layout and the cluster pricing both
  /// using this fixture's shard count.
  PhaseResult run(Protocol proto, std::int64_t budget, MetricsSink& sink) {
    SimRuntime runtime(ClusterModel(cluster_spec(num_shards)), model, eval_model, split.train,
                       eval_set, sink);
    // One 5x-slow worker so the staleness bounds actually engage.
    const StragglerSchedule slow({{0, VTime::zero(), VTime::from_minutes(60.0), 5.0}});
    std::vector<int> workers(kWorkers);
    for (std::size_t i = 0; i < kWorkers; ++i) workers[i] = static_cast<int>(i);
    return runtime.run_phase(state, phase(proto, budget), workers, slow, nullptr);
  }

  std::size_t num_shards;
  DataSplit split;
  Dataset eval_set;
  Rng root;
  Model model;
  Model eval_model;
  TrainingState state;
  ConstantLr schedule;
};

class ProtocolConformance : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(ShardCounts, ProtocolConformance, ::testing::Values(1u, 8u),
                         [](const auto& info) {
                           return std::to_string(info.param) + "shards";
                         });

TEST_P(ProtocolConformance, SynchronousProtocolsReportZeroStaleness) {
  const std::size_t shards = GetParam();
  for (Protocol proto : {Protocol::kBsp, Protocol::kKSync, Protocol::kKBatchSync}) {
    Fixture fx(shards);
    RecordingSink sink;
    const PhaseResult r = fx.run(proto, 120, sink);
    EXPECT_EQ(r.end, PhaseEnd::kBudgetExhausted) << protocol_name(proto);
    EXPECT_EQ(r.steps_done, 120) << protocol_name(proto);
    EXPECT_DOUBLE_EQ(r.mean_staleness, 0.0) << protocol_name(proto);
    EXPECT_EQ(r.max_clock_gap, 0) << protocol_name(proto);
    ASSERT_FALSE(sink.updates.empty()) << protocol_name(proto);
    for (const auto& u : sink.updates)
      ASSERT_EQ(u.staleness, 0) << protocol_name(proto) << " step " << u.global_step;
  }
}

TEST_P(ProtocolConformance, SspNeverExceedsTheBound) {
  const std::size_t shards = GetParam();
  Fixture fx(shards);
  RecordingSink sink;
  const PhaseResult r = fx.run(Protocol::kSsp, 200, sink);
  EXPECT_EQ(r.steps_done, 200);
  EXPECT_LE(r.max_clock_gap, kSspBound);
  for (const auto& u : sink.updates) ASSERT_GE(u.staleness, 0);
}

TEST_P(ProtocolConformance, DsspNeverExceedsBoundPlusCredit) {
  const std::size_t shards = GetParam();
  Fixture fx(shards);
  RecordingSink sink;
  const PhaseResult r = fx.run(Protocol::kDssp, 200, sink);
  EXPECT_EQ(r.steps_done, 200);
  EXPECT_LE(r.max_clock_gap, kSspBound + kDsspUpper);
}

TEST_P(ProtocolConformance, AspRunsUnboundedButAccountsStaleness) {
  const std::size_t shards = GetParam();
  Fixture fx(shards);
  RecordingSink sink;
  const PhaseResult r = fx.run(Protocol::kAsp, 200, sink);
  EXPECT_EQ(r.steps_done, 200);
  EXPECT_GT(r.mean_staleness, 0.0);
  for (const auto& u : sink.updates) ASSERT_GE(u.staleness, 0);
}

TEST_P(ProtocolConformance, KSyncCancelsExactlyNMinusKPerRound) {
  const std::size_t shards = GetParam();
  Fixture fx(shards);
  RecordingSink sink;
  // K = 2, n = 4: each round takes the 2 earliest completions and cancels
  // the other 2; a 120-step budget at 2 steps per round is 60 rounds.
  const PhaseResult r = fx.run(Protocol::kKSync, 120, sink);
  const std::int64_t rounds = 120 / 2;
  EXPECT_EQ(r.cancelled_tasks, rounds * static_cast<std::int64_t>(kWorkers - 2));
}

TEST_P(ProtocolConformance, KAsyncVariantsHonorTheBudget) {
  const std::size_t shards = GetParam();
  for (Protocol proto : {Protocol::kKAsync, Protocol::kKBatchAsync}) {
    Fixture fx(shards);
    RecordingSink sink;
    const PhaseResult r = fx.run(proto, 120, sink);
    EXPECT_GE(r.steps_done, 120) << protocol_name(proto);
    for (const auto& u : sink.updates) ASSERT_GE(u.staleness, 0) << protocol_name(proto);
  }
}

TEST(ProtocolConformance, BspMathIsIndependentOfShardLayout) {
  // Sharding changes *where* parameters live and how transfers are priced,
  // never the math: the BSP parameter trajectory must agree bit for bit
  // between a flat server and an 8-shard server.
  Fixture flat(1), sharded(8);
  NullMetricsSink sink;
  flat.run(Protocol::kBsp, 40, sink);
  sharded.run(Protocol::kBsp, 40, sink);
  const auto a = flat.state.ps.params();
  const auto b = sharded.state.ps.params();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]) << "param " << i;
}

// ---------------------------------------------------------------------------
// Threaded runtime: the same invariants hold with real OS threads and
// per-shard locking.
// ---------------------------------------------------------------------------

DataSplit threaded_data() {
  SyntheticSpec spec = Fixture::make_spec();
  return make_synthetic(spec);
}

Model threaded_model(const DataSplit& split) {
  Rng rng(11);
  return make_model(ModelArch::kLinear, split.train.feature_dim(), 4, rng);
}

class ThreadedConformance : public ::testing::TestWithParam<std::size_t> {};

INSTANTIATE_TEST_SUITE_P(ShardCounts, ThreadedConformance, ::testing::Values(1u, 8u),
                         [](const auto& info) {
                           return std::to_string(info.param) + "shards";
                         });

TEST_P(ThreadedConformance, BspReportsZeroStaleness) {
  const DataSplit split = threaded_data();
  const Model proto = threaded_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kBsp;
  cfg.num_workers = kWorkers;
  cfg.steps_per_worker = 20;
  cfg.num_ps_shards = GetParam();
  const auto result = threaded_train(proto, split.train, cfg);
  EXPECT_EQ(result.total_updates, 20);
  EXPECT_DOUBLE_EQ(result.mean_staleness, 0.0);
  EXPECT_EQ(result.max_clock_gap, 0);
  for (float p : result.final_params) ASSERT_TRUE(std::isfinite(p));
}

TEST_P(ThreadedConformance, AspAppliesEveryPush) {
  const DataSplit split = threaded_data();
  const Model proto = threaded_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kAsp;
  cfg.num_workers = kWorkers;
  cfg.steps_per_worker = 25;
  cfg.num_ps_shards = GetParam();
  const auto result = threaded_train(proto, split.train, cfg);
  EXPECT_EQ(result.total_updates, 25 * static_cast<std::int64_t>(kWorkers));
  EXPECT_GE(result.mean_staleness, 0.0);
  for (float p : result.final_params) ASSERT_TRUE(std::isfinite(p));
}

TEST_P(ThreadedConformance, SspHonorsTheClockGapBound) {
  const DataSplit split = threaded_data();
  const Model proto = threaded_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kSsp;
  cfg.num_workers = kWorkers;
  cfg.steps_per_worker = 30;
  cfg.ssp_staleness_bound = kSspBound;
  cfg.num_ps_shards = GetParam();
  cfg.pre_step_hook = [](std::size_t worker, std::int64_t) {
    if (worker == 0) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  const auto result = threaded_train(proto, split.train, cfg);
  EXPECT_LE(result.max_clock_gap, kSspBound);
  EXPECT_EQ(result.total_updates, 30 * static_cast<std::int64_t>(kWorkers));
  for (float p : result.final_params) ASSERT_TRUE(std::isfinite(p));
}

// ---------------------------------------------------------------------------
// Compression x protocol x sharding: BSP/ASP/SSP on real threads with every
// codec, against 1- and 8-shard servers.  The staleness/clock-gap invariants
// must be exactly the ones the uncompressed protocols guarantee.
// ---------------------------------------------------------------------------

struct CodecConfig {
  std::string label;
  CompressionSpec spec;
};

std::vector<CodecConfig> all_codecs() {
  return {{"topk10", CompressionSpec::topk(0.1)},
          {"qsgd4bit", CompressionSpec::qsgd(15)},
          {"terngrad", CompressionSpec::terngrad()}};
}

TEST_P(ThreadedConformance, CompressedBspKeepsZeroStalenessAndExactWireBytes) {
  const DataSplit split = threaded_data();
  const Model proto = threaded_model(split);
  for (const auto& codec : all_codecs()) {
    ThreadedTrainConfig cfg;
    cfg.protocol = Protocol::kBsp;
    cfg.num_workers = kWorkers;
    cfg.steps_per_worker = 15;
    cfg.num_ps_shards = GetParam();
    cfg.compression = codec.spec;
    const auto result = threaded_train(proto, split.train, cfg);
    EXPECT_EQ(result.total_updates, 15) << codec.label;
    EXPECT_DOUBLE_EQ(result.mean_staleness, 0.0) << codec.label;
    EXPECT_EQ(result.max_clock_gap, 0) << codec.label;
    for (float p : result.final_params) ASSERT_TRUE(std::isfinite(p)) << codec.label;
    // Every worker pushes one encoded gradient per round; the codec's wire
    // size is value-independent, so the total is exact.
    const auto bank = codec.spec.make_bank(kWorkers);
    ASSERT_TRUE(bank.has_value());
    const auto per_push =
        static_cast<std::int64_t>(bank->wire_bytes(proto.num_params()));
    EXPECT_EQ(result.push_bytes,
              15 * static_cast<std::int64_t>(kWorkers) * per_push)
        << codec.label;
    EXPECT_LT(result.push_bytes,
              15 * static_cast<std::int64_t>(kWorkers) *
                  static_cast<std::int64_t>(proto.num_params() * sizeof(float)))
        << codec.label << " did not shrink the wire";
  }
}

TEST_P(ThreadedConformance, CompressedAspAppliesEveryPush) {
  const DataSplit split = threaded_data();
  const Model proto = threaded_model(split);
  for (const auto& codec : all_codecs()) {
    ThreadedTrainConfig cfg;
    cfg.protocol = Protocol::kAsp;
    cfg.num_workers = kWorkers;
    cfg.steps_per_worker = 20;
    cfg.num_ps_shards = GetParam();
    cfg.compression = codec.spec;
    const auto result = threaded_train(proto, split.train, cfg);
    EXPECT_EQ(result.total_updates, 20 * static_cast<std::int64_t>(kWorkers)) << codec.label;
    EXPECT_GE(result.mean_staleness, 0.0) << codec.label;
    for (float p : result.final_params) ASSERT_TRUE(std::isfinite(p)) << codec.label;
  }
}

TEST_P(ThreadedConformance, CompressedSspHonorsTheClockGapBound) {
  // The SSP parking logic is orthogonal to the push encoding, so the
  // local-clock gap bound must hold unchanged under every codec — including
  // top-k, whose sparse pushes advance only the shards they touch.
  const DataSplit split = threaded_data();
  const Model proto = threaded_model(split);
  for (const auto& codec : all_codecs()) {
    ThreadedTrainConfig cfg;
    cfg.protocol = Protocol::kSsp;
    cfg.num_workers = kWorkers;
    cfg.steps_per_worker = 25;
    cfg.ssp_staleness_bound = kSspBound;
    cfg.num_ps_shards = GetParam();
    cfg.compression = codec.spec;
    cfg.pre_step_hook = [](std::size_t worker, std::int64_t) {
      if (worker == 0) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    };
    const auto result = threaded_train(proto, split.train, cfg);
    EXPECT_LE(result.max_clock_gap, kSspBound) << codec.label;
    EXPECT_EQ(result.total_updates, 25 * static_cast<std::int64_t>(kWorkers)) << codec.label;
    for (float p : result.final_params) ASSERT_TRUE(std::isfinite(p)) << codec.label;
  }
}

TEST(ThreadedConformance, CompressedBspMathIsIndependentOfShardLayout) {
  // BSP aggregates decoded pushes in fixed worker order and applies one
  // dense update, so the whole compressed run is deterministic and the
  // shard layout must not change a single bit of it.
  const DataSplit split = threaded_data();
  const Model proto = threaded_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kBsp;
  cfg.num_workers = kWorkers;
  cfg.steps_per_worker = 12;
  cfg.compression = CompressionSpec::topk(0.1);
  cfg.num_ps_shards = 1;
  const auto flat = threaded_train(proto, split.train, cfg);
  cfg.num_ps_shards = 8;
  const auto sharded = threaded_train(proto, split.train, cfg);
  ASSERT_EQ(flat.final_params.size(), sharded.final_params.size());
  for (std::size_t i = 0; i < flat.final_params.size(); ++i)
    ASSERT_EQ(flat.final_params[i], sharded.final_params[i]) << "param " << i;
  EXPECT_EQ(flat.push_bytes, sharded.push_bytes);
}

TEST(ThreadedConformance, SimSspKeepsTheGapBoundUnderSparseCompression) {
  // Simulator counterpart: SSP with top-k on an 8-shard PS — sparse applies
  // advance only touched shards, and the clock-gap bound must be untouched.
  Fixture fx(8);
  RecordingSink sink;
  CompressorBank bank(std::make_shared<TopKCodec>(0.1), kWorkers, true);
  SimRuntime runtime(ClusterModel(Fixture::cluster_spec(8)), fx.model, fx.eval_model,
                     fx.split.train, fx.eval_set, sink);
  const StragglerSchedule slow({{0, VTime::zero(), VTime::from_minutes(60.0), 5.0}});
  std::vector<int> workers(kWorkers);
  for (std::size_t i = 0; i < kWorkers; ++i) workers[i] = static_cast<int>(i);
  PhaseConfig cfg = fx.phase(Protocol::kSsp, 200);
  cfg.compressor = &bank;
  const PhaseResult r = runtime.run_phase(fx.state, cfg, workers, slow, nullptr);
  EXPECT_EQ(r.steps_done, 200);
  EXPECT_LE(r.max_clock_gap, kSspBound);
  for (const auto& u : sink.updates) ASSERT_GE(u.staleness, 0);
}

// ---------------------------------------------------------------------------
// Switching conformance: the same BSP -> ASP schedule must agree between the
// simulator and the threaded runtime on update counts and per-phase
// staleness invariants.  Step currency differs by design — one threaded
// local step is kWorkers simulator minibatch steps — so a threaded schedule
// of {BSP s, ASP rest} corresponds to a sim schedule of {BSP kWorkers*s,
// ASP rest} over kWorkers x the threaded per-worker budget.
// ---------------------------------------------------------------------------

TEST(SwitchingConformance, SimAndThreadedAgreeOnSwitchedUpdateCounts) {
  // Threaded: 4 workers x 30 local steps, BSP for the first 10.
  const DataSplit split = threaded_data();
  const Model proto = threaded_model(split);
  ThreadedTrainConfig tcfg;
  tcfg.schedule = SwitchSchedule::bsp_to_asp(10);
  tcfg.num_workers = kWorkers;
  tcfg.steps_per_worker = 30;
  const auto threaded = threaded_train(proto, split.train, tcfg);
  ASSERT_EQ(threaded.phases.size(), 2u);

  // Sim: the same plan in minibatch steps (BSP 40 of 120), observed through
  // a recording sink so updates can be attributed to their protocol.
  RecordingSink sink;
  RunRequest req;
  req.workload.arch = ModelArch::kLinear;
  req.workload.data = Fixture::make_spec();
  req.workload.total_steps = 120;
  req.workload.hyper.batch_size = kBatch;
  req.workload.eval_interval = 64;
  req.cluster = Fixture::cluster_spec(1);
  req.policy.schedule = SwitchSchedule::bsp_to_asp(40);
  req.observer = &sink;
  const RunResult sim = TrainingSession(req).run();
  EXPECT_EQ(sim.steps_completed, 120);
  EXPECT_EQ(sim.num_switches, 1);

  std::int64_t sim_bsp_updates = 0, sim_asp_updates = 0;
  for (const auto& u : sink.updates) {
    if (u.protocol == Protocol::kBsp) {
      ++sim_bsp_updates;
      ASSERT_EQ(u.staleness, 0) << "BSP update at step " << u.global_step;
    } else {
      ASSERT_EQ(u.protocol, Protocol::kAsp);
      ++sim_asp_updates;
      ASSERT_GE(u.staleness, 0);
    }
  }
  // Update counts agree phase for phase: 10 aggregated BSP updates, then
  // one update per worker push for the rest.
  EXPECT_EQ(sim_bsp_updates, 10);
  EXPECT_EQ(sim_asp_updates, 80);
  EXPECT_EQ(threaded.phases[0].updates, sim_bsp_updates);
  EXPECT_EQ(threaded.phases[1].updates, sim_asp_updates);
  EXPECT_EQ(threaded.total_updates, sim_bsp_updates + sim_asp_updates);
  // Per-phase staleness bounds agree: synchronous phase exactly zero in
  // both runtimes, async phase non-negative.
  EXPECT_DOUBLE_EQ(threaded.phases[0].mean_staleness, 0.0);
  EXPECT_EQ(threaded.phases[0].max_clock_gap, 0);
  EXPECT_GE(threaded.phases[1].mean_staleness, 0.0);
}

TEST(SwitchingConformance, SspPhaseAfterTheSwitchKeepsTheBoundInBothRuntimes) {
  // Sim: BSP then SSP on the same TrainingState (Fixture::run persists it).
  Fixture fx(8);
  RecordingSink sink;
  const PhaseResult bsp = fx.run(Protocol::kBsp, 40, sink);
  EXPECT_DOUBLE_EQ(bsp.mean_staleness, 0.0);
  EXPECT_EQ(bsp.max_clock_gap, 0);
  const PhaseResult ssp = fx.run(Protocol::kSsp, 80, sink);
  EXPECT_LE(ssp.max_clock_gap, kSspBound);

  // Threads: the same plan as a live schedule, with a real slow worker.
  const DataSplit split = threaded_data();
  const Model proto = threaded_model(split);
  ThreadedTrainConfig cfg;
  cfg.schedule = SwitchSchedule(
      {SwitchPhase{Protocol::kBsp, SwitchTrigger::kStepCount, 10, -1},
       SwitchPhase{Protocol::kSsp, SwitchTrigger::kStepCount, 0, kSspBound}});
  cfg.num_workers = kWorkers;
  cfg.steps_per_worker = 30;
  cfg.num_ps_shards = 8;
  cfg.pre_step_hook = [](std::size_t worker, std::int64_t) {
    if (worker == 0) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  const auto threaded = threaded_train(proto, split.train, cfg);
  ASSERT_EQ(threaded.phases.size(), 2u);
  EXPECT_EQ(threaded.phases[0].max_clock_gap, 0);
  EXPECT_LE(threaded.phases[1].max_clock_gap, kSspBound);
  EXPECT_EQ(threaded.phases[1].updates,
            20 * static_cast<std::int64_t>(kWorkers));
  for (float v : threaded.final_params) ASSERT_TRUE(std::isfinite(v));
}

TEST(SwitchingConformance, ReactiveTriggerTimingIsSurfacedOnBothRuntimes) {
  // PR 4 left an asymmetry: the threaded runtime records where a reactive
  // trigger fired (ThreadedPhaseStats::ended_by_trigger + steps) but the
  // simulator's PhaseResult did not.  Both sides now surface the firing
  // point in their own step currency (global minibatch steps vs per-worker
  // local steps; one BSP round = n sim steps = 1 threaded step).
  //
  // Sim side: a stop predicate standing in for a reactive trigger fires at
  // global step 60; the phase must report kStopRequested AND the step.
  Fixture fx(1);
  RecordingSink sink;
  SimRuntime runtime(ClusterModel(Fixture::cluster_spec(1)), fx.model, fx.eval_model,
                     fx.split.train, fx.eval_set, sink);
  std::vector<int> workers(kWorkers);
  for (std::size_t i = 0; i < kWorkers; ++i) workers[i] = static_cast<int>(i);
  const StopPredicate at_60 = [](VTime, std::int64_t step) { return step >= 60; };
  const PhaseResult fired = runtime.run_phase(fx.state, fx.phase(Protocol::kBsp, 200),
                                              workers, StragglerSchedule(), at_60);
  EXPECT_EQ(fired.end, PhaseEnd::kStopRequested);
  EXPECT_EQ(fired.trigger_step, 60);
  EXPECT_EQ(fired.steps_done, 60);
  // One BSP round advances n sim steps, so the fire point converts to a
  // whole number of threaded rounds — the unit the threaded side reports.
  EXPECT_EQ(fired.trigger_step % static_cast<std::int64_t>(kWorkers), 0);

  // No trigger -> no firing step.
  const PhaseResult ran_out = runtime.run_phase(fx.state, fx.phase(Protocol::kBsp, 40),
                                                workers, StragglerSchedule(), nullptr);
  EXPECT_EQ(ran_out.end, PhaseEnd::kBudgetExhausted);
  EXPECT_EQ(ran_out.trigger_step, -1);

  // Threaded side: the detector-driven switch reports the firing round the
  // same way (this is the field the sim now mirrors).
  const DataSplit split = threaded_data();
  const Model proto = threaded_model(split);
  ThreadedTrainConfig cfg;
  cfg.schedule = SwitchSchedule::reactive(Protocol::kBsp, Protocol::kAsp);
  cfg.num_workers = kWorkers;
  cfg.steps_per_worker = 60;
  cfg.stragglers = StragglerSchedule::permanent(0, 20.0);
  cfg.detector.window_size = 3;
  cfg.detector.consecutive_required = 1;
  const auto threaded = threaded_train(proto, split.train, cfg);
  ASSERT_GE(threaded.phases.size(), 1u);
  EXPECT_TRUE(threaded.phases[0].ended_by_trigger);
  EXPECT_GT(threaded.phases[0].steps, 0);
  EXPECT_LT(threaded.phases[0].steps, 60);
}

TEST(ThreadedConformance, BspMathIsIndependentOfShardLayout) {
  // Threaded BSP aggregates in a fixed worker order, so the whole run is
  // deterministic; the shard layout must not change a single bit of it.
  const DataSplit split = threaded_data();
  const Model proto = threaded_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kBsp;
  cfg.num_workers = kWorkers;
  cfg.steps_per_worker = 15;
  cfg.num_ps_shards = 1;
  const auto flat = threaded_train(proto, split.train, cfg);
  cfg.num_ps_shards = 8;
  const auto sharded = threaded_train(proto, split.train, cfg);
  ASSERT_EQ(flat.final_params.size(), sharded.final_params.size());
  for (std::size_t i = 0; i < flat.final_params.size(); ++i)
    ASSERT_EQ(flat.final_params[i], sharded.final_params[i]) << "param " << i;
}

}  // namespace
}  // namespace ss
