// SweepRunner: parallel-across-configs execution must be bit-identical to
// serial execution (each simulation stays single-threaded and deterministic;
// only the scheduling across requests changes), and the shared run cache must
// stay sound under concurrent writers racing the same key.
#include "core/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/run_cache.h"
#include "determinism_corpus.h"

namespace ss {
namespace {

RunResult sweep_sample_result() {
  RunResult r;
  r.converged = true;
  r.converged_accuracy = 0.921;
  r.final_accuracy = 0.919;
  r.train_time_seconds = 123.5;
  r.steps_completed = 2048;
  r.loss_curve = {{16, 1.5, 2.1}, {32, 3.0, 1.4}};
  r.accuracy_curve = {{64, 6.0, 0.55}};
  return r;
}

/// A cheaper cousin of the determinism corpus: same tiny workload, shorter
/// budget, seeds varied so every entry is a distinct cache key.
std::vector<RunRequest> tiny_grid(std::size_t count) {
  std::vector<RunRequest> requests;
  const Protocol protocols[] = {Protocol::kBsp, Protocol::kAsp, Protocol::kSsp,
                                Protocol::kKAsync};
  for (std::size_t i = 0; i < count; ++i) {
    RunRequest req = corpus_base_request();
    req.workload.total_steps = 48;
    req.policy = SyncSwitchPolicy::pure(protocols[i % std::size(protocols)]);
    req.seed = 1 + i / std::size(protocols);
    requests.push_back(std::move(req));
  }
  return requests;
}

TEST(Sweep, EffectiveJobsClampsSensibly) {
  EXPECT_EQ(SweepRunner({.jobs = 1}).effective_jobs(100), 1u);
  EXPECT_EQ(SweepRunner({.jobs = 8}).effective_jobs(3), 3u);   // never more than work
  EXPECT_EQ(SweepRunner({.jobs = 8}).effective_jobs(100), 8u);
  EXPECT_GE(SweepRunner({.jobs = 0}).effective_jobs(100), 1u);  // hardware default
  EXPECT_EQ(SweepRunner({.jobs = 4}).effective_jobs(0), 1u);
}

TEST(Sweep, EmptySweepIsEmpty) {
  EXPECT_TRUE(SweepRunner().run({}).empty());
}

// The tentpole guarantee: fanning a config grid across a thread pool yields
// byte-for-byte the results of evaluating the same grid serially.  32 tiny
// configs, compared through the exact max_digits10 serialization.
TEST(Sweep, ParallelSweepIsBitIdenticalToSerial) {
  const std::vector<RunRequest> grid = tiny_grid(32);
  const auto serial = SweepRunner({.jobs = 1}).run(grid);
  const auto parallel = SweepRunner({.jobs = 4}).run(grid);
  ASSERT_EQ(serial.size(), grid.size());
  ASSERT_EQ(parallel.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_TRUE(serial[i].error.empty()) << serial[i].error;
    EXPECT_TRUE(parallel[i].error.empty()) << parallel[i].error;
    EXPECT_EQ(serialize_run_result(serial[i].result),
              serialize_run_result(parallel[i].result))
        << "entry " << i << " diverged between serial and parallel execution";
  }
}

// Scenario-engine configs (switching + stragglers + elastic membership) run
// through the same executor unchanged.
TEST(Sweep, ScenarioRequestsSweepDeterministically) {
  std::vector<RunRequest> grid;
  for (std::uint64_t seed = 1; seed <= 6; ++seed)
    grid.push_back(generate_scenario(seed).to_run_request());
  const auto serial = SweepRunner({.jobs = 1}).run(grid);
  const auto parallel = SweepRunner({.jobs = 3}).run(grid);
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_EQ(result_fingerprint(serial[i].result), result_fingerprint(parallel[i].result))
        << "scenario seed " << (i + 1);
}

TEST(Sweep, SharedCacheTurnsSecondSweepIntoAllHits) {
  const std::string dir = ::testing::TempDir() + "/ss_sweep_cache";
  std::filesystem::remove_all(dir);
  const RunCache cache(dir);
  const std::vector<RunRequest> grid = tiny_grid(8);

  SweepRunner runner({.jobs = 4, .cache = &cache});
  const auto cold = runner.run(grid);
  for (const auto& o : cold) EXPECT_FALSE(o.from_cache);

  const auto warm = runner.run(grid);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_TRUE(warm[i].from_cache) << "entry " << i;
    EXPECT_EQ(serialize_run_result(cold[i].result), serialize_run_result(warm[i].result))
        << "cache hit must replay the cold run bit for bit (entry " << i << ")";
  }
}

TEST(Sweep, ThrowingEntryRecordsErrorWithoutAbortingTheSweep) {
  std::vector<RunRequest> grid = tiny_grid(3);
  grid[1].workload.total_steps = 0;  // TrainingSession rejects this
  const auto outcomes = SweepRunner({.jobs = 2}).run(grid);
  EXPECT_TRUE(outcomes[0].error.empty());
  EXPECT_NE(outcomes[1].error.find("total_steps"), std::string::npos) << outcomes[1].error;
  EXPECT_TRUE(outcomes[2].error.empty());
  EXPECT_GT(outcomes[0].result.steps_completed, 0);
  EXPECT_GT(outcomes[2].result.steps_completed, 0);
}

// Regression test for the tmp+atomic-rename store: threads hammering the
// same key concurrently must never expose a torn or half-written entry to a
// racing reader, and must not leave staging files behind.
TEST(Sweep, ConcurrentStoresOfTheSameKeyNeverTearTheEntry) {
  const std::string dir = ::testing::TempDir() + "/ss_sweep_race";
  std::filesystem::remove_all(dir);
  const RunCache cache(dir);
  const RunRequest req = tiny_grid(1)[0];
  const RunResult result = sweep_sample_result();
  const std::string expected = serialize_run_result(result);

  constexpr int kWritersPerSide = 2;
  constexpr int kStoresPerWriter = 200;
  std::atomic<bool> start{false};
  std::atomic<int> torn_reads{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWritersPerSide * 2; ++w) {
    threads.emplace_back([&] {
      while (!start.load()) {}
      for (int i = 0; i < kStoresPerWriter; ++i) cache.store(req, result);
    });
  }
  std::thread reader([&] {
    while (!start.load()) {}
    for (int i = 0; i < 4 * kStoresPerWriter; ++i) {
      const auto loaded = cache.load(req);
      if (!loaded.has_value()) continue;  // before the first rename lands
      if (serialize_run_result(*loaded) != expected) torn_reads.fetch_add(1);
    }
  });
  start.store(true);
  for (auto& t : threads) t.join();
  reader.join();

  EXPECT_EQ(torn_reads.load(), 0) << "a reader saw a partially written cache entry";
  const auto final_load = cache.load(req);
  ASSERT_TRUE(final_load.has_value());
  EXPECT_EQ(serialize_run_result(*final_load), expected);

  // Every tmp staging file must have been renamed or cleaned up.
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ".run") << entry.path();
  }
  EXPECT_EQ(files, 1u);
}

// Duplicate requests inside one parallel sweep are the realistic version of
// the same race: several pool workers miss, run, and store the same key.
TEST(Sweep, DuplicateRequestsRacingTheCacheStayConsistent) {
  const std::string dir = ::testing::TempDir() + "/ss_sweep_dup";
  std::filesystem::remove_all(dir);
  const RunCache cache(dir);
  std::vector<RunRequest> grid(8, tiny_grid(1)[0]);

  const auto outcomes = SweepRunner({.jobs = 4, .cache = &cache}).run(grid);
  const std::string expected = serialize_run_result(outcomes[0].result);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.error.empty()) << o.error;
    EXPECT_EQ(serialize_run_result(o.result), expected);
  }
  const auto loaded = cache.load(grid[0]);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(serialize_run_result(*loaded), expected);
}

}  // namespace
}  // namespace ss
