// Integration: gradient compression inside the simulated PS runtime.
//
// Verifies the two halves of the codec contract end to end: the *network*
// half (compressed pushes shrink wire bytes and, in a network-bound cluster,
// virtual training time) and the *math* half (training on decoded lossy
// gradients still converges).
#include <gtest/gtest.h>

#include <memory>

#include "compress/bank.h"
#include "compress/qsgd.h"
#include "compress/terngrad.h"
#include "compress/topk.h"
#include "data/synthetic.h"
#include "nn/zoo.h"
#include "ps/sim_runtime.h"

namespace ss {
namespace {

struct Fixture {
  explicit Fixture(std::size_t workers, std::uint64_t seed = 5, std::size_t batch = 8)
      : spec(make_spec()),
        split(make_synthetic(spec)),
        eval_set(split.test.head(128)),
        root(seed),
        model([&] {
          Rng init = root.fork(1);
          return make_model(ModelArch::kLinear, spec.feature_dim, spec.num_classes, init);
        }()),
        eval_model(model.clone()),
        state(make_state(workers, batch)),
        schedule(0.05) {}

  static SyntheticSpec make_spec() {
    SyntheticSpec s = SyntheticSpec::cifar10_like();
    s.train_size = 512;
    s.test_size = 256;
    s.num_classes = 4;
    s.feature_dim = 16;
    s.class_separation = 1.2;
    return s;
  }

  TrainingState make_state(std::size_t workers, std::size_t batch) {
    const auto shards = make_shards(split.train.size(), workers);
    std::vector<MinibatchSampler> samplers;
    std::vector<Rng> rngs;
    for (std::size_t w = 0; w < workers; ++w) {
      samplers.emplace_back(shards[w], batch, root.fork(100 + w));
      rngs.push_back(root.fork(200 + w));
    }
    return TrainingState(ParameterServer(model.get_params(), 0.9), std::move(samplers),
                         std::move(rngs));
  }

  /// Network-bound cluster: the full-width push dominates the step time, so
  /// compression has a visible throughput effect.
  static ClusterSpec network_bound(std::size_t workers, std::size_t num_params) {
    ClusterSpec c;
    c.num_workers = workers;
    c.compute_per_batch = VTime::from_ms(2.0);
    c.reference_batch = 8;
    c.compute_jitter_sigma = 0.0;
    c.net_latency = VTime::from_ms(0.5);
    c.payload_bytes = static_cast<double>(num_params) * sizeof(float);
    c.bandwidth_bps = 2e4;  // 20 kB/s: the fp32 transfer dwarfs compute
    c.sync_base = VTime::from_ms(1.0);
    c.sync_quad = VTime::from_ms(0.05);
    c.async_apply = VTime::from_ms(0.1);
    return c;
  }

  PhaseConfig phase(Protocol proto, std::int64_t budget) const {
    PhaseConfig cfg;
    cfg.protocol = proto;
    cfg.step_budget = budget;
    cfg.lr_schedule = &schedule;
    cfg.lr_multiplier = 1.0;
    cfg.per_worker_batch = 8;
    cfg.momentum = 0.9;
    cfg.eval_interval = 0;
    return cfg;
  }

  std::vector<int> workers(std::size_t n) const {
    std::vector<int> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<int>(i);
    return out;
  }

  SyntheticSpec spec;
  DataSplit split;
  Dataset eval_set;
  Rng root;
  Model model;
  Model eval_model;
  TrainingState state;
  ConstantLr schedule;
  StragglerSchedule no_stragglers;
  NullMetricsSink null_sink;
};

TEST(CompressedTraining, PushBytesMatchTheCodec) {
  const std::size_t n = 4;
  Fixture fx(n);
  const std::size_t p = fx.state.ps.num_params();
  SimRuntime runtime(ClusterModel(Fixture::network_bound(n, p)), fx.model, fx.eval_model,
                     fx.split.train, fx.eval_set, fx.null_sink);
  auto codec = std::make_shared<TopKCodec>(0.1);
  CompressorBank bank(codec, n, true);
  PhaseConfig cfg = fx.phase(Protocol::kAsp, 12);
  cfg.compressor = &bank;
  const PhaseResult r =
      runtime.run_phase(fx.state, cfg, fx.workers(n), fx.no_stragglers, nullptr);
  EXPECT_EQ(r.push_bytes, r.steps_done * static_cast<std::int64_t>(codec->wire_bytes(p)));
}

TEST(CompressedTraining, UncompressedPushBytesAreFullWidth) {
  const std::size_t n = 4;
  Fixture fx(n);
  const std::size_t p = fx.state.ps.num_params();
  const ClusterSpec cs = Fixture::network_bound(n, p);
  SimRuntime runtime(ClusterModel(cs), fx.model, fx.eval_model, fx.split.train, fx.eval_set,
                     fx.null_sink);
  const PhaseConfig cfg = fx.phase(Protocol::kAsp, 12);
  const PhaseResult r =
      runtime.run_phase(fx.state, cfg, fx.workers(n), fx.no_stragglers, nullptr);
  EXPECT_EQ(r.push_bytes,
            r.steps_done * static_cast<std::int64_t>(cs.payload_bytes));
}

TEST(CompressedTraining, TopKSpeedsUpNetworkBoundBsp) {
  const std::size_t n = 4;
  const std::int64_t budget = 20 * static_cast<std::int64_t>(n);

  Fixture base(n);
  const std::size_t p = base.state.ps.num_params();
  SimRuntime rt_base(ClusterModel(Fixture::network_bound(n, p)), base.model, base.eval_model,
                     base.split.train, base.eval_set, base.null_sink);
  const PhaseResult uncompressed = rt_base.run_phase(
      base.state, base.phase(Protocol::kBsp, budget), base.workers(n), base.no_stragglers,
      nullptr);

  Fixture fx(n);
  SimRuntime rt(ClusterModel(Fixture::network_bound(n, p)), fx.model, fx.eval_model,
                fx.split.train, fx.eval_set, fx.null_sink);
  CompressorBank bank(std::make_shared<TopKCodec>(0.05), n, true);
  PhaseConfig cfg = fx.phase(Protocol::kBsp, budget);
  cfg.compressor = &bank;
  const PhaseResult compressed =
      rt.run_phase(fx.state, cfg, fx.workers(n), fx.no_stragglers, nullptr);

  ASSERT_EQ(uncompressed.steps_done, compressed.steps_done);
  // The push leg is ~p*4 bytes vs ~5% of that plus the sparse header; the
  // pull leg is unchanged, so expect a substantial but sub-2x speedup.  (On
  // this tiny 68-param model the fixed header is a visible fraction of the
  // push, hence /8 rather than the raw keep ratio.)
  EXPECT_LT(compressed.elapsed.seconds(), 0.75 * uncompressed.elapsed.seconds());
  EXPECT_LT(compressed.push_bytes, uncompressed.push_bytes / 8);
}

struct ConvergenceCase {
  std::string label;
  std::shared_ptr<GradientCodec> codec;
};

class CompressedConvergence : public ::testing::TestWithParam<ConvergenceCase> {};

TEST_P(CompressedConvergence, BspStillLearnsOnLossyGradients) {
  const std::size_t n = 4;
  const std::int64_t budget = 60 * static_cast<std::int64_t>(n);

  Fixture fx(n);
  const std::size_t p = fx.state.ps.num_params();
  SimRuntime rt(ClusterModel(Fixture::network_bound(n, p)), fx.model, fx.eval_model,
                fx.split.train, fx.eval_set, fx.null_sink);
  auto bank = CompressorBank::with_default_feedback(GetParam().codec, n);
  PhaseConfig cfg = fx.phase(Protocol::kBsp, budget);
  cfg.compressor = &bank;
  const PhaseResult r = rt.run_phase(fx.state, cfg, fx.workers(n), fx.no_stragglers, nullptr);
  ASSERT_EQ(r.end, PhaseEnd::kBudgetExhausted);

  fx.eval_model.set_params(fx.state.ps.params());
  const double acc = fx.eval_model.evaluate_accuracy(fx.eval_set);
  // 4 well-separated classes: random is 0.25; trained should be far above.
  EXPECT_GT(acc, 0.6) << "codec " << GetParam().codec->name() << " broke convergence";
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, CompressedConvergence,
    ::testing::Values(ConvergenceCase{"topk10", std::make_shared<TopKCodec>(0.1)},
                      ConvergenceCase{"terngrad", std::make_shared<TernGradCodec>()},
                      ConvergenceCase{"qsgd4bit", std::make_shared<QsgdCodec>(15)}),
    [](const ::testing::TestParamInfo<ConvergenceCase>& info) { return info.param.label; });

TEST(CompressedTraining, KSyncChargesCompressedPushes) {
  const std::size_t n = 4;
  const std::int64_t budget = 12 * 3;

  Fixture base(n);
  const std::size_t p = base.state.ps.num_params();
  SimRuntime rt_base(ClusterModel(Fixture::network_bound(n, p)), base.model, base.eval_model,
                     base.split.train, base.eval_set, base.null_sink);
  PhaseConfig plain = base.phase(Protocol::kKSync, budget);
  plain.k_param = 3;
  const PhaseResult uncompressed =
      rt_base.run_phase(base.state, plain, base.workers(n), base.no_stragglers, nullptr);

  Fixture fx(n);
  SimRuntime rt(ClusterModel(Fixture::network_bound(n, p)), fx.model, fx.eval_model,
                fx.split.train, fx.eval_set, fx.null_sink);
  CompressorBank bank(std::make_shared<TopKCodec>(0.05), n, true);
  PhaseConfig cfg = fx.phase(Protocol::kKSync, budget);
  cfg.k_param = 3;
  cfg.compressor = &bank;
  const PhaseResult compressed =
      rt.run_phase(fx.state, cfg, fx.workers(n), fx.no_stragglers, nullptr);

  ASSERT_EQ(uncompressed.steps_done, compressed.steps_done);
  EXPECT_LT(compressed.elapsed.seconds(), 0.8 * uncompressed.elapsed.seconds());
  EXPECT_LT(compressed.push_bytes, uncompressed.push_bytes / 8);
}

TEST(CompressedTraining, AspWithQsgdStaysFiniteAndLearns) {
  const std::size_t n = 4;
  Fixture fx(n);
  const std::size_t p = fx.state.ps.num_params();
  SimRuntime rt(ClusterModel(Fixture::network_bound(n, p)), fx.model, fx.eval_model,
                fx.split.train, fx.eval_set, fx.null_sink);
  CompressorBank bank(std::make_shared<QsgdCodec>(15), n, false);
  PhaseConfig cfg = fx.phase(Protocol::kAsp, 240);
  cfg.compressor = &bank;
  const PhaseResult r = rt.run_phase(fx.state, cfg, fx.workers(n), fx.no_stragglers, nullptr);
  ASSERT_EQ(r.end, PhaseEnd::kBudgetExhausted);
  fx.eval_model.set_params(fx.state.ps.params());
  EXPECT_GT(fx.eval_model.evaluate_accuracy(fx.eval_set), 0.5);
}

}  // namespace
}  // namespace ss
