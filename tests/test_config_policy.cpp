#include "core/config_policy.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ss {
namespace {

BaseHyper base() {
  BaseHyper h;
  h.batch_size = 128;
  h.learning_rate = 0.1;
  h.momentum = 0.9;
  return h;
}

class ClusterSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ClusterSizeSweep, BspUsesLinearScaling) {
  const std::size_t n = GetParam();
  const auto d = derive_hyper(Protocol::kBsp, n, base(), MomentumPolicy::kBaseline, 256);
  // Paper Section IV-C: BSP batch nB (B per worker), LR n*eta, momentum mu.
  EXPECT_EQ(d.per_worker_batch, 128u);
  EXPECT_DOUBLE_EQ(d.lr_multiplier, static_cast<double>(n));
  EXPECT_DOUBLE_EQ(d.momentum, 0.9);
  EXPECT_FALSE(d.momentum_schedule);
}

TEST_P(ClusterSizeSweep, AspKeepsBaseValues) {
  const std::size_t n = GetParam();
  const auto d = derive_hyper(Protocol::kAsp, n, base(), MomentumPolicy::kBaseline, 256);
  EXPECT_EQ(d.per_worker_batch, 128u);
  EXPECT_DOUBLE_EQ(d.lr_multiplier, 1.0);
  EXPECT_DOUBLE_EQ(d.momentum, 0.9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClusterSizeSweep, ::testing::Values(1u, 2u, 8u, 16u, 64u));

TEST(ConfigPolicy, ZeroAndFixedScaledMomentum) {
  const auto zero = derive_hyper(Protocol::kAsp, 8, base(), MomentumPolicy::kZero, 256);
  EXPECT_DOUBLE_EQ(zero.momentum, 0.0);
  const auto fixed = derive_hyper(Protocol::kAsp, 8, base(), MomentumPolicy::kFixedScaled, 256);
  EXPECT_DOUBLE_EQ(fixed.momentum, 1.0 / 8.0);
}

TEST(ConfigPolicy, NonlinearRampDoublesPerEpochAndCaps) {
  const auto d = derive_hyper(Protocol::kAsp, 8, base(), MomentumPolicy::kNonlinearRamp, 100);
  ASSERT_TRUE(d.momentum_schedule);
  EXPECT_DOUBLE_EQ(d.momentum_schedule(0), 1.0 / 8.0);     // epoch 0: 2^0/n
  EXPECT_DOUBLE_EQ(d.momentum_schedule(100), 2.0 / 8.0);   // epoch 1: 2^1/n
  EXPECT_DOUBLE_EQ(d.momentum_schedule(200), 4.0 / 8.0);   // epoch 2
  EXPECT_DOUBLE_EQ(d.momentum_schedule(300), 0.9);         // capped at mu
  EXPECT_DOUBLE_EQ(d.momentum_schedule(10000), 0.9);
}

TEST(ConfigPolicy, LinearRampGrowsPerEpochAndCaps) {
  const auto d = derive_hyper(Protocol::kAsp, 8, base(), MomentumPolicy::kLinearRamp, 100);
  ASSERT_TRUE(d.momentum_schedule);
  EXPECT_DOUBLE_EQ(d.momentum_schedule(0), 1.0 / 8.0);
  EXPECT_DOUBLE_EQ(d.momentum_schedule(300), 3.0 / 8.0);  // epoch 3: i/n
  EXPECT_DOUBLE_EQ(d.momentum_schedule(700), 7.0 / 8.0);  // epoch 7, below the cap
  EXPECT_DOUBLE_EQ(d.momentum_schedule(800), 0.9);        // epoch 8 -> capped at mu
}

TEST(ConfigPolicy, SspTreatedLikeAsp) {
  const auto d = derive_hyper(Protocol::kSsp, 8, base(), MomentumPolicy::kBaseline, 256);
  EXPECT_DOUBLE_EQ(d.lr_multiplier, 1.0);
}

TEST(ConfigPolicy, RejectsBadArguments) {
  EXPECT_THROW(derive_hyper(Protocol::kBsp, 0, base(), MomentumPolicy::kBaseline, 256),
               ConfigError);
  EXPECT_THROW(derive_hyper(Protocol::kBsp, 8, base(), MomentumPolicy::kBaseline, 0),
               ConfigError);
}

TEST(ConfigPolicy, Names) {
  EXPECT_EQ(momentum_policy_name(MomentumPolicy::kBaseline), "Baseline");
  EXPECT_EQ(momentum_policy_name(MomentumPolicy::kNonlinearRamp), "NonlinearRamp");
}

}  // namespace
}  // namespace ss
