// Pinned determinism corpus: the fixed set of RunRequests whose results are
// recorded as fingerprints and held bit-for-bit across refactors.
//
// The corpus covers all 8 protocols x {1, 8} PS shards x {none, topk}
// compression on the standard tiny workload, plus a batch of generated fuzz
// scenarios (switching + stragglers + elastic membership composed).  The
// fingerprint is a 64-bit FNV-1a hash of the max_digits10 run-result text
// serialization, so it covers every scalar and every curve point exactly.
//
// The expected values live in tests/test_determinism.cpp and were recorded
// from the serial (pre-DES-core) engine; `tools/record_determinism_corpus`
// re-prints the table when a deliberate semantic change needs new pins.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/run_cache.h"
#include "core/session.h"
#include "ps/protocol.h"
#include "scenario/generator.h"

namespace ss {

struct CorpusCase {
  std::string name;
  RunRequest request;
};

/// The tiny linear-model workload every corpus case runs (mirrors the
/// determinism suite's tiny_request, shortened to 128 steps).
inline RunRequest corpus_base_request() {
  RunRequest req;
  req.workload.arch = ModelArch::kLinear;
  req.workload.data = SyntheticSpec::cifar10_like();
  req.workload.data.num_classes = 3;
  req.workload.data.feature_dim = 16;
  req.workload.data.train_size = 1024;
  req.workload.data.test_size = 512;
  req.workload.data.class_separation = 1.2;
  req.workload.total_steps = 128;
  req.workload.hyper.batch_size = 16;
  req.workload.hyper.learning_rate = 0.05;
  req.workload.hyper.momentum = 0.9;
  req.workload.eval_interval = 32;

  req.cluster.num_workers = 4;
  req.cluster.compute_per_batch = VTime::from_ms(20.0);
  req.cluster.reference_batch = 16;
  req.cluster.compute_jitter_sigma = 0.1;
  req.cluster.net_latency = VTime::from_ms(1.0);
  req.cluster.payload_bytes = 1000.0;
  req.cluster.bandwidth_bps = 1e8;
  req.cluster.sync_base = VTime::from_ms(20.0);
  req.cluster.sync_quad = VTime::from_ms(0.5);
  req.actuator_time_scale = 0.01;
  req.seed = 1;
  return req;
}

/// All 8 protocols x {1, 8} shards x {none, topk(5%)} plus 6 generated fuzz
/// scenarios — 38 cases, each a few tens of milliseconds.
inline std::vector<CorpusCase> determinism_corpus() {
  std::vector<CorpusCase> cases;
  const Protocol protocols[] = {Protocol::kBsp,        Protocol::kAsp,
                                Protocol::kSsp,        Protocol::kDssp,
                                Protocol::kKSync,      Protocol::kKBatchSync,
                                Protocol::kKAsync,     Protocol::kKBatchAsync};
  for (Protocol proto : protocols) {
    for (std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
      for (bool topk : {false, true}) {
        RunRequest req = corpus_base_request();
        req.policy = SyncSwitchPolicy::pure(proto);
        req.policy.k_param = 3;  // exercises the K-protocols' cancellation
        req.cluster.num_ps_shards = shards;
        if (topk) req.compression = CompressionSpec::topk(0.05);
        std::string name = std::string(protocol_name(proto)) + "/s" +
                           std::to_string(shards) + (topk ? "/topk" : "/none");
        cases.push_back({std::move(name), std::move(req)});
      }
    }
  }
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    CorpusCase c;
    c.name = "scenario/seed" + std::to_string(seed);
    c.request = generate_scenario(seed).to_run_request();
    cases.push_back(std::move(c));
  }
  return cases;
}

/// 64-bit FNV-1a over the exact (max_digits10) text serialization: every
/// scalar and curve point of the result contributes every bit.
inline std::string result_fingerprint(const RunResult& result) {
  const std::string text = serialize_run_result(result);
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace ss
