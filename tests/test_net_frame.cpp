#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/error.h"

namespace ss {
namespace {

// ---------------------------------------------------------------------------
// Round trips: every message type encodes to a frame whose payload decodes
// back to an equal value.  Fields use distinct, non-default values so a
// swapped or skipped field cannot round-trip by accident.
// ---------------------------------------------------------------------------

TEST(NetFrame, FrameEnvelopeRoundTrips) {
  Frame f;
  f.type = MsgType::kPushDense;
  f.payload = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> bytes = encode_frame(f);
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes + f.payload.size());
  const Frame back = decode_frame(bytes);
  EXPECT_EQ(back.type, f.type);
  EXPECT_EQ(back.payload, f.payload);
}

TEST(NetFrame, EmptyPayloadFrameRoundTrips) {
  const std::vector<std::uint8_t> bytes = encode_frame(make_empty_frame(MsgType::kBye));
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes);
  const Frame back = decode_frame(bytes);
  EXPECT_EQ(back.type, MsgType::kBye);
  EXPECT_TRUE(back.payload.empty());
}

TEST(NetFrame, HelloRoundTrips) {
  HelloMsg m;
  m.protocol_version = 7;
  const Frame f = m.encode();
  EXPECT_EQ(f.type, MsgType::kHello);
  EXPECT_EQ(HelloMsg::decode(f.payload).protocol_version, 7);
}

TEST(NetFrame, AssignmentRoundTrips) {
  AssignmentMsg m;
  m.worker = 3;
  m.num_workers = 5;
  m.num_params = 1234;
  m.num_shards = 4;
  m.steps_per_worker = 777;
  m.batch_size = 48;
  m.lr = 0.125;
  m.momentum = 0.875;
  m.seed = 424242;
  m.arch = ModelArch::kResNet32Lite;
  m.compression = CompressionSpec::topk(0.05);
  m.data = SyntheticSpec::cifar100_like();
  const Frame f = m.encode();
  EXPECT_EQ(f.type, MsgType::kAssignment);
  const AssignmentMsg b = AssignmentMsg::decode(f.payload);
  EXPECT_EQ(b.worker, m.worker);
  EXPECT_EQ(b.num_workers, m.num_workers);
  EXPECT_EQ(b.num_params, m.num_params);
  EXPECT_EQ(b.num_shards, m.num_shards);
  EXPECT_EQ(b.steps_per_worker, m.steps_per_worker);
  EXPECT_EQ(b.batch_size, m.batch_size);
  EXPECT_DOUBLE_EQ(b.lr, m.lr);
  EXPECT_DOUBLE_EQ(b.momentum, m.momentum);
  EXPECT_EQ(b.seed, m.seed);
  EXPECT_EQ(b.arch, m.arch);
  EXPECT_EQ(b.compression.kind, CodecKind::kTopK);
  EXPECT_DOUBLE_EQ(b.compression.topk_fraction, 0.05);
  EXPECT_EQ(b.data.num_classes, m.data.num_classes);
  EXPECT_EQ(b.data.feature_dim, m.data.feature_dim);
  EXPECT_EQ(b.data.train_size, m.data.train_size);
  EXPECT_EQ(b.data.test_size, m.data.test_size);
  EXPECT_EQ(b.data.modes_per_class, m.data.modes_per_class);
  EXPECT_DOUBLE_EQ(b.data.class_separation, m.data.class_separation);
  EXPECT_DOUBLE_EQ(b.data.within_stddev, m.data.within_stddev);
  EXPECT_DOUBLE_EQ(b.data.label_noise, m.data.label_noise);
  EXPECT_EQ(b.data.seed, m.data.seed);
}

TEST(NetFrame, PullReplyRoundTrips) {
  PullReplyMsg m;
  m.versions = {5, 6, 7};
  m.params = {1.5f, -2.5f, 0.0f, 99.0f};
  const Frame f = m.encode();
  EXPECT_EQ(f.type, MsgType::kPullReply);
  const PullReplyMsg b = PullReplyMsg::decode(f.payload);
  EXPECT_EQ(b.versions, m.versions);
  EXPECT_EQ(b.params, m.params);
}

TEST(NetFrame, PushDenseRoundTrips) {
  PushDenseMsg m;
  m.lr = 0.03;
  m.pull_versions = {9, 9};
  m.grad = {0.25f, -0.5f, 1.0f};
  const Frame f = m.encode();
  EXPECT_EQ(f.type, MsgType::kPushDense);
  const PushDenseMsg b = PushDenseMsg::decode(f.payload);
  EXPECT_DOUBLE_EQ(b.lr, m.lr);
  EXPECT_EQ(b.pull_versions, m.pull_versions);
  EXPECT_EQ(b.grad, m.grad);
}

TEST(NetFrame, PushCompressedDenseRoundTrips) {
  PushCompressedMsg m;
  m.lr = 0.02;
  m.pull_versions = {3};
  m.push.format = CompressedPush::Format::kDense;
  m.push.num_params = 4;
  m.push.wire_size = 6;
  m.push.values = {1.0f, 0.0f, -1.0f, 2.0f};
  const Frame f = m.encode();
  EXPECT_EQ(f.type, MsgType::kPushCompressed);
  const PushCompressedMsg b = PushCompressedMsg::decode(f.payload);
  EXPECT_DOUBLE_EQ(b.lr, m.lr);
  EXPECT_EQ(b.pull_versions, m.pull_versions);
  EXPECT_EQ(b.push.format, CompressedPush::Format::kDense);
  EXPECT_EQ(b.push.num_params, 4u);
  EXPECT_EQ(b.push.wire_size, 6u);
  EXPECT_EQ(b.push.values, m.push.values);
}

TEST(NetFrame, PushCompressedSparseRoundTrips) {
  PushCompressedMsg m;
  m.lr = 0.01;
  m.pull_versions = {1, 2};
  m.push.format = CompressedPush::Format::kSparse;
  m.push.num_params = 100;
  m.push.wire_size = 16;
  m.push.values = {0.5f, -0.5f};
  m.push.indices = {7, 42};
  const PushCompressedMsg b = PushCompressedMsg::decode(m.encode().payload);
  EXPECT_EQ(b.push.format, CompressedPush::Format::kSparse);
  EXPECT_EQ(b.push.indices, m.push.indices);
  EXPECT_EQ(b.push.values, m.push.values);
}

TEST(NetFrame, SmallMessagesRoundTrip) {
  PushReplyMsg pr;
  pr.staleness = -3;
  EXPECT_EQ(PushReplyMsg::decode(pr.encode().payload).staleness, -3);

  DrainArriveMsg da;
  da.local_steps = 512;
  EXPECT_EQ(DrainArriveMsg::decode(da.encode().payload).local_steps, 512);

  DrainReleaseMsg dr;
  dr.done = false;
  EXPECT_FALSE(DrainReleaseMsg::decode(dr.encode().payload).done);

  CheckpointRequestMsg cr;
  cr.logical_step = 4096;
  EXPECT_EQ(CheckpointRequestMsg::decode(cr.encode().payload).logical_step, 4096);

  VersionReplyMsg vr;
  vr.version = 1 << 20;
  EXPECT_EQ(VersionReplyMsg::decode(vr.encode().payload).version, 1 << 20);

  ErrorMsg em;
  em.message = "shard layout mismatch";
  EXPECT_EQ(ErrorMsg::decode(em.encode().payload).message, em.message);
}

// ---------------------------------------------------------------------------
// Malformed frames: every corruption decodes to a typed NetError whose
// message names the failure — never a crash, never a silently-wrong value.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> valid_frame_bytes() {
  PushReplyMsg m;
  m.staleness = 1;
  return encode_frame(m.encode());
}

struct MalformedCase {
  const char* name;
  std::vector<std::uint8_t> bytes;
  const char* expect_substr;
};

std::vector<MalformedCase> malformed_cases() {
  std::vector<MalformedCase> cases;

  {
    std::vector<std::uint8_t> b = valid_frame_bytes();
    b.resize(kFrameHeaderBytes - 3);  // header cut short
    cases.push_back({"truncated_header", std::move(b), "truncated header"});
  }
  {
    std::vector<std::uint8_t> b = valid_frame_bytes();
    b[0] ^= 0xFF;  // corrupt magic
    cases.push_back({"bad_magic", std::move(b), "bad magic"});
  }
  {
    std::vector<std::uint8_t> b = valid_frame_bytes();
    b[4] = 0x2A;  // protocol version 42
    cases.push_back({"bad_version", std::move(b), "unsupported protocol version"});
  }
  {
    std::vector<std::uint8_t> b = valid_frame_bytes();
    b[6] = 0xEE;  // type 0xEE: past kError
    cases.push_back({"unknown_type", std::move(b), "unknown message type"});
  }
  {
    std::vector<std::uint8_t> b = valid_frame_bytes();
    b[6] = 0;  // type 0: below kHello
    cases.push_back({"zero_type", std::move(b), "unknown message type"});
  }
  {
    std::vector<std::uint8_t> b = valid_frame_bytes();
    const std::uint64_t huge = kMaxFramePayload + 1;
    std::memcpy(b.data() + 8, &huge, sizeof(huge));  // length past the cap
    cases.push_back({"length_overflow", std::move(b), "exceeds"});
  }
  {
    std::vector<std::uint8_t> b = valid_frame_bytes();
    b.pop_back();  // payload shorter than the header claims
    cases.push_back({"truncated_payload", std::move(b), "truncated payload"});
  }
  {
    std::vector<std::uint8_t> b = valid_frame_bytes();
    b.push_back(0xAB);  // payload longer than the header claims
    cases.push_back({"overlong_payload", std::move(b), "trailing bytes"});
  }
  return cases;
}

TEST(NetFrame, MalformedFramesThrowTypedErrors) {
  for (const MalformedCase& c : malformed_cases()) {
    try {
      (void)decode_frame(c.bytes);
      FAIL() << c.name << ": decoded without error";
    } catch (const NetError& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect_substr), std::string::npos)
          << c.name << ": got '" << e.what() << "'";
    }
  }
}

struct MalformedPayloadCase {
  const char* name;
  Frame frame;
  const char* expect_substr;
};

TEST(NetFrame, MalformedPayloadsThrowTypedErrors) {
  std::vector<MalformedPayloadCase> cases;

  {
    // Vector count claims more elements than bytes present: must be caught
    // before the resize, not by reading past the buffer.
    PullReplyMsg m;
    m.versions = {1};
    m.params = {1.0f, 2.0f};
    Frame f = m.encode();
    const std::uint64_t lie = 1u << 20;
    std::memcpy(f.payload.data() + 0, &lie, sizeof(lie));  // versions count
    cases.push_back({"vector_count_lie", std::move(f), "truncated payload"});
  }
  {
    PushDenseMsg m;
    m.pull_versions = {1};
    m.grad = {1.0f};
    Frame f = m.encode();
    f.payload.push_back(0);  // one byte of trailing junk after the last vec
    cases.push_back({"payload_trailing_bytes", std::move(f), "trailing bytes"});
  }
  {
    PushDenseMsg m;
    m.pull_versions.clear();  // staleness accounting needs >= 1 shard version
    m.grad = {1.0f};
    cases.push_back({"empty_version_vector", m.encode(), "empty version vector"});
  }
  {
    PushCompressedMsg m;
    m.pull_versions = {1};
    m.push.format = CompressedPush::Format::kSparse;
    m.push.num_params = 10;
    m.push.values = {1.0f, 2.0f};
    m.push.indices = {3, 99};  // 99 out of range for 10 params
    cases.push_back({"sparse_index_out_of_range", m.encode(), "PushCompressed"});
  }
  {
    PushCompressedMsg m;
    m.pull_versions = {1};
    m.push.format = CompressedPush::Format::kSparse;
    m.push.num_params = 10;
    m.push.values = {1.0f, 2.0f};
    m.push.indices = {5, 3};  // violates the strictly-ascending contract
    cases.push_back({"sparse_indices_descending", m.encode(), "PushCompressed"});
  }
  {
    PushCompressedMsg m;
    m.pull_versions = {1};
    m.push.format = CompressedPush::Format::kDense;
    m.push.num_params = 8;
    m.push.values = {1.0f, 2.0f};  // dense push must carry num_params values
    cases.push_back({"dense_length_mismatch", m.encode(), "PushCompressed"});
  }
  {
    Frame f = make_empty_frame(MsgType::kAssignment);
    cases.push_back({"assignment_empty_payload", std::move(f), "truncated payload"});
  }

  for (const MalformedPayloadCase& c : cases) {
    try {
      switch (c.frame.type) {
        case MsgType::kPullReply:
          (void)PullReplyMsg::decode(c.frame.payload);
          break;
        case MsgType::kPushDense:
          (void)PushDenseMsg::decode(c.frame.payload);
          break;
        case MsgType::kPushCompressed:
          (void)PushCompressedMsg::decode(c.frame.payload);
          break;
        case MsgType::kAssignment:
          (void)AssignmentMsg::decode(c.frame.payload);
          break;
        default:
          FAIL() << c.name << ": case table covers no decoder for this type";
      }
      FAIL() << c.name << ": decoded without error";
    } catch (const NetError& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect_substr), std::string::npos)
          << c.name << ": got '" << e.what() << "'";
    }
  }
}

TEST(NetFrame, AssignmentRejectsOutOfRangeEnums) {
  AssignmentMsg m;
  m.worker = 0;
  m.num_workers = 1;
  Frame f = m.encode();
  // arch byte sits right after worker(4) + five u64/i64 fields (40) + two
  // doubles (16) + seed (8) = offset 68.
  Frame bad_arch = f;
  bad_arch.payload[68] = 0x7F;
  EXPECT_THROW((void)AssignmentMsg::decode(bad_arch.payload), NetError);
  Frame bad_codec = f;
  bad_codec.payload[69] = 0x7F;
  EXPECT_THROW((void)AssignmentMsg::decode(bad_codec.payload), NetError);
}

TEST(NetFrame, AssignmentRejectsWorkerSlotOutOfRange) {
  AssignmentMsg m;
  m.worker = 4;
  m.num_workers = 4;  // valid slots are 0..3
  EXPECT_THROW((void)AssignmentMsg::decode(m.encode().payload), NetError);
}

}  // namespace
}  // namespace ss
