// Configuration policy and TrainingSession coverage for the K-variant
// protocol family: hyper-parameter derivation, session-level runs, and
// hybrid policies that mix K protocols with Sync-Switch switching.
#include <gtest/gtest.h>

#include "core/config_policy.h"
#include "core/session.h"

namespace ss {
namespace {

constexpr std::int64_t kStepsPerEpoch = 32;

BaseHyper base_hyper() {
  BaseHyper h;
  h.batch_size = 64;
  h.learning_rate = 0.1;
  h.momentum = 0.9;
  return h;
}

// ----------------------------------------------------------- derive_hyper

TEST(DeriveHyperK, KSyncScalesLearningRateWithK) {
  const auto d = derive_hyper(Protocol::kKSync, 8, base_hyper(), MomentumPolicy::kBaseline,
                              kStepsPerEpoch, 4);
  EXPECT_DOUBLE_EQ(d.lr_multiplier, 4.0);
  EXPECT_DOUBLE_EQ(d.momentum, 0.9);  // synchronous: momentum kept
  EXPECT_EQ(d.per_worker_batch, 64u);
}

TEST(DeriveHyperK, KBatchSyncBehavesLikeKSync) {
  const auto a = derive_hyper(Protocol::kKSync, 8, base_hyper(), MomentumPolicy::kBaseline,
                              kStepsPerEpoch, 6);
  const auto b = derive_hyper(Protocol::kKBatchSync, 8, base_hyper(),
                              MomentumPolicy::kBaseline, kStepsPerEpoch, 6);
  EXPECT_DOUBLE_EQ(a.lr_multiplier, b.lr_multiplier);
  EXPECT_DOUBLE_EQ(a.momentum, b.momentum);
}

TEST(DeriveHyperK, DefaultKMeansClusterSize) {
  const auto d = derive_hyper(Protocol::kKSync, 8, base_hyper(), MomentumPolicy::kBaseline,
                              kStepsPerEpoch, 0);
  EXPECT_DOUBLE_EQ(d.lr_multiplier, 8.0);  // K = n: same as BSP's linear scaling
}

TEST(DeriveHyperK, OversizedKClampsToClusterSize) {
  const auto d = derive_hyper(Protocol::kKAsync, 4, base_hyper(), MomentumPolicy::kBaseline,
                              kStepsPerEpoch, 100);
  EXPECT_DOUBLE_EQ(d.lr_multiplier, 4.0);
}

TEST(DeriveHyperK, KAsyncAppliesTheMomentumPolicy) {
  const auto d = derive_hyper(Protocol::kKAsync, 8, base_hyper(), MomentumPolicy::kZero,
                              kStepsPerEpoch, 2);
  EXPECT_DOUBLE_EQ(d.lr_multiplier, 2.0);
  EXPECT_DOUBLE_EQ(d.momentum, 0.0);  // async family: ablation policy applies
}

TEST(DeriveHyperK, AspIsUnaffectedByKParam) {
  const auto d = derive_hyper(Protocol::kAsp, 8, base_hyper(), MomentumPolicy::kBaseline,
                              kStepsPerEpoch, 4);
  EXPECT_DOUBLE_EQ(d.lr_multiplier, 1.0);
}

// -------------------------------------------------------- session support

RunRequest small_request() {
  RunRequest req;
  req.workload.arch = ModelArch::kLinear;
  req.workload.data = SyntheticSpec::cifar10_like();
  req.workload.data.train_size = 512;
  req.workload.data.test_size = 256;
  req.workload.data.num_classes = 4;
  req.workload.data.feature_dim = 16;
  req.workload.data.class_separation = 1.2;
  req.workload.total_steps = 256;
  req.workload.hyper.batch_size = 16;
  req.workload.hyper.learning_rate = 0.05;
  req.workload.eval_interval = 64;
  req.cluster.num_workers = 4;
  req.cluster.compute_per_batch = VTime::from_ms(20.0);
  req.cluster.reference_batch = 16;
  req.cluster.sync_base = VTime::from_ms(10.0);
  req.cluster.sync_quad = VTime::from_ms(0.2);
  req.actuator_time_scale = 0.01;
  return req;
}

TEST(KSession, PureKAsyncTrainsToCompletion) {
  RunRequest req = small_request();
  req.policy = SyncSwitchPolicy::pure(Protocol::kKAsync);
  req.policy.k_param = 2;
  const RunResult r = TrainingSession(req).run();
  ASSERT_FALSE(r.diverged);
  EXPECT_EQ(r.steps_completed, 256);
  EXPECT_GT(r.converged_accuracy, 0.6);
  EXPECT_GT(r.mean_staleness, 0.0);  // async: staleness is real
}

TEST(KSession, PureKSyncTrainsToCompletion) {
  RunRequest req = small_request();
  req.policy = SyncSwitchPolicy::pure(Protocol::kKSync);
  req.policy.k_param = 3;
  const RunResult r = TrainingSession(req).run();
  ASSERT_FALSE(r.diverged);
  EXPECT_GE(r.steps_completed, 256);
  EXPECT_GT(r.converged_accuracy, 0.6);
  EXPECT_EQ(r.mean_staleness, 0.0);  // synchronous rounds
}

TEST(KSession, KSyncToAspHybridSwitches) {
  // Sync-Switch is protocol-agnostic (Section VI preamble): start with
  // K-sync, switch to ASP at 25%.
  RunRequest req = small_request();
  req.policy.first = Protocol::kKSync;
  req.policy.second = Protocol::kAsp;
  req.policy.switch_fraction = 0.25;
  req.policy.k_param = 3;
  const RunResult r = TrainingSession(req).run();
  ASSERT_FALSE(r.diverged);
  EXPECT_EQ(r.num_switches, 1);
  EXPECT_GT(r.converged_accuracy, 0.6);
}

TEST(KSession, CacheKeyCoversK) {
  RunRequest a = small_request();
  a.policy = SyncSwitchPolicy::pure(Protocol::kKAsync);
  a.policy.k_param = 2;
  RunRequest b = a;
  b.policy.k_param = 3;
  EXPECT_NE(a.cache_key(), b.cache_key());
}

TEST(KSession, KSyncWithKEqualNMatchesBspSession) {
  RunRequest bsp = small_request();
  bsp.policy = SyncSwitchPolicy::pure(Protocol::kBsp);
  RunRequest ks = small_request();
  ks.policy = SyncSwitchPolicy::pure(Protocol::kKSync);
  ks.policy.k_param = 4;  // = cluster size

  const RunResult rb = TrainingSession(bsp).run();
  const RunResult rk = TrainingSession(ks).run();
  ASSERT_FALSE(rb.diverged);
  ASSERT_FALSE(rk.diverged);
  // Identical seeds and equivalent protocols: same learned accuracy and
  // identical virtual time.
  EXPECT_DOUBLE_EQ(rb.converged_accuracy, rk.converged_accuracy);
  EXPECT_DOUBLE_EQ(rb.train_time_seconds, rk.train_time_seconds);
}

}  // namespace
}  // namespace ss
