// Permanent-straggler replacement: schedule masking, provisioning model,
// and the kReplace online policy end to end.
#include <gtest/gtest.h>

#include "core/session.h"
#include "sim/actuator.h"
#include "sim/straggler.h"

namespace ss {
namespace {

// -------------------------------------------------- StragglerSchedule::mask_after

TEST(MaskAfter, DropsEpisodesEntirelyAfterTheReplacement) {
  StragglerEvent ev;
  ev.worker = 1;
  ev.start = VTime::from_seconds(50.0);
  ev.duration = VTime::from_seconds(10.0);
  ev.slow_factor = 3.0;
  StragglerSchedule s({ev});
  s.mask_after(1, VTime::from_seconds(20.0));
  EXPECT_EQ(s.events().size(), 0u);
  EXPECT_EQ(s.slow_factor(1, VTime::from_seconds(55.0)), 1.0);
}

TEST(MaskAfter, ClipsOverlappingEpisodeAtTheReplacement) {
  StragglerEvent ev;
  ev.worker = 0;
  ev.start = VTime::from_seconds(10.0);
  ev.duration = VTime::from_seconds(100.0);
  ev.slow_factor = 5.0;
  StragglerSchedule s({ev});
  s.mask_after(0, VTime::from_seconds(30.0));
  ASSERT_EQ(s.events().size(), 1u);
  EXPECT_EQ(s.slow_factor(0, VTime::from_seconds(20.0)), 5.0);   // before: still slow
  EXPECT_EQ(s.slow_factor(0, VTime::from_seconds(31.0)), 1.0);   // after: healthy
}

TEST(MaskAfter, LeavesOtherWorkersAndPastEpisodesAlone) {
  StragglerEvent a;
  a.worker = 0;
  a.start = VTime::from_seconds(0.0);
  a.duration = VTime::from_seconds(5.0);
  a.slow_factor = 2.0;
  StragglerEvent b = a;
  b.worker = 1;
  b.start = VTime::from_seconds(50.0);
  StragglerSchedule s({a, b});
  s.mask_after(0, VTime::from_seconds(100.0));
  // a ended before the mask; b belongs to worker 1: both survive.
  EXPECT_EQ(s.events().size(), 2u);
  EXPECT_EQ(s.slow_factor(1, VTime::from_seconds(52.0)), 2.0);
}

TEST(MaskAfter, PermanentStragglerBecomesHealthy) {
  StragglerSchedule s = StragglerSchedule::permanent(2, 10.0);
  ASSERT_EQ(s.slow_factor(2, VTime::from_minutes(30.0)), 10.0);
  s.mask_after(2, VTime::from_minutes(10.0));
  EXPECT_EQ(s.slow_factor(2, VTime::from_minutes(5.0)), 10.0);
  EXPECT_EQ(s.slow_factor(2, VTime::from_minutes(30.0)), 1.0);
}

// ------------------------------------------------------------ provisioning model

TEST(Provisioning, MatchesThePaperReportedBound) {
  const auto model = ActuatorModel::paper_calibrated(ActuatorExec::kParallel);
  EXPECT_DOUBLE_EQ(model.provision_time().seconds(), 100.0);
  // Provisioning dwarfs a membership resize (it boots a whole VM).
  EXPECT_GT(model.provision_time().seconds(), 10.0 * model.resize_time().seconds());
}

// ------------------------------------------------------- kReplace session policy

RunRequest replace_request(OnlinePolicy online, std::uint64_t seed = 1) {
  RunRequest req;
  req.workload.arch = ModelArch::kLinear;
  req.workload.data = SyntheticSpec::cifar10_like();
  req.workload.data.train_size = 2048;
  req.workload.data.test_size = 512;
  req.workload.data.num_classes = 4;
  req.workload.data.feature_dim = 16;
  req.workload.data.class_separation = 1.2;
  req.workload.total_steps = 512;
  req.workload.hyper.batch_size = 16;
  req.workload.hyper.learning_rate = 0.05;
  req.workload.eval_interval = 64;
  req.cluster.num_workers = 4;
  req.cluster.compute_per_batch = VTime::from_ms(20.0);
  req.cluster.reference_batch = 16;
  req.cluster.sync_base = VTime::from_ms(10.0);
  req.cluster.sync_quad = VTime::from_ms(0.2);
  req.policy = SyncSwitchPolicy::bsp_to_asp(0.5);
  req.policy.online = online;
  // A permanent straggler: one worker slowed for far longer than the run.
  req.stragglers.num_stragglers = 1;
  req.stragglers.occurrences = 1;
  req.stragglers.extra_latency_ms = 30.0;
  req.stragglers.max_duration = VTime::from_minutes(600.0);
  req.stragglers.horizon = VTime::from_seconds(1.0);  // starts ~immediately
  req.actuator_time_scale = 0.01;
  req.seed = seed;
  return req;
}

TEST(ReplacePolicy, RecoversFromAPermanentStraggler) {
  const RunResult baseline = TrainingSession(replace_request(OnlinePolicy::kNone)).run();
  const RunResult replaced = TrainingSession(replace_request(OnlinePolicy::kReplace)).run();

  ASSERT_FALSE(baseline.diverged);
  ASSERT_FALSE(replaced.diverged);
  EXPECT_EQ(replaced.steps_completed, 512);
  // The baseline drags the straggler through the whole BSP phase; replacement
  // evicts it after detection + ~1 s (scaled) provisioning.
  EXPECT_LT(replaced.train_time_seconds, 0.9 * baseline.train_time_seconds);
  // Replacing a worker must not cost meaningful accuracy.
  EXPECT_GT(replaced.converged_accuracy, baseline.converged_accuracy - 0.05);
}

TEST(ReplacePolicy, NoStragglersMeansNoBehaviorChange) {
  RunRequest clean_none = replace_request(OnlinePolicy::kNone);
  clean_none.stragglers = StragglerScenario{};
  RunRequest clean_replace = replace_request(OnlinePolicy::kReplace);
  clean_replace.stragglers = StragglerScenario{};

  const RunResult a = TrainingSession(clean_none).run();
  const RunResult b = TrainingSession(clean_replace).run();
  ASSERT_FALSE(a.diverged);
  ASSERT_FALSE(b.diverged);
  // With zero stragglers the session takes the offline path in both cases
  // (the kReplace branch is gated on a straggler scenario being present).
  EXPECT_EQ(a.steps_completed, b.steps_completed);
  EXPECT_DOUBLE_EQ(a.converged_accuracy, b.converged_accuracy);
  EXPECT_DOUBLE_EQ(a.train_time_seconds, b.train_time_seconds);
}

TEST(ReplacePolicy, WorksUnderPureBspToo) {
  RunRequest req = replace_request(OnlinePolicy::kReplace);
  req.policy = SyncSwitchPolicy::pure(Protocol::kBsp);
  req.policy.online = OnlinePolicy::kReplace;
  const RunResult r = TrainingSession(req).run();
  ASSERT_FALSE(r.diverged);
  // A BSP round advances `active` steps at once, so a shrunken cluster can
  // overshoot the budget by at most one round.
  EXPECT_GE(r.steps_completed, 512);
  EXPECT_LT(r.steps_completed, 512 + 4);

  RunRequest base = replace_request(OnlinePolicy::kNone);
  base.policy = SyncSwitchPolicy::pure(Protocol::kBsp);
  const RunResult rb = TrainingSession(base).run();
  EXPECT_LT(r.train_time_seconds, rb.train_time_seconds);
}

TEST(ReplacePolicy, CacheKeyDistinguishesReplace) {
  const RunRequest a = replace_request(OnlinePolicy::kReplace);
  const RunRequest b = replace_request(OnlinePolicy::kElastic);
  EXPECT_NE(a.cache_key(), b.cache_key());
  EXPECT_NE(a.cache_key().find("Replace"), std::string::npos);
}

}  // namespace
}  // namespace ss
