#include "ps/threaded_runtime.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "common/error.h"
#include "data/synthetic.h"
#include "nn/zoo.h"

namespace ss {
namespace {

DataSplit easy_data() {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_size = 512;
  spec.test_size = 256;
  spec.num_classes = 4;
  spec.feature_dim = 16;
  spec.class_separation = 1.5;
  return make_synthetic(spec);
}

Model proto_model(const DataSplit& split) {
  Rng rng(11);
  return make_model(ModelArch::kLinear, split.train.feature_dim(), 4, rng);
}

TEST(ThreadedRuntime, BspUpdateCountMatchesRounds) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kBsp;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 20;
  const auto result = threaded_train(proto, split.train, cfg);
  EXPECT_EQ(result.total_updates, 20);  // one aggregated update per round
  EXPECT_DOUBLE_EQ(result.mean_staleness, 0.0);
  for (float p : result.final_params) EXPECT_TRUE(std::isfinite(p));
}

TEST(ThreadedRuntime, AspUpdateCountIsWorkerSteps) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kAsp;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 25;
  const auto result = threaded_train(proto, split.train, cfg);
  EXPECT_EQ(result.total_updates, 100);  // every push is an update
  EXPECT_GE(result.mean_staleness, 0.0);
  for (float p : result.final_params) EXPECT_TRUE(std::isfinite(p));
}

TEST(ThreadedRuntime, TrainingImprovesAccuracy) {
  const DataSplit split = easy_data();
  Model proto = proto_model(split);
  const double before = proto.evaluate_accuracy(split.test);
  for (Protocol proto_kind : {Protocol::kBsp, Protocol::kAsp}) {
    ThreadedTrainConfig cfg;
    cfg.protocol = proto_kind;
    cfg.num_workers = 4;
    cfg.steps_per_worker = 60;
    cfg.lr = 0.1;
    const auto result = threaded_train(proto, split.train, cfg);
    Model trained = proto.clone();
    trained.set_params(result.final_params);
    const double after = trained.evaluate_accuracy(split.test);
    EXPECT_GT(after, before + 0.2) << protocol_name(proto_kind);
  }
}

TEST(ThreadedRuntime, SharedPsVersionAndStalenessAreConsistent) {
  SharedParameterServer ps({0.0f, 0.0f}, 0.0);
  std::vector<float> snap(2);
  const std::int64_t v = ps.pull_with_version(snap);
  EXPECT_EQ(v, 0);
  const std::int64_t staleness = ps.push(std::vector<float>{1.0f, 1.0f}, 0.1, v);
  EXPECT_EQ(staleness, 0);
  const std::int64_t staleness2 = ps.push(std::vector<float>{1.0f, 1.0f}, 0.1, v);
  EXPECT_EQ(staleness2, 1);  // one update landed since the pull
  EXPECT_EQ(ps.version(), 2);
}

TEST(ThreadedRuntime, RejectsBadConfig) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.num_workers = 0;
  EXPECT_THROW(threaded_train(proto, split.train, cfg), ConfigError);
}

TEST(ThreadedRuntime, SimulatorOnlyProtocolsAreRejected) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  for (Protocol p : {Protocol::kKSync, Protocol::kKAsync, Protocol::kDssp}) {
    ThreadedTrainConfig cfg;
    cfg.protocol = p;
    cfg.num_workers = 2;
    cfg.steps_per_worker = 4;
    EXPECT_THROW(threaded_train(proto, split.train, cfg), ConfigError) << protocol_name(p);
  }
}

TEST(ThreadedRuntime, SspEnforcesTheStalenessBoundWithRealThreads) {
  // Worker 0 sleeps before every step; without a bound the fast workers run
  // arbitrarily far ahead.  With SSP(2) the observed local-clock gap must
  // never exceed 2 — enforced by real condition-variable parking, not by
  // simulation.
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);

  ThreadedTrainConfig ssp;
  ssp.protocol = Protocol::kSsp;
  ssp.num_workers = 4;
  ssp.steps_per_worker = 30;
  ssp.ssp_staleness_bound = 2;
  ssp.pre_step_hook = [](std::size_t worker, std::int64_t) {
    if (worker == 0) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  const auto bounded = threaded_train(proto, split.train, ssp);
  EXPECT_LE(bounded.max_clock_gap, 2);
  EXPECT_EQ(bounded.total_updates, 120);
  for (float p : bounded.final_params) EXPECT_TRUE(std::isfinite(p));

  ThreadedTrainConfig asp = ssp;
  asp.protocol = Protocol::kAsp;
  const auto unbounded = threaded_train(proto, split.train, asp);
  // The straggler guarantees a visible gap without a bound.
  EXPECT_GT(unbounded.max_clock_gap, 2);
}

TEST(ThreadedRuntime, CompressedTrainingStillImprovesAccuracy) {
  // The full pipeline on real threads: per-worker bank -> CompressedPush ->
  // (sparse) PS apply must still learn, for a biased codec with error
  // feedback (top-k) and an unbiased quantizer (QSGD).
  const DataSplit split = easy_data();
  Model proto = proto_model(split);
  const double before = proto.evaluate_accuracy(split.test);
  for (const auto& spec : {CompressionSpec::topk(0.25), CompressionSpec::qsgd(15)}) {
    for (Protocol proto_kind : {Protocol::kBsp, Protocol::kAsp}) {
      ThreadedTrainConfig cfg;
      cfg.protocol = proto_kind;
      cfg.num_workers = 4;
      cfg.steps_per_worker = 60;
      cfg.lr = 0.1;
      cfg.num_ps_shards = 4;
      cfg.compression = spec;
      const auto result = threaded_train(proto, split.train, cfg);
      Model trained = proto.clone();
      trained.set_params(result.final_params);
      const double after = trained.evaluate_accuracy(split.test);
      EXPECT_GT(after, before + 0.2)
          << protocol_name(proto_kind) << " + " << spec.label();
    }
  }
}

TEST(ThreadedRuntime, CompressionShrinksPushBytes) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kAsp;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 10;
  const auto dense = threaded_train(proto, split.train, cfg);
  cfg.compression = CompressionSpec::topk(0.05);
  const auto sparse = threaded_train(proto, split.train, cfg);
  EXPECT_EQ(dense.push_bytes,
            40 * static_cast<std::int64_t>(proto.num_params() * sizeof(float)));
  EXPECT_LT(sparse.push_bytes, dense.push_bytes / 4);
}

// ---------------------------------------------------------------------------
// Live protocol switching: SwitchSchedule phases execute back to back on the
// same threads and PS, quiescing at the drain barrier between phases.
// ---------------------------------------------------------------------------

TEST(ThreadedRuntime, StepTriggeredSwitchCountsExactly) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.schedule = SwitchSchedule::bsp_to_asp(10);
  cfg.num_workers = 4;
  cfg.steps_per_worker = 30;
  const auto result = threaded_train(proto, split.train, cfg);

  // BSP phase: 10 rounds = 10 aggregated updates.  ASP phase: the remaining
  // 20 local steps per worker push individually = 80 updates.
  ASSERT_EQ(result.phases.size(), 2u);
  const auto& bsp = result.phases[0];
  const auto& asp = result.phases[1];
  EXPECT_EQ(bsp.protocol, Protocol::kBsp);
  EXPECT_EQ(bsp.start_step, 0);
  EXPECT_EQ(bsp.steps, 10);
  EXPECT_EQ(bsp.updates, 10);
  EXPECT_DOUBLE_EQ(bsp.mean_staleness, 0.0);
  EXPECT_EQ(bsp.max_clock_gap, 0);
  EXPECT_FALSE(bsp.ended_by_trigger);
  EXPECT_EQ(asp.protocol, Protocol::kAsp);
  EXPECT_EQ(asp.start_step, 10);
  EXPECT_EQ(asp.steps, 20);
  EXPECT_EQ(asp.updates, 80);
  EXPECT_EQ(result.total_updates, 90);
  EXPECT_EQ(result.push_bytes, bsp.push_bytes + asp.push_bytes);
  // Every gradient crossed the wire exactly once: 30 local steps x 4 workers.
  EXPECT_EQ(result.push_bytes,
            120 * static_cast<std::int64_t>(proto.num_params() * sizeof(float)));
  EXPECT_GT(bsp.wall_seconds, 0.0);
  for (float v : result.final_params) EXPECT_TRUE(std::isfinite(v));
}

TEST(ThreadedRuntime, SwitchedRunStillTrains) {
  const DataSplit split = easy_data();
  Model proto = proto_model(split);
  const double before = proto.evaluate_accuracy(split.test);
  ThreadedTrainConfig cfg;
  cfg.schedule = SwitchSchedule::bsp_to_asp(20);
  cfg.num_workers = 4;
  cfg.steps_per_worker = 60;
  cfg.lr = 0.1;  // derive_phase_lr scales the BSP phase to 4 x 0.1
  cfg.num_ps_shards = 4;
  const auto result = threaded_train(proto, split.train, cfg);
  Model trained = proto.clone();
  trained.set_params(result.final_params);
  EXPECT_GT(trained.evaluate_accuracy(split.test), before + 0.2);
}

TEST(ThreadedRuntime, ThreePhaseScheduleHonorsPerPhaseSspBound) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.schedule = SwitchSchedule(
      {SwitchPhase{Protocol::kBsp, SwitchTrigger::kStepCount, 5, -1},
       SwitchPhase{Protocol::kSsp, SwitchTrigger::kStepCount, 15, /*bound=*/2},
       SwitchPhase{Protocol::kAsp, SwitchTrigger::kStepCount, 0, -1}});
  cfg.num_workers = 4;
  cfg.steps_per_worker = 30;
  cfg.ssp_staleness_bound = 99;  // the phase override must win
  cfg.pre_step_hook = [](std::size_t worker, std::int64_t) {
    if (worker == 0) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  const auto result = threaded_train(proto, split.train, cfg);
  ASSERT_EQ(result.phases.size(), 3u);
  EXPECT_EQ(result.phases[0].updates, 5);
  EXPECT_EQ(result.phases[1].protocol, Protocol::kSsp);
  EXPECT_EQ(result.phases[1].steps, 15);
  EXPECT_EQ(result.phases[1].updates, 60);
  EXPECT_LE(result.phases[1].max_clock_gap, 2);
  EXPECT_EQ(result.phases[2].steps, 10);
  EXPECT_EQ(result.phases[2].updates, 40);
  EXPECT_EQ(result.total_updates, 5 + 60 + 40);
}

TEST(ThreadedRuntime, SwitchedCompressedRunConservesWireAccounting) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.schedule = SwitchSchedule::bsp_to_asp(8);
  cfg.num_workers = 4;
  cfg.steps_per_worker = 16;
  cfg.num_ps_shards = 4;
  cfg.compression = CompressionSpec::topk(0.25);
  const auto result = threaded_train(proto, split.train, cfg);
  ASSERT_EQ(result.phases.size(), 2u);
  EXPECT_EQ(result.total_updates, 8 + 8 * 4);
  EXPECT_EQ(result.push_bytes, result.phases[0].push_bytes + result.phases[1].push_bytes);
  EXPECT_LT(result.push_bytes,
            64 * static_cast<std::int64_t>(proto.num_params() * sizeof(float)));
  for (float v : result.final_params) EXPECT_TRUE(std::isfinite(v));
}

TEST(ThreadedRuntime, ScheduleRejectsSimulatorOnlyProtocols) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.schedule = SwitchSchedule::step_switched({{Protocol::kBsp, 4}, {Protocol::kKAsync, 0}});
  cfg.num_workers = 2;
  cfg.steps_per_worker = 8;
  EXPECT_THROW(threaded_train(proto, split.train, cfg), ConfigError);
}

// ---------------------------------------------------------------------------
// Straggler injection + reactive switching (paper Section VI-B3 on threads).
// ---------------------------------------------------------------------------

TEST(ThreadedRuntime, InjectedStragglerOpensTheAspClockGap) {
  // Worker 0 is slowed 20x by the wall-clock injection hook (it sleeps
  // (factor - 1) x its measured step time); under ASP the healthy workers
  // race ahead, so a visible local-clock gap is guaranteed — and the update
  // count stays exact because injection only delays, never drops, a push.
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kAsp;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 30;
  cfg.stragglers = StragglerSchedule::permanent(0, 20.0);
  const auto result = threaded_train(proto, split.train, cfg);
  EXPECT_EQ(result.total_updates, 120);
  EXPECT_GT(result.max_clock_gap, 2);
  for (float v : result.final_params) EXPECT_TRUE(std::isfinite(v));
}

TEST(ThreadedRuntime, SspBoundHoldsUnderInjectedStraggler) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kSsp;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 30;
  cfg.ssp_staleness_bound = 2;
  cfg.stragglers = StragglerSchedule::permanent(0, 20.0);
  const auto result = threaded_train(proto, split.train, cfg);
  EXPECT_EQ(result.total_updates, 120);
  EXPECT_LE(result.max_clock_gap, 2);
}

TEST(ThreadedRuntime, ReactiveScheduleSwitchesWhenTheDetectorFires) {
  // BSP until the shared detector flags the injected straggler, then ASP for
  // the rest.  Worker 0's steps take ~20x longer (sleep, not CPU), so its
  // throughput collapses relative to the cluster and detection is certain
  // once the windows warm up — after that, the runtime must (a) have
  // switched, (b) have conserved the per-worker step budget across the
  // trigger-latched phase boundary.
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.schedule = SwitchSchedule::reactive(Protocol::kBsp, Protocol::kAsp);
  cfg.num_workers = 4;
  cfg.steps_per_worker = 80;
  cfg.stragglers = StragglerSchedule::permanent(0, 20.0);
  cfg.detector.window_size = 3;
  cfg.detector.consecutive_required = 1;
  const auto result = threaded_train(proto, split.train, cfg);

  ASSERT_EQ(result.phases.size(), 2u);
  const auto& bsp = result.phases[0];
  const auto& asp = result.phases[1];
  EXPECT_EQ(bsp.protocol, Protocol::kBsp);
  EXPECT_TRUE(bsp.ended_by_trigger);
  EXPECT_LT(bsp.steps, 80);  // the switch happened before the budget ran out
  EXPECT_GT(bsp.steps, 0);
  EXPECT_EQ(asp.protocol, Protocol::kAsp);
  EXPECT_EQ(bsp.steps + asp.steps, 80);  // budget conserved across the switch
  EXPECT_EQ(result.total_updates, bsp.updates + asp.updates);
  EXPECT_EQ(asp.updates, 4 * asp.steps);
  for (float v : result.final_params) EXPECT_TRUE(std::isfinite(v));
}

// ---------------------------------------------------------------------------
// Scalar version contract (regression for the pull_with_version min-shard
// under/over-reporting pitfall).
// ---------------------------------------------------------------------------

TEST(ThreadedRuntime, ScalarVersionIsConservativeUnderSparsePushes) {
  // Two shards of two params each.  A sparse push to shard 0 makes the
  // shard versions diverge: [1, 0].
  SharedParameterServer ps({0.0f, 0.0f, 0.0f, 0.0f}, 0.0, /*num_shards=*/2);
  CompressedPush sparse;
  sparse.format = CompressedPush::Format::kSparse;
  sparse.num_params = 4;
  sparse.wire_size = 8;
  sparse.indices = {0};
  sparse.values = {1.0f};
  std::vector<std::int64_t> fresh(2, 0);
  EXPECT_EQ(ps.push_compressed(sparse, 0.1, fresh), 0);

  // The scalar is the *minimum* shard version — the count of complete
  // updates — so it reports 0 even though shard 0 is at version 1.
  std::vector<float> snap(4);
  std::vector<std::int64_t> versions;
  ps.pull_with_versions(snap, versions);
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0], 1);
  EXPECT_EQ(versions[1], 0);
  const std::int64_t scalar = ps.pull_with_version(snap);
  EXPECT_EQ(scalar, 0);

  // No update landed between the pull and these pushes, so true staleness is
  // zero.  The per-shard path reports it exactly; the scalar path measures
  // shard 0 against the min and over-counts by the version spread (1).
  // Conservative (never under-counting) is the documented contract.
  std::vector<float> grad(4, 1.0f);
  EXPECT_EQ(ps.push(grad, 0.1, versions), 0);
  ps.pull_with_versions(snap, versions);
  const std::int64_t scalar2 = ps.pull_with_version(snap);
  EXPECT_EQ(scalar2, 1);  // one complete (dense) update so far
  EXPECT_EQ(ps.push(grad, 0.1, scalar2), 1);      // over-counts by the spread
  EXPECT_EQ(ps.push(grad, 0.1, versions), 1);     // exact: one dense push landed since
}

TEST(ThreadedRuntime, SspStillTrains) {
  const DataSplit split = easy_data();
  Model proto = proto_model(split);
  const double before = proto.evaluate_accuracy(split.test);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kSsp;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 60;
  cfg.lr = 0.1;
  cfg.ssp_staleness_bound = 3;
  const auto result = threaded_train(proto, split.train, cfg);
  Model trained = proto.clone();
  trained.set_params(result.final_params);
  EXPECT_GT(trained.evaluate_accuracy(split.test), before + 0.2);
}

// ---------------------------------------------------------------------------
// Worker-thread exception safety.  An exception escaping a worker body used
// to hit the top of the std::thread and call std::terminate, taking the
// whole process down and leaving peers parked on barriers.  It must instead
// abort the run cleanly: peers drain off their barriers, every thread joins,
// and the first exception rethrows on the calling thread as a catchable
// error.  gtest would report the old behavior as a crash, not a failure, so
// these are genuine regression tests for the terminate path.
// ---------------------------------------------------------------------------

void expect_worker_throw_is_catchable(Protocol protocol) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = protocol;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 40;
  cfg.ssp_staleness_bound = 2;
  // Worker 2 blows up mid-run; the others are mid-step or parked on the
  // round/drain barrier when it happens.
  cfg.pre_step_hook = [](std::size_t worker, std::int64_t step) {
    if (worker == 2 && step == 7) throw std::runtime_error("injected worker fault");
  };
  try {
    threaded_train(proto, split.train, cfg);
    FAIL() << protocol_name(protocol) << ": worker exception was swallowed";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "injected worker fault") << protocol_name(protocol);
  }
  // If any worker were still parked on a barrier, threaded_train could not
  // have returned (it joins every thread before rethrowing) — reaching this
  // line at all proves the abort drained the peers.
}

TEST(ThreadedRuntime, WorkerExceptionIsCatchableUnderBsp) {
  expect_worker_throw_is_catchable(Protocol::kBsp);
}

TEST(ThreadedRuntime, WorkerExceptionIsCatchableUnderAsp) {
  expect_worker_throw_is_catchable(Protocol::kAsp);
}

TEST(ThreadedRuntime, WorkerExceptionIsCatchableUnderSsp) {
  expect_worker_throw_is_catchable(Protocol::kSsp);
}

TEST(ThreadedRuntime, FirstStepExceptionAbortsBeforeAnyUpdate) {
  // Throwing on the very first step exercises the abort path while every
  // peer is still at its first barrier arrival.
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kBsp;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 10;
  cfg.pre_step_hook = [](std::size_t worker, std::int64_t step) {
    if (worker == 0 && step == 0) throw std::runtime_error("first-step fault");
  };
  EXPECT_THROW(threaded_train(proto, split.train, cfg), std::runtime_error);
}

TEST(ThreadedRuntime, RuntimeStaysUsableAfterAbortedRun) {
  // An aborted run must not leak state that poisons the next one: the same
  // config without the fault trains normally afterwards.
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kAsp;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 20;
  ThreadedTrainConfig faulty = cfg;
  faulty.pre_step_hook = [](std::size_t worker, std::int64_t step) {
    if (worker == 1 && step == 3) throw std::runtime_error("fault");
  };
  EXPECT_THROW(threaded_train(proto, split.train, faulty), std::runtime_error);
  const auto result = threaded_train(proto, split.train, cfg);
  EXPECT_EQ(result.total_updates, 80);
  for (float p : result.final_params) EXPECT_TRUE(std::isfinite(p));
}

// ---------------------------------------------------------------------------
// restore_checkpoint input validation: a checkpoint that declares N shards
// but carries a different number of shard versions is internally
// inconsistent and must be rejected up front, not half-applied.
// ---------------------------------------------------------------------------

TEST(ThreadedRuntime, RestoreRejectsInconsistentShardVersions) {
  SharedParameterServer ps(std::vector<float>(8, 0.0f), 0.0, 4);
  Checkpoint ckpt = ps.snapshot_checkpoint(0);
  ASSERT_EQ(ckpt.num_shards, 4u);
  ASSERT_EQ(ckpt.shard_versions.size(), 4u);
  ckpt.shard_versions.pop_back();  // now declares 4 shards, carries 3 versions
  EXPECT_THROW(ps.restore_checkpoint(ckpt), CheckpointError);
}

TEST(ThreadedRuntime, RestoreAcceptsFlatCheckpointIntoShardedLayout) {
  // The documented v1 compat path: a flat (single-shard) checkpoint restores
  // into any shard layout, adopting its scalar version for every shard.
  SharedParameterServer flat(std::vector<float>{1.0f, 2.0f, 3.0f, 4.0f}, 0.0);
  const std::vector<float> grad(4, 1.0f);
  flat.push(grad, 0.5, 0);
  const Checkpoint ckpt = flat.snapshot_checkpoint(1);

  SharedParameterServer sharded(std::vector<float>(4, 0.0f), 0.0, 2);
  sharded.restore_checkpoint(ckpt);
  std::vector<float> params(4);
  sharded.pull(params);
  std::vector<float> expect(4);
  flat.pull(expect);
  EXPECT_EQ(params, expect);
  // Versions never roll back on restore (the recovery-semantics contract):
  // the restored server keeps its own update count.
  EXPECT_EQ(sharded.version(), 0);
}

}  // namespace
}  // namespace ss
