#include "ps/threaded_runtime.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <thread>

#include "common/error.h"
#include "data/synthetic.h"
#include "nn/zoo.h"

namespace ss {
namespace {

DataSplit easy_data() {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_size = 512;
  spec.test_size = 256;
  spec.num_classes = 4;
  spec.feature_dim = 16;
  spec.class_separation = 1.5;
  return make_synthetic(spec);
}

Model proto_model(const DataSplit& split) {
  Rng rng(11);
  return make_model(ModelArch::kLinear, split.train.feature_dim(), 4, rng);
}

TEST(ThreadedRuntime, BspUpdateCountMatchesRounds) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kBsp;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 20;
  const auto result = threaded_train(proto, split.train, cfg);
  EXPECT_EQ(result.total_updates, 20);  // one aggregated update per round
  EXPECT_DOUBLE_EQ(result.mean_staleness, 0.0);
  for (float p : result.final_params) EXPECT_TRUE(std::isfinite(p));
}

TEST(ThreadedRuntime, AspUpdateCountIsWorkerSteps) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kAsp;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 25;
  const auto result = threaded_train(proto, split.train, cfg);
  EXPECT_EQ(result.total_updates, 100);  // every push is an update
  EXPECT_GE(result.mean_staleness, 0.0);
  for (float p : result.final_params) EXPECT_TRUE(std::isfinite(p));
}

TEST(ThreadedRuntime, TrainingImprovesAccuracy) {
  const DataSplit split = easy_data();
  Model proto = proto_model(split);
  const double before = proto.evaluate_accuracy(split.test);
  for (Protocol proto_kind : {Protocol::kBsp, Protocol::kAsp}) {
    ThreadedTrainConfig cfg;
    cfg.protocol = proto_kind;
    cfg.num_workers = 4;
    cfg.steps_per_worker = 60;
    cfg.lr = 0.1;
    const auto result = threaded_train(proto, split.train, cfg);
    Model trained = proto.clone();
    trained.set_params(result.final_params);
    const double after = trained.evaluate_accuracy(split.test);
    EXPECT_GT(after, before + 0.2) << protocol_name(proto_kind);
  }
}

TEST(ThreadedRuntime, SharedPsVersionAndStalenessAreConsistent) {
  SharedParameterServer ps({0.0f, 0.0f}, 0.0);
  std::vector<float> snap(2);
  const std::int64_t v = ps.pull_with_version(snap);
  EXPECT_EQ(v, 0);
  const std::int64_t staleness = ps.push(std::vector<float>{1.0f, 1.0f}, 0.1, v);
  EXPECT_EQ(staleness, 0);
  const std::int64_t staleness2 = ps.push(std::vector<float>{1.0f, 1.0f}, 0.1, v);
  EXPECT_EQ(staleness2, 1);  // one update landed since the pull
  EXPECT_EQ(ps.version(), 2);
}

TEST(ThreadedRuntime, RejectsBadConfig) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.num_workers = 0;
  EXPECT_THROW(threaded_train(proto, split.train, cfg), ConfigError);
}

TEST(ThreadedRuntime, SimulatorOnlyProtocolsAreRejected) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  for (Protocol p : {Protocol::kKSync, Protocol::kKAsync, Protocol::kDssp}) {
    ThreadedTrainConfig cfg;
    cfg.protocol = p;
    cfg.num_workers = 2;
    cfg.steps_per_worker = 4;
    EXPECT_THROW(threaded_train(proto, split.train, cfg), ConfigError) << protocol_name(p);
  }
}

TEST(ThreadedRuntime, SspEnforcesTheStalenessBoundWithRealThreads) {
  // Worker 0 sleeps before every step; without a bound the fast workers run
  // arbitrarily far ahead.  With SSP(2) the observed local-clock gap must
  // never exceed 2 — enforced by real condition-variable parking, not by
  // simulation.
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);

  ThreadedTrainConfig ssp;
  ssp.protocol = Protocol::kSsp;
  ssp.num_workers = 4;
  ssp.steps_per_worker = 30;
  ssp.ssp_staleness_bound = 2;
  ssp.pre_step_hook = [](std::size_t worker, std::int64_t) {
    if (worker == 0) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  const auto bounded = threaded_train(proto, split.train, ssp);
  EXPECT_LE(bounded.max_clock_gap, 2);
  EXPECT_EQ(bounded.total_updates, 120);
  for (float p : bounded.final_params) EXPECT_TRUE(std::isfinite(p));

  ThreadedTrainConfig asp = ssp;
  asp.protocol = Protocol::kAsp;
  const auto unbounded = threaded_train(proto, split.train, asp);
  // The straggler guarantees a visible gap without a bound.
  EXPECT_GT(unbounded.max_clock_gap, 2);
}

TEST(ThreadedRuntime, CompressedTrainingStillImprovesAccuracy) {
  // The full pipeline on real threads: per-worker bank -> CompressedPush ->
  // (sparse) PS apply must still learn, for a biased codec with error
  // feedback (top-k) and an unbiased quantizer (QSGD).
  const DataSplit split = easy_data();
  Model proto = proto_model(split);
  const double before = proto.evaluate_accuracy(split.test);
  for (const auto& spec : {CompressionSpec::topk(0.25), CompressionSpec::qsgd(15)}) {
    for (Protocol proto_kind : {Protocol::kBsp, Protocol::kAsp}) {
      ThreadedTrainConfig cfg;
      cfg.protocol = proto_kind;
      cfg.num_workers = 4;
      cfg.steps_per_worker = 60;
      cfg.lr = 0.1;
      cfg.num_ps_shards = 4;
      cfg.compression = spec;
      const auto result = threaded_train(proto, split.train, cfg);
      Model trained = proto.clone();
      trained.set_params(result.final_params);
      const double after = trained.evaluate_accuracy(split.test);
      EXPECT_GT(after, before + 0.2)
          << protocol_name(proto_kind) << " + " << spec.label();
    }
  }
}

TEST(ThreadedRuntime, CompressionShrinksPushBytes) {
  const DataSplit split = easy_data();
  const Model proto = proto_model(split);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kAsp;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 10;
  const auto dense = threaded_train(proto, split.train, cfg);
  cfg.compression = CompressionSpec::topk(0.05);
  const auto sparse = threaded_train(proto, split.train, cfg);
  EXPECT_EQ(dense.push_bytes,
            40 * static_cast<std::int64_t>(proto.num_params() * sizeof(float)));
  EXPECT_LT(sparse.push_bytes, dense.push_bytes / 4);
}

TEST(ThreadedRuntime, SspStillTrains) {
  const DataSplit split = easy_data();
  Model proto = proto_model(split);
  const double before = proto.evaluate_accuracy(split.test);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kSsp;
  cfg.num_workers = 4;
  cfg.steps_per_worker = 60;
  cfg.lr = 0.1;
  cfg.ssp_staleness_bound = 3;
  const auto result = threaded_train(proto, split.train, cfg);
  Model trained = proto.clone();
  trained.set_params(result.final_params);
  EXPECT_GT(trained.evaluate_accuracy(split.test), before + 0.2);
}

}  // namespace
}  // namespace ss
