#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "compress/bank.h"
#include "compress/codec.h"
#include "compress/qsgd.h"
#include "compress/terngrad.h"
#include "compress/topk.h"

namespace ss {
namespace {

std::vector<float> ramp(std::size_t n, float scale = 1.0f) {
  std::vector<float> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = scale * static_cast<float>(i + 1) * ((i % 2 == 0) ? 1.0f : -1.0f);
  return v;
}

// ---------------------------------------------------------------- Identity

TEST(IdentityCodec, IsANoOpAndChargesFullWidth) {
  IdentityCodec codec;
  Rng rng(1);
  std::vector<float> g = ramp(17);
  const std::vector<float> before = g;
  const std::size_t bytes = codec.transform(g, rng);
  EXPECT_EQ(g, before);
  EXPECT_EQ(bytes, 17 * sizeof(float));
  EXPECT_EQ(codec.wire_bytes(17), 17 * sizeof(float));
  EXPECT_TRUE(codec.unbiased());
}

// ------------------------------------------------------------------- TopK

TEST(TopK, RejectsBadFraction) {
  EXPECT_THROW(TopKCodec(0.0), ConfigError);
  EXPECT_THROW(TopKCodec(-0.5), ConfigError);
  EXPECT_THROW(TopKCodec(1.5), ConfigError);
  EXPECT_NO_THROW(TopKCodec(1.0));
}

TEST(TopK, KeepsExactlyTheLargestMagnitudes) {
  TopKCodec codec(0.25);
  Rng rng(1);
  // Magnitudes 1..8; top-2 are the entries with values -8 and 7.
  std::vector<float> g = {1.0f, -2.0f, 3.0f, -4.0f, 5.0f, -6.0f, 7.0f, -8.0f};
  codec.transform(g, rng);
  const std::vector<float> want = {0, 0, 0, 0, 0, 0, 7.0f, -8.0f};
  EXPECT_EQ(g, want);
}

TEST(TopK, AlwaysKeepsAtLeastOneCoordinate) {
  TopKCodec codec(0.001);
  Rng rng(1);
  std::vector<float> g = {0.5f, -2.0f, 1.0f};
  codec.transform(g, rng);
  EXPECT_EQ(codec.kept(3), 1u);
  const std::vector<float> want = {0.0f, -2.0f, 0.0f};
  EXPECT_EQ(g, want);
}

TEST(TopK, FullFractionKeepsEverything) {
  TopKCodec codec(1.0);
  Rng rng(1);
  std::vector<float> g = ramp(9);
  const std::vector<float> before = g;
  codec.transform(g, rng);
  EXPECT_EQ(g, before);
}

TEST(TopK, TieBreakIsDeterministicLowestIndexWins) {
  TopKCodec codec(0.5);
  Rng rng(1);
  std::vector<float> g = {2.0f, -2.0f, 2.0f, -2.0f};  // all same magnitude
  codec.transform(g, rng);
  const std::vector<float> want = {2.0f, -2.0f, 0.0f, 0.0f};
  EXPECT_EQ(g, want);
}

TEST(TopK, WireBytesCountIndexValuePairsPlusHeader) {
  TopKCodec codec(0.1);
  EXPECT_EQ(codec.kept(1000), 100u);
  EXPECT_EQ(codec.wire_bytes(1000), 100u * 8u + TopKCodec::kHeaderBytes);
  // Far smaller than fp32.
  EXPECT_LT(codec.wire_bytes(1000), 1000 * sizeof(float));
  EXPECT_FALSE(codec.unbiased());
  EXPECT_EQ(codec.name(), "topk(10%)");
}

// --------------------------------------------------------------- TernGrad

TEST(TernGrad, OutputsAreTernary) {
  TernGradCodec codec(/*clip_sigma=*/0.0);
  Rng rng(7);
  std::vector<float> g = ramp(256, 0.01f);
  float scale = 0.0f;
  for (float v : g) scale = std::max(scale, std::fabs(v));
  codec.transform(g, rng);
  for (float v : g) {
    EXPECT_TRUE(v == 0.0f || std::fabs(std::fabs(v) - scale) < 1e-6f)
        << "non-ternary value " << v << " (scale " << scale << ")";
  }
}

TEST(TernGrad, ZeroGradientStaysZero) {
  TernGradCodec codec;
  Rng rng(7);
  std::vector<float> g(64, 0.0f);
  codec.transform(g, rng);
  for (float v : g) EXPECT_EQ(v, 0.0f);
}

TEST(TernGrad, IsUnbiasedInExpectation) {
  TernGradCodec codec(/*clip_sigma=*/0.0);
  Rng rng(42);
  const std::vector<float> g = {0.8f, -0.4f, 0.2f, -0.1f};
  std::vector<double> mean(g.size(), 0.0);
  const int reps = 20000;
  for (int r = 0; r < reps; ++r) {
    std::vector<float> copy = g;
    codec.transform(copy, rng);
    for (std::size_t i = 0; i < g.size(); ++i) mean[i] += copy[i];
  }
  for (std::size_t i = 0; i < g.size(); ++i) {
    mean[i] /= reps;
    EXPECT_NEAR(mean[i], g[i], 0.02) << "coordinate " << i;
  }
}

TEST(TernGrad, ClippingBoundsTheScale) {
  // One huge outlier: with clipping the ternary scale must be far below it.
  TernGradCodec clipped(/*clip_sigma=*/2.0);
  Rng rng(3);
  std::vector<float> g(128, 0.01f);
  g[0] = 100.0f;
  clipped.transform(g, rng);
  float scale = 0.0f;
  for (float v : g) scale = std::max(scale, std::fabs(v));
  EXPECT_LT(scale, 50.0f);
}

TEST(TernGrad, WireBytesAreTwoBitsPerCoord) {
  TernGradCodec codec;
  EXPECT_EQ(codec.wire_bytes(16), 16u * 2u / 8u + 4u);
  EXPECT_EQ(codec.wire_bytes(17), (17u * 2u + 7u) / 8u + 4u);
  EXPECT_TRUE(codec.unbiased());
}

// ------------------------------------------------------------------- QSGD

TEST(Qsgd, RejectsBadLevels) {
  EXPECT_THROW(QsgdCodec(0), ConfigError);
  EXPECT_THROW(QsgdCodec(-4), ConfigError);
  EXPECT_NO_THROW(QsgdCodec(1));
}

TEST(Qsgd, OutputsLieOnTheQuantizationGrid) {
  const int s = 4;
  QsgdCodec codec(s);
  Rng rng(11);
  std::vector<float> g = ramp(64, 0.05f);
  double sq = 0.0;
  for (float v : g) sq += static_cast<double>(v) * v;
  const double norm = std::sqrt(sq);
  codec.transform(g, rng);
  for (float v : g) {
    const double level = std::fabs(v) / norm * s;
    EXPECT_NEAR(level, std::round(level), 1e-4) << "value " << v << " off-grid";
    EXPECT_LE(level, s + 1e-4);
  }
}

TEST(Qsgd, IsUnbiasedInExpectation) {
  QsgdCodec codec(2);
  Rng rng(99);
  const std::vector<float> g = {0.9f, -0.3f, 0.15f, 0.05f};
  std::vector<double> mean(g.size(), 0.0);
  const int reps = 20000;
  for (int r = 0; r < reps; ++r) {
    std::vector<float> copy = g;
    codec.transform(copy, rng);
    for (std::size_t i = 0; i < g.size(); ++i) mean[i] += copy[i];
  }
  for (std::size_t i = 0; i < g.size(); ++i) {
    mean[i] /= reps;
    EXPECT_NEAR(mean[i], g[i], 0.02) << "coordinate " << i;
  }
}

TEST(Qsgd, ZeroGradientStaysZero) {
  QsgdCodec codec(15);
  Rng rng(5);
  std::vector<float> g(32, 0.0f);
  codec.transform(g, rng);
  for (float v : g) EXPECT_EQ(v, 0.0f);
}

TEST(Qsgd, BitsPerCoordMatchesLevels) {
  EXPECT_EQ(QsgdCodec(1).bits_per_coord(), 2);    // sign + 1 bit for {0,1}
  EXPECT_EQ(QsgdCodec(15).bits_per_coord(), 5);   // sign + 4 bits
  EXPECT_EQ(QsgdCodec(255).bits_per_coord(), 9);  // sign + 8 bits
  EXPECT_EQ(QsgdCodec(15).name(), "qsgd(s=15)");
}

TEST(Qsgd, WireBytesShrinkWithCoarserLevels) {
  const std::size_t n = 10000;
  EXPECT_LT(QsgdCodec(3).wire_bytes(n), QsgdCodec(255).wire_bytes(n));
  EXPECT_LT(QsgdCodec(255).wire_bytes(n), n * sizeof(float));
}

// ----------------------------------------------------- Parameterized sweep

struct CodecCase {
  std::string label;
  std::shared_ptr<GradientCodec> codec;
};

class AnyCodec : public ::testing::TestWithParam<CodecCase> {};

TEST_P(AnyCodec, TransformReportsItsOwnWireEstimate) {
  const auto& codec = *GetParam().codec;
  Rng rng(17);
  for (const std::size_t n : {1u, 7u, 64u, 1001u}) {
    std::vector<float> g = ramp(n, 0.01f);
    EXPECT_EQ(codec.transform(g, rng), codec.wire_bytes(n)) << "n=" << n;
  }
}

TEST_P(AnyCodec, OutputsAreFinite) {
  const auto& codec = *GetParam().codec;
  Rng rng(23);
  std::vector<float> g = ramp(513, 100.0f);
  g[0] = 1e30f;
  g[1] = -1e30f;
  codec.transform(g, rng);
  for (float v : g) EXPECT_TRUE(std::isfinite(v));
}

TEST_P(AnyCodec, CompressesBelowFp32ForLargeGradients) {
  const auto& codec = *GetParam().codec;
  if (GetParam().label == "fp32") GTEST_SKIP() << "identity baseline";
  EXPECT_LT(codec.wire_bytes(100000), 100000 * sizeof(float));
}

TEST_P(AnyCodec, DeterministicGivenEqualRngState) {
  const auto& codec = *GetParam().codec;
  std::vector<float> a = ramp(200, 0.3f);
  std::vector<float> b = a;
  Rng r1(77);
  Rng r2(77);
  codec.transform(a, r1);
  codec.transform(b, r2);
  EXPECT_EQ(a, b);
}

TEST_P(AnyCodec, PreservesSigns) {
  const auto& codec = *GetParam().codec;
  Rng rng(31);
  std::vector<float> g = ramp(128, 0.02f);
  const std::vector<float> before = g;
  codec.transform(g, rng);
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (g[i] == 0.0f) continue;
    EXPECT_EQ(std::signbit(g[i]), std::signbit(before[i])) << "coordinate " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, AnyCodec,
    ::testing::Values(CodecCase{"fp32", std::make_shared<IdentityCodec>()},
                      CodecCase{"topk10", std::make_shared<TopKCodec>(0.1)},
                      CodecCase{"topk1", std::make_shared<TopKCodec>(0.01)},
                      CodecCase{"terngrad", std::make_shared<TernGradCodec>()},
                      CodecCase{"qsgd4bit", std::make_shared<QsgdCodec>(15)},
                      CodecCase{"qsgd8bit", std::make_shared<QsgdCodec>(255)}),
    [](const ::testing::TestParamInfo<CodecCase>& info) { return info.param.label; });

// --------------------------------------------------------- CompressorBank

TEST(Bank, ValidatesConstruction) {
  EXPECT_THROW(CompressorBank(nullptr, 4, true), ConfigError);
  EXPECT_THROW(CompressorBank(std::make_shared<IdentityCodec>(), 0, false), ConfigError);
}

TEST(Bank, RejectsOutOfRangeWorker) {
  CompressorBank bank(std::make_shared<IdentityCodec>(), 2, false);
  Rng rng(1);
  std::vector<float> g = ramp(8);
  EXPECT_THROW(bank.transform(-1, g, rng), ConfigError);
  EXPECT_THROW(bank.transform(2, g, rng), ConfigError);
  EXPECT_NO_THROW(bank.transform(1, g, rng));
}

TEST(Bank, DefaultFeedbackTracksCodecBias) {
  auto topk = CompressorBank::with_default_feedback(std::make_shared<TopKCodec>(0.1), 4);
  EXPECT_TRUE(topk.error_feedback());
  auto qsgd = CompressorBank::with_default_feedback(std::make_shared<QsgdCodec>(15), 4);
  EXPECT_FALSE(qsgd.error_feedback());
}

TEST(Bank, ErrorFeedbackEventuallyTransmitsEveryCoordinate) {
  // Feed the same gradient repeatedly through top-k with feedback: the sum
  // of transmitted values must track rounds * gradient (the defining
  // property of error feedback — no coordinate is starved forever).
  const std::size_t n = 20;
  CompressorBank bank(std::make_shared<TopKCodec>(0.1), 1, /*error_feedback=*/true);
  Rng rng(3);
  const std::vector<float> g = ramp(n, 0.1f);
  std::vector<double> transmitted(n, 0.0);
  const int rounds = 400;
  for (int r = 0; r < rounds; ++r) {
    std::vector<float> copy = g;
    bank.transform(0, copy, rng);
    for (std::size_t i = 0; i < n; ++i) transmitted[i] += copy[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double want = static_cast<double>(rounds) * g[i];
    // Residual holds at most a bounded backlog, so the relative error decays.
    EXPECT_NEAR(transmitted[i] / want, 1.0, 0.15) << "coordinate " << i;
  }
}

TEST(Bank, WithoutFeedbackSmallCoordinatesAreStarved) {
  // Control for the test above: no feedback means the smallest coordinate
  // of a static gradient is never transmitted by top-k.
  const std::size_t n = 20;
  CompressorBank bank(std::make_shared<TopKCodec>(0.1), 1, /*error_feedback=*/false);
  Rng rng(3);
  const std::vector<float> g = ramp(n, 0.1f);
  double transmitted_smallest = 0.0;
  for (int r = 0; r < 100; ++r) {
    std::vector<float> copy = g;
    bank.transform(0, copy, rng);
    transmitted_smallest += copy[0];  // |g[0]| is the smallest magnitude
  }
  EXPECT_EQ(transmitted_smallest, 0.0);
}

TEST(Bank, ResidualsAreIsolatedPerWorker) {
  CompressorBank bank(std::make_shared<TopKCodec>(0.5), 2, true);
  Rng rng(9);
  std::vector<float> g = {1.0f, -2.0f, 3.0f, -4.0f};
  bank.transform(0, g, rng);
  EXPECT_GT(bank.residual_l1(0), 0.0);
  EXPECT_EQ(bank.residual_l1(1), 0.0);
}

TEST(Bank, ResetClearsResiduals) {
  CompressorBank bank(std::make_shared<TopKCodec>(0.5), 1, true);
  Rng rng(9);
  std::vector<float> g = {1.0f, -2.0f, 3.0f, -4.0f};
  bank.transform(0, g, rng);
  ASSERT_GT(bank.residual_l1(0), 0.0);
  bank.reset();
  EXPECT_EQ(bank.residual_l1(0), 0.0);
}

TEST(Bank, ResidualIsExactlyTheDroppedMass) {
  CompressorBank bank(std::make_shared<TopKCodec>(0.5), 1, true);
  Rng rng(9);
  std::vector<float> g = {1.0f, -2.0f, 3.0f, -4.0f};  // top-2: 3, -4
  bank.transform(0, g, rng);
  EXPECT_DOUBLE_EQ(bank.residual_l1(0), 3.0);  // |1| + |-2|
}

}  // namespace
}  // namespace ss
