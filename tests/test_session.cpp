#include "core/session.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace ss {
namespace {

/// A fast miniature job: 3-class task, 4 workers, 256 minibatch steps.
/// Runs in well under a second of real time.
RunRequest tiny_request() {
  RunRequest req;
  req.workload.arch = ModelArch::kLinear;
  req.workload.data = SyntheticSpec::cifar10_like();
  req.workload.data.num_classes = 3;
  req.workload.data.feature_dim = 16;
  req.workload.data.train_size = 1024;
  req.workload.data.test_size = 512;
  req.workload.data.class_separation = 1.2;
  req.workload.total_steps = 256;
  req.workload.hyper.batch_size = 16;
  req.workload.hyper.learning_rate = 0.05;
  req.workload.hyper.momentum = 0.9;
  req.workload.eval_interval = 32;

  req.cluster.num_workers = 4;
  req.cluster.compute_per_batch = VTime::from_ms(20.0);
  req.cluster.reference_batch = 16;
  req.cluster.compute_jitter_sigma = 0.1;
  req.cluster.net_latency = VTime::from_ms(1.0);
  req.cluster.payload_bytes = 1000.0;
  req.cluster.bandwidth_bps = 1e8;
  req.cluster.sync_base = VTime::from_ms(20.0);
  req.cluster.sync_quad = VTime::from_ms(0.5);
  req.policy = SyncSwitchPolicy::bsp_to_asp(0.25);
  req.actuator_time_scale = 0.01;
  req.seed = 1;
  return req;
}

TEST(Session, PureBspLearnsTheTask) {
  RunRequest req = tiny_request();
  req.policy = SyncSwitchPolicy::pure(Protocol::kBsp);
  const RunResult r = TrainingSession(req).run();
  EXPECT_FALSE(r.diverged);
  EXPECT_GT(r.converged_accuracy, 0.7);
  EXPECT_EQ(r.num_switches, 0);
  EXPECT_GE(r.steps_completed, 256);
  EXPECT_GT(r.train_time_seconds, 0.0);
  EXPECT_FALSE(r.accuracy_curve.empty());
  EXPECT_FALSE(r.loss_curve.empty());
}

TEST(Session, HybridRunSwitchesExactlyOnce) {
  const RunResult r = TrainingSession(tiny_request()).run();
  EXPECT_FALSE(r.diverged);
  EXPECT_EQ(r.num_switches, 1);
  EXPECT_GT(r.switch_overhead_seconds, 0.0);
  EXPECT_GT(r.mean_staleness, 0.0) << "the ASP phase must contribute staleness";
  EXPECT_GT(r.converged_accuracy, 0.7);
}

TEST(Session, PureAspHasStalenessAndIsFaster) {
  RunRequest bsp = tiny_request();
  bsp.policy = SyncSwitchPolicy::pure(Protocol::kBsp);
  RunRequest asp = tiny_request();
  asp.policy = SyncSwitchPolicy::pure(Protocol::kAsp);
  const RunResult rb = TrainingSession(bsp).run();
  const RunResult ra = TrainingSession(asp).run();
  EXPECT_GT(ra.mean_staleness, 1.0);
  EXPECT_LT(ra.train_time_seconds, rb.train_time_seconds);
  EXPECT_GT(ra.throughput_images_per_sec, rb.throughput_images_per_sec);
}

TEST(Session, DeterministicGivenSeed) {
  const RunResult a = TrainingSession(tiny_request()).run();
  const RunResult b = TrainingSession(tiny_request()).run();
  EXPECT_DOUBLE_EQ(a.converged_accuracy, b.converged_accuracy);
  EXPECT_DOUBLE_EQ(a.train_time_seconds, b.train_time_seconds);
  ASSERT_EQ(a.accuracy_curve.size(), b.accuracy_curve.size());
  for (std::size_t i = 0; i < a.accuracy_curve.size(); ++i)
    EXPECT_DOUBLE_EQ(a.accuracy_curve[i].accuracy, b.accuracy_curve[i].accuracy);
}

TEST(Session, SeedsChangeOutcomes) {
  RunRequest req2 = tiny_request();
  req2.seed = 2;
  const RunResult a = TrainingSession(tiny_request()).run();
  const RunResult b = TrainingSession(req2).run();
  EXPECT_NE(a.train_time_seconds, b.train_time_seconds);
}

TEST(Session, DivergenceIsReportedNotThrown) {
  RunRequest req = tiny_request();
  req.workload.hyper.learning_rate = 1000.0;
  req.workload.divergence_loss_threshold = 5.0;
  req.policy = SyncSwitchPolicy::pure(Protocol::kAsp);
  const RunResult r = TrainingSession(req).run();
  EXPECT_TRUE(r.diverged);
  EXPECT_EQ(r.converged_accuracy, 0.0);
  EXPECT_LT(r.steps_completed, 256);
}

TEST(Session, GreedyPolicyHandlesStragglers) {
  RunRequest req = tiny_request();
  req.workload.total_steps = 512;
  req.policy.online = OnlinePolicy::kGreedy;
  req.policy.detector.window_size = 4;
  req.policy.detector.consecutive_required = 2;
  req.stragglers.num_stragglers = 1;
  req.stragglers.occurrences = 1;
  req.stragglers.extra_latency_ms = 40.0;
  req.stragglers.max_duration = VTime::from_seconds(30.0);
  req.stragglers.horizon = VTime::from_seconds(5.0);
  const RunResult r = TrainingSession(req).run();
  EXPECT_FALSE(r.diverged);
  EXPECT_GE(r.steps_completed, 512);
  // The greedy policy may switch more than the single offline switch.
  EXPECT_GE(r.num_switches, 1);
}

TEST(Session, ElasticPolicyCompletesWorkload) {
  RunRequest req = tiny_request();
  req.workload.total_steps = 512;
  req.policy.online = OnlinePolicy::kElastic;
  req.policy.detector.window_size = 4;
  req.policy.detector.consecutive_required = 2;
  req.stragglers.num_stragglers = 1;
  req.stragglers.occurrences = 2;
  req.stragglers.extra_latency_ms = 40.0;
  req.stragglers.max_duration = VTime::from_seconds(30.0);
  req.stragglers.horizon = VTime::from_seconds(10.0);
  const RunResult r = TrainingSession(req).run();
  EXPECT_FALSE(r.diverged);
  EXPECT_GE(r.steps_completed, 512);
  EXPECT_GT(r.converged_accuracy, 0.6);
}

TEST(Session, ReversedOrderRunsAspFirst) {
  RunRequest req = tiny_request();
  req.policy = SyncSwitchPolicy::asp_to_bsp(0.5);
  const RunResult r = TrainingSession(req).run();
  EXPECT_FALSE(r.diverged);
  EXPECT_EQ(r.num_switches, 1);
  EXPECT_GT(r.mean_staleness, 0.0);
}

TEST(Session, CacheKeyCoversPolicyAndSeed) {
  const RunRequest a = tiny_request();
  RunRequest b = tiny_request();
  b.seed = 99;
  RunRequest c = tiny_request();
  c.policy.switch_fraction = 0.5;
  RunRequest d = tiny_request();
  d.policy.online = OnlinePolicy::kElastic;
  EXPECT_NE(a.cache_key(), b.cache_key());
  EXPECT_NE(a.cache_key(), c.cache_key());
  EXPECT_NE(a.cache_key(), d.cache_key());
  EXPECT_EQ(a.cache_key(), tiny_request().cache_key());
}

TEST(Session, RejectsInvalidRequests) {
  RunRequest bad = tiny_request();
  bad.policy.switch_fraction = 1.5;
  EXPECT_THROW(TrainingSession{bad}, ConfigError);
  bad = tiny_request();
  bad.workload.total_steps = 0;
  EXPECT_THROW(TrainingSession{bad}, ConfigError);
  bad = tiny_request();
  bad.cluster.num_workers = 0;
  EXPECT_THROW(TrainingSession{bad}, ConfigError);
}

TEST(Session, SspProtocolSupported) {
  RunRequest req = tiny_request();
  req.policy.first = Protocol::kSsp;
  req.policy.second = Protocol::kAsp;
  req.policy.ssp_staleness_bound = 2;
  req.policy.switch_fraction = 0.5;
  const RunResult r = TrainingSession(req).run();
  EXPECT_FALSE(r.diverged);
  EXPECT_GE(r.steps_completed, 256);
}

}  // namespace
}  // namespace ss
