#include <gtest/gtest.h>

#include <fstream>
#include <stdexcept>

#include "common/csv.h"
#include "common/table.h"

namespace ss {
namespace {

TEST(Table, FormattersProduceExpectedText) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.1234, 1), "12.3%");
  EXPECT_EQ(Table::ratio(1.87, 2), "1.87X");
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter w({"a", "b"});
  w.add_row({"plain", "with,comma"});
  w.add_row({"with\"quote", "with\nnewline"});
  const std::string out = w.to_string();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Csv, RejectsWrongArity) {
  CsvWriter w({"a"});
  EXPECT_THROW(w.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Csv, WritesFile) {
  CsvWriter w({"x"});
  w.add_row({"1"});
  const std::string path = ::testing::TempDir() + "/ss_test.csv";
  w.write(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
}

TEST(Table, SlugifyMakesFilenameSafeNames) {
  EXPECT_EQ(Table::slugify("design space: accuracy vs throughput"),
            "design-space-accuracy-vs-throughput");
  EXPECT_EQ(Table::slugify("K-variant protocols (setup 1)"), "k-variant-protocols-setup-1");
  EXPECT_EQ(Table::slugify("///"), "table");
  EXPECT_EQ(Table::slugify(""), "table");
}

TEST(Table, PrintExportsCsvWhenEnvVarSet) {
  const std::string dir = ::testing::TempDir();
  ASSERT_EQ(setenv("SS_BENCH_CSV_DIR", dir.c_str(), 1), 0);
  Table t({"col a", "col b"});
  t.add_row({"1", "x,y"});
  t.print("csv export test");
  ASSERT_EQ(unsetenv("SS_BENCH_CSV_DIR"), 0);

  std::ifstream in(dir + "/csv-export-test.csv");
  ASSERT_TRUE(in.good());
  std::string header;
  std::string row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "col a,col b");
  EXPECT_EQ(row, "1,\"x,y\"");
}

TEST(Table, PrintSurvivesUnwritableCsvDir) {
  ASSERT_EQ(setenv("SS_BENCH_CSV_DIR", "/nonexistent_dir_xyz", 1), 0);
  Table t({"a"});
  t.add_row({"1"});
  EXPECT_NO_THROW(t.print("unwritable"));
  ASSERT_EQ(unsetenv("SS_BENCH_CSV_DIR"), 0);
}

}  // namespace
}  // namespace ss
