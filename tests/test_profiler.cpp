#include "core/profiler.h"

#include <gtest/gtest.h>

namespace ss {
namespace {

UpdateObservation update(std::int64_t step, double loss, std::int64_t staleness = 0) {
  UpdateObservation o;
  o.global_step = step;
  o.time = VTime::from_seconds(static_cast<double>(step));
  o.train_loss = loss;
  o.staleness = staleness;
  return o;
}

TEST(Profiler, RecordsLossAtInterval) {
  Profiler p(/*loss_record_interval=*/2);
  for (int i = 1; i <= 10; ++i) p.on_update(update(i, 1.0 / i));
  EXPECT_EQ(p.loss_curve().size(), 5u);
  EXPECT_EQ(p.loss_curve().front().step, 2);
}

TEST(Profiler, ConvergenceRuleNeedsStableWindow) {
  Profiler p;
  // Rising curve: not converged.
  for (int i = 0; i < 8; ++i)
    p.on_eval(i, VTime::from_seconds(i), 0.5 + 0.05 * i);
  EXPECT_FALSE(p.converged_accuracy().has_value());
  // Five stable evals within 0.1%: converged at the plateau value.
  for (int i = 8; i < 13; ++i) p.on_eval(i, VTime::from_seconds(i), 0.9);
  const auto conv = p.converged_accuracy();
  ASSERT_TRUE(conv.has_value());
  EXPECT_DOUBLE_EQ(*conv, 0.9);
}

TEST(Profiler, ConvergencePrefersLatestPlateau) {
  Profiler p;
  // Early plateau at 0.7 (e.g. pre-decay), then a rise to 0.9 plateau.
  for (int i = 0; i < 5; ++i) p.on_eval(i, VTime::from_seconds(i), 0.7);
  for (int i = 5; i < 8; ++i) p.on_eval(i, VTime::from_seconds(i), 0.7 + 0.05 * (i - 4));
  for (int i = 8; i < 13; ++i) p.on_eval(i, VTime::from_seconds(i), 0.9);
  const auto conv = p.converged_accuracy();
  ASSERT_TRUE(conv.has_value());
  EXPECT_DOUBLE_EQ(*conv, 0.9);
}

TEST(Profiler, BestFinalAndTta) {
  Profiler p;
  p.on_eval(1, VTime::from_seconds(10.0), 0.5);
  p.on_eval(2, VTime::from_seconds(20.0), 0.8);
  p.on_eval(3, VTime::from_seconds(30.0), 0.75);
  EXPECT_DOUBLE_EQ(p.best_accuracy(), 0.8);
  EXPECT_DOUBLE_EQ(p.final_accuracy(), 0.75);
  const auto tta = p.time_to_accuracy(0.8);
  ASSERT_TRUE(tta.has_value());
  EXPECT_DOUBLE_EQ(*tta, 20.0);
  EXPECT_FALSE(p.time_to_accuracy(0.95).has_value());
}

TEST(Profiler, TailLossAveragesLastK) {
  Profiler p(1);
  for (int i = 1; i <= 10; ++i) p.on_update(update(i, i));  // losses 1..10
  EXPECT_DOUBLE_EQ(p.tail_loss(4), (7.0 + 8.0 + 9.0 + 10.0) / 4.0);
  EXPECT_DOUBLE_EQ(p.tail_loss(100), 5.5);
}

TEST(Profiler, MeanStalenessAndImages) {
  Profiler p;
  p.on_update(update(1, 1.0, 4));
  p.on_update(update(2, 1.0, 6));
  EXPECT_DOUBLE_EQ(p.mean_staleness(), 5.0);
  TaskObservation t;
  t.worker = 0;
  t.images = 64;
  t.task_duration = VTime::from_ms(10.0);
  p.on_task(t);
  p.on_task(t);
  EXPECT_EQ(p.total_images(), 128u);
}

TEST(Profiler, TeeForwardsEverything) {
  struct Counting final : MetricsSink {
    int tasks = 0, updates = 0, evals = 0;
    void on_task(const TaskObservation&) override { ++tasks; }
    void on_update(const UpdateObservation&) override { ++updates; }
    void on_eval(std::int64_t, VTime, double) override { ++evals; }
  } tee;
  Profiler p;
  p.set_tee(&tee);
  TaskObservation t;
  p.on_task(t);
  p.on_update(update(1, 1.0));
  p.on_eval(1, VTime::zero(), 0.5);
  EXPECT_EQ(tee.tasks, 1);
  EXPECT_EQ(tee.updates, 1);
  EXPECT_EQ(tee.evals, 1);
}

}  // namespace
}  // namespace ss
