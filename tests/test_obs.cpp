#include "obs/obs.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "data/synthetic.h"
#include "nn/zoo.h"
#include "ps/switch_schedule.h"
#include "ps/threaded_runtime.h"

namespace ss {
namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON parser — enough to prove a trace file is well-formed
// and to pull out event fields.  Throws std::runtime_error on any syntax
// error, which is the point: the trace must parse, not merely look plausible.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at byte " + std::to_string(pos_) + ": " + why);
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string_value();
      case 't':
      case 'f':
        return bool_value();
      case 'n':
        return null_value();
      default:
        return number_value();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.object.emplace_back(key.str, value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    expect('"');
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return v;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        v.str += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': v.str += '"'; break;
        case '\\': v.str += '\\'; break;
        case '/': v.str += '/'; break;
        case 'b': v.str += '\b'; break;
        case 'f': v.str += '\f'; break;
        case 'n': v.str += '\n'; break;
        case 'r': v.str += '\r'; break;
        case 't': v.str += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          for (int i = 0; i < 4; ++i)
            if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i])))
              fail("bad \\u escape");
          // Escaped control characters decode losslessly below 0x80; the
          // writer only emits \u00XX, which is all this parser needs.
          v.str += static_cast<char>(std::stoi(s_.substr(pos_, 4), nullptr, 16));
          pos_ += 4;
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue bool_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue null_value() {
    if (s_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return {};
  }

  JsonValue number_value() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Every test owns the process-global obs state; leave it pristine.
class ObsGlobalTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_obs(); }
  void TearDown() override { reset_obs(); }
  static void reset_obs() {
    obs::disable_all();
    obs::metrics().reset();
    obs::tracer().clear();
  }
};

DataSplit easy_data() {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_size = 256;
  spec.test_size = 64;
  spec.num_classes = 4;
  spec.feature_dim = 16;
  return make_synthetic(spec);
}

// ---------------------------------------------------------------------------
// Registry semantics.

TEST(ObsMetrics, CounterGaugeHistogramBasics) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("events_total", "help text");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5);
  EXPECT_EQ(&reg.counter("events_total"), &c);  // re-registration returns the same instrument

  obs::Gauge& g = reg.gauge("queue_depth");
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);

  obs::Histogram& h = reg.histogram("latency_seconds", {0.1, 1.0, 10.0});
  h.observe(0.05);   // bucket 0
  h.observe(0.5);    // bucket 1
  h.observe(0.1);    // le is inclusive: bucket 0
  h.observe(100.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4);
  EXPECT_NEAR(h.sum(), 100.65, 1e-9);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::int64_t>{2, 1, 0, 1}));

  reg.reset();
  EXPECT_EQ(c.value(), 0);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::int64_t>{0, 0, 0, 0}));
}

TEST(ObsMetrics, RegistrationCollisionsThrow) {
  obs::MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), ConfigError);
  EXPECT_THROW(reg.histogram("x", {1.0}), ConfigError);
  reg.histogram("h", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), ConfigError);  // bounds mismatch
  EXPECT_NO_THROW(reg.histogram("h", {1.0, 2.0}));
  EXPECT_THROW(obs::Histogram({2.0, 1.0}), ConfigError);  // not increasing
  EXPECT_THROW(obs::Histogram({}), ConfigError);
}

TEST(ObsMetrics, ConcurrentWritersLoseNoUpdates) {
  obs::MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  obs::Counter& c = reg.counter("contended_total");
  obs::Histogram& h = reg.histogram("contended_seconds", {0.5, 1.5, 2.5});
  obs::Gauge& g = reg.gauge("contended_gauge");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.observe(static_cast<double>(i % 4));  // buckets 0..2 and overflow, evenly
        g.set(static_cast<double>(t));
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::int64_t>(kThreads) * kPerThread);
  constexpr std::int64_t kQuarter = static_cast<std::int64_t>(kThreads) * kPerThread / 4;
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::int64_t>{kQuarter, kQuarter, kQuarter, kQuarter}));
  // i%4 sums to 6 per group of four observations.
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kQuarter) * 6.0);
  const double gv = g.value();
  EXPECT_GE(gv, 0.0);
  EXPECT_LT(gv, kThreads);  // last write wins: some thread's id, untorn
  EXPECT_DOUBLE_EQ(gv, static_cast<double>(static_cast<int>(gv)));
}

TEST(ObsMetrics, ExpositionRoundTrips) {
  obs::MetricsRegistry reg;
  reg.counter("b_total", "second").add(7);
  reg.counter("a_total", "first").add(3);
  reg.gauge("depth", "a gauge").set(0.125);
  obs::Histogram& h = reg.histogram("lat_seconds", {0.01, 0.1}, "a histogram");
  h.observe(0.005);
  h.observe(0.05);
  h.observe(5.0);

  const std::string text = reg.expose_text();
  // Counters: HELP/TYPE headers and integer samples, sorted by name.
  EXPECT_NE(text.find("# HELP a_total first\n# TYPE a_total counter\na_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("a_total 3"), std::string::npos);
  EXPECT_NE(text.find("b_total 7"), std::string::npos);
  EXPECT_LT(text.find("a_total 3"), text.find("b_total 7"));
  EXPECT_NE(text.find("# TYPE depth gauge"), std::string::npos);
  EXPECT_NE(text.find("depth 0.125"), std::string::npos);
  // Histogram: cumulative buckets, +Inf, then _sum/_count.
  EXPECT_NE(text.find("# TYPE lat_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.01\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"0.1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 3"), std::string::npos);

  // The exposed _sum parses back to the exact recorded sum (precision(17)
  // round-trips doubles).
  const std::string key = "lat_seconds_sum ";
  const std::size_t at = text.find(key);
  ASSERT_NE(at, std::string::npos);
  EXPECT_DOUBLE_EQ(std::stod(text.substr(at + key.size())), h.sum());

  // Snapshot agrees with the instruments.
  const obs::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a_total");
  EXPECT_EQ(snap.counters[0].value, 3);
  EXPECT_EQ(snap.counters[1].name, "b_total");
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].buckets, (std::vector<std::int64_t>{1, 1, 1}));
}

// ---------------------------------------------------------------------------
// Tracer semantics.

TEST(ObsTracer, RecordsSpansAndDropsBeyondCap) {
  obs::WallTracer tr;
  EXPECT_FALSE(tr.enabled());
  tr.complete(0, "ignored", 0, 1);  // disabled: recording is a no-op
  EXPECT_EQ(tr.recorded(), 0u);

  tr.enable(/*max_events=*/3);
  for (int i = 0; i < 5; ++i) tr.complete(1, "span", i * 10, 5);
  EXPECT_EQ(tr.recorded(), 3u);
  EXPECT_EQ(tr.dropped(), 2u);

  std::ostringstream os;
  tr.write_chrome_trace(os);
  const JsonValue doc = JsonParser(os.str()).parse();
  ASSERT_EQ(doc.kind, JsonValue::Kind::kArray);
  const JsonValue* meta = nullptr;
  for (const JsonValue& ev : doc.array) {
    const JsonValue* name = ev.find("name");
    if (name != nullptr && name->str == "trace_metadata") meta = &ev;
  }
  ASSERT_NE(meta, nullptr) << "dropped count must ride along as trace metadata";
  const JsonValue* args = meta->find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("clock")->str, "wall");
  EXPECT_DOUBLE_EQ(args->find("recorded_events")->number, 3.0);
  EXPECT_DOUBLE_EQ(args->find("dropped_events")->number, 2.0);

  tr.enable(8);  // re-arming starts a fresh epoch and clears the buffer
  EXPECT_EQ(tr.recorded(), 0u);
  EXPECT_EQ(tr.dropped(), 0u);
  EXPECT_THROW(tr.enable(0), ConfigError);
}

TEST(ObsTracer, EscapesArgStringsIntoValidJson) {
  obs::WallTracer tr;
  tr.enable();
  tr.set_track_name(2, "worker \"2\"");
  tr.complete(2, "step", 10, 20,
              {obs::arg("why", std::string("quote \" slash \\ newline \n tab \t")),
               obs::arg("n", std::int64_t{42}), obs::arg("x", 0.5)});
  tr.instant(0, "marker");
  tr.counter("accuracy", 0.875);

  std::ostringstream os;
  tr.write_chrome_trace(os);
  const JsonValue doc = JsonParser(os.str()).parse();  // throws if escaping is broken
  ASSERT_EQ(doc.kind, JsonValue::Kind::kArray);

  bool saw_span = false;
  for (const JsonValue& ev : doc.array) {
    const JsonValue* name = ev.find("name");
    if (name == nullptr || name->str != "step") continue;
    saw_span = true;
    EXPECT_DOUBLE_EQ(ev.find("ts")->number, 10.0);
    EXPECT_DOUBLE_EQ(ev.find("dur")->number, 20.0);
    EXPECT_DOUBLE_EQ(ev.find("tid")->number, 2.0);
    const JsonValue* args = ev.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->find("why")->str, "quote \" slash \\ newline \n tab \t");
    EXPECT_DOUBLE_EQ(args->find("n")->number, 42.0);
    EXPECT_DOUBLE_EQ(args->find("x")->number, 0.5);
  }
  EXPECT_TRUE(saw_span);
}

// ---------------------------------------------------------------------------
// End to end: a traced threaded run exports the spans the docs promise, and
// observability is provably inert when off.

TEST_F(ObsGlobalTest, ThreadedRunExportsExpectedSpans) {
  obs::enable_tracing();
  obs::enable_metrics();

  const DataSplit split = easy_data();
  Rng rng(11);
  const Model proto = make_model(ModelArch::kLinear, split.train.feature_dim(), 4, rng);
  ThreadedTrainConfig cfg;
  cfg.schedule = SwitchSchedule::bsp_to_asp(6);  // BSP -> ASP: one live switch
  cfg.num_workers = 2;
  cfg.steps_per_worker = 12;
  const auto result = threaded_train(proto, split.train, cfg);
  ASSERT_GT(result.total_updates, 0);

  std::ostringstream os;
  obs::tracer().write_chrome_trace(os);
  const JsonValue doc = JsonParser(os.str()).parse();
  ASSERT_EQ(doc.kind, JsonValue::Kind::kArray);

  std::set<std::string> names;
  std::set<std::string> thread_names;
  for (const JsonValue& ev : doc.array) {
    const JsonValue* name = ev.find("name");
    if (name == nullptr) continue;
    if (name->str == "thread_name") {
      thread_names.insert(ev.find("args")->find("name")->str);
      continue;
    }
    names.insert(name->str);
  }
  EXPECT_TRUE(names.count("step")) << os.str().substr(0, 2000);
  EXPECT_TRUE(names.count("drain_wait"));
  EXPECT_TRUE(names.count("protocol_switch"));
  EXPECT_TRUE(names.count("phase_start"));
  EXPECT_TRUE(thread_names.count("ps/control"));
  EXPECT_TRUE(thread_names.count("worker 0"));
  EXPECT_TRUE(thread_names.count("worker 1"));

  // The metrics side of the same run.
  const std::string text = obs::metrics().expose_text();
  EXPECT_NE(text.find("ss_threaded_steps_total 24"), std::string::npos) << text;
  EXPECT_NE(text.find("ss_threaded_switches_total 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ss_threaded_step_seconds histogram"), std::string::npos);
}

TEST_F(ObsGlobalTest, OffByDefaultAndBitIdenticalOffVsOn) {
  ASSERT_FALSE(obs::enabled());

  const DataSplit split = easy_data();
  Rng rng(11);
  const Model proto = make_model(ModelArch::kLinear, split.train.feature_dim(), 4, rng);
  ThreadedTrainConfig cfg;
  cfg.protocol = Protocol::kBsp;  // leader-aggregated: bit-deterministic
  cfg.num_workers = 4;
  cfg.steps_per_worker = 10;

  const auto off = threaded_train(proto, split.train, cfg);
  EXPECT_EQ(obs::tracer().recorded(), 0u);  // no stray recording while off
  // The global registry may hold zeroed registrations from earlier tests
  // (instruments are never removed); an off run must not move any of them.
  for (const auto& c : obs::metrics().snapshot().counters)
    EXPECT_EQ(c.value, 0) << c.name;

  obs::enable_tracing();
  obs::enable_metrics();
  const auto on = threaded_train(proto, split.train, cfg);
  EXPECT_GT(obs::tracer().recorded(), 0u);

  // Recording never alters computation: same seed, byte-identical model.
  ASSERT_EQ(off.final_params.size(), on.final_params.size());
  EXPECT_EQ(std::memcmp(off.final_params.data(), on.final_params.data(),
                        off.final_params.size() * sizeof(float)),
            0);
  EXPECT_EQ(off.total_updates, on.total_updates);
}

}  // namespace
}  // namespace ss
