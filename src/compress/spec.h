// Declarative compression configuration for training sessions.
//
// `RunRequest` (core/session.h) carries a `CompressionSpec` value instead of
// a live codec so run requests stay copyable, hashable into cache keys, and
// serializable.  `make_bank` instantiates the actual codec + per-worker
// error-feedback state when the session starts.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "compress/bank.h"

namespace ss {

enum class CodecKind {
  kNone,      ///< full fp32 pushes (the default)
  kTopK,      ///< top-k sparsification + error feedback (Aji & Heafield)
  kTernGrad,  ///< ternary quantization (Wen et al.)
  kQsgd,      ///< stochastic level quantization (Alistarh et al.)
};

std::string codec_kind_name(CodecKind k);

struct CompressionSpec {
  CodecKind kind = CodecKind::kNone;
  double topk_fraction = 0.01;  ///< for kTopK
  int qsgd_levels = 15;         ///< for kQsgd
  double terngrad_clip_sigma = 2.5;

  [[nodiscard]] static CompressionSpec none() { return {}; }
  [[nodiscard]] static CompressionSpec topk(double fraction);
  [[nodiscard]] static CompressionSpec terngrad(double clip_sigma = 2.5);
  [[nodiscard]] static CompressionSpec qsgd(int levels);

  [[nodiscard]] bool enabled() const noexcept { return kind != CodecKind::kNone; }

  /// Canonical short string for cache keys and table labels, e.g.
  /// "topk(1%)" or "none".
  [[nodiscard]] std::string label() const;

  /// Instantiate the codec + bank for `num_workers` workers (error feedback
  /// enabled exactly when the codec is biased).  nullopt when disabled.
  [[nodiscard]] std::optional<CompressorBank> make_bank(std::size_t num_workers) const;
};

}  // namespace ss
