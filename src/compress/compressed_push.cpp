#include "compress/compressed_push.h"

#include <algorithm>

#include "common/error.h"

namespace ss {

void CompressedPush::validate(std::size_t expected_params) const {
  if (num_params != expected_params)
    throw ConfigError("CompressedPush: decoded length does not match the parameter count");
  if (!sparse()) {
    if (!indices.empty())
      throw ConfigError("CompressedPush: dense push carries a sparse index list");
    if (values.size() != num_params)
      throw ConfigError("CompressedPush: dense value count does not match num_params");
    return;
  }
  if (values.size() != indices.size())
    throw ConfigError("CompressedPush: sparse index/value length mismatch");
  if (indices.size() > num_params)
    throw ConfigError("CompressedPush: more sparse coordinates than parameters");
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (i > 0 && indices[i] <= indices[i - 1])
      throw ConfigError("CompressedPush: sparse indices must be strictly ascending");
    if (static_cast<std::size_t>(indices[i]) >= num_params)
      throw ConfigError("CompressedPush: sparse index out of range");
  }
}

void CompressedPush::decode_into(std::span<float> out) const {
  if (out.size() != num_params)
    throw ConfigError("CompressedPush::decode_into: output size mismatch");
  if (!sparse()) {
    std::copy(values.begin(), values.end(), out.begin());
    return;
  }
  std::fill(out.begin(), out.end(), 0.0f);
  for (std::size_t i = 0; i < indices.size(); ++i) out[indices[i]] = values[i];
}

void CompressedPush::add_into(std::span<float> out) const {
  if (out.size() != num_params)
    throw ConfigError("CompressedPush::add_into: output size mismatch");
  if (!sparse()) {
    for (std::size_t i = 0; i < values.size(); ++i) out[i] += values[i];
    return;
  }
  for (std::size_t i = 0; i < indices.size(); ++i) out[indices[i]] += values[i];
}

}  // namespace ss
