#include "compress/bank.h"

#include <cmath>

#include "common/error.h"

namespace ss {

CompressorBank::CompressorBank(std::shared_ptr<const GradientCodec> codec,
                               std::size_t num_workers, bool error_feedback)
    : codec_(std::move(codec)), error_feedback_(error_feedback), residuals_(num_workers) {
  if (!codec_) throw ConfigError("CompressorBank: codec is required");
  if (num_workers == 0) throw ConfigError("CompressorBank: num_workers must be > 0");
}

CompressorBank CompressorBank::with_default_feedback(std::shared_ptr<const GradientCodec> codec,
                                                     std::size_t num_workers) {
  if (!codec) throw ConfigError("CompressorBank: codec is required");
  const bool feedback = !codec->unbiased();
  return CompressorBank(std::move(codec), num_workers, feedback);
}

std::vector<float>& CompressorBank::residual_for(int worker, std::size_t num_params) {
  if (worker < 0 || static_cast<std::size_t>(worker) >= residuals_.size())
    throw ConfigError("CompressorBank: worker index out of range");
  auto& r = residuals_[static_cast<std::size_t>(worker)];
  if (r.size() != num_params) r.assign(num_params, 0.0f);
  return r;
}

std::size_t CompressorBank::transform(int worker, std::span<float> grad, Rng& rng) {
  if (worker < 0 || static_cast<std::size_t>(worker) >= residuals_.size())
    throw ConfigError("CompressorBank: worker index out of range");
  if (!error_feedback_) return codec_->transform(grad, rng);

  auto& residual = residual_for(worker, grad.size());
  // Carry in.
  for (std::size_t i = 0; i < grad.size(); ++i) grad[i] += residual[i];
  // Remember the pre-codec values so we can compute the carry out.
  scratch_.assign(grad.begin(), grad.end());
  const std::size_t bytes = codec_->transform(grad, rng);
  // Carry out: what the codec failed to transmit.
  for (std::size_t i = 0; i < grad.size(); ++i) residual[i] = scratch_[i] - grad[i];
  return bytes;
}

double CompressorBank::residual_l1(int worker) const {
  if (worker < 0 || static_cast<std::size_t>(worker) >= residuals_.size())
    throw ConfigError("CompressorBank: worker index out of range");
  double sum = 0.0;
  for (const float v : residuals_[static_cast<std::size_t>(worker)]) sum += std::fabs(v);
  return sum;
}

void CompressorBank::reset() {
  for (auto& r : residuals_) r.clear();
}

}  // namespace ss
