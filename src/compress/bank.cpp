#include "compress/bank.h"

#include <cmath>

#include "common/error.h"

namespace ss {

CompressorBank::CompressorBank(std::shared_ptr<const GradientCodec> codec,
                               std::size_t num_workers, bool error_feedback)
    : codec_(std::move(codec)), error_feedback_(error_feedback), slots_(num_workers) {
  if (!codec_) throw ConfigError("CompressorBank: codec is required");
  if (num_workers == 0) throw ConfigError("CompressorBank: num_workers must be > 0");
}

CompressorBank CompressorBank::with_default_feedback(std::shared_ptr<const GradientCodec> codec,
                                                     std::size_t num_workers) {
  if (!codec) throw ConfigError("CompressorBank: codec is required");
  const bool feedback = !codec->unbiased();
  return CompressorBank(std::move(codec), num_workers, feedback);
}

CompressorBank::WorkerSlot& CompressorBank::slot_for(int worker) {
  if (worker < 0 || static_cast<std::size_t>(worker) >= slots_.size())
    throw ConfigError("CompressorBank: worker index out of range");
  return slots_[static_cast<std::size_t>(worker)];
}

std::vector<float>& CompressorBank::residual_for(WorkerSlot& slot, std::size_t num_params) {
  if (slot.residual.size() != num_params) slot.residual.assign(num_params, 0.0f);
  return slot.residual;
}

std::size_t CompressorBank::transform(int worker, std::span<float> grad, Rng& rng) {
  WorkerSlot& slot = slot_for(worker);
  if (!error_feedback_) return codec_->transform(grad, rng);

  auto& residual = residual_for(slot, grad.size());
  // Carry in.
  for (std::size_t i = 0; i < grad.size(); ++i) grad[i] += residual[i];
  // Remember the pre-codec values so we can compute the carry out.
  slot.carry.assign(grad.begin(), grad.end());
  const std::size_t bytes = codec_->transform(grad, rng);
  // Carry out: what the codec failed to transmit.
  for (std::size_t i = 0; i < grad.size(); ++i) residual[i] = slot.carry[i] - grad[i];
  return bytes;
}

CompressedPush CompressorBank::encode(int worker, std::span<const float> grad, Rng& rng) {
  WorkerSlot& slot = slot_for(worker);
  if (!error_feedback_) return codec_->encode(grad, rng);

  auto& residual = residual_for(slot, grad.size());
  // Carry in.
  slot.carry.resize(grad.size());
  for (std::size_t i = 0; i < grad.size(); ++i) slot.carry[i] = grad[i] + residual[i];
  CompressedPush push = codec_->encode(slot.carry, rng);
  // Carry out: what the codec failed to transmit, computed from the decoded
  // push so sparse and dense wire forms share one path (for top-k the
  // residual at a kept coordinate is exactly zero — values travel verbatim).
  slot.decoded.resize(grad.size());
  push.decode_into(slot.decoded);
  for (std::size_t i = 0; i < grad.size(); ++i) residual[i] = slot.carry[i] - slot.decoded[i];
  return push;
}

double CompressorBank::residual_l1(int worker) const {
  if (worker < 0 || static_cast<std::size_t>(worker) >= slots_.size())
    throw ConfigError("CompressorBank: worker index out of range");
  double sum = 0.0;
  for (const float v : slots_[static_cast<std::size_t>(worker)].residual) sum += std::fabs(v);
  return sum;
}

std::span<const float> CompressorBank::residual(int worker) const {
  if (worker < 0 || static_cast<std::size_t>(worker) >= slots_.size())
    throw ConfigError("CompressorBank: worker index out of range");
  return slots_[static_cast<std::size_t>(worker)].residual;
}

void CompressorBank::restore_residual(int worker, std::span<const float> residual) {
  WorkerSlot& slot = slot_for(worker);
  slot.residual.assign(residual.begin(), residual.end());
}

void CompressorBank::reset() {
  for (auto& slot : slots_) slot.residual.clear();
}

}  // namespace ss
