#include "compress/topk.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/error.h"

namespace ss {

TopKCodec::TopKCodec(double keep_fraction) : keep_fraction_(keep_fraction) {
  if (!(keep_fraction > 0.0) || keep_fraction > 1.0)
    throw ConfigError("TopKCodec: keep_fraction must be in (0, 1]");
}

std::string TopKCodec::name() const {
  // Render as a percentage with enough precision for e.g. 0.1%.
  const double pct = keep_fraction_ * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "topk(%g%%)", pct);
  return buf;
}

std::size_t TopKCodec::kept(std::size_t num_params) const noexcept {
  if (num_params == 0) return 0;
  const auto k = static_cast<std::size_t>(
      std::llround(keep_fraction_ * static_cast<double>(num_params)));
  return std::clamp<std::size_t>(k, 1, num_params);
}

std::size_t TopKCodec::wire_bytes(std::size_t num_params) const {
  // One (uint32 index, fp32 value) pair per kept coordinate, capped at the
  // dense fp32 payload: at high keep fractions the index stream costs more
  // than just sending every value, so the encoder falls back to dense and
  // the price must follow (topk(100%) used to charge 2x the dense size).
  const std::size_t sparse = kept(num_params) * (sizeof(std::uint32_t) + sizeof(float));
  const std::size_t dense = num_params * sizeof(float);
  return std::min(sparse, dense) + kHeaderBytes;
}

std::vector<std::uint32_t> TopKCodec::select(std::span<const float> grad) const {
  const std::size_t n = grad.size();
  const std::size_t k = kept(n);
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  if (k == n) return order;

  const auto greater_mag = [&grad](std::uint32_t a, std::uint32_t b) {
    const float ma = std::fabs(grad[a]);
    const float mb = std::fabs(grad[b]);
    if (ma != mb) return ma > mb;
    return a < b;  // deterministic tie-break: lower index wins
  };
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   order.end(), greater_mag);
  order.resize(k);
  return order;
}

std::size_t TopKCodec::transform(std::span<float> grad, Rng& /*rng*/) const {
  const std::size_t n = grad.size();
  if (n == 0) return wire_bytes(0);
  const std::size_t k = kept(n);
  if (k == n) return wire_bytes(n);

  const std::vector<std::uint32_t> keep_idx = select(grad);
  // Zero everything outside the top-k set.
  std::vector<char> keep(n, 0);
  for (const std::uint32_t i : keep_idx) keep[i] = 1;
  for (std::size_t i = 0; i < n; ++i)
    if (!keep[i]) grad[i] = 0.0f;
  return wire_bytes(n);
}

CompressedPush TopKCodec::encode(std::span<const float> grad, Rng& /*rng*/) const {
  const std::size_t n = grad.size();
  CompressedPush push;
  push.num_params = n;
  push.wire_size = wire_bytes(n);
  if (n == 0) {
    push.format = CompressedPush::Format::kSparse;
    return push;
  }
  const std::size_t k = kept(n);
  // Dense fallback once the index stream would cost more than plain fp32.
  if (k * (sizeof(std::uint32_t) + sizeof(float)) >= n * sizeof(float)) {
    push.format = CompressedPush::Format::kDense;
    push.values.assign(grad.begin(), grad.end());
    if (k < n) {
      std::vector<char> keep(n, 0);
      for (const std::uint32_t i : select(grad)) keep[i] = 1;
      for (std::size_t i = 0; i < n; ++i)
        if (!keep[i]) push.values[i] = 0.0f;
    }
    return push;
  }
  push.format = CompressedPush::Format::kSparse;
  push.indices = select(grad);
  std::sort(push.indices.begin(), push.indices.end());  // wire order: ascending
  push.values.reserve(k);
  for (const std::uint32_t i : push.indices) push.values.push_back(grad[i]);
  return push;
}

}  // namespace ss
