#include "compress/topk.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/error.h"

namespace ss {

TopKCodec::TopKCodec(double keep_fraction) : keep_fraction_(keep_fraction) {
  if (!(keep_fraction > 0.0) || keep_fraction > 1.0)
    throw ConfigError("TopKCodec: keep_fraction must be in (0, 1]");
}

std::string TopKCodec::name() const {
  // Render as a percentage with enough precision for e.g. 0.1%.
  const double pct = keep_fraction_ * 100.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "topk(%g%%)", pct);
  return buf;
}

std::size_t TopKCodec::kept(std::size_t num_params) const noexcept {
  const auto k = static_cast<std::size_t>(
      std::llround(keep_fraction_ * static_cast<double>(num_params)));
  return std::clamp<std::size_t>(k, 1, num_params);
}

std::size_t TopKCodec::wire_bytes(std::size_t num_params) const {
  // One (uint32 index, fp32 value) pair per kept coordinate.
  return kept(num_params) * (sizeof(std::uint32_t) + sizeof(float));
}

std::size_t TopKCodec::transform(std::span<float> grad, Rng& /*rng*/) const {
  const std::size_t n = grad.size();
  if (n == 0) return 0;
  const std::size_t k = kept(n);
  if (k == n) return wire_bytes(n);

  // Find the magnitude threshold with nth_element over a scratch index set.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  const auto greater_mag = [&grad](std::uint32_t a, std::uint32_t b) {
    const float ma = std::fabs(grad[a]);
    const float mb = std::fabs(grad[b]);
    if (ma != mb) return ma > mb;
    return a < b;  // deterministic tie-break: lower index wins
  };
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   order.end(), greater_mag);

  // Zero everything outside the top-k set.
  std::vector<char> keep(n, 0);
  for (std::size_t i = 0; i < k; ++i) keep[order[i]] = 1;
  for (std::size_t i = 0; i < n; ++i)
    if (!keep[i]) grad[i] = 0.0f;
  return wire_bytes(n);
}

}  // namespace ss
