#include "compress/spec.h"

#include "common/error.h"
#include "compress/qsgd.h"
#include "compress/terngrad.h"
#include "compress/topk.h"

namespace ss {

std::string codec_kind_name(CodecKind k) {
  switch (k) {
    case CodecKind::kNone:
      return "none";
    case CodecKind::kTopK:
      return "topk";
    case CodecKind::kTernGrad:
      return "terngrad";
    case CodecKind::kQsgd:
      return "qsgd";
  }
  return "?";
}

CompressionSpec CompressionSpec::topk(double fraction) {
  CompressionSpec s;
  s.kind = CodecKind::kTopK;
  s.topk_fraction = fraction;
  return s;
}

CompressionSpec CompressionSpec::terngrad(double clip_sigma) {
  CompressionSpec s;
  s.kind = CodecKind::kTernGrad;
  s.terngrad_clip_sigma = clip_sigma;
  return s;
}

CompressionSpec CompressionSpec::qsgd(int levels) {
  CompressionSpec s;
  s.kind = CodecKind::kQsgd;
  s.qsgd_levels = levels;
  return s;
}

std::string CompressionSpec::label() const {
  switch (kind) {
    case CodecKind::kNone:
      return "none";
    case CodecKind::kTopK:
      return TopKCodec(topk_fraction).name();
    case CodecKind::kTernGrad:
      return TernGradCodec(terngrad_clip_sigma).name();
    case CodecKind::kQsgd:
      return QsgdCodec(qsgd_levels).name();
  }
  return "?";
}

std::optional<CompressorBank> CompressionSpec::make_bank(std::size_t num_workers) const {
  std::shared_ptr<GradientCodec> codec;
  switch (kind) {
    case CodecKind::kNone:
      return std::nullopt;
    case CodecKind::kTopK:
      codec = std::make_shared<TopKCodec>(topk_fraction);
      break;
    case CodecKind::kTernGrad:
      codec = std::make_shared<TernGradCodec>(terngrad_clip_sigma);
      break;
    case CodecKind::kQsgd:
      codec = std::make_shared<QsgdCodec>(qsgd_levels);
      break;
  }
  if (!codec) throw ConfigError("CompressionSpec: unknown codec kind");
  return CompressorBank::with_default_feedback(std::move(codec), num_workers);
}

}  // namespace ss
