#include "compress/terngrad.h"

#include <algorithm>
#include <cmath>

namespace ss {

std::size_t TernGradCodec::transform(std::span<float> grad, Rng& rng) const {
  const std::size_t n = grad.size();
  if (n == 0) return wire_bytes(0);

  if (clip_sigma_ > 0.0 && n > 1) {
    double sum = 0.0;
    double sq = 0.0;
    for (const float g : grad) {
      sum += g;
      sq += static_cast<double>(g) * g;
    }
    const double mean = sum / static_cast<double>(n);
    const double var = std::max(0.0, sq / static_cast<double>(n) - mean * mean);
    // TernGrad (Wen et al. §4) clips gradient *magnitudes* to c * sigma:
    // g <- clamp(g, -c*sigma, +c*sigma).  Clipping to mean +/- c*sigma
    // instead (an earlier bug here) skews the ternary scale s = max|g| for
    // nonzero-mean gradients and breaks the sign symmetry of the quantizer.
    const auto bound = static_cast<float>(clip_sigma_ * std::sqrt(var));
    for (float& g : grad) g = std::clamp(g, -bound, bound);
  }

  float scale = 0.0f;
  for (const float g : grad) scale = std::max(scale, std::fabs(g));
  if (scale == 0.0f) return wire_bytes(n);  // all-zero gradient: nothing to do

  for (float& g : grad) {
    const double p = std::fabs(g) / scale;  // in [0, 1]
    const float ternary = rng.bernoulli(p) ? (std::signbit(g) ? -scale : scale) : 0.0f;
    g = ternary;
  }
  return wire_bytes(n);
}

}  // namespace ss
