// Per-worker compression pipeline with optional error feedback.
//
// Error feedback (a.k.a. memory / residual accumulation) keeps the mass a
// lossy codec dropped and re-adds it to the worker's next gradient:
//
//   g' = g + residual          (carry in)
//   q  = codec(g')             (lossy round-trip, q is what the PS sees)
//   residual = g' - q          (carry out)
//
// For biased codecs like top-k this is what restores convergence — every
// coordinate is eventually transmitted once its accumulated magnitude grows
// into the top-k set.  For unbiased quantizers it is optional but typically
// reduces the noise floor.  The residual is transport state, so it lives
// here, per worker slot, not in the stateless codec.
//
// Thread safety: all mutable state (residual + scratch) is per worker slot,
// so concurrent `transform`/`encode` calls are safe as long as no two
// threads share a worker index — exactly the discipline of the threaded
// runtime, where worker w is one OS thread.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "compress/codec.h"
#include "compress/compressed_push.h"

namespace ss {

class CompressorBank {
 public:
  /// `codec` must outlive the bank.  `num_workers` fixes the worker-slot
  /// count; `error_feedback` enables residual accumulation.
  CompressorBank(std::shared_ptr<const GradientCodec> codec, std::size_t num_workers,
                 bool error_feedback);

  /// Convenience: error feedback on exactly when the codec is biased.
  static CompressorBank with_default_feedback(std::shared_ptr<const GradientCodec> codec,
                                              std::size_t num_workers);

  /// Apply the codec (and error feedback) to worker `w`'s gradient in place.
  /// Returns the wire bytes of the encoded push.
  std::size_t transform(int worker, std::span<float> grad, Rng& rng);

  /// Encode worker `w`'s gradient into its wire form, carrying the error
  /// feedback residual exactly like `transform` (the residual update uses
  /// the decoded push, so sparse and dense codecs share one code path).
  /// Given equal inputs and RNG state, `encode(...).decode_into(g)` and
  /// `transform(...)` produce bit-identical gradients and residuals.
  [[nodiscard]] CompressedPush encode(int worker, std::span<const float> grad, Rng& rng);

  /// Deterministic wire-size estimate (delegates to the codec).
  [[nodiscard]] std::size_t wire_bytes(std::size_t num_params) const {
    return codec_->wire_bytes(num_params);
  }

  [[nodiscard]] const GradientCodec& codec() const noexcept { return *codec_; }
  [[nodiscard]] bool error_feedback() const noexcept { return error_feedback_; }
  [[nodiscard]] std::size_t num_workers() const noexcept { return slots_.size(); }

  /// Total mass currently carried in worker `w`'s residual (L1 norm).
  /// Exposed for tests and diagnostics.
  [[nodiscard]] double residual_l1(int worker) const;

  /// Worker `w`'s current residual (empty until the slot's first
  /// transform/encode).  Save it alongside a PS checkpoint to make the
  /// whole training state — parameters, velocity, AND per-worker transport
  /// state — restorable bit for bit.
  [[nodiscard]] std::span<const float> residual(int worker) const;

  /// Restore worker `w`'s residual from a saved copy; after restoring the
  /// matching checkpoint into the PS, error feedback resumes exactly where
  /// it left off (see the checkpoint round-trip test in test_elastic.cpp).
  void restore_residual(int worker, std::span<const float> residual);

  /// Drop all residual state (e.g. across a protocol switch that restarts
  /// from a checkpoint, where stale residuals no longer match the model).
  void reset();

 private:
  /// All per-worker mutable state: the carried residual plus the scratch
  /// buffers the feedback bookkeeping needs (kept per slot so distinct
  /// workers never share memory).
  struct WorkerSlot {
    std::vector<float> residual;  // lazily sized
    std::vector<float> carry;     // g + residual (pre-codec values)
    std::vector<float> decoded;   // decoded push, for the carry-out
  };

  WorkerSlot& slot_for(int worker);
  std::vector<float>& residual_for(WorkerSlot& slot, std::size_t num_params);

  std::shared_ptr<const GradientCodec> codec_;
  bool error_feedback_;
  std::vector<WorkerSlot> slots_;
};

}  // namespace ss
