// TernGrad ternary gradient quantization (Wen et al., NeurIPS'17 — paper
// reference [35]).
//
// Each gradient coordinate is stochastically rounded to {-s, 0, +s} where
// s = max_i |g_i| is a per-gradient scale: coordinate g_i becomes
// sign(g_i) * s with probability |g_i| / s and 0 otherwise, which is an
// unbiased estimator of g_i.  The wire form is 2 bits per coordinate plus
// one fp32 scale.
#pragma once

#include "compress/codec.h"

namespace ss {

class TernGradCodec final : public GradientCodec {
 public:
  /// With `clip_sigma > 0`, gradient magnitudes are first clipped to
  /// [-clip_sigma * stddev, +clip_sigma * stddev] — TernGrad's "gradient
  /// clipping" trick that bounds the scale s and cuts quantization variance
  /// (§4 of the paper).  `clip_sigma <= 0` disables clipping.
  explicit TernGradCodec(double clip_sigma = 2.5) : clip_sigma_(clip_sigma) {}

  [[nodiscard]] std::string name() const override { return "terngrad"; }

  std::size_t transform(std::span<float> grad, Rng& rng) const override;

  [[nodiscard]] std::size_t wire_bytes(std::size_t num_params) const override {
    // 2 bits per coordinate, rounded up to whole bytes, plus the scale.
    return (num_params * 2 + 7) / 8 + sizeof(float);
  }

  /// Unbiased for the clipped gradient; with clipping disabled, unbiased for
  /// the raw gradient.
  [[nodiscard]] bool unbiased() const override { return true; }

  [[nodiscard]] double clip_sigma() const noexcept { return clip_sigma_; }

 private:
  double clip_sigma_;
};

}  // namespace ss
