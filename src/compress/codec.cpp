#include "compress/codec.h"

namespace ss {

CompressedPush GradientCodec::encode(std::span<const float> grad, Rng& rng) const {
  CompressedPush push;
  push.format = CompressedPush::Format::kDense;
  push.num_params = grad.size();
  push.values.assign(grad.begin(), grad.end());
  push.wire_size = transform(push.values, rng);
  return push;
}

std::size_t IdentityCodec::transform(std::span<float> grad, Rng& /*rng*/) const {
  return grad.size() * sizeof(float);
}

}  // namespace ss
