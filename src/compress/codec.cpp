#include "compress/codec.h"

namespace ss {

std::size_t IdentityCodec::transform(std::span<float> grad, Rng& /*rng*/) const {
  return grad.size() * sizeof(float);
}

}  // namespace ss
