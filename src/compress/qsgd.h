// QSGD stochastic gradient quantization (Alistarh et al., NeurIPS'17 —
// paper reference [36]).
//
// Each coordinate is quantized to one of `levels`+1 uniformly spaced
// magnitudes in [0, ||g||_2], with stochastic rounding between the two
// neighbouring levels so the quantizer is unbiased:
//
//   Q(g_i) = ||g||_2 * sign(g_i) * xi_i,   xi_i in {l/s, (l+1)/s}
//
// where s = `levels` and l = floor(|g_i| / ||g||_2 * s).  The wire form is
// one fp32 norm plus (1 + ceil(log2(s+1))) bits per coordinate (sign +
// level); QSGD's Elias coding would do better on sparse level vectors but a
// fixed-width bound is the standard conservative estimate.
#pragma once

#include "compress/codec.h"

namespace ss {

class QsgdCodec final : public GradientCodec {
 public:
  /// `levels` >= 1: the number of quantization intervals s.  QSGD's common
  /// settings are 4 bits (s = 15) and 8 bits (s = 255).
  explicit QsgdCodec(int levels);

  [[nodiscard]] std::string name() const override;

  std::size_t transform(std::span<float> grad, Rng& rng) const override;

  [[nodiscard]] std::size_t wire_bytes(std::size_t num_params) const override;

  [[nodiscard]] bool unbiased() const override { return true; }

  [[nodiscard]] int levels() const noexcept { return levels_; }

  /// Bits per coordinate on the wire (sign + level).
  [[nodiscard]] int bits_per_coord() const noexcept { return bits_per_coord_; }

 private:
  int levels_;
  int bits_per_coord_;
};

}  // namespace ss
