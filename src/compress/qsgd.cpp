#include "compress/qsgd.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace ss {

namespace {

int bits_for_levels(int levels) {
  int bits = 0;
  int v = levels;  // need to represent 0..levels
  while (v > 0) {
    ++bits;
    v >>= 1;
  }
  return bits + 1;  // + sign bit
}

}  // namespace

QsgdCodec::QsgdCodec(int levels) : levels_(levels), bits_per_coord_(bits_for_levels(levels)) {
  if (levels < 1) throw ConfigError("QsgdCodec: levels must be >= 1");
}

std::string QsgdCodec::name() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "qsgd(s=%d)", levels_);
  return buf;
}

std::size_t QsgdCodec::wire_bytes(std::size_t num_params) const {
  return (num_params * static_cast<std::size_t>(bits_per_coord_) + 7) / 8 + sizeof(float);
}

std::size_t QsgdCodec::transform(std::span<float> grad, Rng& rng) const {
  const std::size_t n = grad.size();
  if (n == 0) return wire_bytes(0);

  double sq = 0.0;
  for (const float g : grad) sq += static_cast<double>(g) * g;
  const double norm = std::sqrt(sq);
  if (norm == 0.0) return wire_bytes(n);

  const auto s = static_cast<double>(levels_);
  for (float& g : grad) {
    // Mathematically |g|/norm <= 1, but the double rounding in norm can push
    // the ratio a hair past 1 (e.g. a single-coordinate gradient whose
    // squared sum rounds down); clamp so the emitted level never overflows
    // the 0..levels range that bits_per_coord_ prices.
    const double r = std::min(std::fabs(g) / norm * s, s);
    const double l = std::floor(r);
    const double frac = r - l;
    const double level = rng.bernoulli(frac) ? l + 1.0 : l;
    const double q = norm * level / s;
    g = static_cast<float>(std::signbit(g) ? -q : q);
  }
  return wire_bytes(n);
}

}  // namespace ss
