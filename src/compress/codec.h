// Gradient compression codecs (paper Section VII, "Network Optimization for
// Distributed Training").
//
// The paper cites gradient sparsification (Aji & Heafield, 2017), TernGrad
// (Wen et al., NeurIPS'17) and QSGD (Alistarh et al., NeurIPS'17) as
// orthogonal techniques that "might be combined with Sync-Switch to achieve
// further training speedup".  This module implements those three codecs plus
// an identity codec, so the combination can actually be measured (see
// bench/ablation_compression and examples/compressed_training).
//
// A codec offers two equivalent views of the same lossy round-trip:
// `transform` rewrites the gradient in place with exactly the values the
// decoder would reconstruct and reports the wire byte count, and `encode`
// produces the explicit `CompressedPush` wire form (dense for quantizers,
// sparse index/value pairs for top-k) whose decode reconstructs the same
// values bit for bit.  The simulator charges the push transfer for the
// *wire* bytes while the gradient mathematics sees the *reconstructed*
// values — both the speedup and the accuracy cost of compression are
// therefore real, not modelled.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "common/rng.h"
#include "compress/compressed_push.h"

namespace ss {

/// Lossy gradient encode+decode round-trip.
///
/// Implementations must be stateless across calls (per-worker state such as
/// error-feedback residuals lives in `CompressorBank`), so a single codec
/// instance can be shared by every worker.
class GradientCodec {
 public:
  virtual ~GradientCodec() = default;

  /// Human-readable codec name for tables and logs, e.g. "topk(1%)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Apply the encode+decode round-trip to `grad` in place and return the
  /// encoded size in bytes.  `rng` drives stochastic quantization; codecs
  /// that are deterministic simply ignore it.
  virtual std::size_t transform(std::span<float> grad, Rng& rng) const = 0;

  /// Encode `grad` into its wire form.  Must consume `rng` identically to
  /// `transform` and decode to the same values bit for bit (the conformance
  /// suite checks this).  The default implementation copies the gradient and
  /// runs `transform` on the copy, producing a dense push; codecs with a
  /// genuinely sparse wire form (top-k) override it.
  [[nodiscard]] virtual CompressedPush encode(std::span<const float> grad, Rng& rng) const;

  /// Deterministic wire-size estimate for a gradient of `num_params`
  /// elements.  The simulator uses this to price the push transfer *before*
  /// the gradient is computed (the size of every codec here is independent
  /// of the gradient values).
  [[nodiscard]] virtual std::size_t wire_bytes(std::size_t num_params) const = 0;

  /// True if E[transform(g)] == g (unbiased stochastic quantizers).  Biased
  /// codecs (top-k sparsification) need error feedback to converge well.
  [[nodiscard]] virtual bool unbiased() const = 0;
};

/// Identity codec: full fp32 gradient on the wire.  The baseline every
/// compression ablation compares against.
class IdentityCodec final : public GradientCodec {
 public:
  [[nodiscard]] std::string name() const override { return "fp32"; }

  std::size_t transform(std::span<float> grad, Rng& rng) const override;

  [[nodiscard]] std::size_t wire_bytes(std::size_t num_params) const override {
    return num_params * sizeof(float);
  }

  [[nodiscard]] bool unbiased() const override { return true; }
};

}  // namespace ss
