// Top-k gradient sparsification (Aji & Heafield, "Sparse Communication for
// Distributed Gradient Descent", 2017 — paper reference [34]).
//
// Only the k largest-magnitude gradient coordinates are transmitted; the
// rest are dropped.  The wire form is k (index, value) pairs.  Dropping
// coordinates is *biased*, so this codec should be used through a
// `CompressorBank` with error feedback enabled: dropped mass accumulates in
// a per-worker residual and is re-added to the next gradient, which is what
// makes sparsified SGD converge (and what Aji & Heafield do implicitly by
// accumulating in the sender's buffer).
#pragma once

#include "compress/codec.h"

namespace ss {

class TopKCodec final : public GradientCodec {
 public:
  /// Fixed per-push framing cost: one uint32 announcing the kept-coordinate
  /// count (or the dense-fallback marker).
  static constexpr std::size_t kHeaderBytes = sizeof(std::uint32_t);

  /// `keep_fraction` in (0, 1]: the fraction of coordinates transmitted.
  /// At least one coordinate is always kept (for non-empty gradients).
  explicit TopKCodec(double keep_fraction);

  [[nodiscard]] std::string name() const override;

  std::size_t transform(std::span<float> grad, Rng& rng) const override;

  /// Sparse wire form: the kept (index, value) pairs in ascending index
  /// order.  When the index overhead would exceed a plain dense payload
  /// (keep fractions above 50%), the encoder falls back to a dense push and
  /// `wire_bytes` prices the dense size — sending indices for coordinates
  /// the receiver could enumerate is pure waste.
  [[nodiscard]] CompressedPush encode(std::span<const float> grad, Rng& rng) const override;

  /// min(kept * 8, num_params * 4) + kHeaderBytes: (uint32, fp32) pairs,
  /// capped at the dense fp32 payload the sparse form must never exceed.
  [[nodiscard]] std::size_t wire_bytes(std::size_t num_params) const override;

  [[nodiscard]] bool unbiased() const override { return false; }

  [[nodiscard]] double keep_fraction() const noexcept { return keep_fraction_; }

  /// Number of coordinates kept for a gradient of `num_params` elements
  /// (0 for an empty gradient).
  [[nodiscard]] std::size_t kept(std::size_t num_params) const noexcept;

 private:
  /// Top-k index set for `grad`, in unspecified order (nth_element prefix).
  /// The selection and its tie-break (lower index wins on equal magnitude)
  /// are shared by `transform` and `encode` so the two forms agree bit for
  /// bit; only `encode` pays to sort the set into wire order.
  [[nodiscard]] std::vector<std::uint32_t> select(std::span<const float> grad) const;

  double keep_fraction_;
};

}  // namespace ss
