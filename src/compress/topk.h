// Top-k gradient sparsification (Aji & Heafield, "Sparse Communication for
// Distributed Gradient Descent", 2017 — paper reference [34]).
//
// Only the k largest-magnitude gradient coordinates are transmitted; the
// rest are dropped.  The wire form is k (index, value) pairs.  Dropping
// coordinates is *biased*, so this codec should be used through a
// `CompressorBank` with error feedback enabled: dropped mass accumulates in
// a per-worker residual and is re-added to the next gradient, which is what
// makes sparsified SGD converge (and what Aji & Heafield do implicitly by
// accumulating in the sender's buffer).
#pragma once

#include "compress/codec.h"

namespace ss {

class TopKCodec final : public GradientCodec {
 public:
  /// `keep_fraction` in (0, 1]: the fraction of coordinates transmitted.
  /// At least one coordinate is always kept.
  explicit TopKCodec(double keep_fraction);

  [[nodiscard]] std::string name() const override;

  std::size_t transform(std::span<float> grad, Rng& rng) const override;

  [[nodiscard]] std::size_t wire_bytes(std::size_t num_params) const override;

  [[nodiscard]] bool unbiased() const override { return false; }

  [[nodiscard]] double keep_fraction() const noexcept { return keep_fraction_; }

  /// Number of coordinates kept for a gradient of `num_params` elements.
  [[nodiscard]] std::size_t kept(std::size_t num_params) const noexcept;

 private:
  double keep_fraction_;
};

}  // namespace ss
