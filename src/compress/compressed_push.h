// CompressedPush: the wire representation of one compressed gradient push.
//
// Codecs used to be modelled purely as an in-place lossy round-trip, which
// meant the parameter server always received a *dense* full-length vector —
// even for top-k sparsification, whose whole point is that only k
// coordinates travel.  `CompressedPush` makes the encoded form first-class:
//
//  * kDense — `values` holds the full decoded (lossy) gradient.  Used by the
//    quantizers (QSGD, TernGrad, identity), whose wire form covers every
//    coordinate.  `wire_size` is the priced byte count (the quantized bits),
//    while `values` stores the reconstructed floats the gradient math sees —
//    the same "virtual wire, real math" split the simulator has always used.
//  * kSparse — `indices`/`values` hold the kept coordinates in strictly
//    ascending index order.  Used by top-k.  Ascending order is part of the
//    contract: the sharded parameter server walks the index list shard by
//    shard and takes per-shard locks in ascending order, which is what rules
//    out deadlock against the whole-vector helpers.
//
// Both runtimes move pushes through this type: workers encode through their
// `CompressorBank` slot, the PS applies dense pushes with `apply` and sparse
// pushes with `apply_sparse` (touching only the shards that own kept
// coordinates).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ss {

struct CompressedPush {
  enum class Format : std::uint8_t { kDense, kSparse };

  Format format = Format::kDense;
  std::size_t num_params = 0;  ///< decoded gradient length
  std::size_t wire_size = 0;   ///< priced bytes on the wire (codec estimate)

  /// kDense: `num_params` decoded values.  kSparse: `values[i]` is the
  /// coordinate at `indices[i]`.
  std::vector<float> values;
  /// kSparse only: kept coordinate indices, strictly ascending.
  std::vector<std::uint32_t> indices;

  [[nodiscard]] bool sparse() const noexcept { return format == Format::kSparse; }

  /// Number of transmitted coordinates.
  [[nodiscard]] std::size_t nnz() const noexcept {
    return sparse() ? indices.size() : num_params;
  }

  /// Throws ConfigError unless the push is internally consistent and decodes
  /// to exactly `expected_params` coordinates (sizes match, sparse indices
  /// strictly ascending and in range).
  void validate(std::size_t expected_params) const;

  /// Overwrite `out` with the decoded gradient (sparse pushes zero-fill the
  /// untransmitted coordinates).
  void decode_into(std::span<float> out) const;

  /// Accumulate the decoded gradient into `out` (`out += decode()`).  This
  /// is the aggregation primitive for the synchronous protocols: BSP sums
  /// every worker's decoded push without materializing n dense vectors.
  void add_into(std::span<float> out) const;
};

}  // namespace ss
