#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ss {

void RunningStat::add(double x) noexcept {
  ++n_;
  if (n_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStat::reset() noexcept {
  n_ = 0;
  mean_ = m2_ = min_ = max_ = 0.0;
}

double mean_of(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev_of(const std::vector<double>& xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double percentile_of(std::vector<double> xs, double p) noexcept {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  if (p >= 100.0) return xs.back();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

SlidingWindow::SlidingWindow(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("SlidingWindow capacity must be > 0");
}

void SlidingWindow::add(double x) {
  samples_.push_back(x);
  sum_ += x;
  if (samples_.size() > capacity_) {
    sum_ -= samples_.front();
    samples_.pop_front();
  }
}

double SlidingWindow::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  return sum_ / static_cast<double>(samples_.size());
}

void SlidingWindow::clear() noexcept {
  samples_.clear();
  sum_ = 0.0;
}

}  // namespace ss
