#include "common/table.h"

#include "common/csv.h"

#include <cctype>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace ss {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table row arity mismatch: expected " +
                                std::to_string(header_.size()) + ", got " +
                                std::to_string(cells.size()));
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << (v * 100.0) << "%";
  return os.str();
}

std::string Table::ratio(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v << "X";
  return os.str();
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "  " << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    os << "\n";
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::slugify(const std::string& title) {
  std::string slug;
  slug.reserve(title.size());
  bool last_dash = false;
  for (const char c : title) {
    const bool keep = std::isalnum(static_cast<unsigned char>(c)) != 0;
    if (keep) {
      slug += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      last_dash = false;
    } else if (!last_dash && !slug.empty()) {
      slug += '-';
      last_dash = true;
    }
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  return slug.empty() ? "table" : slug;
}

void Table::print(const std::string& title) const {
  std::cout << "\n" << title << "\n" << render() << std::flush;

  if (const char* dir = std::getenv("SS_BENCH_CSV_DIR"); dir != nullptr && *dir != '\0') {
    CsvWriter csv(header_);
    for (const auto& row : rows_) csv.add_row(row);
    const std::string path = std::string(dir) + "/" + slugify(title) + ".csv";
    try {
      csv.write(path);
    } catch (const std::exception& e) {
      // CSV export is best-effort: report, keep the bench output intact.
      std::cerr << "[warn] SS_BENCH_CSV_DIR export failed: " << e.what() << "\n";
    }
  }
}

}  // namespace ss
