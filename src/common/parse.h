// Checked command-line value parsing.
//
// The raw std::sto* family is the wrong tool for CLI flags: it accepts
// trailing junk ("8x" parses as 8), silently wraps negatives into unsigned
// types, and throws std::invalid_argument/std::out_of_range with useless
// messages ("stoull") that read like a crash.  These helpers parse the full
// string with std::from_chars and throw ConfigError carrying the flag name
// and the offending value — "--workers: expected integer, got 'eight'" — so
// an entry point can report it and print usage instead of aborting.
#pragma once

#include <cstdint>
#include <string>

namespace ss {

/// Parse a non-negative integer flag value.  Throws ConfigError
/// ("<flag>: expected integer, got '<value>'") on empty input, sign,
/// trailing junk, or overflow.
[[nodiscard]] std::uint64_t parse_u64(const std::string& flag, const std::string& value);

/// Parse a (possibly negative) integer flag value.  Same error contract.
[[nodiscard]] std::int64_t parse_i64(const std::string& flag, const std::string& value);

/// parse_i64 narrowed to int; out-of-range values are rejected, not wrapped.
[[nodiscard]] int parse_int(const std::string& flag, const std::string& value);

/// Parse a floating-point flag value ("<flag>: expected number, got ...").
[[nodiscard]] double parse_double(const std::string& flag, const std::string& value);

}  // namespace ss
