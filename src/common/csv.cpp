#include "common/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ss {

namespace {
std::string escape(const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("CsvWriter needs at least one column");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("CsvWriter row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void CsvWriter::write(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("CsvWriter: cannot open " + path);
  out << to_string();
  if (!out) throw std::runtime_error("CsvWriter: write failed for " + path);
}

}  // namespace ss
