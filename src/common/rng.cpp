#include "common/rng.h"

namespace ss {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork(std::uint64_t stream_id) noexcept {
  // Mix the stream id into a fresh seed derived from our state without
  // disturbing our own sequence more than one draw.
  std::uint64_t base = next_u64();
  std::uint64_t sm = base ^ (stream_id * 0x9E3779B97f4A7C15ULL + 0xD1B54A32D192ED03ULL);
  return Rng(splitmix64(sm));
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53-bit mantissa from the top bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  // Rejection-free for our purposes: modulo bias is negligible for n << 2^64
  // but we still use Lemire's multiply-shift reduction for uniformity.
  const unsigned __int128 m =
      static_cast<unsigned __int128>(next_u64()) * static_cast<unsigned __int128>(n);
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::gaussian() noexcept {
  // Box-Muller; guard against log(0).
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return r * std::cos(2.0 * 3.14159265358979323846 * u2);
}

double Rng::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(gaussian(mu, sigma));
}

double Rng::exponential(double lambda) noexcept {
  double u = uniform();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / lambda;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

void Rng::shuffle(std::vector<std::uint32_t>& v) noexcept {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_index(i));
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace ss
