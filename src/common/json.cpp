#include "common/json.h"

#include <cstdio>
#include <ostream>

namespace ss {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os) : os_(os) { os_ << "[\n"; }

ChromeTraceWriter::~ChromeTraceWriter() {
  if (!closed_) close();
}

void ChromeTraceWriter::end_pending() {
  if (in_args_) {
    os_ << '}';
    in_args_ = false;
  }
  if (in_event_) {
    os_ << '}';
    in_event_ = false;
  }
}

ChromeTraceWriter& ChromeTraceWriter::event() {
  end_pending();
  if (!first_event_) os_ << ",\n";
  first_event_ = false;
  os_ << '{';
  in_event_ = true;
  first_field_ = true;
  return *this;
}

void ChromeTraceWriter::key(const char* k) {
  if (!first_field_) os_ << ',';
  first_field_ = false;
  os_ << '"' << k << "\":";
}

ChromeTraceWriter& ChromeTraceWriter::field(const char* k, std::int64_t v) {
  key(k);
  os_ << v;
  return *this;
}

ChromeTraceWriter& ChromeTraceWriter::field(const char* k, int v) {
  return field(k, static_cast<std::int64_t>(v));
}

ChromeTraceWriter& ChromeTraceWriter::field(const char* k, double v) {
  key(k);
  os_ << v;
  return *this;
}

ChromeTraceWriter& ChromeTraceWriter::field(const char* k, const std::string& v) {
  key(k);
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

ChromeTraceWriter& ChromeTraceWriter::field(const char* k, const char* v) {
  return field(k, std::string(v));
}

ChromeTraceWriter& ChromeTraceWriter::raw(const char* k, const std::string& json) {
  key(k);
  os_ << json;
  return *this;
}

ChromeTraceWriter& ChromeTraceWriter::args() {
  key("args");
  os_ << '{';
  in_args_ = true;
  first_field_ = true;
  return *this;
}

void ChromeTraceWriter::close() {
  end_pending();
  os_ << "\n]\n";
  closed_ = true;
}

}  // namespace ss
