// Aligned ASCII table printer used by the bench harnesses to reproduce the
// paper's tables/figure series as terminal output.
#pragma once

#include <string>
#include <vector>

namespace ss {

/// Column-aligned text table.  Cells are strings; numeric helpers format with
/// fixed precision.  Rendering pads each column to its widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Format helpers.
  static std::string num(double v, int precision = 3);
  static std::string pct(double v, int precision = 1);       ///< 0.1234 -> "12.3%"
  static std::string ratio(double v, int precision = 2);     ///< 1.87 -> "1.87X"

  /// Render with a separator under the header.
  [[nodiscard]] std::string render() const;

  /// Render directly to stdout with a title line.  If the environment
  /// variable SS_BENCH_CSV_DIR is set, additionally write the table as
  /// `<dir>/<slugified title>.csv` so bench output is plot-ready without
  /// scraping terminal text.
  void print(const std::string& title) const;

  /// The filename-safe slug `print` derives from a title (exposed for tests).
  [[nodiscard]] static std::string slugify(const std::string& title);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ss
