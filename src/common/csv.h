// Tiny CSV writer for persisting run logs (used by the search-cost analysis
// to replay training outcomes, mirroring the paper's use of training logs in
// Section VI-C1).
#pragma once

#include <string>
#include <vector>

namespace ss {

/// Accumulates rows and writes an RFC-4180-ish CSV file (quotes fields that
/// contain commas/quotes/newlines).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Write to file; throws std::runtime_error on IO failure.
  void write(const std::string& path) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ss
