// Shared JSON emission: string escaping and a Chrome trace-event array
// writer.  Both trace exporters — the simulator's TraceRecorder
// (ps/trace.h, virtual time) and the wall-clock tracer (obs/tracer.h) —
// serialize through this one path, so the two timelines stay byte-level
// compatible and open in the same Perfetto view.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace ss {

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

/// Streams a Chrome trace-event JSON array: one event object per line,
/// comma separation handled here.  Fields are emitted in call order (the
/// format readers accept any order, but tests pin ours), strings through
/// json_escape.  `args()` opens the event's "args" object; it stays open
/// until the next event() or close().
///
///   ChromeTraceWriter w(os);
///   w.event().field("ph", "X").field("pid", 1).field("tid", 3)
///    .field("ts", t0).field("dur", dt).field("name", "task")
///    .args().field("images", 64);
///   w.close();
class ChromeTraceWriter {
 public:
  explicit ChromeTraceWriter(std::ostream& os);
  ~ChromeTraceWriter();
  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  /// Finish the pending event (if any) and start the next object.
  ChromeTraceWriter& event();
  ChromeTraceWriter& field(const char* key, std::int64_t v);
  ChromeTraceWriter& field(const char* key, int v);
  ChromeTraceWriter& field(const char* key, double v);
  ChromeTraceWriter& field(const char* key, const std::string& v);
  ChromeTraceWriter& field(const char* key, const char* v);
  /// Pre-encoded JSON value (no quoting or escaping applied).
  ChromeTraceWriter& raw(const char* key, const std::string& json);
  /// Open the "args" sub-object of the current event.
  ChromeTraceWriter& args();
  /// Finish the pending event and close the array ("\n]\n").
  void close();

 private:
  void key(const char* k);
  void end_pending();

  std::ostream& os_;
  bool in_event_ = false;
  bool in_args_ = false;
  bool first_event_ = true;
  bool first_field_ = true;
  bool closed_ = false;
};

}  // namespace ss
