// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the library draws from an `Rng` seeded from
// an explicit stream id, so a whole distributed-training simulation is
// reproducible bit-for-bit given (seed, run index).  We intentionally do not
// use std::mt19937 default-seeding or global RNG state anywhere.
#pragma once

#include <cstdint>
#include <cmath>
#include <vector>

namespace ss {

/// xoshiro256** PRNG with SplitMix64 seeding.  Small, fast, and stable
/// across platforms (unlike distribution implementations in libstdc++ vs
/// libc++, our gaussian/uniform are hand-rolled so results never drift).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Derive an independent child stream; used to give each (worker, run)
  /// pair its own stream without correlation.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) noexcept;

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal
  /// and forkable).
  double gaussian() noexcept;

  /// Normal with given mean / stddev.
  double gaussian(double mean, double stddev) noexcept;

  /// Log-normal: exp(N(mu, sigma)).  Used for compute-time jitter.
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential with rate lambda.
  double exponential(double lambda) noexcept;

  /// Bernoulli trial with probability p.
  bool bernoulli(double p) noexcept;

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<std::uint32_t>& v) noexcept;

 private:
  std::uint64_t s_[4];
};

/// SplitMix64 step; exposed for hashing-style seed derivation.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

}  // namespace ss
