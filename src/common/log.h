// Minimal leveled logger.  Quiet by default so bench output stays clean;
// tests and examples can raise the level, and the SS_LOG_LEVEL environment
// variable (debug|info|warn|error|off) sets the starting level without a
// code change — handy for the multi-process deployment where worker
// processes have no flag plumbing of their own.
#pragma once

#include <optional>
#include <sstream>
#include <string>

namespace ss {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Parse "debug" / "info" / "warn" / "error" / "off" (case-sensitive);
/// nullopt for anything else.  Used for SS_LOG_LEVEL and CLI --log-level.
[[nodiscard]] std::optional<LogLevel> parse_log_level(const std::string& name) noexcept;

/// Emit one line to stderr, prefixed with a level tag, seconds since
/// process start (monotonic), and a compact thread id.  Thread-safe.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace ss
