// Virtual time used by the discrete-event cluster simulator.
//
// We keep time as integral microseconds to make event ordering exact (no
// floating-point tie ambiguity); helpers convert to seconds/minutes for
// reporting.
#pragma once

#include <compare>
#include <cstdint>

namespace ss {

/// A point (or span) on the simulator's virtual clock, in microseconds.
class VTime {
 public:
  constexpr VTime() noexcept = default;

  [[nodiscard]] static constexpr VTime from_us(std::int64_t us) noexcept { return VTime(us); }
  [[nodiscard]] static constexpr VTime from_ms(double ms) noexcept {
    return VTime(static_cast<std::int64_t>(ms * 1e3));
  }
  [[nodiscard]] static constexpr VTime from_seconds(double s) noexcept {
    return VTime(static_cast<std::int64_t>(s * 1e6));
  }
  [[nodiscard]] static constexpr VTime from_minutes(double m) noexcept {
    return from_seconds(m * 60.0);
  }
  [[nodiscard]] static constexpr VTime zero() noexcept { return VTime(0); }

  [[nodiscard]] constexpr std::int64_t us() const noexcept { return us_; }
  [[nodiscard]] constexpr double ms() const noexcept { return static_cast<double>(us_) / 1e3; }
  [[nodiscard]] constexpr double seconds() const noexcept {
    return static_cast<double>(us_) / 1e6;
  }
  [[nodiscard]] constexpr double minutes() const noexcept { return seconds() / 60.0; }

  constexpr auto operator<=>(const VTime&) const noexcept = default;

  constexpr VTime operator+(VTime o) const noexcept { return VTime(us_ + o.us_); }
  constexpr VTime operator-(VTime o) const noexcept { return VTime(us_ - o.us_); }
  constexpr VTime& operator+=(VTime o) noexcept {
    us_ += o.us_;
    return *this;
  }
  [[nodiscard]] constexpr VTime scaled(double k) const noexcept {
    return VTime(static_cast<std::int64_t>(static_cast<double>(us_) * k));
  }

 private:
  constexpr explicit VTime(std::int64_t us) noexcept : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace ss
