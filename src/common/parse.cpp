#include "common/parse.h"

#include <charconv>
#include <limits>
#include <system_error>

#include "common/error.h"

namespace ss {

namespace {

[[noreturn]] void fail(const std::string& flag, const char* kind, const std::string& value) {
  throw ConfigError(flag + ": expected " + kind + ", got '" + value + "'");
}

template <typename T>
T parse_with_from_chars(const std::string& flag, const char* kind, const std::string& value) {
  T out{};
  const char* first = value.data();
  const char* last = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  // from_chars demands the whole string parse cleanly: no leading
  // whitespace, no trailing junk, no out-of-range values.
  if (ec != std::errc{} || ptr != last || value.empty()) fail(flag, kind, value);
  return out;
}

}  // namespace

std::uint64_t parse_u64(const std::string& flag, const std::string& value) {
  return parse_with_from_chars<std::uint64_t>(flag, "integer", value);
}

std::int64_t parse_i64(const std::string& flag, const std::string& value) {
  return parse_with_from_chars<std::int64_t>(flag, "integer", value);
}

int parse_int(const std::string& flag, const std::string& value) {
  const std::int64_t v = parse_i64(flag, value);
  if (v < std::numeric_limits<int>::min() || v > std::numeric_limits<int>::max())
    fail(flag, "integer", value);
  return static_cast<int>(v);
}

double parse_double(const std::string& flag, const std::string& value) {
  return parse_with_from_chars<double>(flag, "number", value);
}

}  // namespace ss
