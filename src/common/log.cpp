#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace ss {

namespace {

LogLevel initial_level() noexcept {
  const char* env = std::getenv("SS_LOG_LEVEL");
  if (env != nullptr) {
    if (const auto parsed = parse_log_level(env)) return *parsed;
  }
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{initial_level()};
std::mutex g_mutex;

const char* level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

/// Monotonic seconds since the first log call (≈ process start).
double uptime_seconds() noexcept {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch).count();
}

/// Small stable per-thread id (1, 2, 3, ... in first-log order) — readable
/// in interleaved multi-thread output where the native id is noise.
int thread_tag() noexcept {
  static std::atomic<int> next{1};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

std::optional<LogLevel> parse_log_level(const std::string& name) noexcept {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

void log_line(LogLevel level, const std::string& msg) {
  char stamp[32];
  std::snprintf(stamp, sizeof(stamp), "%10.3f", uptime_seconds());
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << level_tag(level) << " " << stamp << " t" << thread_tag() << "] " << msg
            << "\n";
}

}  // namespace ss
