// Library error types.  We follow the Core Guidelines (E.14): distinct
// exception types per failure category, all rooted in std::runtime_error so
// callers can catch coarsely or finely.
#pragma once

#include <stdexcept>
#include <string>

namespace ss {

/// Invalid configuration supplied by the caller (bad cluster size,
/// inconsistent hyper-parameters, ...).
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Shape/dimension mismatch in tensor or layer plumbing.
class ShapeError : public std::runtime_error {
 public:
  explicit ShapeError(const std::string& what) : std::runtime_error(what) {}
};

/// Training diverged (loss went non-finite or exploded) — the paper's
/// "divergence error" (Section VI-B1, exp. setup 3 under ASP).
class DivergenceError : public std::runtime_error {
 public:
  explicit DivergenceError(const std::string& what) : std::runtime_error(what) {}
};

/// Checkpoint serialization / restore failure.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what) : std::runtime_error(what) {}
};

/// Transport-layer failure: malformed wire frame, socket error, peer
/// disconnect, or a protocol violation between worker and PS server.
class NetError : public std::runtime_error {
 public:
  explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace ss
