// Small statistics toolkit used by the profiler, the straggler detector and
// the bench harnesses: running moments, percentiles, and fixed-size sliding
// windows over throughput samples.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace ss {

/// Welford running mean/variance.  O(1) update, numerically stable.
class RunningStat {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance (paper's straggler rule uses sigma of the cluster
  /// sample, not an unbiased estimator).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  void reset() noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector; 0 for empty input.
double mean_of(const std::vector<double>& xs) noexcept;

/// Population standard deviation; 0 for fewer than 2 samples.
double stddev_of(const std::vector<double>& xs) noexcept;

/// Linear-interpolated percentile, p in [0, 100].  Copies + sorts.
double percentile_of(std::vector<double> xs, double p) noexcept;

/// Fixed-capacity sliding window of samples with O(1) mean queries.
/// Used for per-worker throughput monitoring (Section IV-B2).
class SlidingWindow {
 public:
  explicit SlidingWindow(std::size_t capacity);

  void add(double x);
  [[nodiscard]] bool full() const noexcept { return samples_.size() == capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] double mean() const noexcept;
  void clear() noexcept;

 private:
  std::size_t capacity_;
  std::deque<double> samples_;
  double sum_ = 0.0;
};

}  // namespace ss
