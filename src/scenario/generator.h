// Seeded random scenario generation: the fuzz half of the scenario engine.
//
// generate_scenario(seed) draws a valid composed scenario — switch schedule,
// straggler schedule, membership plan — deterministically from the seed.
// Validity is maintained *during* generation, not patched up afterwards:
// phase budgets always leave enough tail for every switch to be paid,
// membership events are drawn against a simulated alive set (never a double
// crash, never below ElasticConfig::min_workers, joins claim sequential
// slots), and event steps are strictly increasing.  Every step quantity is a
// multiple of the cluster size, so any scenario whose protocols the threaded
// runtime supports converts exactly (Scenario::to_threaded_config).
//
// The same seed always generates the same scenario (the generator is a pure
// function of (seed, config)), which is what makes a failing fuzz seed a
// permanent, replayable regression case: `sync_switch_cli scenario
// replay --seed=N`.
#pragma once

#include <cstdint>

#include "scenario/scenario.h"

namespace ss {

/// Knobs bounding the drawn scenarios.  Defaults match the fuzz corpus the
/// CI suite runs; the CLI exposes workers/steps.
struct ScenarioGenConfig {
  std::size_t num_workers = 4;
  std::int64_t total_steps = 256;  ///< rounded up to a num_workers multiple
  std::size_t min_workers = 2;     ///< membership floor (crash/leave keep >= this)
  std::size_t max_phases = 3;
  std::size_t max_membership_events = 3;
  std::size_t max_joins = 2;
  std::size_t max_straggler_events = 2;
  /// Allow DSSP legs (simulator-only; such scenarios fail
  /// threaded_compatible() and are checked on the sim runtime alone).
  bool sim_only_protocols = true;
};

/// Draw the scenario for `seed`.  Deterministic; throws nothing for any
/// seed — every drawn scenario constructs valid schedule/plan objects.
[[nodiscard]] Scenario generate_scenario(std::uint64_t seed,
                                         const ScenarioGenConfig& cfg = {});

}  // namespace ss
