#include "scenario/scenario.h"

#include <sstream>
#include <vector>

#include "common/error.h"

namespace ss {

std::string Scenario::label() const {
  std::ostringstream os;
  os << name << "|n=" << num_workers << "|T=" << total_steps
     << "|sched=" << schedule.label() << "|strg=" << stragglers.label()
     << "|elastic=" << elastic.label() << "|sspb=" << ssp_staleness_bound
     << "|seed=" << seed;
  return os.str();
}

RunRequest Scenario::to_run_request() const {
  // The standard tiny fuzz workload (the determinism suite's fixture): a
  // linear model on easy 3-class synthetic data with ms-scale cluster
  // timings, so one scenario run costs tens of milliseconds and hundreds of
  // seeds fit in a CI job.
  RunRequest req;
  req.workload.arch = ModelArch::kLinear;
  req.workload.data = SyntheticSpec::cifar10_like();
  req.workload.data.num_classes = 3;
  req.workload.data.feature_dim = 16;
  req.workload.data.train_size = 1024;
  req.workload.data.test_size = 512;
  req.workload.data.class_separation = 1.2;
  req.workload.total_steps = total_steps;
  req.workload.hyper.batch_size = 16;
  req.workload.hyper.learning_rate = 0.05;
  req.workload.hyper.momentum = 0.9;
  req.workload.eval_interval = 32;

  req.cluster.num_workers = num_workers;
  req.cluster.compute_per_batch = VTime::from_ms(20.0);
  req.cluster.reference_batch = 16;
  req.cluster.compute_jitter_sigma = 0.1;
  req.cluster.net_latency = VTime::from_ms(1.0);
  req.cluster.payload_bytes = 1000.0;
  req.cluster.bandwidth_bps = 1e8;
  req.cluster.sync_base = VTime::from_ms(20.0);
  req.cluster.sync_quad = VTime::from_ms(0.5);

  // Always an explicit schedule: an empty one would fall back to the legacy
  // two-phase policy fields, which a scenario must never depend on.
  req.policy.schedule = schedule.empty() ? SwitchSchedule::single(Protocol::kBsp) : schedule;
  req.policy.ssp_staleness_bound = ssp_staleness_bound;
  req.straggler_schedule = stragglers;
  req.elastic = elastic;
  req.actuator_time_scale = 0.01;
  req.seed = seed;
  return req;
}

bool Scenario::threaded_compatible() const {
  const auto n = static_cast<std::int64_t>(num_workers);
  if (n <= 0 || total_steps % n != 0) return false;
  for (const SwitchPhase& p : schedule.phases()) {
    if (!threaded_supported(p.protocol)) return false;
    if (p.trigger != SwitchTrigger::kStepCount) return false;
    if (p.steps % n != 0) return false;
  }
  if (elastic.plan.reactive()) return false;
  for (const MembershipEvent& e : elastic.plan.events())
    if (e.at_step % n != 0) return false;
  if (elastic.snapshot_interval % n != 0) return false;
  return true;
}

ThreadedTrainConfig Scenario::to_threaded_config() const {
  if (!threaded_compatible())
    throw ConfigError("Scenario: '" + name +
                      "' is not threaded-compatible (sim-only protocol, reactive "
                      "trigger/membership, or step quantities not aligned to the "
                      "cluster size)");
  const auto n = static_cast<std::int64_t>(num_workers);
  ThreadedTrainConfig cfg;
  cfg.num_workers = num_workers;
  cfg.steps_per_worker = total_steps / n;
  cfg.batch_size = 16;
  cfg.lr = 0.05;
  cfg.momentum = 0.9;
  cfg.seed = seed;
  cfg.ssp_staleness_bound = ssp_staleness_bound;

  if (!schedule.empty()) {
    std::vector<SwitchPhase> local = schedule.phases();
    for (SwitchPhase& p : local) p.steps /= n;
    cfg.schedule = SwitchSchedule(std::move(local));
    cfg.protocol = cfg.schedule.phase(0).protocol;
  } else {
    cfg.protocol = Protocol::kBsp;
  }

  cfg.elastic = elastic;
  std::vector<MembershipEvent> events = elastic.plan.events();
  for (MembershipEvent& e : events) e.at_step /= n;
  cfg.elastic.plan = events.empty() ? MembershipPlan() : MembershipPlan(std::move(events));
  cfg.elastic.snapshot_interval = elastic.snapshot_interval / n;
  return cfg;
}

}  // namespace ss
