#include "scenario/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <exception>
#include <sstream>

#include "core/run_cache.h"
#include "data/synthetic.h"
#include "nn/zoo.h"
#include "ps/sim_runtime.h"
#include "ps/threaded_runtime.h"

namespace ss {

namespace {

// --- Bitwise RunResult comparison ------------------------------------------

bool bits_equal(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

// --- Simulator-side observer -----------------------------------------------

/// Counts what the structural RunResult cannot show: per-update staleness by
/// protocol family, and the final global step the PS actually reached.
class RecordingSink final : public MetricsSink {
 public:
  void on_task(const TaskObservation&) override {}
  void on_update(const UpdateObservation& obs) override {
    ++updates;
    if (obs.global_step < last_global_step) ++non_monotone_steps;
    last_global_step = obs.global_step;
    if (is_synchronous(obs.protocol)) {
      if (obs.staleness != 0) ++sync_staleness_violations;
    } else {
      async_updates += 1;
      max_async_staleness = std::max(max_async_staleness, obs.staleness);
      if (obs.protocol == Protocol::kSsp || obs.protocol == Protocol::kDssp)
        max_bounded_staleness = std::max(max_bounded_staleness, obs.staleness);
    }
  }
  void on_eval(std::int64_t, VTime, double) override {}

  std::int64_t updates = 0;
  std::int64_t async_updates = 0;
  std::int64_t last_global_step = 0;
  std::int64_t non_monotone_steps = 0;
  std::int64_t sync_staleness_violations = 0;
  std::int64_t max_async_staleness = 0;
  std::int64_t max_bounded_staleness = 0;
};

// --- Scenario shape helpers ------------------------------------------------

struct ScenarioShape {
  std::int64_t max_slots = 0;       ///< initial workers + joins
  std::size_t num_crashes = 0;
  std::size_t planned_switches = 0;
  bool switch_margin_holds = false; ///< tail big enough to pay every switch
  bool all_synchronous = true;
  int max_bound = 0;                ///< largest effective SSP/DSSP bound
  bool has_bounded_phase = false;   ///< any SSP/DSSP leg
};

ScenarioShape shape_of(const Scenario& s) {
  ScenarioShape sh;
  sh.max_slots =
      static_cast<std::int64_t>(s.num_workers + s.elastic.plan.join_count());
  for (const MembershipEvent& e : s.elastic.plan.events())
    if (e.kind == MembershipEventKind::kCrash) ++sh.num_crashes;

  const auto& phases = s.schedule.phases();
  sh.planned_switches = phases.empty() ? 0 : phases.size() - 1;
  std::int64_t nonlast = 0;
  for (std::size_t i = 0; i + 1 < phases.size(); ++i) nonlast += phases[i].steps;
  // Each phase transition can overshoot by at most max_slots - 1 steps (one
  // BSP round with every slot alive); a tail bigger than the accumulated
  // worst case means every planned switch is paid.
  sh.switch_margin_holds =
      s.total_steps - nonlast >
      static_cast<std::int64_t>(phases.size() + 1) * sh.max_slots;

  sh.max_bound = s.ssp_staleness_bound;
  if (phases.empty()) {
    sh.all_synchronous = true;  // to_run_request installs a single BSP phase
  } else {
    for (const SwitchPhase& p : phases) {
      if (!is_synchronous(p.protocol)) sh.all_synchronous = false;
      if (p.protocol == Protocol::kSsp || p.protocol == Protocol::kDssp) {
        sh.has_bounded_phase = true;
        int b = p.ssp_staleness_bound >= 0 ? p.ssp_staleness_bound : s.ssp_staleness_bound;
        if (p.protocol == Protocol::kDssp) b += 8;  // DSSP credit ceiling (sim default)
        sh.max_bound = std::max(sh.max_bound, b);
      }
    }
  }
  return sh;
}

// --- Threaded expected accounting ------------------------------------------

struct SlotInterval {
  std::int64_t birth = 0;
  std::int64_t death = 0;  ///< exclusive, in local steps
};

std::vector<SlotInterval> slot_intervals(const ThreadedTrainConfig& cfg) {
  const auto total = cfg.steps_per_worker;
  std::vector<SlotInterval> slots(cfg.num_workers, SlotInterval{0, total});
  for (const MembershipEvent& e : cfg.elastic.plan.events()) {
    if (e.kind == MembershipEventKind::kJoin)
      slots.push_back(SlotInterval{e.at_step, total});
    else if (e.worker >= 0 && static_cast<std::size_t>(e.worker) < slots.size())
      slots[static_cast<std::size_t>(e.worker)].death = e.at_step;
  }
  return slots;
}

std::int64_t overlap(std::int64_t a_lo, std::int64_t a_hi, std::int64_t b_lo,
                     std::int64_t b_hi) {
  return std::max<std::int64_t>(0, std::min(a_hi, b_hi) - std::max(a_lo, b_lo));
}

/// PS updates the threaded run applies in local steps [0, horizon): one
/// aggregated update per BSP round, one per worker step under ASP/SSP,
/// clipped against each slot's lifetime.  Exact because scripted membership
/// and phase boundaries both resolve at common drain steps.
std::int64_t expected_updates_until(const ThreadedTrainConfig& cfg,
                                    const std::vector<SlotInterval>& slots,
                                    std::int64_t horizon) {
  std::vector<SwitchPhase> phases;
  if (cfg.schedule.empty()) {
    SwitchPhase p;
    p.protocol = cfg.protocol;
    phases.push_back(p);
  } else {
    phases = cfg.schedule.phases();
  }
  std::int64_t updates = 0;
  std::int64_t start = 0;
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const std::int64_t end =
        i + 1 == phases.size() ? cfg.steps_per_worker : start + phases[i].steps;
    const std::int64_t lo = std::min(start, horizon);
    const std::int64_t hi = std::min(end, horizon);
    if (phases[i].protocol == Protocol::kBsp) {
      updates += hi - lo;
    } else {
      for (const SlotInterval& sl : slots) updates += overlap(lo, hi, sl.birth, sl.death);
    }
    start = end;
  }
  return updates;
}

void check_threaded(const Scenario& s, std::vector<std::string>& violations) {
  auto viol = [&](const std::string& msg) { violations.push_back("threaded: " + msg); };

  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_size = 512;
  spec.test_size = 128;
  spec.num_classes = 4;
  spec.feature_dim = 16;
  spec.class_separation = 1.5;
  const DataSplit split = make_synthetic(spec);
  Rng model_rng(11);
  const Model proto = make_model(ModelArch::kLinear, split.train.feature_dim(), 4, model_rng);

  ThreadedTrainConfig cfg = s.to_threaded_config();
  ThreadedTrainResult tr;
  try {
    tr = threaded_train(proto, split.train, cfg);
  } catch (const std::exception& e) {
    viol(std::string("threaded_train threw: ") + e.what());
    return;
  }

  const std::vector<SlotInterval> slots = slot_intervals(cfg);
  const std::int64_t expected_updates =
      expected_updates_until(cfg, slots, cfg.steps_per_worker);
  if (tr.total_updates != expected_updates)
    viol("total_updates = " + std::to_string(tr.total_updates) + ", expected exactly " +
         std::to_string(expected_updates));

  std::int64_t worker_steps = 0;
  for (const SlotInterval& sl : slots) worker_steps += sl.death - sl.birth;
  const std::int64_t expected_bytes =
      worker_steps * static_cast<std::int64_t>(tr.final_params.size() * sizeof(float));
  if (tr.push_bytes != expected_bytes)
    viol("push_bytes = " + std::to_string(tr.push_bytes) + ", expected exactly " +
         std::to_string(expected_bytes));

  const std::size_t expected_phases = std::max<std::size_t>(cfg.schedule.size(), 1);
  if (tr.phases.size() != expected_phases) {
    viol("executed " + std::to_string(tr.phases.size()) + " phases, expected " +
         std::to_string(expected_phases));
  } else {
    for (std::size_t i = 0; i < tr.phases.size(); ++i) {
      const ThreadedPhaseStats& ph = tr.phases[i];
      const SwitchPhase& plan =
          cfg.schedule.empty() ? SwitchPhase{} : cfg.schedule.phase(i);
      const Protocol proto_i = cfg.schedule.empty() ? cfg.protocol : plan.protocol;
      const std::string tag = "phase " + std::to_string(i) + " (" + protocol_name(proto_i) + ")";
      if (ph.protocol != proto_i) viol(tag + ": ran protocol " + protocol_name(ph.protocol));
      if (proto_i == Protocol::kBsp) {
        if (ph.mean_staleness != 0.0)
          viol(tag + ": BSP mean_staleness = " + std::to_string(ph.mean_staleness));
        if (ph.max_clock_gap != 0)
          viol(tag + ": BSP max_clock_gap = " + std::to_string(ph.max_clock_gap));
      }
      if (proto_i == Protocol::kSsp) {
        const int bound = plan.ssp_staleness_bound >= 0 ? plan.ssp_staleness_bound
                                                        : cfg.ssp_staleness_bound;
        if (ph.max_clock_gap > bound)
          viol(tag + ": SSP max_clock_gap = " + std::to_string(ph.max_clock_gap) +
               " exceeds the bound " + std::to_string(bound));
      }
      if (ph.ended_by_trigger) viol(tag + ": ended by a trigger in a scripted scenario");
    }
  }

  const auto& plan_events = cfg.elastic.plan.events();
  if (tr.membership.size() != plan_events.size()) {
    viol("resolved " + std::to_string(tr.membership.size()) + " membership events, planned " +
         std::to_string(plan_events.size()));
  } else {
    for (std::size_t i = 0; i < tr.membership.size(); ++i) {
      const ThreadedMembershipStats& m = tr.membership[i];
      const std::string tag = "membership event " + std::to_string(i) + " (" +
                              membership_event_name(plan_events[i].kind) + "@" +
                              std::to_string(plan_events[i].at_step) + ")";
      if (m.kind != plan_events[i].kind || m.at_step != plan_events[i].at_step)
        viol(tag + ": resolved as " + membership_event_name(m.kind) + "@" +
             std::to_string(m.at_step));
      const bool restoring_crash = m.kind == MembershipEventKind::kCrash &&
                                   cfg.elastic.recovery == RecoveryMode::kRestoreSnapshot;
      if (!restoring_crash) {
        if (m.updates_lost != 0)
          viol(tag + ": updates_lost = " + std::to_string(m.updates_lost) +
               " on a non-restoring event");
      } else {
        const std::int64_t before = expected_updates_until(cfg, slots, m.at_step);
        if (cfg.elastic.snapshot_interval == 0) {
          // Only the run-start snapshot exists, so the rollback distance is
          // exactly the progress before the crash.
          if (m.updates_lost != before)
            viol(tag + ": updates_lost = " + std::to_string(m.updates_lost) +
                 ", expected exactly " + std::to_string(before) +
                 " (run-start snapshot only)");
        } else if (m.updates_lost < 0 || m.updates_lost > before) {
          // The async snapshotter may lag its cadence, but it can never lose
          // more than everything applied before the crash.
          viol(tag + ": updates_lost = " + std::to_string(m.updates_lost) +
               " outside [0, " + std::to_string(before) + "]");
        }
      }
    }
  }

  for (float v : tr.final_params) {
    if (!std::isfinite(v)) {
      viol("final parameters are not finite");
      break;
    }
  }
}

}  // namespace

std::vector<std::string> diff_run_results(const RunResult& a, const RunResult& b) {
  std::vector<std::string> diff;
  auto cmp = [&](const char* field, bool equal) {
    if (!equal) diff.emplace_back(field);
  };
  cmp("diverged", a.diverged == b.diverged);
  cmp("converged", a.converged == b.converged);
  cmp("converged_accuracy", bits_equal(a.converged_accuracy, b.converged_accuracy));
  cmp("final_accuracy", bits_equal(a.final_accuracy, b.final_accuracy));
  cmp("best_accuracy", bits_equal(a.best_accuracy, b.best_accuracy));
  cmp("train_time_seconds", bits_equal(a.train_time_seconds, b.train_time_seconds));
  cmp("init_time_seconds", bits_equal(a.init_time_seconds, b.init_time_seconds));
  cmp("switch_overhead_seconds",
      bits_equal(a.switch_overhead_seconds, b.switch_overhead_seconds));
  cmp("num_switches", a.num_switches == b.num_switches);
  cmp("num_membership_events", a.num_membership_events == b.num_membership_events);
  cmp("recovery_overhead_seconds",
      bits_equal(a.recovery_overhead_seconds, b.recovery_overhead_seconds));
  cmp("updates_lost", a.updates_lost == b.updates_lost);
  cmp("mean_staleness", bits_equal(a.mean_staleness, b.mean_staleness));
  cmp("throughput_images_per_sec",
      bits_equal(a.throughput_images_per_sec, b.throughput_images_per_sec));
  cmp("final_train_loss", bits_equal(a.final_train_loss, b.final_train_loss));
  cmp("steps_completed", a.steps_completed == b.steps_completed);

  bool loss_equal = a.loss_curve.size() == b.loss_curve.size();
  for (std::size_t i = 0; loss_equal && i < a.loss_curve.size(); ++i)
    loss_equal = a.loss_curve[i].step == b.loss_curve[i].step &&
                 bits_equal(a.loss_curve[i].seconds, b.loss_curve[i].seconds) &&
                 bits_equal(a.loss_curve[i].loss, b.loss_curve[i].loss);
  cmp("loss_curve", loss_equal);

  bool acc_equal = a.accuracy_curve.size() == b.accuracy_curve.size();
  for (std::size_t i = 0; acc_equal && i < a.accuracy_curve.size(); ++i)
    acc_equal = a.accuracy_curve[i].step == b.accuracy_curve[i].step &&
                bits_equal(a.accuracy_curve[i].seconds, b.accuracy_curve[i].seconds) &&
                bits_equal(a.accuracy_curve[i].accuracy, b.accuracy_curve[i].accuracy);
  cmp("accuracy_curve", acc_equal);
  return diff;
}

std::string ScenarioReport::summary() const {
  std::ostringstream os;
  os << (passed() ? "PASS " : "FAIL ") << label;
  for (const std::string& v : violations) os << "\n  - " << v;
  return os.str();
}

ScenarioReport check_scenario(const Scenario& s, const CheckOptions& opts) {
  ScenarioReport rep;
  rep.label = s.label();
  auto viol = [&](const std::string& msg) { rep.violations.push_back(msg); };
  const ScenarioShape sh = shape_of(s);

  RunRequest req = s.to_run_request();
  RecordingSink sink;
  req.observer = &sink;
  try {
    TrainingSession session(req);
    rep.result = session.run();
  } catch (const std::exception& e) {
    viol(std::string("sim run threw: ") + e.what());
    return rep;
  }
  const RunResult& r = rep.result;

  if (r.diverged) viol("run diverged on the easy fuzz workload");
  if (!std::isfinite(r.final_train_loss))
    viol("final_train_loss is not finite: " + std::to_string(r.final_train_loss));

  if (r.steps_completed < s.total_steps ||
      r.steps_completed > s.total_steps + sh.max_slots)
    viol("steps_completed = " + std::to_string(r.steps_completed) + " outside [" +
         std::to_string(s.total_steps) + ", " +
         std::to_string(s.total_steps + sh.max_slots) + "] (budget + round overshoot)");
  if (sink.updates > 0 && sink.last_global_step != r.steps_completed)
    viol("observer saw the PS stop at step " + std::to_string(sink.last_global_step) +
         " but steps_completed = " + std::to_string(r.steps_completed));
  if (sink.non_monotone_steps > 0)
    viol(std::to_string(sink.non_monotone_steps) + " updates with a decreasing global step");

  const auto planned = static_cast<int>(sh.planned_switches);
  if (sh.switch_margin_holds) {
    if (r.num_switches != planned)
      viol("num_switches = " + std::to_string(r.num_switches) + ", planned exactly " +
           std::to_string(planned));
  } else if (r.num_switches > planned) {
    viol("num_switches = " + std::to_string(r.num_switches) + " exceeds the " +
         std::to_string(planned) + " planned boundaries");
  }

  const auto planned_events = static_cast<int>(s.elastic.plan.size());
  if (r.num_membership_events != planned_events)
    viol("num_membership_events = " + std::to_string(r.num_membership_events) +
         ", planned " + std::to_string(planned_events));
  if (planned_events == 0 && r.recovery_overhead_seconds != 0.0)
    viol("recovery_overhead_seconds = " + std::to_string(r.recovery_overhead_seconds) +
         " without membership events");
  if (r.recovery_overhead_seconds < 0.0) viol("recovery_overhead_seconds is negative");

  // Crash-loss window.  Per crash: nothing under kKeepLive; everything since
  // the last cadence snapshot otherwise, which the interval bounds up to the
  // round overshoot at the capture boundary.  With snapshot_interval == 0
  // only the run-start snapshot exists, so each crash loses all progress —
  // at least its event step, at most that plus the overshoot.
  const auto crashes = static_cast<std::int64_t>(sh.num_crashes);
  if (crashes == 0 || s.elastic.recovery == RecoveryMode::kKeepLive) {
    if (r.updates_lost != 0)
      viol("updates_lost = " + std::to_string(r.updates_lost) +
           " with no restoring crash");
  } else if (s.elastic.snapshot_interval > 0) {
    const std::int64_t per_crash = s.elastic.snapshot_interval + sh.max_slots;
    if (r.updates_lost < 0 || r.updates_lost > crashes * per_crash)
      viol("updates_lost = " + std::to_string(r.updates_lost) + " outside [0, " +
           std::to_string(crashes * per_crash) + "] (crashes x (interval + overshoot))");
  } else {
    std::int64_t lo = 0, hi = 0;
    for (const MembershipEvent& e : s.elastic.plan.events())
      if (e.kind == MembershipEventKind::kCrash) {
        lo += e.at_step;
        hi += e.at_step + sh.max_slots;
      }
    if (r.updates_lost < lo || r.updates_lost > hi)
      viol("updates_lost = " + std::to_string(r.updates_lost) + " outside [" +
           std::to_string(lo) + ", " + std::to_string(hi) +
           "] (run-start snapshot only)");
  }

  if (sink.sync_staleness_violations > 0)
    viol(std::to_string(sink.sync_staleness_violations) +
         " synchronous updates with nonzero staleness");
  if (sh.all_synchronous) {
    if (r.mean_staleness != 0.0)
      viol("all-synchronous schedule reported mean_staleness = " +
           std::to_string(r.mean_staleness));
    if (sink.async_updates > 0)
      viol("all-synchronous schedule produced async updates");
  }
  if (sh.has_bounded_phase) {
    // The SSP gate bounds the local-clock gap at step start, which caps how
    // many pushes any peer can land between one worker's pull and push:
    // peers sit within [c - b, c + b] of the puller and may each advance one
    // extra step before the push, so per-push version staleness is at most
    // (alive - 1) * (2b + 2).  DSSP's floating credit is already folded into
    // max_bound by shape_of().
    const std::int64_t cap =
        (sh.max_slots - 1) * (2 * static_cast<std::int64_t>(sh.max_bound) + 2);
    if (sink.max_bounded_staleness > cap)
      viol("SSP/DSSP per-push staleness " + std::to_string(sink.max_bounded_staleness) +
           " exceeds the gap-implied cap " + std::to_string(cap));
  }

  if (opts.check_determinism && rep.violations.empty()) {
    try {
      TrainingSession replay(s.to_run_request());  // no observer attached
      const RunResult again = replay.run();
      const std::vector<std::string> diff = diff_run_results(r, again);
      if (!diff.empty()) {
        std::ostringstream os;
        os << "replay is not bit-identical; differing fields:";
        for (const std::string& f : diff) os << " " << f;
        viol(os.str());
      }
    } catch (const std::exception& e) {
      viol(std::string("replay threw: ") + e.what());
    }
  }

  if (opts.check_cache_roundtrip) {
    const auto parsed = parse_run_result(serialize_run_result(r));
    if (!parsed) {
      viol("run-cache codec failed to parse its own serialization");
    } else {
      const std::vector<std::string> diff = diff_run_results(r, *parsed);
      if (!diff.empty()) {
        std::ostringstream os;
        os << "run-cache codec round-trip differs in:";
        for (const std::string& f : diff) os << " " << f;
        viol(os.str());
      }
    }
  }

  if (opts.run_threaded && s.threaded_compatible()) {
    rep.threaded_ran = true;
    check_threaded(s, rep.violations);
  }
  return rep;
}

}  // namespace ss
