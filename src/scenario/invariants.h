// Conformance invariants over composed scenarios.
//
// check_scenario() runs a Scenario on the simulator (and, on request, on the
// real-thread runtime) and asserts the cross-cutting contracts the unit
// suites prove piecewise — on arbitrary generated or traced compositions of
// switching, stragglers, and elastic membership:
//
// Simulator:
//  * the run terminates without divergence, with
//    total_steps <= steps_completed <= total_steps + max worker slots
//    (a BSP round may overshoot a budget boundary by at most alive-1);
//  * synchronous-protocol updates carry zero staleness; SSP/DSSP per-push
//    version staleness respects the bound implied by the local-clock gap
//    gate; all-synchronous schedules report mean_staleness == 0;
//  * exactly one switch per planned phase boundary whenever the tail margin
//    covers the worst accumulated round overshoot (never more);
//  * every scripted membership event resolves exactly once;
//  * crash loss (RunResult::updates_lost) is zero under kKeepLive, exactly
//    the pre-crash progress when snapshot_interval == 0 (only the run-start
//    snapshot exists), and bounded by one snapshot interval plus the round
//    overshoot per crash otherwise;
//  * replaying the same scenario reproduces the RunResult bit for bit, with
//    or without an attached observer (determinism + observer purity);
//  * the run-cache text codec round-trips the result bit for bit.
//
// Threaded (threaded-compatible scenarios only):
//  * exact update accounting: BSP contributes one aggregated update per
//    round, async protocols one per worker step, summed over each worker
//    slot's [birth, death) interval across membership events;
//  * exact wire accounting: every worker step pushes one dense gradient;
//  * per-phase: BSP phases report zero staleness and zero clock gap; SSP
//    phases respect their (possibly per-phase) staleness bound;
//  * every scripted membership event resolves exactly once, crash loss is
//    exact when snapshot_interval == 0 and bounded by pre-crash progress
//    otherwise (the async snapshotter may lag its cadence);
//  * final parameters are finite.
//
// Violations come back as human-readable strings (empty = scenario passed);
// the CLI prints them and the fuzz suites assert emptiness.
#pragma once

#include <string>
#include <vector>

#include "core/session.h"
#include "scenario/scenario.h"

namespace ss {

struct CheckOptions {
  /// Re-run the scenario (without the observer) and require a bit-identical
  /// RunResult.  Roughly doubles the cost of a check.
  bool check_determinism = true;
  /// Serialize + parse the RunResult through the run-cache text codec and
  /// require bit-identity (what a warm cache hit replays).
  bool check_cache_roundtrip = true;
  /// Also execute threaded-compatible scenarios on the real-thread runtime
  /// and check the exact accounting invariants.  Costs real wall time;
  /// ignored when the scenario is not threaded-compatible.
  bool run_threaded = false;
};

struct ScenarioReport {
  std::string label;                    ///< Scenario::label() of the checked scenario
  std::vector<std::string> violations;  ///< empty = all invariants held
  RunResult result;                     ///< the (first) simulator run
  bool threaded_ran = false;            ///< the threaded cross-check executed

  [[nodiscard]] bool passed() const noexcept { return violations.empty(); }
  /// "PASS <label>" or "FAIL <label>" followed by one line per violation.
  [[nodiscard]] std::string summary() const;
};

/// Run `s` and check every applicable invariant.  Never throws for a
/// well-formed scenario: runtime exceptions are reported as violations.
[[nodiscard]] ScenarioReport check_scenario(const Scenario& s, const CheckOptions& opts = {});

/// Names of the RunResult fields on which `a` and `b` differ bitwise
/// (doubles compared by bit pattern, so NaNs compare equal to themselves).
/// Empty = bit-identical.
[[nodiscard]] std::vector<std::string> diff_run_results(const RunResult& a, const RunResult& b);

}  // namespace ss
