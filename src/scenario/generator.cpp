#include "scenario/generator.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"

namespace ss {

namespace {

Protocol draw_protocol(Rng& rng, bool sim_only) {
  // Threaded-supported protocols dominate so most scenarios can be
  // cross-checked on real threads; DSSP keeps the sim-only family covered.
  switch (rng.uniform_index(sim_only ? 4 : 3)) {
    case 0:
      return Protocol::kBsp;
    case 1:
      return Protocol::kAsp;
    case 2:
      return Protocol::kSsp;
    default:
      return Protocol::kDssp;
  }
}

}  // namespace

Scenario generate_scenario(std::uint64_t seed, const ScenarioGenConfig& cfg) {
  // Decorrelate the scenario stream from the run seed (which is also set to
  // `seed`): the same constant-splitmix trick the session uses.
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0x5CEAA105ULL);

  const auto q = static_cast<std::int64_t>(std::max<std::size_t>(cfg.num_workers, 1));
  const std::int64_t total = ((std::max<std::int64_t>(cfg.total_steps, q) + q - 1) / q) * q;
  const auto max_slots = static_cast<std::int64_t>(cfg.num_workers + cfg.max_joins);

  Scenario s;
  s.name = "fuzz-" + std::to_string(seed);
  s.num_workers = cfg.num_workers;
  s.total_steps = total;
  s.seed = seed;
  s.ssp_staleness_bound = 1 + static_cast<int>(rng.uniform_index(4));

  // --- Switch schedule.  Non-last budgets always leave a tail larger than
  // the worst accumulated BSP round overshoot (one round can overrun a
  // segment boundary by up to alive-1 steps), so every planned switch is
  // paid before the budget runs out and the invariant checker can hold the
  // run to exactly phases-1 switches.
  const std::size_t nphases =
      1 + rng.uniform_index(std::max<std::size_t>(cfg.max_phases, 1));
  const std::int64_t margin = static_cast<std::int64_t>(nphases + 1) * max_slots + q;
  std::int64_t avail_quanta = std::max<std::int64_t>((total - margin) / q, 0);
  std::vector<SwitchPhase> phases;
  for (std::size_t i = 0; i < nphases; ++i) {
    SwitchPhase ph;
    ph.protocol = draw_protocol(rng, cfg.sim_only_protocols);
    ph.trigger = SwitchTrigger::kStepCount;
    const bool last = i + 1 == nphases;
    if (!last) {
      const auto later = static_cast<std::int64_t>(nphases - i - 2);  // non-last after me
      const std::int64_t cap = std::min<std::int64_t>(avail_quanta - later, 16);
      if (cap < 1) {
        // No room for another switch: this leg becomes the final one.
        ph.steps = 0;
        phases.push_back(ph);
        break;
      }
      ph.steps = q * (1 + static_cast<std::int64_t>(
                              rng.uniform_index(static_cast<std::uint64_t>(cap))));
      avail_quanta -= ph.steps / q;
    }
    if (ph.protocol == Protocol::kSsp || ph.protocol == Protocol::kDssp)
      ph.ssp_staleness_bound =
          rng.bernoulli(0.5) ? 1 + static_cast<int>(rng.uniform_index(4)) : -1;
    phases.push_back(ph);
  }
  s.schedule = SwitchSchedule(std::move(phases));

  // --- Membership plan, drawn against a simulated alive set so the
  // RecoveryCoordinator's dry-run always accepts it: crashes/leaves target
  // alive slots only and never shrink below the floor; joins claim the next
  // slot id in order, capped at max_joins.
  const std::size_t floor = std::max<std::size_t>(cfg.min_workers, 1);
  std::vector<int> alive;
  for (std::size_t w = 0; w < cfg.num_workers; ++w) alive.push_back(static_cast<int>(w));
  std::size_t joins_used = 0;
  const std::size_t nevents = rng.uniform_index(cfg.max_membership_events + 1);
  std::vector<MembershipEvent> events;
  std::int64_t step = 0;
  for (std::size_t e = 0; e < nevents; ++e) {
    const std::int64_t quanta_left = (total - q - step) / q;
    const auto needed = static_cast<std::int64_t>(nevents - e);
    if (quanta_left < needed) break;
    const std::int64_t max_jump = quanta_left - (needed - 1);
    step += q * (1 + static_cast<std::int64_t>(
                         rng.uniform_index(static_cast<std::uint64_t>(max_jump))));

    const bool can_shrink = alive.size() > floor;
    const bool can_join = joins_used < cfg.max_joins;
    if (!can_shrink && !can_join) break;
    MembershipEvent ev;
    ev.at_step = step;
    const std::uint64_t pick = rng.uniform_index(can_shrink && can_join ? 3 : 1);
    if (!can_shrink || (can_join && pick == 2)) {
      ev.kind = MembershipEventKind::kJoin;
      ev.worker = -1;
      alive.push_back(static_cast<int>(cfg.num_workers + joins_used));
      ++joins_used;
    } else {
      ev.kind = pick == 0 ? MembershipEventKind::kCrash : MembershipEventKind::kLeave;
      const std::size_t victim = rng.uniform_index(alive.size());
      ev.worker = alive[victim];
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    events.push_back(ev);
  }
  if (!events.empty()) {
    s.elastic.plan = MembershipPlan(std::move(events));
    s.elastic.min_workers = cfg.min_workers;
    s.elastic.recovery =
        rng.bernoulli(0.75) ? RecoveryMode::kRestoreSnapshot : RecoveryMode::kKeepLive;
    s.elastic.snapshot_interval =
        rng.bernoulli(0.4)
            ? 0
            : q * (1 + static_cast<std::int64_t>(rng.uniform_index(
                           static_cast<std::uint64_t>(std::max<std::int64_t>(total / (4 * q), 1)))));
  }

  // --- Straggler episodes over the virtual clock.  The fuzz workload runs a
  // few virtual seconds, so episodes drawn in [0, 4) s with sub-3 s
  // durations land inside (or harmlessly past) the run.
  const std::size_t nstrag = rng.uniform_index(cfg.max_straggler_events + 1);
  std::vector<StragglerEvent> strag;
  for (std::size_t i = 0; i < nstrag; ++i) {
    StragglerEvent ev;
    ev.worker = static_cast<int>(rng.uniform_index(cfg.num_workers));
    ev.start = VTime::from_seconds(rng.uniform(0.0, 4.0));
    ev.duration = VTime::from_seconds(rng.uniform(0.5, 3.0));
    ev.slow_factor = rng.uniform(1.2, 3.0);
    strag.push_back(ev);
  }
  std::sort(strag.begin(), strag.end(), [](const StragglerEvent& a, const StragglerEvent& b) {
    return a.start != b.start ? a.start < b.start : a.worker < b.worker;
  });
  s.stragglers = StragglerSchedule(std::move(strag));
  return s;
}

}  // namespace ss
