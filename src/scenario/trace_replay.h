// Trace replay: the trace-driven half of the scenario engine.
//
// A trace file describes one composed scenario — cluster preemptions
// (crash/leave/join), diurnal or contention slowdowns (slow episodes), and
// the protocol plan reacting to them — in either of two equivalent forms:
//
// CSV (preamble of `key,value` rows, then an `event,at,worker,value,duration`
// header, then one row per event):
//
//     # spot-preemption trace: lose worker 1 at step 96, replace at 160
//     name,spot-preempt
//     workers,4
//     steps,256
//     seed,7
//     event,at,worker,value,duration
//     switch,0,,bsp,
//     switch,64,,ssp,2
//     crash,96,1,,
//     join,160,,,
//     slow,1000000,0,2.5,500000
//
// JSON (same keys; events as an array of objects):
//
//     {"name": "spot-preempt", "workers": 4, "steps": 256, "seed": 7,
//      "events": [{"event": "switch", "at": 0, "value": "bsp"},
//                 {"event": "crash", "at": 96, "worker": 1}]}
//
// Field semantics (see docs/EXPERIMENTS.md for the full spec):
//  * preamble keys: name, workers, steps, seed, ssp_bound, min_workers,
//    snapshot_interval, recovery (restore|keep).  Unknown keys are errors.
//  * switch rows: `at` = sim step the phase starts (first must be 0,
//    strictly increasing), `value` = protocol name, optional `duration` =
//    per-phase SSP bound.  Phase lengths are the gaps between boundaries;
//    the final phase runs out the budget.
//  * crash/leave/join rows: `at` = sim step (0 < at < steps,
//    non-decreasing); crash/leave name an alive worker slot, joins claim
//    the next slot automatically.
//  * slow rows: `at`/`duration` in integral virtual microseconds, `value` =
//    slowdown factor (>= 1), `worker` in [0, workers).
//
// Every parse error throws ConfigError with "<file>:<line>: <field>: why" —
// malformed traces never crash, which is what the table-driven error-path
// suite (tests/test_scenario_trace.cpp) pins.
#pragma once

#include <string>

#include "scenario/scenario.h"

namespace ss {

/// Parse a CSV trace.  `filename` only decorates error messages.
[[nodiscard]] Scenario parse_trace_csv(const std::string& text,
                                       const std::string& filename = "<trace>");

/// Parse a JSON trace.  `filename` only decorates error messages.
[[nodiscard]] Scenario parse_trace_json(const std::string& text,
                                        const std::string& filename = "<trace>");

/// Auto-detect: JSON when the first non-whitespace byte is '{', else CSV.
[[nodiscard]] Scenario parse_trace(const std::string& text,
                                   const std::string& filename = "<trace>");

/// Read and parse a trace file (auto-detected format).  Throws ConfigError
/// when the file cannot be read.
[[nodiscard]] Scenario load_trace_file(const std::string& path);

/// Serialize a scenario as a CSV / JSON trace.  parse(write(s)) reproduces a
/// scenario with an identical cache key (the round-trip property the trace
/// suite checks).
[[nodiscard]] std::string write_trace_csv(const Scenario& s);
[[nodiscard]] std::string write_trace_json(const Scenario& s);

}  // namespace ss
