// Composed scenarios: one value object tying together everything PRs 3-5
// made scriptable — a SwitchSchedule, a StragglerSchedule, and an
// ElasticConfig — plus the cluster size, step budget, and seed needed to
// run it.  Scenarios are the currency of the scenario engine:
//
//  * generator.h draws valid random ones from a seed (the fuzz corpus),
//  * trace_replay.h parses them from CSV/JSON trace files,
//  * invariants.h runs them on the runtimes and asserts the cross-cutting
//    contracts the conformance suites prove piecewise.
//
// Step currency: Scenario quantities are in SIMULATOR units — global
// minibatch steps for `total_steps`, schedule legs, and membership
// `at_step`; virtual-clock VTime for straggler episodes.  The threaded
// conversion (`to_threaded_config`) divides every step quantity by
// `num_workers` (one threaded local step = n sim minibatch steps), which is
// exact when the scenario is *threaded-aligned*: every step quantity a
// multiple of the cluster size.  The generator only emits aligned
// scenarios, so any generated scenario whose protocols the threaded runtime
// supports can be cross-checked on real threads.
#pragma once

#include <cstdint>
#include <string>

#include "core/session.h"
#include "elastic/membership_plan.h"
#include "ps/switch_schedule.h"
#include "ps/threaded_runtime.h"
#include "sim/straggler.h"

namespace ss {

/// One composed scenario, runnable on either runtime.
struct Scenario {
  std::string name = "adhoc";
  std::size_t num_workers = 4;
  std::int64_t total_steps = 256;  ///< sim global minibatch steps
  /// Protocol plan.  Empty means "BSP throughout" (to_run_request installs
  /// an explicit single-phase schedule so the legacy two-phase fields can
  /// never leak into a scenario run).
  SwitchSchedule schedule;
  StragglerSchedule stragglers;  ///< virtual-clock slowdown episodes
  ElasticConfig elastic;         ///< empty plan = fixed membership
  int ssp_staleness_bound = 3;   ///< default bound for SSP/DSSP legs
  std::uint64_t seed = 1;

  /// Human-auditable one-line description (cluster, budget, schedule,
  /// straggler, and membership labels plus the seed).  The authoritative
  /// injectivity carrier is to_run_request().cache_key(), which embeds the
  /// same labels plus the full workload description.
  [[nodiscard]] std::string label() const;

  /// The simulator form: the standard tiny fuzz workload (linear model on
  /// 3-class synthetic data, ms-scale cluster timings) carrying this
  /// scenario's schedule, stragglers, membership plan, and seed.  Runs in
  /// tens of milliseconds, deterministically.
  [[nodiscard]] RunRequest to_run_request() const;

  /// True when the threaded runtime can execute this scenario: every phase
  /// a threaded-supported protocol (BSP/ASP/SSP) with a step trigger,
  /// membership scripted (not reactive), and every step quantity
  /// num_workers-aligned so the sim -> local step conversion is exact.
  [[nodiscard]] bool threaded_compatible() const;

  /// The threaded form (step quantities divided by num_workers; straggler
  /// episodes are sim-only and not carried over — the threaded invariants
  /// are timing-independent update/wire accounting).  Throws ConfigError
  /// when !threaded_compatible().
  [[nodiscard]] ThreadedTrainConfig to_threaded_config() const;
};

}  // namespace ss
