#include "scenario/trace_replay.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.h"

namespace ss {

namespace {

constexpr const char* kEventHeader = "event,at,worker,value,duration";

[[noreturn]] void fail(const std::string& file, int line, const std::string& field,
                       const std::string& why) {
  throw ConfigError(file + ":" + std::to_string(line) + ": " + field + ": " + why);
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// One cell of an event row: raw text plus whether the trace supplied it.
struct Field {
  std::string value;
  bool set = false;
};

struct EventRow {
  int line = 0;
  std::string event;
  Field at, worker, value, duration;
};

struct MetaValue {
  std::string value;
  int line = 0;
};

/// Format-independent parse product; both frontends reduce to this and the
/// shared semantic pass builds the Scenario.
struct RawTrace {
  std::map<std::string, MetaValue> meta;
  std::vector<EventRow> rows;
};

std::int64_t parse_i64(const std::string& file, int line, const std::string& field,
                       const std::string& text) {
  const std::string t = trim(text);
  if (t.empty()) fail(file, line, field, "expected an integer, got an empty field");
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(t.c_str(), &end, 10);
  if (errno != 0 || end != t.c_str() + t.size())
    fail(file, line, field, "expected an integer, got '" + t + "'");
  return static_cast<std::int64_t>(v);
}

double parse_f64(const std::string& file, int line, const std::string& field,
                 const std::string& text) {
  const std::string t = trim(text);
  if (t.empty()) fail(file, line, field, "expected a number, got an empty field");
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(t.c_str(), &end);
  if (errno != 0 || end != t.c_str() + t.size())
    fail(file, line, field, "expected a number, got '" + t + "'");
  return v;
}

Protocol parse_protocol(const std::string& file, int line, const std::string& text) {
  std::string t;
  for (char c : lower(trim(text)))
    if (c != '-') t += c;
  if (t == "bsp") return Protocol::kBsp;
  if (t == "asp") return Protocol::kAsp;
  if (t == "ssp") return Protocol::kSsp;
  if (t == "dssp") return Protocol::kDssp;
  if (t == "ksync") return Protocol::kKSync;
  if (t == "kbatchsync") return Protocol::kKBatchSync;
  if (t == "kasync") return Protocol::kKAsync;
  if (t == "kbatchasync") return Protocol::kKBatchAsync;
  fail(file, line, "value", "unknown protocol '" + trim(text) + "'");
}

// --- CSV frontend ----------------------------------------------------------

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  for (char c : line) {
    if (c == ',') {
      cells.push_back(trim(cell));
      cell.clear();
    } else {
      cell += c;
    }
  }
  cells.push_back(trim(cell));
  return cells;
}

RawTrace read_csv(const std::string& text, const std::string& file) {
  RawTrace raw;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  bool in_events = false;
  while (std::getline(is, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    std::vector<std::string> cells = split_csv(stripped);
    if (!in_events) {
      if (lower(stripped) == kEventHeader) {
        in_events = true;
        continue;
      }
      if (cells.size() != 2)
        fail(file, lineno, "preamble",
             "expected a 'key,value' row or the '" + std::string(kEventHeader) + "' header");
      const std::string key = lower(cells[0]);
      if (raw.meta.count(key)) fail(file, lineno, key, "duplicate preamble key");
      raw.meta[key] = {cells[1], lineno};
      continue;
    }
    if (cells.size() > 5)
      fail(file, lineno, "row", "expected at most 5 cells (event,at,worker,value,duration)");
    cells.resize(5);
    EventRow row;
    row.line = lineno;
    row.event = lower(cells[0]);
    auto cell = [](const std::string& s) { return Field{s, !s.empty()}; };
    row.at = cell(cells[1]);
    row.worker = cell(cells[2]);
    row.value = cell(cells[3]);
    row.duration = cell(cells[4]);
    raw.rows.push_back(std::move(row));
  }
  if (!in_events)
    fail(file, lineno == 0 ? 1 : lineno, "trace",
         "missing the '" + std::string(kEventHeader) + "' header row");
  return raw;
}

// --- JSON frontend ---------------------------------------------------------
//
// A deliberately small recursive-descent reader for the trace schema only
// (an object of scalars plus an "events" array of flat objects).  It tracks
// the current line so every error lands as "<file>:<line>: <field>: why",
// matching the CSV frontend.

class JsonReader {
 public:
  JsonReader(const std::string& text, const std::string& file) : text_(text), file_(file) {}

  RawTrace read() {
    RawTrace raw;
    skip_ws();
    expect('{', "trace");
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) fail_here("trace", "expected ',' or '}' after a member");
      first = false;
      read_members(raw);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        first = false;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        break;
      }
      fail_here("trace", "expected ',' or '}' after a member");
    }
    skip_ws();
    if (pos_ != text_.size()) fail_here("trace", "trailing content after the closing '}'");
    return raw;
  }

 private:
  void read_members(RawTrace& raw) {
    while (true) {
      skip_ws();
      const int key_line = line_;
      const std::string key = lower(read_string("key"));
      skip_ws();
      expect(':', key);
      skip_ws();
      if (key == "events") {
        read_events(raw);
      } else {
        if (raw.meta.count(key)) fail(file_, key_line, key, "duplicate trace key");
        raw.meta[key] = {read_scalar(key), key_line};
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return;
    }
  }

  void read_events(RawTrace& raw) {
    expect('[', "events");
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      raw.rows.push_back(read_event());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']', "events");
      return;
    }
  }

  EventRow read_event() {
    EventRow row;
    row.line = line_;
    expect('{', "events");
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      fail(file_, row.line, "events", "event object is missing the 'event' field");
    }
    while (true) {
      skip_ws();
      const std::string key = lower(read_string("events"));
      skip_ws();
      expect(':', key);
      skip_ws();
      const std::string value = read_scalar(key);
      if (key == "event")
        row.event = lower(value);
      else if (key == "at")
        row.at = {value, true};
      else if (key == "worker")
        row.worker = {value, true};
      else if (key == "value")
        row.value = {value, true};
      else if (key == "duration")
        row.duration = {value, true};
      else
        fail_here(key, "unknown event field (want event/at/worker/value/duration)");
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}', "events");
      break;
    }
    if (row.event.empty()) fail(file_, row.line, "events", "event object is missing the 'event' field");
    return row;
  }

  std::string read_scalar(const std::string& field) {
    skip_ws();
    const char c = peek();
    if (c == '"') return read_string(field);
    if (c == '{' || c == '[')
      fail_here(field, "expected a string or number value");
    std::string token;
    while (pos_ < text_.size()) {
      const char t = text_[pos_];
      if (t == ',' || t == '}' || t == ']' || std::isspace(static_cast<unsigned char>(t))) break;
      token += t;
      ++pos_;
    }
    if (token.empty()) fail_here(field, "expected a value");
    return token;
  }

  std::string read_string(const std::string& field) {
    expect('"', field);
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\n') fail_here(field, "unterminated string");
      if (c == '\\') {
        if (pos_ >= text_.size()) fail_here(field, "unterminated escape");
        const char e = text_[pos_++];
        if (e == '"' || e == '\\' || e == '/')
          out += e;
        else if (e == 'n')
          out += '\n';
        else if (e == 't')
          out += '\t';
        else
          fail_here(field, std::string("unsupported escape '\\") + e + "'");
        continue;
      }
      out += c;
    }
    fail_here(field, "unterminated string");
  }

  void expect(char c, const std::string& field) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail_here(field, std::string("expected '") + c + "'");
    ++pos_;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      if (text_[pos_] == '\n') ++line_;
      ++pos_;
    }
  }

  [[noreturn]] void fail_here(const std::string& field, const std::string& why) {
    fail(file_, line_, field, why);
  }

  const std::string& text_;
  const std::string& file_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

// --- Shared semantic pass --------------------------------------------------

Scenario build_scenario(const RawTrace& raw, const std::string& file) {
  Scenario s;
  s.name = "trace";

  auto meta_i64 = [&](const char* key, std::int64_t fallback) {
    auto it = raw.meta.find(key);
    if (it == raw.meta.end()) return fallback;
    return parse_i64(file, it->second.line, key, it->second.value);
  };
  for (const auto& [key, mv] : raw.meta) {
    if (key != "name" && key != "workers" && key != "steps" && key != "seed" &&
        key != "ssp_bound" && key != "min_workers" && key != "snapshot_interval" &&
        key != "recovery")
      fail(file, mv.line, key, "unknown trace key");
  }
  if (auto it = raw.meta.find("name"); it != raw.meta.end()) s.name = it->second.value;
  {
    const std::int64_t workers = meta_i64("workers", 4);
    if (workers < 1) fail(file, raw.meta.at("workers").line, "workers", "must be >= 1");
    s.num_workers = static_cast<std::size_t>(workers);
  }
  s.total_steps = meta_i64("steps", 256);
  if (s.total_steps < 1) fail(file, raw.meta.at("steps").line, "steps", "must be >= 1");
  s.seed = static_cast<std::uint64_t>(meta_i64("seed", 1));
  s.ssp_staleness_bound = static_cast<int>(meta_i64("ssp_bound", 3));
  {
    const std::int64_t mw = meta_i64("min_workers", static_cast<std::int64_t>(s.elastic.min_workers));
    if (mw < 0) fail(file, raw.meta.at("min_workers").line, "min_workers", "must be >= 0");
    s.elastic.min_workers = static_cast<std::size_t>(mw);
  }
  s.elastic.snapshot_interval = meta_i64("snapshot_interval", 0);
  if (s.elastic.snapshot_interval < 0)
    fail(file, raw.meta.at("snapshot_interval").line, "snapshot_interval", "must be >= 0");
  if (auto it = raw.meta.find("recovery"); it != raw.meta.end()) {
    const std::string mode = lower(trim(it->second.value));
    if (mode == "restore")
      s.elastic.recovery = RecoveryMode::kRestoreSnapshot;
    else if (mode == "keep")
      s.elastic.recovery = RecoveryMode::kKeepLive;
    else
      fail(file, it->second.line, "recovery", "want 'restore' or 'keep', got '" + mode + "'");
  }

  // Event pass.  Switch boundaries, membership feasibility, and straggler
  // episodes are each validated against the running state so every error
  // names the offending row.
  struct Boundary {
    std::int64_t at;
    Protocol protocol;
    int bound;
  };
  std::vector<Boundary> boundaries;
  std::vector<MembershipEvent> events;
  std::vector<StragglerEvent> episodes;
  std::vector<int> alive;
  for (std::size_t w = 0; w < s.num_workers; ++w) alive.push_back(static_cast<int>(w));
  std::size_t joins = 0;
  std::int64_t last_membership_at = 0;
  const std::size_t floor = std::max<std::size_t>(s.elastic.min_workers, 1);

  for (const EventRow& row : raw.rows) {
    if (row.event == "switch") {
      if (!row.at.set) fail(file, row.line, "at", "switch rows need a start step");
      if (!row.value.set) fail(file, row.line, "value", "switch rows need a protocol");
      Boundary b;
      b.at = parse_i64(file, row.line, "at", row.at.value);
      b.protocol = parse_protocol(file, row.line, row.value.value);
      b.bound = row.duration.set
                    ? static_cast<int>(parse_i64(file, row.line, "duration", row.duration.value))
                    : -1;
      if (boundaries.empty() && b.at != 0)
        fail(file, row.line, "at", "the first switch row must start at step 0");
      if (!boundaries.empty() && b.at <= boundaries.back().at)
        fail(file, row.line, "at",
             "out-of-order switch step " + std::to_string(b.at) + " (previous phase starts at " +
                 std::to_string(boundaries.back().at) + ")");
      if (b.at >= s.total_steps)
        fail(file, row.line, "at",
             "switch at step " + std::to_string(b.at) + " is past the " +
                 std::to_string(s.total_steps) + "-step budget");
      boundaries.push_back(b);
    } else if (row.event == "crash" || row.event == "leave" || row.event == "join") {
      if (!row.at.set) fail(file, row.line, "at", row.event + " rows need a step");
      const std::int64_t at = parse_i64(file, row.line, "at", row.at.value);
      if (at <= 0) fail(file, row.line, "at", "membership events must have at > 0");
      if (at >= s.total_steps)
        fail(file, row.line, "at",
             row.event + " at step " + std::to_string(at) + " is past the " +
                 std::to_string(s.total_steps) + "-step budget");
      if (at < last_membership_at)
        fail(file, row.line, "at",
             "out-of-order membership step " + std::to_string(at) + " (previous event at " +
                 std::to_string(last_membership_at) + ")");
      last_membership_at = at;
      MembershipEvent ev;
      ev.at_step = at;
      if (row.event == "join") {
        if (row.worker.set && trim(row.worker.value) != "-1")
          fail(file, row.line, "worker",
               "join rows must leave the worker blank (slots are assigned in join order)");
        ev.kind = MembershipEventKind::kJoin;
        ev.worker = -1;
        alive.push_back(static_cast<int>(s.num_workers + joins));
        ++joins;
      } else {
        if (!row.worker.set) fail(file, row.line, "worker", row.event + " rows need a worker");
        const std::int64_t w = parse_i64(file, row.line, "worker", row.worker.value);
        auto it = std::find(alive.begin(), alive.end(), static_cast<int>(w));
        if (w < 0 || it == alive.end())
          fail(file, row.line, "worker",
               "unknown worker id " + std::to_string(w) + " (not alive at step " +
                   std::to_string(at) + ")");
        if (alive.size() <= floor)
          fail(file, row.line, "worker",
               row.event + " would shrink the cluster below min_workers=" +
                   std::to_string(floor));
        ev.kind = row.event == "crash" ? MembershipEventKind::kCrash : MembershipEventKind::kLeave;
        ev.worker = static_cast<int>(w);
        alive.erase(it);
      }
      events.push_back(ev);
    } else if (row.event == "slow") {
      if (!row.at.set) fail(file, row.line, "at", "slow rows need a start time (microseconds)");
      if (!row.worker.set) fail(file, row.line, "worker", "slow rows need a worker");
      if (!row.value.set) fail(file, row.line, "value", "slow rows need a slowdown factor");
      if (!row.duration.set)
        fail(file, row.line, "duration", "slow rows need a duration (microseconds)");
      StragglerEvent ev;
      const std::int64_t w = parse_i64(file, row.line, "worker", row.worker.value);
      if (w < 0 || w >= static_cast<std::int64_t>(s.num_workers))
        fail(file, row.line, "worker",
             "unknown worker id " + std::to_string(w) + " (cluster has " +
                 std::to_string(s.num_workers) + " initial workers)");
      ev.worker = static_cast<int>(w);
      const std::int64_t start_us = parse_i64(file, row.line, "at", row.at.value);
      if (start_us < 0) fail(file, row.line, "at", "slow start must be >= 0 microseconds");
      ev.start = VTime::from_us(start_us);
      const std::int64_t dur_us = parse_i64(file, row.line, "duration", row.duration.value);
      if (dur_us <= 0) fail(file, row.line, "duration", "slow duration must be > 0 microseconds");
      ev.duration = VTime::from_us(dur_us);
      ev.slow_factor = parse_f64(file, row.line, "value", row.value.value);
      if (ev.slow_factor < 1.0) fail(file, row.line, "value", "slow factor must be >= 1");
      episodes.push_back(ev);
    } else {
      fail(file, row.line, "event",
           "unknown event '" + row.event + "' (want switch/crash/leave/join/slow)");
    }
  }

  if (!boundaries.empty()) {
    std::vector<SwitchPhase> phases;
    for (std::size_t i = 0; i < boundaries.size(); ++i) {
      SwitchPhase p;
      p.protocol = boundaries[i].protocol;
      p.trigger = SwitchTrigger::kStepCount;
      p.ssp_staleness_bound = boundaries[i].bound;
      p.steps = i + 1 < boundaries.size() ? boundaries[i + 1].at - boundaries[i].at : 0;
      phases.push_back(p);
    }
    s.schedule = SwitchSchedule(std::move(phases));
  }
  if (!events.empty()) s.elastic.plan = MembershipPlan(std::move(events));
  if (!episodes.empty()) s.stragglers = StragglerSchedule(std::move(episodes));
  return s;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

Scenario parse_trace_csv(const std::string& text, const std::string& filename) {
  return build_scenario(read_csv(text, filename), filename);
}

Scenario parse_trace_json(const std::string& text, const std::string& filename) {
  return build_scenario(JsonReader(text, filename).read(), filename);
}

Scenario parse_trace(const std::string& text, const std::string& filename) {
  // A .json filename settles the format; otherwise sniff the first
  // non-whitespace byte (JSON traces are single objects, so '{').
  const bool named_json =
      filename.size() >= 5 && filename.rfind(".json") == filename.size() - 5;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    return (named_json || c == '{') ? parse_trace_json(text, filename)
                                    : parse_trace_csv(text, filename);
  }
  throw ConfigError(filename + ":1: trace: empty trace");
}

Scenario load_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open trace file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_trace(buf.str(), path);
}

std::string write_trace_csv(const Scenario& s) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "# sync-switch scenario trace\n";
  os << "name," << s.name << "\n";
  os << "workers," << s.num_workers << "\n";
  os << "steps," << s.total_steps << "\n";
  os << "seed," << s.seed << "\n";
  os << "ssp_bound," << s.ssp_staleness_bound << "\n";
  os << "min_workers," << s.elastic.min_workers << "\n";
  os << "snapshot_interval," << s.elastic.snapshot_interval << "\n";
  os << "recovery," << (s.elastic.recovery == RecoveryMode::kKeepLive ? "keep" : "restore")
     << "\n";
  os << kEventHeader << "\n";
  std::int64_t at = 0;
  for (const SwitchPhase& p : s.schedule.phases()) {
    os << "switch," << at << ",," << lower(protocol_name(p.protocol)) << ",";
    if (p.ssp_staleness_bound >= 0) os << p.ssp_staleness_bound;
    os << "\n";
    at += p.steps;
  }
  for (const MembershipEvent& e : s.elastic.plan.events()) {
    switch (e.kind) {
      case MembershipEventKind::kCrash:
        os << "crash," << e.at_step << "," << e.worker << ",,\n";
        break;
      case MembershipEventKind::kLeave:
        os << "leave," << e.at_step << "," << e.worker << ",,\n";
        break;
      case MembershipEventKind::kJoin:
        os << "join," << e.at_step << ",,,\n";
        break;
    }
  }
  for (const StragglerEvent& e : s.stragglers.events())
    os << "slow," << e.start.us() << "," << e.worker << "," << e.slow_factor << ","
       << e.duration.us() << "\n";
  return os.str();
}

std::string write_trace_json(const Scenario& s) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\n";
  os << "  \"name\": \"" << json_escape(s.name) << "\",\n";
  os << "  \"workers\": " << s.num_workers << ",\n";
  os << "  \"steps\": " << s.total_steps << ",\n";
  os << "  \"seed\": " << s.seed << ",\n";
  os << "  \"ssp_bound\": " << s.ssp_staleness_bound << ",\n";
  os << "  \"min_workers\": " << s.elastic.min_workers << ",\n";
  os << "  \"snapshot_interval\": " << s.elastic.snapshot_interval << ",\n";
  os << "  \"recovery\": \""
     << (s.elastic.recovery == RecoveryMode::kKeepLive ? "keep" : "restore") << "\",\n";
  os << "  \"events\": [";
  bool first = true;
  auto sep = [&] {
    os << (first ? "\n" : ",\n");
    first = false;
  };
  std::int64_t at = 0;
  for (const SwitchPhase& p : s.schedule.phases()) {
    sep();
    os << "    {\"event\": \"switch\", \"at\": " << at << ", \"value\": \""
       << lower(protocol_name(p.protocol)) << "\"";
    if (p.ssp_staleness_bound >= 0) os << ", \"duration\": " << p.ssp_staleness_bound;
    os << "}";
    at += p.steps;
  }
  for (const MembershipEvent& e : s.elastic.plan.events()) {
    sep();
    os << "    {\"event\": \"" << membership_event_name(e.kind) << "\", \"at\": " << e.at_step;
    if (e.kind != MembershipEventKind::kJoin) os << ", \"worker\": " << e.worker;
    os << "}";
  }
  for (const StragglerEvent& e : s.stragglers.events()) {
    sep();
    os << "    {\"event\": \"slow\", \"at\": " << e.start.us() << ", \"worker\": " << e.worker
       << ", \"value\": " << e.slow_factor << ", \"duration\": " << e.duration.us() << "}";
  }
  os << (first ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

}  // namespace ss
