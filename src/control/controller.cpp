#include "control/controller.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "core/twin.h"
#include "obs/obs.h"

namespace ss {
namespace {

bool same_config(const ControllerCandidate& a, const ControllerCandidate& b) {
  if (a.protocol != b.protocol || a.compress != b.compress ||
      a.evict_straggler != b.evict_straggler) {
    return false;
  }
  // The staleness bound only distinguishes SSP configurations.
  return a.protocol != Protocol::kSsp || a.ssp_staleness_bound == b.ssp_staleness_bound;
}

}  // namespace

std::string ControllerCandidate::label() const {
  std::string s = protocol_name(protocol);
  if (protocol == Protocol::kSsp) {
    s += "(b=" + std::to_string(ssp_staleness_bound) + ")";
  }
  if (compress) s += "+comp";
  if (evict_straggler) s += "+evict";
  return s;
}

ClusterSpec ControllerConfig::default_twin_base_cluster() {
  // The determinism corpus's tiny cluster, with the barrier:compute ratio
  // turned down to match the in-process runtime the controller actually
  // measures (a std::barrier costs a fraction of a step, not a multiple —
  // the paper's 280 ms incast barriers belong to its 16-node testbed).
  // Every ratio here survives calibration, which only rescales to the
  // measured step time.  The ratios are load-bearing for hysteresis: on a
  // healthy cluster they keep the twin's predicted BSP->ASP gain near the
  // default min_predicted_gain, so the controller holds until something
  // real (a straggler) widens the gap.
  ClusterSpec base;
  base.num_workers = 4;
  base.num_ps_shards = 1;
  base.compute_per_batch = VTime::from_ms(20.0);
  base.reference_batch = 16;
  base.compute_jitter_sigma = 0.05;
  base.net_latency = VTime::from_ms(0.2);
  base.payload_bytes = 1000.0;
  base.bandwidth_bps = 1e8;
  base.sync_base = VTime::from_ms(3.0);
  base.sync_quad = VTime::from_ms(0.1);
  return base;
}

OnlineController::OnlineController(ControllerConfig config, CompressionSpec run_compression)
    : cfg_(std::move(config)), run_compression_(run_compression) {
  if (!cfg_.cache_dir.empty()) cache_.emplace(cfg_.cache_dir);
  SweepOptions options;
  options.jobs = cfg_.twin_jobs;
  options.cache = cache_ ? &*cache_ : nullptr;
  runner_ = SweepRunner(options);
}

std::vector<ControllerCandidate> OnlineController::build_grid(
    Protocol current_protocol, int current_ssp_bound, bool compression_active,
    const MeasuredPhaseCosts& measured) const {
  std::vector<ControllerCandidate> grid;
  auto push_unique = [&grid](ControllerCandidate cand) {
    for (const ControllerCandidate& existing : grid) {
      if (same_config(existing, cand)) return;
    }
    grid.push_back(cand);
  };

  // Grid order is part of the decision function: the hold candidate comes
  // first and ties break toward earlier entries.
  ControllerCandidate hold;
  hold.protocol = current_protocol;
  hold.ssp_staleness_bound = current_ssp_bound;
  hold.compress = compression_active;
  push_unique(hold);

  const bool offer_compression = cfg_.consider_compression && run_compression_.enabled();
  for (Protocol proto : cfg_.protocols) {
    if (!threaded_supported(proto)) continue;
    std::vector<int> bounds =
        proto == Protocol::kSsp ? cfg_.ssp_bounds : std::vector<int>{current_ssp_bound};
    for (int bound : bounds) {
      ControllerCandidate cand;
      cand.protocol = proto;
      cand.ssp_staleness_bound = bound;
      cand.compress = compression_active;
      push_unique(cand);
      if (offer_compression) {
        cand.compress = !compression_active;
        push_unique(cand);
      }
    }
  }

  if (cfg_.consider_eviction && measured.straggler_worker >= 0 &&
      measured.num_workers > cfg_.min_workers) {
    ControllerCandidate evict = hold;
    evict.evict_straggler = true;
    push_unique(evict);
  }
  return grid;
}

ControllerDecision OnlineController::decide(std::int64_t at_step, Protocol current_protocol,
                                            int current_ssp_bound, bool compression_active,
                                            const MeasuredPhaseCosts& measured,
                                            std::int64_t steps_since_move,
                                            std::int64_t remaining_steps) {
  const auto wall_start = std::chrono::steady_clock::now();
  ControllerDecision decision;
  decision.at_step = at_step;
  decision.protocol_before = current_protocol;
  decision.measured = quantize(measured);

  const ClusterSpec calibrated =
      calibrate_cluster_spec(cfg_.twin_base_cluster, decision.measured);

  const std::vector<ControllerCandidate> grid =
      build_grid(current_protocol, current_ssp_bound, compression_active, decision.measured);

  std::vector<RunRequest> requests;
  requests.reserve(grid.size());
  for (const ControllerCandidate& cand : grid) {
    TwinQuery query;
    query.protocol = cand.protocol;
    query.ssp_staleness_bound = cand.ssp_staleness_bound;
    query.compression = cand.compress ? run_compression_ : CompressionSpec{};
    query.cluster = calibrated;
    if (cand.evict_straggler) {
      // The twin for the membership move: one slot fewer, uniform cluster.
      query.cluster.num_workers -= 1;
    } else {
      query.straggler_worker = decision.measured.straggler_worker;
      query.straggler_factor = decision.measured.straggler_factor;
    }
    query.horizon_steps = cfg_.twin_horizon_steps;
    query.seed = cfg_.twin_seed;
    requests.push_back(query.to_run_request());
  }

  std::vector<std::string> keys;
  keys.reserve(requests.size());
  for (const RunRequest& req : requests) keys.push_back(req.cache_key());

  std::vector<SweepOutcome> outcomes(requests.size());
  std::vector<std::size_t> miss_index;
  std::vector<RunRequest> miss_requests;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    auto it = memo_.find(keys[i]);
    if (it != memo_.end()) {
      outcomes[i].result = it->second;
      outcomes[i].from_cache = true;
    } else {
      miss_index.push_back(i);
      miss_requests.push_back(requests[i]);
    }
  }
  if (!miss_requests.empty()) {
    std::vector<SweepOutcome> fresh = runner_.run(miss_requests);
    for (std::size_t j = 0; j < miss_index.size(); ++j) {
      const std::size_t i = miss_index[j];
      outcomes[i] = std::move(fresh[j]);
      if (outcomes[i].error.empty()) memo_.emplace(keys[i], outcomes[i].result);
    }
  }

  std::size_t best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  double hold_score = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    CandidateOutcome out;
    out.candidate = grid[i];
    out.from_cache = outcomes[i].from_cache;
    out.error = outcomes[i].error;
    if (out.error.empty()) {
      out.predicted_seconds = twin_score(outcomes[i].result, cfg_.target_accuracy);
      if (out.predicted_seconds < best_score) {
        best_score = out.predicted_seconds;
        best = i;
      }
      if (i == 0) hold_score = out.predicted_seconds;
    }
    if (out.from_cache) ++decision.cache_hits;
    decision.candidates.push_back(std::move(out));
  }

  decision.chosen = grid[best];
  if (std::isfinite(hold_score) && std::isfinite(best_score) && hold_score > 0.0) {
    decision.predicted_gain = (hold_score - best_score) / hold_score;
  }

  if (!std::isfinite(best_score)) {
    decision.chosen = grid[0];
    decision.reason = "hold:error " + decision.candidates[0].error;
  } else if (best == 0) {
    decision.reason = "hold:best";
  } else if (remaining_steps < cfg_.min_steps_between_moves) {
    decision.reason = "hold:tail";
  } else if (steps_since_move < cfg_.min_steps_between_moves) {
    decision.reason = "hold:hysteresis";
  } else if (decision.predicted_gain < cfg_.min_predicted_gain) {
    decision.reason = "hold:gain<min";
  } else {
    decision.enacted = true;
    decision.reason = "enacted";
  }

  decision.decide_wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  if (obs::enabled()) {
    auto& reg = obs::metrics();
    reg.counter("ss_controller_decisions_total", "Controller decision points").add();
    if (decision.enacted)
      reg.counter("ss_controller_moves_total", "Decisions that enacted a move").add();
    reg.histogram("ss_controller_decide_seconds",
                  {1e-4, 1e-3, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0},
                  "Wall time of one measure->twin->score->enact decision (seconds)")
        .observe(decision.decide_wall_seconds);
    if (obs::tracing()) {
      auto& tr = obs::tracer();
      const std::int64_t end_us = tr.to_us(std::chrono::steady_clock::now());
      const std::int64_t dur_us =
          static_cast<std::int64_t>(decision.decide_wall_seconds * 1e6);
      tr.complete(0, "decision", end_us - dur_us, dur_us,
                  {obs::arg("at_step", decision.at_step),
                   obs::arg("reason", decision.reason),
                   obs::arg("chosen", decision.chosen.label()),
                   obs::arg("predicted_gain", decision.predicted_gain),
                   obs::arg("candidates", static_cast<std::int64_t>(decision.candidates.size())),
                   obs::arg("cache_hits", static_cast<std::int64_t>(decision.cache_hits))});
    }
  }
  return decision;
}

}  // namespace ss
