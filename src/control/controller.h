// OnlineController: simulator-in-the-loop autotuning (ROADMAP item 4).
//
// The paper picks its switch point offline (core/binary_search +
// config_policy) or reacts to a detector threshold (ps/switch_schedule
// triggers).  The controller is the middle ground: at every drain barrier
// of the threaded runtime it
//
//   measure — snapshot what the last decision interval actually cost
//             (sim/calibration.h: per-worker step times, wire bytes,
//             straggler factor),
//   twin    — fan a small candidate grid (protocol x SSP bound x
//             compression, optionally evicting the measured straggler)
//             through the simulator as RunRequests (core/twin.h) via
//             SweepRunner with a shared RunCache,
//   score   — rank candidates on predicted time-to-target-accuracy
//             (twin_score), and
//   enact   — return the winning move for the runtime to apply while the
//             workers are parked — protocol/bound/compression in-place,
//             eviction through the existing recovery machinery.
//
// Hysteresis keeps it from thrashing: a move is enacted only if the
// predicted relative gain clears `min_predicted_gain` AND at least
// `min_steps_between_moves` local steps have passed since the last move.
//
// Determinism: decide() is a pure function of (config, quantized measured
// stats).  Twin runs are bit-deterministic, cache hits are bit-identical to
// cold runs (so cache state cannot change a decision, only its latency),
// the twin seed is fixed per controller (identical stats => identical
// queries => warm hits), and grid order breaks ties.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "compress/spec.h"
#include "core/run_cache.h"
#include "core/sweep.h"
#include "ps/protocol.h"
#include "sim/calibration.h"
#include "sim/cluster.h"

namespace ss {

/// One grid point: a configuration the controller considers moving to.
struct ControllerCandidate {
  Protocol protocol = Protocol::kBsp;
  int ssp_staleness_bound = 3;
  /// Run pushes through the configured codec (only offered when the run
  /// has one; toggling re-uses the codec's residual state).
  bool compress = false;
  /// Membership move: evict the measured straggler's slot.
  bool evict_straggler = false;

  /// Short table label, e.g. "ASP", "SSP(b=3)+topk", "BSP-evict(w2)".
  [[nodiscard]] std::string label() const;
};

/// One candidate's twin evaluation.
struct CandidateOutcome {
  ControllerCandidate candidate;
  double predicted_seconds = 0.0;  ///< twin_score — lower is better
  bool from_cache = false;
  std::string error;  ///< non-empty if the twin run failed; candidate skipped
};

/// The per-barrier decision record surfaced in ThreadedTrainResult.
struct ControllerDecision {
  std::int64_t at_step = 0;  ///< per-worker local step of the drain barrier
  Protocol protocol_before = Protocol::kBsp;
  MeasuredPhaseCosts measured;  ///< quantized stats the decision saw
  std::vector<CandidateOutcome> candidates;
  ControllerCandidate chosen;  ///< best-scoring candidate (== hold when none)
  bool enacted = false;
  /// "enacted" | "hold:best" | "hold:gain<min" | "hold:hysteresis" |
  /// "hold:error <what>".
  std::string reason;
  /// Fraction of predicted time saved vs. holding: (hold - best) / hold.
  double predicted_gain = 0.0;
  /// Realized throughput change over the *next* interval, filled in by the
  /// runtime at the following barrier: 1 - (seconds/step after) /
  /// (seconds/step before).  0 until known (the run always ends on a
  /// barrier, so every decision gets one).
  double realized_gain = 0.0;
  std::size_t cache_hits = 0;       ///< twin queries served from warm cache
  double decide_wall_seconds = 0.0; ///< real time the decision cost
};

struct ControllerConfig {
  bool enabled = false;

  /// Local steps per worker between drain-barrier decision points.
  std::int64_t decision_interval = 32;

  // --- hysteresis -------------------------------------------------------
  /// A move is enacted at most once per this many local steps.
  std::int64_t min_steps_between_moves = 64;
  /// Minimum predicted relative gain ((hold - best) / hold) to move.
  double min_predicted_gain = 0.10;

  // --- twin -------------------------------------------------------------
  /// Proxy-workload accuracy the twin scores time-to-accuracy against.
  double target_accuracy = 0.60;
  /// Global minibatch steps each twin query simulates.
  std::int64_t twin_horizon_steps = 192;
  /// Fixed seed for every twin query (fixed => identical quantized stats
  /// reproduce identical cache keys across barriers and runs).
  std::uint64_t twin_seed = 1;
  /// Run-cache directory for twin results ("" = in-process only, no reuse
  /// across barriers or runs).
  std::string cache_dir;
  /// Sweep pool width for the candidate fan-out (0 = hardware).
  std::size_t twin_jobs = 0;

  // --- grid -------------------------------------------------------------
  /// Protocols considered (threaded-supported only; others are skipped).
  std::vector<Protocol> protocols = {Protocol::kBsp, Protocol::kAsp, Protocol::kSsp};
  /// SSP staleness bounds considered (the "K" knob of the grid).
  std::vector<int> ssp_bounds = {3};
  /// Offer compression-on/off variants (only when the run has a codec).
  bool consider_compression = true;
  /// Offer evicting the measured straggler (enacted through the recovery
  /// machinery; bounded by min_workers).
  bool consider_eviction = false;
  /// Eviction floor: never shrink the cluster below this many workers.
  std::size_t min_workers = 2;

  /// Base ClusterSpec for calibration: supplies what the runtime cannot
  /// measure (latency, bandwidth, barrier:compute cost ratios — see
  /// calibrate_cluster_spec).  Defaults mirror the determinism corpus's
  /// tiny cluster, scaled by measurement at every decision.
  ClusterSpec twin_base_cluster = default_twin_base_cluster();

  [[nodiscard]] static ClusterSpec default_twin_base_cluster();
};

/// The decision engine.  Owns the twin sweep pool and (optionally) the twin
/// run cache; holds no reference to the runtime — the runtime feeds it
/// measurements and applies (or ignores) what it returns.
class OnlineController {
 public:
  /// `run_compression` is the training run's codec (grid variants toggle
  /// it on and off; absent codec => no compression variants).
  OnlineController(ControllerConfig config, CompressionSpec run_compression);

  /// Evaluate the grid against `measured` (quantized internally) and pick
  /// the next configuration.  Pure in (config, quantized stats);
  /// `steps_since_move` implements hysteresis and `remaining_steps` lets
  /// short run tails decline moves that cannot amortize.
  [[nodiscard]] ControllerDecision decide(std::int64_t at_step, Protocol current_protocol,
                                          int current_ssp_bound, bool compression_active,
                                          const MeasuredPhaseCosts& measured,
                                          std::int64_t steps_since_move,
                                          std::int64_t remaining_steps);

  [[nodiscard]] const ControllerConfig& config() const noexcept { return cfg_; }

 private:
  [[nodiscard]] std::vector<ControllerCandidate> build_grid(
      Protocol current_protocol, int current_ssp_bound, bool compression_active,
      const MeasuredPhaseCosts& measured) const;

  ControllerConfig cfg_;
  CompressionSpec run_compression_;
  std::optional<RunCache> cache_;
  SweepRunner runner_;
  /// In-memory memo over RunRequest::cache_key(): repeated twin queries
  /// within one run hit warm state even with no cache_dir configured.
  /// Memoized results are bit-identical to fresh runs, so the memo can
  /// change decision latency but never a decision.
  std::unordered_map<std::string, RunResult> memo_;
};

}  // namespace ss
