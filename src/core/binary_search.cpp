#include "core/binary_search.h"

#include "common/error.h"

namespace ss {

BinarySearchResult binary_search_timing(const TrialFn& trial, const BinarySearchConfig& cfg) {
  if (!trial) throw ConfigError("binary_search_timing: trial function required");
  if (cfg.max_settings < 1 || cfg.runs_per_setting < 1)
    throw ConfigError("binary_search_timing: M and R must be >= 1");

  BinarySearchResult result;

  // Establish the target accuracy A (full-BSP baseline) if not provided.
  if (cfg.target_accuracy.has_value()) {
    result.target_accuracy = *cfg.target_accuracy;
  } else {
    double acc_sum = 0.0;
    for (int r = 0; r < cfg.runs_per_setting; ++r) {
      const TrialOutcome out = trial(1.0, r);
      acc_sum += out.converged_accuracy;
      result.search_cost_seconds += out.train_time_seconds;
      ++result.sessions_run;
    }
    result.target_accuracy = acc_sum / cfg.runs_per_setting;
  }

  double upper = 1.0;  // known-good (full BSP)
  double lower = 0.0;  // known-bad side (full ASP)
  for (int m = 0; m < cfg.max_settings; ++m) {
    const double fraction = 0.5 * (upper + lower);
    double acc_sum = 0.0;
    bool any_diverged = false;
    for (int r = 0; r < cfg.runs_per_setting; ++r) {
      const TrialOutcome out = trial(fraction, r);
      result.search_cost_seconds += out.train_time_seconds;
      ++result.sessions_run;
      acc_sum += out.diverged ? 0.0 : out.converged_accuracy;
      any_diverged = any_diverged || out.diverged;
    }
    const double mean_acc = acc_sum / cfg.runs_per_setting;
    const bool in_band = !any_diverged && mean_acc >= result.target_accuracy - cfg.beta;
    result.explored.push_back({fraction, mean_acc, in_band, any_diverged});
    if (in_band)
      upper = fraction;  // candidate is as good as BSP: try earlier switches
    else
      lower = fraction;  // too little BSP: need more synchronous training
  }
  result.switch_fraction = upper;
  return result;
}

}  // namespace ss
