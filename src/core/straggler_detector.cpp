#include "core/straggler_detector.h"

#include <algorithm>

#include "common/error.h"

namespace ss {

StragglerDetector::StragglerDetector(std::size_t num_workers, DetectorConfig cfg)
    : cfg_(cfg),
      below_count_(static_cast<std::size_t>(num_workers), 0),
      flagged_(num_workers, false),
      active_(num_workers, true),
      active_count_(num_workers) {
  if (num_workers == 0) throw ConfigError("StragglerDetector: no workers");
  if (cfg.window_size == 0) throw ConfigError("StragglerDetector: window_size must be > 0");
  if (cfg.consecutive_required <= 0)
    throw ConfigError("StragglerDetector: consecutive_required must be > 0");
  windows_.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) windows_.emplace_back(cfg.window_size);
}

bool StragglerDetector::observe(int worker, std::size_t images, VTime duration) {
  if (worker < 0 || static_cast<std::size_t>(worker) >= windows_.size())
    throw ConfigError("StragglerDetector::observe: worker index out of range");
  const double seconds = duration.seconds();
  if (seconds <= 0.0) return false;
  const auto w = static_cast<std::size_t>(worker);
  if (!active_[w]) return false;  // retired / not-yet-joined slot
  windows_[w].add(static_cast<double>(images) / seconds);
  // One detection pass per cluster-wide window: the paper's "detection
  // window" covers window_size tasks per worker on average.
  if (++observations_since_check_ >= cfg_.window_size * active_count_) {
    observations_since_check_ = 0;
    run_detection();
    return true;
  }
  return false;
}

void StragglerDetector::run_detection() {
  if (!warmed_up()) return;
  // Cluster statistics over the active workers' window means.
  std::vector<double> means(windows_.size(), 0.0);
  std::vector<double> active_means;
  active_means.reserve(windows_.size());
  for (std::size_t k = 0; k < windows_.size(); ++k) {
    if (!active_[k]) continue;
    means[k] = windows_[k].mean();
    active_means.push_back(means[k]);
  }
  const double avg = mean_of(active_means);
  const double sigma = stddev_of(active_means);
  // Paper rule (S < avg - sigma) with a relative floor: healthy clusters
  // have near-zero sigma, which would otherwise flag ordinary jitter.
  const double threshold = avg - std::max(sigma, cfg_.min_relative_gap * avg);

  for (std::size_t k = 0; k < windows_.size(); ++k) {
    if (!active_[k]) {
      below_count_[k] = 0;
      flagged_[k] = false;
      continue;
    }
    if (means[k] < threshold) {
      if (below_count_[k] < cfg_.consecutive_required) ++below_count_[k];
    } else {
      below_count_[k] = 0;
    }
    flagged_[k] = below_count_[k] >= cfg_.consecutive_required;
  }
}

std::vector<int> StragglerDetector::stragglers() const {
  std::vector<int> out;
  for (std::size_t k = 0; k < flagged_.size(); ++k)
    if (flagged_[k]) out.push_back(static_cast<int>(k));
  return out;
}

bool StragglerDetector::any_straggler() const noexcept {
  for (bool f : flagged_)
    if (f) return true;
  return false;
}

bool StragglerDetector::warmed_up() const noexcept {
  for (std::size_t k = 0; k < windows_.size(); ++k)
    if (active_[k] && !windows_[k].full()) return false;
  return true;
}

void StragglerDetector::reset() {
  for (auto& w : windows_) w.clear();
  observations_since_check_ = 0;
  for (auto& c : below_count_) c = 0;
  for (std::size_t i = 0; i < flagged_.size(); ++i) flagged_[i] = false;
}

void StragglerDetector::set_active(const std::vector<int>& active) {
  reset();
  std::fill(active_.begin(), active_.end(), false);
  for (int w : active) {
    if (w < 0 || static_cast<std::size_t>(w) >= active_.size())
      throw ConfigError("StragglerDetector::set_active: worker index out of range");
    active_[static_cast<std::size_t>(w)] = true;
  }
  active_count_ = 0;
  for (const bool a : active_) active_count_ += a ? 1 : 0;
}

}  // namespace ss
