// Training profiler: the MetricsSink that records everything the paper's
// evaluation measures (Section VI-A "Evaluation Metrics").
//
//  * training loss per update (cross-entropy per minibatch, recorded at a
//    configurable interval to bound memory);
//  * test accuracy at every periodic evaluation;
//  * converged accuracy: "test accuracy has not changed for more than 0.1%
//    for five evaluations";
//  * time-to-accuracy (TTA): first virtual time the accuracy curve crosses a
//    threshold;
//  * throughput: images trained per second of virtual time;
//  * mean gradient staleness (diagnostic, not in the paper's metric list).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/vtime.h"
#include "ps/sim_runtime.h"

namespace ss {

struct LossPoint {
  std::int64_t step;
  double seconds;
  double loss;
};

struct AccuracyPoint {
  std::int64_t step;
  double seconds;
  double accuracy;
};

class Profiler final : public MetricsSink {
 public:
  /// `loss_record_interval`: keep one loss sample per this many updates.
  explicit Profiler(std::int64_t loss_record_interval = 8);

  void on_task(const TaskObservation& obs) override;
  void on_update(const UpdateObservation& obs) override;
  void on_eval(std::int64_t global_step, VTime time, double test_accuracy) override;

  /// Optional second sink to tee observations into (e.g. the straggler
  /// detector).  Not owned.
  void set_tee(MetricsSink* tee) noexcept { tee_ = tee; }

  [[nodiscard]] const std::vector<LossPoint>& loss_curve() const noexcept { return loss_; }
  [[nodiscard]] const std::vector<AccuracyPoint>& accuracy_curve() const noexcept {
    return acc_;
  }

  /// Converged accuracy per the paper's rule; nullopt if the curve never
  /// stabilized (fewer than 5 evals or still moving).
  [[nodiscard]] std::optional<double> converged_accuracy(double tolerance = 0.001,
                                                         int window = 5) const;

  /// Highest accuracy seen.
  [[nodiscard]] double best_accuracy() const noexcept;

  /// Final (last-eval) accuracy; 0 if never evaluated.
  [[nodiscard]] double final_accuracy() const noexcept;

  /// First time (seconds) the accuracy reached `threshold`; nullopt if never.
  [[nodiscard]] std::optional<double> time_to_accuracy(double threshold) const;

  /// Total images trained (from task observations).
  [[nodiscard]] std::uint64_t total_images() const noexcept { return total_images_; }

  /// Mean training loss over the last `k` recorded points.
  [[nodiscard]] double tail_loss(std::size_t k = 16) const;

  /// Mean gradient staleness over all updates.
  [[nodiscard]] double mean_staleness() const noexcept;

 private:
  std::int64_t loss_record_interval_;
  std::int64_t updates_seen_ = 0;
  std::uint64_t total_images_ = 0;
  std::int64_t staleness_sum_ = 0;
  std::vector<LossPoint> loss_;
  std::vector<AccuracyPoint> acc_;
  MetricsSink* tee_ = nullptr;
};

}  // namespace ss
