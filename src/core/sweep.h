// Parallel sweep executor: evaluate N independent RunRequests across a
// thread pool.
//
// Each simulation stays serial and bit-identical to a lone run — the
// parallelism is purely across configs, which is where the repo's wall-clock
// actually goes (figure grids, ablations, scenario-fuzz batches, and the
// binary-search policy all evaluate many independent configurations).  The
// run cache is shared safely across workers: `RunCache::store` writes via
// tmp+atomic-rename, so concurrent writers never expose a torn entry.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/run_cache.h"
#include "core/session.h"

namespace ss {

struct SweepOptions {
  /// Worker threads; 0 = hardware concurrency.
  std::size_t jobs = 0;
  /// Optional shared result cache (not owned; may be null).  Hits skip the
  /// simulation; misses run and store.
  const RunCache* cache = nullptr;
};

/// One sweep entry's outcome, in request order.
struct SweepOutcome {
  RunResult result;
  bool from_cache = false;
  double wall_seconds = 0.0;  ///< real time this entry took (hit or run)
  std::string error;          ///< non-empty if the run threw; result is empty
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {}) : options_(options) {}

  /// Evaluate every request; outcomes[i] corresponds to requests[i].
  /// Requests are claimed off a shared counter, so workers stay busy even
  /// when entry costs are skewed.  A throwing entry records its error and
  /// does not abort the rest of the sweep.
  [[nodiscard]] std::vector<SweepOutcome> run(const std::vector<RunRequest>& requests) const;

  /// The worker-thread count `run` would use.
  [[nodiscard]] std::size_t effective_jobs(std::size_t num_requests) const;

 private:
  SweepOptions options_;
};

}  // namespace ss
