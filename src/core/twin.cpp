#include "core/twin.h"

#include <algorithm>

namespace ss {

RunRequest TwinQuery::to_run_request() const {
  RunRequest req;
  // The determinism corpus's tiny linear workload: a few tens of
  // milliseconds per query, with enough signal to separate the protocols'
  // statistical efficiency at this scale.
  req.workload.arch = ModelArch::kLinear;
  req.workload.data = SyntheticSpec::cifar10_like();
  req.workload.data.num_classes = 3;
  req.workload.data.feature_dim = 16;
  req.workload.data.train_size = 1024;
  req.workload.data.test_size = 512;
  req.workload.data.class_separation = 1.2;
  req.workload.total_steps = horizon_steps;
  // Proxy batch == calibrated reference batch, so one twin step costs
  // exactly the measured step time (compute scales batch/reference_batch).
  req.workload.hyper.batch_size = cluster.reference_batch;
  req.workload.hyper.learning_rate = 0.05;
  req.workload.hyper.momentum = 0.9;
  req.workload.eval_interval = std::max<std::int64_t>(8, horizon_steps / 8);

  req.cluster = cluster;
  req.policy = SyncSwitchPolicy::pure(protocol);
  req.policy.ssp_staleness_bound = ssp_staleness_bound;
  req.compression = compression;
  if (straggler_worker >= 0 && straggler_factor > 1.0) {
    req.straggler_schedule =
        StragglerSchedule::permanent(straggler_worker, straggler_factor);
  }
  // Steady-state continuation, not a job bring-up: keep actuator overheads
  // out of the ranking (same scale the determinism corpus uses).
  req.actuator_time_scale = 0.01;
  req.seed = seed;
  return req;
}

double twin_score(const RunResult& result, double target_accuracy) {
  if (const std::optional<double> t = result.time_to_accuracy(target_accuracy)) {
    return *t;
  }
  const double horizon_time = std::max(result.train_time_seconds, 1e-9);
  const double shortfall =
      std::max(0.0, target_accuracy - std::max(result.best_accuracy, 0.0));
  double penalty = 1.0 + 10.0 * shortfall;
  if (result.diverged) penalty += 100.0;
  return horizon_time * penalty;
}

}  // namespace ss
