// TrainingSession: the Sync-Switch cluster manager.
//
// Mirrors the paper's architecture (Figure 9): it takes the user's training
// script (Workload + ClusterSpec + initial hyper-parameters), consults the
// policy manager (protocol / timing / configuration policies), launches
// phases on the runtime, monitors metrics through the profiler, and performs
// protocol switches via checkpoint -> actuate -> restore, paying the
// actuator's measured overhead in virtual time.
//
// Online straggler policies (Section IV-B2) run here: the greedy policy
// flips to ASP while a straggler is detected and back once it clears (until
// the BSP quota is met); the elastic policy evicts detected stragglers for
// the remainder of the BSP phase and restores the full cluster for ASP.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "compress/spec.h"
#include "core/config_policy.h"
#include "core/profiler.h"
#include "core/straggler_detector.h"
#include "elastic/membership_plan.h"
#include "data/synthetic.h"
#include "nn/zoo.h"
#include "ps/protocol.h"
#include "ps/switch_schedule.h"
#include "sim/actuator.h"
#include "sim/cluster.h"
#include "sim/straggler.h"

namespace ss {

/// What to train: model, data, step budget, initial hyper-parameters.
struct Workload {
  ModelArch arch = ModelArch::kResNet32Lite;
  SyntheticSpec data = SyntheticSpec::cifar10_like();
  std::int64_t total_steps = 2048;  ///< minibatch-step budget ("64K" scaled)
  BaseHyper hyper;
  std::int64_t eval_interval = 128;
  double divergence_loss_threshold = 50.0;
};

/// Online straggler-reaction policy (Section IV-B2).  kReplace extends the
/// paper: it targets *permanent* stragglers, which the paper explicitly
/// delegates to node replacement ("permanent stragglers are best dealt with
/// by requesting replacement") — detected stragglers are evicted and a
/// replacement VM is provisioned in the background (~100 s), rejoining the
/// cluster healthy once ready.
enum class OnlinePolicy { kNone, kGreedy, kElastic, kReplace };

std::string online_policy_name(OnlinePolicy p);

/// The full Sync-Switch policy set for one job.
struct SyncSwitchPolicy {
  Protocol first = Protocol::kBsp;   ///< protocol policy: BSP first...
  Protocol second = Protocol::kAsp;  ///< ...then ASP
  double switch_fraction = 0.0625;   ///< timing policy: fraction under `first`
  /// Explicit multi-phase switch schedule.  When non-empty it replaces the
  /// two-phase (first/second/switch_fraction) plan *and* the online policy
  /// (those fields are ignored; results cannot depend on them): phases run
  /// in order with a checkpoint -> actuate -> restore switch between them.
  /// `momentum_policy` still applies — to every phase after the first, just
  /// as it applies to the post-switch protocol in the two-phase plan.
  /// Phase `steps` are global minibatch steps (the unit of
  /// Workload::total_steps); reactive triggers consume the straggler
  /// detector exactly as the online policies do.  The same schedule type
  /// drives the threaded runtime's live switching (there, steps are local
  /// steps per worker) — see ps/switch_schedule.h for the correspondence.
  SwitchSchedule schedule;
  MomentumPolicy momentum_policy = MomentumPolicy::kBaseline;
  OnlinePolicy online = OnlinePolicy::kNone;
  DetectorConfig detector;
  int ssp_staleness_bound = 3;
  int k_param = 0;  ///< K for the K-variant protocols (0 = cluster size)

  /// Train exclusively with `p` (the BSP / ASP baselines).
  [[nodiscard]] static SyncSwitchPolicy pure(Protocol p);
  /// The paper's default hybrid: BSP for `fraction`, then ASP.
  [[nodiscard]] static SyncSwitchPolicy bsp_to_asp(double fraction);
  /// The reversed order (Figure 5(a) ablation).
  [[nodiscard]] static SyncSwitchPolicy asp_to_bsp(double fraction);
};

/// One training job on one simulated cluster.
struct RunRequest {
  Workload workload;
  ClusterSpec cluster;
  ActuatorExec actuator = ActuatorExec::kParallel;
  SyncSwitchPolicy policy;
  StragglerScenario stragglers;  ///< zero stragglers = clean run
  /// Explicit straggler schedule (scenario engine / trace replays).  When
  /// non-empty it drives the run verbatim and `stragglers` is ignored —
  /// episode times are virtual-clock points, exactly as run_phase reads
  /// them.  Empty (the default) keeps the historical behavior: a schedule is
  /// generated from the `stragglers` scenario and the run seed.
  StragglerSchedule straggler_schedule;
  CompressionSpec compression;   ///< optional gradient compression on pushes
  /// Elastic membership & fault tolerance (src/elastic/): scripted or
  /// reactive crash/join/leave events, resolved between run_phase segments
  /// and priced through the cluster/actuator models.  Event `at_step` is in
  /// global minibatch steps (the unit of Workload::total_steps), matching
  /// how SwitchSchedule steps read on the sim side; `snapshot_interval` is
  /// in the same unit.  Incompatible with the online straggler policies
  /// (both manipulate the active worker set) and — for the reactive plan —
  /// with reactive schedule triggers (both consume the detector).
  ElasticConfig elastic;
  std::uint64_t seed = 1;        ///< repetition seed (init, timing, batching)

  /// Optional pure-observer sink (e.g. a TraceRecorder): receives every
  /// task/update/eval observation alongside the profiler.  Not owned, not
  /// part of the cache key (observation cannot change the result).
  MetricsSink* observer = nullptr;

  /// Scales the actuator's init/switch/resize costs.  The bench setups run
  /// a ~30x scaled-down step budget, so absolute overheads from the paper's
  /// Table III are scaled by the same factor to keep overhead:training
  /// ratios faithful (Table III itself reports the unscaled model).
  double actuator_time_scale = 1.0;

  /// Canonical string covering every field that affects the result; used as
  /// the run-cache key and for reproducibility audits.  The key opens with
  /// a schema-version tag (`sv=N`) that is bumped whenever the key grammar
  /// or any result-affecting semantics change, so stale `.ss_runcache`
  /// entries hash to unreachable slots and self-invalidate instead of
  /// requiring a manual delete.
  [[nodiscard]] std::string cache_key() const;
};

/// Cache-key schema version (the `sv=` tag in cache_key()).  Bump on any
/// change to the key grammar or to result-affecting semantics.
/// v6: explicit straggler schedules (`xstrg=`), RunResult::updates_lost,
/// and full-precision (17-digit) result serialization.
inline constexpr int kCacheKeySchemaVersion = 6;

/// Everything the paper's evaluation reads off one run.
struct RunResult {
  bool diverged = false;
  bool converged = false;          ///< accuracy stabilized per the 5-eval rule
  double converged_accuracy = 0.0; ///< falls back to final accuracy if !converged
  double final_accuracy = 0.0;
  double best_accuracy = 0.0;
  double train_time_seconds = 0.0;     ///< virtual, includes switch overhead
  double init_time_seconds = 0.0;      ///< cluster bring-up (reported separately)
  double switch_overhead_seconds = 0.0;
  int num_switches = 0;
  /// Elastic runs: membership events resolved (crash/join/leave, scripted
  /// or reactive) and the total virtual time their recoveries cost.
  int num_membership_events = 0;
  double recovery_overhead_seconds = 0.0;
  /// Global steps of applied work rolled back by crash recoveries (summed
  /// over crashes; 0 under RecoveryMode::kKeepLive).  The snapshot cadence
  /// bounds each crash's contribution by one snapshot_interval plus the
  /// BSP round overshoot — the invariant the scenario fuzzer asserts.
  std::int64_t updates_lost = 0;
  double mean_staleness = 0.0;
  double throughput_images_per_sec = 0.0;
  double final_train_loss = 0.0;
  std::int64_t steps_completed = 0;
  std::vector<LossPoint> loss_curve;
  std::vector<AccuracyPoint> accuracy_curve;

  /// First virtual time (seconds) test accuracy reached `threshold`.
  [[nodiscard]] std::optional<double> time_to_accuracy(double threshold) const;
};

/// Runs one job to completion on the simulated cluster.
class TrainingSession {
 public:
  explicit TrainingSession(RunRequest request);

  /// Execute the job.  Never throws on divergence (that is a *result*);
  /// throws ConfigError on inconsistent requests.
  RunResult run();

 private:
  RunRequest req_;
};

}  // namespace ss
