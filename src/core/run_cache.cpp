#include "core/run_cache.h"

#include <unistd.h>

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/log.h"

namespace ss {

namespace {
// v2 added the elastic-membership counters; v3 adds updates_lost and moves
// doubles to max_digits10 precision so a cache hit round-trips the result
// bit for bit.  Older entries fail the header check and re-run (the
// cache-key schema tag invalidates them anyway).
constexpr const char* kHeader = "ss-runresult-v3";

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

RunCache::RunCache(std::string directory) : dir_(std::move(directory)) {}

std::string RunCache::hash_key(const RunRequest& request) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, fnv1a(request.cache_key()));
  return buf;
}

std::string RunCache::path_for(const RunRequest& request) const {
  return dir_ + "/" + hash_key(request) + ".run";
}

std::string serialize_run_result(const RunResult& r) {
  std::ostringstream os;
  // max_digits10: every double round-trips exactly, so a cache hit is
  // bit-identical to the cold run it replays (the scenario fuzzer's
  // cache-fidelity invariant).
  os.precision(std::numeric_limits<double>::max_digits10);
  os << kHeader << "\n";
  os << "diverged " << (r.diverged ? 1 : 0) << "\n";
  os << "converged " << (r.converged ? 1 : 0) << "\n";
  os << "converged_accuracy " << r.converged_accuracy << "\n";
  os << "final_accuracy " << r.final_accuracy << "\n";
  os << "best_accuracy " << r.best_accuracy << "\n";
  os << "train_time_seconds " << r.train_time_seconds << "\n";
  os << "init_time_seconds " << r.init_time_seconds << "\n";
  os << "switch_overhead_seconds " << r.switch_overhead_seconds << "\n";
  os << "num_switches " << r.num_switches << "\n";
  os << "num_membership_events " << r.num_membership_events << "\n";
  os << "recovery_overhead_seconds " << r.recovery_overhead_seconds << "\n";
  os << "updates_lost " << r.updates_lost << "\n";
  os << "mean_staleness " << r.mean_staleness << "\n";
  os << "throughput_images_per_sec " << r.throughput_images_per_sec << "\n";
  os << "final_train_loss " << r.final_train_loss << "\n";
  os << "steps_completed " << r.steps_completed << "\n";
  os << "loss_curve " << r.loss_curve.size() << "\n";
  for (const auto& p : r.loss_curve) os << p.step << " " << p.seconds << " " << p.loss << "\n";
  os << "accuracy_curve " << r.accuracy_curve.size() << "\n";
  for (const auto& p : r.accuracy_curve)
    os << p.step << " " << p.seconds << " " << p.accuracy << "\n";
  return os.str();
}

std::optional<RunResult> parse_run_result(const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line != kHeader) return std::nullopt;

  RunResult r;
  auto expect = [&](const char* field, auto& value) -> bool {
    std::string name;
    return static_cast<bool>(is >> name >> value) && name == field;
  };
  int diverged = 0, converged = 0;
  if (!expect("diverged", diverged)) return std::nullopt;
  if (!expect("converged", converged)) return std::nullopt;
  r.diverged = diverged != 0;
  r.converged = converged != 0;
  if (!expect("converged_accuracy", r.converged_accuracy)) return std::nullopt;
  if (!expect("final_accuracy", r.final_accuracy)) return std::nullopt;
  if (!expect("best_accuracy", r.best_accuracy)) return std::nullopt;
  if (!expect("train_time_seconds", r.train_time_seconds)) return std::nullopt;
  if (!expect("init_time_seconds", r.init_time_seconds)) return std::nullopt;
  if (!expect("switch_overhead_seconds", r.switch_overhead_seconds)) return std::nullopt;
  if (!expect("num_switches", r.num_switches)) return std::nullopt;
  if (!expect("num_membership_events", r.num_membership_events)) return std::nullopt;
  if (!expect("recovery_overhead_seconds", r.recovery_overhead_seconds)) return std::nullopt;
  if (!expect("updates_lost", r.updates_lost)) return std::nullopt;
  if (!expect("mean_staleness", r.mean_staleness)) return std::nullopt;
  if (!expect("throughput_images_per_sec", r.throughput_images_per_sec)) return std::nullopt;
  if (!expect("final_train_loss", r.final_train_loss)) return std::nullopt;
  if (!expect("steps_completed", r.steps_completed)) return std::nullopt;

  std::size_t n = 0;
  if (!expect("loss_curve", n)) return std::nullopt;
  r.loss_curve.resize(n);
  for (auto& p : r.loss_curve)
    if (!(is >> p.step >> p.seconds >> p.loss)) return std::nullopt;
  if (!expect("accuracy_curve", n)) return std::nullopt;
  r.accuracy_curve.resize(n);
  for (auto& p : r.accuracy_curve)
    if (!(is >> p.step >> p.seconds >> p.accuracy)) return std::nullopt;
  return r;
}

std::optional<RunResult> RunCache::load(const RunRequest& request) const {
  std::ifstream in(path_for(request));
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_run_result(buf.str());
}

void RunCache::store(const RunRequest& request, const RunResult& result) const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    log_warn("RunCache: cannot create ", dir_, ": ", ec.message());
    return;
  }
  const std::string path = path_for(request);
  // Write-to-tmp + atomic rename: concurrent sweep workers (threads or
  // processes) storing the same key never expose a torn entry to a reader —
  // a reader sees either the old complete file or the new complete file.
  // The tmp name is uniquified per writer so racing writers don't clobber
  // each other's half-written staging files; last rename wins, and since
  // results are keyed by content hash, both writers carry identical bytes.
  static std::atomic<std::uint64_t> tmp_counter{0};
  std::ostringstream tmp_name;
  tmp_name << path << ".tmp." << ::getpid() << "." << tmp_counter.fetch_add(1);
  const std::string tmp_path = tmp_name.str();
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) {
      log_warn("RunCache: cannot write ", tmp_path);
      return;
    }
    out << serialize_run_result(result);
    if (!out.flush()) {
      log_warn("RunCache: short write to ", tmp_path);
      std::filesystem::remove(tmp_path, ec);
      return;
    }
  }
  std::filesystem::rename(tmp_path, path, ec);
  if (ec) {
    log_warn("RunCache: cannot rename ", tmp_path, " -> ", path, ": ", ec.message());
    std::filesystem::remove(tmp_path, ec);
  }
}

RunResult RunCache::run_cached(const RunRequest& request) const {
  if (auto cached = load(request)) return *cached;
  TrainingSession session(request);
  RunResult result = session.run();
  store(request, result);
  return result;
}

}  // namespace ss
