#include "core/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

namespace ss {

namespace {

SweepOutcome evaluate_one(const RunRequest& request, const RunCache* cache) {
  SweepOutcome out;
  const auto start = std::chrono::steady_clock::now();
  try {
    if (cache) {
      if (auto cached = cache->load(request)) {
        out.result = *cached;
        out.from_cache = true;
      } else {
        out.result = TrainingSession(request).run();
        cache->store(request, out.result);
      }
    } else {
      out.result = TrainingSession(request).run();
    }
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  out.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return out;
}

}  // namespace

std::size_t SweepRunner::effective_jobs(std::size_t num_requests) const {
  std::size_t jobs = options_.jobs;
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());
  return std::clamp<std::size_t>(jobs, 1, std::max<std::size_t>(num_requests, 1));
}

std::vector<SweepOutcome> SweepRunner::run(const std::vector<RunRequest>& requests) const {
  std::vector<SweepOutcome> outcomes(requests.size());
  if (requests.empty()) return outcomes;

  const std::size_t jobs = effective_jobs(requests.size());
  if (jobs == 1) {
    for (std::size_t i = 0; i < requests.size(); ++i)
      outcomes[i] = evaluate_one(requests[i], options_.cache);
    return outcomes;
  }

  // Work-stealing off a shared counter: each worker claims the next
  // unclaimed request, so a few expensive configs don't idle the pool.
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= requests.size()) return;
      outcomes[i] = evaluate_one(requests[i], options_.cache);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(jobs);
  for (std::size_t t = 0; t < jobs; ++t) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  return outcomes;
}

}  // namespace ss
