// Digital-twin queries: "how would this configuration fare on the cluster
// we just measured?" expressed as ordinary RunRequests.
//
// A twin query is not a new execution path — it is a plain simulator run on
// a tiny proxy workload over a calibrated ClusterSpec (sim/calibration.h),
// which means it flows through TrainingSession, SweepRunner and the RunCache
// unchanged, and every knob that affects its result is already covered by
// RunRequest::cache_key().  The controller config deliberately adds *no* new
// cache-key fields: the horizon and seed land in existing key fields
// (`steps=`, `seed=`), and scoring inputs that do not change the simulated
// result (the target accuracy) stay out of the key by construction.
//
// The proxy workload is the determinism corpus's tiny linear model, not the
// real job: the twin ranks candidates on *cluster-time* behavior (barrier
// stalls, straggler exposure, wire costs) and on the protocols' relative
// statistical efficiency at the proxy scale, trading absolute fidelity for
// queries cheap enough to fan a whole candidate grid at every drain barrier.
#pragma once

#include <cstdint>
#include <optional>

#include "compress/spec.h"
#include "core/session.h"
#include "ps/protocol.h"
#include "sim/cluster.h"
#include "sim/straggler.h"

namespace ss {

/// One candidate configuration to price on the twin.
struct TwinQuery {
  Protocol protocol = Protocol::kBsp;
  int ssp_staleness_bound = 3;
  CompressionSpec compression;
  /// Calibrated cluster (pass the output of calibrate_cluster_spec over
  /// *quantized* measurements, or cache keys churn on noise).
  ClusterSpec cluster;
  /// Measured straggler, extrapolated as permanent for the horizon (the
  /// controller re-decides long before a transient would matter).  Worker
  /// < 0 or factor <= 1 models a uniform cluster.
  int straggler_worker = -1;
  double straggler_factor = 1.0;
  /// Global minibatch steps to simulate.
  std::int64_t horizon_steps = 192;
  std::uint64_t seed = 1;

  /// Lower the query onto the proxy workload as a cacheable RunRequest.
  [[nodiscard]] RunRequest to_run_request() const;
};

/// Predicted cost of a candidate, in virtual seconds — lower is better.
/// Reaching `target_accuracy` scores as the time it took; falling short
/// scores as the full horizon time inflated by the accuracy shortfall, so
/// near-misses still rank above divergence and stalls.  Deterministic in the
/// RunResult (ties in a candidate grid break on grid order).
[[nodiscard]] double twin_score(const RunResult& result, double target_accuracy);

}  // namespace ss
