// Configuration policy (paper Section IV-C): how hyper-parameters are
// adjusted when the synchronization protocol changes.
//
// The user supplies an initial (B, eta, mu) for a cluster of n nodes.  The
// policy derives per-protocol values:
//
//   BSP: global batch nB (B per worker), learning rate n*eta (linear scaling
//        rule, Goyal et al.), momentum mu.
//   ASP: local batch B, learning rate eta, momentum mu unchanged — the
//        paper's finding is that keeping momentum constant beats the scaled
//        or ramped variants (Figure 8(b)); those variants are implemented
//        here as ablations.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "ps/protocol.h"

namespace ss {

/// Momentum handling after switching to ASP (Figure 8(b)).
enum class MomentumPolicy {
  kBaseline,       ///< keep the BSP momentum value (the paper's choice)
  kZero,           ///< set momentum to 0
  kFixedScaled,    ///< set momentum to 1/n
  kNonlinearRamp,  ///< ramp 2^i / n per epoch i after the switch, capped at mu
  kLinearRamp,     ///< ramp i / n per epoch i after the switch, capped at mu
};

std::string momentum_policy_name(MomentumPolicy p);

/// User-supplied initial configuration.
struct BaseHyper {
  std::size_t batch_size = 64;  ///< B
  double learning_rate = 0.1;   ///< eta
  double momentum = 0.9;        ///< mu
};

/// Values the runtime should use during one phase.
struct DerivedHyper {
  std::size_t per_worker_batch = 64;
  double lr_multiplier = 1.0;  ///< multiplies the schedule's eta(step)
  double momentum = 0.9;
  /// Non-null only for the ramp ablations: momentum as a function of
  /// minibatch steps completed inside the ASP phase.
  std::function<double(std::int64_t)> momentum_schedule;
};

/// Derive the phase configuration.  `active_workers` is the cluster size
/// participating in the phase (the elastic policy may shrink it);
/// `steps_per_epoch` converts phase-steps to epochs for the ramp ablations.
/// `k_param` is the synchronization degree for the K-variant protocols
/// (0 = cluster size); their aggregated update averages K gradients, so the
/// linear scaling rule applies with K in place of n.
DerivedHyper derive_hyper(Protocol protocol, std::size_t active_workers,
                          const BaseHyper& base, MomentumPolicy momentum_policy,
                          std::int64_t steps_per_epoch, int k_param = 0);

}  // namespace ss
