// Persistent run-result cache.
//
// The paper's search-cost analysis replays training logs rather than
// re-training; we generalize that: every completed RunResult is persisted
// under a content hash of the full RunRequest, so bench binaries that share
// configurations (e.g. the Fig. 10 end-to-end table and the Fig. 11 timing
// sweep) reuse each other's runs, and re-running a bench is instant.
// Delete the cache directory to force re-training.
#pragma once

#include <optional>
#include <string>

#include "core/session.h"

namespace ss {

class RunCache {
 public:
  /// `directory` is created on first store.
  explicit RunCache(std::string directory);

  /// Cached result for this request, if present and parseable.
  [[nodiscard]] std::optional<RunResult> load(const RunRequest& request) const;

  /// Persist a result (overwrites).
  void store(const RunRequest& request, const RunResult& result) const;

  /// Run via cache: load, else execute a TrainingSession and store.
  [[nodiscard]] RunResult run_cached(const RunRequest& request) const;

  [[nodiscard]] const std::string& directory() const noexcept { return dir_; }

  /// 64-bit FNV-1a of the request's canonical key string.
  [[nodiscard]] static std::string hash_key(const RunRequest& request);

 private:
  [[nodiscard]] std::string path_for(const RunRequest& request) const;
  std::string dir_;
};

/// Serialize/parse a RunResult (text, versioned) — exposed for tests.
std::string serialize_run_result(const RunResult& result);
std::optional<RunResult> parse_run_result(const std::string& text);

}  // namespace ss
