#include "core/session.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/log.h"
#include "data/batcher.h"
#include "elastic/recovery_coordinator.h"
#include "ps/trace.h"
#include "ps/sim_runtime.h"

namespace ss {

std::string online_policy_name(OnlinePolicy p) {
  switch (p) {
    case OnlinePolicy::kNone:
      return "Baseline";
    case OnlinePolicy::kGreedy:
      return "Greedy";
    case OnlinePolicy::kElastic:
      return "Elastic";
    case OnlinePolicy::kReplace:
      return "Replace";
  }
  return "?";
}

SyncSwitchPolicy SyncSwitchPolicy::pure(Protocol p) {
  SyncSwitchPolicy s;
  s.first = p;
  s.second = p;
  s.switch_fraction = 1.0;
  return s;
}

SyncSwitchPolicy SyncSwitchPolicy::bsp_to_asp(double fraction) {
  SyncSwitchPolicy s;
  s.first = Protocol::kBsp;
  s.second = Protocol::kAsp;
  s.switch_fraction = fraction;
  return s;
}

SyncSwitchPolicy SyncSwitchPolicy::asp_to_bsp(double fraction) {
  SyncSwitchPolicy s;
  s.first = Protocol::kAsp;
  s.second = Protocol::kBsp;
  s.switch_fraction = fraction;
  return s;
}

std::string RunRequest::cache_key() const {
  std::ostringstream os;
  os.precision(10);
  // Schema tag first: bumping kCacheKeySchemaVersion moves every key to a
  // fresh hash slot, so stale .ss_runcache entries written under an older
  // grammar (or older result-affecting semantics) self-invalidate.
  os << "sv=" << kCacheKeySchemaVersion << ";"
     << "arch=" << arch_name(workload.arch) << ";classes=" << workload.data.num_classes
     << ";dim=" << workload.data.feature_dim << ";train=" << workload.data.train_size
     << ";test=" << workload.data.test_size << ";modes=" << workload.data.modes_per_class
     << ";sep=" << workload.data.class_separation << ";wstd=" << workload.data.within_stddev
     << ";noise=" << workload.data.label_noise << ";dseed=" << workload.data.seed
     << ";steps=" << workload.total_steps << ";B=" << workload.hyper.batch_size
     << ";lr=" << workload.hyper.learning_rate << ";mu=" << workload.hyper.momentum
     << ";eval=" << workload.eval_interval << ";divthr=" << workload.divergence_loss_threshold
     << ";n=" << cluster.num_workers << ";shards=" << cluster.num_ps_shards
     << ";shiss=" << cluster.shard_issue_overhead.us()
     // ps_apply_threads is deliberately absent: parallel apply is
     // bit-identical to serial, so it cannot change the result.
     << ";comp=" << cluster.compute_per_batch.us()
     << ";refb=" << cluster.reference_batch << ";jit=" << cluster.compute_jitter_sigma
     << ";lat=" << cluster.net_latency.us() << ";bytes=" << cluster.payload_bytes
     << ";bw=" << cluster.bandwidth_bps << ";sb=" << cluster.sync_base.us()
     << ";sq=" << cluster.sync_quad.us() << ";aa=" << cluster.async_apply.us()
     << ";act=" << actuator_exec_name(actuator) << ";p1=" << protocol_name(policy.first)
     << ";p2=" << protocol_name(policy.second) << ";frac=" << policy.switch_fraction
     << ";mom=" << momentum_policy_name(policy.momentum_policy)
     << ";online=" << online_policy_name(policy.online)
     << ";dw=" << policy.detector.window_size
     << ";dc=" << policy.detector.consecutive_required
     << ";drg=" << policy.detector.min_relative_gap
     << ";sspb=" << policy.ssp_staleness_bound << ";k=" << policy.k_param
     << ";sched=" << policy.schedule.label()
     << ";strg=" << stragglers.num_stragglers << "x"
     << stragglers.occurrences << "x" << stragglers.extra_latency_ms << "x"
     << stragglers.max_duration.us() << "x" << stragglers.horizon.us()
     << ";xstrg=" << straggler_schedule.label()
     << ";codec=" << compression.label() << ";elastic=" << elastic.label()
     << ";joinprov=" << cluster.join_provision.us()
     << ";ascale=" << actuator_time_scale
     << ";seed=" << seed;
  return os.str();
}

std::optional<double> RunResult::time_to_accuracy(double threshold) const {
  for (const auto& p : accuracy_curve)
    if (p.accuracy >= threshold) return p.seconds;
  return std::nullopt;
}

TrainingSession::TrainingSession(RunRequest request) : req_(std::move(request)) {
  if (req_.policy.switch_fraction < 0.0 || req_.policy.switch_fraction > 1.0)
    throw ConfigError("TrainingSession: switch_fraction must be in [0, 1]");
  if (req_.workload.total_steps <= 0)
    throw ConfigError("TrainingSession: total_steps must be > 0");
  if (req_.cluster.num_workers < 1)
    throw ConfigError("TrainingSession: need at least one worker");
  if (!req_.elastic.empty()) {
    if (req_.policy.online != OnlinePolicy::kNone)
      throw ConfigError("TrainingSession: an elastic membership plan and an online "
                        "straggler policy both manipulate the active worker set; pick one");
    if (req_.elastic.plan.reactive() && req_.policy.schedule.has_reactive_trigger())
      throw ConfigError("TrainingSession: reactive membership and reactive switch "
                        "triggers cannot share one straggler detector; pick one");
  }
}

namespace {

/// Detector adapter: a MetricsSink that feeds task observations into the
/// straggler detector (teed from the profiler).
class DetectorSink final : public MetricsSink {
 public:
  explicit DetectorSink(StragglerDetector& detector) : detector_(detector) {}
  void on_task(const TaskObservation& obs) override {
    detector_.observe(obs.worker, obs.images, obs.task_duration);
  }
  void on_update(const UpdateObservation&) override {}
  void on_eval(std::int64_t, VTime, double) override {}

 private:
  StragglerDetector& detector_;
};

std::vector<int> all_workers(std::size_t n) {
  std::vector<int> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<int>(i);
  return out;
}

}  // namespace

RunResult TrainingSession::run() {
  const Workload& wl = req_.workload;
  const std::size_t n = req_.cluster.num_workers;

  // --- Substrate: data, model, PS state, cluster model.
  const DataSplit data = make_synthetic(wl.data);
  const Dataset eval_subset = data.test.head(std::min<std::size_t>(data.test.size(), 2048));

  Rng root(req_.seed * 0x9E3779B97f4A7C15ULL + 17);
  Rng init_rng = root.fork(1);
  Model grad_model = make_model(wl.arch, wl.data.feature_dim, wl.data.num_classes, init_rng);
  Model eval_model = grad_model.clone();

  const auto shards = make_shards(data.train.size(), n);
  std::vector<MinibatchSampler> samplers;
  std::vector<Rng> worker_rngs;
  samplers.reserve(n);
  worker_rngs.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    samplers.emplace_back(shards[w], wl.hyper.batch_size, root.fork(100 + w));
    worker_rngs.push_back(root.fork(200 + w));
  }

  TrainingState state(ParameterServer(grad_model.get_params(), wl.hyper.momentum,
                                      req_.cluster.num_ps_shards),
                      std::move(samplers), std::move(worker_rngs));
  if (req_.cluster.ps_apply_threads > 0)
    state.ps.set_parallel_apply(req_.cluster.ps_apply_threads);

  const ClusterModel cluster(req_.cluster);
  const ActuatorModel actuator = ActuatorModel::paper_calibrated(req_.actuator);

  Rng straggler_rng = root.fork(300);
  StragglerSchedule straggler_schedule;
  if (!req_.straggler_schedule.events().empty())
    straggler_schedule = req_.straggler_schedule;
  else if (req_.stragglers.num_stragglers > 0)
    straggler_schedule = StragglerSchedule::generate(req_.stragglers, n, straggler_rng);

  const PiecewiseDecay schedule =
      PiecewiseDecay::resnet_style(wl.hyper.learning_rate, wl.total_steps);

  Profiler profiler;
  // Elastic joins extend the worker-slot space past n; size the detector for
  // every slot the run can ever see, but only the initial cluster is active.
  StragglerDetector detector(n + req_.elastic.plan.join_count(), req_.policy.detector);
  if (req_.elastic.plan.join_count() > 0) detector.set_active(all_workers(n));
  DetectorSink detector_sink(detector);
  std::vector<MetricsSink*> tees;
  if (req_.policy.online != OnlinePolicy::kNone || req_.policy.schedule.has_reactive_trigger() ||
      req_.elastic.plan.reactive())
    tees.push_back(&detector_sink);
  if (req_.observer != nullptr) tees.push_back(req_.observer);
  FanoutSink fanout(tees);
  if (!tees.empty()) profiler.set_tee(&fanout);

  SimRuntime runtime(cluster, grad_model, eval_model, data.train, eval_subset, profiler);

  // Optional gradient compression: one bank for the whole session (the
  // per-worker error-feedback residuals are transport state, reset across
  // protocol switches because the checkpoint-restart abandons in-flight
  // work).  Elastic joins create worker slots past n, so the bank is sized
  // for every slot the run can ever see.
  std::optional<CompressorBank> compressor_bank =
      req_.compression.make_bank(n + req_.elastic.plan.join_count());

  RunResult result;
  const double ascale = req_.actuator_time_scale;
  result.init_time_seconds = actuator.init_time(n).scaled(ascale).seconds();

  const std::int64_t first_budget = static_cast<std::int64_t>(
      std::llround(req_.policy.switch_fraction * static_cast<double>(wl.total_steps)));
  const std::int64_t steps_per_epoch = static_cast<std::int64_t>(
      std::max<std::size_t>(1, data.train.size() / wl.hyper.batch_size));

  auto make_phase = [&](Protocol proto, std::int64_t budget, std::size_t active_count,
                        std::optional<MomentumPolicy> mp_override =
                            std::nullopt) -> PhaseConfig {
    // Only the post-switch (second) protocol uses the momentum ablation.
    // Schedule mode passes the policy explicitly (first phase baseline,
    // later phases the ablation) so the vestigial first/switch_fraction
    // fields cannot leak into per-phase hyper-parameters.
    const MomentumPolicy mp =
        mp_override ? *mp_override
                    : (proto == req_.policy.first && req_.policy.switch_fraction > 0.0
                           ? MomentumPolicy::kBaseline
                           : req_.policy.momentum_policy);
    const DerivedHyper h =
        derive_hyper(proto, active_count, wl.hyper, mp, steps_per_epoch, req_.policy.k_param);
    PhaseConfig cfg;
    cfg.protocol = proto;
    cfg.ssp_staleness_bound = req_.policy.ssp_staleness_bound;
    cfg.k_param = req_.policy.k_param;
    cfg.step_budget = budget;
    cfg.lr_schedule = &schedule;
    cfg.lr_multiplier = h.lr_multiplier;
    if (is_synchronous(proto) && active_count > 1) {
      // Gradual warmup of the linear-scaled synchronous learning rate over
      // the first 5% of the workload (Goyal et al., the recipe the
      // configuration policy's scaling rule comes from): multiplier ramps
      // 1 -> n (1 -> K for the K-sync family).
      const double full_mult = h.lr_multiplier;
      const std::int64_t warmup_steps = std::max<std::int64_t>(1, wl.total_steps / 20);
      cfg.lr_multiplier_schedule = [full_mult, warmup_steps](std::int64_t step) {
        if (step >= warmup_steps) return full_mult;
        const double frac = static_cast<double>(step) / static_cast<double>(warmup_steps);
        return 1.0 + (full_mult - 1.0) * frac;
      };
    }
    cfg.per_worker_batch = h.per_worker_batch;
    cfg.momentum = h.momentum;
    cfg.momentum_schedule = h.momentum_schedule;
    cfg.eval_interval = wl.eval_interval;
    cfg.divergence_loss_threshold = wl.divergence_loss_threshold;
    if (compressor_bank) cfg.compressor = &*compressor_bank;
    return cfg;
  };

  auto pay_switch = [&]() {
    // Checkpoint -> actuate -> restore, exactly as the prototype does.
    const Checkpoint ckpt = state.ps.make_checkpoint(state.global_step);
    const VTime cost = actuator.switch_time(n).scaled(ascale);
    state.clock += cost;
    state.ps.restore(ckpt);
    if (compressor_bank) compressor_bank->reset();  // residuals die with the restart
    result.switch_overhead_seconds += cost.seconds();
    ++result.num_switches;
  };

  bool diverged = false;
  const std::vector<int> everyone = all_workers(n);

  if (!req_.elastic.empty() || !req_.policy.schedule.empty()) {
    // ---------- Phase-plan engine (explicit schedules and/or elastic
    // membership).  The phase plan — an explicit schedule, or the two-phase
    // offline plan in schedule form — is segmented at snapshot-capture
    // steps and membership-event steps; each segment runs through run_phase
    // with the current active set, and every transition re-derives the
    // phase configuration (lr, batch) for the new cluster size via
    // make_phase.  Crashes restore the last snapshot when the policy says
    // so; every membership change is priced through the cluster/actuator
    // models.  With an empty membership plan this degenerates to exactly
    // the schedule execution of PR 4 (the determinism suite holds it to the
    // legacy two-phase plan bit for bit); with a non-empty plan the worker
    // set becomes a time-varying quantity.  All state evolution is
    // deterministic in (plan, seed), so elastic runs are bit-for-bit
    // reproducible and cacheable.
    const bool explicit_schedule = !req_.policy.schedule.empty();
    std::vector<SwitchPhase> phases;
    if (explicit_schedule) {
      phases = req_.policy.schedule.phases();
    } else if (first_budget > 0 && first_budget < wl.total_steps) {
      phases = {SwitchPhase{req_.policy.first, SwitchTrigger::kStepCount, first_budget, -1},
                SwitchPhase{req_.policy.second, SwitchTrigger::kStepCount, 0, -1}};
    } else {
      phases = {SwitchPhase{first_budget >= wl.total_steps ? req_.policy.first
                                                           : req_.policy.second,
                            SwitchTrigger::kStepCount, 0, -1}};
    }

    RecoveryCoordinator coord(req_.elastic, n);
    const bool reactive_membership = req_.elastic.plan.reactive();

    // Crash recovery restores the latest snapshot at or before the crash
    // step.  Only the last cadence boundary before each crash matters, so
    // the budget is split exactly there instead of at every interval.
    std::optional<Checkpoint> snapshot;
    bool plan_has_crash = false;
    for (const MembershipEvent& e : req_.elastic.plan.events())
      plan_has_crash |= e.kind == MembershipEventKind::kCrash;
    if (plan_has_crash) snapshot = state.ps.make_checkpoint(0);  // run-start floor
    std::vector<std::int64_t> capture_steps;
    if (plan_has_crash && req_.elastic.snapshot_interval > 0) {
      for (const MembershipEvent& e : req_.elastic.plan.events()) {
        if (e.kind != MembershipEventKind::kCrash) continue;
        const std::int64_t cap =
            (e.at_step / req_.elastic.snapshot_interval) * req_.elastic.snapshot_interval;
        if (cap > 0) capture_steps.push_back(cap);
      }
      std::sort(capture_steps.begin(), capture_steps.end());
      capture_steps.erase(std::unique(capture_steps.begin(), capture_steps.end()),
                          capture_steps.end());
    }
    std::size_t next_capture_idx = 0;
    auto next_capture = [&](std::int64_t after) -> std::int64_t {
      for (std::size_t i = next_capture_idx; i < capture_steps.size(); ++i)
        if (capture_steps[i] > after) return capture_steps[i];
      return -1;
    };

    auto pay_membership = [&](VTime cost) {
      state.clock += cost;
      result.recovery_overhead_seconds += cost.seconds();
    };

    // Apply every scripted event due at the current step: price it, mutate
    // the PS / worker-slot state, and log it.
    auto apply_due_events = [&] {
      const auto applied = coord.advance_to(state.global_step);
      for (const AppliedMembershipEvent& a : applied) {
        ++result.num_membership_events;
        switch (a.event.kind) {
          case MembershipEventKind::kCrash: {
            pay_membership(actuator.resize_time().scaled(ascale));
            if (req_.elastic.recovery == RecoveryMode::kRestoreSnapshot && snapshot) {
              pay_membership(cluster.recovery_restore_time());
              result.updates_lost += state.global_step - snapshot->global_step;
              // Parameters + velocity roll back to the snapshot; the global
              // step and versions do not (batches are not replayed, exactly
              // like the threaded runtime's recovery).  Surviving workers
              // keep their error-feedback residuals.
              state.ps.restore(*snapshot);
            }
            log_info("elastic: worker ", a.event.worker, " crashed at step ",
                     state.global_step, ", ", coord.alive_count(), " workers remain");
            break;
          }
          case MembershipEventKind::kLeave:
            pay_membership(actuator.resize_time().scaled(ascale));
            log_info("elastic: worker ", a.event.worker, " left at step ",
                     state.global_step, ", ", coord.alive_count(), " workers remain");
            break;
          case MembershipEventKind::kJoin: {
            const int slot = a.event.worker;
            state.samplers.emplace_back(shards[static_cast<std::size_t>(slot) % shards.size()],
                                        wl.hyper.batch_size, root.fork(1000 + slot));
            state.worker_rngs.push_back(root.fork(2000 + slot));
            pay_membership(cluster.join_time());
            log_info("elastic: worker ", slot, " joined at step ", state.global_step,
                     ", cluster is now ", coord.alive_count());
            break;
          }
        }
      }
      // Throughput history is not comparable across resizes, and retired
      // slots must not block detector warm-up.
      detector.set_active(coord.active());
    };

    for (std::size_t pi = 0; pi < phases.size() && !diverged; ++pi) {
      const std::int64_t phase_remaining = wl.total_steps - state.global_step;
      if (phase_remaining <= 0) break;
      const SwitchPhase& ph = phases[pi];
      const bool lastp = pi + 1 == phases.size();
      const std::int64_t phase_end =
          state.global_step + SwitchSchedule::phase_budget(ph, lastp, phase_remaining);
      bool advance_phase = false;
      while (!diverged && state.global_step < phase_end && !advance_phase) {
        // Segment the budget at the next snapshot capture or membership step.
        std::int64_t boundary = phase_end;
        if (const std::int64_t cap = next_capture(state.global_step); cap > 0)
          boundary = std::min(boundary, cap);
        if (const std::int64_t ev = coord.next_event_step(state.global_step); ev > 0)
          boundary = std::min(boundary, ev);

        // Momentum ablation semantics match the branch each plan came from:
        // explicit schedules pin the first phase to baseline and apply the
        // ablation to every later phase; the synthesized two-phase plan
        // defers to make_phase's offline rule (ablation on the post-switch
        // protocol only), so enabling elasticity never changes which
        // momentum policy a phase trains under.
        std::optional<MomentumPolicy> mp;
        if (explicit_schedule)
          mp = pi == 0 ? MomentumPolicy::kBaseline : req_.policy.momentum_policy;
        PhaseConfig cfg =
            make_phase(ph.protocol, boundary - state.global_step, coord.alive_count(), mp);
        if (ph.ssp_staleness_bound >= 0) cfg.ssp_staleness_bound = ph.ssp_staleness_bound;
        StopPredicate stop;
        if (ph.trigger == SwitchTrigger::kStragglerDetected)
          stop = [&](VTime, std::int64_t) { return detector.any_straggler(); };
        else if (ph.trigger == SwitchTrigger::kStragglerCleared)
          stop = [&](VTime, std::int64_t) { return !detector.any_straggler(); };
        else if (reactive_membership)
          stop = [&](VTime, std::int64_t) { return detector.any_straggler(); };

        const PhaseResult pr =
            runtime.run_phase(state, cfg, coord.active(), straggler_schedule, stop);
        diverged = pr.end == PhaseEnd::kDiverged;
        if (diverged) break;

        if (pr.end == PhaseEnd::kStopRequested) {
          if (ph.trigger != SwitchTrigger::kStepCount) {
            log_info("schedule: ", switch_trigger_name(ph.trigger), " fired at step ",
                     pr.trigger_step, ", switching to ",
                     protocol_name(phases[pi + 1].protocol));
            advance_phase = true;
            break;
          }
          // Reactive membership: evict the flagged workers and resume.
          const auto evicted = coord.evict(detector.stragglers(), state.global_step);
          for (const AppliedMembershipEvent& a : evicted) {
            ++result.num_membership_events;
            pay_membership(actuator.resize_time().scaled(ascale));
            log_info("elastic: evicted straggler slot ", a.event.worker, " at step ",
                     state.global_step, ", ", a.workers_after, " workers remain");
          }
          detector.set_active(coord.active());
          continue;
        }

        // Budget ran to the segment boundary: snapshot first (a capture due
        // at the same step as a crash happens before the crash, matching a
        // cadence snapshotter that completed just in time), then resolve
        // membership.  A BSP round can overshoot the boundary by up to n-1
        // steps, so captures are consumed by index with <=, not matched
        // exactly.
        if (next_capture_idx < capture_steps.size() &&
            capture_steps[next_capture_idx] <= state.global_step) {
          snapshot = state.ps.make_checkpoint(state.global_step);
          while (next_capture_idx < capture_steps.size() &&
                 capture_steps[next_capture_idx] <= state.global_step)
            ++next_capture_idx;
        }
        if (coord.events_due(state.global_step)) apply_due_events();
      }
      if (!diverged && (advance_phase || state.global_step >= phase_end) && !lastp &&
          state.global_step < wl.total_steps)
        pay_switch();
    }
  } else if (req_.policy.online == OnlinePolicy::kNone || req_.stragglers.num_stragglers == 0) {
    // ---------- Offline plan: first protocol, one switch, second protocol.
    if (first_budget > 0) {
      const PhaseConfig cfg = make_phase(req_.policy.first, first_budget, n);
      const PhaseResult pr =
          runtime.run_phase(state, cfg, everyone, straggler_schedule, nullptr);
      diverged = pr.end == PhaseEnd::kDiverged;
    }
    const std::int64_t remaining = wl.total_steps - state.global_step;
    if (!diverged && remaining > 0) {
      if (first_budget > 0) pay_switch();
      const PhaseConfig cfg = make_phase(req_.policy.second, remaining, n);
      const PhaseResult pr =
          runtime.run_phase(state, cfg, everyone, straggler_schedule, nullptr);
      diverged = pr.end == PhaseEnd::kDiverged;
    }
  } else if (req_.policy.online == OnlinePolicy::kGreedy) {
    // ---------- Greedy: flip to ASP whenever a straggler is present, back to
    // BSP once clear, until the BSP quota is met; then ASP to the end.
    std::int64_t bsp_done = 0;
    bool in_bsp = first_budget > 0;
    if (!in_bsp) detector.reset();
    while (!diverged && state.global_step < wl.total_steps) {
      const std::int64_t remaining = wl.total_steps - state.global_step;
      if (in_bsp) {
        const std::int64_t budget = std::min(first_budget - bsp_done, remaining);
        const PhaseConfig cfg = make_phase(req_.policy.first, budget, n);
        const std::int64_t before = state.global_step;
        const PhaseResult pr =
            runtime.run_phase(state, cfg, everyone, straggler_schedule,
                              [&](VTime, std::int64_t) { return detector.any_straggler(); });
        bsp_done += state.global_step - before;
        diverged = pr.end == PhaseEnd::kDiverged;
        if (diverged) break;
        if (pr.end == PhaseEnd::kStopRequested) {
          log_info("greedy: straggler detected at step ", state.global_step,
                   ", switching to ASP");
          pay_switch();
          in_bsp = false;
        } else if (bsp_done >= first_budget) {
          // Quota met: permanent switch to the second protocol.
          if (state.global_step < wl.total_steps) {
            pay_switch();
            const PhaseConfig asp =
                make_phase(req_.policy.second, wl.total_steps - state.global_step, n);
            const PhaseResult fr =
                runtime.run_phase(state, asp, everyone, straggler_schedule, nullptr);
            diverged = fr.end == PhaseEnd::kDiverged;
          }
          break;
        }
      } else {
        // Temporary ASP while the straggler persists.  Once the BSP quota is
        // met there is nothing to return to, so run uninterrupted.
        const PhaseConfig cfg = make_phase(req_.policy.second, remaining, n);
        const StopPredicate until_clear =
            bsp_done < first_budget
                ? StopPredicate([&](VTime, std::int64_t) { return !detector.any_straggler(); })
                : StopPredicate();
        const PhaseResult pr =
            runtime.run_phase(state, cfg, everyone, straggler_schedule, until_clear);
        diverged = pr.end == PhaseEnd::kDiverged;
        if (diverged) break;
        if (pr.end == PhaseEnd::kBudgetExhausted) break;  // finished the workload in ASP
        if (bsp_done < first_budget) {
          log_info("greedy: stragglers cleared at step ", state.global_step,
                   ", switching back to BSP");
          pay_switch();
          in_bsp = true;
        }
      }
    }
  } else if (req_.policy.online == OnlinePolicy::kReplace) {
    // ---------- Replace: evict detected stragglers and provision fresh VMs
    // in the background (the paper's prescription for *permanent*
    // stragglers).  A replacement takes over the evicted slot once ready
    // (~100 s provisioning) and is healthy from then on.  Training never
    // blocks on provisioning.
    std::vector<int> active = everyone;
    std::vector<std::pair<int, VTime>> pending;  // (worker slot, ready time)
    std::int64_t bsp_done = 0;
    bool switched = first_budget <= 0;
    while (!diverged && state.global_step < wl.total_steps) {
      const bool in_bsp = bsp_done < first_budget;
      const std::int64_t budget =
          in_bsp ? first_budget - bsp_done : wl.total_steps - state.global_step;
      if (!in_bsp && !switched) {
        pay_switch();
        switched = true;
      }
      const Protocol proto = in_bsp ? req_.policy.first : req_.policy.second;
      const PhaseConfig cfg = make_phase(proto, budget, active.size());
      const StopPredicate stop = [&](VTime now, std::int64_t) {
        if (detector.any_straggler()) return true;
        for (const auto& [slot, ready] : pending)
          if (now >= ready) return true;
        return false;
      };
      const std::int64_t before = state.global_step;
      const PhaseResult pr = runtime.run_phase(state, cfg, active, straggler_schedule, stop);
      if (in_bsp) bsp_done += state.global_step - before;
      diverged = pr.end == PhaseEnd::kDiverged;
      if (diverged) break;
      if (pr.end == PhaseEnd::kBudgetExhausted) {
        if (in_bsp) continue;  // BSP quota met: next iteration switches
        break;                 // workload complete
      }

      // Stop requested: first integrate any provisioned replacements...
      bool resized = false;
      for (auto it = pending.begin(); it != pending.end();) {
        if (state.clock >= it->second) {
          log_info("replace: fresh node took over slot ", it->first, " at step ",
                   state.global_step);
          straggler_schedule.mask_after(it->first, state.clock);
          active.push_back(it->first);
          std::sort(active.begin(), active.end());
          it = pending.erase(it);
          resized = true;
        } else {
          ++it;
        }
      }
      // ...then evict freshly flagged stragglers and order their replacements.
      const std::vector<int> flagged = detector.stragglers();
      std::vector<int> next_active;
      for (int w : active)
        if (std::find(flagged.begin(), flagged.end(), w) == flagged.end())
          next_active.push_back(w);
      if (next_active.size() >= 2 && next_active.size() < active.size()) {
        const VTime ready = state.clock + actuator.provision_time().scaled(ascale);
        for (int w : active)
          if (std::find(flagged.begin(), flagged.end(), w) != flagged.end()) {
            log_info("replace: evicting straggler slot ", w, ", replacement at ",
                     ready.seconds(), "s");
            pending.emplace_back(w, ready);
          }
        active = std::move(next_active);
        resized = true;
      }
      if (resized) state.clock += actuator.resize_time().scaled(ascale);
      detector.reset();
    }
  } else {
    // ---------- Elastic: evict detected stragglers during the BSP phase,
    // restore the full cluster for the ASP phase.
    std::vector<int> active = everyone;
    std::int64_t bsp_done = 0;
    while (!diverged && bsp_done < first_budget) {
      const PhaseConfig cfg =
          make_phase(req_.policy.first, first_budget - bsp_done, active.size());
      const std::int64_t before = state.global_step;
      const PhaseResult pr =
          runtime.run_phase(state, cfg, active, straggler_schedule,
                            [&](VTime, std::int64_t) { return detector.any_straggler(); });
      bsp_done += state.global_step - before;
      diverged = pr.end == PhaseEnd::kDiverged;
      if (diverged) break;
      if (pr.end == PhaseEnd::kStopRequested) {
        const std::vector<int> flagged = detector.stragglers();
        std::vector<int> next_active;
        for (int w : active)
          if (std::find(flagged.begin(), flagged.end(), w) == flagged.end())
            next_active.push_back(w);
        if (next_active.size() >= 2 && next_active.size() < active.size()) {
          log_info("elastic: evicting ", active.size() - next_active.size(),
                   " straggler(s) at step ", state.global_step);
          active = std::move(next_active);
          state.clock += actuator.resize_time().scaled(ascale);
          detector.reset();
        } else {
          // Nothing safely removable; keep training, detector re-fires later.
          detector.reset();
        }
      }
    }
    const std::int64_t remaining = wl.total_steps - state.global_step;
    if (!diverged && remaining > 0) {
      if (active.size() < n) state.clock += actuator.resize_time().scaled(ascale);  // restore nodes
      if (first_budget > 0) pay_switch();
      const PhaseConfig cfg = make_phase(req_.policy.second, remaining, n);
      const PhaseResult pr =
          runtime.run_phase(state, cfg, everyone, straggler_schedule, nullptr);
      diverged = pr.end == PhaseEnd::kDiverged;
    }
  }

  // ---------- Collect results.
  result.diverged = diverged;
  result.steps_completed = state.global_step;
  result.train_time_seconds = state.clock.seconds();
  const auto converged = profiler.converged_accuracy();
  result.converged = !diverged && converged.has_value();
  result.final_accuracy = profiler.final_accuracy();
  result.best_accuracy = profiler.best_accuracy();
  result.converged_accuracy =
      diverged ? 0.0 : (converged ? *converged : profiler.final_accuracy());
  result.mean_staleness = profiler.mean_staleness();
  result.final_train_loss = profiler.tail_loss();
  if (state.clock.seconds() > 0.0)
    result.throughput_images_per_sec =
        static_cast<double>(profiler.total_images()) / state.clock.seconds();
  result.loss_curve = profiler.loss_curve();
  result.accuracy_curve = profiler.accuracy_curve();
  return result;
}

}  // namespace ss
