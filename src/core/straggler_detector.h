// Throughput-based straggler detection (paper Section IV-B2).
//
// "A worker k is identified as a straggler if its training throughput over a
// sliding window S_k is lower than the difference between the cluster
// average and standard deviation, S - sigma, for a number of consecutive
// detection windows."
//
// The detector consumes TaskObservations (one per completed worker task) and
// maintains a per-worker sliding window of throughput samples.  A detection
// window completes each time a worker's sliding window turns over
// `window_size` new samples.
#pragma once

#include <cstddef>
#include <vector>

#include "common/stats.h"
#include "common/vtime.h"

namespace ss {

struct DetectorConfig {
  std::size_t window_size = 6;    ///< samples per sliding window
  int consecutive_required = 3;   ///< windows below threshold to flag
  /// Guard against false positives when the cluster is healthy and sigma is
  /// tiny: a worker must be at least this fraction below the cluster mean
  /// (in addition to the paper's mean - sigma rule) to count as slow.
  double min_relative_gap = 0.15;
};

class StragglerDetector {
 public:
  StragglerDetector(std::size_t num_workers, DetectorConfig cfg);

  /// Feed one completed task: `images` trained in `duration`.  Returns true
  /// when this observation completed a detection window and a detection pass
  /// ran — i.e. when `stragglers()` / `any_straggler()` may have changed.
  /// Reactive consumers (the threaded runtime's switch triggers) use this to
  /// evaluate their trigger only when the flags can actually move.
  bool observe(int worker, std::size_t images, VTime duration);

  /// Workers currently flagged as stragglers.
  [[nodiscard]] std::vector<int> stragglers() const;

  /// True if any worker is currently flagged.
  [[nodiscard]] bool any_straggler() const noexcept;

  /// True once every worker has a full window (detection is meaningful).
  [[nodiscard]] bool warmed_up() const noexcept;

  /// Forget all samples (called after cluster reconfiguration, where
  /// historical throughput is no longer comparable).
  void reset();

  /// Elastic membership support: restrict detection to `active` worker
  /// slots.  Inactive slots are ignored by observe(), excluded from the
  /// cluster statistics, and — crucially — do not block warm-up, so the
  /// detector keeps working after a crash/leave retired a slot or before a
  /// scripted join fills one.  Implies reset() (historical throughput is
  /// not comparable across a membership change).
  void set_active(const std::vector<int>& active);

  [[nodiscard]] const DetectorConfig& config() const noexcept { return cfg_; }

 private:
  void run_detection();

  DetectorConfig cfg_;
  std::vector<SlidingWindow> windows_;
  std::size_t observations_since_check_ = 0;
  std::vector<int> below_count_;   ///< consecutive windows below threshold
  std::vector<bool> flagged_;
  std::vector<bool> active_;       ///< slots participating in detection
  std::size_t active_count_ = 0;   ///< cached popcount of active_ (hot path)
};

}  // namespace ss
