// Binary-search cost/benefit Monte-Carlo (paper Section VI-C1, Tables II and
// IV/V/VI, Figure 16).
//
// The paper replays its training logs to simulate the search under different
// settings (recurring or not, number of BSP baseline runs, number of runs per
// candidate), 1000 trials each, and reports:
//
//   * search cost, normalized to one full-BSP training time;
//   * amortization: number of job recurrences for the per-job savings of the
//     found policy to pay back the search cost;
//   * effective training: BSP-quality models produced during the search per
//     unit of BSP-training-equivalent cost;
//   * success probability: fraction of trials finding the ground-truth
//     switch timing.
//
// We do exactly the same over our own run logs.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "core/binary_search.h"

namespace ss {

/// Empirical log of repeated runs at one switch fraction.
struct TimingLog {
  std::vector<double> accuracies;    ///< converged accuracy per repetition (0 if diverged)
  std::vector<double> times_seconds; ///< total training time per repetition
  std::vector<bool> diverged;        ///< per repetition
};

/// All logs for one experiment setup, keyed by switch fraction (1.0 = BSP,
/// 0.0 = ASP).  Must contain 1.0 and every fraction the binary search visits.
using RunLogs = std::map<double, TimingLog>;

/// One search setting, as in the paper's tables.
struct SearchSetting {
  bool recurring = false;  ///< target accuracy known from job history
  int bsp_runs = 5;        ///< baseline runs to establish A (0 when recurring)
  int candidate_runs = 5;  ///< runs per explored candidate (R)
};

struct SearchCostReport {
  double cost_vs_bsp = 0.0;         ///< mean search cost / BSP training time
  double amortized_recurrences = 0.0;
  double effective_training = 0.0;  ///< valid models per BSP-cost unit
  double success_probability = 0.0;
  double ground_truth_fraction = 1.0;
};

class SearchCostAnalyzer {
 public:
  /// `beta` is the accuracy margin; `max_settings` the binary-search depth M.
  SearchCostAnalyzer(RunLogs logs, double beta, int max_settings);

  /// Ground-truth switch timing: binary search using exact log means.
  [[nodiscard]] double ground_truth() const;

  /// Monte-Carlo a setting `trials` times.
  [[nodiscard]] SearchCostReport analyze(const SearchSetting& setting, int trials,
                                         Rng& rng) const;

 private:
  /// Nearest logged fraction (search midpoints are dyadic and logged exactly,
  /// but guard against floating-point drift).
  [[nodiscard]] const TimingLog& log_at(double fraction) const;

  double mean_bsp_time() const;
  double mean_time_at(double fraction) const;
  double mean_accuracy_at(double fraction) const;
  bool ever_diverges_at(double fraction) const;

  RunLogs logs_;
  double beta_;
  int max_settings_;
};

}  // namespace ss
