#include "core/profiler.h"

#include <algorithm>

#include "common/error.h"

namespace ss {

Profiler::Profiler(std::int64_t loss_record_interval)
    : loss_record_interval_(loss_record_interval) {
  if (loss_record_interval <= 0) throw ConfigError("Profiler: record interval must be > 0");
}

void Profiler::on_task(const TaskObservation& obs) {
  total_images_ += obs.images;
  if (tee_) tee_->on_task(obs);
}

void Profiler::on_update(const UpdateObservation& obs) {
  ++updates_seen_;
  staleness_sum_ += obs.staleness;
  if (updates_seen_ % loss_record_interval_ == 0)
    loss_.push_back({obs.global_step, obs.time.seconds(), obs.train_loss});
  if (tee_) tee_->on_update(obs);
}

void Profiler::on_eval(std::int64_t global_step, VTime time, double test_accuracy) {
  acc_.push_back({global_step, time.seconds(), test_accuracy});
  if (tee_) tee_->on_eval(global_step, time, test_accuracy);
}

std::optional<double> Profiler::converged_accuracy(double tolerance, int window) const {
  const auto w = static_cast<std::size_t>(window);
  if (acc_.size() < w) return std::nullopt;
  // Latest window of `window` consecutive evals whose spread is within
  // tolerance; the last stable plateau is the converged accuracy (using the
  // latest window avoids mistaking a mid-training plateau, e.g. just before
  // an LR decay, for convergence).
  std::optional<double> converged;
  for (std::size_t i = 0; i + w <= acc_.size(); ++i) {
    double lo = acc_[i].accuracy, hi = acc_[i].accuracy;
    for (std::size_t j = i + 1; j < i + w; ++j) {
      lo = std::min(lo, acc_[j].accuracy);
      hi = std::max(hi, acc_[j].accuracy);
    }
    if (hi - lo <= tolerance) converged = acc_[i + w - 1].accuracy;
  }
  return converged;
}

double Profiler::best_accuracy() const noexcept {
  double best = 0.0;
  for (const auto& p : acc_) best = std::max(best, p.accuracy);
  return best;
}

double Profiler::final_accuracy() const noexcept {
  return acc_.empty() ? 0.0 : acc_.back().accuracy;
}

std::optional<double> Profiler::time_to_accuracy(double threshold) const {
  for (const auto& p : acc_)
    if (p.accuracy >= threshold) return p.seconds;
  return std::nullopt;
}

double Profiler::tail_loss(std::size_t k) const {
  if (loss_.empty()) return 0.0;
  const std::size_t n = std::min(k, loss_.size());
  double sum = 0.0;
  for (std::size_t i = loss_.size() - n; i < loss_.size(); ++i) sum += loss_[i].loss;
  return sum / static_cast<double>(n);
}

double Profiler::mean_staleness() const noexcept {
  return updates_seen_ ? static_cast<double>(staleness_sum_) /
                             static_cast<double>(updates_seen_)
                       : 0.0;
}

}  // namespace ss
