#include "core/config_policy.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ss {

std::string momentum_policy_name(MomentumPolicy p) {
  switch (p) {
    case MomentumPolicy::kBaseline:
      return "Baseline";
    case MomentumPolicy::kZero:
      return "Zero";
    case MomentumPolicy::kFixedScaled:
      return "FixedScaled";
    case MomentumPolicy::kNonlinearRamp:
      return "NonlinearRamp";
    case MomentumPolicy::kLinearRamp:
      return "LinearRamp";
  }
  return "?";
}

DerivedHyper derive_hyper(Protocol protocol, std::size_t active_workers, const BaseHyper& base,
                          MomentumPolicy momentum_policy, std::int64_t steps_per_epoch,
                          int k_param) {
  if (active_workers == 0) throw ConfigError("derive_hyper: zero workers");
  if (steps_per_epoch <= 0) throw ConfigError("derive_hyper: steps_per_epoch must be > 0");

  DerivedHyper d;
  d.per_worker_batch = base.batch_size;

  const std::size_t k =
      std::clamp<std::size_t>(k_param > 0 ? static_cast<std::size_t>(k_param) : active_workers,
                              1, active_workers);

  if (protocol == Protocol::kBsp) {
    // Global batch nB -> linear-scaled learning rate n*eta; momentum kept.
    d.lr_multiplier = static_cast<double>(active_workers);
    d.momentum = base.momentum;
    return d;
  }

  if (is_synchronous(protocol)) {
    // K-sync / K-batch-sync aggregate K gradients: global batch KB.
    d.lr_multiplier = static_cast<double>(k);
    d.momentum = base.momentum;
    return d;
  }

  // ASP / SSP: local batch B, base learning rate.  K-async / K-batch-async
  // average K (possibly stale) gradients per update: scale like batch KB,
  // with momentum following the same asynchronous policy.
  d.lr_multiplier = (protocol == Protocol::kKAsync || protocol == Protocol::kKBatchAsync)
                        ? static_cast<double>(k)
                        : 1.0;
  const double n = static_cast<double>(active_workers);
  const double mu = base.momentum;
  switch (momentum_policy) {
    case MomentumPolicy::kBaseline:
      d.momentum = mu;
      break;
    case MomentumPolicy::kZero:
      d.momentum = 0.0;
      break;
    case MomentumPolicy::kFixedScaled:
      d.momentum = 1.0 / n;
      break;
    case MomentumPolicy::kNonlinearRamp:
      d.momentum = std::min(mu, 1.0 / n);
      d.momentum_schedule = [mu, n, steps_per_epoch](std::int64_t steps_into_phase) {
        const double i = static_cast<double>(steps_into_phase / steps_per_epoch);
        return std::min(mu, std::pow(2.0, i) / n);
      };
      break;
    case MomentumPolicy::kLinearRamp:
      d.momentum = std::min(mu, 1.0 / n);
      d.momentum_schedule = [mu, n, steps_per_epoch](std::int64_t steps_into_phase) {
        const double i = static_cast<double>(steps_into_phase / steps_per_epoch);
        return std::min(mu, std::max(1.0, i) / n);
      };
      break;
  }
  return d;
}

}  // namespace ss
