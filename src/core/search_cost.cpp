#include "core/search_cost.h"

#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace ss {

SearchCostAnalyzer::SearchCostAnalyzer(RunLogs logs, double beta, int max_settings)
    : logs_(std::move(logs)), beta_(beta), max_settings_(max_settings) {
  if (logs_.find(1.0) == logs_.end())
    throw ConfigError("SearchCostAnalyzer: logs must include full BSP (fraction 1.0)");
  for (const auto& [fraction, log] : logs_) {
    if (log.accuracies.empty() || log.accuracies.size() != log.times_seconds.size() ||
        log.accuracies.size() != log.diverged.size())
      throw ConfigError("SearchCostAnalyzer: malformed log at fraction " +
                        std::to_string(fraction));
  }
}

const TimingLog& SearchCostAnalyzer::log_at(double fraction) const {
  const TimingLog* best = nullptr;
  double best_dist = 1e9;
  for (const auto& [f, log] : logs_) {
    const double dist = std::abs(f - fraction);
    if (dist < best_dist) {
      best_dist = dist;
      best = &log;
    }
  }
  if (best == nullptr || best_dist > 1e-6)
    throw ConfigError("SearchCostAnalyzer: no log near fraction " + std::to_string(fraction));
  return *best;
}

double SearchCostAnalyzer::mean_bsp_time() const { return mean_time_at(1.0); }

double SearchCostAnalyzer::mean_time_at(double fraction) const {
  return mean_of(log_at(fraction).times_seconds);
}

double SearchCostAnalyzer::mean_accuracy_at(double fraction) const {
  return mean_of(log_at(fraction).accuracies);
}

bool SearchCostAnalyzer::ever_diverges_at(double fraction) const {
  for (bool d : log_at(fraction).diverged)
    if (d) return true;
  return false;
}

double SearchCostAnalyzer::ground_truth() const {
  // Binary search over exact log means: the infinite-replication limit.
  const double target = mean_accuracy_at(1.0);
  double upper = 1.0, lower = 0.0;
  for (int m = 0; m < max_settings_; ++m) {
    const double fraction = 0.5 * (upper + lower);
    const bool in_band =
        !ever_diverges_at(fraction) && mean_accuracy_at(fraction) >= target - beta_;
    if (in_band)
      upper = fraction;
    else
      lower = fraction;
  }
  return upper;
}

SearchCostReport SearchCostAnalyzer::analyze(const SearchSetting& setting, int trials,
                                             Rng& rng) const {
  if (trials <= 0) throw ConfigError("SearchCostAnalyzer: trials must be > 0");
  if (!setting.recurring && setting.bsp_runs < 1)
    throw ConfigError("SearchCostAnalyzer: non-recurring search needs BSP runs");
  if (setting.candidate_runs < 1)
    throw ConfigError("SearchCostAnalyzer: candidate_runs must be >= 1");

  SearchCostReport report;
  const double bsp_time = mean_bsp_time();
  const double truth = ground_truth();
  report.ground_truth_fraction = truth;

  // Per-job saving of the found policy vs training with BSP (for the
  // amortization metric).
  const double policy_time = mean_time_at(truth);
  const double per_job_saving = std::max(1e-9, 1.0 - policy_time / bsp_time);

  // "BSP-quality" bar for the effective-training metric: within beta of the
  // true BSP accuracy.
  const double bsp_acc = mean_accuracy_at(1.0);

  double cost_sum = 0.0;
  double valid_models_sum = 0.0;
  int successes = 0;

  for (int t = 0; t < trials; ++t) {
    Rng trial_rng = rng.fork(static_cast<std::uint64_t>(t) + 1);
    double cost = 0.0;
    double valid_models = 0.0;

    auto sample_run = [&](double fraction) -> TrialOutcome {
      const TimingLog& log = log_at(fraction);
      const std::size_t i = trial_rng.uniform_index(log.accuracies.size());
      TrialOutcome out;
      out.converged_accuracy = log.accuracies[i];
      out.train_time_seconds = log.times_seconds[i];
      out.diverged = log.diverged[i];
      return out;
    };

    // Establish target accuracy A.
    double target = 0.0;
    if (setting.recurring) {
      target = bsp_acc;  // known from job history, no extra runs
    } else {
      double acc_sum = 0.0;
      for (int r = 0; r < setting.bsp_runs; ++r) {
        const TrialOutcome out = sample_run(1.0);
        acc_sum += out.converged_accuracy;
        cost += out.train_time_seconds;
        valid_models += 1.0;  // a BSP run is a valid trained model
      }
      target = acc_sum / setting.bsp_runs;
    }

    // Binary search with sampled trial outcomes.
    double upper = 1.0, lower = 0.0;
    for (int m = 0; m < max_settings_; ++m) {
      const double fraction = 0.5 * (upper + lower);
      double acc_sum = 0.0;
      bool any_diverged = false;
      for (int r = 0; r < setting.candidate_runs; ++r) {
        const TrialOutcome out = sample_run(fraction);
        cost += out.train_time_seconds;
        acc_sum += out.diverged ? 0.0 : out.converged_accuracy;
        any_diverged = any_diverged || out.diverged;
        if (!out.diverged && out.converged_accuracy >= bsp_acc - beta_) valid_models += 1.0;
      }
      const double mean_acc = acc_sum / setting.candidate_runs;
      const bool in_band = !any_diverged && mean_acc >= target - beta_;
      if (in_band)
        upper = fraction;
      else
        lower = fraction;
    }

    cost_sum += cost / bsp_time;
    valid_models_sum += valid_models;
    if (std::abs(upper - truth) < 1e-9) ++successes;
  }

  report.cost_vs_bsp = cost_sum / trials;
  report.amortized_recurrences = report.cost_vs_bsp / per_job_saving;
  report.effective_training = (valid_models_sum / trials) / report.cost_vs_bsp;
  report.success_probability = static_cast<double>(successes) / trials;
  return report;
}

}  // namespace ss
