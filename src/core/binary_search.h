// Offline timing policy via binary search (paper Section IV-B1, Algorithm 1).
//
// For a given workload, find the switch point `s` (fraction of the workload
// trained with BSP before switching to ASP) such that the converged accuracy
// matches full-BSP accuracy within a threshold beta, using as little BSP as
// possible.  The search halves the interval [0, 100]% and keeps the smallest
// in-band setting as the answer; trial trainings are delegated to a callable
// so the searcher works against real sessions, cached logs, or test stubs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace ss {

/// Outcome of one trial training at a candidate switch fraction.
struct TrialOutcome {
  double converged_accuracy = 0.0;
  double train_time_seconds = 0.0;
  bool diverged = false;
};

/// Runs one training with the given switch fraction and repetition index.
using TrialFn = std::function<TrialOutcome(double fraction, int repetition)>;

struct BinarySearchConfig {
  double beta = 0.01;        ///< accuracy margin around the target
  int max_settings = 5;      ///< M: candidate switch points to explore
  int runs_per_setting = 5;  ///< R: repetitions per candidate
  /// Target accuracy A.  If unset, the searcher first runs full BSP
  /// `runs_per_setting` times and averages (Algorithm 1 lines 2-5).
  std::optional<double> target_accuracy;
};

struct BinarySearchResult {
  double switch_fraction = 1.0;       ///< chosen timing (upper bound kept in-band)
  double target_accuracy = 0.0;       ///< A actually used
  double search_cost_seconds = 0.0;   ///< total training time of all trials
  int sessions_run = 0;               ///< trial sessions executed (incl. BSP runs)
  /// Every candidate explored, in order, with its mean accuracy and whether
  /// it was accepted (in-band).
  struct Candidate {
    double fraction;
    double mean_accuracy;
    bool in_band;
    bool any_diverged;
  };
  std::vector<Candidate> explored;
};

/// Execute Algorithm 1.  `trial(1.0, rep)` must run full BSP.
BinarySearchResult binary_search_timing(const TrialFn& trial, const BinarySearchConfig& cfg);

}  // namespace ss
