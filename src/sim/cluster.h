// Cluster cost model: how long compute, communication and synchronization
// take on the simulated GPU cluster.
//
// The model mirrors the paper's testbed (Section VI-A): n GCP nodes, one
// K80-class GPU each, parameter servers collocated with workers.  Costs:
//
//   worker task   = pull + compute + push            (paper Fig. 3)
//   BSP step      = max over workers(task) + sync_overhead(n)
//   ASP cycle     = task + async apply
//
// sync_overhead models the barrier: gradient gather/aggregate/broadcast
// through the collocated PS shards.  It grows superlinearly with cluster
// size (incast congestion at the PSs), which is what makes BSP's per-step
// cost at n=16 disproportionately worse — the effect behind the paper's
// Figure 13/Table I setup-3 numbers.  Constants are calibrated in
// bench/setups.h so the BSP:ASP ratios match the paper's (see
// EXPERIMENTS.md).
#pragma once

#include <cstddef>

#include "common/rng.h"
#include "common/vtime.h"

namespace ss {

/// Static description of the simulated cluster + workload cost inputs.
struct ClusterSpec {
  std::size_t num_workers = 8;

  /// Parameter-server shards the vector is partitioned across (collocated
  /// with workers, as in the paper's testbed).  Pulls and pushes fan out to
  /// every shard in parallel: each leg carries payload_bytes / num_ps_shards
  /// and the worker pays `shard_issue_overhead` to issue each extra request.
  /// 1 (the default) reproduces the historical single-server pricing bit for
  /// bit.  Also the shard count the session builds the ParameterServer with.
  std::size_t num_ps_shards = 1;

  /// Per-extra-shard request issue cost on the worker (serialization of the
  /// RPC sends; the transfers themselves overlap).
  VTime shard_issue_overhead = VTime::from_us(50.0);

  /// Extra PS-side apply threads (beyond the applying thread) used to fan
  /// shard updates in parallel.  Execution knob only: results are
  /// bit-identical with or without it, so it is excluded from the run-cache
  /// key.  0 = serial apply.
  std::size_t ps_apply_threads = 0;

  /// Virtual per-batch GPU compute time for this workload (mean) at the
  /// reference batch size.  Stands in for "ResNet32 on a K80 with batch B"
  /// style numbers; actual compute scales with batch / reference_batch.
  VTime compute_per_batch = VTime::from_ms(120.0);

  /// Batch size `compute_per_batch` refers to.
  std::size_t reference_batch = 64;

  /// Lognormal sigma of per-step compute jitter (multiplicative, mean 1).
  double compute_jitter_sigma = 0.12;

  /// One-way network latency per transfer.
  VTime net_latency = VTime::from_ms(2.0);

  /// Model size on the wire, bytes (parameters ~= gradients).
  double payload_bytes = 4.0 * 13000;

  /// Network bandwidth, bytes/second.
  double bandwidth_bps = 100.0 * 1024 * 1024;

  /// Barrier overhead = sync_base + sync_quad * n^2.
  VTime sync_base = VTime::from_ms(280.0);
  VTime sync_quad = VTime::from_ms(6.5);

  /// PS-side apply cost for one asynchronous update.
  VTime async_apply = VTime::from_ms(1.0);

  /// Elastic membership pricing (src/elastic/): fixed hand-off cost of
  /// integrating a newly provisioned node at a join event.  The VM itself
  /// is provisioned in the background (as in the replacement policy's
  /// ~100 s), so what the running job pays is the barrier-group
  /// reconfiguration + session hand-shake; the joining node's initial
  /// full-parameter pull is priced on top via `join_time()`.
  VTime join_provision = VTime::from_seconds(8.0);
};

/// Per-(worker, step) sampled durations.
class ClusterModel {
 public:
  explicit ClusterModel(ClusterSpec spec);

  [[nodiscard]] const ClusterSpec& spec() const noexcept { return spec_; }

  /// One parameter pull or gradient push (they are symmetric), given the
  /// multiplicative slowdown currently applied to this worker (1.0 = none).
  [[nodiscard]] VTime transfer_time(double slow_factor) const noexcept;

  /// A transfer of `bytes` on the wire (gradient compression shrinks the
  /// push below `payload_bytes`; the pull stays full-size).  With S PS
  /// shards the payload is striped: the worker issues S requests
  /// (shard_issue_overhead each beyond the first) whose bytes/S legs overlap
  /// on the wire, so large-model transfers shrink toward bytes/(S*bandwidth)
  /// while small ones are dominated by the issue cost.
  [[nodiscard]] VTime transfer_time(double slow_factor, double bytes) const noexcept;

  /// A point-to-point transfer of `bytes` that does NOT traverse the
  /// parameter server (e.g. the group runtime's cross-group delta
  /// broadcasts): latency + bytes/bandwidth, independent of num_ps_shards.
  [[nodiscard]] VTime link_transfer_time(double slow_factor, double bytes) const noexcept;

  /// Forward+backward compute for one minibatch of `batch` examples, with
  /// jitter.  Cost scales linearly with batch / reference_batch.
  [[nodiscard]] VTime compute_time(Rng& rng, double slow_factor, std::size_t batch) const noexcept;

  /// Full worker task: pull + compute + push.
  [[nodiscard]] VTime task_time(Rng& rng, double slow_factor, std::size_t batch) const noexcept;

  /// Barrier overhead for `n` participating workers.
  [[nodiscard]] VTime sync_overhead(std::size_t n) const noexcept;

  /// Virtual-time cost of integrating a joining node: the re-provision
  /// hand-off (ClusterSpec::join_provision) plus the node's initial
  /// full-parameter pull from the PS shards.
  [[nodiscard]] VTime join_time() const noexcept;

  /// Crash recovery: streaming the last asynchronous snapshot (parameters +
  /// optimizer velocity, i.e. 2x payload_bytes) back into the PS shards.
  /// The barrier-group reconfiguration itself is priced by the caller via
  /// the actuator's resize_time.
  [[nodiscard]] VTime recovery_restore_time() const noexcept;

  /// Expected (jitter-free) worker cycle for a batch: pull + compute + push.
  /// Used to stagger asynchronous worker start-ups over one cycle.
  [[nodiscard]] VTime mean_cycle(std::size_t batch) const noexcept;

 private:
  ClusterSpec spec_;
};

}  // namespace ss
