// Transient straggler injection (paper Section IV-B2 and VI-B3).
//
// A transient straggler is a worker that is temporarily slowed (the paper
// emulates datacenter contention by injecting 10ms / 30ms network latency
// for up to ~100 s — the time to provision a replacement VM).  We express
// slowness as a multiplicative slowdown on the worker's task time, derived
// from the injected latency: every PS message the worker exchanges is
// delayed, so a step that takes `t` cleanly takes roughly
// `t * (1 + latency / latency_unit)`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/vtime.h"

namespace ss {

/// One slowdown episode on one worker.
struct StragglerEvent {
  int worker = 0;
  VTime start;
  VTime duration;
  double slow_factor = 1.0;  ///< task-time multiplier while active (> 1)
};

/// Paper-style scenario description (Section VI-B3): how many distinct
/// straggler workers, how many occurrences each, and the emulated extra
/// network latency per message.
struct StragglerScenario {
  int num_stragglers = 0;      ///< distinct slowed workers
  int occurrences = 0;         ///< episodes per straggler
  double extra_latency_ms = 0; ///< injected latency (10 = mild, 30 = moderate)
  VTime max_duration = VTime::from_seconds(100.0);  ///< provisioning bound
  VTime horizon = VTime::from_minutes(30.0);        ///< episodes start within

  /// Mild scenario 1 of the paper: 1 straggler, 1 occurrence, 10 ms.
  [[nodiscard]] static StragglerScenario mild();
  /// Moderate scenario 2: 2 stragglers, 4 occurrences, 30 ms.
  [[nodiscard]] static StragglerScenario moderate();
};

/// Time-indexed straggler schedule queried by the runtimes.
class StragglerSchedule {
 public:
  StragglerSchedule() = default;
  explicit StragglerSchedule(std::vector<StragglerEvent> events);

  /// Generate a schedule from a scenario: distinct workers are chosen from
  /// [0, num_workers); episode starts are uniform over the horizon; episode
  /// durations are uniform in [0.6, 1.0] * max_duration.
  [[nodiscard]] static StragglerSchedule generate(const StragglerScenario& scenario,
                                                  std::size_t num_workers, Rng& rng);

  /// A worker slowed by `slow_factor` for the whole run (permanent
  /// straggler; the paper's replacement policies target these).
  [[nodiscard]] static StragglerSchedule permanent(int worker, double slow_factor);

  /// A single transient episode: `worker` is slowed by `slow_factor` on
  /// [start, start + duration).  The threaded runtime interprets the times
  /// against the real wall clock (seconds since the run started), which is
  /// how the example injects a paper-style transient straggler mid-phase.
  [[nodiscard]] static StragglerSchedule transient(int worker, VTime start, VTime duration,
                                                   double slow_factor);

  /// Node replacement: worker `worker`'s slot is healthy from `t` on (a
  /// freshly provisioned VM took over the slot).  Episodes overlapping `t`
  /// are clipped; later ones are dropped.
  void mask_after(int worker, VTime t);

  /// Slowdown factor for `worker` at time `t` (1.0 when healthy).  When
  /// multiple episodes overlap the largest factor applies.
  [[nodiscard]] double slow_factor(int worker, VTime t) const noexcept;

  /// True if any worker is slowed at time `t`.
  [[nodiscard]] bool any_active(VTime t) const noexcept;

  /// Earliest episode end-time after `t`, or VTime::from_seconds(-1) when no
  /// episode is active (used by online policies to plan the switch-back).
  [[nodiscard]] VTime next_clear_time(VTime t) const noexcept;

  [[nodiscard]] const std::vector<StragglerEvent>& events() const noexcept { return events_; }

  /// Canonical string covering every field that affects the result; feeds
  /// RunRequest::cache_key() for explicitly-scheduled runs (the scenario
  /// engine and traces).  "-" when empty.  Times are printed in integral
  /// microseconds and the factor at full precision, so two schedules share a
  /// label only when they are behaviorally identical.
  [[nodiscard]] std::string label() const;

  /// Latency-to-slowdown conversion shared by scenario generation: a step's
  /// messages are each delayed by `extra_latency`, adding roughly
  /// latency/latency_unit of relative slowdown.
  [[nodiscard]] static double latency_to_slow_factor(double extra_latency_ms) noexcept;

 private:
  std::vector<StragglerEvent> events_;
};

}  // namespace ss
