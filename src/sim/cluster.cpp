#include "sim/cluster.h"

#include <algorithm>
#include <cmath>

namespace ss {

ClusterModel::ClusterModel(ClusterSpec spec) : spec_(spec) {}

VTime ClusterModel::transfer_time(double slow_factor) const noexcept {
  return transfer_time(slow_factor, spec_.payload_bytes);
}

VTime ClusterModel::transfer_time(double slow_factor, double bytes) const noexcept {
  const auto shards = static_cast<double>(std::max<std::size_t>(1, spec_.num_ps_shards));
  const double wire_s = (bytes / shards) / spec_.bandwidth_bps;
  const VTime base = spec_.net_latency + VTime::from_seconds(wire_s) +
                     spec_.shard_issue_overhead.scaled(shards - 1.0);
  return base.scaled(slow_factor);
}

VTime ClusterModel::link_transfer_time(double slow_factor, double bytes) const noexcept {
  const double wire_s = bytes / spec_.bandwidth_bps;
  return (spec_.net_latency + VTime::from_seconds(wire_s)).scaled(slow_factor);
}

VTime ClusterModel::compute_time(Rng& rng, double slow_factor,
                                 std::size_t batch) const noexcept {
  // Lognormal with mean 1: exp(N(-s^2/2, s)).
  const double s = spec_.compute_jitter_sigma;
  const double jitter = s > 0.0 ? rng.lognormal(-0.5 * s * s, s) : 1.0;
  const double batch_scale =
      static_cast<double>(batch) / static_cast<double>(spec_.reference_batch);
  return spec_.compute_per_batch.scaled(jitter * slow_factor * batch_scale);
}

VTime ClusterModel::task_time(Rng& rng, double slow_factor, std::size_t batch) const noexcept {
  return transfer_time(slow_factor) + compute_time(rng, slow_factor, batch) +
         transfer_time(slow_factor);
}

VTime ClusterModel::sync_overhead(std::size_t n) const noexcept {
  const double nn = static_cast<double>(n);
  return spec_.sync_base + spec_.sync_quad.scaled(nn * nn);
}

VTime ClusterModel::join_time() const noexcept {
  return spec_.join_provision + transfer_time(1.0);
}

VTime ClusterModel::recovery_restore_time() const noexcept {
  return transfer_time(1.0, 2.0 * spec_.payload_bytes);
}

VTime ClusterModel::mean_cycle(std::size_t batch) const noexcept {
  const double batch_scale =
      static_cast<double>(batch) / static_cast<double>(spec_.reference_batch);
  return transfer_time(1.0) + spec_.compute_per_batch.scaled(batch_scale) +
         transfer_time(1.0);
}

}  // namespace ss
