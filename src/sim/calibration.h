// Calibration seam: measured threaded-runtime costs -> ClusterSpec.
//
// The online controller (src/control/) treats the simulator as a digital
// twin: at each drain barrier it snapshots what the run actually cost —
// per-worker step wall times, wire bytes per push, the slowdown of the
// slowest worker — and asks the twin how candidate configurations would
// fare on a cluster with exactly those costs.  This header is the seam
// between the two worlds.
//
// Quantization is the load-bearing part.  Raw wall-clock measurements
// differ in every run and every interval, so a ClusterSpec built from them
// verbatim would change the twin's RunRequest::cache_key() at every
// decision point, defeating the run cache *and* making decisions depend on
// measurement noise.  `quantize()` therefore buckets every measured value
// (2 significant digits on times and bytes, 0.5-steps on the straggler
// factor) before it touches the spec: two decision epochs that measured
// "about the same" cluster produce bit-identical twin queries — warm cache
// hits, and deterministic decisions given (seed, quantized stats).
#pragma once

#include <cstddef>

#include "sim/cluster.h"

namespace ss {

/// What one decision interval of the threaded runtime actually cost.
/// Step seconds are *compute-side* spans (pull + compute + injected delay +
/// push for async protocols; up-to-the-round-barrier for BSP), so a
/// straggler's slowdown shows up in its own mean rather than being smeared
/// over everyone by barrier waits.
struct MeasuredPhaseCosts {
  std::size_t num_workers = 0;
  std::size_t batch_size = 0;
  /// Median of the per-worker mean step seconds — the healthy-worker cost.
  double step_seconds = 0.0;
  /// Uncompressed model payload on the wire, bytes (the twin's compression
  /// codec re-derives compressed sizes from this, so reporting measured
  /// *compressed* bytes here would double-count the codec).
  double push_bytes = 0.0;
  /// max(per-worker mean) / median: 1.0 = uniform cluster.
  double straggler_factor = 1.0;
  /// Slot index of the slowest worker (-1 when straggler_factor ~ 1).
  int straggler_worker = -1;
};

/// Bucket every measured value so near-identical measurements collapse onto
/// identical specs (see file comment).  Times/bytes round to 2 significant
/// digits.  The straggler factor gets progressively coarser buckets —
/// nearest 0.5 up to 4x, nearest 2 up to the 16x cap — because wall-clock
/// factor measurements get noisier the slower the straggler, while the
/// decision they drive stops changing well before 16x.  Factors below
/// `kStragglerNoiseFloor` snap to 1.0 (the worker index is dropped too).
[[nodiscard]] MeasuredPhaseCosts quantize(const MeasuredPhaseCosts& measured);

/// Factors below this are measurement noise, not stragglers: the quantized
/// factor snaps to 1.0 and the twin models a uniform cluster.
inline constexpr double kStragglerNoiseFloor = 1.5;

/// Factors above this quantize to exactly this: past 16x the ranking of
/// candidate moves is insensitive to the exact slowdown, and capping turns
/// wildly noisy measurements of a very slow worker into one cache bucket.
inline constexpr double kStragglerFactorCap = 16.0;

/// Build the twin's cluster from quantized measurements.  `base` supplies
/// everything the threaded runtime cannot observe (network latency,
/// bandwidth, membership pricing); measured values overwrite the cost
/// fields the decision actually hinges on:
///
///   compute_per_batch  <- measured healthy step seconds
///   reference_batch    <- the run's batch size
///   payload_bytes      <- uncompressed model payload (the twin's
///                         compression codec re-derives compressed sizes)
///   sync_base/quad     <- scaled to the measured step cost, preserving the
///                         base spec's barrier:compute ratio
///
/// Callers pass `quantize(measured)`; passing raw measurements compiles but
/// forfeits cache hits and decision determinism.
[[nodiscard]] ClusterSpec calibrate_cluster_spec(const ClusterSpec& base,
                                                 const MeasuredPhaseCosts& measured);

}  // namespace ss
