#include "sim/actuator.h"

#include "common/error.h"

namespace ss {

std::string actuator_exec_name(ActuatorExec exec) {
  return exec == ActuatorExec::kSequential ? "Sequential" : "Parallel";
}

ActuatorModel::ActuatorModel(ActuatorExec exec, Params params) : exec_(exec), params_(params) {
  if (params_.init_base < VTime::zero() || params_.switch_base < VTime::zero())
    throw ConfigError("ActuatorModel: negative base cost");
}

ActuatorModel ActuatorModel::paper_calibrated(ActuatorExec exec) {
  // Solved from Table III's two cluster sizes (8 and 16 nodes):
  //   sequential: init = 46 + 13.875n     switch = 15 + 9.375n
  //   parallel:   init = 52 +  4.75n      switch = 19 + 2.125n
  if (exec == ActuatorExec::kSequential) {
    return ActuatorModel(exec, Params{
                                   VTime::from_seconds(46.0),
                                   VTime::from_seconds(13.875),
                                   VTime::from_seconds(15.0),
                                   VTime::from_seconds(9.375),
                               });
  }
  return ActuatorModel(exec, Params{
                                 VTime::from_seconds(52.0),
                                 VTime::from_seconds(4.75),
                                 VTime::from_seconds(19.0),
                                 VTime::from_seconds(2.125),
                             });
}

VTime ActuatorModel::init_time(std::size_t n) const noexcept {
  return params_.init_base + params_.init_per_node.scaled(static_cast<double>(n));
}

VTime ActuatorModel::switch_time(std::size_t n) const noexcept {
  return params_.switch_base + params_.switch_per_node.scaled(static_cast<double>(n));
}

VTime ActuatorModel::resize_time() const noexcept {
  // A barrier-group membership change is roughly one switch_base of
  // coordination without the per-node checkpoint/restart fan-out.
  return params_.switch_base.scaled(0.25);
}

VTime ActuatorModel::provision_time() const noexcept {
  // Paper Section IV-B2: "the time to provision a new cloud server -- we use
  // 100 seconds based on empirical measurement reported by prior work".
  return VTime::from_seconds(100.0);
}

}  // namespace ss
