#include "sim/event_queue.h"

#include <stdexcept>

namespace ss {

std::uint64_t EventQueue::schedule(VTime time, SimEventKind kind, int worker) {
  SimEvent ev;
  ev.time = time;
  ev.seq = next_seq_++;
  ev.kind = kind;
  ev.worker = worker;
  heap_.push(ev);
  return ev.seq;
}

VTime EventQueue::peek_time() const {
  if (heap_.empty()) throw std::logic_error("EventQueue::peek_time on empty queue");
  return heap_.top().time;
}

SimEvent EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty queue");
  SimEvent ev = heap_.top();
  heap_.pop();
  return ev;
}

void EventQueue::clear() noexcept {
  while (!heap_.empty()) heap_.pop();
}

}  // namespace ss
