// Discrete-event core, layer 1 of the simulator: a time-ordered queue with
// deterministic tie-breaking and the typed event vocabulary of the
// simulation.
//
// Ties are broken by worker id and then by insertion sequence number, so
// that two events scheduled for the same virtual microsecond always fire in
// the same order regardless of how the schedule calls interleaved — this is
// what makes whole-cluster simulations reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/vtime.h"

namespace ss {

/// Every kind of event the simulator schedules.  The DES core owns the
/// vocabulary; each runtime interprets the subset it schedules (the worker
/// lifecycle kinds drive the DesEngine, the group kinds drive the
/// Gaia-style group runtime).
enum class SimEventKind : int {
  kPullDone = 0,         ///< a worker's parameter pull completed
  kPushArrive = 1,       ///< a worker's gradient push reached the PS
  kRoundDone = 2,        ///< a worker group finished one synchronous round
  kBroadcastArrive = 3,  ///< a cross-group delta broadcast reached its target
};

/// Event payload: the runtime interprets (kind, worker).  Keeping this a
/// plain struct (no type-erased callbacks) keeps the queue allocation-free
/// and the event order trivially auditable in tests.
struct SimEvent {
  VTime time;
  std::uint64_t seq = 0;  ///< assigned by the queue
  SimEventKind kind = SimEventKind::kPullDone;
  int worker = -1;  ///< worker (or group) index, or -1
};

class EventQueue {
 public:
  /// Schedule an event; returns the assigned sequence number.
  std::uint64_t schedule(VTime time, SimEventKind kind, int worker);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Earliest event time (queue must be non-empty).
  [[nodiscard]] VTime peek_time() const;

  /// Pop the earliest event.
  SimEvent pop();

  /// Drop every pending event (used when a phase is aborted/interrupted).
  void clear() noexcept;

 private:
  struct Later {
    bool operator()(const SimEvent& a, const SimEvent& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      if (a.worker != b.worker) return a.worker > b.worker;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<SimEvent, std::vector<SimEvent>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ss
