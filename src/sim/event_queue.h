// Discrete-event core: a time-ordered queue with deterministic tie-breaking.
//
// Ties are broken by insertion sequence number so that two events scheduled
// for the same virtual microsecond always fire in schedule order — this is
// what makes whole-cluster simulations reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/vtime.h"

namespace ss {

/// Event payload: the runtime interprets (kind, worker).  Keeping this a
/// plain struct (no type-erased callbacks) keeps the queue allocation-free
/// and the event order trivially auditable in tests.
struct SimEvent {
  VTime time;
  std::uint64_t seq = 0;  ///< assigned by the queue
  int kind = 0;           ///< runtime-defined discriminator
  int worker = -1;        ///< worker index or -1
};

class EventQueue {
 public:
  /// Schedule an event; returns the assigned sequence number.
  std::uint64_t schedule(VTime time, int kind, int worker);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Earliest event time (queue must be non-empty).
  [[nodiscard]] VTime peek_time() const;

  /// Pop the earliest event.
  SimEvent pop();

  /// Drop every pending event (used when a phase is aborted/interrupted).
  void clear() noexcept;

 private:
  struct Later {
    bool operator()(const SimEvent& a, const SimEvent& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<SimEvent, std::vector<SimEvent>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ss
