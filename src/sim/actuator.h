// Configuration actuator cost model (paper Section V and Table III).
//
// Sync-Switch pays real wall-clock overhead when it (a) initializes the
// training cluster and (b) switches protocols (checkpoint -> propagate new
// configs -> restart from checkpoint).  The paper measures both for a
// sequential actuator and for its parallel actuator.  We reproduce the
// measured scaling as affine models in the cluster size, calibrated to the
// paper's Table III:
//
//   execution   cluster   init(s)   switch(s)
//   sequential    8        157        90
//   parallel      8         90        36
//   sequential   16        268       165
//   parallel     16        128        53
#pragma once

#include <cstddef>
#include <string>

#include "common/vtime.h"

namespace ss {

enum class ActuatorExec { kSequential, kParallel };

std::string actuator_exec_name(ActuatorExec exec);

/// Affine-in-n cost model for cluster actuation.
class ActuatorModel {
 public:
  struct Params {
    VTime init_base;
    VTime init_per_node;
    VTime switch_base;
    VTime switch_per_node;
  };

  ActuatorModel(ActuatorExec exec, Params params);

  /// Calibrated to the paper's Table III measurements.
  [[nodiscard]] static ActuatorModel paper_calibrated(ActuatorExec exec);

  /// Time to bring up a cluster of n nodes (VM boot, TF runtime start, ...).
  [[nodiscard]] VTime init_time(std::size_t n) const noexcept;

  /// Time for one protocol switch on n nodes: checkpoint + propagate +
  /// restart from checkpoint.
  [[nodiscard]] VTime switch_time(std::size_t n) const noexcept;

  /// Cheap membership change (elastic policy node remove/restore): no
  /// checkpoint/restart needed, just barrier-group reconfiguration.
  [[nodiscard]] VTime resize_time() const noexcept;

  /// Time to provision a replacement cloud VM (paper Section IV-B2 uses
  /// 100 s, the empirical bound from prior work it cites).  Provisioning
  /// runs in the background: training continues on the remaining nodes.
  [[nodiscard]] VTime provision_time() const noexcept;

  [[nodiscard]] ActuatorExec exec() const noexcept { return exec_; }

 private:
  ActuatorExec exec_;
  Params params_;
};

}  // namespace ss
