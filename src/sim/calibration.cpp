#include "sim/calibration.h"

#include <algorithm>
#include <cmath>

namespace ss {
namespace {

/// Round to `digits` significant decimal digits (0 stays 0).
double round_sig(double v, int digits) {
  if (v <= 0.0) return 0.0;
  const double mag = std::pow(10.0, std::floor(std::log10(v)) - (digits - 1));
  return std::round(v / mag) * mag;
}

}  // namespace

MeasuredPhaseCosts quantize(const MeasuredPhaseCosts& measured) {
  MeasuredPhaseCosts q = measured;
  q.step_seconds = round_sig(measured.step_seconds, 2);
  q.push_bytes = round_sig(measured.push_bytes, 2);
  const double factor =
      std::min(kStragglerFactorCap, std::max(1.0, measured.straggler_factor));
  q.straggler_factor =
      factor <= 4.0 ? std::round(factor * 2.0) / 2.0 : std::round(factor / 2.0) * 2.0;
  if (q.straggler_factor < kStragglerNoiseFloor) {
    q.straggler_factor = 1.0;
    q.straggler_worker = -1;
  }
  return q;
}

ClusterSpec calibrate_cluster_spec(const ClusterSpec& base,
                                   const MeasuredPhaseCosts& measured) {
  ClusterSpec spec = base;
  spec.num_workers = measured.num_workers;
  if (measured.batch_size > 0) spec.reference_batch = measured.batch_size;
  if (measured.step_seconds > 0.0) {
    const double base_compute = base.compute_per_batch.seconds();
    const double sync_base_ratio =
        base_compute > 0.0 ? base.sync_base.seconds() / base_compute : 0.0;
    const double sync_quad_ratio =
        base_compute > 0.0 ? base.sync_quad.seconds() / base_compute : 0.0;
    spec.compute_per_batch = VTime::from_seconds(measured.step_seconds);
    spec.sync_base = VTime::from_seconds(measured.step_seconds * sync_base_ratio);
    spec.sync_quad = VTime::from_seconds(measured.step_seconds * sync_quad_ratio);
  }
  if (measured.push_bytes > 0.0) spec.payload_bytes = measured.push_bytes;
  return spec;
}

}  // namespace ss
