// Discrete-event core, layer 2 of the simulator: a generic scheduler that
// runs worker pull→compute→push lifecycles against protocol admission rules.
//
// The engine owns *when*: the event queue, each worker's logical clock, the
// parked set, and the (possibly dynamic) staleness bound.  The runtime layer
// owns *what*: a WorkerProcess implementation supplies the latencies and
// performs the actual pull/compute/apply work when its events fire.  This is
// the adevs logical-process split — one scheduler, many protocols — and it
// replaces the per-protocol event loops the sim runtime used to hand-roll.
//
// Two scheduling families cover the eight protocols:
//   * event-driven (DesEngine): ASP/SSP/DSSP gate each worker's next cycle on
//     the local-clock gap; K-async/K-batch-async free-run and buffer.
//   * round-based (plan_round): BSP/K-sync/K-batch-sync plan one synchronous
//     round at a time; no queue is needed because the round structure fully
//     determines the order.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/vtime.h"
#include "sim/event_queue.h"

namespace ss {

/// Protocol admission rules: may a worker that just pushed start its next
/// cycle, or must it wait for stragglers?
struct AdmissionRules {
  /// Maintain per-worker logical clocks and the max-gap metric (the
  /// apply-each family).  When false the engine free-runs: every push is
  /// followed by an immediate next pull (the buffered K-async family).
  bool track_clocks = false;
  bool bounded = false;      ///< enforce the staleness bound (SSP/DSSP)
  bool dynamic = false;      ///< DSSP: the bound floats in [bound, bound+credit]
  std::int64_t bound = 0;    ///< base staleness bound s
  std::int64_t credit = 0;   ///< DSSP upper credit r

  [[nodiscard]] static AdmissionRules free_running() { return {}; }
  [[nodiscard]] static AdmissionRules track_only() {
    AdmissionRules r;
    r.track_clocks = true;
    return r;
  }
  [[nodiscard]] static AdmissionRules bounded_by(std::int64_t bound) {
    AdmissionRules r = track_only();
    r.bounded = true;
    r.bound = bound;
    return r;
  }
  [[nodiscard]] static AdmissionRules dynamic_bound(std::int64_t bound, std::int64_t credit) {
    AdmissionRules r = bounded_by(bound);
    r.dynamic = true;
    r.credit = credit;
    return r;
  }
};

/// What the runtime reports back after a push was absorbed.
struct PushOutcome {
  bool stop = false;  ///< end the phase: pending events are abandoned
  VTime resume_at;    ///< earliest start for this worker's next pull
};

/// One worker's lifecycle, expressed as resumable steps the engine invokes as
/// its events fire.  Implementations live in the runtime layer and do the
/// real pull/compute/apply work; none of them schedule events directly.
class WorkerProcess {
 public:
  virtual ~WorkerProcess() = default;

  /// Network latency of a parameter pull started by `worker` at `now` (the
  /// engine schedules kPullDone at now + pull_latency).
  virtual VTime pull_latency(int worker, VTime now) = 0;

  /// The pull completed: snapshot parameters, draw the minibatch, and return
  /// the busy time (compute + push transfer); the engine schedules
  /// kPushArrive at time + busy.
  virtual VTime on_pull_done(int worker, VTime time) = 0;

  /// The push reached the PS: do the math, apply or buffer the gradient, emit
  /// telemetry, and decide whether the phase is over.
  virtual PushOutcome on_push_arrive(int worker, VTime time) = 0;
};

/// Generic event-driven scheduler for the asynchronous protocol families.
class DesEngine {
 public:
  DesEngine(WorkerProcess& process, std::vector<int> active, AdmissionRules rules);

  /// Schedule `worker`'s next pull to start at `at` (also used for kickoff).
  void schedule_pull(int worker, VTime at);

  /// Drain events until the queue empties or a push handler stops the phase.
  void run();

  /// Largest local-clock gap observed at any admitted scheduling decision
  /// (the invariant SSP/DSSP bound; 0 when clocks are not tracked).
  [[nodiscard]] std::int64_t max_clock_gap() const noexcept { return max_clock_gap_; }

 private:
  [[nodiscard]] std::int64_t min_local_clock() const;
  void admit_or_park(int worker, VTime resume_at);

  WorkerProcess& process_;
  std::vector<int> active_;
  AdmissionRules rules_;
  EventQueue queue_;
  std::vector<std::int64_t> local_clock_;  // indexed by worker id
  std::vector<char> parked_;
  std::int64_t effective_bound_ = 0;
  std::int64_t max_clock_gap_ = 0;
};

/// One contribution to a synchronous round.
struct RoundArrival {
  VTime at;        ///< completion time, relative to round start
  VTime duration;  ///< how long the task ran
  int worker;
};

/// One planned synchronous round: the K admitted contributions (sorted by
/// worker id then arrival — the deterministic compute order) and the round's
/// critical path.
struct RoundPlan {
  std::vector<RoundArrival> winners;
  VTime round_end;              ///< arrival of the K-th contribution
  std::int64_t cancelled = 0;   ///< completed-but-discarded tasks
};

/// Draws one task duration for `worker` starting `offset` into the round,
/// consuming the worker's jitter RNG stream.
using TaskDraw = std::function<VTime(int worker, VTime offset)>;

/// Plan one round of the synchronous family.  Non-pipelined (BSP/K-sync):
/// each worker contributes at most one task; the first K completions win and
/// the other n-K finish but are cancelled.  Pipelined (K-batch-sync): fast
/// workers start their next batch as soon as one completes, and the first K
/// completions overall win.  Draw order is deterministic: non-pipelined draws
/// once per worker in active order; pipelined re-draws in completion order.
RoundPlan plan_round(const std::vector<int>& active, std::size_t k, bool pipelined,
                     const TaskDraw& draw);

}  // namespace ss
