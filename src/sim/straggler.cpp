#include "sim/straggler.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/error.h"

namespace ss {

StragglerScenario StragglerScenario::mild() {
  StragglerScenario s;
  s.num_stragglers = 1;
  s.occurrences = 1;
  s.extra_latency_ms = 10.0;
  return s;
}

StragglerScenario StragglerScenario::moderate() {
  StragglerScenario s;
  s.num_stragglers = 2;
  s.occurrences = 4;
  s.extra_latency_ms = 30.0;
  return s;
}

StragglerSchedule::StragglerSchedule(std::vector<StragglerEvent> events)
    : events_(std::move(events)) {
  for (const auto& e : events_)
    if (e.slow_factor < 1.0) throw ConfigError("StragglerEvent: slow_factor must be >= 1");
}

double StragglerSchedule::latency_to_slow_factor(double extra_latency_ms) noexcept {
  // 10 ms of injected per-message latency ~= 1.8x task time, 30 ms ~= 3.4x.
  // This matches the relative BSP throughput drops in the paper's Fig. 4(b).
  constexpr double kLatencyUnitMs = 12.5;
  return 1.0 + extra_latency_ms / kLatencyUnitMs;
}

StragglerSchedule StragglerSchedule::permanent(int worker, double slow_factor) {
  StragglerEvent ev;
  ev.worker = worker;
  ev.start = VTime::zero();
  ev.duration = VTime::from_minutes(1e6);  // effectively forever
  ev.slow_factor = slow_factor;
  return StragglerSchedule({ev});
}

StragglerSchedule StragglerSchedule::transient(int worker, VTime start, VTime duration,
                                               double slow_factor) {
  StragglerEvent ev;
  ev.worker = worker;
  ev.start = start;
  ev.duration = duration;
  ev.slow_factor = slow_factor;
  return StragglerSchedule({ev});
}

void StragglerSchedule::mask_after(int worker, VTime t) {
  std::vector<StragglerEvent> kept;
  kept.reserve(events_.size());
  for (StragglerEvent ev : events_) {
    if (ev.worker != worker || ev.start + ev.duration <= t) {
      kept.push_back(ev);
      continue;
    }
    if (ev.start >= t) continue;  // entirely after the replacement: dropped
    ev.duration = t - ev.start;   // overlapping: clipped at the replacement
    kept.push_back(ev);
  }
  events_ = std::move(kept);
}

StragglerSchedule StragglerSchedule::generate(const StragglerScenario& scenario,
                                              std::size_t num_workers, Rng& rng) {
  if (scenario.num_stragglers < 0 ||
      static_cast<std::size_t>(scenario.num_stragglers) >= std::max<std::size_t>(num_workers, 1))
    throw ConfigError("StragglerScenario: unique stragglers must be < cluster size");

  // Choose distinct victim workers.
  std::vector<std::uint32_t> ids(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) ids[i] = static_cast<std::uint32_t>(i);
  rng.shuffle(ids);

  const double factor = latency_to_slow_factor(scenario.extra_latency_ms);
  std::vector<StragglerEvent> events;
  for (int k = 0; k < scenario.num_stragglers; ++k) {
    for (int o = 0; o < scenario.occurrences; ++o) {
      StragglerEvent e;
      e.worker = static_cast<int>(ids[static_cast<std::size_t>(k)]);
      e.start = VTime::from_seconds(rng.uniform(0.0, scenario.horizon.seconds()));
      e.duration = scenario.max_duration.scaled(rng.uniform(0.6, 1.0));
      e.slow_factor = factor;
      events.push_back(e);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const StragglerEvent& a, const StragglerEvent& b) { return a.start < b.start; });
  return StragglerSchedule(std::move(events));
}

std::string StragglerSchedule::label() const {
  if (events_.empty()) return "-";
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const StragglerEvent& e = events_[i];
    if (i > 0) os << "+";
    os << "w" << e.worker << "@" << e.start.us() << "+" << e.duration.us() << "x"
       << e.slow_factor;
  }
  return os.str();
}

double StragglerSchedule::slow_factor(int worker, VTime t) const noexcept {
  double factor = 1.0;
  for (const auto& e : events_) {
    if (e.worker != worker) continue;
    if (t >= e.start && t < e.start + e.duration) factor = std::max(factor, e.slow_factor);
  }
  return factor;
}

bool StragglerSchedule::any_active(VTime t) const noexcept {
  for (const auto& e : events_)
    if (t >= e.start && t < e.start + e.duration) return true;
  return false;
}

VTime StragglerSchedule::next_clear_time(VTime t) const noexcept {
  VTime latest_end = VTime::from_seconds(-1.0);
  for (const auto& e : events_) {
    if (t >= e.start && t < e.start + e.duration) {
      const VTime end = e.start + e.duration;
      if (end > latest_end) latest_end = end;
    }
  }
  return latest_end;
}

}  // namespace ss
