#include "sim/des_engine.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace ss {

DesEngine::DesEngine(WorkerProcess& process, std::vector<int> active, AdmissionRules rules)
    : process_(process), active_(std::move(active)), rules_(rules) {
  if (active_.empty()) throw ConfigError("DesEngine: no active workers");
  int max_id = 0;
  for (int w : active_) {
    if (w < 0) throw ConfigError("DesEngine: negative worker id");
    max_id = std::max(max_id, w);
  }
  local_clock_.assign(static_cast<std::size_t>(max_id) + 1, 0);
  parked_.assign(static_cast<std::size_t>(max_id) + 1, 0);
  effective_bound_ = rules_.bound;
}

void DesEngine::schedule_pull(int worker, VTime at) {
  queue_.schedule(at + process_.pull_latency(worker, at), SimEventKind::kPullDone, worker);
}

std::int64_t DesEngine::min_local_clock() const {
  std::int64_t m = std::numeric_limits<std::int64_t>::max();
  for (int w : active_) m = std::min(m, local_clock_[static_cast<std::size_t>(w)]);
  return m;
}

void DesEngine::admit_or_park(int worker, VTime resume_at) {
  // The worker just finished a step; may it start the next one, or does the
  // staleness bound park it until the stragglers catch up?
  const std::int64_t gap = local_clock_[static_cast<std::size_t>(worker)] - min_local_clock();
  bool proceed = true;
  if (rules_.bounded) {
    if (gap > effective_bound_) {
      if (rules_.dynamic && effective_bound_ < rules_.bound + rules_.credit) {
        ++effective_bound_;  // DSSP: lend credit instead of blocking
      } else {
        proceed = false;
      }
    }
  }
  if (proceed) {
    // The gap at a step start is the conformance metric SSP bounds.
    max_clock_gap_ = std::max(max_clock_gap_, gap);
    schedule_pull(worker, resume_at);
  } else {
    parked_[static_cast<std::size_t>(worker)] = 1;
  }
  // This push may have advanced the minimum clock: wake parked workers whose
  // constraint now holds, and relax the DSSP credit once the cluster is back
  // within the base bound.
  if (rules_.bounded) {
    const std::int64_t m = min_local_clock();
    std::int64_t max_gap = 0;
    for (int other : active_) {
      const auto o = static_cast<std::size_t>(other);
      max_gap = std::max(max_gap, local_clock_[o] - m);
      if (parked_[o] && local_clock_[o] - m <= effective_bound_) {
        parked_[o] = 0;
        max_clock_gap_ = std::max(max_clock_gap_, local_clock_[o] - m);
        schedule_pull(other, resume_at);
      }
    }
    if (rules_.dynamic && max_gap <= rules_.bound) effective_bound_ = rules_.bound;
  }
}

void DesEngine::run() {
  while (!queue_.empty()) {
    const SimEvent ev = queue_.pop();
    if (ev.kind == SimEventKind::kPullDone) {
      const VTime busy = process_.on_pull_done(ev.worker, ev.time);
      queue_.schedule(ev.time + busy, SimEventKind::kPushArrive, ev.worker);
      continue;
    }
    const PushOutcome out = process_.on_push_arrive(ev.worker, ev.time);
    if (out.stop) {
      queue_.clear();  // in-flight work is abandoned, as in a checkpoint-restart
      break;
    }
    if (!rules_.track_clocks) {
      // Free-running family: the worker immediately begins its next cycle
      // (no cancellation, no parking).
      schedule_pull(ev.worker, out.resume_at);
      continue;
    }
    local_clock_[static_cast<std::size_t>(ev.worker)] += 1;
    admit_or_park(ev.worker, out.resume_at);
  }
}

RoundPlan plan_round(const std::vector<int>& active, std::size_t k, bool pipelined,
                     const TaskDraw& draw) {
  const std::size_t n = active.size();
  if (k < 1 || k > n) throw ConfigError("plan_round: k out of range");
  RoundPlan plan;
  plan.winners.reserve(k);

  if (!pipelined) {
    // Draw one task per worker (in active order, to keep RNG consumption
    // identical across K values); keep the K earliest completions.
    std::vector<RoundArrival> tasks;
    tasks.reserve(n);
    for (int w : active) {
      const VTime t = draw(w, VTime::zero());
      tasks.push_back({t, t, w});
    }
    std::sort(tasks.begin(), tasks.end(), [](const RoundArrival& a, const RoundArrival& c) {
      if (a.at != c.at) return a.at < c.at;
      return a.worker < c.worker;
    });
    plan.winners.assign(tasks.begin(), tasks.begin() + static_cast<std::ptrdiff_t>(k));
    plan.round_end = plan.winners.back().at;
    plan.cancelled = static_cast<std::int64_t>(n - k);
  } else {
    // Fast workers pipeline batches until K total arrive: a time-ordered
    // merge of each worker's completion sequence, re-drawing the winner's
    // next task at each step.  The n in-flight tasks at the cutoff are
    // abandoned part-way; they are not counted in cancelled (which counts
    // *completed* waste).
    std::vector<VTime> next(n);     // next completion, relative to round start
    std::vector<VTime> started(n);  // when that task started
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = draw(active[i], VTime::zero());
      started[i] = VTime::zero();
    }
    for (std::size_t c = 0; c < k; ++c) {
      std::size_t best = 0;
      for (std::size_t i = 1; i < n; ++i)
        if (next[i] < next[best]) best = i;
      plan.winners.push_back({next[best], next[best] - started[best], active[best]});
      plan.round_end = next[best];
      started[best] = next[best];
      next[best] = next[best] + draw(active[best], next[best]);
    }
  }

  // Deterministic compute order: worker index, then arrival.
  std::sort(plan.winners.begin(), plan.winners.end(),
            [](const RoundArrival& a, const RoundArrival& c) {
              if (a.worker != c.worker) return a.worker < c.worker;
              return a.at < c.at;
            });
  return plan;
}

}  // namespace ss
