#include "obs/tracer.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/json.h"

namespace ss::obs {

namespace {

std::string format_number(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

TraceArg arg(const char* key, std::int64_t v) { return {key, std::to_string(v)}; }

TraceArg arg(const char* key, int v) { return arg(key, static_cast<std::int64_t>(v)); }

TraceArg arg(const char* key, double v) { return {key, format_number(v)}; }

TraceArg arg(const char* key, const std::string& v) {
  // Built by append (not operator+) to sidestep a GCC 12 -Wrestrict false
  // positive on const char* + std::string&& under -Werror.
  std::string quoted;
  quoted.reserve(v.size() + 2);
  quoted += '"';
  quoted += json_escape(v);
  quoted += '"';
  return {key, std::move(quoted)};
}

TraceArg arg(const char* key, const char* v) { return arg(key, std::string(v)); }

WallTracer::WallTracer() : epoch_(std::chrono::steady_clock::now()) {}

void WallTracer::enable(std::size_t max_events) {
  if (max_events == 0) throw ConfigError("WallTracer: max_events must be > 0");
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
  max_events_ = max_events;
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void WallTracer::disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }

std::int64_t WallTracer::now_us() const noexcept {
  return to_us(std::chrono::steady_clock::now());
}

std::int64_t WallTracer::to_us(std::chrono::steady_clock::time_point tp) const noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(tp - epoch_).count();
}

void WallTracer::set_track_name(int track, const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  track_names_[track] = name;
}

void WallTracer::record(Event e) {
  if (!enabled()) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(e));
}

void WallTracer::complete(int track, std::string name, std::int64_t start_us,
                          std::int64_t dur_us, std::vector<TraceArg> args) {
  record(Event{'X', track, start_us, dur_us, std::move(name), std::move(args), 0.0});
}

void WallTracer::instant(int track, std::string name, std::vector<TraceArg> args) {
  record(Event{'i', track, now_us(), 0, std::move(name), std::move(args), 0.0});
}

void WallTracer::counter(std::string name, double value) {
  record(Event{'C', 0, now_us(), 0, std::move(name), {}, value});
}

std::size_t WallTracer::recorded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t WallTracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void WallTracer::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

void WallTracer::write_chrome_trace(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  ChromeTraceWriter w(os);
  for (const auto& [track, name] : track_names_) {
    w.event().field("ph", "M").field("pid", 1).field("tid", track)
        .field("name", "thread_name").args().field("name", name);
  }
  w.event().field("ph", "M").field("pid", 1).field("tid", 0)
      .field("name", "trace_metadata").args()
      .field("clock", "wall")
      .field("recorded_events", static_cast<std::int64_t>(events_.size()))
      .field("dropped_events", static_cast<std::int64_t>(dropped_));
  for (const Event& e : events_) {
    switch (e.ph) {
      case 'X':
        w.event().field("ph", "X").field("pid", 1).field("tid", e.track)
            .field("ts", e.ts).field("dur", e.dur).field("name", e.name);
        break;
      case 'i':
        w.event().field("ph", "i").field("pid", 1).field("tid", e.track)
            .field("s", "t").field("ts", e.ts).field("name", e.name);
        break;
      case 'C':
        w.event().field("ph", "C").field("pid", 1).field("ts", e.ts).field("name", e.name);
        break;
      default:
        continue;
    }
    if (e.ph == 'C') {
      w.args().field("value", e.value);
    } else if (!e.args.empty()) {
      w.args();
      for (const TraceArg& a : e.args) w.raw(a.key, a.json);
    }
  }
  w.close();
}

void WallTracer::save_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw IoError("WallTracer: cannot open " + path);
  write_chrome_trace(out);
  if (!out.good()) throw IoError("WallTracer: write failed for " + path);
}

}  // namespace ss::obs
