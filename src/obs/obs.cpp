#include "obs/obs.h"

namespace ss::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

// kUnassigned sentinel: first thread_track() call claims the next free
// auto track.  Auto tracks start at 64 to stay clear of the fixed
// control/worker rows (0..N+1 for any realistic worker count).
constexpr int kUnassignedTrack = -1;
constexpr int kFirstAutoTrack = 64;

std::atomic<int> g_next_auto_track{kFirstAutoTrack};
thread_local int t_track = kUnassignedTrack;

}  // namespace

MetricsRegistry& metrics() {
  static MetricsRegistry* reg = new MetricsRegistry();  // leaked: outlives all threads
  return *reg;
}

WallTracer& tracer() {
  static WallTracer* tr = new WallTracer();  // leaked: outlives all threads
  return *tr;
}

bool tracing() noexcept { return enabled() && tracer().enabled(); }

void enable_tracing(std::size_t max_events) {
  tracer().enable(max_events);
  detail::g_enabled.store(true, std::memory_order_relaxed);
}

void enable_metrics() { detail::g_enabled.store(true, std::memory_order_relaxed); }

void disable_all() noexcept {
  detail::g_enabled.store(false, std::memory_order_relaxed);
  tracer().disable();
}

int thread_track() {
  if (t_track == kUnassignedTrack) {
    t_track = g_next_auto_track.fetch_add(1, std::memory_order_relaxed);
    tracer().set_track_name(t_track, "thread " + std::to_string(t_track));
  }
  return t_track;
}

void set_thread_track(int track) noexcept { t_track = track; }

}  // namespace ss::obs
