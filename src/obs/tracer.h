// Wall-clock span tracer: records real-time spans, instants, and counter
// samples on named tracks and exports them as the same Chrome trace-event
// JSON the simulator's TraceRecorder writes (one emission path —
// common/json.h's ChromeTraceWriter) so simulated and real timelines open
// side by side in the same Perfetto view.
//
// Recording is disabled by default: enabled() is one relaxed atomic load,
// and every instrumentation site checks it before reading a clock or
// touching the buffer, so a traced-off run does no extra work.  When
// enabled, events land in a bounded, mutex-protected buffer; overflow is
// counted and exported as trace metadata (truncated traces self-describe).
//
// Timestamps are microseconds of steady-clock time since the tracer's
// epoch (reset by enable(), so every capture starts near t=0).  Tracks map
// to Chrome "tid"s under pid 1, mirroring TraceRecorder's convention:
// track 0 is the control/PS row, track w+1 is worker slot w.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ss::obs {

/// One "args" entry: a key plus a pre-encoded JSON value.  Build with the
/// arg() helpers, which quote/escape strings and format numbers.
struct TraceArg {
  const char* key;
  std::string json;
};

[[nodiscard]] TraceArg arg(const char* key, std::int64_t v);
[[nodiscard]] TraceArg arg(const char* key, int v);
[[nodiscard]] TraceArg arg(const char* key, double v);
[[nodiscard]] TraceArg arg(const char* key, const std::string& v);
[[nodiscard]] TraceArg arg(const char* key, const char* v);

class WallTracer {
 public:
  WallTracer();

  /// Arm recording with a fresh epoch and an event cap.  Clears any
  /// previously recorded events.
  void enable(std::size_t max_events = 1 << 20);
  void disable() noexcept;
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the epoch, for building span timestamps.
  [[nodiscard]] std::int64_t now_us() const noexcept;
  [[nodiscard]] std::int64_t to_us(std::chrono::steady_clock::time_point tp) const noexcept;

  /// Label a track's Perfetto row ("worker 3", "ps server", ...).
  void set_track_name(int track, const std::string& name);

  /// Complete span ("X"): a closed interval on `track`.
  void complete(int track, std::string name, std::int64_t start_us, std::int64_t dur_us,
                std::vector<TraceArg> args = {});
  /// Thread-scoped instant ("i") at now().
  void instant(int track, std::string name, std::vector<TraceArg> args = {});
  /// Counter sample ("C") at now().
  void counter(std::string name, double value);

  [[nodiscard]] std::size_t recorded() const;
  [[nodiscard]] std::size_t dropped() const;
  void clear();

  /// Export everything recorded so far as a Chrome trace-event JSON array
  /// (track-name metadata first, then events in record order; the buffer's
  /// dropped count rides along as a trace_metadata event).
  void write_chrome_trace(std::ostream& os) const;
  /// Convenience: write_chrome_trace to a file.  Throws IoError on failure.
  void save_chrome_trace(const std::string& path) const;

 private:
  struct Event {
    char ph;  ///< 'X', 'i', or 'C'
    int track;
    std::int64_t ts;
    std::int64_t dur;  ///< 'X' only
    std::string name;
    std::vector<TraceArg> args;
    double value;  ///< 'C' only
  };

  void record(Event e);

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::size_t max_events_ = 1 << 20;
  std::size_t dropped_ = 0;
  std::vector<Event> events_;
  std::map<int, std::string> track_names_;
};

}  // namespace ss::obs
