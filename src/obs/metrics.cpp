#include "obs/metrics.h"

#include <bit>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace ss::obs {

namespace {

/// Relaxed atomic double accumulation via CAS (atomic<double>::fetch_add is
/// C++20 but a CAS loop is portable across every toolchain CI uses).
void add_double(std::atomic<std::uint64_t>& bits, double v) noexcept {
  std::uint64_t cur = bits.load(std::memory_order_relaxed);
  for (;;) {
    const double next = std::bit_cast<double>(cur) + v;
    if (bits.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(next),
                                   std::memory_order_relaxed))
      return;
  }
}

/// Shortest decimal form that parses back to exactly `v` (Prometheus prints
/// doubles the same way): bucket labels stay readable ("0.1", not
/// "0.10000000000000001") while exposition -> parse -> compare stays exact.
std::string format_double(double v) {
  for (int precision = 1; precision <= 17; ++precision) {
    std::ostringstream os;
    os.precision(precision);
    os << v;
    if (std::stod(os.str()) == v) return os.str();
  }
  std::ostringstream os;  // NaN: the loop's == can never accept it
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

void Gauge::set(double v) noexcept {
  bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
}

double Gauge::value() const noexcept {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty()) throw ConfigError("Histogram: at least one bucket bound required");
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i)
    if (!(bounds_[i] < bounds_[i + 1]))
      throw ConfigError("Histogram: bucket bounds must be strictly increasing");
  for (const double b : bounds_)
    if (!std::isfinite(b)) throw ConfigError("Histogram: bucket bounds must be finite");
}

void Histogram::observe(double v) noexcept {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  add_double(sum_bits_, v);
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

std::int64_t Histogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const noexcept {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name, const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.gauge || e.histogram)
    throw ConfigError("MetricsRegistry: '" + name + "' already registered as another kind");
  if (!e.counter) {
    e.counter = std::make_unique<Counter>();
    e.help = help;
  }
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.counter || e.histogram)
    throw ConfigError("MetricsRegistry: '" + name + "' already registered as another kind");
  if (!e.gauge) {
    e.gauge = std::make_unique<Gauge>();
    e.help = help;
  }
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds,
                                      const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[name];
  if (e.counter || e.gauge)
    throw ConfigError("MetricsRegistry: '" + name + "' already registered as another kind");
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
    e.help = help;
  } else if (e.histogram->bounds() != bounds) {
    throw ConfigError("MetricsRegistry: '" + name + "' re-registered with different buckets");
  }
  return *e.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  // std::map iteration is already name-sorted.
  for (const auto& [name, e] : entries_) {
    if (e.counter) {
      snap.counters.push_back({name, e.help, e.counter->value()});
    } else if (e.gauge) {
      snap.gauges.push_back({name, e.help, e.gauge->value()});
    } else if (e.histogram) {
      MetricsSnapshot::HistogramSample h;
      h.name = name;
      h.help = e.help;
      h.bounds = e.histogram->bounds();
      h.buckets = e.histogram->bucket_counts();
      h.count = e.histogram->count();
      h.sum = e.histogram->sum();
      snap.histograms.push_back(std::move(h));
    }
  }
  return snap;
}

std::string MetricsRegistry::expose_text() const {
  const MetricsSnapshot snap = snapshot();
  std::ostringstream os;
  auto header = [&os](const std::string& name, const std::string& help, const char* type) {
    if (!help.empty()) os << "# HELP " << name << " " << help << "\n";
    os << "# TYPE " << name << " " << type << "\n";
  };
  for (const auto& c : snap.counters) {
    header(c.name, c.help, "counter");
    os << c.name << " " << c.value << "\n";
  }
  for (const auto& g : snap.gauges) {
    header(g.name, g.help, "gauge");
    os << g.name << " " << format_double(g.value) << "\n";
  }
  for (const auto& h : snap.histograms) {
    header(h.name, h.help, "histogram");
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      os << h.name << "_bucket{le=\"" << format_double(h.bounds[i]) << "\"} " << cumulative
         << "\n";
    }
    cumulative += h.buckets.back();
    os << h.name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    os << h.name << "_sum " << format_double(h.sum) << "\n";
    os << h.name << "_count " << h.count << "\n";
  }
  return os.str();
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : entries_) {
    (void)name;
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

}  // namespace ss::obs
