// Process-wide observability switchboard.
//
// Everything is off by default and provably inert: instrumentation sites
// guard on obs::enabled() (one relaxed atomic load) and never touch the
// registry or tracer when it is false, so an uninstrumented-off run does no
// extra work and stays bit-identical to a build without obs at all.
// Enabling observability never alters computation — it only records.
//
// Typical wiring (sync_switch_cli):
//   if (trace_out) obs::enable_tracing();
//   if (metrics_out) obs::enable_metrics();
//   ... run ...
//   if (trace_out) obs::tracer().save_chrome_trace(*trace_out);
//   if (metrics_out) write_file(*metrics_out, obs::metrics().expose_text());
//
// Tracks mirror TraceRecorder's convention: track 0 = PS/control row,
// track w+1 = worker slot w.  Threads that serve no fixed slot (e.g. PS
// server session threads before their worker id is known) get an
// auto-assigned track from thread_track().
#pragma once

#include <atomic>

#include "obs/metrics.h"
#include "obs/tracer.h"

namespace ss::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Master switch: true when metrics and/or tracing are armed.  Hot paths
/// check this once and skip all observability work when false.
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// The process-global metrics registry.
[[nodiscard]] MetricsRegistry& metrics();

/// The process-global wall-clock tracer.
[[nodiscard]] WallTracer& tracer();

/// True when the global tracer is armed (enabled() implies at most).
[[nodiscard]] bool tracing() noexcept;

/// Arm span recording on the global tracer (fresh epoch) and flip the
/// master switch on.
void enable_tracing(std::size_t max_events = 1 << 20);

/// Flip the master switch on without arming the tracer: instrumentation
/// sites record metrics only.
void enable_metrics();

/// Disarm everything: master switch off, tracer disabled.  Recorded events
/// and metric values are kept until clear()/reset() so callers can still
/// export after a run.  Primarily for tests.
void disable_all() noexcept;

/// The calling thread's trace track.  Defaults to an auto-assigned track
/// (>= 64, named "thread N") the first time a thread asks; threads bound to
/// a fixed slot should set_thread_track() first.
[[nodiscard]] int thread_track();

/// Pin the calling thread to a specific track (0 = PS/control, w+1 =
/// worker slot w).
void set_thread_track(int track) noexcept;

}  // namespace ss::obs
