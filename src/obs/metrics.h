// Low-overhead metrics registry: named counters, gauges, and fixed-bucket
// histograms with lock-free recording and Prometheus-style text exposition.
//
// Recording is a handful of relaxed atomics — cheap enough for per-frame and
// per-step sites on the real runtimes.  Registration (name -> instrument) is
// mutex-protected and returns references that stay valid for the registry's
// lifetime (instruments are never removed; reset() only zeroes values), so
// hot paths register once and record through the reference.
//
// The process-global registry lives behind obs::metrics() (obs/obs.h); tests
// construct standalone registries.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ss::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::int64_t n = 1) noexcept { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept;
  [[nodiscard]] double value() const noexcept;
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<std::uint64_t> bits_{0};  ///< IEEE-754 bit pattern of the value
};

/// Fixed-bucket histogram: `bounds` are strictly increasing upper bounds, a
/// +Inf overflow bucket is implicit.  observe() is a linear scan over the
/// bounds plus three relaxed atomics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1.
  [[nodiscard]] std::vector<std::int64_t> bucket_counts() const;
  [[nodiscard]] std::int64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::int64_t>> buckets_;  ///< bounds_.size() + 1
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  ///< IEEE-754 bit pattern of the sum
};

/// Point-in-time copy of every registered instrument.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    std::string help;
    std::int64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    std::string help;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    std::string help;
    std::vector<double> bounds;
    std::vector<std::int64_t> buckets;  ///< non-cumulative; bounds.size() + 1
    std::int64_t count = 0;
    double sum = 0.0;
  };
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Named instrument registry.  Thread-safe; name collisions across kinds
/// (or a histogram re-registered with different bounds) throw ConfigError.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  /// Sorted by name within each kind, so exposition output is stable.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Prometheus text exposition (# HELP / # TYPE headers, cumulative
  /// histogram buckets with le labels, _sum/_count).
  [[nodiscard]] std::string expose_text() const;

  /// Zero every instrument (registrations survive; references stay valid).
  void reset();

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace ss::obs
