// Asynchronous, consistent sharded-PS snapshots for crash recovery.
//
// A crash under RecoveryMode::kRestoreSnapshot rolls the parameter server
// back to the last snapshot, so the loss window is bounded by one snapshot
// interval — but only if taking a snapshot does not itself stall training.
// The split here keeps both runtimes honest:
//
//  * SnapshotStore is the passive, thread-safe holder of the latest
//    checkpoint (format v2: params + velocity + shard layout + versions).
//    The simulator drives it synchronously at exact step boundaries, which
//    is what makes elastic sim runs bit-for-bit reproducible.
//  * AsyncSnapshotter is the threaded runtime's driver: a background thread
//    that watches a progress counter (PS updates applied) and captures a
//    checkpoint every `interval` updates via a caller-supplied capture
//    function.  The capture walks the PS copy-on-read, one shard lock at a
//    time (SharedParameterServer::snapshot_checkpoint), so workers pushing
//    to other shards never block on it — each shard's slice is internally
//    consistent (params + velocity + version move together under the shard
//    lock) and cross-shard skew is bounded by the pushes that land
//    mid-walk, the same guarantee a worker pull has.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>

#include "nn/checkpoint.h"

namespace ss {

/// Thread-safe holder of the most recent snapshot.
class SnapshotStore {
 public:
  void put(Checkpoint ckpt);

  /// Copy of the latest snapshot, if any has been taken.
  [[nodiscard]] std::optional<Checkpoint> latest() const;

  /// Number of snapshots stored so far.
  [[nodiscard]] std::int64_t count() const;

  /// `global_step` of the latest snapshot (-1 when none exists).
  [[nodiscard]] std::int64_t latest_step() const;

 private:
  mutable std::mutex mu_;
  std::optional<Checkpoint> latest_;
  std::int64_t count_ = 0;
};

/// Background cadence driver: captures a checkpoint into the store every
/// `interval` progress units.  Construction starts the thread; destruction
/// (or stop()) joins it.  `capture` and `progress` must be safe to call
/// concurrently with training — the intended capture is the per-shard-locked
/// SharedParameterServer::snapshot_checkpoint.
class AsyncSnapshotter {
 public:
  using CaptureFn = std::function<Checkpoint()>;
  using ProgressFn = std::function<std::int64_t()>;

  AsyncSnapshotter(CaptureFn capture, ProgressFn progress, std::int64_t interval,
                   SnapshotStore& store);
  ~AsyncSnapshotter();

  AsyncSnapshotter(const AsyncSnapshotter&) = delete;
  AsyncSnapshotter& operator=(const AsyncSnapshotter&) = delete;

  /// Capture + store a snapshot immediately on the calling thread (used for
  /// the run-start snapshot, so recovery always has a floor to restore to).
  void snapshot_now();

  /// Join the background thread (idempotent).
  void stop();

 private:
  void loop();

  CaptureFn capture_;
  ProgressFn progress_;
  std::int64_t interval_;
  SnapshotStore& store_;
  std::int64_t next_due_;  ///< progress value the next cadence snapshot is due at
  std::mutex mu_;          ///< guards next_due_ and the stop wait
  std::condition_variable cv_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace ss
