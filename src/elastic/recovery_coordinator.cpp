#include "elastic/recovery_coordinator.h"

#include <algorithm>

#include "common/error.h"

namespace ss {

namespace {

std::size_t floor_of(const ElasticConfig& cfg) { return std::max<std::size_t>(cfg.min_workers, 1); }

}  // namespace

RecoveryCoordinator::RecoveryCoordinator(const ElasticConfig& cfg, std::size_t initial_workers)
    : cfg_(cfg), next_slot_(initial_workers) {
  if (initial_workers == 0)
    throw ConfigError("RecoveryCoordinator: initial cluster must have at least one worker");
  active_.reserve(initial_workers + cfg_.plan.join_count());
  for (std::size_t w = 0; w < initial_workers; ++w) active_.push_back(static_cast<int>(w));
  max_slots_ = initial_workers + cfg_.plan.join_count();

  // Dry-run the scripted plan so infeasible plans fail at configuration
  // time.  The simulation mirrors advance_to exactly: joins claim slot ids
  // in order, crashes/leaves must target a currently-alive slot and may not
  // shrink the cluster below the floor.
  std::vector<int> alive = active_;
  std::size_t slot = next_slot_;
  for (const MembershipEvent& e : cfg_.plan.events()) {
    if (e.kind == MembershipEventKind::kJoin) {
      alive.push_back(static_cast<int>(slot++));
      continue;
    }
    const auto it = std::find(alive.begin(), alive.end(), e.worker);
    if (it == alive.end())
      throw ConfigError("MembershipPlan: " + membership_event_name(e.kind) + " of worker " +
                        std::to_string(e.worker) + " at step " + std::to_string(e.at_step) +
                        " targets a slot that is not alive at that point");
    if (alive.size() <= floor_of(cfg_))
      throw ConfigError("MembershipPlan: " + membership_event_name(e.kind) + " at step " +
                        std::to_string(e.at_step) + " would shrink the cluster below " +
                        std::to_string(floor_of(cfg_)) + " worker(s)");
    alive.erase(it);
  }
}

bool RecoveryCoordinator::is_alive(int slot) const noexcept {
  return std::find(active_.begin(), active_.end(), slot) != active_.end();
}

std::int64_t RecoveryCoordinator::next_event_step(std::int64_t progress) const noexcept {
  const auto& events = cfg_.plan.events();
  for (std::size_t i = next_event_; i < events.size(); ++i)
    if (events[i].at_step > progress) return events[i].at_step;
  return -1;
}

bool RecoveryCoordinator::events_due(std::int64_t progress) const noexcept {
  const auto& events = cfg_.plan.events();
  return next_event_ < events.size() && events[next_event_].at_step <= progress;
}

void RecoveryCoordinator::retire(int slot) {
  active_.erase(std::find(active_.begin(), active_.end(), slot));
}

int RecoveryCoordinator::claim_slot() {
  const int slot = static_cast<int>(next_slot_++);
  active_.push_back(slot);
  std::sort(active_.begin(), active_.end());
  return slot;
}

std::vector<AppliedMembershipEvent> RecoveryCoordinator::advance_to(std::int64_t progress) {
  std::vector<AppliedMembershipEvent> applied;
  const auto& events = cfg_.plan.events();
  while (next_event_ < events.size() && events[next_event_].at_step <= progress) {
    MembershipEvent e = events[next_event_++];
    if (e.kind == MembershipEventKind::kJoin) {
      e.worker = claim_slot();
    } else {
      // The constructor dry-ran the plan, so the target is alive and the
      // floor holds unless reactive evictions interleaved; re-check so the
      // combination still fails loudly instead of corrupting the set.
      if (!is_alive(e.worker))
        throw ConfigError("RecoveryCoordinator: scripted " + membership_event_name(e.kind) +
                          " targets dead worker " + std::to_string(e.worker));
      if (active_.size() <= floor_of(cfg_))
        throw ConfigError("RecoveryCoordinator: scripted " + membership_event_name(e.kind) +
                          " would shrink the cluster below its floor");
      retire(e.worker);
    }
    applied.push_back({e, active_.size()});
  }
  return applied;
}

std::vector<AppliedMembershipEvent> RecoveryCoordinator::evict(const std::vector<int>& flagged,
                                                               std::int64_t progress) {
  std::vector<AppliedMembershipEvent> applied;
  for (int slot : flagged) {
    if (!is_alive(slot)) continue;
    if (active_.size() <= floor_of(cfg_)) break;  // keep the floor, drop the rest
    retire(slot);
    applied.push_back({{MembershipEventKind::kLeave, slot, progress}, active_.size()});
  }
  return applied;
}

}  // namespace ss
