#include "elastic/async_snapshotter.h"

#include <chrono>
#include <utility>

#include "common/error.h"

namespace ss {

void SnapshotStore::put(Checkpoint ckpt) {
  const std::lock_guard<std::mutex> lock(mu_);
  latest_ = std::move(ckpt);
  ++count_;
}

std::optional<Checkpoint> SnapshotStore::latest() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return latest_;
}

std::int64_t SnapshotStore::count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

std::int64_t SnapshotStore::latest_step() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return latest_ ? latest_->global_step : -1;
}

AsyncSnapshotter::AsyncSnapshotter(CaptureFn capture, ProgressFn progress,
                                   std::int64_t interval, SnapshotStore& store)
    : capture_(std::move(capture)),
      progress_(std::move(progress)),
      interval_(interval),
      store_(store),
      next_due_(interval) {
  if (!capture_ || !progress_)
    throw ConfigError("AsyncSnapshotter: capture and progress functions are required");
  if (interval_ <= 0) throw ConfigError("AsyncSnapshotter: interval must be > 0");
  thread_ = std::thread([this] { loop(); });
}

AsyncSnapshotter::~AsyncSnapshotter() { stop(); }

void AsyncSnapshotter::snapshot_now() {
  Checkpoint ckpt = capture_();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    // Re-arm the cadence relative to what was just captured so an explicit
    // snapshot does not trigger an immediate redundant cadence one.
    next_due_ = ckpt.global_step + interval_;
  }
  store_.put(std::move(ckpt));
}

void AsyncSnapshotter::stop() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void AsyncSnapshotter::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_.load(std::memory_order_relaxed)) {
    // Poll the progress counter at a cadence far below any realistic
    // snapshot interval; the cv wait doubles as the stop signal.
    cv_.wait_for(lock, std::chrono::microseconds(200),
                 [&] { return stop_.load(std::memory_order_relaxed); });
    if (stop_.load(std::memory_order_relaxed)) break;
    if (progress_() < next_due_) continue;
    lock.unlock();
    Checkpoint ckpt = capture_();
    lock.lock();
    next_due_ = ckpt.global_step + interval_;
    store_.put(std::move(ckpt));
  }
}

}  // namespace ss
