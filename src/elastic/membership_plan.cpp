#include "elastic/membership_plan.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace ss {

std::string membership_event_name(MembershipEventKind k) {
  switch (k) {
    case MembershipEventKind::kCrash:
      return "crash";
    case MembershipEventKind::kJoin:
      return "join";
    case MembershipEventKind::kLeave:
      return "leave";
  }
  return "?";
}

std::string recovery_mode_name(RecoveryMode m) {
  switch (m) {
    case RecoveryMode::kRestoreSnapshot:
      return "restore";
    case RecoveryMode::kKeepLive:
      return "keeplive";
  }
  return "?";
}

MembershipPlan::MembershipPlan(std::vector<MembershipEvent> events)
    : events_(std::move(events)) {
  for (const MembershipEvent& e : events_) {
    if (e.at_step <= 0)
      throw ConfigError("MembershipPlan: event steps must be > 0 (events before the run "
                        "starts have no state to act on)");
    if (e.kind == MembershipEventKind::kJoin) {
      if (e.worker != -1)
        throw ConfigError("MembershipPlan: join events must leave worker = -1 (the "
                          "coordinator assigns the next free slot)");
    } else if (e.worker < 0) {
      throw ConfigError("MembershipPlan: " + membership_event_name(e.kind) +
                        " events must name a worker slot");
    }
  }
  std::stable_sort(events_.begin(), events_.end(),
                   [](const MembershipEvent& a, const MembershipEvent& b) {
                     return a.at_step < b.at_step;
                   });
}

MembershipPlan MembershipPlan::reactive_evict() {
  MembershipPlan plan;
  plan.reactive_ = true;
  return plan;
}

MembershipPlan MembershipPlan::crash(int worker, std::int64_t at_step) {
  return MembershipPlan({{MembershipEventKind::kCrash, worker, at_step}});
}

MembershipPlan MembershipPlan::join(std::int64_t at_step) {
  return MembershipPlan({{MembershipEventKind::kJoin, -1, at_step}});
}

MembershipPlan MembershipPlan::leave(int worker, std::int64_t at_step) {
  return MembershipPlan({{MembershipEventKind::kLeave, worker, at_step}});
}

std::size_t MembershipPlan::join_count() const noexcept {
  std::size_t n = 0;
  for (const MembershipEvent& e : events_)
    if (e.kind == MembershipEventKind::kJoin) ++n;
  return n;
}

std::string MembershipPlan::label() const {
  if (empty()) return "-";
  std::ostringstream os;
  if (reactive_) os << "evict!";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) os << "+";
    const MembershipEvent& e = events_[i];
    os << membership_event_name(e.kind);
    if (e.kind != MembershipEventKind::kJoin) os << e.worker;
    os << "@" << e.at_step;
  }
  return os.str();
}

std::string ElasticConfig::label() const {
  if (empty()) return "-";
  std::ostringstream os;
  os << plan.label() << "|si=" << snapshot_interval << "|rm=" << recovery_mode_name(recovery)
     << "|min=" << min_workers;
  return os.str();
}

}  // namespace ss
