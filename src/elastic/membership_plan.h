// Elastic cluster membership: crash / join / leave as first-class events.
//
// The paper treats the worker set as a constant; real clusters do not.
// Workers crash, get preempted, or are added for capacity — and the
// discrete-event literature (adevs, csimpy) models exactly these as
// schedulable events.  A MembershipPlan is the declarative form, the
// membership analogue of SwitchSchedule (ps/switch_schedule.h): a validated
// event list consumed by BOTH runtimes.
//
//  * the simulator (core/session.h) splits phase budgets at event steps,
//    prices each transition through the cluster/actuator models, and keys
//    the plan into the run-cache key — elastic runs are bit-for-bit
//    reproducible and cacheable like any other;
//  * the threaded runtime (ps/threaded_runtime.h) resolves events at the
//    drain barrier: the RecoveryCoordinator retires/spawns real OS threads,
//    restores crash losses from the AsyncSnapshotter's last checkpoint, and
//    re-derives hyper-parameters for the new cluster size.
//
// Step currency is runtime-local, exactly like SwitchSchedule: the
// simulator resolves `at_step` against global minibatch steps (the unit of
// Workload::total_steps), the threaded runtime against per-worker local
// steps (the unit of ThreadedTrainConfig::steps_per_worker).
//
// Besides the scripted form there is a reactive variant driven by the
// existing StragglerDetector: `MembershipPlan::reactive_evict()` turns every
// detector flag into a leave() of the flagged workers (bounded below by
// ElasticConfig::min_workers) — the generalization of the session's
// OnlinePolicy::kElastic to arbitrary protocols and both runtimes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ss {

enum class MembershipEventKind {
  kCrash,  ///< worker dies: ungraceful, recovers per RecoveryMode
  kJoin,   ///< a new worker slot is provisioned and integrated
  kLeave,  ///< worker retires gracefully (its applied work is kept)
};

std::string membership_event_name(MembershipEventKind k);

/// How a crash is recovered at the drain barrier.
enum class RecoveryMode {
  /// Restore parameters + optimizer velocity from the last asynchronous
  /// snapshot: every update since the snapshot is lost, so the loss window
  /// is bounded by one snapshot interval.  This is the faithful model of a
  /// PS that does not log individual updates.
  kRestoreSnapshot,
  /// Keep the live PS state: only the crashed worker's future contribution
  /// is lost (models a replicated PS whose state survives worker crashes).
  kKeepLive,
};

std::string recovery_mode_name(RecoveryMode m);

/// One membership event.  `worker` is the slot a crash/leave applies to
/// (slot ids of joined workers continue past the initial cluster size, in
/// join order); for kJoin it must be -1 in the plan — the coordinator
/// assigns the next free slot when the event resolves.
struct MembershipEvent {
  MembershipEventKind kind = MembershipEventKind::kLeave;
  int worker = -1;
  std::int64_t at_step = 0;  ///< runtime-local step the event resolves at
};

/// Validated event list (plus the optional reactive rule).  Empty plan +
/// kNone reactive = elasticity off.
class MembershipPlan {
 public:
  MembershipPlan() = default;
  /// Throws ConfigError unless every event has at_step > 0, crashes/leaves
  /// name a worker >= 0, and joins leave `worker` at -1.  Events are kept
  /// sorted by at_step (stable, so same-step events resolve in list order).
  explicit MembershipPlan(std::vector<MembershipEvent> events);

  /// Reactive variant: no scripted events; whenever the straggler detector
  /// flags workers, they leave the cluster at the next drain barrier.
  [[nodiscard]] static MembershipPlan reactive_evict();

  // Convenience single-event factories (compose via the vector ctor).
  [[nodiscard]] static MembershipPlan crash(int worker, std::int64_t at_step);
  [[nodiscard]] static MembershipPlan join(std::int64_t at_step);
  [[nodiscard]] static MembershipPlan leave(int worker, std::int64_t at_step);

  [[nodiscard]] bool empty() const noexcept { return events_.empty() && !reactive_; }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] const std::vector<MembershipEvent>& events() const noexcept { return events_; }
  [[nodiscard]] bool reactive() const noexcept { return reactive_; }

  /// Number of kJoin events (bounds the total slot count a run can reach).
  [[nodiscard]] std::size_t join_count() const noexcept;

  /// Canonical string covering every field that affects the result; feeds
  /// ElasticConfig::label() and hence RunRequest::cache_key().  "-" when
  /// empty.
  [[nodiscard]] std::string label() const;

 private:
  std::vector<MembershipEvent> events_;
  bool reactive_ = false;
};

/// Everything the elastic subsystem needs for one run, shared verbatim by
/// RunRequest (simulator) and ThreadedTrainConfig (threaded runtime).
struct ElasticConfig {
  MembershipPlan plan;
  /// Runtime-local steps between asynchronous snapshots (simulator: global
  /// minibatch steps; threaded: PS updates).  <= 0 takes only the run-start
  /// snapshot, so a crash under kRestoreSnapshot rolls back to step 0.
  std::int64_t snapshot_interval = 0;
  RecoveryMode recovery = RecoveryMode::kRestoreSnapshot;
  /// Crashes/leaves (scripted or reactive) may never shrink the cluster
  /// below this floor; the coordinator throws (scripted) or clamps the
  /// eviction set (reactive) otherwise.
  std::size_t min_workers = 1;

  [[nodiscard]] bool empty() const noexcept { return plan.empty(); }
  /// Cache-key form: "-" when elasticity is off.
  [[nodiscard]] std::string label() const;
};

}  // namespace ss
