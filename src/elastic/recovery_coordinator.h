// Membership bookkeeping shared by both runtimes.
//
// The RecoveryCoordinator owns the authoritative answer to "who is in the
// cluster right now".  Worker *slots* are stable integer ids: the initial
// cluster occupies [0, n); every join event claims the next id, so a slot id
// never refers to two different workers.  Both runtimes drive it the same
// way at their quiesce points (the simulator between run_phase segments, the
// threaded runtime at the drain barrier with every worker parked):
//
//   1. next_event_step() caps the segment so training stops exactly at the
//      next scripted event;
//   2. advance_to(progress) applies every scripted event due at or before
//      `progress` (joins get their slot assigned here) and returns the
//      applied list for metrics/pricing;
//   3. evict() is the reactive path: detector-flagged workers leave, never
//      shrinking the cluster below ElasticConfig::min_workers.
//
// The plan is dry-run in the constructor, so an infeasible plan (crashing a
// dead worker, shrinking below the floor, leaving an empty cluster) fails
// fast with ConfigError instead of mid-run.  What the coordinator does NOT
// do is touch runtime state: restoring snapshots, retiring threads,
// re-deriving hyper-parameters, and pricing are the caller's job — each
// runtime applies the returned delta with its own machinery.
#pragma once

#include <cstdint>
#include <vector>

#include "elastic/membership_plan.h"

namespace ss {

/// One resolved event: `event.worker` is always filled in (joins get their
/// assigned slot), `workers_after` is the cluster size once applied.
struct AppliedMembershipEvent {
  MembershipEvent event;
  std::size_t workers_after = 0;
};

class RecoveryCoordinator {
 public:
  /// Validates the scripted plan against `initial_workers` by dry-running
  /// it; throws ConfigError if any event targets a dead/unknown slot or
  /// shrinks the cluster below max(min_workers, 1).
  RecoveryCoordinator(const ElasticConfig& cfg, std::size_t initial_workers);

  /// Upper bound on slot ids ever used: initial workers + scripted joins.
  /// Runtimes pre-size per-slot state (contexts, clocks, detector) with it.
  [[nodiscard]] std::size_t max_slots() const noexcept { return max_slots_; }

  /// Currently alive slot ids, ascending.
  [[nodiscard]] const std::vector<int>& active() const noexcept { return active_; }
  [[nodiscard]] std::size_t alive_count() const noexcept { return active_.size(); }
  [[nodiscard]] bool is_alive(int slot) const noexcept;

  /// Step of the next unresolved scripted event strictly after `progress`,
  /// or -1 when none remain.
  [[nodiscard]] std::int64_t next_event_step(std::int64_t progress) const noexcept;

  /// True when an unresolved scripted event is due at or before `progress`.
  [[nodiscard]] bool events_due(std::int64_t progress) const noexcept;

  /// Apply every scripted event with at_step <= progress, in plan order.
  std::vector<AppliedMembershipEvent> advance_to(std::int64_t progress);

  /// Reactive leave of `flagged` slots (dead/unknown slots are ignored),
  /// clamped so the cluster keeps at least max(min_workers, 1) workers.
  /// `progress` stamps the synthesized events' at_step.
  std::vector<AppliedMembershipEvent> evict(const std::vector<int>& flagged,
                                            std::int64_t progress);

 private:
  void retire(int slot);
  int claim_slot();

  ElasticConfig cfg_;
  std::vector<int> active_;
  std::size_t next_slot_;
  std::size_t max_slots_;
  std::size_t next_event_ = 0;  ///< index into cfg_.plan.events()
};

}  // namespace ss
