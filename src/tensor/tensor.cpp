#include "tensor/tensor.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace ss {

std::size_t shape_numel(const Shape& shape) noexcept {
  std::size_t n = 1;
  for (auto d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (data_.size() != shape_numel(shape_))
    throw ShapeError("Tensor: data size " + std::to_string(data_.size()) +
                     " does not match shape " + shape_str(shape_));
}

std::size_t Tensor::dim(std::size_t i) const {
  if (i >= shape_.size()) throw ShapeError("Tensor::dim index out of range");
  return shape_[i];
}

void Tensor::fill(float v) noexcept {
  for (auto& x : data_) x = v;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  if (shape_numel(new_shape) != data_.size())
    throw ShapeError("Tensor::reshaped: numel mismatch " + shape_str(shape_) + " -> " +
                     shape_str(new_shape));
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

bool Tensor::all_finite() const noexcept {
  for (float x : data_)
    if (!std::isfinite(x)) return false;
  return true;
}

}  // namespace ss
