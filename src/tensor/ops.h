// Tensor math kernels used by the NN layers.
//
// Everything is a free function on Tensor / span<float>, single-threaded and
// deterministic.  matmul uses a register-blocked ikj loop that is fast enough
// for the scaled-down workloads this repo trains (see EXPERIMENTS.md).
#pragma once

#include <cstddef>
#include <span>

#include "tensor/tensor.h"

namespace ss::ops {

/// C(m,n) = A(m,k) * B(k,n).  C must be preallocated with the right shape.
void matmul(const Tensor& a, const Tensor& b, Tensor& c);

/// C(m,n) = A(k,m)^T * B(k,n).
void matmul_tn(const Tensor& a, const Tensor& b, Tensor& c);

/// C(m,n) = A(m,k) * B(n,k)^T.
void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c);

/// y += x (same numel).
void add_inplace(std::span<float> y, std::span<const float> x);

/// y = alpha * x + y.
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// y *= alpha.
void scale_inplace(std::span<float> y, float alpha);

/// Add row-vector bias(n) to every row of x(m,n).
void add_bias_rows(Tensor& x, const Tensor& bias);

/// bias_grad(n) = sum over rows of grad(m,n).
void sum_rows(const Tensor& grad, Tensor& bias_grad);

/// Elementwise ReLU forward: out = max(x, 0).
void relu_forward(const Tensor& x, Tensor& out);

/// ReLU backward: dx = dy where x > 0 else 0.
void relu_backward(const Tensor& x, const Tensor& dy, Tensor& dx);

/// Row-wise softmax of logits(m,n) into probs(m,n); numerically stable.
void softmax_rows(const Tensor& logits, Tensor& probs);

/// Mean cross-entropy loss over a batch given row-wise probabilities and
/// integer labels.  Returns the scalar loss.
double cross_entropy_mean(const Tensor& probs, std::span<const int> labels);

/// Gradient of (mean CE o softmax) w.r.t. logits: (probs - onehot)/m.
void softmax_xent_backward(const Tensor& probs, std::span<const int> labels, Tensor& dlogits);

/// Row-wise argmax of logits(m,n) into out(m).
void argmax_rows(const Tensor& logits, std::span<int> out);

/// Dot product.
double dot(std::span<const float> a, std::span<const float> b);

/// L2 norm.
double l2_norm(std::span<const float> a);

/// im2col for NCHW conv: input (C,H,W) patch matrix (C*kh*kw, oh*ow).
/// Stride 1, symmetric zero padding `pad`.
void im2col(std::span<const float> image, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw, std::size_t pad,
            Tensor& columns);

/// col2im: scatter-add the inverse of im2col (for conv backward w.r.t input).
void col2im(const Tensor& columns, std::size_t channels, std::size_t height, std::size_t width,
            std::size_t kh, std::size_t kw, std::size_t pad, std::span<float> image);

}  // namespace ss::ops
