#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/error.h"

namespace ss::ops {

namespace {
void require(bool cond, const char* msg) {
  if (!cond) throw ShapeError(msg);
}
}  // namespace

void matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  require(a.rank() == 2 && b.rank() == 2 && c.rank() == 2, "matmul: rank-2 tensors required");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n, "matmul: shape mismatch");
  c.fill(0.0f);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // ikj ordering: streams B and C rows; good locality without tiling
  // machinery for the sizes we use (<= a few hundred per dim).
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float av = pa[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void matmul_tn(const Tensor& a, const Tensor& b, Tensor& c) {
  require(a.rank() == 2 && b.rank() == 2 && c.rank() == 2, "matmul_tn: rank-2 tensors required");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  require(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n, "matmul_tn: shape mismatch");
  c.fill(0.0f);
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void matmul_nt(const Tensor& a, const Tensor& b, Tensor& c) {
  require(a.rank() == 2 && b.rank() == 2 && c.rank() == 2, "matmul_nt: rank-2 tensors required");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  require(b.dim(1) == k && c.dim(0) == m && c.dim(1) == n, "matmul_nt: shape mismatch");
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] = acc;
    }
  }
}

void add_inplace(std::span<float> y, std::span<const float> x) {
  require(y.size() == x.size(), "add_inplace: size mismatch");
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += x[i];
}

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  require(y.size() == x.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += alpha * x[i];
}

void scale_inplace(std::span<float> y, float alpha) {
  for (auto& v : y) v *= alpha;
}

void add_bias_rows(Tensor& x, const Tensor& bias) {
  require(x.rank() == 2 && bias.rank() == 1 && bias.dim(0) == x.dim(1),
          "add_bias_rows: shape mismatch");
  const std::size_t m = x.dim(0), n = x.dim(1);
  float* px = x.data();
  const float* pb = bias.data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) px[i * n + j] += pb[j];
}

void sum_rows(const Tensor& grad, Tensor& bias_grad) {
  require(grad.rank() == 2 && bias_grad.rank() == 1 && bias_grad.dim(0) == grad.dim(1),
          "sum_rows: shape mismatch");
  const std::size_t m = grad.dim(0), n = grad.dim(1);
  bias_grad.fill(0.0f);
  const float* pg = grad.data();
  float* pb = bias_grad.data();
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) pb[j] += pg[i * n + j];
}

void relu_forward(const Tensor& x, Tensor& out) {
  require(x.numel() == out.numel(), "relu_forward: size mismatch");
  const float* px = x.data();
  float* po = out.data();
  for (std::size_t i = 0; i < x.numel(); ++i) po[i] = px[i] > 0.0f ? px[i] : 0.0f;
}

void relu_backward(const Tensor& x, const Tensor& dy, Tensor& dx) {
  require(x.numel() == dy.numel() && x.numel() == dx.numel(), "relu_backward: size mismatch");
  const float* px = x.data();
  const float* pdy = dy.data();
  float* pdx = dx.data();
  for (std::size_t i = 0; i < x.numel(); ++i) pdx[i] = px[i] > 0.0f ? pdy[i] : 0.0f;
}

void softmax_rows(const Tensor& logits, Tensor& probs) {
  require(logits.rank() == 2 && probs.rank() == 2 && logits.dim(0) == probs.dim(0) &&
              logits.dim(1) == probs.dim(1),
          "softmax_rows: shape mismatch");
  const std::size_t m = logits.dim(0), n = logits.dim(1);
  const float* pl = logits.data();
  float* pp = probs.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = pl + i * n;
    float* out = pp + i * n;
    float mx = row[0];
    for (std::size_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      out[j] = std::exp(row[j] - mx);
      sum += out[j];
    }
    const float inv = 1.0f / sum;
    for (std::size_t j = 0; j < n; ++j) out[j] *= inv;
  }
}

double cross_entropy_mean(const Tensor& probs, std::span<const int> labels) {
  require(probs.rank() == 2 && probs.dim(0) == labels.size(), "cross_entropy_mean: shape");
  const std::size_t m = probs.dim(0), n = probs.dim(1);
  const float* pp = probs.data();
  double loss = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    const int y = labels[i];
    require(y >= 0 && static_cast<std::size_t>(y) < n, "cross_entropy_mean: label range");
    const double p = std::max(static_cast<double>(pp[i * n + static_cast<std::size_t>(y)]),
                              1e-12);
    loss -= std::log(p);
  }
  return loss / static_cast<double>(m);
}

void softmax_xent_backward(const Tensor& probs, std::span<const int> labels, Tensor& dlogits) {
  require(probs.rank() == 2 && dlogits.rank() == 2 && probs.dim(0) == labels.size() &&
              probs.dim(0) == dlogits.dim(0) && probs.dim(1) == dlogits.dim(1),
          "softmax_xent_backward: shape");
  const std::size_t m = probs.dim(0), n = probs.dim(1);
  const float* pp = probs.data();
  float* pd = dlogits.data();
  const float inv_m = 1.0f / static_cast<float>(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) pd[i * n + j] = pp[i * n + j] * inv_m;
    pd[i * n + static_cast<std::size_t>(labels[i])] -= inv_m;
  }
}

void argmax_rows(const Tensor& logits, std::span<int> out) {
  require(logits.rank() == 2 && logits.dim(0) == out.size(), "argmax_rows: shape");
  const std::size_t m = logits.dim(0), n = logits.dim(1);
  const float* pl = logits.data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* row = pl + i * n;
    std::size_t best = 0;
    for (std::size_t j = 1; j < n; ++j)
      if (row[j] > row[best]) best = j;
    out[i] = static_cast<int>(best);
  }
}

double dot(std::span<const float> a, std::span<const float> b) {
  require(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += static_cast<double>(a[i]) * b[i];
  return acc;
}

double l2_norm(std::span<const float> a) { return std::sqrt(dot(a, a)); }

void im2col(std::span<const float> image, std::size_t channels, std::size_t height,
            std::size_t width, std::size_t kh, std::size_t kw, std::size_t pad,
            Tensor& columns) {
  const std::size_t oh = height + 2 * pad - kh + 1;
  const std::size_t ow = width + 2 * pad - kw + 1;
  require(columns.rank() == 2 && columns.dim(0) == channels * kh * kw &&
              columns.dim(1) == oh * ow,
          "im2col: columns shape mismatch");
  require(image.size() == channels * height * width, "im2col: image size mismatch");
  float* pc = columns.data();
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t ki = 0; ki < kh; ++ki) {
      for (std::size_t kj = 0; kj < kw; ++kj) {
        const std::size_t row = (c * kh + ki) * kw + kj;
        float* out = pc + row * (oh * ow);
        for (std::size_t oi = 0; oi < oh; ++oi) {
          const std::ptrdiff_t ii =
              static_cast<std::ptrdiff_t>(oi + ki) - static_cast<std::ptrdiff_t>(pad);
          for (std::size_t oj = 0; oj < ow; ++oj) {
            const std::ptrdiff_t jj =
                static_cast<std::ptrdiff_t>(oj + kj) - static_cast<std::ptrdiff_t>(pad);
            float v = 0.0f;
            if (ii >= 0 && ii < static_cast<std::ptrdiff_t>(height) && jj >= 0 &&
                jj < static_cast<std::ptrdiff_t>(width)) {
              v = image[(c * height + static_cast<std::size_t>(ii)) * width +
                        static_cast<std::size_t>(jj)];
            }
            out[oi * ow + oj] = v;
          }
        }
      }
    }
  }
}

void col2im(const Tensor& columns, std::size_t channels, std::size_t height, std::size_t width,
            std::size_t kh, std::size_t kw, std::size_t pad, std::span<float> image) {
  const std::size_t oh = height + 2 * pad - kh + 1;
  const std::size_t ow = width + 2 * pad - kw + 1;
  require(columns.rank() == 2 && columns.dim(0) == channels * kh * kw &&
              columns.dim(1) == oh * ow,
          "col2im: columns shape mismatch");
  require(image.size() == channels * height * width, "col2im: image size mismatch");
  std::fill(image.begin(), image.end(), 0.0f);
  const float* pc = columns.data();
  for (std::size_t c = 0; c < channels; ++c) {
    for (std::size_t ki = 0; ki < kh; ++ki) {
      for (std::size_t kj = 0; kj < kw; ++kj) {
        const std::size_t row = (c * kh + ki) * kw + kj;
        const float* in = pc + row * (oh * ow);
        for (std::size_t oi = 0; oi < oh; ++oi) {
          const std::ptrdiff_t ii =
              static_cast<std::ptrdiff_t>(oi + ki) - static_cast<std::ptrdiff_t>(pad);
          if (ii < 0 || ii >= static_cast<std::ptrdiff_t>(height)) continue;
          for (std::size_t oj = 0; oj < ow; ++oj) {
            const std::ptrdiff_t jj =
                static_cast<std::ptrdiff_t>(oj + kj) - static_cast<std::ptrdiff_t>(pad);
            if (jj < 0 || jj >= static_cast<std::ptrdiff_t>(width)) continue;
            image[(c * height + static_cast<std::size_t>(ii)) * width +
                  static_cast<std::size_t>(jj)] += in[oi * ow + oj];
          }
        }
      }
    }
  }
}

}  // namespace ss::ops
