// Dense float32 tensor.
//
// Deliberately simple: contiguous row-major storage, explicit shapes, no
// broadcasting magic.  All the math the NN layers need lives in ops.h as
// free functions taking spans/tensors, which keeps this type a plain value
// type (Rule of Zero).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace ss {

/// Shape of a tensor: up to 4 dimensions in practice (N,C,H,W or N,D).
using Shape = std::vector<std::size_t>;

/// Number of elements a shape describes.
std::size_t shape_numel(const Shape& shape) noexcept;

/// Human-readable "[a, b, c]".
std::string shape_str(const Shape& shape);

/// Contiguous row-major float tensor.  Copyable/movable value type.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape);
  Tensor(Shape shape, float fill);
  Tensor(Shape shape, std::vector<float> data);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] std::size_t numel() const noexcept { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t i) const;
  [[nodiscard]] std::size_t rank() const noexcept { return shape_.size(); }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<float> span() noexcept { return {data_.data(), data_.size()}; }
  [[nodiscard]] std::span<const float> span() const noexcept {
    return {data_.data(), data_.size()};
  }

  float& operator[](std::size_t i) noexcept { return data_[i]; }
  float operator[](std::size_t i) const noexcept { return data_[i]; }

  /// 2-D accessors (row-major); bounds unchecked in release builds.
  float& at2(std::size_t r, std::size_t c) noexcept { return data_[r * shape_[1] + c]; }
  float at2(std::size_t r, std::size_t c) const noexcept { return data_[r * shape_[1] + c]; }

  /// Set every element to v.
  void fill(float v) noexcept;

  /// Reinterpret the same storage with a new shape (numel must match).
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// True if every element is finite.
  [[nodiscard]] bool all_finite() const noexcept;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace ss
