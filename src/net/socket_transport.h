// Socket-backed Transport: the worker side of the multi-process deployment.
//
// One SocketTransport is one worker's connection to the PsServer.  The
// constructor performs the Hello handshake and returns the server-owned run
// configuration (AssignmentMsg), after which the Transport methods map 1:1
// onto request/reply frame pairs:
//
//   pull_with_versions  ->  kPull           / kPullReply
//   push                ->  kPushDense      / kPushReply
//   push_compressed     ->  kPushCompressed / kPushReply
//   version             ->  kVersionRequest / kVersionReply
//   snapshot_checkpoint ->  kCheckpointRequest / kCheckpointReply
//   restore_checkpoint  ->  kRestoreRequest / kOk
//
// plus the control-plane calls the interface does not carry: drain_arrive
// (blocks until the server releases the barrier) and bye (clean leave; an
// abrupt close instead is exactly what the server's eviction path handles).
//
// A kError reply, a malformed frame, or a lost connection all throw
// NetError.  Not thread-safe: one transport per worker process/thread — the
// wire protocol is strictly request/reply per connection.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "net/transport.h"

namespace ss {

class SocketTransport final : public Transport {
 public:
  /// Connect to a PsServer and run the Hello handshake; `assignment`
  /// receives the slot + run configuration the server owns.
  SocketTransport(const std::string& endpoint, AssignmentMsg& assignment);

  /// Wrap an already-connected socket (tests).  `assignment` as above.
  SocketTransport(Socket sock, AssignmentMsg& assignment);

  [[nodiscard]] std::size_t num_params() const override { return num_params_; }
  [[nodiscard]] std::size_t num_shards() const override { return num_shards_; }

  void pull(std::span<float> out) override;
  void pull_with_versions(std::span<float> out,
                          std::vector<std::int64_t>& versions) override;
  std::int64_t push(std::span<const float> grad, double lr,
                    std::span<const std::int64_t> pull_versions) override;
  std::int64_t push_compressed(const CompressedPush& push, double lr,
                               std::span<const std::int64_t> pull_versions) override;
  std::int64_t push_scalar(std::span<const float> grad, double lr,
                           std::int64_t pull_version) override;
  [[nodiscard]] std::int64_t version() override;
  [[nodiscard]] Checkpoint snapshot_checkpoint(std::int64_t logical_step) override;
  void restore_checkpoint(const Checkpoint& ckpt) override;

  /// Announce quiescence after `local_steps` steps and block until every
  /// alive worker has arrived.  Returns true when the run is over.
  [[nodiscard]] bool drain_arrive(std::int64_t local_steps);

  /// Clean leave.  After bye() the transport is closed.
  void bye();

 private:
  AssignmentMsg handshake();
  /// Send `request`, receive the reply, unwrap kError into NetError, and
  /// require `expected` as the reply type.
  Frame rpc(const Frame& request, MsgType expected);

  Socket sock_;
  std::size_t num_params_ = 0;
  std::size_t num_shards_ = 1;
};

}  // namespace ss
