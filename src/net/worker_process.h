// WorkerProcess: one training worker in its own OS process.
//
// `run_worker_process` connects to a PsServer, receives its slot and the
// server-owned run configuration (AssignmentMsg), regenerates the dataset and
// model locally, and free-runs the ASP step loop — pull, local gradient,
// (optionally compressed) push — entirely through the SocketTransport.  The
// per-slot RNG streams mirror the threaded runtime exactly (sampler stream
// w+1, codec stream num_workers+1+w off the root seed), so a worker process
// computes the same gradients a worker *thread* with the same slot would.
//
// After its step quota the worker announces quiescence (drain_arrive, which
// blocks until every alive worker has arrived) and leaves cleanly with Bye.
// Dying instead — kill -9, crash, `crash_after_steps` below — just closes
// the socket, which is precisely the signal the server's eviction path
// consumes.
#pragma once

#include <cstdint>
#include <string>

namespace ss {

struct WorkerProcessConfig {
  std::string endpoint;  ///< PsServer endpoint ("unix:<path>" or "tcp:<host>:<port>")
  /// Test hook: disconnect abruptly (no drain, no Bye) after this many
  /// steps; -1 = run the full quota.  Simulates a mid-run crash without
  /// needing an external kill.
  std::int64_t crash_after_steps = -1;
};

struct WorkerProcessResult {
  std::uint32_t worker = 0;      ///< slot assigned by the server
  std::int64_t steps = 0;        ///< local steps completed
  std::int64_t push_bytes = 0;   ///< wire bytes of gradient payloads
  double mean_staleness = 0.0;   ///< mean staleness over this worker's pushes
  bool drained = false;          ///< reached and was released from the drain barrier
};

/// Run one worker to completion (blocking).  Throws NetError if the server
/// is unreachable, rejects the handshake, or dies mid-run.
WorkerProcessResult run_worker_process(const WorkerProcessConfig& cfg);

}  // namespace ss
