#include "net/socket.h"

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/error.h"
#include "obs/obs.h"

namespace ss {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

// Wire-layer instrumentation handles, registered lazily on the first frame
// sent/received with observability enabled (send_frame/recv_frame guard on
// obs::enabled(), so an obs-off process never touches the registry).  Byte
// histograms count the full frame (header + payload) — the quantity the
// simulator's transfer_time pricing charges — so real wire-cost
// distributions diff directly against simulated ones.
struct WireMetrics {
  obs::Counter& frames_sent;
  obs::Counter& frames_received;
  obs::Counter& bytes_sent;
  obs::Counter& bytes_received;
  obs::Histogram& sent_frame_bytes;
  obs::Histogram& recv_frame_bytes;
  obs::Histogram& send_seconds;
  obs::Histogram& recv_seconds;
};

WireMetrics& wire_metrics() {
  static WireMetrics* m = [] {
    auto& reg = obs::metrics();
    const std::vector<double> byte_buckets{64,      256,     1024,     4096,    16384,
                                           65536,   262144,  1048576,  4194304, 16777216};
    const std::vector<double> time_buckets{1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.1, 1.0};
    return new WireMetrics{
        reg.counter("ss_net_frames_sent_total", "Frames written to a socket"),
        reg.counter("ss_net_frames_received_total", "Frames read from a socket"),
        reg.counter("ss_net_bytes_sent_total", "Frame bytes written (header + payload)"),
        reg.counter("ss_net_bytes_received_total", "Frame bytes read (header + payload)"),
        reg.histogram("ss_net_sent_frame_bytes", byte_buckets,
                      "Per-frame wire cost, send side (bytes)"),
        reg.histogram("ss_net_recv_frame_bytes", byte_buckets,
                      "Per-frame wire cost, receive side (bytes)"),
        reg.histogram("ss_net_send_frame_seconds", time_buckets,
                      "Blocking send time per frame (seconds)"),
        reg.histogram("ss_net_recv_frame_seconds", time_buckets,
                      "Payload receive time per frame (seconds; header wait excluded)"),
    };
  }();
  return *m;
}

/// Split "unix:<path>" / "tcp:<host>:<port>".  A bare path (contains '/')
/// is accepted as a Unix endpoint for convenience.
struct ParsedEndpoint {
  bool is_unix = true;
  std::string path;  // unix
  std::string host;  // tcp
  std::string port;  // tcp (string form for getaddrinfo)
};

ParsedEndpoint parse_endpoint(const std::string& endpoint) {
  ParsedEndpoint ep;
  if (endpoint.rfind("unix:", 0) == 0) {
    ep.path = endpoint.substr(5);
  } else if (endpoint.rfind("tcp:", 0) == 0) {
    ep.is_unix = false;
    const std::string rest = endpoint.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size())
      throw NetError("endpoint '" + endpoint + "': expected tcp:<host>:<port>");
    ep.host = rest.substr(0, colon);
    ep.port = rest.substr(colon + 1);
  } else if (endpoint.find('/') != std::string::npos) {
    ep.path = endpoint;
  } else {
    throw NetError("endpoint '" + endpoint +
                   "': expected unix:<path> or tcp:<host>:<port>");
  }
  if (ep.is_unix && ep.path.empty())
    throw NetError("endpoint '" + endpoint + "': empty unix path");
  if (ep.is_unix && ep.path.size() >= sizeof(sockaddr_un{}.sun_path))
    throw NetError("endpoint '" + endpoint + "': unix path too long");
  return ep;
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::send_all(const void* data, std::size_t n) {
  if (fd_ < 0) throw NetError("Socket::send_all: socket closed");
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the process.
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      throw_errno("Socket::send_all");
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
}

bool Socket::recv_all(void* data, std::size_t n, bool eof_ok) {
  if (fd_ < 0) throw NetError("Socket::recv_all: socket closed");
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("Socket::recv_all");
    }
    if (r == 0) {
      if (got == 0 && eof_ok) return false;
      throw NetError("Socket::recv_all: connection closed mid-message");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

void send_frame(Socket& sock, const Frame& frame) {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  if (!obs::enabled()) {
    sock.send_all(bytes.data(), bytes.size());
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  sock.send_all(bytes.data(), bytes.size());
  const auto t1 = std::chrono::steady_clock::now();
  WireMetrics& m = wire_metrics();
  const auto n = static_cast<std::int64_t>(bytes.size());
  m.frames_sent.add();
  m.bytes_sent.add(n);
  m.sent_frame_bytes.observe(static_cast<double>(n));
  m.send_seconds.observe(std::chrono::duration<double>(t1 - t0).count());
  if (obs::tracing()) {
    auto& tr = obs::tracer();
    tr.complete(obs::thread_track(), std::string("send ") + msg_type_name(frame.type),
                tr.to_us(t0), tr.to_us(t1) - tr.to_us(t0), {obs::arg("bytes", n)});
  }
}

bool recv_frame(Socket& sock, Frame& frame) {
  std::uint8_t header[kFrameHeaderBytes];
  if (!sock.recv_all(header, sizeof(header), /*eof_ok=*/true)) return false;
  const std::uint64_t payload_size =
      decode_frame_header(std::span<const std::uint8_t>(header, sizeof(header)), frame.type);
  frame.payload.resize(payload_size);
  if (!obs::enabled()) {
    if (payload_size > 0)
      (void)sock.recv_all(frame.payload.data(), payload_size, /*eof_ok=*/false);
    return true;
  }
  // The span clock starts after the header: header blocking time is mostly
  // idle wait for the peer to speak, not transfer cost.
  const auto t0 = std::chrono::steady_clock::now();
  if (payload_size > 0) (void)sock.recv_all(frame.payload.data(), payload_size, /*eof_ok=*/false);
  const auto t1 = std::chrono::steady_clock::now();
  WireMetrics& m = wire_metrics();
  const auto n = static_cast<std::int64_t>(kFrameHeaderBytes + payload_size);
  m.frames_received.add();
  m.bytes_received.add(n);
  m.recv_frame_bytes.observe(static_cast<double>(n));
  m.recv_seconds.observe(std::chrono::duration<double>(t1 - t0).count());
  if (obs::tracing()) {
    auto& tr = obs::tracer();
    tr.complete(obs::thread_track(), std::string("recv ") + msg_type_name(frame.type),
                tr.to_us(t0), tr.to_us(t1) - tr.to_us(t0), {obs::arg("bytes", n)});
  }
  return true;
}

Socket connect_endpoint(const std::string& endpoint) {
  const ParsedEndpoint ep = parse_endpoint(endpoint);
  if (ep.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("connect_endpoint: socket");
    Socket sock(fd);
    const sockaddr_un addr = make_unix_addr(ep.path);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
      throw_errno("connect_endpoint: connect " + endpoint);
    return sock;
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(ep.host.c_str(), ep.port.c_str(), &hints, &res);
  if (rc != 0)
    throw NetError("connect_endpoint: resolve " + endpoint + ": " + gai_strerror(rc));
  Socket sock;
  std::string last_error = "no addresses";
  for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last_error = std::strerror(errno);
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      sock = Socket(fd);
      break;
    }
    last_error = std::strerror(errno);
    ::close(fd);
  }
  ::freeaddrinfo(res);
  if (!sock.valid())
    throw NetError("connect_endpoint: connect " + endpoint + ": " + last_error);
  return sock;
}

Listener::~Listener() { close(); }

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      endpoint_(std::move(other.endpoint_)),
      unix_path_(std::move(other.unix_path_)) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    endpoint_ = std::move(other.endpoint_);
    unix_path_ = std::move(other.unix_path_);
  }
  return *this;
}

void Listener::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!unix_path_.empty()) {
    ::unlink(unix_path_.c_str());
    unix_path_.clear();
  }
}

Socket Listener::accept() {
  if (fd_ < 0) throw NetError("Listener::accept: listener closed");
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    throw_errno("Listener::accept");
  }
}

Listener listen_endpoint(const std::string& endpoint, int backlog) {
  const ParsedEndpoint ep = parse_endpoint(endpoint);
  Listener listener;
  if (ep.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("listen_endpoint: socket");
    listener.fd_ = fd;
    ::unlink(ep.path.c_str());  // stale socket file from a killed server
    const sockaddr_un addr = make_unix_addr(ep.path);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
      throw_errno("listen_endpoint: bind " + endpoint);
    listener.unix_path_ = ep.path;
    listener.endpoint_ = "unix:" + ep.path;
  } else {
    addrinfo hints{};
    hints.ai_family = AF_INET;  // deterministic endpoint() string form
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    addrinfo* res = nullptr;
    const int rc = ::getaddrinfo(ep.host.c_str(), ep.port.c_str(), &hints, &res);
    if (rc != 0)
      throw NetError("listen_endpoint: resolve " + endpoint + ": " + gai_strerror(rc));
    int fd = -1;
    for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
      fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
      if (fd < 0) continue;
      const int one = 1;
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
      ::close(fd);
      fd = -1;
    }
    ::freeaddrinfo(res);
    if (fd < 0) throw_errno("listen_endpoint: bind " + endpoint);
    listener.fd_ = fd;
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
      throw_errno("listen_endpoint: getsockname");
    listener.endpoint_ = "tcp:" + ep.host + ":" + std::to_string(ntohs(bound.sin_port));
  }
  if (::listen(listener.fd_, backlog) != 0) throw_errno("listen_endpoint: listen");
  return listener;
}

}  // namespace ss
