// The Transport seam: every worker <-> parameter-server interaction goes
// through this interface, so the same training loop runs against an
// in-address-space PS (threads) or a remote one (sockets, separate OS
// processes).
//
// The surface is exactly the SharedParameterServer contract the threaded
// runtime has always trained against (ps/threaded_runtime.h documents the
// version/staleness semantics in detail):
//
//  * `pull_with_versions` — copy the parameters and snapshot every shard's
//    version counter as it is copied (the exact staleness-accounting path).
//  * `push` / `push_compressed` — apply a dense gradient or a CompressedPush
//    against the versions observed at pull time; both return the push's
//    staleness (max updates any touched shard absorbed since the pull).
//  * `push_scalar` / `version` — the scalar compatibility API (min shard
//    version = count of complete updates; conservative under sparse pushes).
//  * `snapshot_checkpoint` / `restore_checkpoint` — the crash-recovery
//    hooks the elastic subsystem drives (checkpoint format v2).
//
// Backends:
//
//  * InProcTransport (net/inproc_transport.h) — a zero-cost forwarding shim
//    over SharedParameterServer.  The threaded runtime constructs one
//    internally, so its behaviour is bit-for-bit what it was before the
//    seam existed (the determinism and conformance suites pin this).
//  * SocketTransport (net/socket_transport.h) — the same calls serialized
//    as length-prefixed binary frames (net/frame.h) over a Unix-domain or
//    TCP socket to a PsServer hosting the shards in another OS process.
//
// Thread-safety is a property of the backend, not the interface:
// InProcTransport inherits SharedParameterServer's per-shard locking and is
// safe to share across worker threads; SocketTransport multiplexes one
// socket and is single-worker (one transport per worker process).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/compressed_push.h"
#include "nn/checkpoint.h"

namespace ss {

class Transport {
 public:
  virtual ~Transport() = default;

  [[nodiscard]] virtual std::size_t num_params() const = 0;
  [[nodiscard]] virtual std::size_t num_shards() const = 0;

  /// Copy the current parameters into `out` (sized num_params).
  virtual void pull(std::span<float> out) = 0;

  /// Pull + snapshot the per-shard version vector (resized to num_shards).
  virtual void pull_with_versions(std::span<float> out,
                                  std::vector<std::int64_t>& versions) = 0;

  /// Apply a full dense gradient; returns the push's staleness measured
  /// against `pull_versions` (one entry per shard).
  virtual std::int64_t push(std::span<const float> grad, double lr,
                            std::span<const std::int64_t> pull_versions) = 0;

  /// Apply a compressed push (dense quantized or sparse top-k); sparse
  /// pushes touch — and measure staleness over — only the shards owning
  /// kept coordinates.
  virtual std::int64_t push_compressed(const CompressedPush& push, double lr,
                                       std::span<const std::int64_t> pull_versions) = 0;

  /// Scalar compatibility push (staleness against one pulled version; see
  /// SharedParameterServer::push overloads for the conservative contract).
  virtual std::int64_t push_scalar(std::span<const float> grad, double lr,
                                   std::int64_t pull_version) = 0;

  /// Count of complete updates: the minimum shard version.
  [[nodiscard]] virtual std::int64_t version() = 0;

  /// Consistent copy-on-read snapshot of the PS state as a format-v2
  /// checkpoint; `logical_step` lands in Checkpoint::global_step.
  [[nodiscard]] virtual Checkpoint snapshot_checkpoint(std::int64_t logical_step) = 0;

  /// Restore params + velocity from `ckpt` (versions never roll back).
  virtual void restore_checkpoint(const Checkpoint& ckpt) = 0;
};

}  // namespace ss
