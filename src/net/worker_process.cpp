#include "net/worker_process.h"

#include <chrono>
#include <optional>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "common/rng.h"
#include "compress/bank.h"
#include "data/batcher.h"
#include "data/synthetic.h"
#include "net/socket_transport.h"
#include "nn/zoo.h"
#include "obs/obs.h"

namespace ss {

WorkerProcessResult run_worker_process(const WorkerProcessConfig& cfg) {
  AssignmentMsg a;
  SocketTransport tx(cfg.endpoint, a);
  const auto w = static_cast<std::size_t>(a.worker);
  const bool obs_on = obs::enabled();
  obs::Counter* m_steps = nullptr;
  if (obs_on) {
    m_steps = &obs::metrics().counter("ss_worker_steps_total",
                                      "Pull->gradient->push cycles completed");
    if (obs::tracing())
      obs::tracer().set_track_name(static_cast<int>(w) + 1,
                                   "worker " + std::to_string(w));
    obs::set_thread_track(static_cast<int>(w) + 1);
  }
  log_info("worker ", a.worker, ": joined ", cfg.endpoint, " (", a.num_params,
           " params, quota ", a.steps_per_worker, " steps)");

  // Rebuild the run's inputs from the assignment alone.  The model is built
  // with the same seed the server used, though only its shape matters:
  // gradient_at computes at the pulled parameters, not the local ones.
  const DataSplit split = make_synthetic(a.data);
  Rng model_rng(a.seed);
  Model model = make_model(a.arch, split.train.feature_dim(), a.data.num_classes, model_rng);
  if (model.num_params() != a.num_params)
    throw NetError("worker: model has " + std::to_string(model.num_params()) +
                   " params but the server assigned " + std::to_string(a.num_params));

  // Per-slot RNG streams, identical to the threaded runtime's initial slots.
  Rng root(a.seed);
  const auto shards = make_shards(split.train.size(), a.num_workers);
  MinibatchSampler sampler(shards[w % shards.size()], a.batch_size, root.fork(w + 1));
  Rng codec_rng = root.fork(a.num_workers + 1 + w);
  std::optional<CompressorBank> bank = a.compression.make_bank(a.num_workers);

  Tensor batch_x({a.batch_size, split.train.feature_dim()});
  std::vector<int> batch_y;
  std::vector<float> snapshot(a.num_params);
  std::vector<float> grad(a.num_params);
  std::vector<std::int64_t> pull_versions;
  std::vector<std::uint32_t> indices;
  const auto dense_bytes = static_cast<std::int64_t>(a.num_params * sizeof(float));

  WorkerProcessResult result;
  result.worker = a.worker;
  std::int64_t staleness_sum = 0;
  for (std::int64_t step = 0; step < a.steps_per_worker; ++step) {
    if (step == cfg.crash_after_steps) {
      log_warn("worker ", a.worker, ": simulated crash after ", step, " steps");
      return result;  // transport destructor closes the socket abruptly
    }
    const auto step_start = obs_on ? std::chrono::steady_clock::now()
                                   : std::chrono::steady_clock::time_point{};
    tx.pull_with_versions(snapshot, pull_versions);
    sampler.next_batch(indices);
    split.train.gather(indices, batch_x, batch_y);
    model.gradient_at(snapshot, batch_x, batch_y, grad);
    if (bank) {
      const CompressedPush push = bank->encode(static_cast<int>(w), grad, codec_rng);
      result.push_bytes += static_cast<std::int64_t>(push.wire_size);
      staleness_sum += tx.push_compressed(push, a.lr, pull_versions);
    } else {
      result.push_bytes += dense_bytes;
      staleness_sum += tx.push(grad, a.lr, pull_versions);
    }
    ++result.steps;
    if (obs_on) {
      m_steps->add();
      if (obs::tracing()) {
        auto& tr = obs::tracer();
        const auto t1 = std::chrono::steady_clock::now();
        tr.complete(static_cast<int>(w) + 1, "step", tr.to_us(step_start),
                    tr.to_us(t1) - tr.to_us(step_start), {obs::arg("step", step)});
      }
    }
  }
  if (result.steps > 0)
    result.mean_staleness = static_cast<double>(staleness_sum) / static_cast<double>(result.steps);

  result.drained = tx.drain_arrive(result.steps);
  tx.bye();
  log_info("worker ", a.worker, ": drained after ", result.steps, " steps");
  return result;
}

}  // namespace ss
