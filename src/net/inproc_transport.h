// In-process Transport backend: a zero-copy forwarding shim over
// SharedParameterServer.
//
// This is the backend the threaded runtime constructs internally.  Every
// method is a one-line forward to the facade's identically-named call (the
// scalar push maps to the scalar `push` overload), so routing the runtime
// through the seam changes nothing observable — the determinism and
// conformance suites hold it to the pre-seam behaviour bit for bit, exactly
// as ShardApplyPool was held to serial apply.
//
// The shim borrows the server; the owner (threaded_train, PsServer) keeps
// it alive for the transport's lifetime.  Thread-safety is inherited from
// SharedParameterServer's per-shard locking.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/transport.h"
#include "ps/threaded_runtime.h"

namespace ss {

class InProcTransport final : public Transport {
 public:
  explicit InProcTransport(SharedParameterServer& ps) : ps_(ps) {}

  [[nodiscard]] std::size_t num_params() const override { return ps_.num_params(); }
  [[nodiscard]] std::size_t num_shards() const override { return ps_.num_shards(); }

  void pull(std::span<float> out) override { ps_.pull(out); }

  void pull_with_versions(std::span<float> out,
                          std::vector<std::int64_t>& versions) override {
    ps_.pull_with_versions(out, versions);
  }

  std::int64_t push(std::span<const float> grad, double lr,
                    std::span<const std::int64_t> pull_versions) override {
    return ps_.push(grad, lr, pull_versions);
  }

  std::int64_t push_compressed(const CompressedPush& push, double lr,
                               std::span<const std::int64_t> pull_versions) override {
    return ps_.push_compressed(push, lr, pull_versions);
  }

  std::int64_t push_scalar(std::span<const float> grad, double lr,
                           std::int64_t pull_version) override {
    return ps_.push(grad, lr, pull_version);
  }

  [[nodiscard]] std::int64_t version() override { return ps_.version(); }

  [[nodiscard]] Checkpoint snapshot_checkpoint(std::int64_t logical_step) override {
    return ps_.snapshot_checkpoint(logical_step);
  }

  void restore_checkpoint(const Checkpoint& ckpt) override { ps_.restore_checkpoint(ckpt); }

 private:
  SharedParameterServer& ps_;
};

}  // namespace ss
