#include "net/frame.h"

#include <cstring>
#include <type_traits>

#include "common/error.h"

namespace ss {

namespace {

/// Append-only little-endian payload writer (the checkpoint codec's `put`
/// idiom, shared by every message encoder).
class Writer {
 public:
  void raw(const void* src, std::size_t n) {
    if (n == 0) return;  // empty vectors hand over a null data()
    const auto* p = static_cast<const std::uint8_t*>(src);
    buf_.insert(buf_.end(), p, p + n);
  }
  template <typename T>
  void scalar(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    raw(&v, sizeof(v));
  }
  template <typename T>
  void vec(const std::vector<T>& v) {
    scalar(static_cast<std::uint64_t>(v.size()));
    raw(v.data(), v.size() * sizeof(T));
  }
  [[nodiscard]] std::vector<std::uint8_t> take() && { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Strictly-validating payload reader: every read is bounds-checked, vector
/// counts are validated against the bytes actually present before resizing,
/// and `done()` rejects trailing bytes — a frame must decode exactly.
class Reader {
 public:
  Reader(std::span<const std::uint8_t> bytes, const char* what)
      : p_(bytes.data()), remaining_(bytes.size()), what_(what) {}

  void raw(void* dst, std::size_t n) {
    if (remaining_ < n) throw NetError(std::string(what_) + ": truncated payload");
    if (n == 0) return;
    std::memcpy(dst, p_, n);
    p_ += n;
    remaining_ -= n;
  }
  template <typename T>
  T scalar() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    raw(&v, sizeof(v));
    return v;
  }
  template <typename T>
  void vec(std::vector<T>& out) {
    const auto count = scalar<std::uint64_t>();
    if (count > remaining_ / sizeof(T))
      throw NetError(std::string(what_) + ": truncated payload");
    out.resize(count);
    raw(out.data(), count * sizeof(T));
  }
  void done() const {
    if (remaining_ != 0) throw NetError(std::string(what_) + ": trailing bytes");
  }

 private:
  const std::uint8_t* p_;
  std::size_t remaining_;
  const char* what_;
};

bool known_type(std::uint16_t t) {
  return t >= static_cast<std::uint16_t>(MsgType::kHello) &&
         t <= static_cast<std::uint16_t>(MsgType::kError);
}

Frame finish(MsgType type, Writer&& w) { return Frame{type, std::move(w).take()}; }

}  // namespace

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  Writer w;
  w.scalar(kFrameMagic);
  w.scalar(kFrameVersion);
  w.scalar(static_cast<std::uint16_t>(frame.type));
  w.scalar(static_cast<std::uint64_t>(frame.payload.size()));
  w.raw(frame.payload.data(), frame.payload.size());
  return std::move(w).take();
}

std::uint64_t decode_frame_header(std::span<const std::uint8_t> header, MsgType& type) {
  if (header.size() != kFrameHeaderBytes) throw NetError("Frame: truncated header");
  Reader r(header, "Frame header");
  if (r.scalar<std::uint32_t>() != kFrameMagic) throw NetError("Frame: bad magic");
  const auto version = r.scalar<std::uint16_t>();
  if (version != kFrameVersion)
    throw NetError("Frame: unsupported protocol version " + std::to_string(version));
  const auto raw_type = r.scalar<std::uint16_t>();
  if (!known_type(raw_type))
    throw NetError("Frame: unknown message type " + std::to_string(raw_type));
  type = static_cast<MsgType>(raw_type);
  const auto payload_size = r.scalar<std::uint64_t>();
  if (payload_size > kMaxFramePayload)
    throw NetError("Frame: payload length " + std::to_string(payload_size) +
                   " exceeds the " + std::to_string(kMaxFramePayload) + "-byte cap");
  return payload_size;
}

Frame decode_frame(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kFrameHeaderBytes) throw NetError("Frame: truncated header");
  Frame frame;
  const std::uint64_t payload_size =
      decode_frame_header(bytes.first(kFrameHeaderBytes), frame.type);
  const std::span<const std::uint8_t> payload = bytes.subspan(kFrameHeaderBytes);
  if (payload.size() != payload_size)
    throw NetError(payload.size() < payload_size ? "Frame: truncated payload"
                                                 : "Frame: trailing bytes");
  frame.payload.assign(payload.begin(), payload.end());
  return frame;
}

Frame make_empty_frame(MsgType type) { return Frame{type, {}}; }

const char* msg_type_name(MsgType type) noexcept {
  switch (type) {
    case MsgType::kHello: return "Hello";
    case MsgType::kAssignment: return "Assignment";
    case MsgType::kPull: return "Pull";
    case MsgType::kPullReply: return "PullReply";
    case MsgType::kPushDense: return "PushDense";
    case MsgType::kPushCompressed: return "PushCompressed";
    case MsgType::kPushReply: return "PushReply";
    case MsgType::kDrainArrive: return "DrainArrive";
    case MsgType::kDrainRelease: return "DrainRelease";
    case MsgType::kCheckpointRequest: return "CheckpointRequest";
    case MsgType::kCheckpointReply: return "CheckpointReply";
    case MsgType::kRestoreRequest: return "RestoreRequest";
    case MsgType::kVersionRequest: return "VersionRequest";
    case MsgType::kVersionReply: return "VersionReply";
    case MsgType::kOk: return "Ok";
    case MsgType::kBye: return "Bye";
    case MsgType::kError: return "Error";
  }
  return "Unknown";
}

// ------------------------------------------------------------------ Hello

Frame HelloMsg::encode() const {
  Writer w;
  w.scalar(protocol_version);
  return finish(MsgType::kHello, std::move(w));
}

HelloMsg HelloMsg::decode(std::span<const std::uint8_t> payload) {
  Reader r(payload, "Hello");
  HelloMsg m;
  m.protocol_version = r.scalar<std::uint16_t>();
  r.done();
  return m;
}

// ------------------------------------------------------------- Assignment

Frame AssignmentMsg::encode() const {
  Writer w;
  w.scalar(worker);
  w.scalar(num_workers);
  w.scalar(num_params);
  w.scalar(num_shards);
  w.scalar(steps_per_worker);
  w.scalar(batch_size);
  w.scalar(lr);
  w.scalar(momentum);
  w.scalar(seed);
  w.scalar(static_cast<std::uint8_t>(arch));
  w.scalar(static_cast<std::uint8_t>(compression.kind));
  w.scalar(compression.topk_fraction);
  w.scalar(static_cast<std::int32_t>(compression.qsgd_levels));
  w.scalar(compression.terngrad_clip_sigma);
  w.scalar(static_cast<std::int32_t>(data.num_classes));
  w.scalar(static_cast<std::uint64_t>(data.feature_dim));
  w.scalar(static_cast<std::uint64_t>(data.train_size));
  w.scalar(static_cast<std::uint64_t>(data.test_size));
  w.scalar(static_cast<std::int32_t>(data.modes_per_class));
  w.scalar(data.class_separation);
  w.scalar(data.within_stddev);
  w.scalar(data.label_noise);
  w.scalar(data.seed);
  return finish(MsgType::kAssignment, std::move(w));
}

AssignmentMsg AssignmentMsg::decode(std::span<const std::uint8_t> payload) {
  Reader r(payload, "Assignment");
  AssignmentMsg m;
  m.worker = r.scalar<std::uint32_t>();
  m.num_workers = r.scalar<std::uint64_t>();
  m.num_params = r.scalar<std::uint64_t>();
  m.num_shards = r.scalar<std::uint64_t>();
  m.steps_per_worker = r.scalar<std::int64_t>();
  m.batch_size = r.scalar<std::uint64_t>();
  m.lr = r.scalar<double>();
  m.momentum = r.scalar<double>();
  m.seed = r.scalar<std::uint64_t>();
  const auto arch = r.scalar<std::uint8_t>();
  if (arch > static_cast<std::uint8_t>(ModelArch::kResNet50BnLite))
    throw NetError("Assignment: unknown model arch " + std::to_string(arch));
  m.arch = static_cast<ModelArch>(arch);
  const auto codec = r.scalar<std::uint8_t>();
  if (codec > static_cast<std::uint8_t>(CodecKind::kQsgd))
    throw NetError("Assignment: unknown codec kind " + std::to_string(codec));
  m.compression.kind = static_cast<CodecKind>(codec);
  m.compression.topk_fraction = r.scalar<double>();
  m.compression.qsgd_levels = r.scalar<std::int32_t>();
  m.compression.terngrad_clip_sigma = r.scalar<double>();
  m.data.num_classes = r.scalar<std::int32_t>();
  m.data.feature_dim = r.scalar<std::uint64_t>();
  m.data.train_size = r.scalar<std::uint64_t>();
  m.data.test_size = r.scalar<std::uint64_t>();
  m.data.modes_per_class = r.scalar<std::int32_t>();
  m.data.class_separation = r.scalar<double>();
  m.data.within_stddev = r.scalar<double>();
  m.data.label_noise = r.scalar<double>();
  m.data.seed = r.scalar<std::uint64_t>();
  r.done();
  if (m.worker >= m.num_workers)
    throw NetError("Assignment: worker slot out of range");
  return m;
}

// -------------------------------------------------------------- PullReply

Frame PullReplyMsg::encode() const {
  Writer w;
  w.vec(versions);
  w.vec(params);
  return finish(MsgType::kPullReply, std::move(w));
}

PullReplyMsg PullReplyMsg::decode(std::span<const std::uint8_t> payload) {
  Reader r(payload, "PullReply");
  PullReplyMsg m;
  r.vec(m.versions);
  r.vec(m.params);
  r.done();
  if (m.versions.empty()) throw NetError("PullReply: empty version vector");
  return m;
}

// -------------------------------------------------------------- PushDense

Frame PushDenseMsg::encode() const {
  Writer w;
  w.scalar(lr);
  w.vec(pull_versions);
  w.vec(grad);
  return finish(MsgType::kPushDense, std::move(w));
}

PushDenseMsg PushDenseMsg::decode(std::span<const std::uint8_t> payload) {
  Reader r(payload, "PushDense");
  PushDenseMsg m;
  m.lr = r.scalar<double>();
  r.vec(m.pull_versions);
  r.vec(m.grad);
  r.done();
  if (m.pull_versions.empty()) throw NetError("PushDense: empty version vector");
  return m;
}

// --------------------------------------------------------- PushCompressed

Frame PushCompressedMsg::encode() const {
  Writer w;
  w.scalar(lr);
  w.vec(pull_versions);
  w.scalar(static_cast<std::uint8_t>(push.format));
  w.scalar(static_cast<std::uint64_t>(push.num_params));
  w.scalar(static_cast<std::uint64_t>(push.wire_size));
  w.vec(push.values);
  w.vec(push.indices);
  return finish(MsgType::kPushCompressed, std::move(w));
}

PushCompressedMsg PushCompressedMsg::decode(std::span<const std::uint8_t> payload) {
  Reader r(payload, "PushCompressed");
  PushCompressedMsg m;
  m.lr = r.scalar<double>();
  r.vec(m.pull_versions);
  const auto format = r.scalar<std::uint8_t>();
  if (format > static_cast<std::uint8_t>(CompressedPush::Format::kSparse))
    throw NetError("PushCompressed: unknown push format " + std::to_string(format));
  m.push.format = static_cast<CompressedPush::Format>(format);
  m.push.num_params = r.scalar<std::uint64_t>();
  m.push.wire_size = r.scalar<std::uint64_t>();
  r.vec(m.push.values);
  r.vec(m.push.indices);
  r.done();
  if (m.pull_versions.empty()) throw NetError("PushCompressed: empty version vector");
  // Re-validate the push invariants at the trust boundary, converting the
  // library's ConfigError into the transport's typed error: a corrupt frame
  // must never reach the PS apply path (whose ascending-index walk is what
  // the per-shard deadlock-freedom argument rests on).
  try {
    m.push.validate(m.push.num_params);
  } catch (const ConfigError& e) {
    throw NetError(std::string("PushCompressed: ") + e.what());
  }
  return m;
}

// --------------------------------------------------------------- replies

Frame PushReplyMsg::encode() const {
  Writer w;
  w.scalar(staleness);
  return finish(MsgType::kPushReply, std::move(w));
}

PushReplyMsg PushReplyMsg::decode(std::span<const std::uint8_t> payload) {
  Reader r(payload, "PushReply");
  PushReplyMsg m;
  m.staleness = r.scalar<std::int64_t>();
  r.done();
  return m;
}

Frame DrainArriveMsg::encode() const {
  Writer w;
  w.scalar(local_steps);
  return finish(MsgType::kDrainArrive, std::move(w));
}

DrainArriveMsg DrainArriveMsg::decode(std::span<const std::uint8_t> payload) {
  Reader r(payload, "DrainArrive");
  DrainArriveMsg m;
  m.local_steps = r.scalar<std::int64_t>();
  r.done();
  return m;
}

Frame DrainReleaseMsg::encode() const {
  Writer w;
  w.scalar(static_cast<std::uint8_t>(done ? 1 : 0));
  return finish(MsgType::kDrainRelease, std::move(w));
}

DrainReleaseMsg DrainReleaseMsg::decode(std::span<const std::uint8_t> payload) {
  Reader r(payload, "DrainRelease");
  DrainReleaseMsg m;
  m.done = r.scalar<std::uint8_t>() != 0;
  r.done();
  return m;
}

Frame CheckpointRequestMsg::encode() const {
  Writer w;
  w.scalar(logical_step);
  return finish(MsgType::kCheckpointRequest, std::move(w));
}

CheckpointRequestMsg CheckpointRequestMsg::decode(std::span<const std::uint8_t> payload) {
  Reader r(payload, "CheckpointRequest");
  CheckpointRequestMsg m;
  m.logical_step = r.scalar<std::int64_t>();
  r.done();
  return m;
}

Frame VersionReplyMsg::encode() const {
  Writer w;
  w.scalar(version);
  return finish(MsgType::kVersionReply, std::move(w));
}

VersionReplyMsg VersionReplyMsg::decode(std::span<const std::uint8_t> payload) {
  Reader r(payload, "VersionReply");
  VersionReplyMsg m;
  m.version = r.scalar<std::int64_t>();
  r.done();
  return m;
}

Frame ErrorMsg::encode() const {
  Writer w;
  w.scalar(static_cast<std::uint64_t>(message.size()));
  w.raw(message.data(), message.size());
  return finish(MsgType::kError, std::move(w));
}

ErrorMsg ErrorMsg::decode(std::span<const std::uint8_t> payload) {
  Reader r(payload, "Error");
  ErrorMsg m;
  const auto n = r.scalar<std::uint64_t>();
  if (n > payload.size()) throw NetError("Error: truncated payload");
  m.message.resize(n);
  r.raw(m.message.data(), n);
  r.done();
  return m;
}

}  // namespace ss
