#include "net/socket_transport.h"

#include <algorithm>

#include "common/error.h"

namespace ss {

SocketTransport::SocketTransport(const std::string& endpoint, AssignmentMsg& assignment)
    : sock_(connect_endpoint(endpoint)) {
  assignment = handshake();
}

SocketTransport::SocketTransport(Socket sock, AssignmentMsg& assignment)
    : sock_(std::move(sock)) {
  assignment = handshake();
}

AssignmentMsg SocketTransport::handshake() {
  const Frame reply = rpc(HelloMsg{}.encode(), MsgType::kAssignment);
  const AssignmentMsg assignment = AssignmentMsg::decode(reply.payload);
  num_params_ = assignment.num_params;
  num_shards_ = assignment.num_shards;
  return assignment;
}

Frame SocketTransport::rpc(const Frame& request, MsgType expected) {
  send_frame(sock_, request);
  Frame reply;
  if (!recv_frame(sock_, reply))
    throw NetError("SocketTransport: server closed the connection");
  if (reply.type == MsgType::kError)
    throw NetError("ps_server: " + ErrorMsg::decode(reply.payload).message);
  if (reply.type != expected)
    throw NetError("SocketTransport: unexpected reply type " +
                   std::to_string(static_cast<std::uint16_t>(reply.type)));
  return reply;
}

void SocketTransport::pull(std::span<float> out) {
  std::vector<std::int64_t> versions;
  pull_with_versions(out, versions);
}

void SocketTransport::pull_with_versions(std::span<float> out,
                                         std::vector<std::int64_t>& versions) {
  const Frame reply = rpc(make_empty_frame(MsgType::kPull), MsgType::kPullReply);
  PullReplyMsg msg = PullReplyMsg::decode(reply.payload);
  if (msg.params.size() != out.size() || msg.versions.size() != num_shards_)
    throw NetError("SocketTransport::pull: reply shape mismatch");
  std::copy(msg.params.begin(), msg.params.end(), out.begin());
  versions = std::move(msg.versions);
}

std::int64_t SocketTransport::push(std::span<const float> grad, double lr,
                                   std::span<const std::int64_t> pull_versions) {
  PushDenseMsg msg;
  msg.lr = lr;
  msg.pull_versions.assign(pull_versions.begin(), pull_versions.end());
  msg.grad.assign(grad.begin(), grad.end());
  const Frame reply = rpc(msg.encode(), MsgType::kPushReply);
  return PushReplyMsg::decode(reply.payload).staleness;
}

std::int64_t SocketTransport::push_compressed(const CompressedPush& push, double lr,
                                              std::span<const std::int64_t> pull_versions) {
  PushCompressedMsg msg;
  msg.lr = lr;
  msg.pull_versions.assign(pull_versions.begin(), pull_versions.end());
  msg.push = push;
  const Frame reply = rpc(msg.encode(), MsgType::kPushReply);
  return PushReplyMsg::decode(reply.payload).staleness;
}

std::int64_t SocketTransport::push_scalar(std::span<const float> grad, double lr,
                                          std::int64_t pull_version) {
  // The scalar compatibility push is a dense push against a flattened
  // version vector (the same collapse SharedParameterServer applies).
  const std::vector<std::int64_t> versions(num_shards_, pull_version);
  return push(grad, lr, versions);
}

std::int64_t SocketTransport::version() {
  const Frame reply = rpc(make_empty_frame(MsgType::kVersionRequest), MsgType::kVersionReply);
  return VersionReplyMsg::decode(reply.payload).version;
}

Checkpoint SocketTransport::snapshot_checkpoint(std::int64_t logical_step) {
  CheckpointRequestMsg msg;
  msg.logical_step = logical_step;
  const Frame reply = rpc(msg.encode(), MsgType::kCheckpointReply);
  return Checkpoint::deserialize(reply.payload);
}

void SocketTransport::restore_checkpoint(const Checkpoint& ckpt) {
  Frame request;
  request.type = MsgType::kRestoreRequest;
  request.payload = ckpt.serialize();
  (void)rpc(request, MsgType::kOk);
}

bool SocketTransport::drain_arrive(std::int64_t local_steps) {
  DrainArriveMsg msg;
  msg.local_steps = local_steps;
  const Frame reply = rpc(msg.encode(), MsgType::kDrainRelease);
  return DrainReleaseMsg::decode(reply.payload).done;
}

void SocketTransport::bye() {
  send_frame(sock_, make_empty_frame(MsgType::kBye));
  sock_.close();
}

}  // namespace ss
