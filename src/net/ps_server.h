// PsServer: host the sharded parameter server in its own OS process.
//
// `run_ps_server` owns the whole run: it builds the model + initial
// parameters from the seed, listens on the endpoint, assigns slots to the
// first `num_workers` connections (shipping each the full run configuration
// — the server owns the config, workers only know where to connect), and
// serves pull/push/drain/checkpoint frames from one session thread per
// connection against a SharedParameterServer.  The deployed protocol is
// ASP: workers free-run their step quota and quiesce at one final drain
// barrier (the in-process runtime remains the reference for BSP/SSP and
// live switching).
//
// Fault tolerance is PR 5's crash path made real: an AsyncSnapshotter takes
// copy-on-read checkpoints on an update cadence, and when a worker's socket
// dies mid-run (kill -9, OOM, network partition — anything that closes the
// fd) the server evicts the slot, restores the latest snapshot
// (RecoveryMode::kRestoreSnapshot semantics: updates since the snapshot are
// lost, versions never roll back), recomputes the drain barrier over the
// survivors, and the run continues.  A worker dying at the barrier is
// caught on the release send instead.  The run ends when every alive worker
// has drained (or every worker died); the server then evaluates final
// accuracy on the test split and returns.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "compress/spec.h"
#include "data/synthetic.h"
#include "nn/zoo.h"

namespace ss {

struct PsServerConfig {
  std::string listen = "unix:/tmp/sync_switch_ps.sock";
  std::size_t num_workers = 2;
  std::int64_t steps_per_worker = 100;
  std::size_t batch_size = 32;
  double lr = 0.05;
  double momentum = 0.9;
  std::uint64_t seed = 99;
  std::size_t num_ps_shards = 1;
  /// PS updates between asynchronous snapshots; 0 = run-start snapshot only
  /// (recovery still has a floor, the loss window is just the whole run).
  std::int64_t snapshot_interval = 0;
  ModelArch arch = ModelArch::kLinear;
  SyntheticSpec data;           ///< workers regenerate the same split
  CompressionSpec compression;  ///< encoded worker-side; wire carries CompressedPush
  /// Observability: when > 0 (and obs::enabled()), the server logs a compact
  /// metrics line every this-many seconds while the run is live, plus one
  /// final line at exit.  0 = off.
  double metrics_period_seconds = 0.0;
  /// Invoked with the concrete endpoint once the server is listening (tcp
  /// port 0 resolved) — tests and scripts use it to know when to connect.
  std::function<void(const std::string&)> on_listening;
};

struct PsServerResult {
  std::int64_t total_updates = 0;    ///< pushes applied (incl. rolled-back ones)
  std::size_t workers_joined = 0;
  std::size_t workers_evicted = 0;   ///< slots lost to a dead connection
  std::int64_t snapshots_restored = 0;
  std::int64_t updates_lost = 0;     ///< rolled back across all restores
  double final_accuracy = 0.0;       ///< on the test split, server-side
  std::vector<float> final_params;
};

/// Run one full serve cycle (blocking).  Throws ConfigError on a bad
/// config, NetError if the endpoint cannot be bound.
PsServerResult run_ps_server(const PsServerConfig& cfg);

}  // namespace ss
