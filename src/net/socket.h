// Thin POSIX socket layer for the multi-process deployment.
//
// Endpoints are strings so the CLI, tests, and docs all speak one format:
//
//   unix:/path/to/ps.sock   Unix-domain stream socket (the default for
//                           single-host deployments and the CI smoke test)
//   tcp:host:port           TCP; port 0 binds an ephemeral port and
//                           Listener::endpoint() reports the concrete one
//
// `Socket` is a movable RAII fd with loop-until-complete send/recv (EINTR
// retried, SIGPIPE suppressed); failures throw NetError.  A peer closing
// the connection surfaces as `recv_frame` returning false when the EOF
// lands exactly on a frame boundary — the clean-shutdown signal the PS
// server's eviction logic keys off — and as a NetError mid-frame.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/frame.h"

namespace ss {

class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Send exactly `n` bytes (retries short writes and EINTR).
  void send_all(const void* data, std::size_t n);

  /// Receive exactly `n` bytes.  Returns false iff the peer closed the
  /// connection before the first byte and `eof_ok` is set; any other
  /// shortfall throws NetError.
  [[nodiscard]] bool recv_all(void* data, std::size_t n, bool eof_ok);

  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Write one frame to the socket.
void send_frame(Socket& sock, const Frame& frame);

/// Read one frame.  Returns false on a clean EOF at a frame boundary;
/// throws NetError on a malformed header, an oversized payload, or a
/// connection lost mid-frame.
[[nodiscard]] bool recv_frame(Socket& sock, Frame& frame);

/// Connect to `endpoint` ("unix:<path>" or "tcp:<host>:<port>").
[[nodiscard]] Socket connect_endpoint(const std::string& endpoint);

/// Listening socket bound to an endpoint.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Block until a client connects.
  [[nodiscard]] Socket accept();

  /// The concrete endpoint string (tcp port 0 resolved to the bound port);
  /// what a worker passes to connect_endpoint.
  [[nodiscard]] const std::string& endpoint() const noexcept { return endpoint_; }

  void close() noexcept;

 private:
  friend Listener listen_endpoint(const std::string&, int);
  int fd_ = -1;
  std::string endpoint_;
  std::string unix_path_;  ///< unlinked on close
};

/// Bind + listen on `endpoint`.  A pre-existing Unix socket path is
/// replaced (stale file from a killed server).
[[nodiscard]] Listener listen_endpoint(const std::string& endpoint, int backlog = 16);

}  // namespace ss
