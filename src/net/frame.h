// Length-prefixed binary frame codec for the socket transport.
//
// Every worker <-> PS-server message is one frame:
//
//   [u32 magic "SSFR"][u16 version][u16 type][u64 payload_bytes][payload]
//
// all little-endian, payload layouts per message type below.  The codec is
// strictly validating: a malformed frame (bad magic, unknown version or
// type, length past the sanity cap, truncated or over-long payload, sparse
// indices out of range or out of order) decodes to a typed NetError — never
// a crash, never a silently-wrong message (mirroring the trace-parser's
// error contract in scenario/trace_replay.h).
//
// Payload conventions: integers are fixed-width little-endian, doubles are
// 8-byte IEEE bit patterns, vectors are [u64 count][elements].  Checkpoints
// travel as their existing format-v2 serialization (nn/checkpoint.h), and
// compressed pushes re-use CompressedPush's field set verbatim — the wire
// object the codecs were designed around finally crosses a real wire.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "compress/compressed_push.h"
#include "compress/spec.h"
#include "data/synthetic.h"
#include "nn/zoo.h"

namespace ss {

inline constexpr std::uint32_t kFrameMagic = 0x53534652;  // "SSFR"
inline constexpr std::uint16_t kFrameVersion = 1;
/// Sanity cap on a frame payload.  Large enough for a checkpoint of a
/// 100M-parameter model (params + velocity + headers), small enough that a
/// corrupt length field fails fast instead of driving a gigabyte resize.
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

/// Wire message types.  Values are part of the protocol; append only.
enum class MsgType : std::uint16_t {
  kHello = 1,        ///< worker -> ps: join the run
  kAssignment = 2,   ///< ps -> worker: slot + the full run configuration
  kPull = 3,         ///< worker -> ps: request params + version vector
  kPullReply = 4,    ///< ps -> worker: per-shard versions + parameters
  kPushDense = 5,    ///< worker -> ps: uncompressed full gradient
  kPushCompressed = 6,  ///< worker -> ps: CompressedPush (dense or sparse)
  kPushReply = 7,    ///< ps -> worker: staleness of the applied push
  kDrainArrive = 8,  ///< worker -> ps: quiesced at the drain barrier
  kDrainRelease = 9, ///< ps -> worker: barrier complete; continue or done
  kCheckpointRequest = 10,  ///< -> ps: capture a consistent snapshot
  kCheckpointReply = 11,    ///< ps ->: serialized format-v2 checkpoint
  kRestoreRequest = 12,     ///< -> ps: restore from a serialized checkpoint
  kVersionRequest = 13,     ///< -> ps: scalar version query
  kVersionReply = 14,       ///< ps ->: min shard version
  kOk = 15,          ///< generic success acknowledgement
  kBye = 16,         ///< worker -> ps: clean leave (after drain release)
  kError = 17,       ///< ps -> worker: request failed; payload = message
};

/// Human-readable message-type name ("PushDense", "DrainArrive", ...);
/// "Unknown" for values outside the enum.  For logs and trace span labels.
[[nodiscard]] const char* msg_type_name(MsgType type) noexcept;

/// One decoded frame: the type tag plus its raw payload bytes.
struct Frame {
  MsgType type = MsgType::kError;
  std::vector<std::uint8_t> payload;
};

/// Frame envelope: header + payload bytes ready for the socket.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Parse a complete frame buffer (header + payload).  Throws NetError on
/// any malformation.  The socket layer reads the header and payload
/// separately (net/socket.h) but validates through the same checks.
[[nodiscard]] Frame decode_frame(std::span<const std::uint8_t> bytes);

/// Validate a frame header; returns the payload size.  Throws NetError on
/// bad magic, unsupported version, unknown type, or a length past the cap.
/// `header` must be exactly kFrameHeaderBytes long.
inline constexpr std::size_t kFrameHeaderBytes = 16;
[[nodiscard]] std::uint64_t decode_frame_header(std::span<const std::uint8_t> header,
                                                MsgType& type);

// ---------------------------------------------------------------------------
// Message payloads.  Each struct has an encode() producing a full Frame and
// a static decode(payload) validating every field.
// ---------------------------------------------------------------------------

/// Worker -> PS greeting.  `protocol_version` lets the server reject a
/// mismatched binary before anything else flows.
struct HelloMsg {
  std::uint16_t protocol_version = kFrameVersion;

  [[nodiscard]] Frame encode() const;
  [[nodiscard]] static HelloMsg decode(std::span<const std::uint8_t> payload);
};

/// PS -> worker: the assigned slot plus the entire run configuration.  The
/// server owns the config; workers only know where to connect, which rules
/// out config drift between processes (the distributed-training analogue of
/// a bad deploy).
struct AssignmentMsg {
  std::uint32_t worker = 0;       ///< assigned slot in [0, num_workers)
  std::uint64_t num_workers = 0;
  std::uint64_t num_params = 0;
  std::uint64_t num_shards = 1;
  std::int64_t steps_per_worker = 0;
  std::uint64_t batch_size = 0;
  double lr = 0.0;
  double momentum = 0.0;
  std::uint64_t seed = 0;         ///< root seed; workers fork per-slot streams
  ModelArch arch = ModelArch::kLinear;
  CompressionSpec compression;    ///< codec every worker encodes through
  SyntheticSpec data;             ///< the dataset every worker regenerates

  [[nodiscard]] Frame encode() const;
  [[nodiscard]] static AssignmentMsg decode(std::span<const std::uint8_t> payload);
};

/// PS -> worker: parameters + the per-shard version vector snapshotted as
/// they were copied (the exact staleness-accounting path on the wire).
struct PullReplyMsg {
  std::vector<std::int64_t> versions;
  std::vector<float> params;

  [[nodiscard]] Frame encode() const;
  [[nodiscard]] static PullReplyMsg decode(std::span<const std::uint8_t> payload);
};

/// Worker -> PS: uncompressed full-gradient push.
struct PushDenseMsg {
  double lr = 0.0;
  std::vector<std::int64_t> pull_versions;
  std::vector<float> grad;

  [[nodiscard]] Frame encode() const;
  [[nodiscard]] static PushDenseMsg decode(std::span<const std::uint8_t> payload);
};

/// Worker -> PS: a CompressedPush (dense quantized or sparse top-k).
/// Decode re-validates the push invariants (sparse indices strictly
/// ascending and < num_params) so a corrupt frame cannot reach the PS math.
struct PushCompressedMsg {
  double lr = 0.0;
  std::vector<std::int64_t> pull_versions;
  CompressedPush push;

  [[nodiscard]] Frame encode() const;
  [[nodiscard]] static PushCompressedMsg decode(std::span<const std::uint8_t> payload);
};

/// PS -> worker: staleness of the just-applied push.
struct PushReplyMsg {
  std::int64_t staleness = 0;

  [[nodiscard]] Frame encode() const;
  [[nodiscard]] static PushReplyMsg decode(std::span<const std::uint8_t> payload);
};

/// Worker -> PS: arrived at the drain barrier after `local_steps` steps.
struct DrainArriveMsg {
  std::int64_t local_steps = 0;

  [[nodiscard]] Frame encode() const;
  [[nodiscard]] static DrainArriveMsg decode(std::span<const std::uint8_t> payload);
};

/// PS -> worker: every alive worker arrived; `done` says whether the run is
/// over (the v1 deployment drains exactly once, at the step quota).
struct DrainReleaseMsg {
  bool done = true;

  [[nodiscard]] Frame encode() const;
  [[nodiscard]] static DrainReleaseMsg decode(std::span<const std::uint8_t> payload);
};

/// Checkpoint request (`logical_step` lands in Checkpoint::global_step);
/// the reply carries the checkpoint's own serialization.
struct CheckpointRequestMsg {
  std::int64_t logical_step = 0;

  [[nodiscard]] Frame encode() const;
  [[nodiscard]] static CheckpointRequestMsg decode(std::span<const std::uint8_t> payload);
};

struct VersionReplyMsg {
  std::int64_t version = 0;

  [[nodiscard]] Frame encode() const;
  [[nodiscard]] static VersionReplyMsg decode(std::span<const std::uint8_t> payload);
};

/// PS -> worker failure report.  The server catches its own exceptions and
/// ships `what()`; the transport rethrows it as NetError("ps_server: ...").
struct ErrorMsg {
  std::string message;

  [[nodiscard]] Frame encode() const;
  [[nodiscard]] static ErrorMsg decode(std::span<const std::uint8_t> payload);
};

/// Frames with no payload fields (kPull, kVersionRequest, kOk, kBye).
[[nodiscard]] Frame make_empty_frame(MsgType type);

}  // namespace ss
