#include "net/ps_server.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "common/error.h"
#include "common/log.h"
#include "common/rng.h"
#include "elastic/async_snapshotter.h"
#include "net/frame.h"
#include "net/inproc_transport.h"
#include "net/socket.h"
#include "obs/obs.h"
#include "ps/threaded_runtime.h"

namespace ss {

namespace {

/// Shared server state: the PS facade plus the cross-process drain barrier
/// and eviction bookkeeping.  `mu` guards the membership/drain fields; the
/// PS itself carries its own per-shard locks, so pushes from different
/// session threads interleave at shard granularity exactly as worker
/// threads do in-process.
struct ServerState {
  SharedParameterServer ps;
  SnapshotStore store;
  std::atomic<std::int64_t> total_updates{0};

  std::mutex mu;
  std::condition_variable drain_cv;
  std::vector<char> alive;
  std::vector<char> arrived;
  bool run_done = false;
  std::size_t evicted = 0;
  std::int64_t restores = 0;
  std::int64_t updates_lost = 0;

  ServerState(std::vector<float> init, double momentum, std::size_t shards,
              std::size_t num_workers)
      : ps(std::move(init), momentum, shards),
        alive(num_workers, 1),
        arrived(num_workers, 0) {}

  /// Callers hold `mu`.  The drain completes when every alive worker has
  /// arrived (an eviction can complete it retroactively).
  [[nodiscard]] bool drain_complete() const {
    for (std::size_t w = 0; w < alive.size(); ++w)
      if (alive[w] && !arrived[w]) return false;
    return true;
  }

  [[nodiscard]] std::size_t alive_count() const {
    std::size_t n = 0;
    for (const char a : alive) n += a != 0;
    return n;
  }
};

/// Evict `worker` after its connection died: mark it dead, roll the PS back
/// to the last snapshot (the paper's recovery semantics — bounded loss, no
/// version rollback), and re-check the drain barrier, which the death may
/// have completed.  Callers must NOT hold `state.mu`.
void evict_worker(ServerState& state, std::uint32_t worker, const std::string& why) {
  const std::unique_lock<std::mutex> lock(state.mu);
  if (!state.alive[worker]) return;
  state.alive[worker] = 0;
  ++state.evicted;
  const std::int64_t now = state.total_updates.load(std::memory_order_relaxed);
  std::int64_t lost = 0;
  if (const auto snap = state.store.latest()) {
    lost = now - snap->global_step;
    state.ps.restore_checkpoint(*snap);
    ++state.restores;
    state.updates_lost += lost;
  }
  log_info("ps_server: evicted worker ", worker, " (", why, "); restored snapshot, ",
           lost, " updates lost, ", state.alive_count(), " workers remain");
  if (state.drain_complete()) {
    state.run_done = true;
    state.drain_cv.notify_all();
  }
}

/// One worker session: serve frames until the worker leaves (Bye), the
/// connection dies (eviction), or the run completes.
void serve_session(ServerState& state, Socket sock, std::uint32_t worker,
                   const AssignmentMsg& assignment) {
  if (obs::enabled()) {
    // The session thread serves exactly one worker slot: pin its wire spans
    // to that worker's trace row instead of an auto-assigned one.
    obs::set_thread_track(static_cast<int>(worker) + 1);
    if (obs::tracing())
      obs::tracer().set_track_name(static_cast<int>(worker) + 1,
                                   "session worker " + std::to_string(worker));
  }
  InProcTransport tx(state.ps);
  bool drained = false;
  try {
    Frame req;
    while (recv_frame(sock, req)) {
      Frame reply;
      try {
        switch (req.type) {
          case MsgType::kPull: {
            PullReplyMsg msg;
            msg.params.resize(tx.num_params());
            tx.pull_with_versions(msg.params, msg.versions);
            reply = msg.encode();
            break;
          }
          case MsgType::kPushDense: {
            const PushDenseMsg msg = PushDenseMsg::decode(req.payload);
            if (msg.grad.size() != tx.num_params())
              throw NetError("PushDense: gradient length mismatch");
            PushReplyMsg out;
            out.staleness = tx.push(msg.grad, msg.lr, msg.pull_versions);
            state.total_updates.fetch_add(1, std::memory_order_relaxed);
            reply = out.encode();
            break;
          }
          case MsgType::kPushCompressed: {
            const PushCompressedMsg msg = PushCompressedMsg::decode(req.payload);
            if (msg.push.num_params != tx.num_params())
              throw NetError("PushCompressed: gradient length mismatch");
            PushReplyMsg out;
            out.staleness = tx.push_compressed(msg.push, msg.lr, msg.pull_versions);
            state.total_updates.fetch_add(1, std::memory_order_relaxed);
            reply = out.encode();
            break;
          }
          case MsgType::kDrainArrive: {
            (void)DrainArriveMsg::decode(req.payload);
            std::unique_lock<std::mutex> lock(state.mu);
            state.arrived[worker] = 1;
            if (state.drain_complete()) {
              state.run_done = true;
              state.drain_cv.notify_all();
            } else {
              state.drain_cv.wait(lock, [&] { return state.run_done; });
            }
            drained = true;
            DrainReleaseMsg out;
            out.done = true;  // the v1 deployment drains once, at the quota
            reply = out.encode();
            break;
          }
          case MsgType::kCheckpointRequest: {
            const CheckpointRequestMsg msg = CheckpointRequestMsg::decode(req.payload);
            Frame out;
            out.type = MsgType::kCheckpointReply;
            out.payload = tx.snapshot_checkpoint(msg.logical_step).serialize();
            reply = std::move(out);
            break;
          }
          case MsgType::kRestoreRequest: {
            // Serialize against the snapshotter's capture (same torn-mix
            // hazard the threaded runtime guards — see threaded_runtime.cpp).
            const Checkpoint ckpt = Checkpoint::deserialize(req.payload);
            const std::lock_guard<std::mutex> lock(state.mu);
            tx.restore_checkpoint(ckpt);
            reply = make_empty_frame(MsgType::kOk);
            break;
          }
          case MsgType::kVersionRequest: {
            VersionReplyMsg out;
            out.version = tx.version();
            reply = out.encode();
            break;
          }
          case MsgType::kBye:
            return;
          case MsgType::kHello: {
            // Re-greeting an assigned session is a protocol error, but a
            // recoverable one: re-send the assignment.
            reply = assignment.encode();
            break;
          }
          default:
            throw NetError("ps_server: unexpected message type " +
                           std::to_string(static_cast<std::uint16_t>(req.type)));
        }
      } catch (const std::exception& e) {
        // Request-level failure: report to the worker, keep the session.
        ErrorMsg err;
        err.message = e.what();
        reply = err.encode();
      }
      send_frame(sock, reply);
    }
    // Clean EOF without Bye: treat as a lost worker unless it already
    // drained (some clients just close after the release).
    if (!drained) evict_worker(state, worker, "connection closed");
  } catch (const NetError& e) {
    // Transport failure (dead socket mid-frame, send to a killed peer).
    if (!drained) evict_worker(state, worker, e.what());
  }
}

}  // namespace

PsServerResult run_ps_server(const PsServerConfig& cfg) {
  if (cfg.num_workers == 0) throw ConfigError("run_ps_server: num_workers must be > 0");
  if (cfg.steps_per_worker <= 0) throw ConfigError("run_ps_server: steps must be > 0");
  if (cfg.snapshot_interval < 0)
    throw ConfigError("run_ps_server: snapshot_interval must be >= 0");
  if (cfg.metrics_period_seconds < 0.0)
    throw ConfigError("run_ps_server: metrics_period_seconds must be >= 0");

  // The server builds the model only for its initial parameters and the
  // final evaluation; all gradient math happens in the worker processes.
  Rng model_rng(cfg.seed);
  const DataSplit split = make_synthetic(cfg.data);
  Model model = make_model(cfg.arch, split.train.feature_dim(),
                           cfg.data.num_classes, model_rng);

  ServerState state(model.get_params(), cfg.momentum, cfg.num_ps_shards, cfg.num_workers);

  AssignmentMsg assignment;
  assignment.num_workers = cfg.num_workers;
  assignment.num_params = state.ps.num_params();
  assignment.num_shards = state.ps.num_shards();
  assignment.steps_per_worker = cfg.steps_per_worker;
  assignment.batch_size = cfg.batch_size;
  assignment.lr = cfg.lr;
  assignment.momentum = cfg.momentum;
  assignment.seed = cfg.seed;
  assignment.arch = cfg.arch;
  assignment.compression = cfg.compression;
  assignment.data = cfg.data;

  // Crash-recovery snapshots: run-start floor + optional update cadence.
  // Captures serialize against restores via state.mu (a cadence capture
  // walking the shards concurrently with a restore could store a torn mix
  // of pre- and post-restore slices — the exact hazard the threaded
  // runtime parks its snapshotter for).
  auto capture = [&state] {
    const std::lock_guard<std::mutex> lock(state.mu);
    return state.ps.snapshot_checkpoint(state.total_updates.load(std::memory_order_relaxed));
  };
  auto progress = [&state] { return state.total_updates.load(std::memory_order_relaxed); };
  std::optional<AsyncSnapshotter> snapshotter;
  if (cfg.snapshot_interval > 0) {
    snapshotter.emplace(capture, progress, cfg.snapshot_interval, state.store);
    snapshotter->snapshot_now();
  } else {
    state.store.put(capture());
  }

  Listener listener = listen_endpoint(cfg.listen);
  log_info("ps_server: listening on ", listener.endpoint(), " for ", cfg.num_workers,
           " workers (", state.ps.num_params(), " params, ", state.ps.num_shards(),
           " shards)");
  if (cfg.on_listening) cfg.on_listening(listener.endpoint());

  // Observability: a compact metrics line on a wall-clock cadence while the
  // run is live (off unless the CLI armed metrics and set a period), plus
  // one final line at exit.  Counters come from the wire layer's registry
  // entries; registering here (create-if-absent) keeps the reads safe even
  // before the first frame lands.
  const bool metrics_on = obs::enabled() && cfg.metrics_period_seconds > 0.0;
  auto log_metrics_line = [&state](const char* tag) {
    auto& reg = obs::metrics();
    log_info("ps_server: metrics", tag,
             " updates=", state.total_updates.load(std::memory_order_relaxed),
             " frames_rx=", reg.counter("ss_net_frames_received_total").value(),
             " bytes_rx=", reg.counter("ss_net_bytes_received_total").value(),
             " frames_tx=", reg.counter("ss_net_frames_sent_total").value(),
             " bytes_tx=", reg.counter("ss_net_bytes_sent_total").value());
  };
  std::mutex metrics_mu;
  std::condition_variable metrics_cv;
  bool metrics_stop = false;
  std::thread metrics_thread;
  if (metrics_on) {
    metrics_thread = std::thread([&] {
      std::unique_lock<std::mutex> lock(metrics_mu);
      while (!metrics_cv.wait_for(lock,
                                  std::chrono::duration<double>(cfg.metrics_period_seconds),
                                  [&] { return metrics_stop; }))
        log_metrics_line("");
    });
  }

  // Admission: the first num_workers connections that complete the Hello
  // handshake get slots 0..n-1.  Sessions start serving immediately — ASP
  // workers train while later slots are still joining.
  std::vector<std::thread> sessions;
  sessions.reserve(cfg.num_workers);
  std::size_t joined = 0;
  while (joined < cfg.num_workers) {
    Socket sock = listener.accept();
    Frame hello;
    try {
      if (!recv_frame(sock, hello) || hello.type != MsgType::kHello) continue;
      const HelloMsg msg = HelloMsg::decode(hello.payload);
      if (msg.protocol_version != kFrameVersion) {
        ErrorMsg err;
        err.message = "protocol version mismatch";
        send_frame(sock, err.encode());
        continue;
      }
      const auto worker = static_cast<std::uint32_t>(joined);
      AssignmentMsg own = assignment;
      own.worker = worker;
      send_frame(sock, own.encode());
      log_info("ps_server: worker ", worker, " joined");
      sessions.emplace_back([&state, sock = std::move(sock), worker, own]() mutable {
        serve_session(state, std::move(sock), worker, own);
      });
      ++joined;
    } catch (const NetError& e) {
      log_warn("ps_server: rejected connection: ", e.what());
    }
  }
  listener.close();  // fixed worker set: no late admissions in v1

  for (auto& t : sessions) t.join();
  if (snapshotter) snapshotter->stop();
  if (metrics_thread.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(metrics_mu);
      metrics_stop = true;
    }
    metrics_cv.notify_all();
    metrics_thread.join();
  }
  if (obs::enabled()) log_metrics_line(" final");  // dump-on-exit

  PsServerResult result;
  result.total_updates = state.total_updates.load();
  result.workers_joined = joined;
  result.workers_evicted = state.evicted;
  result.snapshots_restored = state.restores;
  result.updates_lost = state.updates_lost;
  result.final_params.resize(state.ps.num_params());
  state.ps.pull(result.final_params);
  model.set_params(result.final_params);
  result.final_accuracy = model.evaluate_accuracy(split.test);
  return result;
}

}  // namespace ss
