#include "ps/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/error.h"

namespace ss {

FanoutSink::FanoutSink(std::vector<MetricsSink*> sinks) : sinks_(std::move(sinks)) {
  for (const MetricsSink* s : sinks_)
    if (s == nullptr) throw ConfigError("FanoutSink: null sink");
}

void FanoutSink::on_task(const TaskObservation& obs) {
  for (MetricsSink* s : sinks_) s->on_task(obs);
}

void FanoutSink::on_update(const UpdateObservation& obs) {
  for (MetricsSink* s : sinks_) s->on_update(obs);
}

void FanoutSink::on_eval(std::int64_t global_step, VTime time, double test_accuracy) {
  for (MetricsSink* s : sinks_) s->on_eval(global_step, time, test_accuracy);
}

TraceRecorder::TraceRecorder(std::size_t max_events) : max_events_(max_events) {
  if (max_events == 0) throw ConfigError("TraceRecorder: max_events must be > 0");
}

bool TraceRecorder::room() noexcept {
  if (total_recorded() < max_events_) return true;
  ++dropped_;
  return false;
}

void TraceRecorder::on_task(const TaskObservation& obs) {
  if (room()) tasks_.push_back(obs);
}

void TraceRecorder::on_update(const UpdateObservation& obs) {
  if (room()) updates_.push_back(obs);
}

void TraceRecorder::on_eval(std::int64_t global_step, VTime time, double test_accuracy) {
  if (room()) evals_.push_back({global_step, time, test_accuracy});
}

void TraceRecorder::clear() {
  tasks_.clear();
  updates_.clear();
  evals_.clear();
  dropped_ = 0;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c) & 0xff);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  // Chrome trace-event "JSON array" format: one event object per line.
  // pid 1 = the simulated cluster; tid = worker index (+1 so 0 stays free
  // for the PS row).  Timestamps are microseconds, which VTime stores
  // natively.
  os << "[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Thread-name metadata rows.
  sep();
  os << R"({"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"parameter server"}})";
  std::int64_t max_worker = -1;
  for (const auto& t : tasks_) max_worker = std::max<std::int64_t>(max_worker, t.worker);
  for (std::int64_t w = 0; w <= max_worker; ++w) {
    sep();
    os << R"({"ph":"M","pid":1,"tid":)" << (w + 1)
       << R"(,"name":"thread_name","args":{"name":")" << json_escape("worker " + std::to_string(w))
       << R"("}})";
  }

  for (const auto& t : tasks_) {
    const std::int64_t start_us = (t.completed_at - t.task_duration).us();
    sep();
    os << R"({"ph":"X","pid":1,"tid":)" << (t.worker + 1) << R"(,"ts":)" << start_us
       << R"(,"dur":)" << t.task_duration.us() << R"(,"name":"task","args":{"images":)"
       << t.images << "}}";
  }
  for (const auto& u : updates_) {
    sep();
    os << R"({"ph":"i","pid":1,"tid":0,"s":"t","ts":)" << u.time.us() << R"(,"name":")"
       << json_escape(protocol_name(u.protocol)) << R"( update","args":{"step":)"
       << u.global_step << R"(,"loss":)" << u.train_loss << R"(,"staleness":)" << u.staleness
       << "}}";
  }
  for (const auto& e : evals_) {
    sep();
    os << R"({"ph":"C","pid":1,"ts":)" << e.time.us()
       << R"(,"name":"test accuracy","args":{"accuracy":)" << e.accuracy << "}}";
  }
  os << "\n]\n";
}

void TraceRecorder::save_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw IoError("TraceRecorder: cannot open " + path);
  write_chrome_trace(out);
  if (!out.good()) throw IoError("TraceRecorder: write failed for " + path);
}

}  // namespace ss
