#include "ps/trace.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/error.h"
#include "common/json.h"

namespace ss {

FanoutSink::FanoutSink(std::vector<MetricsSink*> sinks) : sinks_(std::move(sinks)) {
  for (const MetricsSink* s : sinks_)
    if (s == nullptr) throw ConfigError("FanoutSink: null sink");
}

void FanoutSink::on_task(const TaskObservation& obs) {
  for (MetricsSink* s : sinks_) s->on_task(obs);
}

void FanoutSink::on_update(const UpdateObservation& obs) {
  for (MetricsSink* s : sinks_) s->on_update(obs);
}

void FanoutSink::on_eval(std::int64_t global_step, VTime time, double test_accuracy) {
  for (MetricsSink* s : sinks_) s->on_eval(global_step, time, test_accuracy);
}

TraceRecorder::TraceRecorder(std::size_t max_events) : max_events_(max_events) {
  if (max_events == 0) throw ConfigError("TraceRecorder: max_events must be > 0");
}

bool TraceRecorder::room() noexcept {
  if (total_recorded() < max_events_) return true;
  ++dropped_;
  return false;
}

void TraceRecorder::on_task(const TaskObservation& obs) {
  if (room()) tasks_.push_back(obs);
}

void TraceRecorder::on_update(const UpdateObservation& obs) {
  if (room()) updates_.push_back(obs);
}

void TraceRecorder::on_eval(std::int64_t global_step, VTime time, double test_accuracy) {
  if (room()) evals_.push_back({global_step, time, test_accuracy});
}

void TraceRecorder::clear() {
  tasks_.clear();
  updates_.clear();
  evals_.clear();
  dropped_ = 0;
}

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  // Chrome trace-event "JSON array" format: one event object per line,
  // emitted through the shared ChromeTraceWriter (same path the obs wall
  // tracer uses, so sim and real traces stay format-identical).  pid 1 =
  // the simulated cluster; tid = worker index (+1 so 0 stays free for the
  // PS row).  Timestamps are microseconds, which VTime stores natively.
  ChromeTraceWriter w(os);

  // Thread-name metadata rows.
  w.event().field("ph", "M").field("pid", 1).field("tid", 0)
      .field("name", "thread_name").args().field("name", "parameter server");
  std::int64_t max_worker = -1;
  for (const auto& t : tasks_) max_worker = std::max<std::int64_t>(max_worker, t.worker);
  for (std::int64_t w_id = 0; w_id <= max_worker; ++w_id) {
    w.event().field("ph", "M").field("pid", 1).field("tid", w_id + 1)
        .field("name", "thread_name").args()
        .field("name", "worker " + std::to_string(w_id));
  }
  // Recorder accounting rides along as metadata so truncated traces
  // self-describe.
  w.event().field("ph", "M").field("pid", 1).field("tid", 0)
      .field("name", "trace_metadata").args()
      .field("clock", "virtual")
      .field("recorded_events", static_cast<std::int64_t>(total_recorded()))
      .field("dropped_events", static_cast<std::int64_t>(dropped_));

  for (const auto& t : tasks_) {
    const std::int64_t start_us = (t.completed_at - t.task_duration).us();
    w.event().field("ph", "X").field("pid", 1).field("tid", t.worker + 1)
        .field("ts", start_us).field("dur", t.task_duration.us()).field("name", "task")
        .args().field("images", static_cast<std::int64_t>(t.images));
  }
  for (const auto& u : updates_) {
    w.event().field("ph", "i").field("pid", 1).field("tid", 0).field("s", "t")
        .field("ts", u.time.us())
        .field("name", std::string(protocol_name(u.protocol)) + " update")
        .args().field("step", u.global_step).field("loss", u.train_loss)
        .field("staleness", u.staleness);
  }
  for (const auto& e : evals_) {
    w.event().field("ph", "C").field("pid", 1).field("ts", e.time.us())
        .field("name", "test accuracy").args().field("accuracy", e.accuracy);
  }
  w.close();
}

void TraceRecorder::save_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw IoError("TraceRecorder: cannot open " + path);
  write_chrome_trace(out);
  if (!out.good()) throw IoError("TraceRecorder: write failed for " + path);
}

}  // namespace ss
