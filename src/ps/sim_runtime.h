// Event-driven distributed-training runtime: "virtual time, real math".
//
// Gradients are computed by real forward/backward passes on the model; *when*
// they are computed and *which parameter version* they see is decided by the
// discrete-event cluster model.  This reproduces the semantics in the paper's
// Figure 3 exactly:
//
//  * BSP: all active workers pull the same parameters, compute in parallel,
//    and the PS applies the averaged gradient once the barrier completes
//    (equivalent to large-batch minibatch SGD — tested).
//  * ASP: each worker pulls a snapshot, computes, and pushes at its own pace;
//    the PS applies immediately, so a gradient is stale by however many
//    updates other workers landed in between (~n-1 on average — tested).
//  * SSP: ASP within a staleness bound on worker clocks.
//
// Step accounting: the unit of workload is the *minibatch step* (one worker
// batch of B examples).  A BSP aggregated update consumes n minibatch steps,
// an ASP update consumes one; both protocols therefore process the same
// number of examples for the same step budget, and the LR schedule is
// indexed by this shared counter.  See EXPERIMENTS.md §"Step semantics".
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/vtime.h"
#include "compress/bank.h"
#include "data/batcher.h"
#include "data/dataset.h"
#include "nn/lr_schedule.h"
#include "nn/model.h"
#include "ps/param_server.h"
#include "ps/protocol.h"
#include "sim/cluster.h"
#include "sim/des_engine.h"
#include "sim/straggler.h"

namespace ss {

/// Emitted whenever one worker task (pull+compute+push) completes.  This is
/// the signal the straggler detector consumes.
struct TaskObservation {
  int worker = 0;
  VTime completed_at;
  VTime task_duration;
  std::size_t images = 0;
};

/// Emitted on every PS update.
struct UpdateObservation {
  std::int64_t global_step = 0;  ///< minibatch steps completed (after this update)
  VTime time;
  double train_loss = 0.0;
  std::int64_t staleness = 0;  ///< PS versions advanced between pull and push
  Protocol protocol = Protocol::kBsp;
};

/// Receives training telemetry (implemented by the core profiler).
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;
  virtual void on_task(const TaskObservation& obs) = 0;
  virtual void on_update(const UpdateObservation& obs) = 0;
  virtual void on_eval(std::int64_t global_step, VTime time, double test_accuracy) = 0;
};

/// No-op sink for tests.
class NullMetricsSink final : public MetricsSink {
 public:
  void on_task(const TaskObservation&) override {}
  void on_update(const UpdateObservation&) override {}
  void on_eval(std::int64_t, VTime, double) override {}
};

/// Everything that persists across phases of one training session.
struct TrainingState {
  TrainingState(ParameterServer ps_in, std::vector<MinibatchSampler> samplers_in,
                std::vector<Rng> worker_rngs_in)
      : ps(std::move(ps_in)),
        samplers(std::move(samplers_in)),
        worker_rngs(std::move(worker_rngs_in)) {}

  ParameterServer ps;
  std::vector<MinibatchSampler> samplers;  ///< one per worker slot
  std::vector<Rng> worker_rngs;            ///< timing jitter streams
  std::int64_t global_step = 0;            ///< minibatch steps completed
  VTime clock;                             ///< virtual wall clock
};

/// Hyper-parameters and knobs for one phase (already derived by the
/// configuration policy).
struct PhaseConfig {
  Protocol protocol = Protocol::kBsp;
  int ssp_staleness_bound = 3;       ///< fixed bound for kSsp; lower bound for kDssp
  int dssp_staleness_upper = 8;      ///< upper bound r for kDssp (bound in [s, s+r])
  int k_param = 0;                   ///< K for the K-variant protocols; 0 = cluster size
  std::int64_t step_budget = 0;      ///< minibatch steps to run in this phase
  const LrSchedule* lr_schedule = nullptr;  ///< absolute eta(step), required
  double lr_multiplier = 1.0;        ///< config policy: n for BSP, 1 for ASP
  /// Optional override of lr_multiplier as a function of the global step.
  /// Used for the gradual warmup of the linear-scaled BSP learning rate
  /// (Goyal et al., the recipe behind the paper's configuration policy).
  std::function<double(std::int64_t)> lr_multiplier_schedule;
  std::size_t per_worker_batch = 64;
  double momentum = 0.9;
  /// Optional momentum override evaluated per update as a function of
  /// minibatch steps completed *inside this phase* (Figure 8(b) ablations).
  std::function<double(std::int64_t)> momentum_schedule;
  std::int64_t eval_interval = 128;  ///< minibatch steps between test evals
  double divergence_loss_threshold = 50.0;
  /// Optional gradient compression applied to every push (paper §VII calls
  /// compression orthogonal and combinable with Sync-Switch; see
  /// bench/ablation_compression).  Not owned; must outlive the phase.  The
  /// gradient math sees the decoded (lossy) values and the network model
  /// charges the push for the codec's wire bytes.  In the async protocols a
  /// sparse (top-k) push is applied per shard via `apply_sparse` — only the
  /// shards owning kept coordinates advance, matching the threaded runtime's
  /// per-shard fast path; synchronous protocols aggregate decoded pushes
  /// before one dense apply.
  CompressorBank* compressor = nullptr;
};

/// Why a phase ended.
enum class PhaseEnd {
  kBudgetExhausted,
  kStopRequested,  ///< stop predicate returned true
  kDiverged,
};

struct PhaseResult {
  PhaseEnd end = PhaseEnd::kBudgetExhausted;
  std::int64_t steps_done = 0;  ///< minibatch steps completed in this phase
  /// Global minibatch step at which the stop predicate fired (-1 unless
  /// end == kStopRequested).  This mirrors what the threaded runtime's
  /// ThreadedPhaseStats records for a trigger-ended phase (ended_by_trigger
  /// + the per-worker step count), so cross-runtime conformance tests can
  /// compare reactive trigger timing instead of only update counts.
  std::int64_t trigger_step = -1;
  VTime elapsed;                ///< virtual time this phase took
  double mean_staleness = 0.0;  ///< average gradient staleness over the phase
  std::int64_t push_bytes = 0;  ///< gradient bytes pushed over the wire
  /// K-sync / K-batch-sync only: completed-but-discarded worker tasks (the
  /// straggler work the protocol cancels at each round).
  std::int64_t cancelled_tasks = 0;
  /// Async protocols: largest observed local-clock gap (fastest minus
  /// slowest worker) at any scheduling decision.  SSP guarantees this never
  /// exceeds the staleness bound, DSSP never exceeds bound + upper credit;
  /// the threaded runtime reports the same invariant, which is what the
  /// cross-runtime conformance suite checks.  0 for synchronous protocols.
  std::int64_t max_clock_gap = 0;
};

/// Predicate polled after every worker-task completion; return true to end
/// the phase (used by online straggler policies).
using StopPredicate = std::function<bool(VTime now, std::int64_t global_step)>;

/// Executes one synchronization phase on the simulated cluster.
class SimRuntime {
 public:
  /// `grad_model` and `eval_model` are working replicas (their parameters
  /// are overwritten); `eval_set` is the held-out data used for the periodic
  /// accuracy evaluations.  The cluster model is copied (it is a small value
  /// type), so passing a temporary is safe.
  SimRuntime(ClusterModel cluster, Model& grad_model, Model& eval_model,
             const Dataset& train, const Dataset& eval_set, MetricsSink& sink);

  /// Run a phase.  `active_workers` are the participating worker indices
  /// (the elastic policy shrinks this set); `stragglers` provides slowdown
  /// factors over virtual time; `stop` may be null.
  PhaseResult run_phase(TrainingState& state, const PhaseConfig& cfg,
                        const std::vector<int>& active_workers,
                        const StragglerSchedule& stragglers, const StopPredicate& stop);

 private:
  /// The synchronous family (BSP, K-sync, K-batch-sync): one `plan_round`
  /// per aggregated update.  BSP is K-sync with K = n (bit-for-bit);
  /// `pipelined` selects K-batch-sync's fast-workers-pipeline round shape.
  PhaseResult run_rounds(TrainingState& state, const PhaseConfig& cfg,
                         const std::vector<int>& active, const StragglerSchedule& stragglers,
                         const StopPredicate& stop, bool pipelined);
  /// The event-driven family (ASP/SSP/DSSP apply each push under `rules`;
  /// K-async/K-batch-async free-run and buffer K pushes per update, with
  /// `distinct_workers` selecting K-async's distinct-source trigger).
  PhaseResult run_event_driven(TrainingState& state, const PhaseConfig& cfg,
                               const std::vector<int>& active,
                               const StragglerSchedule& stragglers, const StopPredicate& stop,
                               AdmissionRules rules, bool buffered, bool distinct_workers);

  /// Evaluate test accuracy if `global_step` crossed an eval boundary.
  void maybe_eval(TrainingState& state, const PhaseConfig& cfg);

  double momentum_at(const PhaseConfig& cfg, std::int64_t steps_into_phase) const;

  ClusterModel cluster_;
  Model& grad_model_;
  Model& eval_model_;
  const Dataset& train_;
  const Dataset& eval_set_;
  MetricsSink& sink_;
  std::int64_t last_eval_bucket_ = -1;
};

}  // namespace ss
