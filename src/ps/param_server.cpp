#include "ps/param_server.h"

#include <cmath>

#include "common/error.h"

namespace ss {

ParameterServer::ParameterServer(std::vector<float> init_params, double momentum)
    : params_(std::move(init_params)), opt_(params_.size(), momentum) {
  if (params_.empty()) throw ConfigError("ParameterServer: empty parameter vector");
}

void ParameterServer::pull(std::span<float> out) const {
  if (out.size() != params_.size()) throw ConfigError("ParameterServer::pull: size mismatch");
  std::copy(params_.begin(), params_.end(), out.begin());
}

void ParameterServer::set_params(std::span<const float> params) {
  if (params.size() != params_.size())
    throw ConfigError("ParameterServer::set_params: size mismatch");
  std::copy(params.begin(), params.end(), params_.begin());
  ++version_;
}

void ParameterServer::apply(std::span<const float> grad, double lr) {
  opt_.apply(params_, grad, lr);
  ++version_;
}

Checkpoint ParameterServer::make_checkpoint(std::int64_t global_step) const {
  Checkpoint ckpt;
  ckpt.global_step = global_step;
  ckpt.params = params_;
  ckpt.velocity.assign(opt_.velocity().begin(), opt_.velocity().end());
  return ckpt;
}

void ParameterServer::restore(const Checkpoint& ckpt) {
  if (ckpt.params.size() != params_.size() || ckpt.velocity.size() != params_.size())
    throw CheckpointError("ParameterServer::restore: checkpoint size mismatch");
  params_ = ckpt.params;
  std::copy(ckpt.velocity.begin(), ckpt.velocity.end(), opt_.mutable_velocity().begin());
}

bool ParameterServer::healthy() const noexcept {
  for (float p : params_)
    if (!std::isfinite(p)) return false;
  return true;
}

}  // namespace ss
