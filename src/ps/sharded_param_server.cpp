#include "ps/sharded_param_server.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.h"

namespace ss {

ShardedParameterServer::ShardedParameterServer(std::vector<float> init_params, double momentum,
                                               std::size_t num_shards)
    : params_(std::move(init_params)), opt_(params_.size(), momentum) {
  if (params_.empty()) throw ConfigError("ShardedParameterServer: empty parameter vector");
  shard_versions_.assign(std::clamp<std::size_t>(num_shards, 1, params_.size()), 0);
}

ShardedParameterServer::ShardRange ShardedParameterServer::shard_range(
    std::size_t shard) const {
  const std::size_t s = num_shards();
  if (shard >= s) throw ConfigError("ShardedParameterServer: shard index out of range");
  const std::size_t base = params_.size() / s;
  const std::size_t extra = params_.size() % s;
  // The first `extra` shards get base + 1 elements.
  const std::size_t begin = shard * base + std::min(shard, extra);
  return {begin, begin + base + (shard < extra ? 1 : 0)};
}

std::size_t ShardedParameterServer::shard_of(std::size_t param_index) const {
  if (param_index >= params_.size())
    throw ConfigError("ShardedParameterServer::shard_of: parameter index out of range");
  const std::size_t s = num_shards();
  const std::size_t base = params_.size() / s;
  const std::size_t extra = params_.size() % s;
  // The first `extra` shards hold base + 1 elements each.
  const std::size_t wide = extra * (base + 1);
  if (param_index < wide) return param_index / (base + 1);
  return extra + (param_index - wide) / base;
}

void ShardedParameterServer::pull(std::span<float> out) const {
  if (out.size() != params_.size())
    throw ConfigError("ShardedParameterServer::pull: size mismatch");
  if (pool_ && num_shards() > 1) {
    pool_->run(num_shards(), [&](std::size_t s) {
      const ShardRange r = shard_range(s);
      std::copy(params_.begin() + static_cast<std::ptrdiff_t>(r.begin),
                params_.begin() + static_cast<std::ptrdiff_t>(r.end), out.begin() + static_cast<std::ptrdiff_t>(r.begin));
    });
    return;
  }
  std::copy(params_.begin(), params_.end(), out.begin());
}

void ShardedParameterServer::set_params(std::span<const float> params) {
  if (params.size() != params_.size())
    throw ConfigError("ShardedParameterServer::set_params: size mismatch");
  std::copy(params.begin(), params.end(), params_.begin());
  for (auto& v : shard_versions_) ++v;
}

std::int64_t ShardedParameterServer::version() const noexcept {
  return *std::min_element(shard_versions_.begin(), shard_versions_.end());
}

void ShardedParameterServer::apply(std::span<const float> grad, double lr) {
  if (grad.size() != params_.size())
    throw ConfigError("ShardedParameterServer::apply: gradient size mismatch");
  if (pool_ && num_shards() > 1) {
    pool_->run(num_shards(), [&](std::size_t s) { apply_shard(s, grad, lr); });
    return;
  }
  for (std::size_t s = 0; s < num_shards(); ++s) apply_shard(s, grad, lr);
}

void ShardedParameterServer::apply_sparse(std::span<const std::uint32_t> indices,
                                          std::span<const float> values, double lr) {
  if (indices.size() != values.size())
    throw ConfigError("ShardedParameterServer::apply_sparse: index/value length mismatch");
  // Untouched shards are skipped entirely — no parameter writes, no version
  // bump.
  for_each_shard_segment(indices, [&](std::size_t s, std::size_t lo, std::size_t hi) {
    apply_sparse_shard(s, indices.subspan(lo, hi - lo), values.subspan(lo, hi - lo), lr);
  });
}

void ShardedParameterServer::apply_sparse_shard(std::size_t shard,
                                                std::span<const std::uint32_t> indices,
                                                std::span<const float> values, double lr) {
  const ShardRange r = shard_range(shard);
  if (indices.size() != values.size())
    throw ConfigError("ShardedParameterServer::apply_sparse_shard: length mismatch");
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] < r.begin || indices[i] >= r.end)
      throw ConfigError("ShardedParameterServer::apply_sparse_shard: index outside shard");
    if (i > 0 && indices[i] <= indices[i - 1])
      throw ConfigError("ShardedParameterServer::apply_sparse_shard: indices must be ascending");
  }
  opt_.apply_sparse(params_, indices, values, lr);
  ++shard_versions_[shard];
}

void ShardedParameterServer::pull_shard(std::size_t shard, std::span<float> out) const {
  if (out.size() != params_.size())
    throw ConfigError("ShardedParameterServer::pull_shard: size mismatch");
  const ShardRange r = shard_range(shard);
  std::copy(params_.begin() + static_cast<std::ptrdiff_t>(r.begin),
            params_.begin() + static_cast<std::ptrdiff_t>(r.end),
            out.begin() + static_cast<std::ptrdiff_t>(r.begin));
}

void ShardedParameterServer::apply_shard(std::size_t shard, std::span<const float> grad,
                                         double lr) {
  if (grad.size() != params_.size())
    throw ConfigError("ShardedParameterServer::apply_shard: gradient size mismatch");
  const ShardRange r = shard_range(shard);
  opt_.apply_range(std::span<float>(params_).subspan(r.begin, r.size()),
                   grad.subspan(r.begin, r.size()), lr, r.begin);
  ++shard_versions_[shard];
}

std::int64_t ShardedParameterServer::shard_version(std::size_t shard) const {
  if (shard >= num_shards())
    throw ConfigError("ShardedParameterServer: shard index out of range");
  return shard_versions_[shard];
}

void ShardedParameterServer::shard_versions(std::vector<std::int64_t>& out) const {
  out.assign(shard_versions_.begin(), shard_versions_.end());
}

std::int64_t ShardedParameterServer::staleness_since(
    std::span<const std::int64_t> pulled) const {
  if (pulled.size() != shard_versions_.size())
    throw ConfigError("ShardedParameterServer::staleness_since: shard count mismatch");
  std::int64_t stale = 0;
  for (std::size_t s = 0; s < pulled.size(); ++s)
    stale = std::max(stale, shard_versions_[s] - pulled[s]);
  return stale;
}

std::int64_t ShardedParameterServer::staleness_since(
    std::span<const std::int64_t> pulled, std::span<const std::uint32_t> indices) const {
  if (pulled.size() != shard_versions_.size())
    throw ConfigError("ShardedParameterServer::staleness_since: shard count mismatch");
  std::int64_t stale = 0;
  for_each_shard_segment(indices, [&](std::size_t s, std::size_t, std::size_t) {
    stale = std::max(stale, shard_versions_[s] - pulled[s]);
  });
  return stale;
}

void ShardedParameterServer::set_parallel_apply(std::size_t extra_threads) {
  pool_ = extra_threads > 0 ? std::make_unique<ShardApplyPool>(extra_threads) : nullptr;
}

Checkpoint ShardedParameterServer::make_checkpoint(std::int64_t global_step) const {
  Checkpoint ckpt;
  ckpt.global_step = global_step;
  ckpt.params = params_;
  ckpt.velocity.assign(opt_.velocity().begin(), opt_.velocity().end());
  ckpt.num_shards = static_cast<std::uint64_t>(num_shards());
  ckpt.shard_versions = shard_versions_;
  return ckpt;
}

void ShardedParameterServer::restore(const Checkpoint& ckpt) {
  if (ckpt.params.size() != params_.size() || ckpt.velocity.size() != params_.size())
    throw CheckpointError("ShardedParameterServer::restore: checkpoint size mismatch");
  // Flat (single-shard / legacy) checkpoints restore into any layout; a
  // sharded checkpoint must match the server's layout exactly and be
  // self-consistent (declared shard count == shard_versions carried) — an
  // inconsistent one is corrupt and must not restore silently.
  if (ckpt.num_shards > 1 && ckpt.num_shards != static_cast<std::uint64_t>(num_shards()))
    throw CheckpointError("ShardedParameterServer::restore: shard layout mismatch");
  if (ckpt.num_shards > 1 && ckpt.shard_versions.size() != ckpt.num_shards)
    throw CheckpointError("ShardedParameterServer::restore: checkpoint declares " +
                          std::to_string(ckpt.num_shards) + " shards but carries " +
                          std::to_string(ckpt.shard_versions.size()) + " shard versions");
  params_ = ckpt.params;
  std::copy(ckpt.velocity.begin(), ckpt.velocity.end(), opt_.mutable_velocity().begin());
}

void ShardedParameterServer::snapshot_shard_state(std::size_t shard, std::span<float> params_out,
                                                  std::span<float> velocity_out,
                                                  std::int64_t& version_out) const {
  if (params_out.size() != params_.size() || velocity_out.size() != params_.size())
    throw ConfigError("ShardedParameterServer::snapshot_shard_state: size mismatch");
  const ShardRange r = shard_range(shard);
  std::copy(params_.begin() + static_cast<std::ptrdiff_t>(r.begin),
            params_.begin() + static_cast<std::ptrdiff_t>(r.end),
            params_out.begin() + static_cast<std::ptrdiff_t>(r.begin));
  const std::span<const float> vel = opt_.velocity();
  std::copy(vel.begin() + static_cast<std::ptrdiff_t>(r.begin),
            vel.begin() + static_cast<std::ptrdiff_t>(r.end),
            velocity_out.begin() + static_cast<std::ptrdiff_t>(r.begin));
  version_out = shard_versions_[shard];
}

void ShardedParameterServer::restore_shard_state(std::size_t shard,
                                                 std::span<const float> params,
                                                 std::span<const float> velocity) {
  if (params.size() != params_.size() || velocity.size() != params_.size())
    throw CheckpointError("ShardedParameterServer::restore_shard_state: size mismatch");
  const ShardRange r = shard_range(shard);
  std::copy(params.begin() + static_cast<std::ptrdiff_t>(r.begin),
            params.begin() + static_cast<std::ptrdiff_t>(r.end),
            params_.begin() + static_cast<std::ptrdiff_t>(r.begin));
  const std::span<float> vel = opt_.mutable_velocity();
  std::copy(velocity.begin() + static_cast<std::ptrdiff_t>(r.begin),
            velocity.begin() + static_cast<std::ptrdiff_t>(r.end),
            vel.begin() + static_cast<std::ptrdiff_t>(r.begin));
}

bool ShardedParameterServer::healthy() const noexcept {
  for (float p : params_)
    if (!std::isfinite(p)) return false;
  return true;
}

}  // namespace ss
