// Persistent worker pool for fanning per-shard PS work across threads.
//
// The sharded parameter server partitions its vector into disjoint contiguous
// ranges; applying a full-vector gradient is therefore embarrassingly
// parallel and bit-for-bit order-independent (no element is touched by two
// shards).  This pool keeps a fixed set of OS threads alive across calls so
// the per-update dispatch cost is two condition-variable round-trips, not a
// thread spawn — small enough to win on multi-megaparameter models while
// staying a strict no-op for the simulator's default serial path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ss {

/// Runs `fn(task_index)` for task_index in [0, num_tasks) across the pool
/// threads plus the calling thread, blocking until every task finished.
/// Tasks are claimed from a shared atomic counter, so shard imbalance (the
/// last shard can be smaller) self-schedules.  Not reentrant: one `run` at a
/// time per pool (the parameter server serializes calls by construction).
/// If a task throws, the remaining tasks still execute (they are
/// independent), every participant drains before `run` returns — so `fn`
/// never dangles — and the first exception is rethrown on the caller.
class ShardApplyPool {
 public:
  /// `extra_threads` workers are spawned in addition to the caller, so the
  /// total parallelism of `run` is extra_threads + 1.  Zero is allowed and
  /// makes `run` purely inline.
  explicit ShardApplyPool(std::size_t extra_threads);
  ~ShardApplyPool();

  ShardApplyPool(const ShardApplyPool&) = delete;
  ShardApplyPool& operator=(const ShardApplyPool&) = delete;

  [[nodiscard]] std::size_t extra_threads() const noexcept { return threads_.size(); }

  void run(std::size_t num_tasks, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  /// Claim-and-execute loop shared by the caller and the pool threads;
  /// records the first task exception instead of letting it escape a
  /// pool-thread entry point (which would std::terminate).
  void claim_tasks(std::size_t num_tasks, const std::function<void(std::size_t)>& fn);

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;

  // Job state, written under mu_ before the generation bump publishes it.
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t num_tasks_ = 0;
  std::atomic<std::size_t> next_task_{0};
  std::size_t workers_done_ = 0;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;  ///< first task exception of the current run
};

}  // namespace ss
