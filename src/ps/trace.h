// Execution tracing: record a training run's per-worker task timeline and
// PS update/eval stream, and export it as Chrome trace-event JSON
// (chrome://tracing, Perfetto, or speedscope all read this format).
//
// The paper's evaluation is built on exactly this kind of telemetry (task
// throughput per worker feeds the straggler detector, Figure 9's profiler);
// the trace exporter makes a run's schedule inspectable: BSP barrier waves,
// ASP free-running workers, straggler slow-downs and evictions are all
// visible on the timeline.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.h"  // json_escape: shared with the obs wall tracer
#include "ps/sim_runtime.h"

namespace ss {

/// Forwards every observation to multiple sinks (e.g. profiler + straggler
/// detector + trace recorder).  Sinks are not owned and must outlive this.
class FanoutSink final : public MetricsSink {
 public:
  explicit FanoutSink(std::vector<MetricsSink*> sinks);

  void on_task(const TaskObservation& obs) override;
  void on_update(const UpdateObservation& obs) override;
  void on_eval(std::int64_t global_step, VTime time, double test_accuracy) override;

 private:
  std::vector<MetricsSink*> sinks_;
};

/// Records observations in memory, bounded by `max_events` (oldest-first
/// fill; once full, further events are dropped and counted).
class TraceRecorder final : public MetricsSink {
 public:
  explicit TraceRecorder(std::size_t max_events = 1 << 20);

  void on_task(const TaskObservation& obs) override;
  void on_update(const UpdateObservation& obs) override;
  void on_eval(std::int64_t global_step, VTime time, double test_accuracy) override;

  struct EvalEvent {
    std::int64_t step;
    VTime time;
    double accuracy;
  };

  [[nodiscard]] const std::vector<TaskObservation>& tasks() const noexcept { return tasks_; }
  [[nodiscard]] const std::vector<UpdateObservation>& updates() const noexcept {
    return updates_;
  }
  [[nodiscard]] const std::vector<EvalEvent>& evals() const noexcept { return evals_; }
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t total_recorded() const noexcept {
    return tasks_.size() + updates_.size() + evals_.size();
  }

  void clear();

  /// Write the recorded run as a Chrome trace-event JSON array.  Worker
  /// tasks become duration ("X") events on per-worker rows, PS updates
  /// instant ("i") events, and test accuracy a counter ("C") track.
  void write_chrome_trace(std::ostream& os) const;

  /// Convenience: write_chrome_trace to a file.  Throws IoError on failure.
  void save_chrome_trace(const std::string& path) const;

 private:
  [[nodiscard]] bool room() noexcept;

  std::size_t max_events_;
  std::size_t dropped_ = 0;
  std::vector<TaskObservation> tasks_;
  std::vector<UpdateObservation> updates_;
  std::vector<EvalEvent> evals_;
};

}  // namespace ss
