// Parameter synchronization protocols (paper Section II-B).
//
// This enum is the axis Sync-Switch switches along: BSP trades throughput
// for zero staleness, ASP trades staleness for throughput, and the
// SSP/DSSP/K-variant family interpolates between them. Every runtime
// (sim_runtime, threaded_runtime, group_runtime) consumes a Protocol to
// decide when a worker's gradient may be applied and when a worker must
// block; the TrainingSession's timing policy decides *when* to change the
// value mid-run (checkpoint -> actuate -> restore).
//
// `is_synchronous` partitions the enum the way the paper's analysis does:
// barrier-per-round protocols have zero staleness by construction, the rest
// are measured by the profiler's staleness counters.
#pragma once

#include <string>

namespace ss {

/// The synchronization protocol governing how worker gradients reach the
/// parameter servers.
enum class Protocol {
  kBsp,   ///< Bulk Synchronous Parallel: barrier each step, aggregated update.
  kAsp,   ///< Asynchronous Parallel: every worker pushes/pulls at its own pace.
  kSsp,   ///< Stale Synchronous Parallel: async within a fixed staleness bound.
  kDssp,  ///< Dynamic SSP (Zhao et al., ICDCS'19): bound adapts in [lo, hi].
  // The K-variant family of Dutta et al. ("Slow and stale gradients can win
  // the race", paper reference [11]): the synchronization degree is the
  // hyper-parameter K.  kKSync with K = n is exactly BSP; kKAsync with K = 1
  // is exactly ASP.
  kKSync,       ///< wait for the K fastest workers, cancel the rest.
  kKBatchSync,  ///< wait for the first K minibatches (any worker), cancel rest.
  kKAsync,      ///< apply once gradients from K distinct workers arrive; no cancel.
  kKBatchAsync, ///< apply once any K gradients arrive; no cancellations.
};

inline std::string protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kBsp:
      return "BSP";
    case Protocol::kAsp:
      return "ASP";
    case Protocol::kSsp:
      return "SSP";
    case Protocol::kDssp:
      return "DSSP";
    case Protocol::kKSync:
      return "K-sync";
    case Protocol::kKBatchSync:
      return "K-batch-sync";
    case Protocol::kKAsync:
      return "K-async";
    case Protocol::kKBatchAsync:
      return "K-batch-async";
  }
  return "?";
}

/// True for protocols whose workers all compute on one parameter version per
/// round (barrier semantics; zero staleness).
inline bool is_synchronous(Protocol p) {
  return p == Protocol::kBsp || p == Protocol::kKSync || p == Protocol::kKBatchSync;
}

/// True for protocols the real-thread runtime (ps/threaded_runtime.h)
/// implements; the simulator supports the whole enum.  Schedules that mix
/// protocols are validated against this before any worker thread starts.
inline bool threaded_supported(Protocol p) {
  return p == Protocol::kBsp || p == Protocol::kAsp || p == Protocol::kSsp;
}

}  // namespace ss
