#include "ps/switch_schedule.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace ss {

std::string switch_trigger_name(SwitchTrigger t) {
  switch (t) {
    case SwitchTrigger::kStepCount:
      return "steps";
    case SwitchTrigger::kStragglerDetected:
      return "straggler-detected";
    case SwitchTrigger::kStragglerCleared:
      return "straggler-cleared";
  }
  return "?";
}

SwitchSchedule::SwitchSchedule(std::vector<SwitchPhase> phases) : phases_(std::move(phases)) {
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    const SwitchPhase& p = phases_[i];
    const bool last = i + 1 == phases_.size();
    if (p.steps < 0) throw ConfigError("SwitchSchedule: phase steps must be >= 0");
    if (p.trigger != SwitchTrigger::kStepCount && p.steps != 0)
      throw ConfigError("SwitchSchedule: reactive phases run until the trigger fires; steps must be 0");
    if (last) {
      // The last phase runs out the remaining budget: a step quota would be
      // ignored and a reactive trigger would have nothing to switch to.
      if (p.trigger != SwitchTrigger::kStepCount || p.steps != 0)
        throw ConfigError("SwitchSchedule: last phase must be kStepCount with steps == 0");
    } else if (p.trigger == SwitchTrigger::kStepCount && p.steps == 0) {
      throw ConfigError("SwitchSchedule: non-last step-triggered phase needs steps > 0");
    }
  }
}

std::int64_t SwitchSchedule::phase_budget(const SwitchPhase& phase, bool last,
                                          std::int64_t remaining) noexcept {
  if (!last && phase.trigger == SwitchTrigger::kStepCount)
    return std::min(phase.steps, remaining);
  return remaining;
}

bool SwitchSchedule::has_reactive_trigger() const noexcept {
  for (const SwitchPhase& p : phases_)
    if (p.trigger != SwitchTrigger::kStepCount) return true;
  return false;
}

std::string SwitchSchedule::label() const {
  if (phases_.empty()) return "-";
  std::ostringstream os;
  for (std::size_t i = 0; i < phases_.size(); ++i) {
    if (i > 0) os << '+';
    const SwitchPhase& p = phases_[i];
    os << protocol_name(p.protocol);
    switch (p.trigger) {
      case SwitchTrigger::kStepCount:
        os << ':' << p.steps;
        break;
      case SwitchTrigger::kStragglerDetected:
        os << ":det";
        break;
      case SwitchTrigger::kStragglerCleared:
        os << ":clr";
        break;
    }
    if (p.ssp_staleness_bound >= 0) os << 'b' << p.ssp_staleness_bound;
  }
  return os.str();
}

SwitchSchedule SwitchSchedule::single(Protocol p) {
  return SwitchSchedule({SwitchPhase{p, SwitchTrigger::kStepCount, 0, -1}});
}

SwitchSchedule SwitchSchedule::step_switched(
    std::vector<std::pair<Protocol, std::int64_t>> legs) {
  std::vector<SwitchPhase> phases;
  phases.reserve(legs.size());
  for (const auto& [proto, steps] : legs)
    phases.push_back(SwitchPhase{proto, SwitchTrigger::kStepCount, steps, -1});
  return SwitchSchedule(std::move(phases));
}

SwitchSchedule SwitchSchedule::bsp_to_asp(std::int64_t bsp_steps) {
  return step_switched({{Protocol::kBsp, bsp_steps}, {Protocol::kAsp, 0}});
}

SwitchSchedule SwitchSchedule::reactive(Protocol first, Protocol second) {
  return SwitchSchedule({SwitchPhase{first, SwitchTrigger::kStragglerDetected, 0, -1},
                         SwitchPhase{second, SwitchTrigger::kStepCount, 0, -1}});
}

SwitchSchedule SwitchSchedule::reactive_round_trip(Protocol first, Protocol second) {
  return SwitchSchedule({SwitchPhase{first, SwitchTrigger::kStragglerDetected, 0, -1},
                         SwitchPhase{second, SwitchTrigger::kStragglerCleared, 0, -1},
                         SwitchPhase{first, SwitchTrigger::kStepCount, 0, -1}});
}

}  // namespace ss
