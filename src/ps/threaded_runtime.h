// Real multi-threaded parameter-server runtime.
//
// The simulator (sim_runtime.h) provides deterministic science; this runtime
// proves the same PS/protocol logic is actually concurrent-safe by running
// workers as OS threads against a mutex-protected parameter server:
//
//  * BSP uses a std::barrier per round; worker 0 aggregates and applies.
//  * ASP workers freely pull/push under the PS mutex at their own pace.
//  * SSP workers free-run within the staleness bound: a worker whose local
//    clock is more than `ssp_staleness_bound` steps ahead of the slowest
//    parks on a condition variable until the laggard catches up.
//
// Used by tests and the `threaded_training` example.  Wall-clock timing here
// is real, so results are NOT deterministic in update order for ASP (that is
// the point) — but invariants (parameter finiteness, update counts, loss
// decrease on easy problems) hold and are tested.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "data/batcher.h"
#include "data/dataset.h"
#include "nn/lr_schedule.h"
#include "nn/model.h"
#include "ps/param_server.h"
#include "ps/protocol.h"

namespace ss {

/// Thread-safe facade over ParameterServer.
class SharedParameterServer {
 public:
  SharedParameterServer(std::vector<float> init_params, double momentum)
      : ps_(std::move(init_params), momentum) {}

  void pull(std::span<float> out) const {
    const std::lock_guard<std::mutex> lock(mu_);
    ps_.pull(out);
  }

  std::int64_t pull_with_version(std::span<float> out) const {
    const std::lock_guard<std::mutex> lock(mu_);
    ps_.pull(out);
    return ps_.version();
  }

  /// Returns the staleness of this push (versions advanced since `pull_version`).
  std::int64_t push(std::span<const float> grad, double lr, std::int64_t pull_version) {
    const std::lock_guard<std::mutex> lock(mu_);
    const std::int64_t staleness = ps_.version() - pull_version;
    ps_.apply(grad, lr);
    return staleness;
  }

  [[nodiscard]] std::vector<float> snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return {ps_.params().begin(), ps_.params().end()};
  }

  [[nodiscard]] std::int64_t version() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return ps_.version();
  }

 private:
  mutable std::mutex mu_;
  ParameterServer ps_;
};

struct ThreadedTrainConfig {
  Protocol protocol = Protocol::kBsp;
  std::size_t num_workers = 4;
  std::size_t batch_size = 32;
  std::int64_t steps_per_worker = 100;  ///< local steps each worker performs
  double lr = 0.05;
  double momentum = 0.9;
  std::uint64_t seed = 99;
  int ssp_staleness_bound = 3;  ///< local-clock gap bound for kSsp
  /// Test hook: called by each worker before every local step (e.g. to make
  /// one worker artificially slow).  Must be thread-safe; may be null.
  std::function<void(std::size_t worker, std::int64_t step)> pre_step_hook;
};

struct ThreadedTrainResult {
  std::int64_t total_updates = 0;   ///< PS updates applied
  double mean_staleness = 0.0;      ///< over ASP pushes (0 for BSP)
  /// Largest observed local-clock gap (fastest minus slowest worker) at any
  /// step start.  For kSsp this is <= ssp_staleness_bound by construction.
  std::int64_t max_clock_gap = 0;
  std::vector<float> final_params;
};

/// Train `prototype` (cloned per worker) on `train` with real threads.
/// Returns the final parameters; throws on internal inconsistency.
ThreadedTrainResult threaded_train(const Model& prototype, const Dataset& train,
                                   const ThreadedTrainConfig& cfg);

}  // namespace ss
